# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/hil_test[1]_include.cmake")
include("/root/repo/build/tests/interp_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/xform_test[1]_include.cmake")
include("/root/repo/build/tests/compile_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/atlas_baseline_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/generic_test[1]_include.cmake")
include("/root/repo/build/tests/irparser_test[1]_include.cmake")
include("/root/repo/build/tests/sim_detail_test[1]_include.cmake")
include("/root/repo/build/tests/opt_detail_test[1]_include.cmake")
include("/root/repo/build/tests/level2_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/complex_test[1]_include.cmake")
add_test(cli_analyze "/root/repo/build/src/driver/ifko" "analyze" "/root/repo/kernels_hil/ddot.hil")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/src/driver/ifko" "run" "/root/repo/kernels_hil/sasum.hil" "--ur=4" "--pf=X:nta:512" "--n=4096")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_tune_fast "/root/repo/build/src/driver/ifko" "tune" "/root/repo/kernels_hil/scopy.hil" "--n=4096" "--fast")
set_tests_properties(cli_tune_fast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_tune_gemv "/root/repo/build/src/driver/ifko" "tune" "/root/repo/kernels_hil/dgemv.hil" "--n=2048" "--fast" "--extensions")
set_tests_properties(cli_tune_gemv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_rejects_bad_file "/root/repo/build/src/driver/ifko" "analyze" "/nonexistent.hil")
set_tests_properties(cli_rejects_bad_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;32;add_test;/root/repo/tests/CMakeLists.txt;0;")
