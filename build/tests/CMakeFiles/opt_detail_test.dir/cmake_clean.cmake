file(REMOVE_RECURSE
  "CMakeFiles/opt_detail_test.dir/opt_detail_test.cpp.o"
  "CMakeFiles/opt_detail_test.dir/opt_detail_test.cpp.o.d"
  "opt_detail_test"
  "opt_detail_test.pdb"
  "opt_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
