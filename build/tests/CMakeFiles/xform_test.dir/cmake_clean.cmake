file(REMOVE_RECURSE
  "CMakeFiles/xform_test.dir/xform_test.cpp.o"
  "CMakeFiles/xform_test.dir/xform_test.cpp.o.d"
  "xform_test"
  "xform_test.pdb"
  "xform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
