file(REMOVE_RECURSE
  "CMakeFiles/hil_test.dir/hil_test.cpp.o"
  "CMakeFiles/hil_test.dir/hil_test.cpp.o.d"
  "hil_test"
  "hil_test.pdb"
  "hil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
