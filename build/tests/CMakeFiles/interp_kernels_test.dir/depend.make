# Empty dependencies file for interp_kernels_test.
# This may be replaced when dependencies are built.
