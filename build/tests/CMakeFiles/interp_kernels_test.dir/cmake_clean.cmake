file(REMOVE_RECURSE
  "CMakeFiles/interp_kernels_test.dir/interp_kernels_test.cpp.o"
  "CMakeFiles/interp_kernels_test.dir/interp_kernels_test.cpp.o.d"
  "interp_kernels_test"
  "interp_kernels_test.pdb"
  "interp_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
