# Empty compiler generated dependencies file for complex_test.
# This may be replaced when dependencies are built.
