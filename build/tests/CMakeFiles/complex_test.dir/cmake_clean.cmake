file(REMOVE_RECURSE
  "CMakeFiles/complex_test.dir/complex_test.cpp.o"
  "CMakeFiles/complex_test.dir/complex_test.cpp.o.d"
  "complex_test"
  "complex_test.pdb"
  "complex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
