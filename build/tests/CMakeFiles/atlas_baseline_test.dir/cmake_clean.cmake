file(REMOVE_RECURSE
  "CMakeFiles/atlas_baseline_test.dir/atlas_baseline_test.cpp.o"
  "CMakeFiles/atlas_baseline_test.dir/atlas_baseline_test.cpp.o.d"
  "atlas_baseline_test"
  "atlas_baseline_test.pdb"
  "atlas_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlas_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
