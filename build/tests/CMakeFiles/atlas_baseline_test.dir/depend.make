# Empty dependencies file for atlas_baseline_test.
# This may be replaced when dependencies are built.
