file(REMOVE_RECURSE
  "CMakeFiles/level2_test.dir/level2_test.cpp.o"
  "CMakeFiles/level2_test.dir/level2_test.cpp.o.d"
  "level2_test"
  "level2_test.pdb"
  "level2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/level2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
