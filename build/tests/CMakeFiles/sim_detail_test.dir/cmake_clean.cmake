file(REMOVE_RECURSE
  "CMakeFiles/sim_detail_test.dir/sim_detail_test.cpp.o"
  "CMakeFiles/sim_detail_test.dir/sim_detail_test.cpp.o.d"
  "sim_detail_test"
  "sim_detail_test.pdb"
  "sim_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
