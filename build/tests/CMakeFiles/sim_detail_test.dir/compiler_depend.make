# Empty compiler generated dependencies file for sim_detail_test.
# This may be replaced when dependencies are built.
