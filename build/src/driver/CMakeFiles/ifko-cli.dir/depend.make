# Empty dependencies file for ifko-cli.
# This may be replaced when dependencies are built.
