file(REMOVE_RECURSE
  "CMakeFiles/ifko-cli.dir/main.cpp.o"
  "CMakeFiles/ifko-cli.dir/main.cpp.o.d"
  "ifko"
  "ifko.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifko-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
