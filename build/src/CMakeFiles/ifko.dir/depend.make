# Empty dependencies file for ifko.
# This may be replaced when dependencies are built.
