
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/loopinfo.cpp" "src/CMakeFiles/ifko.dir/analysis/loopinfo.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/analysis/loopinfo.cpp.o.d"
  "/root/repo/src/arch/machine.cpp" "src/CMakeFiles/ifko.dir/arch/machine.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/arch/machine.cpp.o.d"
  "/root/repo/src/atlas/atlas.cpp" "src/CMakeFiles/ifko.dir/atlas/atlas.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/atlas/atlas.cpp.o.d"
  "/root/repo/src/atlas/handkernels.cpp" "src/CMakeFiles/ifko.dir/atlas/handkernels.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/atlas/handkernels.cpp.o.d"
  "/root/repo/src/baseline/baseline.cpp" "src/CMakeFiles/ifko.dir/baseline/baseline.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/baseline/baseline.cpp.o.d"
  "/root/repo/src/fko/compiler.cpp" "src/CMakeFiles/ifko.dir/fko/compiler.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/fko/compiler.cpp.o.d"
  "/root/repo/src/fko/harness.cpp" "src/CMakeFiles/ifko.dir/fko/harness.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/fko/harness.cpp.o.d"
  "/root/repo/src/hil/lexer.cpp" "src/CMakeFiles/ifko.dir/hil/lexer.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/hil/lexer.cpp.o.d"
  "/root/repo/src/hil/lower.cpp" "src/CMakeFiles/ifko.dir/hil/lower.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/hil/lower.cpp.o.d"
  "/root/repo/src/hil/parser.cpp" "src/CMakeFiles/ifko.dir/hil/parser.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/hil/parser.cpp.o.d"
  "/root/repo/src/hil/sema.cpp" "src/CMakeFiles/ifko.dir/hil/sema.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/hil/sema.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/ifko.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/cfg.cpp" "src/CMakeFiles/ifko.dir/ir/cfg.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/ir/cfg.cpp.o.d"
  "/root/repo/src/ir/function.cpp" "src/CMakeFiles/ifko.dir/ir/function.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/ir/function.cpp.o.d"
  "/root/repo/src/ir/inst.cpp" "src/CMakeFiles/ifko.dir/ir/inst.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/ir/inst.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/CMakeFiles/ifko.dir/ir/parser.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/ir/parser.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/ifko.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "src/CMakeFiles/ifko.dir/ir/verifier.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/ir/verifier.cpp.o.d"
  "/root/repo/src/kernels/complex_blas.cpp" "src/CMakeFiles/ifko.dir/kernels/complex_blas.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/kernels/complex_blas.cpp.o.d"
  "/root/repo/src/kernels/level2.cpp" "src/CMakeFiles/ifko.dir/kernels/level2.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/kernels/level2.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/CMakeFiles/ifko.dir/kernels/registry.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/kernels/registry.cpp.o.d"
  "/root/repo/src/kernels/tester.cpp" "src/CMakeFiles/ifko.dir/kernels/tester.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/kernels/tester.cpp.o.d"
  "/root/repo/src/opt/liveness.cpp" "src/CMakeFiles/ifko.dir/opt/liveness.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/opt/liveness.cpp.o.d"
  "/root/repo/src/opt/loop_xform.cpp" "src/CMakeFiles/ifko.dir/opt/loop_xform.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/opt/loop_xform.cpp.o.d"
  "/root/repo/src/opt/regalloc.cpp" "src/CMakeFiles/ifko.dir/opt/regalloc.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/opt/regalloc.cpp.o.d"
  "/root/repo/src/opt/repeatable.cpp" "src/CMakeFiles/ifko.dir/opt/repeatable.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/opt/repeatable.cpp.o.d"
  "/root/repo/src/search/linesearch.cpp" "src/CMakeFiles/ifko.dir/search/linesearch.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/search/linesearch.cpp.o.d"
  "/root/repo/src/sim/interp.cpp" "src/CMakeFiles/ifko.dir/sim/interp.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/sim/interp.cpp.o.d"
  "/root/repo/src/sim/memsys.cpp" "src/CMakeFiles/ifko.dir/sim/memsys.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/sim/memsys.cpp.o.d"
  "/root/repo/src/sim/timer.cpp" "src/CMakeFiles/ifko.dir/sim/timer.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/sim/timer.cpp.o.d"
  "/root/repo/src/sim/timing.cpp" "src/CMakeFiles/ifko.dir/sim/timing.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/sim/timing.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/ifko.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/support/diagnostics.cpp.o.d"
  "/root/repo/src/support/env.cpp" "src/CMakeFiles/ifko.dir/support/env.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/support/env.cpp.o.d"
  "/root/repo/src/support/str.cpp" "src/CMakeFiles/ifko.dir/support/str.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/support/str.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/ifko.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/ifko.dir/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
