file(REMOVE_RECURSE
  "libifko.a"
)
