file(REMOVE_RECURSE
  "CMakeFiles/prof_compile.dir/prof_compile.cpp.o"
  "CMakeFiles/prof_compile.dir/prof_compile.cpp.o.d"
  "prof_compile"
  "prof_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prof_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
