# Empty dependencies file for prof_compile.
# This may be replaced when dependencies are built.
