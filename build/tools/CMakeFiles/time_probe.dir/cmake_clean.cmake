file(REMOVE_RECURSE
  "CMakeFiles/time_probe.dir/time_probe.cpp.o"
  "CMakeFiles/time_probe.dir/time_probe.cpp.o.d"
  "time_probe"
  "time_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
