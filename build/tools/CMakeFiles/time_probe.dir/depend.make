# Empty dependencies file for time_probe.
# This may be replaced when dependencies are built.
