file(REMOVE_RECURSE
  "CMakeFiles/tune_probe.dir/tune_probe.cpp.o"
  "CMakeFiles/tune_probe.dir/tune_probe.cpp.o.d"
  "tune_probe"
  "tune_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
