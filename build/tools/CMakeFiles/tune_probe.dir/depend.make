# Empty dependencies file for tune_probe.
# This may be replaced when dependencies are built.
