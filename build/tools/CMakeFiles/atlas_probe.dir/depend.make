# Empty dependencies file for atlas_probe.
# This may be replaced when dependencies are built.
