file(REMOVE_RECURSE
  "CMakeFiles/atlas_probe.dir/atlas_probe.cpp.o"
  "CMakeFiles/atlas_probe.dir/atlas_probe.cpp.o.d"
  "atlas_probe"
  "atlas_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlas_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
