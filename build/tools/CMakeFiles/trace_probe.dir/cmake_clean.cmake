file(REMOVE_RECURSE
  "CMakeFiles/trace_probe.dir/trace_probe.cpp.o"
  "CMakeFiles/trace_probe.dir/trace_probe.cpp.o.d"
  "trace_probe"
  "trace_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
