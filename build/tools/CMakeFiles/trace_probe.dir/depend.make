# Empty dependencies file for trace_probe.
# This may be replaced when dependencies are built.
