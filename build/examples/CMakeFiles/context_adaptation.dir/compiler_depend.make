# Empty compiler generated dependencies file for context_adaptation.
# This may be replaced when dependencies are built.
