file(REMOVE_RECURSE
  "CMakeFiles/context_adaptation.dir/context_adaptation.cpp.o"
  "CMakeFiles/context_adaptation.dir/context_adaptation.cpp.o.d"
  "context_adaptation"
  "context_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
