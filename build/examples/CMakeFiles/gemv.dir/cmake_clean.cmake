file(REMOVE_RECURSE
  "CMakeFiles/gemv.dir/gemv.cpp.o"
  "CMakeFiles/gemv.dir/gemv.cpp.o.d"
  "gemv"
  "gemv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
