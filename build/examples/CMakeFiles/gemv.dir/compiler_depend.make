# Empty compiler generated dependencies file for gemv.
# This may be replaced when dependencies are built.
