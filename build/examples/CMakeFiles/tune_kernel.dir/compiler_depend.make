# Empty compiler generated dependencies file for tune_kernel.
# This may be replaced when dependencies are built.
