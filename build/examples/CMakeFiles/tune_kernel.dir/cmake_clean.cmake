file(REMOVE_RECURSE
  "CMakeFiles/tune_kernel.dir/tune_kernel.cpp.o"
  "CMakeFiles/tune_kernel.dir/tune_kernel.cpp.o.d"
  "tune_kernel"
  "tune_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
