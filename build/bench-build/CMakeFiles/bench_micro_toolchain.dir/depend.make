# Empty dependencies file for bench_micro_toolchain.
# This may be replaced when dependencies are built.
