file(REMOVE_RECURSE
  "../bench/bench_micro_toolchain"
  "../bench/bench_micro_toolchain.pdb"
  "CMakeFiles/bench_micro_toolchain.dir/bench_micro_toolchain.cpp.o"
  "CMakeFiles/bench_micro_toolchain.dir/bench_micro_toolchain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
