# Empty compiler generated dependencies file for bench_level2_gemv.
# This may be replaced when dependencies are built.
