file(REMOVE_RECURSE
  "../bench/bench_level2_gemv"
  "../bench/bench_level2_gemv.pdb"
  "CMakeFiles/bench_level2_gemv.dir/bench_level2_gemv.cpp.o"
  "CMakeFiles/bench_level2_gemv.dir/bench_level2_gemv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_level2_gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
