file(REMOVE_RECURSE
  "../bench/bench_fig3_opteron_ooc"
  "../bench/bench_fig3_opteron_ooc.pdb"
  "CMakeFiles/bench_fig3_opteron_ooc.dir/bench_fig3_opteron_ooc.cpp.o"
  "CMakeFiles/bench_fig3_opteron_ooc.dir/bench_fig3_opteron_ooc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_opteron_ooc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
