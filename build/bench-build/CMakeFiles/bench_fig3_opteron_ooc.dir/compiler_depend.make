# Empty compiler generated dependencies file for bench_fig3_opteron_ooc.
# This may be replaced when dependencies are built.
