file(REMOVE_RECURSE
  "../bench/bench_ablate_window"
  "../bench/bench_ablate_window.pdb"
  "CMakeFiles/bench_ablate_window.dir/bench_ablate_window.cpp.o"
  "CMakeFiles/bench_ablate_window.dir/bench_ablate_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
