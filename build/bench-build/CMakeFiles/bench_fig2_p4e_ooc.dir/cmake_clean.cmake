file(REMOVE_RECURSE
  "../bench/bench_fig2_p4e_ooc"
  "../bench/bench_fig2_p4e_ooc.pdb"
  "CMakeFiles/bench_fig2_p4e_ooc.dir/bench_fig2_p4e_ooc.cpp.o"
  "CMakeFiles/bench_fig2_p4e_ooc.dir/bench_fig2_p4e_ooc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_p4e_ooc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
