# Empty compiler generated dependencies file for bench_fig2_p4e_ooc.
# This may be replaced when dependencies are built.
