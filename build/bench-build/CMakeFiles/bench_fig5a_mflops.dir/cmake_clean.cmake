file(REMOVE_RECURSE
  "../bench/bench_fig5a_mflops"
  "../bench/bench_fig5a_mflops.pdb"
  "CMakeFiles/bench_fig5a_mflops.dir/bench_fig5a_mflops.cpp.o"
  "CMakeFiles/bench_fig5a_mflops.dir/bench_fig5a_mflops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_mflops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
