# Empty dependencies file for bench_fig4_p4e_inl2.
# This may be replaced when dependencies are built.
