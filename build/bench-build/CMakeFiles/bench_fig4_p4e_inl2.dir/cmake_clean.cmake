file(REMOVE_RECURSE
  "../bench/bench_fig4_p4e_inl2"
  "../bench/bench_fig4_p4e_inl2.pdb"
  "CMakeFiles/bench_fig4_p4e_inl2.dir/bench_fig4_p4e_inl2.cpp.o"
  "CMakeFiles/bench_fig4_p4e_inl2.dir/bench_fig4_p4e_inl2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_p4e_inl2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
