file(REMOVE_RECURSE
  "../bench/bench_ablate_turnaround"
  "../bench/bench_ablate_turnaround.pdb"
  "CMakeFiles/bench_ablate_turnaround.dir/bench_ablate_turnaround.cpp.o"
  "CMakeFiles/bench_ablate_turnaround.dir/bench_ablate_turnaround.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_turnaround.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
