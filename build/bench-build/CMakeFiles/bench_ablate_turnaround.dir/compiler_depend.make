# Empty compiler generated dependencies file for bench_ablate_turnaround.
# This may be replaced when dependencies are built.
