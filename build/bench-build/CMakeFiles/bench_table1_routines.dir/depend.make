# Empty dependencies file for bench_table1_routines.
# This may be replaced when dependencies are built.
