file(REMOVE_RECURSE
  "../bench/bench_table1_routines"
  "../bench/bench_table1_routines.pdb"
  "CMakeFiles/bench_table1_routines.dir/bench_table1_routines.cpp.o"
  "CMakeFiles/bench_table1_routines.dir/bench_table1_routines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_routines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
