# Empty compiler generated dependencies file for bench_fig7_contributions.
# This may be replaced when dependencies are built.
