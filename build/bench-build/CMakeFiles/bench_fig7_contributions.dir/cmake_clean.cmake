file(REMOVE_RECURSE
  "../bench/bench_fig7_contributions"
  "../bench/bench_fig7_contributions.pdb"
  "CMakeFiles/bench_fig7_contributions.dir/bench_fig7_contributions.cpp.o"
  "CMakeFiles/bench_fig7_contributions.dir/bench_fig7_contributions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_contributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
