# Empty dependencies file for bench_ablate_prefetch_drop.
# This may be replaced when dependencies are built.
