file(REMOVE_RECURSE
  "../bench/bench_ablate_prefetch_drop"
  "../bench/bench_ablate_prefetch_drop.pdb"
  "CMakeFiles/bench_ablate_prefetch_drop.dir/bench_ablate_prefetch_drop.cpp.o"
  "CMakeFiles/bench_ablate_prefetch_drop.dir/bench_ablate_prefetch_drop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_prefetch_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
