# Empty compiler generated dependencies file for bench_fig5b_incache_speedup.
# This may be replaced when dependencies are built.
