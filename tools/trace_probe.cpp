// Developer utility: dump the timing of a window of dynamic instructions.
#include <cstdio>
#include <cstdlib>

#include "fko/compiler.h"
#include "kernels/tester.h"
#include "search/linesearch.h"
#include "sim/timer.h"

using namespace ifko;

namespace {

class Tracer : public sim::InstObserver {
 public:
  Tracer(const arch::MachineConfig& cfg, sim::MemSystem& mem, uint64_t from,
         uint64_t to)
      : inner_(cfg, mem), from_(from), to_(to) {}

  void onInst(const sim::InstEvent& ev) override {
    uint64_t before = inner_.cycles();
    inner_.onInst(ev);
    ++count_;
    if (count_ >= from_ && count_ <= to_) {
      std::printf("%6llu  maxC=%8llu (+%4lld)  %s%s\n",
                  (unsigned long long)count_,
                  (unsigned long long)inner_.cycles(),
                  (long long)(inner_.cycles() - before),
                  ev.inst->str().c_str(), ev.taken ? " [taken]" : "");
    }
  }
  sim::TimingModel inner_;
  uint64_t count_ = 0, from_, to_;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t from = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;
  uint64_t to = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 460;
  kernels::KernelSpec spec{kernels::BlasOp::Copy, ir::Scal::F32};
  arch::MachineConfig m = arch::p4e();
  auto rep = fko::analyzeKernel(spec.hilSource(), m);
  fko::CompileOptions opts;
  opts.tuning = search::fkoDefaults(rep, m);
  auto r = fko::compileKernel(spec.hilSource(), opts, m);
  if (!r.ok) return 1;
  auto data = kernels::makeKernelData(spec, 20000);
  sim::MemSystem mem(m);
  Tracer tracer(m, mem, from, to);
  sim::Interp interp(r.fn, *data.mem, &tracer);
  interp.run(data.args(r.fn));
  std::printf("total %llu cycles\n",
              (unsigned long long)tracer.inner_.cycles());
  return 0;
}
