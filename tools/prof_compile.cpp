// Developer utility: profile one FKO compile + test configuration.
//
//   prof_compile [UR] [AE] [runRepeatable] [runRegalloc]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "kernels/registry.h"
#include "kernels/tester.h"
#include "support/str.h"

using namespace ifko;
using Clock = std::chrono::steady_clock;

namespace {

/// Positional integer argument, strictly validated — "prof_compile 4x"
/// must be an error, never atoi's silent prefix parse.
int64_t argInt(int argc, char** argv, int i, int64_t fallback) {
  if (argc <= i) return fallback;
  int64_t out = 0;
  if (!parseInt64(argv[i], &out)) {
    std::fprintf(stderr, "bad integer argument '%s'\n", argv[i]);
    std::fprintf(stderr,
                 "usage: prof_compile [UR] [AE] [runRepeatable] "
                 "[runRegalloc]\n");
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int ur = static_cast<int>(argInt(argc, argv, 1, 16));
  int ae = static_cast<int>(argInt(argc, argv, 2, 8));
  kernels::KernelSpec spec{kernels::BlasOp::Asum, ir::Scal::F32};
  fko::CompileOptions opts;
  opts.tuning.unroll = ur;
  opts.tuning.accumExpand = ae;
  opts.tuning.optimizeLoopControl = false;
  opts.runRepeatable = argInt(argc, argv, 3, 1) != 0;
  opts.runRegalloc = argInt(argc, argv, 4, 1) != 0;
  auto t0 = Clock::now();
  auto r = fko::compileKernel(spec.hilSource(), opts, arch::opteron());
  auto t1 = Clock::now();
  std::printf("compile ok=%d err=%s insts=%zu spills=%d in %lld ms\n", r.ok,
              r.error.c_str(), r.ok ? r.fn.instCount() : 0, r.spillSlots,
              static_cast<long long>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
                      .count()));
  if (r.ok) {
    auto data = kernels::makeKernelData(spec, 250);
    sim::Interp interp(r.fn, *data.mem, nullptr, 1 << 20);
    try {
      auto run = interp.run(data.args(r.fn));
      std::printf("ran %llu dyn insts, fp=%f\n",
                  static_cast<unsigned long long>(run.dynInsts),
                  run.fpResult.value_or(-1));
    } catch (const std::exception& e) {
      std::printf("RUN FAULT: %s\n", e.what());
    }
  }
  return 0;
}
