// Developer utility: profile one FKO compile + test configuration.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "kernels/registry.h"
#include "kernels/tester.h"

using namespace ifko;
using Clock = std::chrono::steady_clock;

int main(int argc, char** argv) {
  int ur = argc > 1 ? std::atoi(argv[1]) : 16;
  int ae = argc > 2 ? std::atoi(argv[2]) : 8;
  kernels::KernelSpec spec{kernels::BlasOp::Asum, ir::Scal::F32};
  fko::CompileOptions opts;
  opts.tuning.unroll = ur;
  opts.tuning.accumExpand = ae;
  opts.tuning.optimizeLoopControl = false;
  opts.runRepeatable = argc > 3 ? std::atoi(argv[3]) != 0 : true;
  opts.runRegalloc = argc > 4 ? std::atoi(argv[4]) != 0 : true;
  auto t0 = Clock::now();
  auto r = fko::compileKernel(spec.hilSource(), opts, arch::opteron());
  auto t1 = Clock::now();
  std::printf("compile ok=%d err=%s insts=%zu spills=%d in %lld ms\n", r.ok,
              r.error.c_str(), r.ok ? r.fn.instCount() : 0, r.spillSlots,
              static_cast<long long>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
                      .count()));
  if (r.ok) {
    auto data = kernels::makeKernelData(spec, 250);
    sim::Interp interp(r.fn, *data.mem, nullptr, 1 << 20);
    try {
      auto run = interp.run(data.args(r.fn));
      std::printf("ran %llu dyn insts, fp=%f\n",
                  static_cast<unsigned long long>(run.dynInsts),
                  run.fpResult.value_or(-1));
    } catch (const std::exception& e) {
      std::printf("RUN FAULT: %s\n", e.what());
    }
  }
  return 0;
}
