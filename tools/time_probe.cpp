// Developer utility: time one kernel configuration and dump stats.
#include <cstdio>
#include <cstring>

#include "baseline/baseline.h"
#include "fko/compiler.h"
#include "kernels/tester.h"
#include "search/linesearch.h"
#include "sim/timer.h"

using namespace ifko;

int main(int argc, char** argv) {
  int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
  kernels::KernelSpec spec{kernels::BlasOp::Copy, ir::Scal::F32};
  if (argc > 2 && std::strcmp(argv[2], "ddot") == 0)
    spec = {kernels::BlasOp::Dot, ir::Scal::F64};

  for (const auto& m : arch::allMachines()) {
    auto rep = fko::analyzeKernel(spec.hilSource(), m);
    auto params = search::fkoDefaults(rep, m);
    fko::CompileOptions opts;
    opts.tuning = params;
    auto r = fko::compileKernel(spec.hilSource(), opts, m);
    if (!r.ok) {
      std::printf("compile failed: %s\n", r.error.c_str());
      return 1;
    }
    auto t = sim::timeKernel(m, r.fn, spec, n, sim::TimeContext::OutOfCache);
    std::printf(
        "%s %s n=%lld: %llu cyc (%.2f/elem) insts=%llu\n"
        "  loads=%llu missL1=%llu missMem=%llu stores=%llu rfo=%llu nt=%llu\n"
        "  prefIssued=%llu prefDropped=%llu hw=%llu wb=%llu busBytes=%llu\n"
        "  branches=%llu mispredicts=%llu\n",
        spec.name().c_str(), m.name.c_str(), (long long)n,
        (unsigned long long)t.cycles, (double)t.cycles / (double)n,
        (unsigned long long)t.dynInsts, (unsigned long long)t.mem.loads,
        (unsigned long long)t.mem.loadMissL1,
        (unsigned long long)t.mem.loadMissMem,
        (unsigned long long)t.mem.stores, (unsigned long long)t.mem.storeRFOs,
        (unsigned long long)t.mem.ntStores,
        (unsigned long long)t.mem.prefIssued,
        (unsigned long long)t.mem.prefDropped,
        (unsigned long long)t.mem.hwPrefetches,
        (unsigned long long)t.mem.writebacks,
        (unsigned long long)t.mem.busBytes,
        (unsigned long long)t.core.branches,
        (unsigned long long)t.core.mispredicts);
  }
  return 0;
}
