// Developer utility: show per-variant ATLAS timings for one kernel.
#include <cstdio>
#include <cstring>

#include "atlas/atlas.h"
#include "kernels/tester.h"

using namespace ifko;

int main(int argc, char** argv) {
  int64_t n = argc > 1 ? std::atoll(argv[1]) : 80000;
  bool inl2 = argc > 2 && std::strcmp(argv[2], "inl2") == 0;
  for (auto prec : {ir::Scal::F32, ir::Scal::F64}) {
    for (auto op : {kernels::BlasOp::Iamax, kernels::BlasOp::Copy}) {
      kernels::KernelSpec spec{op, prec};
      for (const auto& m : arch::allMachines()) {
        auto pool = atlas::variantPool(spec, m);
        std::printf("%s on %s n=%lld %s:\n", spec.name().c_str(),
                    m.name.c_str(), static_cast<long long>(n),
                    inl2 ? "inL2" : "ooc");
        for (auto& v : pool) {
          auto t = sim::timeKernel(m, v.fn, spec, n,
                                   inl2 ? sim::TimeContext::InL2
                                        : sim::TimeContext::OutOfCache);
          std::printf("  %-18s%s %10llu cycles (%.2f cyc/elem)\n",
                      v.name.c_str(), v.assembly ? "*" : " ",
                      static_cast<unsigned long long>(t.cycles),
                      static_cast<double>(t.cycles) / static_cast<double>(n));
        }
      }
    }
  }
  return 0;
}
