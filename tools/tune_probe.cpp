// Developer utility: run the full iFKO line search for one kernel and show
// the ledger.
#include <cstdio>
#include <cstring>

#include "search/linesearch.h"

using namespace ifko;

int main(int argc, char** argv) {
  int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
  const char* opName = argc > 2 ? argv[2] : "dot";
  const char* mName = argc > 3 ? argv[3] : "p4e";
  bool inl2 = argc > 4 && std::strcmp(argv[4], "inl2") == 0;

  kernels::BlasOp op = kernels::BlasOp::Dot;
  for (auto o : kernels::allOps())
    if (kernels::opName(o) == opName) op = o;
  arch::MachineConfig m =
      std::strcmp(mName, "opteron") == 0 ? arch::opteron() : arch::p4e();

  for (auto prec : {ir::Scal::F32, ir::Scal::F64}) {
    kernels::KernelSpec spec{op, prec};
    search::SearchConfig cfg;
    cfg.n = n;
    cfg.context = inl2 ? sim::TimeContext::InL2 : sim::TimeContext::OutOfCache;
    auto r = search::tuneKernel(spec, m, cfg);
    if (!r.ok) {
      std::printf("%s: search failed: %s\n", spec.name().c_str(),
                  r.error.c_str());
      continue;
    }
    std::printf("%s on %s (%s): FKO %llu -> ifko %llu cycles (%.2fx), %d evals\n",
                spec.name().c_str(), m.name.c_str(),
                inl2 ? "inL2" : "ooc",
                (unsigned long long)r.defaultCycles,
                (unsigned long long)r.bestCycles, r.speedupOverDefaults(),
                r.evaluations);
    uint64_t prev = r.defaultCycles;
    for (const auto& d : r.ledger) {
      std::printf("  %-7s -> %10llu  (+%5.1f%%)\n", d.name.c_str(),
                  (unsigned long long)d.cyclesAfter,
                  100.0 * (static_cast<double>(prev) /
                               static_cast<double>(d.cyclesAfter) -
                           1.0));
      prev = d.cyclesAfter;
    }
    auto row = search::paramsRow(r.best, r.analysis);
    std::printf("  best: SV:WNT=%s PF_X=%s PF_Y=%s UR:AE=%s\n", row[0].c_str(),
                row[1].c_str(), row[2].c_str(), row[3].c_str());
  }
  return 0;
}
