// Load generator for the `ifko serve` daemon: measures the warm-query fast
// path against the cold tune-through path, and asserts the fast path never
// touches the evaluator.
//
//   serve_probe --socket=PATH | --port=N [--kernel=NAME] [--warm=N]
//               [--assert-speedup=X]
//
// Phases, over one connection:
//   1. STATS         baseline evaluation counter
//   2. TUNE <kernel> the cold path: a full search through the orchestrator
//                    (this also writes the wisdom record the warm phase hits)
//   3. QUERY x N     the warm path: every response must be a wisdom hit
//                    ("evaluations":0) — a map lookup, no evaluator
//   4. STATS         the evaluation counter must not have moved during 3
//
// Prints per-phase wall time and the cold/warm per-request ratio;
// --assert-speedup=X exits nonzero unless ratio >= X (the serve CI smoke
// uses 100).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "serve/client.h"
#include "support/json.h"
#include "support/str.h"

using namespace ifko;

namespace {

double seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Parses one response line; returns nullopt (with a message) unless it is
/// a well-formed `{"ok":true,...}` object.
std::optional<std::map<std::string, JsonValue>> parseOk(
    const std::optional<std::string>& resp, const char* what) {
  if (!resp.has_value()) {
    std::fprintf(stderr, "serve_probe: %s: no response\n", what);
    return std::nullopt;
  }
  std::map<std::string, JsonValue> obj;
  if (!parseJsonObject(*resp, &obj)) {
    std::fprintf(stderr, "serve_probe: %s: malformed response: %s\n", what,
                 resp->c_str());
    return std::nullopt;
  }
  const auto it = obj.find("ok");
  if (it == obj.end() || it->second.kind != JsonValue::Kind::Bool ||
      !it->second.boolean) {
    std::fprintf(stderr, "serve_probe: %s: daemon said no: %s\n", what,
                 resp->c_str());
    return std::nullopt;
  }
  return obj;
}

int64_t numField(const std::map<std::string, JsonValue>& obj,
                 const char* key) {
  const auto it = obj.find(key);
  return it != obj.end() && it->second.kind == JsonValue::Kind::Number
             ? it->second.asInt()
             : 0;
}

}  // namespace

int main(int argc, char** argv) {
  serve::Endpoint ep;
  std::string kernel = "ddot";
  int64_t warm = 200;
  double assertSpeedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (startsWith(a, "--socket=")) {
      ep.unixPath = a.substr(std::strlen("--socket="));
    } else if (startsWith(a, "--port=")) {
      int64_t port = 0;
      if (!parseInt64(a.substr(std::strlen("--port=")), &port) || port < 1) {
        std::fprintf(stderr, "serve_probe: bad --port\n");
        return 2;
      }
      ep.tcpPort = static_cast<int>(port);
    } else if (startsWith(a, "--kernel=")) {
      kernel = a.substr(std::strlen("--kernel="));
    } else if (startsWith(a, "--warm=")) {
      if (!parseInt64(a.substr(std::strlen("--warm=")), &warm) || warm < 1) {
        std::fprintf(stderr, "serve_probe: bad --warm\n");
        return 2;
      }
    } else if (startsWith(a, "--assert-speedup=")) {
      assertSpeedup = std::atof(a.c_str() + std::strlen("--assert-speedup="));
    } else {
      std::fprintf(stderr,
                   "usage: serve_probe --socket=PATH | --port=N "
                   "[--kernel=NAME] [--warm=N] [--assert-speedup=X]\n");
      return 2;
    }
  }
  if (ep.unixPath.empty() && ep.tcpPort == 0) {
    std::fprintf(stderr, "serve_probe: need --socket=PATH or --port=N\n");
    return 2;
  }

  serve::Connection conn;
  std::string err;
  if (!conn.connect(ep, &err)) {
    std::fprintf(stderr, "serve_probe: %s\n", err.c_str());
    return 1;
  }

  auto stats = parseOk(conn.roundTrip("STATS", &err), "STATS");
  if (!stats.has_value()) return 1;
  const int64_t evalsBefore = numField(*stats, "evaluations");

  // Cold path: a forced search.  Also seeds the wisdom record.
  const auto coldStart = std::chrono::steady_clock::now();
  auto tuned = parseOk(conn.roundTrip("TUNE " + kernel, &err), "TUNE");
  const auto coldEnd = std::chrono::steady_clock::now();
  if (!tuned.has_value()) return 1;
  const double coldSec = seconds(coldStart, coldEnd);
  std::printf("cold TUNE %s: %.4f s (%lld evaluations)\n", kernel.c_str(),
              coldSec,
              static_cast<long long>(numField(*tuned, "evaluations")));

  auto statsAfterTune = parseOk(conn.roundTrip("STATS", &err), "STATS");
  if (!statsAfterTune.has_value()) return 1;
  const int64_t evalsAfterTune = numField(*statsAfterTune, "evaluations");

  // Warm path: every QUERY must be answered from wisdom, evaluator untouched.
  const auto warmStart = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < warm; ++i) {
    auto q = parseOk(conn.roundTrip("QUERY " + kernel, &err), "QUERY");
    if (!q.has_value()) return 1;
    if (numField(*q, "evaluations") != 0) {
      std::fprintf(stderr,
                   "serve_probe: warm QUERY #%lld ran %lld evaluations — "
                   "not served from wisdom\n",
                   static_cast<long long>(i + 1),
                   static_cast<long long>(numField(*q, "evaluations")));
      return 1;
    }
  }
  const auto warmEnd = std::chrono::steady_clock::now();
  const double warmSec = seconds(warmStart, warmEnd);

  auto statsAfter = parseOk(conn.roundTrip("STATS", &err), "STATS");
  if (!statsAfter.has_value()) return 1;
  const int64_t evalsAfter = numField(*statsAfter, "evaluations");
  if (evalsAfter != evalsAfterTune) {
    std::fprintf(stderr,
                 "serve_probe: daemon evaluation counter moved during the "
                 "warm phase (%lld -> %lld)\n",
                 static_cast<long long>(evalsAfterTune),
                 static_cast<long long>(evalsAfter));
    return 1;
  }

  const double warmPer = warmSec / static_cast<double>(warm);
  std::printf("warm QUERY x%lld: %.4f s total, %.3f ms/query, 0 evaluations "
              "(daemon counter %lld -> %lld across the warm phase)\n",
              static_cast<long long>(warm), warmSec, 1000.0 * warmPer,
              static_cast<long long>(evalsAfterTune),
              static_cast<long long>(evalsAfter));
  std::printf("tune-through evaluations this probe: %lld\n",
              static_cast<long long>(evalsAfterTune - evalsBefore));

  const double ratio = warmPer > 0 ? coldSec / warmPer : 0.0;
  std::printf("cold/warm per-request ratio: %.0fx\n", ratio);
  if (assertSpeedup > 0) {
    const bool pass = ratio >= assertSpeedup;
    std::printf("assert ratio >= %.0f: %s\n", assertSpeedup,
                pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
  }
  return 0;
}
