// Renders a human-readable report from an orchestrator event trace
// (ifko tune / tune-all --trace=FILE; schema in docs/TUNING.md).
//
//   tune_report [<trace.jsonl>...] [--wisdom=FILE] [--ledger] [--all-runs]
//               [--attr]
//
// Several trace files aggregate into one report (the fleet posture: each
// tune-all worker writes its own trace; see docs/DISTRIBUTED.md).  More
// than one trace implies --all-runs, since "the last run" of independent
// files is meaningless.
//
// Summarizes, per kernel: candidates evaluated, cache hit rate, tester and
// compile rejections, timeouts and crashes the search survived, the
// default -> best cycle improvement, and (with --ledger) the per-dimension
// progression the search committed.  --attr adds the trace-v3 cycle
// attribution: per kernel, the share of cycles each stall cause claims for
// the FKO defaults versus the search's winner.  The trace file is
// append-mode across runs; each run opens with a run_start event.  By
// default only the last run is reported — --all-runs aggregates every run
// in the file.
//
// --wisdom=FILE adds a wisdom-store summary (docs/SERVING.md): one row per
// record — kernel, machine, context, N-class, cycles, provenance — plus,
// when a trace is also given, staleness against it: "stale" marks a record
// whose kernel the trace has since tuned to strictly fewer cycles, i.e. the
// store is behind what the most recent run found.  Works without a trace
// (wisdom summary only).
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "support/json.h"
#include "support/str.h"
#include "support/table.h"
#include "wisdom/wisdom.h"

using namespace ifko;

namespace {

struct DimBest {
  std::string dim;
  uint64_t bestCycles = 0;
};

// The closed cause set of the trace-v3 `counters` object, in the
// sim::StallCause enum order (fields are named "attr_<cause>").
constexpr size_t kNumCauses = 10;
constexpr const char* kCauseNames[kNumCauses] = {
    "issue",  "fp_dep", "int_dep", "rob",      "mispredict",
    "unit",   "mem_l1", "mem_l2",  "mem_main", "store"};

/// One candidate's attribution vector, pulled from its nested counters.
struct AttrSample {
  bool have = false;
  std::array<uint64_t, kNumCauses> cycles{};

  [[nodiscard]] uint64_t total() const {
    uint64_t t = 0;
    for (uint64_t v : cycles) t += v;
    return t;
  }
};

struct KernelStats {
  std::string name;
  int candidates = 0;
  int hits = 0;
  int misses = 0;
  int testerFails = 0;
  int compileFails = 0;
  int timeouts = 0;
  int crashes = 0;
  int retries = 0;
  std::vector<DimBest> ledger;
  bool ok = false;
  bool ended = false;
  bool quarantined = false;
  std::string error;
  uint64_t defaultCycles = 0;
  uint64_t bestCycles = 0;
  double speedup = 0.0;
  double seconds = 0.0;
  // --attr: the DEFAULTS candidate's attribution and the best (fewest
  // cycles) passing candidate's, from the nested trace-v3 counters.
  AttrSample defAttr;
  AttrSample bestAttr;
  uint64_t bestAttrCycles = 0;
};

const JsonValue* get(const std::map<std::string, JsonValue>& obj,
                     const char* key) {
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::string getStr(const std::map<std::string, JsonValue>& obj,
                   const char* key) {
  const JsonValue* v = get(obj, key);
  return v != nullptr && v->kind == JsonValue::Kind::String ? v->string : "";
}

double getNum(const std::map<std::string, JsonValue>& obj, const char* key) {
  const JsonValue* v = get(obj, key);
  return v != nullptr && v->kind == JsonValue::Kind::Number ? v->number : 0.0;
}

bool getBool(const std::map<std::string, JsonValue>& obj, const char* key) {
  const JsonValue* v = get(obj, key);
  return v != nullptr && v->kind == JsonValue::Kind::Bool && v->boolean;
}

/// Reads the "attr_*" fields out of a candidate's nested counters object.
AttrSample readAttr(const std::map<std::string, JsonValue>& obj) {
  AttrSample s;
  const JsonValue* counters = get(obj, "counters");
  if (counters == nullptr || counters->kind != JsonValue::Kind::Object ||
      counters->object == nullptr)
    return s;
  for (size_t i = 0; i < kNumCauses; ++i)
    s.cycles[i] = static_cast<uint64_t>(
        getNum(*counters->object, ("attr_" + std::string(kCauseNames[i])).c_str()));
  s.have = s.total() != 0;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bool showLedger = false;
  bool allRuns = false;
  bool showAttr = false;
  std::vector<std::string> tracePaths;
  std::string wisdomPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ledger") == 0) showLedger = true;
    else if (std::strcmp(argv[i], "--all-runs") == 0) allRuns = true;
    else if (std::strcmp(argv[i], "--attr") == 0) showAttr = true;
    else if (startsWith(argv[i], "--wisdom="))
      wisdomPath = argv[i] + std::strlen("--wisdom=");
    else if (argv[i][0] != '-') tracePaths.push_back(argv[i]);
    else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  if (tracePaths.empty() && wisdomPath.empty()) {
    std::fprintf(stderr,
                 "usage: tune_report [<trace.jsonl>...] [--wisdom=FILE] "
                 "[--ledger] [--all-runs] [--attr]\n");
    return 2;
  }
  // "The last run" of several independent files is meaningless; aggregate.
  const bool multiTrace = tracePaths.size() > 1;
  if (multiTrace) allRuns = true;

  std::vector<std::string> order;
  std::map<std::string, KernelStats> kernels;
  auto statsFor = [&](const std::string& name) -> KernelStats& {
    auto it = kernels.find(name);
    if (it == kernels.end()) {
      order.push_back(name);
      it = kernels.emplace(name, KernelStats{name}).first;
    }
    return it->second;
  };

  bool sawBatchEnd = false;
  double batchSeconds = 0.0;
  int badLines = 0;
  int runs = 0;
  for (const std::string& tracePath : tracePaths) {
    std::ifstream in(tracePath);
    if (!in) {
      std::fprintf(stderr, "cannot read '%s'\n", tracePath.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::map<std::string, JsonValue> obj;
      if (!parseJsonObject(line, &obj)) {
        ++badLines;
        continue;
      }
      std::string event = getStr(obj, "event");
      std::string kernel = getStr(obj, "kernel");
      if (event == "run_start") {
        ++runs;
        if (!allRuns) {
          // Only the last run matters: drop everything accumulated so far.
          order.clear();
          kernels.clear();
          sawBatchEnd = false;
          batchSeconds = 0.0;
        }
      } else if (event == "candidate") {
        KernelStats& k = statsFor(kernel);
        ++k.candidates;
        if (getStr(obj, "cache") == "hit") ++k.hits;
        else ++k.misses;
        std::string verdict = getStr(obj, "verdict");
        if (verdict == "tester_fail") ++k.testerFails;
        else if (verdict == "compile_fail") ++k.compileFails;
        else if (verdict == "timeout") ++k.timeouts;
        else if (verdict == "crash") ++k.crashes;
        k.retries += static_cast<int>(getNum(obj, "attempts")) > 1
                         ? static_cast<int>(getNum(obj, "attempts")) - 1
                         : 0;
        if (verdict == "pass") {
          AttrSample attr = readAttr(obj);
          if (attr.have) {
            std::string dim = getStr(obj, "dim");
            if (dim == "DEFAULTS" && !k.defAttr.have) k.defAttr = attr;
            uint64_t cycles = static_cast<uint64_t>(getNum(obj, "cycles"));
            if (!k.bestAttr.have || cycles < k.bestAttrCycles) {
              k.bestAttr = attr;
              k.bestAttrCycles = cycles;
            }
          }
        }
      } else if (event == "dimension_end") {
        statsFor(kernel).ledger.push_back(
            {getStr(obj, "dim"),
             static_cast<uint64_t>(getNum(obj, "best_cycles"))});
      } else if (event == "kernel_end") {
        KernelStats& k = statsFor(kernel);
        k.ended = true;
        k.ok = getBool(obj, "ok");
        k.quarantined = getBool(obj, "quarantined");
        k.error = getStr(obj, "error");
        k.defaultCycles = static_cast<uint64_t>(getNum(obj, "default_cycles"));
        k.bestCycles = static_cast<uint64_t>(getNum(obj, "best_cycles"));
        k.speedup = getNum(obj, "speedup");
        k.seconds = getNum(obj, "seconds");
      } else if (event == "batch_end") {
        sawBatchEnd = true;
        batchSeconds += getNum(obj, "seconds");
      }
    }
  }

  if (order.empty() && !tracePaths.empty()) {
    std::fprintf(stderr, "no trace events in %s\n",
                 tracePaths.size() == 1 ? ("'" + tracePaths[0] + "'").c_str()
                                        : "the given trace files");
    return 1;
  }

  if (!order.empty()) {
    TextTable t;
    t.setHeader({"kernel", "cands", "hit%", "tester-", "compile-", "t/o",
                 "crash", "FKO cyc", "ifko cyc", "speedup", "sec"});
    int totalCands = 0, totalHits = 0, totalTimeouts = 0, totalCrashes = 0;
    int totalRetries = 0, quarantinedKernels = 0;
    for (const auto& name : order) {
      const KernelStats& k = kernels.at(name);
      totalCands += k.candidates;
      totalHits += k.hits;
      totalTimeouts += k.timeouts;
      totalCrashes += k.crashes;
      totalRetries += k.retries;
      quarantinedKernels += k.quarantined ? 1 : 0;
      double hitPct = k.candidates == 0 ? 0.0 : 100.0 * k.hits / k.candidates;
      std::string label = k.name + (k.quarantined ? " (quarantined)" : "");
      if (!k.ended || !k.ok) {
        t.addRow({label, std::to_string(k.candidates), fmtFixed(hitPct, 1),
                  std::to_string(k.testerFails), std::to_string(k.compileFails),
                  std::to_string(k.timeouts), std::to_string(k.crashes), "-",
                  "-",
                  !k.ended ? "(incomplete)"
                           : (k.error.empty() ? "(failed)" : k.error),
                  fmtFixed(k.seconds, 2)});
        continue;
      }
      t.addRow({label, std::to_string(k.candidates), fmtFixed(hitPct, 1),
                std::to_string(k.testerFails), std::to_string(k.compileFails),
                std::to_string(k.timeouts), std::to_string(k.crashes),
                std::to_string(k.defaultCycles), std::to_string(k.bestCycles),
                fmtFixed(k.speedup, 2) + "x", fmtFixed(k.seconds, 2)});
    }
    std::fputs(t.str().c_str(), stdout);

    std::printf("\n%zu kernels, %d candidate evaluations, %.1f%% served from "
                "cache",
                order.size(), totalCands,
                totalCands == 0 ? 0.0 : 100.0 * totalHits / totalCands);
    if (totalTimeouts + totalCrashes + totalRetries > 0)
      std::printf(", %d timeouts / %d crashes / %d retries survived",
                  totalTimeouts, totalCrashes, totalRetries);
    if (quarantinedKernels > 0)
      std::printf(", %d kernel(s) quarantined", quarantinedKernels);
    if (sawBatchEnd) std::printf(", %.2f s wall", batchSeconds);
    if (badLines != 0)
      std::printf(" (%d malformed trace lines skipped)", badLines);
    if (runs > 1)
      std::printf(
          "\n%s",
          allRuns ? ("aggregated over " + std::to_string(runs) + " runs" +
                     (multiTrace ? " in " + std::to_string(tracePaths.size()) +
                                       " trace files"
                                 : std::string(" (--all-runs)")) +
                     "\n")
                        .c_str()
                  : ("trace holds " + std::to_string(runs) +
                     " runs; reporting the last (use --all-runs "
                     "to aggregate)\n")
                        .c_str());
    else
      std::printf("\n");
  }

  if (showLedger) {
    for (const auto& name : order) {
      const KernelStats& k = kernels.at(name);
      if (k.ledger.empty()) continue;
      std::printf("\n%s ledger (default %llu cycles):\n", k.name.c_str(),
                  static_cast<unsigned long long>(k.defaultCycles));
      uint64_t prev = k.defaultCycles;
      for (const auto& d : k.ledger) {
        double gain = d.bestCycles == 0
                          ? 0.0
                          : 100.0 * (static_cast<double>(prev) /
                                         static_cast<double>(d.bestCycles) -
                                     1.0);
        std::printf("  %-7s -> %10llu cycles (%+.1f%%)\n", d.dim.c_str(),
                    static_cast<unsigned long long>(d.bestCycles), gain);
        prev = d.bestCycles;
      }
    }
  }

  if (showAttr) {
    // Per-cause share of each run's own cycle total; attribution sums
    // exactly to the cycle count, so the shares per row sum to 100.
    TextTable a;
    std::vector<std::string> header = {"kernel", "who"};
    for (const char* c : kCauseNames) header.emplace_back(c);
    a.setHeader(header);
    int kernelsWithAttr = 0;
    auto addAttrRow = [&](const std::string& label, const char* who,
                          const AttrSample& s) {
      std::vector<std::string> row = {label, who};
      uint64_t total = s.total();
      for (size_t i = 0; i < kNumCauses; ++i)
        row.push_back(
            fmtFixed(total == 0 ? 0.0
                                : 100.0 * static_cast<double>(s.cycles[i]) /
                                      static_cast<double>(total),
                     1));
      a.addRow(row);
    };
    for (const auto& name : order) {
      const KernelStats& k = kernels.at(name);
      if (!k.defAttr.have && !k.bestAttr.have) continue;
      ++kernelsWithAttr;
      if (k.defAttr.have) addAttrRow(k.name, "FKO", k.defAttr);
      if (k.bestAttr.have) addAttrRow(k.name, "ifko", k.bestAttr);
    }
    if (kernelsWithAttr == 0) {
      std::printf("\nno attribution counters in the trace (pre-v3 trace, or "
                  "all candidates replayed from a pre-v3 cache)\n");
    } else {
      std::printf("\ncycle attribution (%% of each run's cycles):\n");
      std::fputs(a.str().c_str(), stdout);
    }
  }

  if (!wisdomPath.empty()) {
    wisdom::WisdomStore store;
    std::string werr;
    if (!store.load(wisdomPath, &werr)) {
      std::fprintf(stderr, "cannot read wisdom '%s': %s\n", wisdomPath.c_str(),
                   werr.c_str());
      return 1;
    }
    TextTable w;
    w.setHeader({"kernel", "machine", "context", "N", "FKO cyc", "best cyc",
                 "speedup", "evals", "run", "vs trace"});
    size_t stale = 0;
    for (const wisdom::WisdomRecord* rec : store.records()) {
      // Staleness: the trace's most recent tune of this kernel found
      // strictly fewer cycles than the record remembers — the store is
      // behind and worth re-exporting.
      std::string vsTrace = "-";
      auto it = kernels.find(rec->kernel);
      if (it != kernels.end() && it->second.ok && it->second.bestCycles > 0) {
        if (it->second.bestCycles < rec->bestCycles) {
          vsTrace = "stale (trace " + std::to_string(it->second.bestCycles) +
                    " < " + std::to_string(rec->bestCycles) + ")";
          ++stale;
        } else {
          vsTrace = "fresh";
        }
      }
      w.addRow({rec->kernel, rec->key.machine, rec->key.context,
                rec->key.nClass, std::to_string(rec->defaultCycles),
                std::to_string(rec->bestCycles),
                fmtFixed(rec->speedup(), 2) + "x",
                std::to_string(rec->evaluations), rec->runId, vsTrace});
    }
    std::printf("\nwisdom store %s: %zu record(s)", wisdomPath.c_str(),
                store.size());
    if (store.damagedLines() > 0)
      std::printf(", %zu damaged line(s) skipped", store.damagedLines());
    if (store.schemaSkippedLines() > 0)
      std::printf(", %zu line(s) from another wisdom_schema skipped",
                  store.schemaSkippedLines());
    if (!tracePaths.empty())
      std::printf(", %zu stale vs th%s trace%s", stale,
                  tracePaths.size() == 1 ? "is" : "ese",
                  tracePaths.size() == 1 ? "" : "s");
    std::printf("\n");
    std::fputs(w.str().c_str(), stdout);
  }
  return 0;
}
