// Head-to-head comparison of the search strategies at equal budget.
//
//   strategy_compare [--arch=p4e|opteron] [--context=ooc|inl2] [--n=N]
//                    [--fast] [--budget=N] [--search-seed=S]
//                    [--kernel=NAME]...
//
// For each registry kernel (or the --kernel subset), the line search runs
// first — unlimited unless --budget is given — and its proposal count
// becomes the budget for every other strategy, so each stochastic search
// gets exactly as many observed candidates as the paper's search spent.
// The table reports best cycles (and proposals used) per kernel x strategy,
// with the per-kernel winner marked '*'.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "kernels/registry.h"
#include "search/strategy/strategy.h"
#include "support/str.h"
#include "support/table.h"

using namespace ifko;

namespace {

/// Strictly validated flag value: "--n=80k" is an error, not a silent
/// fallback (support/str's parseInt64 is the shared strict parser).
int64_t numFlag(const char* name, const char* v) {
  int64_t out = 0;
  if (!parseInt64(v, &out)) {
    std::fprintf(stderr, "bad %s (want integer): '%s'\n", name, v);
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  arch::MachineConfig machine = arch::p4e();
  sim::TimeContext context = sim::TimeContext::OutOfCache;
  int64_t n = 0;
  bool fast = false;
  int64_t budget = 0;
  uint64_t seed = 1;
  std::vector<std::string> only;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--fast") fast = true;
    else if (a == "--arch=opteron") machine = arch::opteron();
    else if (a == "--arch=p4e") machine = arch::p4e();
    else if (a == "--context=inl2") context = sim::TimeContext::InL2;
    else if (a == "--context=ooc") context = sim::TimeContext::OutOfCache;
    else if (startsWith(a, "--n=")) n = numFlag("--n", a.c_str() + 4);
    else if (startsWith(a, "--budget="))
      budget = numFlag("--budget", a.c_str() + 9);
    else if (startsWith(a, "--search-seed="))
      seed = static_cast<uint64_t>(numFlag("--search-seed", a.c_str() + 14));
    else if (startsWith(a, "--kernel=")) only.push_back(a.substr(9));
    else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return 2;
    }
  }

  search::SearchConfig cfg =
      fast ? search::SearchConfig::smoke() : search::SearchConfig{};
  cfg.context = context;
  if (n > 0) cfg.n = n;

  const auto& strategies = search::allStrategies();
  TextTable t;
  {
    std::vector<std::string> header = {"kernel"};
    for (search::StrategyKind k : strategies)
      header.push_back(std::string(search::strategyName(k)));
    t.setHeader(header);
  }

  int kernelsRun = 0;
  std::vector<int> wins(strategies.size(), 0);
  for (const auto& spec : kernels::allKernels()) {
    if (!only.empty()) {
      bool wanted = false;
      for (const auto& name : only) wanted |= name == spec.name();
      if (!wanted) continue;
    }

    // The line search sets the budget: what the paper's search spent.
    search::Budget lineBudget;
    lineBudget.maxEvaluations = static_cast<int>(budget);
    lineBudget.seed = seed;
    std::vector<search::TuneResult> results(strategies.size());
    results[0] = search::tuneKernelWithStrategy(
        spec, machine, cfg, search::StrategyKind::Line, lineBudget);
    if (!results[0].ok) {
      std::fprintf(stderr, "%s: line search failed: %s\n",
                   spec.name().c_str(), results[0].error.c_str());
      continue;
    }
    search::Budget matched = lineBudget;
    matched.maxEvaluations = results[0].proposals;
    for (size_t s = 1; s < strategies.size(); ++s)
      results[s] = search::tuneKernelWithStrategy(spec, machine, cfg,
                                                  strategies[s], matched);

    uint64_t best = UINT64_MAX;
    for (const auto& r : results)
      if (r.ok && r.bestCycles < best) best = r.bestCycles;

    std::vector<std::string> cells = {spec.name()};
    for (size_t s = 0; s < strategies.size(); ++s) {
      const search::TuneResult& r = results[s];
      if (!r.ok) {
        cells.push_back("-");
        continue;
      }
      if (r.bestCycles == best) ++wins[s];
      cells.push_back(std::to_string(r.bestCycles) +
                      (r.bestCycles == best ? "*" : "") + " (" +
                      std::to_string(r.proposals) + ")");
    }
    t.addRow(cells);
    ++kernelsRun;
    std::fprintf(stderr, "  %-8s done (budget %d)\n", spec.name().c_str(),
                 matched.maxEvaluations);
  }

  std::printf("=== strategy comparison: %s, %s, N=%lld, seed %llu ===\n"
              "(best cycles (proposals used); '*' = per-kernel best)\n\n",
              machine.name.c_str(),
              std::string(sim::contextName(context)).c_str(),
              static_cast<long long>(cfg.n),
              static_cast<unsigned long long>(seed));
  std::fputs(t.str().c_str(), stdout);
  std::printf("\nwins (ties count for every winner) over %d kernels:", kernelsRun);
  for (size_t s = 0; s < strategies.size(); ++s)
    std::printf("  %s=%d", std::string(search::strategyName(strategies[s])).c_str(),
                wins[s]);
  std::printf("\n");
  return kernelsRun > 0 ? 0 : 1;
}
