// Head-to-head comparison of the search strategies at equal budget.
//
//   strategy_compare [--arch=p4e|opteron] [--context=ooc|inl2] [--n=N]
//                    [--fast] [--budget=N] [--search-seed=S]
//                    [--kernel=NAME]... [--gate] [--gate-tol=PCT]
//
// For each registry kernel (or the --kernel subset), the line search runs
// first — unlimited unless --budget is given — and its proposal count
// becomes the budget for every other strategy, so each stochastic search
// gets exactly as many observed candidates as the paper's search spent.
// The table reports best cycles (and proposals used) per kernel x strategy,
// with the per-kernel winner marked '*'.
//
// --gate turns the comparison into a pass/fail search-quality check (the
// CI step runs it at --fast --budget=32):
//   1. attribution must match-or-beat hillclimb on every kernel — it
//      searches a superset of the climber's neighborhood, so any loss
//      means the guidance regressed — and strictly beat it somewhere,
//      so the attribution signal is demonstrably pulling its weight;
//   2. bandit must land within --gate-tol percent (default 5) of the
//      best constituent arm on every kernel — the exploration tax is
//      bounded.
// The simulator and every strategy are deterministic at a fixed seed, so
// the gate is exactly reproducible locally.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "kernels/registry.h"
#include "search/strategy/strategy.h"
#include "support/str.h"
#include "support/table.h"

using namespace ifko;

namespace {

/// Strictly validated flag value: "--n=80k" is an error, not a silent
/// fallback (support/str's parseInt64 is the shared strict parser).
int64_t numFlag(const char* name, const char* v) {
  int64_t out = 0;
  if (!parseInt64(v, &out)) {
    std::fprintf(stderr, "bad %s (want integer): '%s'\n", name, v);
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  arch::MachineConfig machine = arch::p4e();
  sim::TimeContext context = sim::TimeContext::OutOfCache;
  int64_t n = 0;
  bool fast = false;
  int64_t budget = 0;
  uint64_t seed = 1;
  bool gate = false;
  int64_t gateTol = 5;
  std::vector<std::string> only;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--fast") fast = true;
    else if (a == "--gate") gate = true;
    else if (startsWith(a, "--gate-tol="))
      gateTol = numFlag("--gate-tol", a.c_str() + 11);
    else if (a == "--arch=opteron") machine = arch::opteron();
    else if (a == "--arch=p4e") machine = arch::p4e();
    else if (a == "--context=inl2") context = sim::TimeContext::InL2;
    else if (a == "--context=ooc") context = sim::TimeContext::OutOfCache;
    else if (startsWith(a, "--n=")) n = numFlag("--n", a.c_str() + 4);
    else if (startsWith(a, "--budget="))
      budget = numFlag("--budget", a.c_str() + 9);
    else if (startsWith(a, "--search-seed="))
      seed = static_cast<uint64_t>(numFlag("--search-seed", a.c_str() + 14));
    else if (startsWith(a, "--kernel=")) only.push_back(a.substr(9));
    else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return 2;
    }
  }

  search::SearchConfig cfg =
      fast ? search::SearchConfig::smoke() : search::SearchConfig{};
  cfg.context = context;
  if (n > 0) cfg.n = n;

  const auto& strategies = search::allStrategies();
  TextTable t;
  {
    std::vector<std::string> header = {"kernel"};
    for (search::StrategyKind k : strategies)
      header.push_back(std::string(search::strategyName(k)));
    t.setHeader(header);
  }

  int kernelsRun = 0;
  std::vector<int> wins(strategies.size(), 0);
  size_t iHill = 0, iAttr = 0, iBandit = 0;
  for (size_t s = 0; s < strategies.size(); ++s) {
    if (strategies[s] == search::StrategyKind::HillClimb) iHill = s;
    if (strategies[s] == search::StrategyKind::Attribution) iAttr = s;
    if (strategies[s] == search::StrategyKind::Bandit) iBandit = s;
  }
  bool attrStrictWin = false;
  std::vector<std::string> gateFailures;
  for (const auto& spec : kernels::allKernels()) {
    if (!only.empty()) {
      bool wanted = false;
      for (const auto& name : only) wanted |= name == spec.name();
      if (!wanted) continue;
    }

    // The line search sets the budget: what the paper's search spent.
    search::Budget lineBudget;
    lineBudget.maxEvaluations = static_cast<int>(budget);
    lineBudget.seed = seed;
    std::vector<search::TuneResult> results(strategies.size());
    results[0] = search::tuneKernelWithStrategy(
        spec, machine, cfg, search::StrategyKind::Line, lineBudget);
    if (!results[0].ok) {
      std::fprintf(stderr, "%s: line search failed: %s\n",
                   spec.name().c_str(), results[0].error.c_str());
      continue;
    }
    search::Budget matched = lineBudget;
    matched.maxEvaluations = results[0].proposals;
    for (size_t s = 1; s < strategies.size(); ++s)
      results[s] = search::tuneKernelWithStrategy(spec, machine, cfg,
                                                  strategies[s], matched);

    uint64_t best = UINT64_MAX;
    for (const auto& r : results)
      if (r.ok && r.bestCycles < best) best = r.bestCycles;

    std::vector<std::string> cells = {spec.name()};
    for (size_t s = 0; s < strategies.size(); ++s) {
      const search::TuneResult& r = results[s];
      if (!r.ok) {
        cells.push_back("-");
        continue;
      }
      if (r.bestCycles == best) ++wins[s];
      cells.push_back(std::to_string(r.bestCycles) +
                      (r.bestCycles == best ? "*" : "") + " (" +
                      std::to_string(r.proposals) + ")");
    }
    t.addRow(cells);
    ++kernelsRun;
    std::fprintf(stderr, "  %-8s done (budget %d)\n", spec.name().c_str(),
                 matched.maxEvaluations);

    if (gate) {
      const search::TuneResult& attr = results[iAttr];
      const search::TuneResult& hill = results[iHill];
      const search::TuneResult& bandit = results[iBandit];
      if (attr.ok && hill.ok) {
        if (attr.bestCycles > hill.bestCycles)
          gateFailures.push_back(
              spec.name() + ": attribution " +
              std::to_string(attr.bestCycles) + " loses to hillclimb " +
              std::to_string(hill.bestCycles));
        else if (attr.bestCycles < hill.bestCycles)
          attrStrictWin = true;
      }
      uint64_t constituent = UINT64_MAX;
      for (size_t s = 0; s < strategies.size(); ++s)
        if (s != iBandit && results[s].ok)
          constituent = std::min(constituent, results[s].bestCycles);
      if (bandit.ok && constituent != UINT64_MAX) {
        const uint64_t ceiling =
            constituent + constituent * static_cast<uint64_t>(gateTol) / 100;
        if (bandit.bestCycles > ceiling)
          gateFailures.push_back(
              spec.name() + ": bandit " + std::to_string(bandit.bestCycles) +
              " beyond " + std::to_string(gateTol) +
              "% of best constituent " + std::to_string(constituent));
      }
    }
  }

  std::printf("=== strategy comparison: %s, %s, N=%lld, seed %llu ===\n"
              "(best cycles (proposals used); '*' = per-kernel best)\n\n",
              machine.name.c_str(),
              std::string(sim::contextName(context)).c_str(),
              static_cast<long long>(cfg.n),
              static_cast<unsigned long long>(seed));
  std::fputs(t.str().c_str(), stdout);
  std::printf("\nwins (ties count for every winner) over %d kernels:", kernelsRun);
  for (size_t s = 0; s < strategies.size(); ++s)
    std::printf("  %s=%d", std::string(search::strategyName(strategies[s])).c_str(),
                wins[s]);
  std::printf("\n");

  if (gate) {
    if (kernelsRun > 0 && !attrStrictWin)
      gateFailures.push_back(
          "attribution never strictly beat hillclimb on any kernel");
    if (gateFailures.empty()) {
      std::printf("gate: PASS (%d kernels, bandit tolerance %lld%%)\n",
                  kernelsRun, static_cast<long long>(gateTol));
    } else {
      std::printf("gate: FAIL\n");
      for (const auto& f : gateFailures)
        std::printf("  %s\n", f.c_str());
      return 1;
    }
  }
  return kernelsRun > 0 ? 0 : 1;
}
