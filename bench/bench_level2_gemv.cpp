// Extension bench (beyond the paper's Level 1 evaluation): the nested-loop
// support applied to Level 2 BLAS.  Compares the baseline compiler models
// against FKO-transformed gemv, in and out of cache, on both machines.
#include <cstdio>

#include "harness.h"
#include "kernels/level2.h"

int main() {
  using namespace ifko;
  auto sz = bench::sizes();
  const int64_t m = sz.fast ? 64 : 256;
  const int64_t nOoc = sz.fast ? 128 : 512;

  std::printf("=== Extension: dgemv (%lldx%lld) ===\n\n",
              static_cast<long long>(m), static_cast<long long>(nOoc));
  TextTable t;
  t.setHeader({"machine", "context", "scalar", "icc-like", "FKO tuned",
               "tuned speedup"});
  std::string src = kernels::gemvSource(ir::Scal::F64);
  for (const auto& machine : arch::allMachines()) {
    for (auto ctx : {sim::TimeContext::OutOfCache, sim::TimeContext::InL2}) {
      auto time = [&](const opt::TuningParams& p) -> uint64_t {
        fko::CompileOptions opts;
        opts.tuning = p;
        auto r = fko::compileKernel(src, opts, machine);
        if (!r.ok || !kernels::testGemv(r.fn, 8, 17).ok) return 0;
        return kernels::timeGemv(machine, r.fn, m, nOoc, ctx).cycles;
      };
      opt::TuningParams scalar;
      scalar.simdVectorize = false;
      opt::TuningParams icc;  // SV + modest unroll + fixed prefetch
      icc.unroll = 2;
      icc.prefetch["A"] = {true, ir::PrefKind::NTA, 8 * machine.lineBytes()};
      opt::TuningParams tuned;
      tuned.unroll = 4;
      tuned.accumExpand = 4;
      tuned.prefetch["A"] = {true, ir::PrefKind::NTA, 16 * machine.lineBytes()};

      uint64_t cs = time(scalar), ci = time(icc), ct = time(tuned);
      if (cs == 0 || ci == 0 || ct == 0) continue;
      t.addRow({machine.name, std::string(sim::contextName(ctx)),
                std::to_string(cs), std::to_string(ci), std::to_string(ct),
                fmtFixed(static_cast<double>(cs) / static_cast<double>(ct), 2) +
                    "x"});
    }
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf(
      "\nThe inner dot-product loop gets the full SV/UR/AE/PF treatment;\n"
      "the outer row loop lowers plainly (paper future work, implemented).\n");
  return 0;
}
