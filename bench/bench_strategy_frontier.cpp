// Best-cycles-vs-evaluations frontier of every search strategy, per kernel.
//
// Each strategy gets the same evaluation budget (IFKO_BUDGET, default 64)
// and the same seed (IFKO_SEED, default 1); the driver's FrontierPoint
// curve records when each improvement landed.  stdout is machine-readable
// JSONL — one flat object per frontier point:
//
//   {"kernel":..,"strategy":..,"proposals":..,"cycles":..}
//
// and one summary object per kernel x strategy:
//
//   {"kernel":..,"strategy":..,"summary":1,"best_cycles":..,
//    "proposals":..,"evaluations":..,"beats_line":0|1}
//
// (flat, because support/json's reader is a flat-object parser).  The
// human-readable table — and whether some non-line strategy matched or
// beat the line search anywhere, the claim the pluggable subsystem rides
// on — goes to stderr.
#include <cstdio>
#include <vector>

#include "harness.h"
#include "search/strategy/strategy.h"
#include "support/json.h"

int main() {
  using namespace ifko;
  auto sz = bench::sizes();
  const int budget = static_cast<int>(envInt("IFKO_BUDGET", 64));
  const uint64_t seed = static_cast<uint64_t>(envInt("IFKO_SEED", 1));
  search::SearchConfig cfg =
      bench::tuneConfig(sz.ooc, sim::TimeContext::OutOfCache, sz.fast);
  const arch::MachineConfig machine = arch::p4e();

  search::Budget b;
  b.maxEvaluations = budget;
  b.seed = seed;

  TextTable t;
  {
    std::vector<std::string> header = {"kernel"};
    for (search::StrategyKind k : search::allStrategies())
      header.push_back(std::string(search::strategyName(k)));
    t.setHeader(header);
  }

  int lineMatchedOrBeaten = 0;
  for (const auto& spec : kernels::allKernels()) {
    std::vector<std::string> cells = {spec.name()};
    uint64_t lineBest = 0;
    for (search::StrategyKind kind : search::allStrategies()) {
      auto r = search::tuneKernelWithStrategy(spec, machine, cfg, kind, b);
      if (!r.ok) {
        cells.push_back("-");
        continue;
      }
      const std::string strategy(search::strategyName(kind));
      for (const auto& fp : r.frontier) {
        JsonWriter w;
        w.field("kernel", spec.name())
            .field("strategy", strategy)
            .field("proposals", fp.proposals)
            .field("cycles", fp.cycles);
        std::printf("%s\n", w.str().c_str());
      }
      if (kind == search::StrategyKind::Line) lineBest = r.bestCycles;
      const bool beatsLine = kind != search::StrategyKind::Line &&
                             lineBest != 0 && r.bestCycles <= lineBest;
      if (beatsLine) ++lineMatchedOrBeaten;
      JsonWriter w;
      w.field("kernel", spec.name())
          .field("strategy", strategy)
          .field("summary", 1)
          .field("best_cycles", r.bestCycles)
          .field("proposals", r.proposals)
          .field("evaluations", r.evaluations)
          .field("beats_line", beatsLine ? 1 : 0);
      std::printf("%s\n", w.str().c_str());
      cells.push_back(std::to_string(r.bestCycles) + " @" +
                      std::to_string(r.proposals));
    }
    t.addRow(cells);
    std::fprintf(stderr, "  %-8s done\n", spec.name().c_str());
  }

  std::fprintf(stderr,
               "\n=== strategy frontier: %s, N=%lld, budget %d, seed %llu ===\n"
               "(best cycles @ proposals spent)\n\n%s\n"
               "non-line strategies matching or beating line search at equal "
               "budget: %d kernel/strategy pairs\n",
               machine.name.c_str(), static_cast<long long>(cfg.n), budget,
               static_cast<unsigned long long>(seed), t.str().c_str(),
               lineMatchedOrBeaten);
  return 0;
}
