#include "harness.h"

#include <cstdio>

#include "fko/compiler.h"

namespace ifko::bench {

MethodCycles compareMethods(const kernels::KernelSpec& spec,
                            const arch::MachineConfig& machine, int64_t n,
                            sim::TimeContext ctx, bool fast) {
  MethodCycles row;
  row.kernelName = spec.name();

  auto timeBaseline = [&](baseline::Compiler c) -> uint64_t {
    auto r = baseline::compileBaseline(c, spec, machine);
    if (!r.ok) return 0;
    return sim::timeKernel(machine, r.fn, spec, n, ctx).cycles;
  };
  row.gccRef = timeBaseline(baseline::Compiler::GccRef);
  row.iccRef = timeBaseline(baseline::Compiler::IccRef);
  row.iccProf = timeBaseline(baseline::Compiler::IccProf);

  auto sel = atlas::selectKernel(spec, machine, n, ctx);
  if (sel.ok) {
    row.atlas = sel.cycles;
    row.kernelName = sel.displayName;
  }

  search::SearchConfig cfg = tuneConfig(n, ctx, fast);
  row.tune = search::tuneKernel(spec, machine, cfg);
  if (row.tune.ok) {
    row.fko = row.tune.defaultCycles;
    row.ifko = row.tune.bestCycles;
    row.vectorizable = row.tune.analysis.vectorizable;
  }
  return row;
}

std::vector<MethodCycles> compareAll(const arch::MachineConfig& machine,
                                     int64_t n, sim::TimeContext ctx,
                                     bool fast) {
  std::vector<MethodCycles> rows;
  for (const auto& spec : kernels::allKernels()) {
    rows.push_back(compareMethods(spec, machine, n, ctx, fast));
    std::fprintf(stderr, "  tuned %-8s (%d evaluations)\n",
                 rows.back().kernelName.c_str(), rows.back().tune.evaluations);
  }
  return rows;
}

std::string renderPercentOfBest(const std::vector<MethodCycles>& rows,
                                const std::string& title) {
  struct Method {
    const char* name;
    uint64_t MethodCycles::*field;
  };
  const Method methods[] = {
      {"gcc+ref", &MethodCycles::gccRef},   {"icc+ref", &MethodCycles::iccRef},
      {"icc+prof", &MethodCycles::iccProf}, {"ATLAS", &MethodCycles::atlas},
      {"FKO", &MethodCycles::fko},          {"ifko", &MethodCycles::ifko},
  };

  TextTable t;
  std::vector<std::string> header = {"method"};
  for (const auto& r : rows) header.push_back(r.kernelName);
  header.push_back("AVG");
  header.push_back("VAVG");
  t.setHeader(header);

  for (const auto& m : methods) {
    std::vector<std::string> cells = {m.name};
    double sum = 0, vsum = 0;
    int cnt = 0, vcnt = 0;
    for (const auto& r : rows) {
      uint64_t best = UINT64_MAX;
      for (const auto& mm : methods) {
        uint64_t c = r.*(mm.field);
        if (c > 0 && c < best) best = c;
      }
      uint64_t c = r.*(m.field);
      if (c == 0 || best == UINT64_MAX) {
        cells.push_back("-");
        continue;
      }
      double pct = 100.0 * static_cast<double>(best) / static_cast<double>(c);
      cells.push_back(fmtFixed(pct, 1));
      sum += pct;
      ++cnt;
      if (r.vectorizable) {
        vsum += pct;
        ++vcnt;
      }
    }
    cells.push_back(cnt ? fmtFixed(sum / cnt, 1) : "-");
    cells.push_back(vcnt ? fmtFixed(vsum / vcnt, 1) : "-");
    t.addRow(cells);
  }

  std::string out = title + "\n(percent of best observed performance; "
                    "VAVG = average over SIMD-vectorizable kernels, i.e. "
                    "excluding iamax)\n\n" + t.str();
  return out;
}

}  // namespace ifko::bench
