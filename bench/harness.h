// Shared harness for the paper-reproduction benchmarks.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (Section 3).  Problem sizes default to the paper's
// (N=80000 out-of-cache, N=1024 in-L2) and can be scaled with
// IFKO_N_OOC / IFKO_N_INL2 / IFKO_FAST=1.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "atlas/atlas.h"
#include "baseline/baseline.h"
#include "kernels/registry.h"
#include "search/linesearch.h"
#include "sim/timer.h"
#include "support/env.h"
#include "support/str.h"
#include "support/table.h"

namespace ifko::bench {

struct Sizes {
  int64_t ooc;
  int64_t inl2;
  bool fast;
};

[[nodiscard]] inline Sizes sizes() {
  bool fast = envFast();
  return {envInt("IFKO_N_OOC", fast ? 20000 : 80000),
          envInt("IFKO_N_INL2", 1024), fast};
}

/// Search configuration at bench scale: SearchConfig::smoke() under
/// IFKO_FAST=1 (reduced grids, short tester), the paper's full-scale
/// defaults otherwise, with the bench's problem size and context applied
/// on top.  The single place the benches pick smoke vs full search.
[[nodiscard]] inline search::SearchConfig tuneConfig(int64_t n,
                                                     sim::TimeContext ctx,
                                                     bool fast) {
  search::SearchConfig cfg =
      fast ? search::SearchConfig::smoke() : search::SearchConfig{};
  cfg.n = n;
  cfg.context = ctx;
  return cfg;
}

/// Cycles for every tuning method on one kernel (the bars of Figs. 2-4).
struct MethodCycles {
  std::string kernelName;  ///< with "*" when ATLAS picked assembly
  uint64_t gccRef = 0;
  uint64_t iccRef = 0;
  uint64_t iccProf = 0;
  uint64_t atlas = 0;
  uint64_t fko = 0;   ///< FKO defaults, no search
  uint64_t ifko = 0;  ///< full iterative search
  bool vectorizable = false;
  search::TuneResult tune;  ///< the ifko search result (ledger, params)
};

[[nodiscard]] MethodCycles compareMethods(const kernels::KernelSpec& spec,
                                          const arch::MachineConfig& machine,
                                          int64_t n, sim::TimeContext ctx,
                                          bool fast);

/// Renders the Figs. 2-4 style table: percent of the best method per kernel,
/// with AVG and VAVG (vectorizable-only average) columns.
[[nodiscard]] std::string renderPercentOfBest(
    const std::vector<MethodCycles>& rows, const std::string& title);

/// Runs the comparison for all 14 kernels.
[[nodiscard]] std::vector<MethodCycles> compareAll(
    const arch::MachineConfig& machine, int64_t n, sim::TimeContext ctx,
    bool fast);

}  // namespace ifko::bench
