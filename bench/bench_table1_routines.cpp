// Table 1: the surveyed Level 1 BLAS routines and their FLOP accounting,
// plus (standing in for the paper's Table 2) the simulated machine
// configurations used throughout the evaluation.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace ifko;
  std::printf("=== Table 1: Level 1 BLAS summary ===\n\n");
  TextTable t;
  t.setHeader({"NAME", "operation", "FLOPs", "vectors", "alpha", "returns"});
  const char* summaries[] = {
      "tmp=y[i]; y[i]=x[i]; x[i]=tmp",
      "y[i] = x[i]",
      "sum += fabs(x[i])",
      "y[i] += alpha * x[i]",
      "dot += y[i] * x[i]",
      "y[i] *= alpha",
      "index of first max |x[i]|",
  };
  size_t s = 0;
  for (auto op : kernels::allOps()) {
    kernels::KernelSpec spec{op, ir::Scal::F64};
    std::string flops = spec.flops(1) == 1 ? "N" : "2N";
    const char* ret = spec.retClass() == 'f'   ? "scalar"
                      : spec.retClass() == 'i' ? "index"
                                               : "-";
    t.addRow({std::string(kernels::opName(op)), summaries[s++], flops,
              std::to_string(spec.numVecs()), spec.hasAlpha() ? "yes" : "no",
              ret});
  }
  std::fputs(t.str().c_str(), stdout);

  std::printf("\n=== Table 2 stand-in: simulated machine configurations ===\n\n");
  TextTable m;
  m.setHeader({"machine", "GHz", "L1", "L2", "mem lat", "bus B/cyc",
               "turnaround", "MSHRs", "hw pf", "FP add/mul lat", "prefetchw",
               "NT-on-cached"});
  for (const auto& cfg : arch::allMachines()) {
    m.addRow({cfg.name, fmtFixed(cfg.ghz, 1),
              std::to_string(cfg.caches[0].sizeBytes / 1024) + "KB/" +
                  std::to_string(cfg.caches[0].assoc) + "w",
              std::to_string(cfg.caches[1].sizeBytes / 1024) + "KB/" +
                  std::to_string(cfg.caches[1].assoc) + "w",
              std::to_string(cfg.memLatency), fmtFixed(cfg.busBytesPerCycle, 1),
              std::to_string(cfg.busTurnaround),
              std::to_string(cfg.maxOutstandingMisses),
              std::to_string(cfg.hwPrefetchDepth),
              std::to_string(cfg.latFAdd) + "/" + std::to_string(cfg.latFMul),
              cfg.hasPrefW ? "yes" : "no",
              cfg.ntStoreCheapWhenCached ? "cheap" : "flush"});
  }
  std::fputs(m.str().c_str(), stdout);
  return 0;
}
