// Figure 2: relative speedups of various tuning methods on the P4E-class
// machine, N=80000, out-of-cache.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace ifko;
  auto sz = bench::sizes();
  std::printf("=== Figure 2: P4E, N=%lld, out-of-cache ===\n",
              static_cast<long long>(sz.ooc));
  auto rows = bench::compareAll(arch::p4e(), sz.ooc,
                                sim::TimeContext::OutOfCache, sz.fast);
  std::fputs(bench::renderPercentOfBest(rows, "").c_str(), stdout);
  return 0;
}
