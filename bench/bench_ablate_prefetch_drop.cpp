// Ablation: the prefetch drop-when-busy rule (DESIGN.md Section 5).
//
// The paper: "many architectures discard prefetches when they are issued
// while the bus is busy", which is why bus-bound kernels (swap, axpy) gain
// little from prefetch.  This bench sweeps the drop threshold to show the
// mechanism: an infinitely tolerant bus queue would let prefetch help even
// saturated kernels; the realistic threshold suppresses it.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace ifko;
  auto sz = bench::sizes();
  std::printf("=== Ablation: prefetch drop backlog threshold (P4E, ooc, "
              "N=%lld) ===\n\n",
              static_cast<long long>(sz.ooc));

  TextTable t;
  t.setHeader({"kernel", "backlog", "cycles", "pref issued", "pref dropped"});
  for (auto op : {kernels::BlasOp::Dot, kernels::BlasOp::Swap}) {
    kernels::KernelSpec spec{op, ir::Scal::F64};
    for (int backlog : {0, 56, 280, 1 << 20}) {
      arch::MachineConfig m = arch::p4e();
      m.prefetchDropBacklog = backlog;
      auto rep = fko::analyzeKernel(spec.hilSource(), m);
      auto params = search::fkoDefaults(rep, m);
      for (auto& [name, pf] : params.prefetch) pf.distBytes = 1024;
      fko::CompileOptions opts;
      opts.tuning = params;
      auto r = fko::compileKernel(spec.hilSource(), opts, m);
      if (!r.ok) continue;
      auto tr = sim::timeKernel(m, r.fn, spec, sz.ooc,
                                sim::TimeContext::OutOfCache);
      t.addRow({spec.name(),
                backlog >= (1 << 20) ? "inf" : std::to_string(backlog),
                std::to_string(tr.cycles), std::to_string(tr.mem.prefIssued),
                std::to_string(tr.mem.prefDropped)});
    }
    t.addRule();
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf("\nExpected shape: dot (2 read streams) benefits from a tolerant"
              "\nqueue; swap (2 read + 2 write streams + writebacks) saturates"
              "\nthe bus, so its prefetches drop and cycles barely move.\n");
  return 0;
}
