// google-benchmark microbenchmarks of the toolchain itself: front-end,
// full compile pipeline, functional+timing co-simulation throughput, and
// one complete line-search evaluation.  These bound the cost of the
// empirical search ("a simple but intelligently designed search reduces
// the problem of search to a low order term").
#include <benchmark/benchmark.h>

#include "fko/compiler.h"
#include "hil/lower.h"
#include "kernels/registry.h"
#include "kernels/tester.h"
#include "search/linesearch.h"
#include "sim/timer.h"

namespace {

using namespace ifko;

const kernels::KernelSpec kDot{kernels::BlasOp::Dot, ir::Scal::F64};

void BM_FrontEnd(benchmark::State& state) {
  std::string src = kDot.hilSource();
  for (auto _ : state) {
    DiagnosticEngine d;
    auto fn = hil::compileHil(src, d);
    benchmark::DoNotOptimize(fn);
  }
}
BENCHMARK(BM_FrontEnd);

void BM_FullCompile(benchmark::State& state) {
  std::string src = kDot.hilSource();
  fko::CompileOptions opts;
  opts.tuning.unroll = static_cast<int>(state.range(0));
  opts.tuning.accumExpand = std::min<int>(4, opts.tuning.unroll);
  auto machine = arch::p4e();
  for (auto _ : state) {
    auto r = fko::compileKernel(src, opts, machine);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_FullCompile)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_CoSimulation(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto machine = arch::p4e();
  fko::CompileOptions opts;
  auto r = fko::compileKernel(kDot.hilSource(), opts, machine);
  if (!r.ok) {
    state.SkipWithError("compile failed");
    return;
  }
  uint64_t insts = 0;
  for (auto _ : state) {
    auto t = sim::timeKernel(machine, r.fn, kDot, n,
                             sim::TimeContext::OutOfCache);
    insts += t.dynInsts;
    benchmark::DoNotOptimize(t.cycles);
  }
  state.counters["dyn_insts/s"] = benchmark::Counter(
      static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoSimulation)->Arg(1024)->Arg(16384)->Arg(80000);

void BM_SearchEvaluation(benchmark::State& state) {
  // One compile + test + time cycle, i.e. the unit the line search repeats.
  auto machine = arch::opteron();
  auto rep = fko::analyzeKernel(kDot.hilSource(), machine);
  auto params = search::fkoDefaults(rep, machine);
  search::SearchConfig cfg;
  cfg.n = 4096;
  for (auto _ : state) {
    uint64_t c = search::timeParams(kDot, machine, params, cfg);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SearchEvaluation);

}  // namespace

BENCHMARK_MAIN();
