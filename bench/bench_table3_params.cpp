// Table 3: the transformation parameters selected by the empirical search,
// by architecture and context.  Columns per the paper:
//   SV:WNT   PF X (ins:dst)   PF Y (ins:dst)   UR:AE
#include <cstdio>

#include "harness.h"

int main() {
  using namespace ifko;
  auto sz = bench::sizes();
  std::printf("=== Table 3: transformation parameters by architecture and "
              "context ===\n\n");

  struct Ctx {
    arch::MachineConfig machine;
    sim::TimeContext ctx;
    int64_t n;
    const char* label;
  };
  const Ctx contexts[] = {
      {arch::p4e(), sim::TimeContext::OutOfCache, sz.ooc,
       "P4E, out-of-cache"},
      {arch::opteron(), sim::TimeContext::OutOfCache, sz.ooc,
       "Opteron, out-of-cache"},
      {arch::p4e(), sim::TimeContext::InL2, sz.inl2, "P4E, in-L2 cache"},
  };

  for (const auto& c : contexts) {
    std::printf("--- %s (N=%lld) ---\n", c.label,
                static_cast<long long>(c.n));
    TextTable t;
    t.setHeader({"BLAS", "SV:WNT", "PF X INS:DST", "PF Y INS:DST", "UR:AE"});
    for (const auto& spec : kernels::allKernels()) {
      search::SearchConfig cfg = bench::tuneConfig(c.n, c.ctx, sz.fast);
      auto r = search::tuneKernel(spec, c.machine, cfg);
      if (!r.ok) continue;
      auto row = search::paramsRow(r.best, r.analysis);
      t.addRow({spec.name(), row[0], row[1], row[2], row[3]});
    }
    std::fputs(t.str().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "Shape check (paper Section 3.3): the parameters vary with operation,\n"
      "precision, architecture and context — \"any model that captures this\n"
      "complexity is going to have to be very sensitive indeed\".\n");
  return 0;
}
