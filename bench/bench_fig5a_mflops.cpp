// Figure 5(a): out-of-cache MFLOPS of the ifko-tuned kernels on both
// machines (FLOP accounting per Table 1; MFLOPS = larger is better).
#include <cstdio>

#include "harness.h"

int main() {
  using namespace ifko;
  auto sz = bench::sizes();
  std::printf("=== Figure 5(a): ifko-tuned MFLOPS, N=%lld, out-of-cache ===\n\n",
              static_cast<long long>(sz.ooc));

  TextTable t;
  std::vector<std::string> header = {"machine"};
  for (const auto& spec : kernels::allKernels()) header.push_back(spec.name());
  t.setHeader(header);

  for (const auto& m : arch::allMachines()) {
    std::vector<std::string> cells = {m.name};
    for (const auto& spec : kernels::allKernels()) {
      search::SearchConfig cfg =
          bench::tuneConfig(sz.ooc, sim::TimeContext::OutOfCache, sz.fast);
      auto r = search::tuneKernel(spec, m, cfg);
      if (!r.ok) {
        cells.push_back("-");
        continue;
      }
      sim::TimeResult tr;
      tr.cycles = r.bestCycles;
      cells.push_back(fmtFixed(tr.mflops(spec.flops(sz.ooc), m.ghz), 0));
    }
    t.addRow(cells);
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf(
      "\nShape check (paper Section 3.3): asum is the fastest routine (one\n"
      "input vector, no output), single precision beats double, and the\n"
      "more bus-bound the operation (swap, axpy, copy) the lower the rate.\n");
  return 0;
}
