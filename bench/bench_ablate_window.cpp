// Ablation: out-of-order window (ROB) size vs. the benefit of accumulator
// expansion (DESIGN.md Section 5).
//
// AE breaks the FP-add dependence chain of reductions.  A huge window
// cannot help a true data dependence, so AE's in-cache benefit persists;
// a tiny window starves memory-level parallelism and AE's relative effect
// shrinks under the memory stalls.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace ifko;
  auto sz = bench::sizes();
  std::printf("=== Ablation: ROB size vs accumulator expansion (sasum, P4E, "
              "in-L2, N=%lld) ===\n\n",
              static_cast<long long>(sz.inl2));

  kernels::KernelSpec spec{kernels::BlasOp::Asum, ir::Scal::F32};
  TextTable t;
  t.setHeader({"ROB", "AE=1 cycles", "AE=4 cycles", "AE gain"});
  for (int rob : {16, 48, 126, 512}) {
    arch::MachineConfig m = arch::p4e();
    m.robSize = rob;
    auto rep = fko::analyzeKernel(spec.hilSource(), m);
    uint64_t cyc[2] = {0, 0};
    int idx = 0;
    for (int ae : {1, 4}) {
      auto params = search::fkoDefaults(rep, m);
      params.unroll = 8;
      params.accumExpand = ae;
      fko::CompileOptions opts;
      opts.tuning = params;
      auto r = fko::compileKernel(spec.hilSource(), opts, m);
      if (!r.ok) continue;
      cyc[idx++] = sim::timeKernel(m, r.fn, spec, sz.inl2,
                                   sim::TimeContext::InL2)
                       .cycles;
    }
    if (cyc[0] && cyc[1])
      t.addRow({std::to_string(rob), std::to_string(cyc[0]),
                std::to_string(cyc[1]),
                fmtFixed(static_cast<double>(cyc[0]) /
                             static_cast<double>(cyc[1]),
                         2) +
                    "x"});
  }
  std::fputs(t.str().c_str(), stdout);
  return 0;
}
