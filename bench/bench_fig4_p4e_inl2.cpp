// Figure 4: relative speedups of various tuning methods on the P4E-class
// machine, N=1024, operands pre-loaded to the L2 cache.
//
// Also reproduces the paper's Section 3 remark about the omitted in-L2
// Opteron timings: "the two best tuning mechanisms are ifko followed by
// FKO, and icc-tuned kernels run on average at 68% of the speed of
// ifko-tuned code" — printed as an appendix.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace ifko;
  auto sz = bench::sizes();
  std::printf("=== Figure 4: P4E, N=%lld, in-L2 cache ===\n",
              static_cast<long long>(sz.inl2));
  auto rows = bench::compareAll(arch::p4e(), sz.inl2, sim::TimeContext::InL2,
                                sz.fast);
  std::fputs(bench::renderPercentOfBest(rows, "").c_str(), stdout);

  std::printf("\n--- Appendix: Opteron in-L2 (paper Section 3 text) ---\n");
  auto orows = bench::compareAll(arch::opteron(), sz.inl2,
                                 sim::TimeContext::InL2, sz.fast);
  double iccVsIfko = 0;
  int cnt = 0;
  for (const auto& r : orows) {
    if (r.iccRef == 0 || r.ifko == 0) continue;
    iccVsIfko +=
        100.0 * static_cast<double>(r.ifko) / static_cast<double>(r.iccRef);
    ++cnt;
  }
  std::fputs(bench::renderPercentOfBest(orows, "").c_str(), stdout);
  if (cnt)
    std::printf(
        "\nicc-tuned kernels run on average at %.0f%% of the speed of "
        "ifko-tuned code (paper: 68%%).\n",
        iccVsIfko / cnt);
  return 0;
}
