// Ablation: search turnaround through the batch-tuning orchestrator.
//
// The paper accepts install-time tuning costs of minutes-to-hours because
// every evaluation is serial and forgotten; the orchestrator attacks both
// axes.  This bench tunes the same kernel set three ways and reports
// wall-clock turnaround:
//   serial cold    jobs=1, empty cache  (the paper's regime)
//   parallel cold  jobs=N, empty cache  (thread-pool fan-out)
//   parallel warm  jobs=N, cache primed by the previous run (re-tune)
// The chosen parameters are identical in all three rows — parallelism and
// caching only change how long the answer takes.
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "harness.h"
#include "search/orchestrator.h"

using namespace ifko;

namespace {

std::vector<search::KernelJob> benchJobs(bool fast) {
  const auto& all = kernels::allKernels();
  size_t count = fast ? 4 : all.size();
  std::vector<search::KernelJob> jobs;
  for (size_t i = 0; i < all.size() && jobs.size() < count; ++i)
    jobs.push_back({all[i].name(), all[i].hilSource(), &all[i]});
  return jobs;
}

}  // namespace

int main() {
  auto sz = bench::sizes();
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 2) jobs = 2;
  if (jobs > 8) jobs = 8;

  const std::string cachePath = "bench_orchestrator_turnaround.cache.jsonl";
  std::remove(cachePath.c_str());

  auto kernelJobs = benchJobs(sz.fast);
  std::printf("=== Ablation: tuning turnaround, %zu kernels, p4e, ooc "
              "N=%lld ===\n\n",
              kernelJobs.size(), static_cast<long long>(sz.ooc));

  search::SearchConfig cfg =
      sz.fast ? search::SearchConfig::smoke() : search::SearchConfig{};
  cfg.n = sz.ooc;

  struct Row {
    const char* name;
    int jobs;
    bool useCache;
  };
  const Row rows[] = {
      {"serial cold", 1, false},
      {"parallel cold", jobs, true},  // primes the cache for the warm row
      {"parallel warm", jobs, true},
  };

  TextTable t;
  t.setHeader({"configuration", "jobs", "wall s", "speedup", "evals",
               "cache hit%"});
  double serialSeconds = 0.0;
  for (const Row& row : rows) {
    search::OrchestratorConfig oc;
    oc.search = cfg;
    oc.search.jobs = row.jobs;
    if (row.useCache) oc.cachePath = cachePath;
    search::Orchestrator orch(arch::p4e(), oc);
    auto batch = orch.tuneAll(kernelJobs);
    if (serialSeconds == 0.0) serialSeconds = batch.wallSeconds;
    double speedup =
        batch.wallSeconds == 0.0 ? 0.0 : serialSeconds / batch.wallSeconds;
    t.addRow({row.name, std::to_string(row.jobs),
              fmtFixed(batch.wallSeconds, 2), fmtFixed(speedup, 2) + "x",
              std::to_string(batch.evaluations),
              fmtFixed(100.0 * batch.hitRate(), 1)});
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf("\n(identical best parameters in every row; the warm row "
              "re-times nothing)\n");

  std::remove(cachePath.c_str());
  return 0;
}
