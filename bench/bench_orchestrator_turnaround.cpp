// Ablation: search turnaround through the batch-tuning orchestrator.
//
// The paper accepts install-time tuning costs of minutes-to-hours because
// every evaluation is serial and forgotten; the orchestrator and the
// evaluation fast path attack all of it.  This bench tunes the same kernel
// set five ways and reports wall-clock turnaround and candidate evaluations
// per second:
//   legacy serial    jobs=1, empty cache, fast path off (the pre-pipeline
//                    regime: interpret the ir::Function, recompile every
//                    candidate from scratch, always time at full N)
//   fast serial      jobs=1, empty cache, pre-decode + prefix compile reuse
//   fast +screen     same, plus screen-then-confirm timing
//   parallel cold    jobs=N, empty cache  (thread-pool fan-out)
//   parallel warm    jobs=N, cache primed by the previous run (re-tune)
// The chosen parameters are identical in every row — the fast path,
// parallelism, and caching only change how long the answer takes; the bench
// FAILS if any row picks a different winner.
//
// The fast-serial row's rates are written to BENCH_evalrate.json
// ({date, commit, kernels_per_s, evals_per_s}); when IFKO_EVALRATE_BASELINE
// names a committed baseline, an evals_per_s regression beyond 20% fails
// the run (the CI guard).
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <thread>

#include "harness.h"
#include "search/orchestrator.h"
#include "support/json.h"

using namespace ifko;

namespace {

std::vector<search::KernelJob> benchJobs(bool fast) {
  const auto& all = kernels::allKernels();
  size_t count = fast ? 4 : all.size();
  std::vector<search::KernelJob> jobs;
  for (size_t i = 0; i < all.size() && jobs.size() < count; ++i)
    jobs.push_back({all[i].name(), all[i].hilSource(), &all[i]});
  return jobs;
}

/// evals_per_s from the committed baseline JSON, or 0 when absent/damaged.
double baselineEvalRate(const char* path) {
  std::ifstream in(path);
  if (!in) return 0.0;
  std::ostringstream ss;
  ss << in.rdbuf();
  std::map<std::string, JsonValue> obj;
  if (!parseJsonObject(ss.str(), &obj)) return 0.0;
  auto it = obj.find("evals_per_s");
  if (it == obj.end() || it->second.kind != JsonValue::Kind::Number) return 0.0;
  return it->second.number;
}

}  // namespace

int main() {
  auto sz = bench::sizes();
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 2) jobs = 2;
  if (jobs > 8) jobs = 8;

  const std::string cachePath = "bench_orchestrator_turnaround.cache.jsonl";
  std::remove(cachePath.c_str());

  auto kernelJobs = benchJobs(sz.fast);
  std::printf("=== Ablation: tuning turnaround, %zu kernels, p4e, ooc "
              "N=%lld ===\n\n",
              kernelJobs.size(), static_cast<long long>(sz.ooc));

  search::SearchConfig cfg =
      sz.fast ? search::SearchConfig::smoke() : search::SearchConfig{};
  cfg.n = sz.ooc;
  // Screen at a sub-sampled size big enough to rank candidates faithfully:
  // the screen-then-confirm rows must still pick the full-size winner.
  const int64_t screenN = std::max<int64_t>(512, cfg.n / 16);

  struct Row {
    const char* name;
    int jobs;
    bool useCache;
    bool fastPath;  ///< pre-decode + prefix compile reuse
    bool screen;
  };
  const Row rows[] = {
      {"legacy serial", 1, false, false, false},
      {"fast serial", 1, false, true, false},
      {"fast +screen", 1, false, true, true},
      {"parallel cold", jobs, true, true, true},  // primes the warm row
      {"parallel warm", jobs, true, true, true},
  };

  TextTable t;
  t.setHeader({"configuration", "jobs", "wall s", "speedup", "evals",
               "evals/s", "cache hit%"});
  double legacySeconds = 0.0;
  double fastKernelsPerS = 0.0, fastEvalsPerS = 0.0;
  std::vector<std::string> winners;  // per kernel, from the legacy row
  bool winnersAgree = true;
  for (const Row& row : rows) {
    search::OrchestratorConfig oc;
    oc.search = cfg;
    oc.search.jobs = row.jobs;
    oc.search.predecode = row.fastPath;
    oc.search.reusePrefixCompiles = row.fastPath;
    oc.search.reuseKernelData = row.fastPath;
    oc.search.screenN = row.screen ? screenN : 0;
    if (row.useCache) oc.cachePath = cachePath;
    search::Orchestrator orch(arch::p4e(), oc);
    auto batch = orch.tuneAll(kernelJobs);
    if (legacySeconds == 0.0) legacySeconds = batch.wallSeconds;
    double speedup =
        batch.wallSeconds == 0.0 ? 0.0 : legacySeconds / batch.wallSeconds;
    double evalsPerS = batch.wallSeconds == 0.0
                           ? 0.0
                           : batch.evaluations / batch.wallSeconds;
    t.addRow({row.name, std::to_string(row.jobs),
              fmtFixed(batch.wallSeconds, 2), fmtFixed(speedup, 2) + "x",
              std::to_string(batch.evaluations), fmtFixed(evalsPerS, 0),
              fmtFixed(100.0 * batch.hitRate(), 1)});
    if (std::string(row.name) == "fast serial" && batch.wallSeconds > 0.0) {
      fastKernelsPerS = kernelJobs.size() / batch.wallSeconds;
      fastEvalsPerS = evalsPerS;
    }
    // The whole point of the ablation: every configuration returns the
    // same winners.  Collect them from the legacy row, compare the rest.
    std::vector<std::string> rowWinners;
    for (const auto& k : batch.kernels)
      rowWinners.push_back(k.result.ok ? opt::formatTuningSpec(k.result.best)
                                       : "FAILED: " + k.result.error);
    if (winners.empty()) {
      winners = rowWinners;
    } else if (rowWinners != winners) {
      winnersAgree = false;
      for (size_t i = 0; i < winners.size(); ++i)
        if (rowWinners[i] != winners[i])
          std::fprintf(stderr,
                       "WINNER MISMATCH [%s] %s:\n  legacy: %s\n  this:   %s\n",
                       row.name, kernelJobs[i].name.c_str(),
                       winners[i].c_str(), rowWinners[i].c_str());
    }
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf("\n(identical best parameters in every row; the warm row "
              "re-times nothing)\n");
  std::remove(cachePath.c_str());
  if (!winnersAgree) {
    std::fprintf(stderr,
                 "FAIL: fast-path rows disagree with the legacy winners\n");
    return 1;
  }

  // Machine-readable rate record, from the default fast-path single-thread
  // row (screening is opt-in and thread count would skew a parallel row):
  // the figure the CI guard tracks.
  {
    std::time_t now = std::time(nullptr);
    char date[32];
    std::strftime(date, sizeof date, "%Y-%m-%d", std::gmtime(&now));
    const char* sha = std::getenv("GITHUB_SHA");
    JsonWriter w;
    w.field("date", std::string(date))
        .field("commit", std::string(sha != nullptr ? sha : "local"))
        .field("kernels_per_s", fastKernelsPerS)
        .field("evals_per_s", fastEvalsPerS);
    std::ofstream out("BENCH_evalrate.json");
    out << w.str() << "\n";
    std::printf("\nBENCH_evalrate.json: %s\n", w.str().c_str());
  }
  if (const char* basePath = std::getenv("IFKO_EVALRATE_BASELINE")) {
    double base = baselineEvalRate(basePath);
    if (base <= 0.0) {
      std::fprintf(stderr, "note: no usable baseline at %s\n", basePath);
    } else {
      double ratio = fastEvalsPerS / base;
      std::printf("evals/s vs baseline %s: %.0f / %.0f = %.2fx\n", basePath,
                  fastEvalsPerS, base, ratio);
      if (ratio < 0.8) {
        std::fprintf(stderr,
                     "FAIL: evals/s regressed >20%% vs committed baseline\n");
        return 1;
      }
    }
  }
  return 0;
}
