// Figure 5(b): speedup of in-L2 over out-of-cache performance on the
// P4E-class machine, per routine (ifko-tuned in each context).
//
// Per the paper, this measures how bus-bound each operation remains after
// prefetch is applied: a small ratio means memory was never the bottleneck.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace ifko;
  auto sz = bench::sizes();
  std::printf(
      "=== Figure 5(b): P4E in-L2 (N=%lld) speedup over out-of-cache "
      "(N=%lld), ifko-tuned ===\n\n",
      static_cast<long long>(sz.inl2), static_cast<long long>(sz.ooc));

  TextTable t;
  t.setHeader({"kernel", "ooc cyc/elem", "inL2 cyc/elem", "speedup"});
  arch::MachineConfig m = arch::p4e();
  for (const auto& spec : kernels::allKernels()) {
    search::SearchConfig ooc =
        bench::tuneConfig(sz.ooc, sim::TimeContext::OutOfCache, sz.fast);
    search::SearchConfig inl2 =
        bench::tuneConfig(sz.inl2, sim::TimeContext::InL2, sz.fast);
    auto a = search::tuneKernel(spec, m, ooc);
    auto b = search::tuneKernel(spec, m, inl2);
    if (!a.ok || !b.ok) continue;
    double oocPer = static_cast<double>(a.bestCycles) / static_cast<double>(sz.ooc);
    double inPer = static_cast<double>(b.bestCycles) / static_cast<double>(sz.inl2);
    t.addRow({spec.name(), fmtFixed(oocPer, 2), fmtFixed(inPer, 2),
              fmtFixed(oocPer / inPer, 2)});
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf(
      "\nShape check: bus-bound routines (swap, copy, axpy) show the\n"
      "largest in-cache speedups; compute-bound ones (in-cache asum/dot\n"
      "after AE) the smallest.\n");
  return 0;
}
