// Fault-recovery harness: the whole 14-kernel batch survives injected
// evaluation faults at any worker count.
//
// The paper's search is only as robust as its worst candidate: one hung or
// crashing evaluation must not cost the batch (paper §3 keeps the timer
// loop alive across bad candidates).  This bench drives `tune-all` over
// every registry kernel with a deterministic FaultPlan mixing transient
// crashes, transient hangs, and an injected tester rejection, at jobs=1
// and jobs=8, and checks the recovery contract:
//   * every kernel completes and (faults being transient) tunes OK;
//   * the survived failures are tallied per kernel;
//   * a warm re-run from the same cache replays identical outcomes with
//     zero fresh evaluations — failures are memoized, not re-suffered.
// Any violated check exits nonzero.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness.h"
#include "search/orchestrator.h"

using namespace ifko;

namespace {

std::vector<search::KernelJob> registryJobs() {
  std::vector<search::KernelJob> jobs;
  for (const auto& k : kernels::allKernels())
    jobs.push_back({k.name(), k.hilSource(), &k});
  return jobs;
}

int failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "FAULT-RECOVERY VIOLATION: %s\n", what.c_str());
}

search::BatchOutcome runBatch(const std::vector<search::KernelJob>& jobs,
                              const search::SearchConfig& base, int workers,
                              const std::string& cachePath,
                              const std::string& faultSpec,
                              size_t* quarantined = nullptr) {
  search::OrchestratorConfig oc;
  oc.search = base;
  oc.search.jobs = workers;
  oc.search.evalTimeoutMs = 50;
  oc.cachePath = cachePath;
  if (!faultSpec.empty()) {
    std::string err;
    auto plan = search::FaultPlan::parse(faultSpec, &err);
    check(plan.has_value(), "fault plan '" + faultSpec + "': " + err);
    if (plan.has_value()) oc.faultPlan = *plan;
  }
  search::Orchestrator orch(arch::p4e(), oc);
  auto batch = orch.tuneAll(jobs);
  if (quarantined != nullptr) *quarantined = orch.quarantined().size();
  return batch;
}

}  // namespace

int main() {
  auto sz = bench::sizes();
  search::SearchConfig cfg =
      bench::tuneConfig(sz.fast ? 4096 : sz.ooc,
                        sim::TimeContext::OutOfCache, sz.fast);

  auto jobs = registryJobs();
  std::printf("=== Fault recovery: %zu kernels, p4e, ooc N=%lld, injected "
              "crash/hang/tester faults ===\n\n",
              jobs.size(), static_cast<long long>(cfg.n));

  // Transient crashes (~1/5 of evaluations) and hangs (~1/9) recover on
  // retry; tester@4 permanently rejects one non-default candidate of the
  // first kernel.  Indices are schedule-dependent above jobs=1, which is
  // the point: recovery must not care which candidate the fault lands on.
  const std::string plan =
      "crash%5:seed=7:once,hang%9:seed=11:once,tester@4";

  TextTable t;
  t.setHeader({"schedule", "kernels", "ok", "evals", "timeouts", "crashes",
               "tester-", "retries", "wall s"});
  for (int workers : {1, 8}) {
    const std::string cachePath =
        "bench_fault_recovery.j" + std::to_string(workers) + ".cache.jsonl";
    std::remove(cachePath.c_str());

    auto cold = runBatch(jobs, cfg, workers, cachePath, plan);
    check(cold.kernels.size() == jobs.size(),
          "cold jobs=" + std::to_string(workers) + " lost kernels");
    check(cold.failures() == 0,
          "cold jobs=" + std::to_string(workers) +
              ": a kernel failed despite transient-only hard faults");
    // Transient hard faults recover on retry, so they surface as retries
    // (and the tester injection as a rejection), not as final statuses.
    check(cold.faults.retries > 0,
          "cold jobs=" + std::to_string(workers) +
              ": no retries — the transient faults never fired");
    check(cold.faults.testerFails >= 1,
          "cold jobs=" + std::to_string(workers) +
              ": the injected tester rejection never fired");

    // Warm replay, no injector: everything is served from the cache,
    // including the memoized failures, so outcomes match bit for bit.
    auto warm = runBatch(jobs, cfg, workers, cachePath, "");
    check(warm.evaluations == 0,
          "warm jobs=" + std::to_string(workers) + " re-evaluated " +
              std::to_string(warm.evaluations) + " candidates");
    for (size_t i = 0; i < cold.kernels.size(); ++i) {
      const auto& c = cold.kernels[i];
      const auto& w = warm.kernels[i];
      check(c.result.ok == w.result.ok &&
                c.result.bestCycles == w.result.bestCycles &&
                opt::formatTuningSpec(c.result.best) ==
                    opt::formatTuningSpec(w.result.best),
            "warm jobs=" + std::to_string(workers) + " diverged on " +
                c.name);
    }

    t.addRow({"cold jobs=" + std::to_string(workers),
              std::to_string(cold.kernels.size()),
              std::to_string(static_cast<int>(cold.kernels.size()) -
                             cold.failures()),
              std::to_string(cold.evaluations),
              std::to_string(cold.faults.timeouts),
              std::to_string(cold.faults.crashes),
              std::to_string(cold.faults.testerFails),
              std::to_string(cold.faults.retries),
              fmtFixed(cold.wallSeconds, 2)});
    t.addRow({"warm jobs=" + std::to_string(workers),
              std::to_string(warm.kernels.size()),
              std::to_string(static_cast<int>(warm.kernels.size()) -
                             warm.failures()),
              std::to_string(warm.evaluations),
              std::to_string(warm.faults.timeouts),
              std::to_string(warm.faults.crashes),
              std::to_string(warm.faults.testerFails),
              std::to_string(warm.faults.retries),
              fmtFixed(warm.wallSeconds, 2)});

    std::printf("jobs=%d per-kernel survived faults:\n", workers);
    for (const auto& k : cold.kernels)
      if (k.faults.total() > 0 || k.faults.retries > 0)
        std::printf("  %-8s %d timeouts, %d crashes, %d tester fails, "
                    "%d retries\n",
                    k.name.c_str(), k.faults.timeouts, k.faults.crashes,
                    k.faults.testerFails, k.faults.retries);
    std::printf("\n");
    std::remove(cachePath.c_str());
  }
  // Persistent faults: every 6th evaluation from the 5th crashes on every
  // attempt.  Kernels that accumulate 3 hard failures are quarantined with
  // a diagnostic; the batch still returns an outcome for all 14 — the
  // contract is completion, not success.
  for (int workers : {1, 8}) {
    const std::string cachePath =
        "bench_fault_recovery.persist.j" + std::to_string(workers) +
        ".cache.jsonl";
    std::remove(cachePath.c_str());
    size_t quarantineRecords = 0;
    auto batch = runBatch(jobs, cfg, workers, cachePath, "crash@5+6",
                          &quarantineRecords);
    check(batch.kernels.size() == jobs.size(),
          "persistent jobs=" + std::to_string(workers) + " lost kernels");
    check(batch.faults.crashes > 0,
          "persistent jobs=" + std::to_string(workers) +
              ": no crashes recorded");
    check(quarantineRecords == static_cast<size_t>(batch.quarantined()),
          "persistent jobs=" + std::to_string(workers) +
              ": quarantine ledger disagrees with outcomes");
    for (const auto& k : batch.kernels)
      if (k.quarantined)
        check(!k.result.ok &&
                  k.result.error.find("quarantined") != std::string::npos,
              "persistent jobs=" + std::to_string(workers) + ": " + k.name +
                  " quarantined without diagnostic");
    t.addRow({"persistent jobs=" + std::to_string(workers),
              std::to_string(batch.kernels.size()),
              std::to_string(static_cast<int>(batch.kernels.size()) -
                             batch.failures()),
              std::to_string(batch.evaluations),
              std::to_string(batch.faults.timeouts),
              std::to_string(batch.faults.crashes),
              std::to_string(batch.faults.testerFails),
              std::to_string(batch.faults.retries),
              fmtFixed(batch.wallSeconds, 2)});
    std::printf("persistent jobs=%d: %d kernel(s) quarantined, %d crashes "
                "survived\n",
                workers, batch.quarantined(), batch.faults.crashes);
    std::remove(cachePath.c_str());
  }
  std::printf("\n");
  std::fputs(t.str().c_str(), stdout);

  if (failures == 0) {
    std::printf("\nall recovery checks passed: every kernel completed under "
                "injected faults,\nwarm replay matched cold outcomes with "
                "zero fresh evaluations\n");
    return 0;
  }
  std::fprintf(stderr, "\n%d recovery check(s) failed\n", failures);
  return 1;
}
