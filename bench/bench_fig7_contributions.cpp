// Figure 7: percent of FKO performance gained by empirically tuning each
// transformation parameter [WNT, PF DST, PF INS, UR, AE], per kernel, per
// machine, per context — the line search's contribution ledger.
//
// Paper summary to compare against: on average over all operations,
// architectures and contexts the contributions were [2, 26, 3, 2, 5]%, for
// empirically-tuned kernels running 1.38x faster than statically-tuned FKO.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace ifko;
  auto sz = bench::sizes();
  std::printf("=== Figure 7: speedup over FKO by tuned parameter ===\n\n");

  struct Ctx {
    arch::MachineConfig machine;
    sim::TimeContext ctx;
    int64_t n;
    const char* label;
  };
  const Ctx contexts[] = {
      {arch::p4e(), sim::TimeContext::OutOfCache, sz.ooc, "p4e/oc"},
      {arch::opteron(), sim::TimeContext::OutOfCache, sz.ooc, "opt/oc"},
      {arch::p4e(), sim::TimeContext::InL2, sz.inl2, "p4e/ic"},
  };

  const std::vector<std::string> dims = {"WNT", "PF DST", "PF INS", "UR", "AE"};
  std::map<std::string, double> totalGain;
  double totalSpeedup = 0;
  int count = 0;

  TextTable t;
  t.setHeader({"kernel", "ctx", "WNT%", "PF DST%", "PF INS%", "UR%", "AE%",
               "total x"});
  for (const auto& c : contexts) {
    for (const auto& spec : kernels::allKernels()) {
      search::SearchConfig cfg = bench::tuneConfig(c.n, c.ctx, sz.fast);
      auto r = search::tuneKernel(spec, c.machine, cfg);
      if (!r.ok) continue;
      std::vector<std::string> cells = {spec.name(), c.label};
      uint64_t prev = r.defaultCycles;
      std::map<std::string, double> gain;
      for (const auto& d : r.ledger) {
        if (d.cyclesAfter == 0) continue;
        double g = 100.0 * (static_cast<double>(prev) /
                                static_cast<double>(d.cyclesAfter) -
                            1.0);
        // Fold the (UR,AE) 2-D refinement into AE, as the paper reports
        // only the five dimensions.
        std::string key = d.name == "UR*AE" ? "AE" : d.name;
        gain[key] += g;
        prev = d.cyclesAfter;
      }
      for (const auto& d : dims) {
        cells.push_back(fmtFixed(gain[d], 1));
        totalGain[d] += gain[d];
      }
      double sp = r.speedupOverDefaults();
      cells.push_back(fmtFixed(sp, 2));
      totalSpeedup += sp;
      ++count;
      t.addRow(cells);
    }
    t.addRule();
  }
  std::fputs(t.str().c_str(), stdout);

  if (count) {
    std::printf("\nAverage contribution over all kernels/machines/contexts:\n  ");
    for (const auto& d : dims)
      std::printf("%s %.1f%%  ", d.c_str(), totalGain[d] / count);
    std::printf("\nAverage ifko-over-FKO speedup: %.2fx  (paper: [2, 26, 3, 2, 5]%% and 1.38x)\n",
                totalSpeedup / count);
  }
  return 0;
}
