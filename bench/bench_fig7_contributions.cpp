// Figure 7: percent of FKO performance gained by empirically tuning each
// transformation parameter [WNT, PF DST, PF INS, UR, AE], per kernel, per
// machine, per context — the line search's contribution ledger.
//
// Paper summary to compare against: on average over all operations,
// architectures and contexts the contributions were [2, 26, 3, 2, 5]%, for
// empirically-tuned kernels running 1.38x faster than statically-tuned FKO.
// The attribution columns (fp% / mem%) report where the cycles of the FKO
// defaults went versus the winner's — the observability layer's per-cause
// accounting, so each contribution has a mechanism attached: AE shrinks
// the FP-dependence share, PF/WNT the memory-stall share.
#include <cstdio>

#include "fko/compiler.h"
#include "harness.h"
#include "search/evalpipeline.h"
#include "search/linesearch.h"

int main() {
  using namespace ifko;
  auto sz = bench::sizes();
  std::printf("=== Figure 7: speedup over FKO by tuned parameter ===\n\n");

  struct Ctx {
    arch::MachineConfig machine;
    sim::TimeContext ctx;
    int64_t n;
    const char* label;
  };
  const Ctx contexts[] = {
      {arch::p4e(), sim::TimeContext::OutOfCache, sz.ooc, "p4e/oc"},
      {arch::opteron(), sim::TimeContext::OutOfCache, sz.ooc, "opt/oc"},
      {arch::p4e(), sim::TimeContext::InL2, sz.inl2, "p4e/ic"},
  };

  const std::vector<std::string> dims = {"WNT", "PF DST", "PF INS", "UR", "AE"};
  std::map<std::string, double> totalGain;
  double totalSpeedup = 0;
  int count = 0;

  TextTable t;
  t.setHeader({"kernel", "ctx", "WNT%", "PF DST%", "PF INS%", "UR%", "AE%",
               "total x", "fp% F>i", "mem% F>i"});

  // "62.1>41.0": the cause's share of all cycles, FKO defaults vs winner.
  auto shareCell = [](const search::EvalOutcome& def,
                      const search::EvalOutcome& best,
                      auto&& causeCycles) -> std::string {
    if (!def.counters.has_value() || !best.counters.has_value()) return "-";
    auto pct = [&](const search::EvalCounters& c) {
      uint64_t total = c.attr.total();
      return total == 0 ? 0.0
                        : 100.0 * static_cast<double>(causeCycles(c.attr)) /
                              static_cast<double>(total);
    };
    return fmtFixed(pct(*def.counters), 1) + ">" +
           fmtFixed(pct(*best.counters), 1);
  };
  for (const auto& c : contexts) {
    for (const auto& spec : kernels::allKernels()) {
      search::SearchConfig cfg = bench::tuneConfig(c.n, c.ctx, sz.fast);
      auto r = search::tuneKernel(spec, c.machine, cfg);
      if (!r.ok) continue;
      std::vector<std::string> cells = {spec.name(), c.label};
      uint64_t prev = r.defaultCycles;
      std::map<std::string, double> gain;
      for (const auto& d : r.ledger) {
        if (d.cyclesAfter == 0) continue;
        double g = 100.0 * (static_cast<double>(prev) /
                                static_cast<double>(d.cyclesAfter) -
                            1.0);
        // Fold the (UR,AE) 2-D refinement into AE, as the paper reports
        // only the five dimensions.
        std::string key = d.name == "UR*AE" ? "AE" : d.name;
        gain[key] += g;
        prev = d.cyclesAfter;
      }
      for (const auto& d : dims) {
        cells.push_back(fmtFixed(gain[d], 1));
        totalGain[d] += gain[d];
      }
      double sp = r.speedupOverDefaults();
      cells.push_back(fmtFixed(sp, 2));
      search::EvalPipeline pipe(spec.hilSource(), &spec, c.machine, cfg);
      auto def = search::evaluateCandidate(pipe.request(r.defaults));
      auto best = search::evaluateCandidate(pipe.request(r.best));
      cells.push_back(shareCell(def, best, [](const sim::Attribution& a) {
        return a.of(sim::StallCause::FpDep);
      }));
      cells.push_back(shareCell(def, best, [](const sim::Attribution& a) {
        return a.memoryStalls();
      }));
      totalSpeedup += sp;
      ++count;
      t.addRow(cells);
    }
    t.addRule();
  }
  std::fputs(t.str().c_str(), stdout);

  if (count) {
    std::printf("\nAverage contribution over all kernels/machines/contexts:\n  ");
    for (const auto& d : dims)
      std::printf("%s %.1f%%  ", d.c_str(), totalGain[d] / count);
    std::printf("\nAverage ifko-over-FKO speedup: %.2fx  (paper: [2, 26, 3, 2, 5]%% and 1.38x)\n",
                totalSpeedup / count);
  }
  return 0;
}
