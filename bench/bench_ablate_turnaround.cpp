// Ablation: the bus read-after-write turnaround penalty — the mechanism
// behind AMD's block-fetch technique (DESIGN.md Section 5).
//
// With no turnaround, interleaving reads and non-temporal writes costs
// nothing and block fetch degenerates to plain copy + WNT; the larger the
// penalty, the bigger the win from grouping reads before writes.
#include <cstdio>

#include "harness.h"
#include "atlas/handkernels.h"

int main() {
  using namespace ifko;
  auto sz = bench::sizes();
  std::printf("=== Ablation: bus read-after-write turnaround (dcopy, ooc, "
              "N=%lld) ===\n\n",
              static_cast<long long>(sz.ooc));

  kernels::KernelSpec spec{kernels::BlasOp::Copy, ir::Scal::F64};
  TextTable t;
  t.setHeader({"machine", "turnaround", "copy+WNT cyc", "blockfetch cyc",
               "blockfetch gain"});
  for (const auto& base : arch::allMachines()) {
    for (int ta : {0, 8, 24, 48}) {
      arch::MachineConfig m = base;
      m.busTurnaround = ta;
      // Plain vectorized copy with non-temporal stores.
      auto rep = fko::analyzeKernel(spec.hilSource(), m);
      auto params = search::fkoDefaults(rep, m);
      params.nonTemporalWrites = true;
      fko::CompileOptions opts;
      opts.tuning = params;
      auto r = fko::compileKernel(spec.hilSource(), opts, m);
      if (!r.ok) continue;
      auto plain = sim::timeKernel(m, r.fn, spec, sz.ooc,
                                   sim::TimeContext::OutOfCache);
      auto bf = atlas::copyBlockFetch(spec.prec);
      auto block =
          sim::timeKernel(m, bf, spec, sz.ooc, sim::TimeContext::OutOfCache);
      double gain = block.cycles
                        ? static_cast<double>(plain.cycles) /
                              static_cast<double>(block.cycles)
                        : 0;
      t.addRow({base.name, std::to_string(ta), std::to_string(plain.cycles),
                std::to_string(block.cycles), fmtFixed(gain, 2) + "x"});
    }
    t.addRule();
  }
  std::fputs(t.str().c_str(), stdout);
  return 0;
}
