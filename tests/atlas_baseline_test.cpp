// Baseline compiler models, ATLAS hand-tuned kernels and selection, and the
// hardware prefetcher they rely on for realistic out-of-cache behaviour.
#include <gtest/gtest.h>

#include "atlas/atlas.h"
#include "atlas/handkernels.h"
#include "baseline/baseline.h"
#include "ir/verifier.h"
#include "kernels/tester.h"
#include "sim/memsys.h"
#include "sim/timer.h"

namespace ifko {
namespace {

using kernels::BlasOp;
using kernels::KernelSpec;

TEST(HwPrefetcher, StreamDetectionFillsAhead) {
  arch::MachineConfig m = arch::opteron();
  sim::MemSystem mem(m);
  uint64_t now = 0;
  // Sequential misses train the prefetcher after the configured streak.
  for (int i = 0; i < 6; ++i)
    now = mem.load(0x10000 + 64u * static_cast<uint64_t>(i), 8, now) + 1;
  EXPECT_GT(mem.stats().hwPrefetches, 0u);
}

TEST(HwPrefetcher, DisabledWhenDepthZero) {
  arch::MachineConfig m = arch::opteron();
  m.hwPrefetchDepth = 0;
  sim::MemSystem mem(m);
  uint64_t now = 0;
  for (int i = 0; i < 16; ++i)
    now = mem.load(0x10000 + 64u * static_cast<uint64_t>(i), 8, now) + 1;
  EXPECT_EQ(mem.stats().hwPrefetches, 0u);
}

TEST(HwPrefetcher, SpeedsUpStreamingLoad) {
  arch::MachineConfig on = arch::p4e();
  arch::MachineConfig off = arch::p4e();
  off.hwPrefetchDepth = 0;
  auto stream = [](const arch::MachineConfig& m) {
    sim::MemSystem mem(m);
    uint64_t now = 0;
    for (int i = 0; i < 256; ++i)
      now = mem.load(0x40000 + 8u * static_cast<uint64_t>(i) * 8, 8, now);
    return now;
  };
  EXPECT_LT(stream(on), stream(off));
}

// ---------------------------------------------------------------------------

TEST(Baseline, NamesAndShape) {
  EXPECT_EQ(baseline::compilerName(baseline::Compiler::GccRef), "gcc+ref");
  KernelSpec dot{BlasOp::Dot, ir::Scal::F64};
  auto gcc = baseline::baselineOptions(baseline::Compiler::GccRef, dot,
                                       arch::p4e());
  EXPECT_FALSE(gcc.tuning.simdVectorize);
  EXPECT_TRUE(gcc.tuning.prefetch.empty());
  EXPECT_EQ(gcc.regalloc, opt::RegAllocKind::Basic);

  auto icc = baseline::baselineOptions(baseline::Compiler::IccRef, dot,
                                       arch::p4e());
  EXPECT_TRUE(icc.tuning.simdVectorize);
  EXPECT_FALSE(icc.tuning.nonTemporalWrites);
  EXPECT_FALSE(icc.tuning.prefetch.empty());

  auto prof = baseline::baselineOptions(baseline::Compiler::IccProf, dot,
                                        arch::p4e());
  EXPECT_TRUE(prof.tuning.nonTemporalWrites);
}

TEST(Baseline, AllBaselinesCompileAllKernelsCorrectly) {
  for (const auto& spec : kernels::allKernels()) {
    for (auto c : {baseline::Compiler::GccRef, baseline::Compiler::IccRef,
                   baseline::Compiler::IccProf}) {
      auto r = baseline::compileBaseline(c, spec, arch::opteron());
      ASSERT_TRUE(r.ok) << spec.name() << " "
                        << baseline::compilerName(c) << ": " << r.error;
      auto outcome = kernels::testKernel(spec, r.fn, 143);
      EXPECT_TRUE(outcome.ok)
          << spec.name() << " " << baseline::compilerName(c) << ": "
          << outcome.message;
    }
  }
}

// ---------------------------------------------------------------------------

class HandKernels : public testing::TestWithParam<ir::Scal> {};

TEST_P(HandKernels, IamaxSimdIsCorrect) {
  ir::Scal prec = GetParam();
  auto fn = atlas::iamaxSimd(prec);
  EXPECT_TRUE(ir::verify(fn).empty());
  KernelSpec spec{BlasOp::Iamax, prec};
  for (int64_t n : {0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 100, 1000}) {
    for (uint64_t seed : {42u, 7u, 99u}) {
      auto outcome = kernels::testKernel(spec, fn, n, seed);
      ASSERT_TRUE(outcome.ok) << "n=" << n << " seed=" << seed << ": "
                              << outcome.message;
    }
  }
}

TEST_P(HandKernels, CopyBlockFetchIsCorrect) {
  ir::Scal prec = GetParam();
  auto fn = atlas::copyBlockFetch(prec);
  EXPECT_TRUE(ir::verify(fn).empty());
  KernelSpec spec{BlasOp::Copy, prec};
  for (int64_t n : {0, 1, 63, 64, 65, 512, 1000})
    ASSERT_TRUE(kernels::testKernel(spec, fn, n).ok) << "n=" << n;
}

TEST_P(HandKernels, CopyCiscIsCorrect) {
  ir::Scal prec = GetParam();
  for (bool nt : {false, true}) {
    auto fn = atlas::copyCisc(prec, nt);
    EXPECT_TRUE(ir::verify(fn).empty());
    KernelSpec spec{BlasOp::Copy, prec};
    for (int64_t n : {0, 1, 7, 8, 9, 100, 1000})
      ASSERT_TRUE(kernels::testKernel(spec, fn, n).ok) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(BothPrecisions, HandKernels,
                         testing::Values(ir::Scal::F32, ir::Scal::F64),
                         [](const auto& info) {
                           return info.param == ir::Scal::F32 ? "f32" : "f64";
                         });

TEST(HandKernels, IamaxSimdKeepsFirstIndexOnTies) {
  // Construct data with an exact tie: positions 5 and 13 hold the same
  // maximal magnitude; BLAS semantics require index 5.
  KernelSpec spec{BlasOp::Iamax, ir::Scal::F64};
  auto fn = atlas::iamaxSimd(ir::Scal::F64);
  auto data = kernels::makeKernelData(spec, 32);
  data.mem->write<double>(data.xAddr + 5 * 8, -3.5);
  data.mem->write<double>(data.xAddr + 13 * 8, 3.5);
  sim::Interp interp(fn, *data.mem);
  auto r = interp.run(data.args(fn));
  ASSERT_TRUE(r.intResult.has_value());
  EXPECT_EQ(*r.intResult, 5);
}

TEST(Atlas, PoolContainsAssemblyVariantsWhereExpected) {
  auto pool = atlas::variantPool({BlasOp::Iamax, ir::Scal::F32}, arch::p4e());
  bool hasAsm = false;
  for (const auto& v : pool) hasAsm |= v.assembly;
  EXPECT_TRUE(hasAsm);
  EXPECT_GE(pool.size(), 3u);

  auto dotPool = atlas::variantPool({BlasOp::Dot, ir::Scal::F64}, arch::p4e());
  for (const auto& v : dotPool) EXPECT_FALSE(v.assembly);
  EXPECT_GE(dotPool.size(), 4u);
}

TEST(Atlas, SelectionPicksCorrectFastVariant) {
  // The hand-vectorized iamax wins decisively for single precision on the
  // Opteron (for doubles on K8's half-rate SSE datapath the blend-heavy
  // SIMD loop can lose to deep scalar unrolling, and the selection then
  // correctly keeps the scalar variant).
  KernelSpec spec{BlasOp::Iamax, ir::Scal::F32};
  auto sel = atlas::selectKernel(spec, arch::opteron(), 20000,
                                 sim::TimeContext::OutOfCache);
  ASSERT_TRUE(sel.ok) << sel.error;
  EXPECT_GT(sel.tried, 1);
  EXPECT_TRUE(sel.best.assembly);
  EXPECT_EQ(sel.displayName, "isamax*");
  // And the winner is correct.
  EXPECT_TRUE(kernels::testKernel(spec, sel.best.fn, 333).ok);
}

TEST(Atlas, SelectionWorksForEveryKernel) {
  for (const auto& spec : kernels::allKernels()) {
    auto sel = atlas::selectKernel(spec, arch::opteron(), 2048,
                                   sim::TimeContext::OutOfCache);
    ASSERT_TRUE(sel.ok) << spec.name() << ": " << sel.error;
    EXPECT_GT(sel.cycles, 0u);
  }
}

}  // namespace
}  // namespace ifko
