// TuningSpec: the canonical textual form of TuningParams.  One
// serialization feeds the driver flags, the search ledger, the evaluation
// cache key, and the trace events, so the round trip must be exact.
#include <gtest/gtest.h>

#include "opt/params.h"

namespace ifko::opt {
namespace {

TuningParams sample() {
  TuningParams p;
  p.simdVectorize = true;
  p.unroll = 8;
  p.optimizeLoopControl = true;
  p.accumExpand = 2;
  p.prefSched = PrefSched::Spread;
  p.nonTemporalWrites = false;
  p.blockFetch = false;
  p.ciscIndexing = false;
  p.prefetch["X"] = {true, ir::PrefKind::T1, 256};
  p.prefetch["Y"] = {false, ir::PrefKind::NTA, 0};
  return p;
}

TEST(TuningSpec, FormatCanonicalOrder) {
  EXPECT_EQ(formatTuningSpec(sample()),
            "sv=Y ur=8 lc=Y ae=2 sched=spread wnt=N bf=N cisc=N "
            "pf(X)=t1:256 pf(Y)=none");
}

TEST(TuningSpec, StrIsFormatTuningSpec) {
  TuningParams p = sample();
  EXPECT_EQ(p.str(), formatTuningSpec(p));
}

TEST(TuningSpec, RoundTripEveryPrefKind) {
  for (ir::PrefKind kind : {ir::PrefKind::NTA, ir::PrefKind::T0,
                            ir::PrefKind::T1, ir::PrefKind::W}) {
    TuningParams p = sample();
    p.prefetch["X"] = {true, kind, 512};
    auto spec = parseTuningSpec(formatTuningSpec(p));
    ASSERT_TRUE(spec.ok) << spec.error;
    EXPECT_EQ(formatTuningSpec(spec.params), formatTuningSpec(p));
    EXPECT_EQ(spec.params.prefetch.at("X").kind, kind);
    EXPECT_EQ(spec.params.prefetch.at("X").distBytes, 512);
  }
}

TEST(TuningSpec, RoundTripVariants) {
  TuningParams p = sample();
  p.simdVectorize = false;
  p.nonTemporalWrites = true;
  p.blockFetch = true;
  p.ciscIndexing = true;
  p.prefSched = PrefSched::Top;
  p.unroll = 16;
  p.accumExpand = 4;
  auto spec = parseTuningSpec(formatTuningSpec(p));
  ASSERT_TRUE(spec.ok) << spec.error;
  EXPECT_EQ(formatTuningSpec(spec.params), formatTuningSpec(p));
  EXPECT_EQ(spec.params.prefSched, PrefSched::Top);
  EXPECT_TRUE(spec.params.blockFetch);
  EXPECT_TRUE(spec.params.ciscIndexing);
}

TEST(TuningSpec, DisabledPrefetchCanonicalizesToNone) {
  // A disabled slot forgets any stale kind/distance: both sides of the
  // round trip must print "none".
  TuningParams p = sample();
  p.prefetch["Y"] = {false, ir::PrefKind::T0, 1024};
  std::string text = formatTuningSpec(p);
  EXPECT_NE(text.find("pf(Y)=none"), std::string::npos) << text;
  auto spec = parseTuningSpec(text);
  ASSERT_TRUE(spec.ok);
  EXPECT_FALSE(spec.params.prefetch.at("Y").enabled);
  EXPECT_EQ(formatTuningSpec(spec.params), text);
}

TEST(TuningSpec, PartialUpdateKeepsBase) {
  TuningParams base = sample();
  auto spec = parseTuningSpec("ur=16", base);
  ASSERT_TRUE(spec.ok) << spec.error;
  EXPECT_EQ(spec.params.unroll, 16);
  EXPECT_EQ(spec.params.accumExpand, base.accumExpand);
  EXPECT_TRUE(spec.params.simdVectorize);
  EXPECT_EQ(spec.params.prefetch.at("X").distBytes, 256);
}

TEST(TuningSpec, AcceptsSeparatorsAndBoolSpellings) {
  auto spec = parseTuningSpec("sv=no,\tur=2\n ae=1");
  ASSERT_TRUE(spec.ok) << spec.error;
  EXPECT_FALSE(spec.params.simdVectorize);
  EXPECT_EQ(spec.params.unroll, 2);
}

TEST(TuningSpec, RejectsMalformedInput) {
  for (const char* bad :
       {"ur=abc", "ur=", "ur=0", "ae=0", "ae=x", "bogus=1", "sv=maybe",
        "pf(X)=warp:128", "pf(X)=nta:abc", "pf(X)=nta:-64", "sched=middle",
        "ur", "=4"}) {
    auto spec = parseTuningSpec(bad);
    EXPECT_FALSE(spec.ok) << "accepted: " << bad;
    EXPECT_FALSE(spec.error.empty()) << bad;
  }
}

TEST(TuningSpec, FormatPrefMatchesTableCells) {
  EXPECT_EQ(formatPref({true, ir::PrefKind::NTA, 128}), "nta:128");
  EXPECT_EQ(formatPref({true, ir::PrefKind::W, 64}), "w:64");
  EXPECT_EQ(formatPref({false, ir::PrefKind::NTA, 128}), "none");
}

}  // namespace
}  // namespace ifko::opt
