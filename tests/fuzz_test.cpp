// HIL program fuzzer: generates random (well-formed) kernels and checks
// that every transform combination preserves their semantics, using the
// differential tester (candidate vs. unoptimized lowering).
//
// The generator produces single-loop kernels with 1-2 vector parameters,
// 0-2 FP scalar parameters, random expression trees over loads/scalars/
// constants, optional accumulators with RETURN, random loop direction, and
// random strides — i.e. the space of kernels the front end accepts, well
// beyond the BLAS seven.
#include <gtest/gtest.h>

#include <sstream>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "fko/harness.h"
#include "support/rng.h"

namespace ifko {
namespace {

class KernelGen {
 public:
  explicit KernelGen(SplitMix64& rng) : rng_(rng) {}

  std::string generate() {
    numVecs_ = 1 + static_cast<int>(rng_.below(2));
    numScalars_ = static_cast<int>(rng_.below(3));
    numLocals_ = 1 + static_cast<int>(rng_.below(3));
    stride_ = rng_.below(4) == 0 ? 2 : 1;  // mostly unit stride
    bool f32 = rng_.below(2) == 0;
    bool down = rng_.below(4) == 0;
    hasAccum_ = rng_.below(2) == 0;
    writesY_ = numVecs_ == 2 && rng_.below(2) == 0;
    if (!writesY_ && !hasAccum_) hasAccum_ = true;  // do something observable

    std::ostringstream os;
    os << "ROUTINE fuzz;\nPARAMS :: X = VEC(" << (writesY_ || numVecs_ == 2 ? "in" : "in")
       << ")";
    if (numVecs_ == 2) os << ", Y = VEC(" << (writesY_ ? "inout" : "in") << ")";
    for (int i = 0; i < numScalars_; ++i) os << ", s" << i << " = SCALAR";
    os << ", N = INT;\nTYPE " << (f32 ? "float" : "double") << ";\n";
    os << "SCALARS :: ";
    for (int i = 0; i < numLocals_; ++i) os << (i ? ", " : "") << "t" << i;
    if (hasAccum_) os << ", acc";
    os << ";\n";
    if (hasAccum_) os << "acc = 0.0;\n";
    if (down)
      os << "LOOP i = N, 0, -1\n";
    else
      os << "LOOP i = 0, N\n";
    os << "LOOP_BODY\n";

    // Load phase: fill locals from arrays/expressions.
    for (int i = 0; i < numLocals_; ++i) {
      os << "  t" << i << " = " << expr(i) << ";\n";
      definedLocals_ = i + 1;
    }
    if (hasAccum_) {
      os << "  acc += " << expr(definedLocals_) << ";\n";
    }
    if (writesY_) {
      os << "  Y[0] = " << expr(definedLocals_) << ";\n";
    }
    os << "  X += " << stride_ << ";\n";
    if (numVecs_ == 2) os << "  Y += " << stride_ << ";\n";
    os << "LOOP_END\n";
    if (hasAccum_) os << "RETURN acc;\n";
    os << "END\n";
    return os.str();
  }

 private:
  /// A random FP expression over loads of X/Y, already-defined locals,
  /// scalar params, and literals.  `depthBudget` leaves lean trees.
  std::string expr(int definedLocals, int depth = 0) {
    if (depth >= 3 || rng_.below(3) == 0) return leaf(definedLocals);
    const char* ops[] = {"+", "-", "*"};
    std::string lhs = expr(definedLocals, depth + 1);
    std::string rhs = expr(definedLocals, depth + 1);
    std::string op = ops[rng_.below(3)];
    if (rng_.below(5) == 0)
      return "ABS (" + lhs + " " + op + " " + rhs + ")";
    return "(" + lhs + " " + op + " " + rhs + ")";
  }

  std::string leaf(int definedLocals) {
    switch (rng_.below(5)) {
      case 0:
        return "X[" + std::to_string(rng_.below(static_cast<uint64_t>(stride_))) + "]";
      case 1:
        if (numVecs_ == 2 && !writesY_)
          return "Y[" + std::to_string(rng_.below(static_cast<uint64_t>(stride_))) + "]";
        return "X[0]";
      case 2:
        if (definedLocals > 0)
          return "t" + std::to_string(rng_.below(static_cast<uint64_t>(definedLocals)));
        return "X[0]";
      case 3:
        if (numScalars_ > 0)
          return "s" + std::to_string(rng_.below(static_cast<uint64_t>(numScalars_)));
        return "0.5";
      default: {
        static const char* lits[] = {"0.25", "1.5", "2.0", "0.0"};
        return lits[rng_.below(4)];
      }
    }
  }

  SplitMix64& rng_;
  int numVecs_ = 1;
  int numScalars_ = 0;
  int numLocals_ = 1;
  int definedLocals_ = 0;
  int stride_ = 1;
  bool hasAccum_ = false;
  bool writesY_ = false;
};

opt::TuningParams randomParams(SplitMix64& rng) {
  opt::TuningParams p;
  p.simdVectorize = rng.below(2) == 0;
  p.unroll = static_cast<int>(rng.below(10)) + 1;
  p.accumExpand = static_cast<int>(rng.below(5)) + 1;
  p.optimizeLoopControl = rng.below(2) == 0;
  p.nonTemporalWrites = rng.below(2) == 0;
  p.blockFetch = rng.below(4) == 0;
  p.ciscIndexing = rng.below(4) == 0;
  for (const char* arr : {"X", "Y"}) {
    if (rng.below(2) == 0)
      p.prefetch[arr] = {true, static_cast<ir::PrefKind>(rng.below(4)),
                         static_cast<int>(rng.below(32)) * 64};
  }
  return p;
}

TEST(HilFuzz, RandomKernelsSurviveRandomTransforms) {
  SplitMix64 rng(0x1FC0DE);
  int generated = 0, compiled = 0;
  for (int iter = 0; iter < 120; ++iter) {
    KernelGen gen(rng);
    std::string src = gen.generate();
    ++generated;

    fko::CompileOptions opts;
    opts.tuning = randomParams(rng);
    auto r = fko::compileKernel(src, opts, rng.below(2) == 0
                                               ? arch::p4e()
                                               : arch::opteron());
    ASSERT_TRUE(r.ok) << "generated kernel failed to compile with "
                      << opts.tuning.str() << "\n--- source ---\n"
                      << src << "\nerror: " << r.error;
    ++compiled;

    int64_t n = static_cast<int64_t>(rng.below(200));
    auto diff = fko::testAgainstUnoptimized(src, r.fn, n, rng.next());
    ASSERT_TRUE(diff.ok) << "MISCOMPILE with " << opts.tuning.str() << " n="
                         << n << ": " << diff.message << "\n--- source ---\n"
                         << src;
  }
  EXPECT_EQ(generated, compiled);
}

TEST(HilFuzz, GeneratedSourcesAreDeterministic) {
  SplitMix64 a(7), b(7);
  KernelGen ga(a), gb(b);
  EXPECT_EQ(ga.generate(), gb.generate());
}

}  // namespace
}  // namespace ifko
