// End-to-end semantic gate: every kernel, lowered without optimization,
// must reproduce the reference results on the functional simulator across a
// sweep of lengths (including the empty and tiny edge cases every transform
// must also survive later).
#include <gtest/gtest.h>

#include "hil/lower.h"
#include "ir/builder.h"
#include "ir/verifier.h"
#include "kernels/registry.h"
#include "kernels/tester.h"
#include "sim/interp.h"

namespace ifko {
namespace {

struct Case {
  kernels::KernelSpec spec;
  int64_t n;
};

std::string caseName(const testing::TestParamInfo<Case>& info) {
  return info.param.spec.name() + "_n" + std::to_string(info.param.n);
}

class KernelSemantics : public testing::TestWithParam<Case> {};

TEST_P(KernelSemantics, UnoptimizedLoweringMatchesReference) {
  const auto& [spec, n] = GetParam();
  DiagnosticEngine d;
  auto fn = hil::compileHil(spec.hilSource(), d);
  ASSERT_TRUE(fn.has_value()) << d.str();
  ASSERT_TRUE(ir::verify(*fn).empty());
  auto outcome = kernels::testKernel(spec, *fn, n);
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

std::vector<Case> allCases() {
  std::vector<Case> cases;
  for (const auto& spec : kernels::allKernels())
    for (int64_t n : {0, 1, 2, 3, 7, 64, 257})
      cases.push_back({spec, n});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSemantics,
                         testing::ValuesIn(allCases()), caseName);

TEST(Interp, MemoryBoundsAreEnforced) {
  sim::Memory mem(4096);
  EXPECT_THROW((void)mem.read<double>(5000), std::out_of_range);
  EXPECT_THROW((void)mem.read<double>(0), std::out_of_range);
  EXPECT_THROW(mem.write<double>(4090, 1.0), std::out_of_range);
}

TEST(Interp, MemoryAllocateAligns) {
  sim::Memory mem(4096);
  uint64_t a = mem.allocate(10, 64);
  EXPECT_EQ(a % 64, 0u);
  uint64_t b = mem.allocate(10, 64);
  EXPECT_GE(b, a + 10);
}

TEST(Interp, DynInstBudgetStopsRunawayLoop) {
  ir::Function fn;
  fn.name = "inf";
  int32_t b0 = fn.addBlock();
  ir::Builder b(fn, b0);
  b.jmp(b0);
  sim::Memory mem(4096);
  sim::Interp interp(fn, mem, nullptr, /*maxDynInsts=*/1000);
  EXPECT_THROW(interp.run({}), std::runtime_error);
}

TEST(Interp, ObserverSeesEveryInstruction) {
  struct Counter : sim::InstObserver {
    uint64_t count = 0;
    uint64_t memOps = 0;
    void onInst(const sim::InstEvent& ev) override {
      ++count;
      if (ev.accessBytes > 0) ++memOps;
    }
  };
  kernels::KernelSpec spec{kernels::BlasOp::Copy, ir::Scal::F64};
  DiagnosticEngine d;
  auto fn = hil::compileHil(spec.hilSource(), d);
  ASSERT_TRUE(fn.has_value());
  auto data = kernels::makeKernelData(spec, 16);
  Counter obs;
  sim::Interp interp(*fn, *data.mem, &obs);
  auto r = interp.run(data.args(*fn));
  EXPECT_EQ(obs.count, r.dynInsts);
  // copy does one load + one store per element
  EXPECT_EQ(obs.memOps, 32u);
}

TEST(Interp, VectorOpsRoundTrip) {
  // Hand-build a tiny function: load 2 doubles, vadd with itself, store.
  ir::Function fn;
  fn.name = "v";
  ir::Reg p = fn.newIntReg();
  fn.params.push_back({.name = "X", .kind = ir::ParamKind::PtrF64, .reg = p});
  ir::Builder b(fn, fn.addBlock());
  ir::Reg v = b.vld(ir::Scal::F64, ir::mem(p, 0));
  ir::Reg s = b.vadd(ir::Scal::F64, v, v);
  b.vst(ir::Scal::F64, ir::mem(p, 0), s);
  ir::Reg h = b.vhadd(ir::Scal::F64, s);
  b.retVal(h);
  fn.retType = ir::RetType::F64;

  sim::Memory mem(4096);
  uint64_t addr = mem.allocate(16, 16);
  mem.write<double>(addr, 1.5);
  mem.write<double>(addr + 8, 2.0);
  sim::Interp interp(fn, mem);
  auto r = interp.run(std::vector<sim::ArgValue>{static_cast<int64_t>(addr)});
  EXPECT_DOUBLE_EQ(mem.read<double>(addr), 3.0);
  EXPECT_DOUBLE_EQ(mem.read<double>(addr + 8), 4.0);
  ASSERT_TRUE(r.fpResult.has_value());
  EXPECT_DOUBLE_EQ(*r.fpResult, 7.0);
}

TEST(Interp, VectorMaskAndSelect) {
  ir::Function fn;
  fn.name = "m";
  ir::Builder b(fn, fn.addBlock());
  ir::Reg one = b.fldi(ir::Scal::F32, 1.0);
  ir::Reg vone = b.vbcast(ir::Scal::F32, one);
  ir::Reg vio = b.viota(ir::Scal::F32);  // {0,1,2,3}
  ir::Reg mask = b.vcmpgt(ir::Scal::F32, vio, vone);  // {0,0,~0,~0}
  ir::Reg msk = b.vmovmsk(ir::Scal::F32, mask);
  ir::Reg sel = b.vsel(ir::Scal::F32, mask, vio, vone);  // {1,1,2,3}
  ir::Reg sum = b.vhadd(ir::Scal::F32, sel);
  // Return mask bits; check sum via store-free compare below.
  b.retVal(msk);
  fn.retType = ir::RetType::Int;
  (void)sum;

  sim::Memory mem(4096);
  sim::Interp interp(fn, mem);
  auto r = interp.run({});
  ASSERT_TRUE(r.intResult.has_value());
  EXPECT_EQ(*r.intResult, 0b1100);
}

}  // namespace
}  // namespace ifko
