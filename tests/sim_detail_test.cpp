// Detailed memory-system and ISA-semantics tests added alongside the
// calibration work: write-combining buffers, the hardware prefetcher's page
// discipline, ownership upgrades, the store buffer, and the VExt/FToI/Touch
// instructions.
#include <gtest/gtest.h>

#include "arch/machine.h"
#include "ir/builder.h"
#include "sim/interp.h"
#include "sim/memsys.h"
#include "sim/timing.h"
#include "opt/repeatable.h"

namespace ifko::sim {
namespace {

arch::MachineConfig tiny() {
  arch::MachineConfig m = arch::opteron();
  m.name = "tiny";
  m.caches = {{.sizeBytes = 1024, .lineBytes = 64, .assoc = 2, .latency = 3},
              {.sizeBytes = 4096, .lineBytes = 64, .assoc = 4, .latency = 10}};
  m.memLatency = 100;
  m.busBytesPerCycle = 2.0;
  m.busTurnaround = 8;
  m.maxOutstandingMisses = 4;
  m.hwPrefetchDepth = 0;  // keep the hardware prefetcher out of unit tests
  m.wcBuffers = 2;
  return m;
}

TEST(WcBuffers, TwoInterleavedNtStreamsCombineWithTwoBuffers) {
  // Stores alternate between two line-sized streams; with >= 2 WC buffers
  // each line flushes exactly once when complete: 2 lines -> 128 bus bytes.
  sim::MemSystem mem(tiny());
  uint64_t now = 0;
  for (int i = 0; i < 8; ++i) {
    now = mem.storeNT(0x10000 + 8u * static_cast<uint64_t>(i), 8, now);
    now = mem.storeNT(0x20000 + 8u * static_cast<uint64_t>(i), 8, now);
  }
  EXPECT_EQ(mem.stats().busBytes, 128u);
}

TEST(WcBuffers, ThreeStreamsThrashTwoBuffers) {
  // A third stream evicts partially-filled buffers: partial lines flush at
  // full line cost, so traffic exceeds the 3-line minimum.
  arch::MachineConfig m = tiny();
  m.wcBuffers = 2;
  sim::MemSystem mem(m);
  uint64_t now = 0;
  for (int i = 0; i < 8; ++i) {
    now = mem.storeNT(0x10000 + 8u * static_cast<uint64_t>(i), 8, now);
    now = mem.storeNT(0x20000 + 8u * static_cast<uint64_t>(i), 8, now);
    now = mem.storeNT(0x30000 + 8u * static_cast<uint64_t>(i), 8, now);
  }
  EXPECT_GT(mem.stats().busBytes, 3u * 64u);
}

TEST(HwPrefetcher, DoesNotCrossPageBoundary) {
  arch::MachineConfig m = arch::p4e();
  m.hwPrefetchDepth = 8;
  sim::MemSystem mem(m);
  // Train right up to the end of a 4KB page: the prefetcher must not fetch
  // the first lines of the next page.
  uint64_t page = 0x40000;
  uint64_t now = 0;
  for (int i = 56; i < 64; ++i)  // last 8 lines of the page
    now = mem.load(page + 64u * static_cast<uint64_t>(i), 8, now) + 1;
  // The first access on the next page must be a fresh memory miss (nothing
  // was fetched across the boundary) — it pays full memory latency.  (It
  // also retrains the stream, so ahead-fetches on the *new* page follow.)
  uint64_t start = now + 1000;
  uint64_t ready = mem.load(page + 4096, 8, start);
  EXPECT_GE(ready - start, static_cast<uint64_t>(m.memLatency));
}

TEST(MemSystem, UpgradeChargesStoreNotBus) {
  // A store to a line loaded shared costs a small latency but transfers no
  // line of data.
  sim::MemSystem mem(tiny());
  uint64_t t = mem.load(0x5000, 8, 0);
  uint64_t bytesAfterLoad = mem.stats().busBytes;
  uint64_t commit = mem.store(0x5000, 8, t);
  EXPECT_EQ(mem.stats().busBytes, bytesAfterLoad);
  EXPECT_GE(commit, t + 1);
  // Second store to the now-exclusive line is cheaper.
  uint64_t commit2 = mem.store(0x5008, 8, commit);
  EXPECT_LE(commit2 - commit, commit - t);
}

TEST(MemSystem, StoreBufferEventuallyBackpressures) {
  arch::MachineConfig m = tiny();
  m.storeBufferEntries = 4;
  sim::MemSystem mem(m);
  // Miss-stores to distinct lines: the first few commit at now+1, then the
  // buffer is full and commits wait for RFO fills.
  uint64_t firstCommit = mem.store(0x100000, 8, 0);
  EXPECT_EQ(firstCommit, 1u);
  uint64_t lastCommit = 0;
  for (int i = 1; i < 12; ++i)
    lastCommit = mem.store(0x100000 + 64u * static_cast<uint64_t>(i), 8, 0);
  EXPECT_GT(lastCommit, 100u);  // waits on a fill
}

// --- newer ISA ops --------------------------------------------------------------

TEST(IsaOps, VExtExtractsLanes) {
  ir::Function fn;
  fn.name = "vext";
  ir::Reg p = fn.newIntReg();
  fn.params.push_back({.name = "X", .kind = ir::ParamKind::PtrF32, .reg = p});
  ir::Builder b(fn, fn.addBlock());
  ir::Reg v = b.vld(ir::Scal::F32, ir::mem(p, 0));
  ir::Reg lane2 = fn.newFpReg();
  b.emit({.op = ir::Op::VExt, .type = ir::Scal::F32, .dst = lane2, .src1 = v,
          .imm = 2});
  b.retVal(lane2);
  fn.retType = ir::RetType::F32;

  Memory mem(4096);
  uint64_t addr = mem.allocate(16, 16);
  for (int l = 0; l < 4; ++l)
    mem.write<float>(addr + static_cast<uint64_t>(l) * 4,
                     static_cast<float>(10 + l));
  Interp interp(fn, mem);
  auto r = interp.run(std::vector<ArgValue>{static_cast<int64_t>(addr)});
  ASSERT_TRUE(r.fpResult.has_value());
  EXPECT_FLOAT_EQ(static_cast<float>(*r.fpResult), 12.0f);
}

TEST(IsaOps, FToITruncates) {
  ir::Function fn;
  fn.name = "ftoi";
  ir::Builder b(fn, fn.addBlock());
  ir::Reg f = b.fldi(ir::Scal::F64, 41.9);
  ir::Reg i = fn.newIntReg();
  b.emit({.op = ir::Op::FToI, .type = ir::Scal::F64, .dst = i, .src1 = f});
  b.retVal(i);
  fn.retType = ir::RetType::Int;
  Memory mem(4096);
  Interp interp(fn, mem);
  auto r = interp.run({});
  ASSERT_TRUE(r.intResult.has_value());
  EXPECT_EQ(*r.intResult, 41);  // truncation, not rounding
}

TEST(IsaOps, TouchFetchesWithoutBlocking) {
  // A Touch initiates the fill; a later load hits.
  arch::MachineConfig m = tiny();
  sim::MemSystem msys(m);
  sim::TimingModel timing(m, msys);

  ir::Function fn;
  fn.name = "touch";
  ir::Reg p = fn.newIntReg();
  fn.params.push_back({.name = "X", .kind = ir::ParamKind::PtrF64, .reg = p});
  ir::Builder b(fn, fn.addBlock());
  b.emit({.op = ir::Op::Touch, .type = ir::Scal::F64, .mem = ir::mem(p, 0)});
  b.ret();

  Memory mem(1 << 16);
  uint64_t addr = mem.allocate(64, 64);
  Interp interp(fn, mem, &timing);
  interp.run(std::vector<ArgValue>{static_cast<int64_t>(addr)});
  // Touch completes immediately (+1) while the line fill proceeds.
  EXPECT_LT(timing.cycles(), static_cast<uint64_t>(m.memLatency));
  EXPECT_EQ(msys.stats().loadMissMem, 1u);
}

TEST(IsaOps, TouchSurvivesDeadCodeElimination) {
  // Unlike a dead FLd, a Touch has no destination and must be kept.
  ir::Function fn;
  fn.name = "t";
  ir::Reg p = fn.newIntReg();
  fn.params.push_back({.name = "X", .kind = ir::ParamKind::PtrF64, .reg = p});
  ir::Builder b(fn, fn.addBlock());
  b.emit({.op = ir::Op::Touch, .type = ir::Scal::F64, .mem = ir::mem(p, 0)});
  (void)b.fld(ir::Scal::F64, ir::mem(p, 8));  // dead load: removable
  b.ret();
  (void)opt::deadCodeElim(fn);
  size_t touches = 0, loads = 0;
  for (const auto& bb : fn.blocks)
    for (const auto& in : bb.insts) {
      touches += in.op == ir::Op::Touch;
      loads += in.op == ir::Op::FLd;
    }
  EXPECT_EQ(touches, 1u);
  EXPECT_EQ(loads, 0u);
}

}  // namespace
}  // namespace ifko::sim
