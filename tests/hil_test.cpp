#include <gtest/gtest.h>

#include "hil/lexer.h"
#include "hil/lower.h"
#include "hil/parser.h"
#include "hil/sema.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "kernels/registry.h"

namespace ifko::hil {
namespace {

TEST(Lexer, BasicTokens) {
  DiagnosticEngine d;
  auto toks = lex("LOOP i = 0, N  # comment\n x += 1.5;", d);
  ASSERT_FALSE(d.hasErrors());
  ASSERT_GE(toks.size(), 9u);
  EXPECT_EQ(toks[0].kind, Tok::KwLoop);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "i");
  EXPECT_EQ(toks[2].kind, Tok::Assign);
  EXPECT_EQ(toks[3].kind, Tok::Number);
  EXPECT_TRUE(toks[3].isIntLiteral);
  EXPECT_EQ(toks[4].kind, Tok::Comma);
  EXPECT_EQ(toks[6].kind, Tok::Ident);
  EXPECT_EQ(toks[7].kind, Tok::PlusAssign);
  EXPECT_EQ(toks[8].kind, Tok::Number);
  EXPECT_FALSE(toks[8].isIntLiteral);
  EXPECT_DOUBLE_EQ(toks[8].number, 1.5);
  EXPECT_EQ(toks.back().kind, Tok::Eof);
}

TEST(Lexer, TracksLocations) {
  DiagnosticEngine d;
  auto toks = lex("a\n  b", d);
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.col, 3u);
}

TEST(Lexer, ReportsBadCharacter) {
  DiagnosticEngine d;
  (void)lex("a @ b", d);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Lexer, ScientificNumbers) {
  DiagnosticEngine d;
  auto toks = lex("1e3 2.5e-2", d);
  ASSERT_FALSE(d.hasErrors());
  EXPECT_DOUBLE_EQ(toks[0].number, 1000.0);
  EXPECT_DOUBLE_EQ(toks[1].number, 0.025);
}

std::unique_ptr<Routine> parseOk(std::string_view src) {
  DiagnosticEngine d;
  auto r = parse(src, d);
  EXPECT_FALSE(d.hasErrors()) << d.str();
  return r;
}

TEST(Parser, ParsesDotKernel) {
  kernels::KernelSpec spec{kernels::BlasOp::Dot, ir::Scal::F64};
  auto r = parseOk(spec.hilSource());
  ASSERT_TRUE(r);
  EXPECT_EQ(r->name, "dot");
  ASSERT_EQ(r->params.size(), 3u);
  EXPECT_EQ(r->params[0].name, "X");
  EXPECT_EQ(r->params[0].cls, ParamClass::Vec);
  EXPECT_EQ(r->params[2].cls, ParamClass::Int);
  EXPECT_EQ(r->type, FpType::F64);
  EXPECT_EQ(r->fpScalars.size(), 3u);
  // dot = 0; loop; return
  ASSERT_EQ(r->stmts.size(), 3u);
  EXPECT_EQ(r->stmts[1]->kind, Stmt::Kind::Loop);
  EXPECT_FALSE(r->stmts[1]->loopDown);
  EXPECT_EQ(r->stmts[1]->body.size(), 5u);
}

TEST(Parser, ParsesDownLoopAndLabels) {
  kernels::KernelSpec spec{kernels::BlasOp::Iamax, ir::Scal::F32};
  auto r = parseOk(spec.hilSource());
  ASSERT_TRUE(r);
  const Stmt* loop = nullptr;
  for (const auto& s : r->stmts)
    if (s->kind == Stmt::Kind::Loop) loop = s.get();
  ASSERT_TRUE(loop);
  EXPECT_TRUE(loop->loopDown);
  EXPECT_EQ(r->intScalars.size(), 1u);
}

TEST(Parser, AcceptsDepthTwoNesting) {
  // Depth-2 nesting is supported (the inner loop is the tuned one); sema
  // rejects anything deeper or with sibling loops.
  DiagnosticEngine d;
  auto r = parse(R"(
ROUTINE t;
PARAMS :: X = VEC(in), N = INT;
TYPE double;
LOOP i = 0, N
LOOP_BODY
LOOP j = 0, N
LOOP_BODY
LOOP_END
LOOP_END
END
)", d);
  EXPECT_TRUE(r != nullptr);
  EXPECT_FALSE(d.hasErrors());
}

TEST(Sema, RejectsDepthThreeNesting) {
  DiagnosticEngine d;
  auto r = parse(R"(
ROUTINE t;
PARAMS :: X = VEC(in), N = INT;
TYPE double;
SCALARS :: x;
LOOP a = 0, N
LOOP_BODY
LOOP b = 0, N
LOOP_BODY
LOOP c = 0, N
LOOP_BODY
  x = X[0];
  X += 1;
LOOP_END
LOOP_END
LOOP_END
END
)", d);
  ASSERT_TRUE(r != nullptr);
  analyze(*r, d);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Sema, RejectsSiblingLoops) {
  DiagnosticEngine d;
  auto r = parse(R"(
ROUTINE t;
PARAMS :: X = VEC(in), N = INT;
TYPE double;
SCALARS :: x;
LOOP a = 0, N
LOOP_BODY
  x = X[0];
LOOP_END
LOOP b = 0, N
LOOP_BODY
  x = X[0];
LOOP_END
END
)", d);
  ASSERT_TRUE(r != nullptr);
  analyze(*r, d);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Sema, RejectsPointerRewindWithoutNestedLoop) {
  DiagnosticEngine d;
  auto r = parse(R"(
ROUTINE t;
PARAMS :: X = VEC(in), N = INT;
TYPE double;
SCALARS :: x;
LOOP i = 0, N
LOOP_BODY
  x = X[0];
  X -= N;
LOOP_END
END
)", d);
  ASSERT_TRUE(r != nullptr);
  analyze(*r, d);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Parser, RejectsBadStep) {
  DiagnosticEngine d;
  auto r = parse(R"(
ROUTINE t;
PARAMS :: N = INT;
TYPE double;
LOOP i = N, 0, -2
LOOP_BODY
LOOP_END
END
)", d);
  EXPECT_FALSE(r);
}

TEST(Parser, NoPrefMarkup) {
  auto r = parseOk(R"(
ROUTINE t;
PARAMS :: X = VEC(in,nopref), N = INT;
TYPE float;
SCALARS :: x;
LOOP i = 0, N
LOOP_BODY
  x = X[0];
  X += 1;
LOOP_END
END
)");
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->params[0].noPrefetch);
}

Symbols semaOn(std::string_view src, DiagnosticEngine& d) {
  auto r = parse(src, d);
  EXPECT_TRUE(r) << d.str();
  return analyze(*r, d);
}

TEST(Sema, AllKernelsAnalyzeClean) {
  for (const auto& spec : kernels::allKernels()) {
    DiagnosticEngine d;
    semaOn(spec.hilSource(), d);
    EXPECT_FALSE(d.hasErrors()) << spec.name() << ": " << d.str();
  }
}

TEST(Sema, RejectsUndeclaredName) {
  DiagnosticEngine d;
  semaOn(R"(
ROUTINE t;
PARAMS :: N = INT;
TYPE double;
SCALARS :: x;
LOOP i = 0, N
LOOP_BODY
  x = bogus;
LOOP_END
END
)", d);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Sema, RejectsRefAfterBump) {
  DiagnosticEngine d;
  semaOn(R"(
ROUTINE t;
PARAMS :: X = VEC(inout), N = INT;
TYPE double;
SCALARS :: x;
LOOP i = 0, N
LOOP_BODY
  X += 1;
  x = X[0];
LOOP_END
END
)", d);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Sema, RejectsStoreToInVector) {
  DiagnosticEngine d;
  semaOn(R"(
ROUTINE t;
PARAMS :: X = VEC(in), N = INT;
TYPE double;
SCALARS :: x;
LOOP i = 0, N
LOOP_BODY
  x = X[0];
  X[0] = x;
  X += 1;
LOOP_END
END
)", d);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Sema, RejectsAssignToLoopVar) {
  DiagnosticEngine d;
  semaOn(R"(
ROUTINE t;
PARAMS :: N = INT;
TYPE double;
INTS :: k;
LOOP i = 0, N
LOOP_BODY
  i = 3;
LOOP_END
END
)", d);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Sema, RejectsGotoUndefinedLabel) {
  DiagnosticEngine d;
  semaOn(R"(
ROUTINE t;
PARAMS :: N = INT;
TYPE double;
LOOP i = 0, N
LOOP_BODY
  GOTO nowhere;
LOOP_END
END
)", d);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Sema, RejectsFpAssignToInt) {
  DiagnosticEngine d;
  semaOn(R"(
ROUTINE t;
PARAMS :: N = INT;
TYPE double;
SCALARS :: x;
INTS :: k;
LOOP i = 0, N
LOOP_BODY
  x = 1.5;
  k = x;
LOOP_END
END
)", d);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Lower, AllKernelsLowerToValidIR) {
  for (const auto& spec : kernels::allKernels()) {
    DiagnosticEngine d;
    auto fn = compileHil(spec.hilSource(), d);
    ASSERT_TRUE(fn.has_value()) << spec.name() << ": " << d.str();
    auto problems = ir::verify(*fn);
    EXPECT_TRUE(problems.empty())
        << spec.name() << ":\n"
        << ir::print(*fn) << "\nproblems:\n"
        << (problems.empty() ? "" : problems[0]);
    EXPECT_TRUE(fn->loop.valid) << spec.name();
  }
}

TEST(Lower, DotHasExpectedShape) {
  kernels::KernelSpec spec{kernels::BlasOp::Dot, ir::Scal::F64};
  DiagnosticEngine d;
  auto fn = compileHil(spec.hilSource(), d);
  ASSERT_TRUE(fn.has_value()) << d.str();
  EXPECT_EQ(fn->retType, ir::RetType::F64);
  EXPECT_EQ(fn->params.size(), 3u);
  EXPECT_TRUE(fn->params[0].vecRead);
  EXPECT_FALSE(fn->params[0].vecWritten);
  // preheader + header(+latch merged) + exit at minimum
  EXPECT_GE(fn->blocks.size(), 3u);
  EXPECT_TRUE(fn->loop.valid);
  EXPECT_EQ(fn->loop.dir, ir::LoopDir::Up);
}

TEST(Lower, IamaxReturnsInt) {
  kernels::KernelSpec spec{kernels::BlasOp::Iamax, ir::Scal::F64};
  DiagnosticEngine d;
  auto fn = compileHil(spec.hilSource(), d);
  ASSERT_TRUE(fn.has_value()) << d.str();
  EXPECT_EQ(fn->retType, ir::RetType::Int);
  EXPECT_EQ(fn->loop.dir, ir::LoopDir::Down);
}

TEST(Lower, CopyMarksIntent) {
  kernels::KernelSpec spec{kernels::BlasOp::Copy, ir::Scal::F32};
  DiagnosticEngine d;
  auto fn = compileHil(spec.hilSource(), d);
  ASSERT_TRUE(fn.has_value());
  const ir::Param* y = fn->findParam("Y");
  ASSERT_TRUE(y);
  EXPECT_TRUE(y->vecWritten);
  EXPECT_FALSE(y->vecRead);
}

}  // namespace
}  // namespace ifko::hil
