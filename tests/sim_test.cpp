#include <gtest/gtest.h>

#include "arch/machine.h"
#include "hil/lower.h"
#include "sim/memsys.h"
#include "sim/timer.h"
#include "ir/builder.h"
#include "sim/timing.h"

namespace ifko::sim {
namespace {

using arch::MachineConfig;

MachineConfig tiny() {
  // Small, round-number machine for cache unit tests: 1KB 2-way L1 (16
  // lines), 4KB 4-way L2, 64B lines.
  MachineConfig m = arch::opteron();
  m.name = "tiny";
  m.caches = {{.sizeBytes = 1024, .lineBytes = 64, .assoc = 2, .latency = 3},
              {.sizeBytes = 4096, .lineBytes = 64, .assoc = 4, .latency = 10}};
  m.memLatency = 100;
  m.busBytesPerCycle = 2.0;  // 32 cycles per line
  m.busTurnaround = 8;
  m.maxOutstandingMisses = 4;
  m.prefetchDropBacklog = 40;
  return m;
}

TEST(MemSystem, L1HitLatency) {
  MachineConfig m = tiny();
  MemSystem mem(m);
  uint64_t t0 = mem.load(0x1000, 8, 0);
  EXPECT_GE(t0, 100u);  // cold miss
  uint64_t t1 = mem.load(0x1008, 8, t0);
  EXPECT_EQ(t1, t0 + 3);  // same line, L1 hit
}

TEST(MemSystem, MissGoesToMemory) {
  MemSystem mem(tiny());
  uint64_t t = mem.load(0x2000, 8, 0);
  EXPECT_GE(t, 100u);
  EXPECT_EQ(mem.stats().loadMissMem, 1u);
}

TEST(MemSystem, L2HitAfterL1Eviction) {
  MachineConfig m = tiny();
  MemSystem mem(m);
  // L1: 8 sets * 2 ways. Lines 0x1000, 0x1200, 0x1400 map to the same set
  // (stride 0x200 = 8 sets * 64B); the third evicts the first from L1.
  uint64_t now = mem.load(0x1000, 8, 0);
  now = mem.load(0x1200, 8, now);
  now = mem.load(0x1400, 8, now);
  uint64_t before = mem.stats().loadMissMem;
  uint64_t t = mem.load(0x1000, 8, now + 1000);
  EXPECT_EQ(mem.stats().loadMissMem, before);  // still in L2
  EXPECT_EQ(t, now + 1000 + 10);               // L2 latency
}

TEST(MemSystem, StoreMissDoesRFO) {
  MemSystem mem(tiny());
  mem.store(0x3000, 8, 0);
  EXPECT_EQ(mem.stats().storeRFOs, 1u);
  EXPECT_GT(mem.stats().busBytes, 0u);
}

TEST(MemSystem, StoreHitAvoidsRFO) {
  MemSystem mem(tiny());
  uint64_t t = mem.load(0x3000, 8, 0);
  mem.store(0x3000, 8, t);
  EXPECT_EQ(mem.stats().storeRFOs, 0u);
}

TEST(MemSystem, DirtyEvictionWritesBack) {
  MemSystem mem(tiny());
  uint64_t now = mem.store(0x1000, 8, 0);
  now = std::max(now, mem.busFreeTime());
  // Evict 0x1000 from both L1 and L2.  L2: 16 sets * 4 ways, stride 0x400.
  for (int i = 1; i <= 8; ++i)
    now = mem.load(0x1000 + 0x400u * static_cast<uint64_t>(i), 8, now);
  EXPECT_GE(mem.stats().writebacks, 1u);
}

TEST(MemSystem, NtStoreBypassesCache) {
  MemSystem mem(tiny());
  uint64_t now = 0;
  for (int i = 0; i < 8; ++i)
    now = mem.storeNT(0x5000 + 8u * static_cast<uint64_t>(i), 8, now);
  EXPECT_EQ(mem.stats().ntStores, 8u);
  EXPECT_EQ(mem.stats().storeRFOs, 0u);
  // A later load of that line must miss to memory (nothing was cached).
  uint64_t before = mem.stats().loadMissMem;
  mem.load(0x5000, 8, now + 1000);
  EXPECT_EQ(mem.stats().loadMissMem, before + 1);
}

TEST(MemSystem, NtStoreFullLineUsesOneBusTransfer) {
  MemSystem mem(tiny());
  uint64_t bytesBefore = mem.stats().busBytes;
  uint64_t now = 0;
  for (int i = 0; i < 8; ++i)
    now = mem.storeNT(0x5000 + 8u * static_cast<uint64_t>(i), 8, now);
  EXPECT_EQ(mem.stats().busBytes - bytesBefore, 64u);
}

TEST(MemSystem, NtStoreOnCachedLinePenalizedOnlyWhenConfigured) {
  MachineConfig cheap = tiny();
  cheap.ntStoreCheapWhenCached = true;
  MachineConfig costly = tiny();
  costly.ntStoreCheapWhenCached = false;

  for (bool isCostly : {false, true}) {
    MemSystem mem(isCostly ? costly : cheap);
    uint64_t t = mem.load(0x7000, 8, 0);  // cache the line
    mem.storeNT(0x7000, 8, t);
    if (isCostly)
      EXPECT_EQ(mem.stats().ntFlushes, 1u);
    else
      EXPECT_EQ(mem.stats().ntFlushes, 0u);
  }
}

TEST(MemSystem, PrefetchHidesLatency) {
  MemSystem mem(tiny());
  mem.prefetch(ir::PrefKind::NTA, 0x9000, 0);
  EXPECT_EQ(mem.stats().prefIssued, 1u);
  // Long after the fill completes, the load is an L1 hit.
  uint64_t t = mem.load(0x9000, 8, 500);
  EXPECT_EQ(t, 503u);
}

TEST(MemSystem, PrefetchInFlightGivesPartialBenefit) {
  MemSystem mem(tiny());
  mem.prefetch(ir::PrefKind::NTA, 0x9000, 0);
  // Load arrives halfway through the fill: waits only the remainder.
  uint64_t t = mem.load(0x9000, 8, 50);
  EXPECT_GT(t, 53u);
  EXPECT_LE(t, 140u);
}

TEST(MemSystem, PrefetchDroppedWhenBusBusy) {
  MachineConfig m = tiny();
  MemSystem mem(m);
  // Saturate the bus with demand misses at the same instant.
  for (int i = 0; i < 4; ++i)
    mem.load(0x10000 + 0x1000u * static_cast<uint64_t>(i), 8, 0);
  mem.prefetch(ir::PrefKind::NTA, 0x20000, 0);
  EXPECT_EQ(mem.stats().prefDropped, 1u);
}

TEST(MemSystem, PrefetchT1FillsOnlyL2) {
  MemSystem mem(tiny());
  mem.prefetch(ir::PrefKind::T1, 0xA000, 0);
  // Later load misses L1 but hits L2.
  uint64_t before = mem.stats().loadMissMem;
  uint64_t t = mem.load(0xA000, 8, 1000);
  EXPECT_EQ(mem.stats().loadMissMem, before);
  EXPECT_EQ(t, 1010u);  // L2 latency
}

TEST(MemSystem, PrefetchDedupesResidentLines) {
  MemSystem mem(tiny());
  uint64_t t = mem.load(0xB000, 8, 0);
  mem.prefetch(ir::PrefKind::T0, 0xB000, t);
  EXPECT_EQ(mem.stats().prefIssued, 0u);
  EXPECT_EQ(mem.stats().prefDropped, 0u);
}

TEST(MemSystem, WarmMakesLoadsHit) {
  MemSystem mem(tiny());
  mem.warm(0xC000, 256);
  uint64_t t = mem.load(0xC0F8, 8, 0);
  EXPECT_EQ(t, 3u);
  EXPECT_EQ(mem.stats().loadMissMem, 0u);
}

TEST(MemSystem, BusTurnaroundPenalizesInterleavedReadsWrites) {
  // Interleaved read/write misses pay turnaround each switch; grouped
  // traffic doesn't.  (The effect AMD's block fetch exploits.)
  MachineConfig m = tiny();
  MemSystem interleaved(m);
  uint64_t now = 0;
  for (int i = 0; i < 8; ++i) {
    interleaved.load(0x40000 + 0x40u * static_cast<uint64_t>(2 * i), 8, now);
    interleaved.storeNT(0x80000 + 0x40u * static_cast<uint64_t>(2 * i + 1), 64, now);
    now = interleaved.busFreeTime();
  }
  uint64_t interleavedDone = interleaved.busFreeTime();

  MemSystem grouped(m);
  now = 0;
  for (int i = 0; i < 8; ++i)
    grouped.load(0x40000 + 0x40u * static_cast<uint64_t>(2 * i), 8, now);
  now = grouped.busFreeTime();
  for (int i = 0; i < 8; ++i)
    grouped.storeNT(0x80000 + 0x40u * static_cast<uint64_t>(2 * i + 1), 64, now);
  uint64_t groupedDone = grouped.busFreeTime();
  EXPECT_LT(groupedDone, interleavedDone);
}

// ---------------------------------------------------------------------------

ir::Function chainFn(int n, bool independent) {
  // n FAdds, either one dependence chain or fully independent.
  ir::Function fn;
  fn.name = "chain";
  ir::Builder b(fn, fn.addBlock());
  ir::Reg acc = b.fldi(ir::Scal::F64, 1.0);
  ir::Reg one = b.fldi(ir::Scal::F64, 2.0);
  if (independent) {
    for (int i = 0; i < n; ++i) (void)b.fadd(ir::Scal::F64, one, one);
  } else {
    for (int i = 0; i < n; ++i) acc = b.fadd(ir::Scal::F64, acc, acc);
  }
  b.ret();
  return fn;
}

uint64_t cyclesOf(const ir::Function& fn, const MachineConfig& m) {
  MemSystem mem(m);
  TimingModel t(m, mem);
  Memory data(4096);
  Interp interp(fn, data, &t);
  interp.run({});
  return t.cycles();
}

TEST(Timing, DependentChainBoundByLatency) {
  MachineConfig m = arch::p4e();
  uint64_t dep = cyclesOf(chainFn(64, false), m);
  uint64_t indep = cyclesOf(chainFn(64, true), m);
  // The dependent chain pays ~latFAdd per op; independent ops pipeline.
  EXPECT_GT(dep, indep * 2);
  EXPECT_GE(dep, 64u * static_cast<uint64_t>(m.latFAdd));
}

TEST(Timing, IssueWidthBoundsIndependentIntOps) {
  ir::Function fn;
  fn.name = "ints";
  ir::Builder b(fn, fn.addBlock());
  for (int i = 0; i < 300; ++i) (void)b.imovi(i);
  b.ret();
  uint64_t c = cyclesOf(fn, arch::p4e());
  // 300 int ops on a 3-wide machine with 2 ALUs: >= 150 cycles.
  EXPECT_GE(c, 150u);
  EXPECT_LE(c, 400u);
}

TEST(Timing, MispredictsCostCycles) {
  // A data-dependent unpredictable branch vs. an always-taken one.
  auto branchy = [](bool alternate) {
    ir::Function fn;
    fn.name = "br";
    int32_t b0 = fn.addBlock();
    ir::Builder b(fn, b0);
    ir::Reg i = b.imovi(0);
    ir::Reg parity = b.imovi(0);
    int32_t loop = fn.addBlock();
    b.jmp(loop);
    b.setBlock(loop);
    ir::Builder lb(fn, loop);
    int32_t skip = fn.addBlock();
    if (alternate) {
      // parity flips each iteration -> alternating branch
      ir::Reg one = lb.imovi(1);
      lb.emit({.op = ir::Op::ISub, .dst = parity, .src1 = one, .src2 = parity});
      lb.icmpi(parity, 1);
      lb.jcc(ir::Cond::EQ, skip);
    } else {
      lb.icmpi(parity, 0);
      lb.jcc(ir::Cond::EQ, skip);  // always taken
    }
    ir::Builder sb(fn, skip);
    sb.emit({.op = ir::Op::IAddI, .dst = i, .src1 = i, .imm = 1});
    sb.icmpi(i, 500);
    sb.jcc(ir::Cond::LT, loop);
    int32_t done = fn.addBlock();
    ir::Builder db(fn, done);
    db.ret();
    return fn;
  };
  uint64_t predictable = cyclesOf(branchy(false), arch::p4e());
  uint64_t alternating = cyclesOf(branchy(true), arch::p4e());
  EXPECT_GT(alternating, predictable + 1000);
}

TEST(Timer, InL2IsFasterThanOutOfCache) {
  kernels::KernelSpec spec{kernels::BlasOp::Dot, ir::Scal::F64};
  DiagnosticEngine d;
  auto fn = hil::compileHil(spec.hilSource(), d);
  ASSERT_TRUE(fn.has_value());
  auto cold = timeKernel(arch::p4e(), *fn, spec, 1024, TimeContext::OutOfCache);
  auto warm = timeKernel(arch::p4e(), *fn, spec, 1024, TimeContext::InL2);
  EXPECT_LT(warm.cycles, cold.cycles);
  EXPECT_GT(warm.mflops(spec.flops(1024), 2.8),
            cold.mflops(spec.flops(1024), 2.8));
}

TEST(Timer, Deterministic) {
  kernels::KernelSpec spec{kernels::BlasOp::Asum, ir::Scal::F32};
  DiagnosticEngine d;
  auto fn = hil::compileHil(spec.hilSource(), d);
  ASSERT_TRUE(fn.has_value());
  auto a = timeKernel(arch::opteron(), *fn, spec, 4096, TimeContext::OutOfCache);
  auto b = timeKernel(arch::opteron(), *fn, spec, 4096, TimeContext::OutOfCache);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dynInsts, b.dynInsts);
}

TEST(Machines, PresetsAreSane) {
  for (const auto& m : arch::allMachines()) {
    EXPECT_GE(m.caches.size(), 2u);
    EXPECT_GT(m.ghz, 0.0);
    EXPECT_GT(m.busBytesPerCycle, 0.0);
    EXPECT_EQ(m.lineBytes(), 64);
    // P4E must be more bus-bound than Opteron: more cycles of miss latency,
    // fewer bytes per cycle.
  }
  EXPECT_GT(arch::p4e().memLatency, arch::opteron().memLatency);
  EXPECT_LT(arch::p4e().busBytesPerCycle, arch::opteron().busBytesPerCycle);
  EXPECT_FALSE(arch::p4e().hasPrefW);
  EXPECT_TRUE(arch::opteron().hasPrefW);
  EXPECT_EQ(arch::opteron().prefKinds().size(), 4u);
  EXPECT_EQ(arch::p4e().prefKinds().size(), 3u);
}

}  // namespace
}  // namespace ifko::sim
