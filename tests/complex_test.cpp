// Complex Level 1 BLAS (interleaved layout, stride-2 bumps).
#include <gtest/gtest.h>

#include "analysis/loopinfo.h"
#include "arch/machine.h"
#include "fko/compiler.h"
#include "hil/lower.h"
#include "kernels/complex_blas.h"
#include "search/linesearch.h"

namespace ifko {
namespace {

TEST(Complex, InterleavedKernelsAreNotVectorized) {
  // Complex SIMD needs shuffles FKO does not emit; the stride-2 bump keeps
  // the vectorizer honest.
  DiagnosticEngine d;
  auto fn = hil::compileHil(kernels::caxpySource(ir::Scal::F32), d);
  ASSERT_TRUE(fn.has_value()) << d.str();
  auto info = analysis::analyzeLoop(*fn);
  ASSERT_TRUE(info.found);
  EXPECT_FALSE(info.vectorizable);
}

TEST(Complex, CscalCorrectAcrossTransforms) {
  for (ir::Scal prec : {ir::Scal::F32, ir::Scal::F64}) {
    for (int ur : {1, 3, 8}) {
      fko::CompileOptions opts;
      opts.tuning.unroll = ur;
      opts.tuning.nonTemporalWrites = ur == 8;
      opts.tuning.prefetch["Y"] = {true, ir::PrefKind::NTA, 768};
      auto r = fko::compileKernel(kernels::cscalSource(prec), opts,
                                  arch::p4e());
      ASSERT_TRUE(r.ok) << r.error;
      for (int64_t n : {0, 1, 7, 100}) {
        auto outcome = kernels::testCscal(r.fn, n);
        ASSERT_TRUE(outcome.ok) << "ur=" << ur << " n=" << n << ": "
                                << outcome.message;
      }
    }
  }
}

TEST(Complex, CaxpyCorrectAcrossTransforms) {
  for (int ur : {1, 4}) {
    for (bool cisc : {false, true}) {
      fko::CompileOptions opts;
      opts.tuning.unroll = ur;
      opts.tuning.ciscIndexing = cisc;
      auto r = fko::compileKernel(kernels::caxpySource(ir::Scal::F64), opts,
                                  arch::opteron());
      ASSERT_TRUE(r.ok) << r.error;
      for (int64_t n : {0, 2, 63, 128}) {
        auto outcome = kernels::testCaxpy(r.fn, n);
        ASSERT_TRUE(outcome.ok) << "ur=" << ur << " cisc=" << cisc
                                << " n=" << n << ": " << outcome.message;
      }
    }
  }
}

TEST(Complex, TunesEndToEnd) {
  auto cfg = search::SearchConfig::smoke();
  auto r = search::tuneSource(kernels::caxpySource(ir::Scal::F32),
                              arch::p4e(), cfg);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_LE(r.bestCycles, r.defaultCycles);
  EXPECT_FALSE(r.analysis.vectorizable);
  // Stride 2 is visible in the analysis (and sizes the tuner's operands).
  for (const auto& a : r.analysis.arrays) EXPECT_EQ(a.strideElems, 2);
}

}  // namespace
}  // namespace ifko
