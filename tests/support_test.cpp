#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/env.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/table.h"

namespace ifko {
namespace {

TEST(Str, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Str, SplitOnSeparator) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Str, SplitEmptyStringYieldsOneEmptyPart) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(startsWith("prefetchnta", "pref"));
  EXPECT_FALSE(startsWith("pre", "prefetch"));
}

TEST(Str, ReplaceAllSubstitutesEveryOccurrence) {
  EXPECT_EQ(replaceAll("TYPE @T; x @T", "@T", "double"),
            "TYPE double; x double");
  EXPECT_EQ(replaceAll("abc", "", "x"), "abc");
}

TEST(Str, FmtFixed) {
  EXPECT_EQ(fmtFixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmtFixed(100.0, 0), "100");
}

TEST(Rng, Deterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformWithinRange) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BelowStaysBelow) {
  SplitMix64 rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine d;
  d.warning({1, 1}, "w");
  EXPECT_FALSE(d.hasErrors());
  d.error({2, 3}, "boom");
  EXPECT_TRUE(d.hasErrors());
  EXPECT_EQ(d.errorCount(), 1u);
  EXPECT_NE(d.str().find("error at 2:3: boom"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine d;
  d.error({}, "x");
  d.clear();
  EXPECT_FALSE(d.hasErrors());
  EXPECT_TRUE(d.diagnostics().empty());
}

TEST(Table, AlignsColumns) {
  TextTable t;
  t.setHeader({"name", "value"});
  t.addRow({"x", "1"});
  t.addRow({"longer", "22"});
  std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RuleBetweenRows) {
  TextTable t;
  t.addRow({"a"});
  t.addRule();
  t.addRow({"b"});
  std::string s = t.str();
  size_t a = s.find("a"), dash = s.find("-"), b = s.find("b");
  EXPECT_LT(a, dash);
  EXPECT_LT(dash, b);
}

TEST(Env, FallbackWhenUnset) {
  EXPECT_EQ(envInt("IFKO_SURELY_UNSET_VAR_12345", 42), 42);
}

TEST(Env, ParsesValue) {
  ::setenv("IFKO_TEST_ENV_VAR", "123", 1);
  EXPECT_EQ(envInt("IFKO_TEST_ENV_VAR", 0), 123);
  ::unsetenv("IFKO_TEST_ENV_VAR");
}

}  // namespace
}  // namespace ifko
