#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/env.h"
#include "support/hash.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/table.h"

namespace ifko {
namespace {

TEST(Str, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Str, SplitOnSeparator) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Str, SplitEmptyStringYieldsOneEmptyPart) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(startsWith("prefetchnta", "pref"));
  EXPECT_FALSE(startsWith("pre", "prefetch"));
}

TEST(Str, ReplaceAllSubstitutesEveryOccurrence) {
  EXPECT_EQ(replaceAll("TYPE @T; x @T", "@T", "double"),
            "TYPE double; x double");
  EXPECT_EQ(replaceAll("abc", "", "x"), "abc");
}

TEST(Str, FmtFixed) {
  EXPECT_EQ(fmtFixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmtFixed(100.0, 0), "100");
}

TEST(Rng, Deterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformWithinRange) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BelowStaysBelow) {
  SplitMix64 rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine d;
  d.warning({1, 1}, "w");
  EXPECT_FALSE(d.hasErrors());
  d.error({2, 3}, "boom");
  EXPECT_TRUE(d.hasErrors());
  EXPECT_EQ(d.errorCount(), 1u);
  EXPECT_NE(d.str().find("error at 2:3: boom"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine d;
  d.error({}, "x");
  d.clear();
  EXPECT_FALSE(d.hasErrors());
  EXPECT_TRUE(d.diagnostics().empty());
}

TEST(Table, AlignsColumns) {
  TextTable t;
  t.setHeader({"name", "value"});
  t.addRow({"x", "1"});
  t.addRow({"longer", "22"});
  std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RuleBetweenRows) {
  TextTable t;
  t.addRow({"a"});
  t.addRule();
  t.addRow({"b"});
  std::string s = t.str();
  size_t a = s.find("a"), dash = s.find("-"), b = s.find("b");
  EXPECT_LT(a, dash);
  EXPECT_LT(dash, b);
}

TEST(Env, FallbackWhenUnset) {
  EXPECT_EQ(envInt("IFKO_SURELY_UNSET_VAR_12345", 42), 42);
}

TEST(Env, ParsesValue) {
  ::setenv("IFKO_TEST_ENV_VAR", "123", 1);
  EXPECT_EQ(envInt("IFKO_TEST_ENV_VAR", 0), 123);
  ::unsetenv("IFKO_TEST_ENV_VAR");
}


TEST(Hash, Fnv1aIsStableAndCollisionFree) {
  // Known FNV-1a vectors; the cache key format depends on these staying put.
  EXPECT_EQ(fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a("a"), 12638187200555641996ull);
  EXPECT_NE(fnv1a("LOOP i = 0, N"), fnv1a("LOOP i = 0, M"));
}

TEST(Hash, HashHexIs16LowercaseDigits) {
  std::string h = hashHex("ddot kernel source");
  EXPECT_EQ(h.size(), 16u);
  for (char c : h)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << h;
  EXPECT_EQ(hashHex(""), "cbf29ce484222325");
}

TEST(Json, EscapeHandlesSpecials) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, WriterProducesFlatObject) {
  JsonWriter w;
  w.field("name", "ddot").field("cycles", int64_t{64912}).field("ok", true);
  EXPECT_EQ(w.str(),
            "{\"name\":\"ddot\",\"cycles\":64912,\"ok\":true}");
}

TEST(Json, ParseRoundTripsWriterOutput) {
  JsonWriter w;
  w.field("params", "sv=Y \"q\"").field("n", int64_t{4096}).field("hit", false);
  std::map<std::string, JsonValue> obj;
  std::string err;
  ASSERT_TRUE(parseJsonObject(w.str(), &obj, &err)) << err;
  EXPECT_EQ(obj.at("params").string, "sv=Y \"q\"");
  EXPECT_EQ(obj.at("n").asInt(), 4096);
  EXPECT_EQ(obj.at("hit").kind, JsonValue::Kind::Bool);
  EXPECT_FALSE(obj.at("hit").boolean);
}

TEST(Json, ParseRejectsMalformed) {
  std::map<std::string, JsonValue> obj;
  EXPECT_FALSE(parseJsonObject("not json", &obj));
  EXPECT_FALSE(parseJsonObject("{\"a\":1", &obj));
  EXPECT_FALSE(parseJsonObject("{\"a\":[1,2]}", &obj));
  EXPECT_FALSE(parseJsonObject("{\"a\":1} trailing", &obj));
  EXPECT_TRUE(parseJsonObject("{}", &obj));
}

TEST(Json, NestedObjectRoundTrip) {
  JsonWriter inner;
  inner.field("attr_issue", uint64_t{12}).field("repeat_converged", true);
  JsonWriter outer;
  outer.field("event", "candidate").field("counters", inner);
  EXPECT_EQ(outer.str(),
            "{\"event\":\"candidate\",\"counters\":"
            "{\"attr_issue\":12,\"repeat_converged\":true}}");

  std::map<std::string, JsonValue> obj;
  std::string err;
  ASSERT_TRUE(parseJsonObject(outer.str(), &obj, &err)) << err;
  const JsonValue& counters = obj.at("counters");
  ASSERT_EQ(counters.kind, JsonValue::Kind::Object);
  ASSERT_NE(counters.object, nullptr);
  EXPECT_EQ(counters.object->at("attr_issue").asUint(), 12u);
  EXPECT_TRUE(counters.object->at("repeat_converged").boolean);
}

TEST(Json, ParseRejectsDeeplyNestedObjects) {
  std::map<std::string, JsonValue> obj;
  // Depth 2 is fine (a counters object inside an event)...
  EXPECT_TRUE(parseJsonObject("{\"a\":{\"b\":{\"c\":1}}}", &obj));
  // ...but unbounded nesting is not: the format is line-oriented records,
  // not a document language.
  EXPECT_FALSE(parseJsonObject(
      "{\"a\":{\"b\":{\"c\":{\"d\":{\"e\":{\"f\":1}}}}}}", &obj));
}

TEST(Str, ParseInt64Strict) {
  int64_t v = -1;
  EXPECT_TRUE(parseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(parseInt64("80000", &v));
  EXPECT_EQ(v, 80000);
  EXPECT_TRUE(parseInt64("-42", &v));
  EXPECT_EQ(v, -42);

  // Rejections must not clobber the output.
  v = 7;
  EXPECT_FALSE(parseInt64("", &v));
  EXPECT_FALSE(parseInt64("12abc", &v));
  EXPECT_FALSE(parseInt64("abc", &v));
  EXPECT_FALSE(parseInt64("4 ", &v));
  EXPECT_FALSE(parseInt64(" 4", &v));
  EXPECT_FALSE(parseInt64("99999999999999999999999999", &v));  // ERANGE
  EXPECT_EQ(v, 7);
}

}  // namespace
}  // namespace ifko
