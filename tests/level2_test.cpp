// Nested loops + Level 2 BLAS: lowering, analysis of the inner tuned loop,
// full transform correctness, and tuning of gemv/ger.
#include <gtest/gtest.h>

#include "analysis/loopinfo.h"
#include "arch/machine.h"
#include "fko/compiler.h"
#include "hil/lower.h"
#include "ir/verifier.h"
#include "kernels/level2.h"

namespace ifko {
namespace {

TEST(Level2, GemvLowersWithInnerLoopMarked) {
  DiagnosticEngine d;
  auto fn = hil::compileHil(kernels::gemvSource(ir::Scal::F64), d);
  ASSERT_TRUE(fn.has_value()) << d.str();
  EXPECT_TRUE(ir::verify(*fn).empty());
  ASSERT_TRUE(fn->loop.valid);
  auto info = analysis::analyzeLoop(*fn);
  ASSERT_TRUE(info.found) << info.problem;
  EXPECT_TRUE(info.vectorizable) << info.whyNotVectorizable;
  EXPECT_EQ(info.accumulators.size(), 1u);  // acc
  // Arrays seen by the inner loop: A and X advance; Y does not.
  const auto* a = info.findArray("A");
  const auto* x = info.findArray("X");
  const auto* y = info.findArray("Y");
  ASSERT_TRUE(a && x && y);
  EXPECT_EQ(a->bumpBytes, 8);
  EXPECT_TRUE(a->prefetchable());
  EXPECT_FALSE(x->prefetchable());  // nopref mark-up
  EXPECT_EQ(y->bumpBytes, 0);
}

TEST(Level2, GerBroadcastsTheInvariantScalar) {
  DiagnosticEngine d;
  auto fn = hil::compileHil(kernels::gerSource(ir::Scal::F32), d);
  ASSERT_TRUE(fn.has_value()) << d.str();
  auto info = analysis::analyzeLoop(*fn);
  ASSERT_TRUE(info.found) << info.problem;
  EXPECT_TRUE(info.vectorizable) << info.whyNotVectorizable;
  // ax = alpha*x[r] is computed per row outside the inner loop.
  EXPECT_GE(info.invariantFpInputs.size(), 1u);
}

struct L2Case {
  bool sv;
  int ur;
  int ae;
  bool pf;
};

class GemvGrid : public testing::TestWithParam<L2Case> {};

TEST_P(GemvGrid, CorrectUnderTransforms) {
  auto c = GetParam();
  for (ir::Scal prec : {ir::Scal::F32, ir::Scal::F64}) {
    fko::CompileOptions opts;
    opts.tuning.simdVectorize = c.sv;
    opts.tuning.unroll = c.ur;
    opts.tuning.accumExpand = c.ae;
    if (c.pf) opts.tuning.prefetch["A"] = {true, ir::PrefKind::NTA, 512};
    auto r = fko::compileKernel(kernels::gemvSource(prec), opts, arch::p4e());
    ASSERT_TRUE(r.ok) << r.error;
    for (auto [m, n] : {std::pair<int64_t, int64_t>{0, 16},
                        {1, 1},
                        {3, 7},
                        {8, 64},
                        {5, 33}}) {
      auto outcome = kernels::testGemv(r.fn, m, n);
      ASSERT_TRUE(outcome.ok)
          << "m=" << m << " n=" << n << ": " << outcome.message;
    }
  }
}

TEST_P(GemvGrid, GerCorrectUnderTransforms) {
  auto c = GetParam();
  fko::CompileOptions opts;
  opts.tuning.simdVectorize = c.sv;
  opts.tuning.unroll = c.ur;
  opts.tuning.accumExpand = c.ae;
  opts.tuning.nonTemporalWrites = c.pf;  // exercise WNT on A's stores too
  auto r = fko::compileKernel(kernels::gerSource(ir::Scal::F64), opts,
                              arch::opteron());
  ASSERT_TRUE(r.ok) << r.error;
  for (auto [m, n] : {std::pair<int64_t, int64_t>{2, 5}, {7, 32}, {1, 100}}) {
    auto outcome = kernels::testGer(r.fn, m, n);
    ASSERT_TRUE(outcome.ok) << "m=" << m << " n=" << n << ": "
                            << outcome.message;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, GemvGrid,
                         testing::Values(L2Case{false, 1, 1, false},
                                         L2Case{true, 1, 1, false},
                                         L2Case{true, 4, 2, true},
                                         L2Case{false, 8, 1, true},
                                         L2Case{true, 16, 4, false}),
                         [](const auto& info) {
                           const L2Case& c = info.param;
                           return std::string(c.sv ? "sv" : "scalar") + "_ur" +
                                  std::to_string(c.ur) + "_ae" +
                                  std::to_string(c.ae) + (c.pf ? "_pf" : "");
                         });

TEST(Level2, TransformsSpeedUpGemv) {
  // The tuned inner loop pays off: SV+UR+AE+PF beats the plain lowering.
  auto prec = ir::Scal::F64;
  fko::CompileOptions plain, tuned;
  plain.tuning.simdVectorize = false;
  tuned.tuning.unroll = 4;
  tuned.tuning.accumExpand = 4;
  tuned.tuning.prefetch["A"] = {true, ir::PrefKind::NTA, 1024};
  auto a = fko::compileKernel(kernels::gemvSource(prec), plain, arch::p4e());
  auto b = fko::compileKernel(kernels::gemvSource(prec), tuned, arch::p4e());
  ASSERT_TRUE(a.ok && b.ok);
  auto ta = kernels::timeGemv(arch::p4e(), a.fn, 64, 512,
                              sim::TimeContext::InL2);
  auto tb = kernels::timeGemv(arch::p4e(), b.fn, 64, 512,
                              sim::TimeContext::InL2);
  EXPECT_LT(tb.cycles, ta.cycles);
}

}  // namespace
}  // namespace ifko
