// Tests for the two extension transforms the paper names as planned work:
// block fetch (Wall 2001) and CISC two-array indexing (Section 3.3), plus
// their opt-in search dimension.
#include <gtest/gtest.h>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "hil/lower.h"
#include "ir/printer.h"
#include "kernels/registry.h"
#include "kernels/tester.h"
#include "search/linesearch.h"
#include "sim/timer.h"

namespace ifko {
namespace {

using kernels::BlasOp;
using kernels::KernelSpec;

size_t countOp(const ir::Function& fn, ir::Op op) {
  size_t n = 0;
  for (const auto& bb : fn.blocks)
    for (const auto& in : bb.insts)
      if (in.op == op) ++n;
  return n;
}

ir::Function compileWith(const KernelSpec& spec, const opt::TuningParams& p,
                         const arch::MachineConfig& m) {
  fko::CompileOptions opts;
  opts.tuning = p;
  auto r = fko::compileKernel(spec.hilSource(), opts, m);
  EXPECT_TRUE(r.ok) << r.error;
  return std::move(r.fn);
}

// --- CISC indexing -----------------------------------------------------------

TEST(CiscIndexing, SharesOneIndexRegister) {
  KernelSpec spec{BlasOp::Copy, ir::Scal::F64};
  opt::TuningParams plain, cisc;
  cisc.ciscIndexing = true;
  // Compare instruction streams *before* regalloc/cleanup noise: count the
  // per-iteration integer updates in the final code.
  fko::CompileOptions po, co;
  po.tuning = plain;
  co.tuning = cisc;
  auto p = fko::compileKernel(spec.hilSource(), po, arch::opteron());
  auto c = fko::compileKernel(spec.hilSource(), co, arch::opteron());
  ASSERT_TRUE(p.ok && c.ok);
  // The CISC version indexes both arrays through one register: it executes
  // one fewer integer add per main-loop iteration.
  auto data = kernels::makeKernelData(spec, 1024);
  sim::Interp pi(p.fn, *data.mem);
  auto pr = pi.run(data.args(p.fn));
  auto data2 = kernels::makeKernelData(spec, 1024);
  sim::Interp ci(c.fn, *data2.mem);
  auto cr = ci.run(data2.args(c.fn));
  EXPECT_LT(cr.dynInsts, pr.dynInsts);
}

TEST(CiscIndexing, PreservesSemanticsAcrossKernels) {
  for (const auto& spec : kernels::allKernels()) {
    opt::TuningParams p;
    p.ciscIndexing = true;
    p.unroll = 4;
    auto fn = compileWith(spec, p, arch::p4e());
    for (int64_t n : {0, 1, 7, 63, 200}) {
      auto outcome = kernels::testKernel(spec, fn, n);
      ASSERT_TRUE(outcome.ok) << spec.name() << " n=" << n << ": "
                              << outcome.message;
    }
  }
}

TEST(CiscIndexing, SkipsSingleArrayKernels) {
  // asum has one array: nothing to share, the transform bails out cleanly.
  KernelSpec spec{BlasOp::Asum, ir::Scal::F32};
  opt::TuningParams p;
  p.ciscIndexing = true;
  auto fn = compileWith(spec, p, arch::p4e());
  EXPECT_TRUE(kernels::testKernel(spec, fn, 100).ok);
}

TEST(CiscIndexing, IsFasterForCopyOnOpteron) {
  // The paper's Opteron scopy observation: the extra pointer increment per
  // iteration costs measurable time out of cache.
  KernelSpec spec{BlasOp::Copy, ir::Scal::F32};
  opt::TuningParams plain;
  plain.nonTemporalWrites = true;
  opt::TuningParams cisc = plain;
  cisc.ciscIndexing = true;
  auto a = compileWith(spec, plain, arch::opteron());
  auto b = compileWith(spec, cisc, arch::opteron());
  auto ta = sim::timeKernel(arch::opteron(), a, spec, 20000,
                            sim::TimeContext::OutOfCache);
  auto tb = sim::timeKernel(arch::opteron(), b, spec, 20000,
                            sim::TimeContext::OutOfCache);
  EXPECT_LE(tb.cycles, ta.cycles);
}

// --- block fetch ---------------------------------------------------------------

TEST(BlockFetch, InsertsOneTouchPerLine) {
  KernelSpec spec{BlasOp::Dot, ir::Scal::F64};
  opt::TuningParams p;
  p.blockFetch = true;
  p.unroll = 8;  // 16 doubles = 2 lines per iteration, per array
  auto fn = compileWith(spec, p, arch::p4e());
  EXPECT_EQ(countOp(fn, ir::Op::Touch), 4u);  // 2 arrays x 2 lines
}

TEST(BlockFetch, PreservesSemantics) {
  for (auto op : {BlasOp::Copy, BlasOp::Dot, BlasOp::Swap}) {
    KernelSpec spec{op, ir::Scal::F64};
    opt::TuningParams p;
    p.blockFetch = true;
    p.unroll = 16;
    p.nonTemporalWrites = true;
    auto fn = compileWith(spec, p, arch::p4e());
    for (int64_t n : {0, 5, 64, 200}) {
      auto outcome = kernels::testKernel(spec, fn, n);
      ASSERT_TRUE(outcome.ok) << spec.name() << " n=" << n << ": "
                              << outcome.message;
    }
  }
}

TEST(BlockFetch, BeatsPlainWntCopyOutOfCacheOnP4E) {
  // The dcopy* story, now produced by the compiler instead of hand-written
  // assembly: grouped touches amortize the bus read-after-write turnaround.
  KernelSpec spec{BlasOp::Copy, ir::Scal::F64};
  opt::TuningParams wnt;
  wnt.nonTemporalWrites = true;
  wnt.unroll = 32;  // 64 doubles = 8 lines per iteration
  opt::TuningParams bf = wnt;
  bf.blockFetch = true;
  auto a = compileWith(spec, wnt, arch::p4e());
  auto b = compileWith(spec, bf, arch::p4e());
  auto ta =
      sim::timeKernel(arch::p4e(), a, spec, 20000, sim::TimeContext::OutOfCache);
  auto tb =
      sim::timeKernel(arch::p4e(), b, spec, 20000, sim::TimeContext::OutOfCache);
  EXPECT_LT(tb.cycles, ta.cycles);
}

// --- opt-in search dimension ------------------------------------------------

TEST(SearchExtensions, LedgerGainsBfAndCiscDimensions) {
  KernelSpec spec{BlasOp::Copy, ir::Scal::F64};
  auto cfg = search::SearchConfig::smoke();
  cfg.n = 8192;
  cfg.searchExtensions = true;
  auto r = search::tuneKernel(spec, arch::p4e(), cfg);
  ASSERT_TRUE(r.ok) << r.error;
  bool hasBf = false, hasCisc = false;
  for (const auto& d : r.ledger) {
    hasBf |= d.name == "BF";
    hasCisc |= d.name == "CISC";
  }
  EXPECT_TRUE(hasBf);
  EXPECT_TRUE(hasCisc);

  search::SearchConfig plain = cfg;
  plain.searchExtensions = false;
  auto base = search::tuneKernel(spec, arch::p4e(), plain);
  ASSERT_TRUE(base.ok);
  EXPECT_LE(r.bestCycles, base.bestCycles);
}

}  // namespace
}  // namespace ifko
