// Repeatable transforms, register allocation, and the full FKO pipeline.
#include <gtest/gtest.h>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "hil/lower.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "kernels/registry.h"
#include "kernels/tester.h"
#include "opt/repeatable.h"
#include "support/rng.h"

namespace ifko {
namespace {

using kernels::BlasOp;
using kernels::KernelSpec;

size_t countOp(const ir::Function& fn, ir::Op op) {
  size_t n = 0;
  for (const auto& bb : fn.blocks)
    for (const auto& in : bb.insts)
      if (in.op == op) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// Repeatable transform units.

TEST(Repeatable, CopyPropagationForwardsSources) {
  ir::Function fn;
  fn.name = "cp";
  ir::Builder b(fn, fn.addBlock());
  ir::Reg a = b.imovi(5);
  ir::Reg c = b.imov(a);       // c = a
  ir::Reg d = b.iaddi(c, 1);   // should become d = a + 1
  b.emit({.op = ir::Op::ICmpI, .src1 = d, .imm = 0});
  b.ret();
  EXPECT_TRUE(opt::copyPropagation(fn));
  EXPECT_EQ(fn.blocks[0].insts[2].src1, a);
}

TEST(Repeatable, DceRemovesDeadPureInstructions) {
  ir::Function fn;
  fn.name = "dce";
  ir::Builder b(fn, fn.addBlock());
  (void)b.imovi(1);  // dead
  ir::Reg live = b.imovi(2);
  b.emit({.op = ir::Op::ICmpI, .src1 = live, .imm = 0});
  b.ret();
  EXPECT_TRUE(opt::deadCodeElim(fn));
  EXPECT_EQ(fn.blocks[0].insts.size(), 3u);
}

TEST(Repeatable, DceRemovesDeadInductionCycle) {
  // i = 0; loop { i = i + 1 } with i otherwise unused.
  ir::Function fn;
  fn.name = "ind";
  int32_t b0 = fn.addBlock();
  int32_t b1 = fn.addBlock();
  int32_t b2 = fn.addBlock();
  ir::Reg n = fn.newIntReg();
  fn.params.push_back({.name = "N", .kind = ir::ParamKind::Int, .reg = n});
  ir::Builder hb(fn, b0);
  ir::Reg i = hb.imovi(0);
  ir::Reg cnt = hb.imov(n);
  hb.jmp(b1);
  ir::Builder lb(fn, b1);
  lb.emit({.op = ir::Op::IAddI, .dst = i, .src1 = i, .imm = 1});
  lb.emit({.op = ir::Op::IAddCC, .dst = cnt, .src1 = cnt, .imm = -1});
  lb.jcc(ir::Cond::GT, b1);
  ir::Builder eb(fn, b2);
  eb.ret();
  opt::runRepeatable(fn);
  EXPECT_EQ(countOp(fn, ir::Op::IAddI), 0u);  // dead induction removed
  EXPECT_EQ(countOp(fn, ir::Op::IAddCC), 1u);
}

TEST(Repeatable, PeepholeFoldsLoadIntoAdd) {
  ir::Function fn;
  fn.name = "pe";
  ir::Reg p = fn.newIntReg();
  fn.params.push_back({.name = "X", .kind = ir::ParamKind::PtrF64, .reg = p});
  ir::Builder b(fn, fn.addBlock());
  ir::Reg acc = b.fldi(ir::Scal::F64, 0.0);
  ir::Reg t = b.fld(ir::Scal::F64, ir::mem(p, 8));
  b.emit({.op = ir::Op::FAdd, .type = ir::Scal::F64, .dst = acc, .src1 = acc,
          .src2 = t});
  b.retVal(acc);
  fn.retType = ir::RetType::F64;
  EXPECT_TRUE(opt::peepholeLoadOp(fn));
  EXPECT_EQ(countOp(fn, ir::Op::FLd), 0u);
  EXPECT_EQ(countOp(fn, ir::Op::FAddM), 1u);
  EXPECT_TRUE(ir::verify(fn).empty());
}

TEST(Repeatable, PeepholeRespectsInterveningStores) {
  ir::Function fn;
  fn.name = "pe2";
  ir::Reg p = fn.newIntReg();
  fn.params.push_back({.name = "X", .kind = ir::ParamKind::PtrF64, .reg = p});
  ir::Builder b(fn, fn.addBlock());
  ir::Reg acc = b.fldi(ir::Scal::F64, 0.0);
  ir::Reg t = b.fld(ir::Scal::F64, ir::mem(p, 8));
  b.fst(ir::Scal::F64, ir::mem(p, 8), acc);  // may alias: blocks the fold
  b.emit({.op = ir::Op::FAdd, .type = ir::Scal::F64, .dst = acc, .src1 = acc,
          .src2 = t});
  b.retVal(acc);
  fn.retType = ir::RetType::F64;
  EXPECT_FALSE(opt::peepholeLoadOp(fn));
}

TEST(Repeatable, BranchChainingSkipsEmptyBlocks) {
  ir::Function fn;
  fn.name = "bc";
  int32_t b0 = fn.addBlock();
  int32_t b1 = fn.addBlock();  // empty, falls through
  int32_t b2 = fn.addBlock();
  ir::Builder b(fn, b0);
  b.jmp(b1);
  ir::Builder b2b(fn, b2);
  b2b.ret();
  EXPECT_TRUE(opt::branchChaining(fn));
  EXPECT_EQ(fn.blocks[0].insts.back().label, b2);
}

TEST(Repeatable, UselessJumpToNextBlockRemoved) {
  ir::Function fn;
  fn.name = "uj";
  int32_t b0 = fn.addBlock();
  int32_t b1 = fn.addBlock();
  ir::Builder b(fn, b0);
  b.jmp(b1);
  ir::Builder b1b(fn, b1);
  b1b.ret();
  EXPECT_TRUE(opt::uselessJumpElim(fn));
  EXPECT_TRUE(fn.blocks[0].insts.empty());
}

TEST(Repeatable, MergesSinglePredFallthrough) {
  ir::Function fn;
  fn.name = "mg";
  int32_t b0 = fn.addBlock();
  int32_t b1 = fn.addBlock();
  ir::Builder b(fn, b0);
  (void)b.imovi(1);
  ir::Builder b1b(fn, b1);
  b1b.ret();
  EXPECT_TRUE(opt::mergeBlocks(fn));
  EXPECT_EQ(fn.blocks.size(), 1u);
  EXPECT_EQ(fn.blocks[0].insts.size(), 2u);
}

TEST(Repeatable, RemovesUnreachableBlocks) {
  ir::Function fn;
  fn.name = "ur";
  int32_t b0 = fn.addBlock();
  fn.addBlock();  // unreachable
  ir::Builder b(fn, b0);
  b.ret();
  EXPECT_TRUE(opt::removeUnreachable(fn));
  EXPECT_EQ(fn.blocks.size(), 1u);
}

// ---------------------------------------------------------------------------
// Register allocation.

TEST(RegAlloc, SimpleFunctionNeedsNoSpills) {
  kernels::KernelSpec spec{BlasOp::Dot, ir::Scal::F64};
  DiagnosticEngine d;
  auto fn = hil::compileHil(spec.hilSource(), d);
  ASSERT_TRUE(fn.has_value());
  auto ra = opt::allocateRegisters(*fn);
  ASSERT_TRUE(ra.ok) << ra.error;
  EXPECT_EQ(ra.spillSlots, 0);
  EXPECT_TRUE(fn->regAllocated);
  EXPECT_TRUE(ir::verify(*fn).empty());
  // Still computes the right answer.
  auto outcome = kernels::testKernel(spec, *fn, 100);
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

TEST(RegAlloc, HighPressureSpillsAndStaysCorrect) {
  // Sum 20 simultaneously-live FP values: must spill on 8 xmm registers.
  ir::Function fn;
  fn.name = "pressure";
  ir::Builder b(fn, fn.addBlock());
  std::vector<ir::Reg> vals;
  for (int i = 0; i < 20; ++i) vals.push_back(b.fldi(ir::Scal::F64, i + 1));
  ir::Reg acc = vals[0];
  for (int i = 1; i < 20; ++i) acc = b.fadd(ir::Scal::F64, acc, vals[i]);
  b.retVal(acc);
  fn.retType = ir::RetType::F64;

  for (auto kind : {opt::RegAllocKind::LinearScan, opt::RegAllocKind::Basic}) {
    ir::Function copy = fn;
    auto ra = opt::allocateRegisters(copy, kind);
    ASSERT_TRUE(ra.ok) << ra.error;
    EXPECT_GT(ra.spillSlots, 0);
    EXPECT_TRUE(ir::verify(copy).empty());
    sim::Memory mem(1 << 16);
    sim::Interp interp(copy, mem);
    auto r = interp.run({});
    ASSERT_TRUE(r.fpResult.has_value());
    EXPECT_DOUBLE_EQ(*r.fpResult, 210.0);  // 1+2+...+20
  }
}

TEST(RegAlloc, AllKernelsAllocateWithoutSpills) {
  // The default-parameter kernels fit comfortably in 8+8 registers.
  for (const auto& spec : kernels::allKernels()) {
    DiagnosticEngine d;
    auto fn = hil::compileHil(spec.hilSource(), d);
    ASSERT_TRUE(fn.has_value());
    auto ra = opt::allocateRegisters(*fn);
    ASSERT_TRUE(ra.ok) << spec.name() << ": " << ra.error;
    EXPECT_EQ(ra.spillSlots, 0) << spec.name();
  }
}

// ---------------------------------------------------------------------------
// Full pipeline.

TEST(Fko, AnalysisReportMatchesPaper) {
  kernels::KernelSpec dot{BlasOp::Dot, ir::Scal::F32};
  auto rep = fko::analyzeKernel(dot.hilSource(), arch::p4e());
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.cacheLevels, 2);
  EXPECT_EQ(rep.lineBytes[0], 64);
  EXPECT_TRUE(rep.vectorizable);
  EXPECT_EQ(rep.vecLanes, 4);
  EXPECT_EQ(rep.numAccumulators, 1);
  ASSERT_EQ(rep.arrays.size(), 2u);
  EXPECT_TRUE(rep.arrays[0].prefetchable);
  EXPECT_EQ(rep.prefKinds.size(), 3u);  // no prefetchw on P4E

  kernels::KernelSpec iamax{BlasOp::Iamax, ir::Scal::F64};
  auto rep2 = fko::analyzeKernel(iamax.hilSource(), arch::opteron());
  ASSERT_TRUE(rep2.ok);
  EXPECT_FALSE(rep2.vectorizable);
  EXPECT_EQ(rep2.prefKinds.size(), 4u);
}

TEST(Fko, CompileRejectsBadSource) {
  fko::CompileOptions opts;
  auto r = fko::compileKernel("ROUTINE broken(", opts, arch::p4e());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("front end"), std::string::npos);
}

class FullPipeline
    : public testing::TestWithParam<std::tuple<KernelSpec, int>> {};

opt::TuningParams pipelineParams(int idx) {
  opt::TuningParams p;
  switch (idx) {
    case 0: break;  // FKO-ish defaults, no prefetch
    case 1:
      p.unroll = 4;
      p.accumExpand = 2;
      p.prefetch["X"] = {true, ir::PrefKind::NTA, 1024};
      break;
    case 2:
      p.simdVectorize = false;
      p.unroll = 8;
      p.nonTemporalWrites = true;
      p.prefetch["X"] = {true, ir::PrefKind::T0, 512};
      p.prefetch["Y"] = {true, ir::PrefKind::NTA, 256};
      break;
    case 3:
      p.unroll = 16;  // high register pressure
      p.accumExpand = 8;
      p.optimizeLoopControl = false;
      break;
    default: break;
  }
  return p;
}

TEST_P(FullPipeline, CompiledKernelIsCorrect) {
  auto [spec, idx] = GetParam();
  fko::CompileOptions opts;
  opts.tuning = pipelineParams(idx);
  auto r = fko::compileKernel(spec.hilSource(), opts, arch::opteron());
  ASSERT_TRUE(r.ok) << spec.name() << ": " << r.error;
  EXPECT_TRUE(r.fn.regAllocated);
  for (int64_t n : {0, 1, 7, 17, 64, 100, 250}) {
    auto outcome = kernels::testKernel(spec, r.fn, n);
    ASSERT_TRUE(outcome.ok)
        << spec.name() << " n=" << n << " idx=" << idx << ": "
        << outcome.message;
  }
}

std::string pipeName(
    const testing::TestParamInfo<std::tuple<KernelSpec, int>>& info) {
  return std::get<0>(info.param).name() + "_p" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, FullPipeline,
    testing::Combine(testing::ValuesIn(kernels::allKernels()),
                     testing::Range(0, 4)),
    pipeName);

TEST(FullPipelineFuzz, RandomParamsThroughWholePipeline) {
  SplitMix64 rng(777);
  const auto& specs = kernels::allKernels();
  for (int iter = 0; iter < 40; ++iter) {
    const auto& spec = specs[rng.below(specs.size())];
    fko::CompileOptions opts;
    opts.tuning.simdVectorize = rng.below(2) == 0;
    opts.tuning.unroll = static_cast<int>(rng.below(16)) + 1;
    opts.tuning.accumExpand = static_cast<int>(rng.below(6)) + 1;
    opts.tuning.nonTemporalWrites = rng.below(2) == 0;
    opts.tuning.optimizeLoopControl = rng.below(2) == 0;
    opts.regalloc = rng.below(2) == 0 ? opt::RegAllocKind::LinearScan
                                      : opt::RegAllocKind::Basic;
    if (rng.below(2) == 0)
      opts.tuning.prefetch["X"] = {true,
                                   static_cast<ir::PrefKind>(rng.below(4)),
                                   static_cast<int>(rng.below(40)) * 64};
    auto r = fko::compileKernel(spec.hilSource(), opts, arch::p4e());
    ASSERT_TRUE(r.ok) << spec.name() << ": " << r.error;
    int64_t n = static_cast<int64_t>(rng.below(400));
    auto outcome = kernels::testKernel(spec, r.fn, n, rng.next());
    ASSERT_TRUE(outcome.ok) << spec.name() << " n=" << n << " "
                            << opts.tuning.str() << ": " << outcome.message;
  }
}

}  // namespace
}  // namespace ifko
