// The generality layer: strided kernels, the rot extension kernel, the
// generic operand harness, differential testing, and source-level tuning.
#include <gtest/gtest.h>

#include "analysis/loopinfo.h"
#include "arch/machine.h"
#include "fko/compiler.h"
#include "fko/harness.h"
#include "hil/lower.h"
#include "kernels/registry.h"
#include "kernels/tester.h"
#include "search/linesearch.h"

namespace ifko {
namespace {

using kernels::BlasOp;
using kernels::KernelSpec;

// --- strided access ----------------------------------------------------------

constexpr const char* kStridedScal = R"(
ROUTINE sscal2;
PARAMS :: Y = VEC(inout), alpha = SCALAR, N = INT;
TYPE double;
SCALARS :: y;
LOOP i = 0, N
LOOP_BODY
  y = Y[0];
  y *= alpha;
  Y[0] = y;
  Y += 2;
LOOP_END
END
)";

TEST(Strided, NotVectorizable) {
  DiagnosticEngine d;
  auto fn = hil::compileHil(kStridedScal, d);
  ASSERT_TRUE(fn.has_value()) << d.str();
  auto info = analysis::analyzeLoop(*fn);
  ASSERT_TRUE(info.found);
  EXPECT_FALSE(info.vectorizable);
  EXPECT_NE(info.whyNotVectorizable.find("unit stride"), std::string::npos);
  EXPECT_EQ(info.arrays[0].bumpBytes, 16);
}

TEST(Strided, UnrolledStridedKernelIsCorrect) {
  // N iterations touch elements 0, 2, 4, ... — the harness must allocate
  // 2N elements.  Verify via the differential tester with every unroll.
  for (int ur : {1, 3, 4, 8}) {
    fko::CompileOptions opts;
    opts.tuning.unroll = ur;
    opts.tuning.prefetch["Y"] = {true, ir::PrefKind::NTA, 256};
    auto r = fko::compileKernel(kStridedScal, opts, arch::p4e());
    ASSERT_TRUE(r.ok) << r.error;
    // n=100 iterations touch up to element 199; the generic harness sizes
    // arrays by n, so test with the candidate against the plain lowering
    // at a size where 2*n fits: use n=100 with arrays of 200 … the
    // differential harness allocates n elements, so halve n.
    auto diff = fko::testAgainstUnoptimized(kStridedScal, r.fn, 50);
    EXPECT_TRUE(diff.ok) << "ur=" << ur << ": " << diff.message;
  }
}

// --- rot (extended kernel) ----------------------------------------------------

TEST(Rot, InExtendedRegistryOnly) {
  for (const auto& spec : kernels::allKernels())
    EXPECT_NE(spec.op, BlasOp::Rot);
  bool found = false;
  for (const auto& spec : kernels::extendedKernels())
    if (spec.op == BlasOp::Rot) found = true;
  EXPECT_TRUE(found);
  KernelSpec rot{BlasOp::Rot, ir::Scal::F64};
  EXPECT_EQ(rot.name(), "drot");
  EXPECT_DOUBLE_EQ(rot.flops(10), 60.0);
}

TEST(Rot, AnalyzesAsVectorizableWithoutAccumulators) {
  KernelSpec rot{BlasOp::Rot, ir::Scal::F32};
  auto rep = fko::analyzeKernel(rot.hilSource(), arch::p4e());
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(rep.vectorizable) << rep.whyNotVectorizable;
  EXPECT_EQ(rep.numAccumulators, 0);
  EXPECT_EQ(rep.arrays.size(), 2u);
}

TEST(Rot, CorrectAcrossTransformGrid) {
  for (ir::Scal prec : {ir::Scal::F32, ir::Scal::F64}) {
    KernelSpec spec{BlasOp::Rot, prec};
    for (int ur : {1, 4, 8}) {
      for (bool sv : {false, true}) {
        fko::CompileOptions opts;
        opts.tuning.simdVectorize = sv;
        opts.tuning.unroll = ur;
        opts.tuning.nonTemporalWrites = ur == 8;
        auto r = fko::compileKernel(spec.hilSource(), opts, arch::opteron());
        ASSERT_TRUE(r.ok) << spec.name() << ": " << r.error;
        for (int64_t n : {0, 1, 7, 100}) {
          auto outcome = kernels::testKernel(spec, r.fn, n);
          ASSERT_TRUE(outcome.ok) << spec.name() << " ur=" << ur
                                  << " sv=" << sv << " n=" << n << ": "
                                  << outcome.message;
        }
      }
    }
  }
}

TEST(Rot, TunesEndToEnd) {
  KernelSpec spec{BlasOp::Rot, ir::Scal::F64};
  auto cfg = search::SearchConfig::smoke();
  auto r = search::tuneKernel(spec, arch::p4e(), cfg);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_LE(r.bestCycles, r.defaultCycles);
}

// --- generic harness -----------------------------------------------------------

TEST(GenericHarness, BuildsArgsForAnySignature) {
  KernelSpec rot{BlasOp::Rot, ir::Scal::F64};
  DiagnosticEngine d;
  auto fn = hil::compileHil(rot.hilSource(), d);
  ASSERT_TRUE(fn.has_value());
  auto data = fko::makeGenericData(*fn, 64);
  ASSERT_EQ(data.args.size(), 5u);  // X, Y, c, s, N
  ASSERT_EQ(data.arrays.size(), 2u);
  EXPECT_TRUE(data.arrays[0].written);
  // Distinct scalar values for c and s.
  EXPECT_NE(std::get<double>(data.args[2]), std::get<double>(data.args[3]));
  EXPECT_EQ(std::get<int64_t>(data.args[4]), 64);
}

TEST(GenericHarness, DataIsReproducible) {
  KernelSpec dot{BlasOp::Dot, ir::Scal::F32};
  DiagnosticEngine d;
  auto fn = hil::compileHil(dot.hilSource(), d);
  ASSERT_TRUE(fn.has_value());
  auto a = fko::makeGenericData(*fn, 32, 7);
  auto b = fko::makeGenericData(*fn, 32, 7);
  for (size_t i = 0; i < 32; ++i)
    EXPECT_EQ(a.mem->read<float>(a.arrays[0].addr + i * 4),
              b.mem->read<float>(b.arrays[0].addr + i * 4));
}

TEST(DiffTester, AcceptsEquivalentOptimizedKernels) {
  for (const auto& spec : kernels::extendedKernels()) {
    fko::CompileOptions opts;
    opts.tuning.unroll = 4;
    opts.tuning.accumExpand = 2;
    auto r = fko::compileKernel(spec.hilSource(), opts, arch::p4e());
    ASSERT_TRUE(r.ok) << spec.name();
    auto diff = fko::testAgainstUnoptimized(spec.hilSource(), r.fn, 100);
    EXPECT_TRUE(diff.ok) << spec.name() << ": " << diff.message;
  }
}

TEST(DiffTester, CatchesABrokenKernel) {
  // Miscompile on purpose: compile scal but run it as if it were copy's
  // source — outputs differ, the differential tester must notice.
  KernelSpec scal{BlasOp::Scal, ir::Scal::F64};
  KernelSpec copy{BlasOp::Copy, ir::Scal::F64};
  fko::CompileOptions opts;
  auto r = fko::compileKernel(copy.hilSource(), opts, arch::p4e());
  ASSERT_TRUE(r.ok);
  auto diff = fko::testAgainstUnoptimized(scal.hilSource(), r.fn, 64);
  EXPECT_FALSE(diff.ok);
}

TEST(GenericTimer, MatchesKernelTimerBehaviour) {
  KernelSpec spec{BlasOp::Asum, ir::Scal::F64};
  fko::CompileOptions opts;
  auto r = fko::compileKernel(spec.hilSource(), opts, arch::opteron());
  ASSERT_TRUE(r.ok);
  auto cold = fko::timeCompiled(arch::opteron(), r.fn, 2048,
                                sim::TimeContext::OutOfCache);
  auto warm =
      fko::timeCompiled(arch::opteron(), r.fn, 2048, sim::TimeContext::InL2);
  EXPECT_LT(warm.cycles, cold.cycles);
  EXPECT_GT(cold.dynInsts, 0u);
}

// --- source-level tuning ---------------------------------------------------------

TEST(TuneSource, WorksWithoutAReferenceImplementation) {
  KernelSpec spec{BlasOp::Dot, ir::Scal::F64};
  auto cfg = search::SearchConfig::smoke();
  auto bySpec = search::tuneKernel(spec, arch::p4e(), cfg);
  auto bySource = search::tuneSource(spec.hilSource(), arch::p4e(), cfg);
  ASSERT_TRUE(bySpec.ok && bySource.ok) << bySource.error;
  // The generic path times with its own operand layout, so cycle counts
  // (and hence the chosen point) may differ slightly — but the search must
  // work, improve on the defaults, and see the same analysis.
  EXPECT_LE(bySource.bestCycles, bySource.defaultCycles);
  EXPECT_EQ(bySource.analysis.vectorizable, bySpec.analysis.vectorizable);
  EXPECT_EQ(bySource.analysis.numAccumulators,
            bySpec.analysis.numAccumulators);
  // And both land in the same ballpark.
  double ratio = static_cast<double>(bySource.bestCycles) /
                 static_cast<double>(bySpec.bestCycles);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(TuneSource, TunesANonBlasKernel) {
  constexpr const char* kSumSq = R"(
ROUTINE sumsq;
PARAMS :: X = VEC(in), N = INT;
TYPE double;
SCALARS :: x, acc;
acc = 0.0;
LOOP i = 0, N
LOOP_BODY
  x = X[0];
  acc += x * x;
  X += 1;
LOOP_END
RETURN acc;
END
)";
  auto cfg = search::SearchConfig::smoke();
  auto r = search::tuneSource(kSumSq, arch::opteron(), cfg);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.analysis.vectorizable);
  EXPECT_EQ(r.analysis.numAccumulators, 1);
  EXPECT_LE(r.bestCycles, r.defaultCycles);
}

}  // namespace
}  // namespace ifko
