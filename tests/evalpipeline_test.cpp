// The evaluation fast path's contract: every shortcut the pipeline takes —
// pre-decoded execution, prefix compile patching, operand-template cloning,
// truncated-prefix screening runs — is bit-identical to the slow path it
// replaces, and a full tuning search picks the same winners with every
// combination of the switches.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "fko/harness.h"
#include "ir/printer.h"
#include "kernels/registry.h"
#include "kernels/tester.h"
#include "opt/params.h"
#include "search/evalpipeline.h"
#include "search/linesearch.h"
#include "sim/decode.h"
#include "sim/timer.h"

namespace ifko {
namespace {

search::SearchConfig testConfig(bool predecode, bool screen,
                                sim::TimeContext ctx) {
  search::SearchConfig cfg = search::SearchConfig::smoke();
  cfg.n = 4096;
  cfg.context = ctx;
  cfg.predecode = predecode;
  cfg.reusePrefixCompiles = predecode;
  cfg.reuseKernelData = predecode;
  // Identity-safe screening: a generous margin and a screen window large
  // enough to rank faithfully at this n.  2 * screenN < n must hold.
  cfg.screenN = screen ? 1024 : 0;
  cfg.screenMargin = 1.25;
  return cfg;
}

/// Winner invariance, the headline contract: all 14 registry kernels, both
/// timing contexts, pre-decode on/off x screen-then-confirm on/off — the
/// tuned parameters and their full-size cycle counts never change.  (The
/// fast path and the screening policy only change how long the answer
/// takes, never the answer.)
TEST(EvalPipelineInvariance, WinnersIdenticalAcrossAllModes) {
  const auto machine = arch::p4e();
  for (sim::TimeContext ctx :
       {sim::TimeContext::OutOfCache, sim::TimeContext::InL2}) {
    for (const auto& spec : kernels::allKernels()) {
      search::TuneResult base;
      for (bool predecode : {false, true}) {
        for (bool screen : {false, true}) {
          search::SearchConfig cfg = testConfig(predecode, screen, ctx);
          search::TuneResult r = search::tuneKernel(spec, machine, cfg);
          ASSERT_TRUE(r.ok) << spec.name();
          if (!base.ok) {
            base = r;
            continue;
          }
          const std::string label = spec.name() + " ctx=" +
                                    std::string(sim::contextName(ctx)) +
                                    " predecode=" + (predecode ? "1" : "0") +
                                    " screen=" + (screen ? "1" : "0");
          EXPECT_EQ(opt::formatTuningSpec(r.best),
                    opt::formatTuningSpec(base.best))
              << label;
          EXPECT_EQ(r.bestCycles, base.bestCycles) << label;
          EXPECT_EQ(r.defaultCycles, base.defaultCycles) << label;
        }
      }
    }
  }
}

/// The decoded executor produces the same cycles, instruction counts,
/// memory stats, and per-cause attribution as interpreting the
/// ir::Function — the contract sim/decode.h states.
TEST(EvalPipelineDecode, DecodedRunMatchesInterpreter) {
  const auto machine = arch::p4e();
  for (const auto& spec : kernels::allKernels()) {
    fko::CompileOptions opts;
    opts.tuning.unroll = 4;
    auto compiled = fko::compileKernel(spec.hilSource(), opts, machine);
    ASSERT_TRUE(compiled.ok) << spec.name();
    sim::DecodedFunction dfn = sim::decodeFunction(compiled.fn, machine);
    for (sim::TimeContext ctx :
         {sim::TimeContext::OutOfCache, sim::TimeContext::InL2}) {
      auto slow = sim::timeKernel(machine, compiled.fn, spec, 2048, ctx);
      auto fast = sim::timeKernel(machine, dfn, spec, 2048, ctx);
      EXPECT_EQ(slow.cycles, fast.cycles) << spec.name();
      EXPECT_EQ(slow.dynInsts, fast.dynInsts) << spec.name();
      EXPECT_EQ(slow.mem, fast.mem) << spec.name();
      EXPECT_EQ(slow.attr, fast.attr) << spec.name();
    }
  }
}

/// Prefix compile reuse: a candidate derived by patching the Pref
/// displacements of a compiled sibling is byte-identical (printed IR) to
/// compiling it from scratch.
TEST(EvalPipelineCompile, PrefixPatchedCandidateMatchesFreshCompile) {
  const auto machine = arch::p4e();
  const auto& spec = kernels::allKernels().front();  // sswap: two arrays
  search::SearchConfig cfg = search::SearchConfig::smoke();
  cfg.n = 4096;
  search::EvalPipeline pipeline(spec.hilSource(), &spec, machine, cfg);

  opt::TuningParams a;
  a.unroll = 4;
  a.prefetch["X"] = {true, ir::PrefKind::NTA, 256};
  auto first = pipeline.compile(a);
  ASSERT_TRUE(first->compiled.ok);

  opt::TuningParams b = a;
  b.prefetch["X"].distBytes = 1024;  // same enabled set, new distance
  auto patched = pipeline.compile(b);
  ASSERT_TRUE(patched->compiled.ok);
  auto stats = pipeline.stats();
  EXPECT_EQ(stats.fullCompiles, 1u);
  EXPECT_EQ(stats.prefixPatches, 1u);

  fko::CompileOptions opts;
  opts.tuning = b;
  auto fresh = fko::compileKernel(spec.hilSource(), opts, machine);
  ASSERT_TRUE(fresh.ok);
  EXPECT_EQ(ir::print(patched->compiled.fn), ir::print(fresh.fn));
}

/// Operand-template cloning: the cloned timing image is bit-for-bit the
/// image a fresh makeKernelData produces, and timing over it gives the
/// same cycles.
TEST(EvalPipelineData, ClonedKernelDataMatchesFresh) {
  const auto& spec = kernels::allKernels().front();
  kernels::KernelData fresh = kernels::makeKernelData(spec, 1024, 42);
  kernels::KernelData tmpl = kernels::makeKernelData(spec, 1024, 42);
  kernels::KernelData clone = tmpl.clone();
  ASSERT_EQ(clone.mem->size(), fresh.mem->size());
  std::vector<uint8_t> a(fresh.mem->size()), b(fresh.mem->size());
  fresh.mem->readBytes(64, a.data() + 64, a.size() - 64);
  clone.mem->readBytes(64, b.data() + 64, b.size() - 64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(clone.xAddr, fresh.xAddr);
  EXPECT_EQ(clone.yAddr, fresh.yAddr);
  EXPECT_EQ(clone.n, fresh.n);

  const auto machine = arch::p4e();
  fko::CompileOptions opts;
  auto compiled = fko::compileKernel(spec.hilSource(), opts, machine);
  ASSERT_TRUE(compiled.ok);
  auto without = sim::timeKernel(machine, compiled.fn, spec, 1024,
                                 sim::TimeContext::OutOfCache, 42);
  auto with = sim::timeKernel(machine, compiled.fn, spec, 1024,
                              sim::TimeContext::OutOfCache, 42, 0, &tmpl);
  EXPECT_EQ(without.cycles, with.cycles);
  EXPECT_EQ(without.mem, with.mem);
}

/// Truncated-prefix screening runs: loopN = n reproduces the full run
/// exactly, and shorter prefixes are strictly cheaper and monotone (a
/// longer prefix of the same deterministic run can only add cycles).
TEST(EvalPipelineScreen, TruncatedPrefixRunsAreExactPrefixes) {
  const auto machine = arch::p4e();
  const auto& spec = kernels::allKernels().front();
  fko::CompileOptions opts;
  auto compiled = fko::compileKernel(spec.hilSource(), opts, machine);
  ASSERT_TRUE(compiled.ok);
  const int64_t n = 4096;
  auto full = sim::timeKernel(machine, compiled.fn, spec, n,
                              sim::TimeContext::OutOfCache, 42);
  auto sameAsFull = sim::timeKernel(machine, compiled.fn, spec, n,
                                    sim::TimeContext::OutOfCache, 42, n);
  EXPECT_EQ(full.cycles, sameAsFull.cycles);
  EXPECT_EQ(full.mem, sameAsFull.mem);

  auto head = sim::timeKernel(machine, compiled.fn, spec, n,
                              sim::TimeContext::OutOfCache, 42, 512);
  auto tail = sim::timeKernel(machine, compiled.fn, spec, n,
                              sim::TimeContext::OutOfCache, 42, 1024);
  EXPECT_LT(0u, head.cycles);
  EXPECT_LT(head.cycles, tail.cycles);
  EXPECT_LT(tail.cycles, full.cycles);

  // Determinism: the same prefix twice is the same run.
  auto again = sim::timeKernel(machine, compiled.fn, spec, n,
                               sim::TimeContext::OutOfCache, 42, 512);
  EXPECT_EQ(head.cycles, again.cycles);
}

/// deltaScreen subtracts the shared head from the containing tail and
/// combines the attempt counts (minus the double-counted first try).
TEST(EvalPipelineScreen, DeltaScreenArithmetic) {
  search::EvalOutcome head{100, search::EvalOutcome::Status::Timed};
  head.attempts = 2;
  search::EvalOutcome tail{260, search::EvalOutcome::Status::Timed};
  tail.attempts = 1;
  search::EvalOutcome d = search::deltaScreen(head, tail);
  EXPECT_EQ(d.cycles, 160u);
  EXPECT_EQ(d.status, search::EvalOutcome::Status::Timed);
  EXPECT_EQ(d.attempts, 2);
}

TEST(EvalPipelineScreen, ScreeningAppliesGates) {
  search::SearchConfig cfg;
  cfg.n = 4096;
  cfg.screenN = 0;
  EXPECT_FALSE(search::screeningApplies(cfg, 8));  // off by default
  cfg.screenN = 512;
  EXPECT_TRUE(search::screeningApplies(cfg, search::kScreenMinCohort));
  EXPECT_FALSE(search::screeningApplies(cfg, search::kScreenMinCohort - 1));
  cfg.screenN = 2048;  // 2 * screenN == n: the tail is no cheaper than full
  EXPECT_FALSE(search::screeningApplies(cfg, 8));
}

TEST(EvalPipelineScreen, ScreenSurvivorsCutoffAndIncumbent) {
  search::SearchConfig cfg;
  cfg.screenMargin = 1.10;
  using S = search::EvalOutcome::Status;
  std::vector<search::EvalOutcome> screens = {
      {100, S::Timed}, {109, S::Timed}, {112, S::Timed}, {0, S::CompileFail}};
  auto adv = search::screenSurvivors(cfg, screens);
  ASSERT_EQ(adv.size(), 4u);
  EXPECT_TRUE(adv[0]);   // the best screen always advances
  EXPECT_TRUE(adv[1]);   // within 10%
  EXPECT_FALSE(adv[2]);  // outside the margin
  EXPECT_FALSE(adv[3]);  // a failed screen is already the final verdict

  // A known incumbent tightens the cutoff below the cohort's own best —
  // even the cohort's best screen is pruned when it cannot beat the
  // incumbent (100 > 90 * 1.10): a whole batch of losers costs only
  // screens, never a full-size run.
  auto tighter = search::screenSurvivors(cfg, screens, /*incumbentScreen=*/90);
  EXPECT_FALSE(tighter[0]);
  EXPECT_FALSE(tighter[1]);
  EXPECT_FALSE(tighter[2]);
  // A looser incumbent leaves the cohort cutoff in charge.
  auto loose = search::screenSurvivors(cfg, screens, /*incumbentScreen=*/200);
  EXPECT_TRUE(loose[0]);
  EXPECT_TRUE(loose[1]);
  EXPECT_FALSE(loose[2]);

  // All screens failed: nothing advances (the failures stand).
  std::vector<search::EvalOutcome> failed = {{0, S::TesterFail},
                                             {0, S::CompileFail}};
  auto none = search::screenSurvivors(cfg, failed);
  EXPECT_FALSE(none[0]);
  EXPECT_FALSE(none[1]);
}

/// The ScreenedOut status is part of the trace/cache vocabulary.
TEST(EvalPipelineScreen, ScreenedOutStatusRoundTrips) {
  using S = search::EvalOutcome::Status;
  EXPECT_EQ(search::evalStatusName(S::ScreenedOut), "screened");
  auto parsed = search::parseEvalStatus("screened");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, S::ScreenedOut);
  search::EvalOutcome o{0, S::ScreenedOut};
  EXPECT_FALSE(o.usable());
  EXPECT_FALSE(o.hardFailure());
}

}  // namespace
}  // namespace ifko
