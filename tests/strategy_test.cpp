// The pluggable search-strategy subsystem: the line-search strategy must
// reproduce the legacy serial search bit for bit on every registry kernel,
// every strategy must be deterministic in (seed, budget) at any --jobs,
// the Budget must be enforced, and the ParamSpace helpers must only ever
// produce legal points.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "opt/paramspace.h"
#include "search/orchestrator.h"
#include "search/strategy/strategy.h"
#include "support/json.h"
#include "support/rng.h"

namespace ifko::search {
namespace {

using kernels::BlasOp;
using kernels::KernelSpec;
using opt::TuningParams;

SearchConfig smokeConfig(int jobs = 1) {
  SearchConfig c = SearchConfig::smoke();
  c.jobs = jobs;
  return c;
}

std::string tmpFile(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

opt::ParamSpace spaceForSpec(const KernelSpec& spec,
                             const SearchConfig& config) {
  auto rep = fko::analyzeKernel(spec.hilSource(), arch::p4e());
  EXPECT_TRUE(rep.ok) << rep.error;
  return spaceFor(rep, arch::p4e(), config);
}

bool legal(const opt::ParamSpace& s, const TuningParams& p) {
  if (p.unroll < 1 || p.unroll > s.maxUnroll) return false;
  if (p.accumExpand < 1 || p.accumExpand > p.unroll) return false;
  if (s.accums.empty() && p.accumExpand != 1) return false;
  for (const auto& [name, pref] : p.prefetch)
    if (pref.enabled && pref.distBytes == 0) return false;
  return true;
}

// --- the tentpole acceptance test: line strategy == legacy search -----------

TEST(LineSearchStrategy, MatchesLegacyOnEveryRegistryKernel) {
  const SearchConfig cfg = smokeConfig();
  const Budget unlimited;
  for (const auto& spec : kernels::allKernels()) {
    TuneResult legacy = tuneKernel(spec, arch::p4e(), cfg);
    TuneResult viaStrategy = tuneKernelWithStrategy(
        spec, arch::p4e(), cfg, StrategyKind::Line, unlimited);
    ASSERT_EQ(legacy.ok, viaStrategy.ok) << spec.name();
    if (!legacy.ok) continue;
    EXPECT_EQ(legacy.best, viaStrategy.best) << spec.name();
    EXPECT_EQ(legacy.bestCycles, viaStrategy.bestCycles) << spec.name();
    EXPECT_EQ(legacy.defaultCycles, viaStrategy.defaultCycles) << spec.name();
    EXPECT_EQ(legacy.defaults, viaStrategy.defaults) << spec.name();
    EXPECT_EQ(legacy.ledger, viaStrategy.ledger) << spec.name();
    EXPECT_EQ(legacy.evaluations, viaStrategy.evaluations) << spec.name();
  }
}

TEST(LineSearchStrategy, MatchesLegacyWithExtensions) {
  SearchConfig cfg = smokeConfig();
  cfg.searchExtensions = true;
  KernelSpec spec{BlasOp::Dot, ir::Scal::F64};
  TuneResult legacy = tuneKernel(spec, arch::p4e(), cfg);
  TuneResult viaStrategy =
      tuneKernelWithStrategy(spec, arch::p4e(), cfg, StrategyKind::Line, {});
  ASSERT_TRUE(legacy.ok && viaStrategy.ok);
  EXPECT_EQ(legacy.best, viaStrategy.best);
  EXPECT_EQ(legacy.bestCycles, viaStrategy.bestCycles);
  EXPECT_EQ(legacy.ledger, viaStrategy.ledger);
  EXPECT_EQ(legacy.evaluations, viaStrategy.evaluations);
}

// --- determinism: same seed + budget => same proposals at any --jobs --------

/// The (dim, params) sequence of every proposed candidate, from the trace.
std::vector<std::pair<std::string, std::string>> proposalSequence(
    const std::string& tracePath) {
  std::vector<std::pair<std::string, std::string>> seq;
  std::ifstream in(tracePath);
  EXPECT_TRUE(in.is_open()) << tracePath;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::map<std::string, JsonValue> obj;
    EXPECT_TRUE(parseJsonObject(line, &obj)) << line;
    auto ev = obj.find("event");
    if (ev == obj.end() || ev->second.string != "candidate") continue;
    seq.emplace_back(obj.at("dim").string, obj.at("params").string);
  }
  return seq;
}

TuneResult runTraced(StrategyKind kind, int jobs, const std::string& trace,
                     uint64_t seed = 7, int budget = 40) {
  OrchestratorConfig oc;
  oc.search = smokeConfig(jobs);
  oc.tracePath = trace;
  oc.strategy = kind;
  oc.budget.maxEvaluations = budget;
  oc.budget.seed = seed;
  std::string err;
  Orchestrator orch(arch::p4e(), oc, &err);
  EXPECT_TRUE(err.empty()) << err;
  KernelSpec spec{BlasOp::Axpy, ir::Scal::F64};
  auto out = orch.tune({spec.name(), spec.hilSource(), &spec});
  return out.result;
}

TEST(StrategyDeterminism, SameSeedSameProposalsAtAnyJobs) {
  for (StrategyKind kind : allStrategies()) {
    std::string t1 = tmpFile("strategy_det_j1.jsonl");
    std::string t8 = tmpFile("strategy_det_j8.jsonl");
    TuneResult r1 = runTraced(kind, 1, t1);
    TuneResult r8 = runTraced(kind, 8, t8);
    ASSERT_TRUE(r1.ok) << r1.error;
    ASSERT_TRUE(r8.ok) << r8.error;
    EXPECT_EQ(proposalSequence(t1), proposalSequence(t8))
        << strategyName(kind);
    EXPECT_EQ(r1.best, r8.best) << strategyName(kind);
    EXPECT_EQ(r1.bestCycles, r8.bestCycles) << strategyName(kind);
    EXPECT_EQ(r1.proposals, r8.proposals) << strategyName(kind);
    EXPECT_EQ(r1.frontier, r8.frontier) << strategyName(kind);
    EXPECT_EQ(r1.ledger, r8.ledger) << strategyName(kind);
    std::remove(t1.c_str());
    std::remove(t8.c_str());
  }
}

TEST(StrategyDeterminism, WarmCacheDoesNotChangeTrajectory) {
  // The budget counts cached observations too, so a second run over a
  // persistent cache must propose the same sequence and land on the same
  // best point.
  std::string cachePath = tmpFile("strategy_warm.cache.jsonl");
  std::remove(cachePath.c_str());
  KernelSpec spec{BlasOp::Scal, ir::Scal::F64};
  auto run = [&] {
    OrchestratorConfig oc;
    oc.search = smokeConfig(2);
    oc.cachePath = cachePath;
    oc.strategy = StrategyKind::Random;
    oc.budget.maxEvaluations = 24;
    oc.budget.seed = 11;
    std::string err;
    Orchestrator orch(arch::p4e(), oc, &err);
    EXPECT_TRUE(err.empty()) << err;
    return orch.tune({spec.name(), spec.hilSource(), &spec}).result;
  };
  TuneResult cold = run();
  TuneResult warm = run();
  ASSERT_TRUE(cold.ok && warm.ok);
  EXPECT_EQ(cold.best, warm.best);
  EXPECT_EQ(cold.bestCycles, warm.bestCycles);
  EXPECT_EQ(cold.proposals, warm.proposals);
  EXPECT_EQ(cold.frontier, warm.frontier);
  EXPECT_EQ(warm.evaluations, 0);  // everything served from the cache
  std::remove(cachePath.c_str());
}

TEST(StrategyDeterminism, DifferentSeedsDiverge) {
  KernelSpec spec{BlasOp::Axpy, ir::Scal::F64};
  Budget b1, b2;
  b1.maxEvaluations = b2.maxEvaluations = 24;
  b1.seed = 1;
  b2.seed = 2;
  TuneResult r1 = tuneKernelWithStrategy(spec, arch::p4e(), smokeConfig(),
                                         StrategyKind::Random, b1);
  TuneResult r2 = tuneKernelWithStrategy(spec, arch::p4e(), smokeConfig(),
                                         StrategyKind::Random, b2);
  ASSERT_TRUE(r1.ok && r2.ok);
  // Same kernel, same budget: the frontiers (which candidates improved,
  // when) should differ between seeds on any non-trivial space.
  EXPECT_NE(r1.frontier, r2.frontier);
}

// --- budget enforcement -----------------------------------------------------

TEST(Budget, CapsObservedCandidates) {
  KernelSpec spec{BlasOp::Asum, ir::Scal::F64};
  for (StrategyKind kind : allStrategies()) {
    Budget b;
    b.maxEvaluations = 12;
    TuneResult r =
        tuneKernelWithStrategy(spec, arch::p4e(), smokeConfig(), kind, b);
    ASSERT_TRUE(r.ok) << strategyName(kind) << ": " << r.error;
    // Checked between proposals: at most one indivisible batch of overshoot.
    EXPECT_GE(r.proposals, 1) << strategyName(kind);
    EXPECT_LE(r.proposals, 12 + 32) << strategyName(kind);
    EXPECT_LE(r.evaluations, r.proposals) << strategyName(kind);
    ASSERT_FALSE(r.frontier.empty()) << strategyName(kind);
    EXPECT_EQ(r.frontier.front().proposals, 1);
    EXPECT_EQ(r.frontier.front().cycles, r.defaultCycles);
    EXPECT_EQ(r.frontier.back().cycles, r.bestCycles);
  }
}

TEST(Budget, RandomStrategyHonorsBatchHintExactly) {
  // RandomStrategy proposes divisible batches, so it can never overshoot.
  KernelSpec spec{BlasOp::Copy, ir::Scal::F32};
  Budget b;
  b.maxEvaluations = 9;
  TuneResult r = tuneKernelWithStrategy(spec, arch::p4e(), smokeConfig(),
                                        StrategyKind::Random, b);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.proposals, 9);
}

TEST(Budget, CycleBudgetStopsTheSearch) {
  KernelSpec spec{BlasOp::Dot, ir::Scal::F64};
  Budget tight;
  tight.maxCycles = 1;  // the DEFAULTS point already exhausts it
  TuneResult r = tuneKernelWithStrategy(spec, arch::p4e(), smokeConfig(),
                                        StrategyKind::Random, tight);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.proposals, 1);
  EXPECT_EQ(r.bestCycles, r.defaultCycles);
}

TEST(Budget, UnlimitedFlag) {
  EXPECT_TRUE(Budget{}.unlimited());
  Budget b;
  b.maxEvaluations = 1;
  EXPECT_FALSE(b.unlimited());
  Budget c;
  c.maxCycles = 1;
  EXPECT_FALSE(c.unlimited());
}

// --- the strategy registry --------------------------------------------------

TEST(StrategyRegistry, NamesRoundTrip) {
  for (StrategyKind kind : allStrategies()) {
    auto parsed = parseStrategyKind(strategyName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
    auto made = makeStrategy(kind, {});
    ASSERT_NE(made, nullptr);
    EXPECT_EQ(made->name(), strategyName(kind));
  }
  EXPECT_FALSE(parseStrategyKind("annealing").has_value());
  EXPECT_FALSE(parseStrategyKind("").has_value());
}

// --- ParamSpace: grids, legality, neighborhood moves ------------------------

TEST(ParamSpaceGrids, MatchTheLineSearchSweeps) {
  EXPECT_EQ(opt::unrollGrid(false, 128),
            (std::vector<int>{1, 2, 3, 4, 5, 6, 8, 12, 16, 24, 32, 64, 128}));
  EXPECT_EQ(opt::unrollGrid(false, 10), (std::vector<int>{1, 2, 3, 4, 5, 6, 8}));
  EXPECT_EQ(opt::unrollGrid(true, 128), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(opt::accumGrid(false), (std::vector<int>{1, 2, 3, 4, 5, 8, 16}));
  EXPECT_EQ(opt::accumGrid(true), (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(opt::prefDistMultGrid(true), (std::vector<int>{0, 2, 16}));
  EXPECT_EQ(opt::prefDistMultGrid(false),
            (std::vector<int>{0, 1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 28, 32}));
}

TEST(ParamSpaceTest, SpaceForReflectsTheKernel) {
  // ddot: two loaded arrays, no stores, accumulators present.
  opt::ParamSpace dot = spaceForSpec(KernelSpec{BlasOp::Dot, ir::Scal::F64},
                                     smokeConfig());
  EXPECT_FALSE(dot.wnt);
  EXPECT_FALSE(dot.accums.empty());
  EXPECT_EQ(dot.prefArrays.size(), 2u);
  EXPECT_TRUE(dot.reduced);
  EXPECT_GT(dot.size(), 1u);

  // dcopy: stores to Y, no reduction.
  opt::ParamSpace copy = spaceForSpec(KernelSpec{BlasOp::Copy, ir::Scal::F64},
                                      smokeConfig());
  EXPECT_TRUE(copy.wnt);
  EXPECT_TRUE(copy.accums.empty());
}

TEST(ParamSpaceTest, SampleAlwaysLegal) {
  opt::ParamSpace s =
      spaceForSpec(KernelSpec{BlasOp::Axpy, ir::Scal::F64}, smokeConfig());
  auto rep = fko::analyzeKernel(
      KernelSpec{BlasOp::Axpy, ir::Scal::F64}.hilSource(), arch::p4e());
  TuningParams base = fkoDefaults(rep, arch::p4e());
  SplitMix64 rng(123);
  for (int i = 0; i < 200; ++i) {
    TuningParams p = s.sample(base, rng);
    EXPECT_TRUE(legal(s, p)) << opt::formatTuningSpec(p);
  }
}

TEST(ParamSpaceTest, NeighborsAreLegalDedupedAndExcludeSelf) {
  opt::ParamSpace s =
      spaceForSpec(KernelSpec{BlasOp::Dot, ir::Scal::F64}, SearchConfig{});
  auto rep = fko::analyzeKernel(KernelSpec{BlasOp::Dot, ir::Scal::F64}.hilSource(),
                                arch::p4e());
  TuningParams base = fkoDefaults(rep, arch::p4e());
  std::vector<TuningParams> nb = s.neighbors(base);
  ASSERT_FALSE(nb.empty());
  std::set<std::string> keys;
  const std::string self = opt::formatTuningSpec(base);
  for (const TuningParams& p : nb) {
    EXPECT_TRUE(legal(s, p)) << opt::formatTuningSpec(p);
    std::string key = opt::formatTuningSpec(p);
    EXPECT_NE(key, self);
    EXPECT_TRUE(keys.insert(key).second) << "duplicate neighbor " << key;
  }
}

TEST(ParamSpaceTest, MutateAndCrossoverStayLegal) {
  opt::ParamSpace s =
      spaceForSpec(KernelSpec{BlasOp::Axpy, ir::Scal::F32}, SearchConfig{});
  auto rep = fko::analyzeKernel(
      KernelSpec{BlasOp::Axpy, ir::Scal::F32}.hilSource(), arch::p4e());
  TuningParams base = fkoDefaults(rep, arch::p4e());
  SplitMix64 rng(99);
  TuningParams a = s.sample(base, rng);
  TuningParams b = s.sample(base, rng);
  for (int i = 0; i < 100; ++i) {
    TuningParams child = s.crossover(a, b, rng);
    EXPECT_TRUE(legal(s, child)) << opt::formatTuningSpec(child);
    TuningParams m = s.mutate(child, rng);
    EXPECT_TRUE(legal(s, m)) << opt::formatTuningSpec(m);
    a = child;
    b = m;
  }
}

TEST(ParamSpaceTest, ClampEnforcesTheConstraints) {
  opt::ParamSpace s;
  s.unrolls = {1, 2, 4};
  s.accums = {1, 2};
  s.maxUnroll = 4;
  TuningParams p;
  p.unroll = 64;
  p.accumExpand = 16;
  TuningParams c = s.clamp(p);
  EXPECT_EQ(c.unroll, 4);
  EXPECT_LE(c.accumExpand, c.unroll);
  p.unroll = 0;
  p.accumExpand = 0;
  c = s.clamp(p);
  EXPECT_EQ(c.unroll, 1);
  EXPECT_EQ(c.accumExpand, 1);
}

// --- stochastic strategies find real improvements ---------------------------

TEST(Strategies, StochasticSearchesImproveOnDefaults) {
  // At a healthy budget every strategy should at least match the FKO
  // defaults, and on dscal (WNT + prefetch + UR all live) improve on them.
  KernelSpec spec{BlasOp::Scal, ir::Scal::F64};
  for (StrategyKind kind : allStrategies()) {
    Budget b;
    b.maxEvaluations = 48;
    TuneResult r =
        tuneKernelWithStrategy(spec, arch::p4e(), smokeConfig(), kind, b);
    ASSERT_TRUE(r.ok) << strategyName(kind) << ": " << r.error;
    EXPECT_LE(r.bestCycles, r.defaultCycles) << strategyName(kind);
    EXPECT_LT(r.bestCycles, r.defaultCycles) << strategyName(kind);
  }
}

// --- attribution-guided search and the bandit portfolio ---------------------

TEST(AttributionStrategy, TargetsTheDominantStallCause) {
  // daxpy out-of-cache is memory-bound, so the guided climber's first
  // steps must be targeted ("ATTR mem ..."), not blind.
  std::string trace = tmpFile("strategy_attr_dims.jsonl");
  TuneResult r = runTraced(StrategyKind::Attribution, 1, trace, 7, 40);
  ASSERT_TRUE(r.ok) << r.error;
  bool sawTargeted = false;
  for (const auto& [dim, params] : proposalSequence(trace))
    sawTargeted |= dim.rfind("ATTR mem", 0) == 0 ||
                   dim.rfind("ATTR fp", 0) == 0 ||
                   dim.rfind("ATTR pipe", 0) == 0;
  EXPECT_TRUE(sawTargeted);
  std::remove(trace.c_str());
}

TEST(AttributionStrategy, MatchesOrBeatsHillClimbOnMemBoundKernel) {
  // The equal-budget claim the CI gate enforces fleet-wide, at unit scale:
  // on a memory-bound kernel the attribution signal must not lose to the
  // blind climber it extends.
  KernelSpec spec{BlasOp::Scal, ir::Scal::F64};
  Budget b;
  b.maxEvaluations = 32;
  TuneResult attr = tuneKernelWithStrategy(spec, arch::p4e(), smokeConfig(),
                                           StrategyKind::Attribution, b);
  TuneResult hill = tuneKernelWithStrategy(spec, arch::p4e(), smokeConfig(),
                                           StrategyKind::HillClimb, b);
  ASSERT_TRUE(attr.ok) << attr.error;
  ASSERT_TRUE(hill.ok) << hill.error;
  EXPECT_LE(attr.bestCycles, hill.bestCycles);
}

TEST(BanditStrategy, PullsArmsAndLabelsTheirProposals) {
  std::string trace = tmpFile("strategy_bandit_dims.jsonl");
  TuneResult r = runTraced(StrategyKind::Bandit, 1, trace, 7, 64);
  ASSERT_TRUE(r.ok) << r.error;
  std::set<std::string> arms;
  for (const auto& [dim, params] : proposalSequence(trace)) {
    if (dim == "DEFAULTS" || dim == "WISDOM") continue;
    const size_t colon = dim.find(':');
    ASSERT_NE(colon, std::string::npos) << dim;
    arms.insert(dim.substr(0, colon));
  }
  // The cold-start sweep pulls every live arm at least once before UCB
  // concentrates the budget.
  EXPECT_GE(arms.size(), 3u) << "arms seen: " << arms.size();
  EXPECT_TRUE(arms.count("line") != 0) << "line arm never pulled";
  std::remove(trace.c_str());
}

}  // namespace
}  // namespace ifko::search
