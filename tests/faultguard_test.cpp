// Fault-isolated evaluation: the FaultPlan grammar, the cooperative
// deadline, guardedEvaluateCandidate's retry/classification contract,
// exception containment in the thread pool, the quarantine policy, and
// failure replay through the persistent cache.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <sys/stat.h>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "search/orchestrator.h"
#include "search/threadpool.h"
#include "sim/budget.h"
#include "support/json.h"

namespace ifko::search {
namespace {

using kernels::BlasOp;
using kernels::KernelSpec;

std::string tmpFile(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// --- FaultPlan grammar ----------------------------------------------------

TEST(FaultPlanParse, AcceptsTheDocumentedGrammar) {
  std::string err;
  auto plan = FaultPlan::parse(
      "crash@3, hang@10+7:once ,tester%5:seed=42", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  ASSERT_EQ(plan->rules.size(), 3u);

  EXPECT_EQ(plan->rules[0].kind, FaultPlan::Kind::Crash);
  EXPECT_EQ(plan->rules[0].at, 3u);
  EXPECT_EQ(plan->rules[0].every, 0u);
  EXPECT_FALSE(plan->rules[0].transient);

  EXPECT_EQ(plan->rules[1].kind, FaultPlan::Kind::Hang);
  EXPECT_EQ(plan->rules[1].at, 10u);
  EXPECT_EQ(plan->rules[1].every, 7u);
  EXPECT_TRUE(plan->rules[1].transient);

  EXPECT_EQ(plan->rules[2].kind, FaultPlan::Kind::TesterFail);
  EXPECT_EQ(plan->rules[2].oneIn, 5u);
  EXPECT_EQ(plan->rules[2].seed, 42u);
}

TEST(FaultPlanParse, EmptySpecIsAnEmptyPlan) {
  std::string err;
  auto plan = FaultPlan::parse("", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  EXPECT_TRUE(plan->empty());
}

TEST(FaultPlanParse, RejectsMalformedRules) {
  for (const char* bad :
       {"bogus@3", "crash", "crash@0", "crash@", "crash%0", "crash@x",
        "crash@3+0", "hang@2:seed=abc", "crash@3:frequently"}) {
    std::string err;
    EXPECT_FALSE(FaultPlan::parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(FaultPlanFires, SchedulesAndTransience) {
  std::string err;
  auto plan = FaultPlan::parse("crash@2,hang@5+3:once", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  EXPECT_FALSE(plan->fires(1, 1).has_value());
  EXPECT_EQ(plan->fires(2, 1), FaultPlan::Kind::Crash);
  EXPECT_EQ(plan->fires(2, 2), FaultPlan::Kind::Crash);  // persistent
  EXPECT_EQ(plan->fires(5, 1), FaultPlan::Kind::Hang);
  EXPECT_EQ(plan->fires(8, 1), FaultPlan::Kind::Hang);
  EXPECT_EQ(plan->fires(11, 1), FaultPlan::Kind::Hang);
  EXPECT_FALSE(plan->fires(6, 1).has_value());
  EXPECT_FALSE(plan->fires(8, 2).has_value());  // :once spares the retry
}

TEST(FaultPlanFires, RandomRuleIsSeedStable) {
  std::string err;
  auto a = FaultPlan::parse("crash%4:seed=9", &err);
  auto b = FaultPlan::parse("crash%4:seed=9", &err);
  auto c = FaultPlan::parse("crash%4:seed=10", &err);
  ASSERT_TRUE(a.has_value() && b.has_value() && c.has_value());
  int fired = 0, differs = 0;
  for (uint64_t i = 1; i <= 400; ++i) {
    EXPECT_EQ(a->fires(i, 1).has_value(), b->fires(i, 1).has_value());
    fired += a->fires(i, 1).has_value() ? 1 : 0;
    differs += a->fires(i, 1).has_value() != c->fires(i, 1).has_value();
  }
  EXPECT_GT(fired, 50);   // ~100 expected at 1/4
  EXPECT_LT(fired, 200);
  EXPECT_GT(differs, 0);  // a different seed is a different schedule
}

// --- The cooperative deadline ---------------------------------------------

TEST(ScopedEvalBudget, ChargesAndThrowsOnExhaustion) {
  EXPECT_FALSE(sim::ScopedEvalBudget::active());
  {
    sim::ScopedEvalBudget budget(/*steps=*/10, /*cycles=*/0);
    EXPECT_TRUE(sim::ScopedEvalBudget::active());
    sim::ScopedEvalBudget::chargeSteps(9);
    EXPECT_THROW(sim::ScopedEvalBudget::chargeSteps(2), sim::TimeoutError);
  }
  EXPECT_FALSE(sim::ScopedEvalBudget::active());
  // Charging with no budget armed is a no-op, not an error.
  sim::ScopedEvalBudget::chargeSteps(1'000'000);
}

TEST(ScopedEvalBudget, CycleCapAndNesting) {
  sim::ScopedEvalBudget outer(1000, 500);
  sim::ScopedEvalBudget::checkCycles(500);  // at the cap is fine
  EXPECT_THROW(sim::ScopedEvalBudget::checkCycles(501), sim::TimeoutError);
  {
    sim::ScopedEvalBudget inner(10, 50);
    EXPECT_THROW(sim::ScopedEvalBudget::checkCycles(51), sim::TimeoutError);
  }
  // The outer budget is restored when the inner scope ends.
  EXPECT_TRUE(sim::ScopedEvalBudget::active());
  sim::ScopedEvalBudget::checkCycles(400);
}

TEST(ScopedEvalBudget, InterpreterChargesTheBudget) {
  // A real (uninjected) evaluation whose simulated work exceeds the
  // deadline must time out via the interpreter's step accounting.
  KernelSpec spec{BlasOp::Dot, ir::Scal::F64};
  std::string src = spec.hilSource();
  auto machine = arch::p4e();
  auto analysis = fko::analyzeKernel(src, machine);
  auto lowered = fko::lowerKernel(src);
  SearchConfig cfg = SearchConfig::smoke();
  cfg.n = 2'000'000;  // far more than 1 ms of simulated work
  cfg.evalTimeoutMs = 1;
  cfg.maxEvalAttempts = 1;
  EvalRequest req;
  req.hilSource = &src;
  req.lowered = &lowered;
  req.spec = &spec;
  req.analysis = &analysis;
  req.machine = &machine;
  req.config = &cfg;
  EvalOutcome o = guardedEvaluateCandidate(req);
  EXPECT_EQ(o.status, EvalOutcome::Status::Timeout);
  EXPECT_EQ(o.cycles, 0u);
}

// --- guardedEvaluateCandidate ---------------------------------------------

struct GuardFixture : ::testing::Test {
  KernelSpec spec{BlasOp::Dot, ir::Scal::F64};
  std::string src = spec.hilSource();
  arch::MachineConfig machine = arch::p4e();
  fko::AnalysisReport analysis = fko::analyzeKernel(src, machine);
  fko::LoweredKernel lowered = fko::lowerKernel(src);
  SearchConfig cfg = SearchConfig::smoke();

  EvalRequest request(FaultInjector* injector = nullptr) {
    EvalRequest req;
    req.hilSource = &src;
    req.lowered = &lowered;
    req.spec = &spec;
    req.analysis = &analysis;
    req.machine = &machine;
    req.config = &cfg;
    req.injector = injector;
    return req;
  }

  EvalOutcome evalWithPlan(const std::string& planSpec) {
    std::string err;
    auto plan = FaultPlan::parse(planSpec, &err);
    EXPECT_TRUE(plan.has_value()) << err;
    FaultInjector injector(*plan);
    return guardedEvaluateCandidate(request(&injector));
  }
};

TEST_F(GuardFixture, CleanEvaluationPassesThrough) {
  EvalOutcome o = guardedEvaluateCandidate(request());
  EXPECT_EQ(o.status, EvalOutcome::Status::Timed);
  EXPECT_GT(o.cycles, 0u);
  EXPECT_EQ(o.attempts, 1);
  EXPECT_TRUE(o.usable());
  EXPECT_FALSE(o.hardFailure());
}

TEST_F(GuardFixture, DeprecatedShimMatchesRequestForm) {
  // The loose-parameter overload survives one release as a shim; it must be
  // an exact repackaging of the EvalRequest form.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EvalOutcome viaShim = guardedEvaluateCandidate(src, lowered, &spec, analysis,
                                                 machine, cfg, {});
#pragma GCC diagnostic pop
  EvalOutcome viaReq = guardedEvaluateCandidate(request());
  EXPECT_EQ(viaShim.status, viaReq.status);
  EXPECT_EQ(viaShim.cycles, viaReq.cycles);
}

TEST_F(GuardFixture, PersistentCrashExhaustsRetries) {
  cfg.maxEvalAttempts = 2;
  EvalOutcome o = evalWithPlan("crash@1+1");
  EXPECT_EQ(o.status, EvalOutcome::Status::Crash);
  EXPECT_EQ(o.cycles, 0u);
  EXPECT_EQ(o.attempts, 2);
  EXPECT_TRUE(o.hardFailure());
  EXPECT_FALSE(o.usable());
}

TEST_F(GuardFixture, TransientCrashRecoversOnRetry) {
  cfg.maxEvalAttempts = 2;
  EvalOutcome o = evalWithPlan("crash@1:once");
  EXPECT_EQ(o.status, EvalOutcome::Status::Timed);
  EXPECT_GT(o.cycles, 0u);
  EXPECT_EQ(o.attempts, 2);  // the retry is what succeeded
}

TEST_F(GuardFixture, HangBecomesTimeoutUnderDeadline) {
  cfg.maxEvalAttempts = 1;
  cfg.evalTimeoutMs = 10;
  EvalOutcome o = evalWithPlan("hang@1");
  EXPECT_EQ(o.status, EvalOutcome::Status::Timeout);
  EXPECT_EQ(o.cycles, 0u);
  EXPECT_TRUE(o.hardFailure());
}

TEST_F(GuardFixture, HangIsContainedEvenWithoutDeadline) {
  cfg.maxEvalAttempts = 1;
  cfg.evalTimeoutMs = 0;
  EvalOutcome o = evalWithPlan("hang@1");
  EXPECT_EQ(o.status, EvalOutcome::Status::Timeout);
}

TEST_F(GuardFixture, InjectedTesterFailIsNotRetried) {
  cfg.maxEvalAttempts = 3;
  EvalOutcome o = evalWithPlan("tester@1");
  EXPECT_EQ(o.status, EvalOutcome::Status::TesterFail);
  EXPECT_EQ(o.attempts, 1);  // deterministic rejection: retry is pointless
}

TEST_F(GuardFixture, SingleAttemptConfigNeverRetries) {
  cfg.maxEvalAttempts = 1;
  EvalOutcome o = evalWithPlan("crash@1:once");
  EXPECT_EQ(o.status, EvalOutcome::Status::Crash);
  EXPECT_EQ(o.attempts, 1);
}

// --- ThreadPool exception containment -------------------------------------

TEST(ThreadPoolTest, ExceptionInWorkerIsRethrownOnCaller) {
  detail::ThreadPool pool(8);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallelFor(64,
                       [&](size_t i) {
                         ++ran;
                         if (i == 13) throw std::runtime_error("boom 13");
                       }),
      std::runtime_error);
  // The whole batch drained even though one task threw.
  EXPECT_EQ(ran.load(), 64);

  // The pool survives and is reusable after the exceptional batch.
  std::atomic<int> again{0};
  pool.parallelFor(32, [&](size_t) { ++again; });
  EXPECT_EQ(again.load(), 32);
}

TEST(ThreadPoolTest, FirstOfManyExceptionsWins) {
  detail::ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallelFor(16, [&](size_t i) {
      ++ran;
      throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "parallelFor swallowed the exceptions";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u);
  }
  EXPECT_EQ(ran.load(), 16);
}

// --- Quarantine through the orchestrator ----------------------------------

TEST(Quarantine, RepeatedHardFailuresAbandonTheKernel) {
  KernelSpec spec{BlasOp::Scal, ir::Scal::F32};
  OrchestratorConfig oc;
  oc.search = SearchConfig::smoke();
  oc.search.jobs = 2;
  oc.search.maxEvalAttempts = 1;
  oc.quarantineAfter = 2;
  // Spare the default evaluation (index 1) so the search gets going, then
  // crash everything after it.
  std::string err;
  auto plan = FaultPlan::parse("crash@2+1", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  oc.faultPlan = *plan;

  Orchestrator orch(arch::p4e(), oc);
  auto out = orch.tune({spec.name(), spec.hilSource(), &spec});
  EXPECT_FALSE(out.result.ok);
  EXPECT_TRUE(out.quarantined);
  EXPECT_NE(out.result.error.find("quarantined"), std::string::npos)
      << out.result.error;
  EXPECT_GE(out.faults.crashes, 2);
  ASSERT_EQ(orch.quarantined().size(), 1u);
  EXPECT_EQ(orch.quarantined()[0].kernel, spec.name());
  EXPECT_GE(orch.quarantined()[0].faults.hard(), 2);
}

TEST(Quarantine, BatchContinuesPastAQuarantinedKernel) {
  KernelSpec a{BlasOp::Copy, ir::Scal::F32};
  KernelSpec b{BlasOp::Copy, ir::Scal::F64};
  OrchestratorConfig oc;
  oc.search = SearchConfig::smoke();
  oc.search.maxEvalAttempts = 1;
  oc.quarantineAfter = 2;
  std::string err;
  // Crash evaluations 2-4 — enough to quarantine the first kernel — and
  // nothing after, so the second kernel's evaluations run clean.
  auto plan = FaultPlan::parse("crash@2,crash@3,crash@4", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  oc.faultPlan = *plan;

  Orchestrator orch(arch::p4e(), oc);
  auto batch = orch.tuneAll({{a.name(), a.hilSource(), &a},
                             {b.name(), b.hilSource(), &b}});
  ASSERT_EQ(batch.kernels.size(), 2u);
  EXPECT_TRUE(batch.kernels[0].quarantined);
  EXPECT_FALSE(batch.kernels[0].result.ok);
  EXPECT_TRUE(batch.kernels[1].result.ok) << batch.kernels[1].result.error;
  EXPECT_FALSE(batch.kernels[1].quarantined);
  EXPECT_EQ(batch.quarantined(), 1);
  EXPECT_EQ(batch.failures(), 1);
}

TEST(Quarantine, ZeroThresholdNeverQuarantines) {
  KernelSpec spec{BlasOp::Asum, ir::Scal::F64};
  OrchestratorConfig oc;
  oc.search = SearchConfig::smoke();
  oc.search.maxEvalAttempts = 1;
  oc.quarantineAfter = 0;
  std::string err;
  auto plan = FaultPlan::parse("crash@2+2", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  oc.faultPlan = *plan;

  Orchestrator orch(arch::p4e(), oc);
  auto out = orch.tune({spec.name(), spec.hilSource(), &spec});
  EXPECT_FALSE(out.quarantined);
  EXPECT_TRUE(orch.quarantined().empty());
  EXPECT_GT(out.faults.crashes, 3);  // plenty of crashes, no abandonment
}

// --- Cache schema v2 and failure replay -----------------------------------

TEST(EvalCacheV2, StatusRoundTripsThroughDisk) {
  std::string path = tmpFile("evalcache_status.jsonl");
  std::remove(path.c_str());
  EvalKey timed{"aaaa", "P4E", "out-of-cache", 4096, 42, 64, "ur=1"};
  EvalKey timeout{"aaaa", "P4E", "out-of-cache", 4096, 42, 64, "ur=2"};
  EvalKey crash{"aaaa", "P4E", "out-of-cache", 4096, 42, 64, "ur=4"};
  {
    EvalCache cache;
    ASSERT_TRUE(cache.open(path));
    cache.insert(timed, 5555, EvalOutcome::Status::Timed);
    cache.insert(timeout, 0, EvalOutcome::Status::Timeout);
    cache.insert(crash, 0, EvalOutcome::Status::Crash);
  }
  EvalCache cache;
  ASSERT_TRUE(cache.open(path));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.lookup(timed)->status, EvalOutcome::Status::Timed);
  EXPECT_EQ(cache.lookup(timed)->cycles, 5555u);
  EXPECT_EQ(cache.lookup(timeout)->status, EvalOutcome::Status::Timeout);
  EXPECT_EQ(cache.lookup(crash)->status, EvalOutcome::Status::Crash);
  std::remove(path.c_str());
}

TEST(EvalCacheV2, V1LinesStillLoad) {
  std::string path = tmpFile("evalcache_v1.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    // v1 lines: no status field.
    out << "{\"source\":\"v1\",\"machine\":\"P4E\",\"context\":\"in-L2\","
           "\"n\":128,\"seed\":1,\"tester_n\":16,\"params\":\"ur=2\","
           "\"cycles\":777}\n";
    out << "{\"source\":\"v1\",\"machine\":\"P4E\",\"context\":\"in-L2\","
           "\"n\":128,\"seed\":1,\"tester_n\":16,\"params\":\"ur=4\","
           "\"cycles\":0}\n";
  }
  EvalCache cache;
  ASSERT_TRUE(cache.open(path));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.damagedLines(), 0u);
  EvalKey good{"v1", "P4E", "in-L2", 128, 1, 16, "ur=2"};
  EvalKey failed{"v1", "P4E", "in-L2", 128, 1, 16, "ur=4"};
  EXPECT_EQ(cache.lookup(good)->status, EvalOutcome::Status::Timed);
  EXPECT_EQ(cache.lookup(good)->cycles, 777u);
  // A v1 zero is "some failure whose flavour was never recorded".
  EXPECT_EQ(cache.lookup(failed)->status, EvalOutcome::Status::FailUnknown);
  std::remove(path.c_str());
}

TEST(EvalCacheV2, UnknownStatusCountsAsDamage) {
  std::string path = tmpFile("evalcache_badstatus.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"source\":\"x\",\"machine\":\"P4E\",\"context\":\"in-L2\","
           "\"n\":128,\"seed\":1,\"tester_n\":16,\"params\":\"ur=2\","
           "\"cycles\":0,\"status\":\"exploded\"}\n";
  }
  EvalCache cache;
  ASSERT_TRUE(cache.open(path));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.damagedLines(), 1u);
  std::remove(path.c_str());
}

TEST(EvalStatusNames, RoundTrip) {
  for (EvalOutcome::Status s :
       {EvalOutcome::Status::Timed, EvalOutcome::Status::CompileFail,
        EvalOutcome::Status::TesterFail, EvalOutcome::Status::Timeout,
        EvalOutcome::Status::Crash, EvalOutcome::Status::FailUnknown}) {
    auto parsed = parseEvalStatus(evalStatusName(s));
    ASSERT_TRUE(parsed.has_value()) << evalStatusName(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(parseEvalStatus("nonsense").has_value());
}

TEST(FailureReplay, WarmRunReproducesColdOutcomesWithoutEvaluating) {
  std::string cachePath = tmpFile("fault_replay.cache.jsonl");
  std::remove(cachePath.c_str());
  KernelSpec spec{BlasOp::Axpy, ir::Scal::F32};

  OrchestratorConfig oc;
  oc.search = SearchConfig::smoke();
  oc.search.maxEvalAttempts = 1;
  oc.cachePath = cachePath;
  std::string err;
  // Deterministically reject two non-default candidates.
  auto plan = FaultPlan::parse("tester@4,tester@9", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  oc.faultPlan = *plan;

  KernelOutcome cold, warm;
  {
    Orchestrator orch(arch::p4e(), oc);
    cold = orch.tune({spec.name(), spec.hilSource(), &spec});
    ASSERT_TRUE(cold.result.ok) << cold.result.error;
    EXPECT_EQ(cold.faults.testerFails, 2);
  }
  {
    OrchestratorConfig warmConfig = oc;
    warmConfig.faultPlan = FaultPlan{};  // no injector on the warm run
    Orchestrator orch(arch::p4e(), warmConfig);
    warm = orch.tune({spec.name(), spec.hilSource(), &spec});
  }
  ASSERT_TRUE(warm.result.ok) << warm.result.error;
  EXPECT_EQ(warm.result.evaluations, 0);  // everything replayed from cache
  EXPECT_EQ(warm.cacheMisses, 0u);
  EXPECT_EQ(cold.result.best, warm.result.best);
  EXPECT_EQ(cold.result.bestCycles, warm.result.bestCycles);
  EXPECT_EQ(cold.result.ledger, warm.result.ledger);
  std::remove(cachePath.c_str());
}

// --- Trace append and run_start -------------------------------------------

TEST(TraceAppend, SecondRunAppendsWithItsOwnRunStart) {
  std::string tracePath = tmpFile("fault_trace_append.jsonl");
  std::remove(tracePath.c_str());
  KernelSpec spec{BlasOp::Swap, ir::Scal::F32};
  OrchestratorConfig oc;
  oc.search = SearchConfig::smoke();
  oc.tracePath = tracePath;
  for (int run = 0; run < 2; ++run) {
    Orchestrator orch(arch::p4e(), oc);
    auto out = orch.tune({spec.name(), spec.hilSource(), &spec});
    ASSERT_TRUE(out.result.ok) << out.result.error;
  }

  std::ifstream in(tracePath);
  ASSERT_TRUE(in.is_open());
  int runStarts = 0, kernelEnds = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::map<std::string, JsonValue> obj;
    ASSERT_TRUE(parseJsonObject(line, &obj)) << line;
    const std::string& event = obj.at("event").string;
    if (event == "run_start") ++runStarts;
    if (event == "kernel_end") ++kernelEnds;
  }
  EXPECT_EQ(runStarts, 2);  // append mode: both runs survive in the file
  EXPECT_EQ(kernelEnds, 2);
  std::remove(tracePath.c_str());
}

TEST(TraceAppend, FailedCandidatesCarryVerdictAndAttempts) {
  std::string tracePath = tmpFile("fault_trace_verdicts.jsonl");
  std::remove(tracePath.c_str());
  KernelSpec spec{BlasOp::Dot, ir::Scal::F32};
  OrchestratorConfig oc;
  oc.search = SearchConfig::smoke();
  oc.search.maxEvalAttempts = 2;
  oc.tracePath = tracePath;
  std::string err;
  auto plan = FaultPlan::parse("crash@3:once,tester@5", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  oc.faultPlan = *plan;
  {
    Orchestrator orch(arch::p4e(), oc);
    auto out = orch.tune({spec.name(), spec.hilSource(), &spec});
    ASSERT_TRUE(out.result.ok) << out.result.error;
  }

  std::ifstream in(tracePath);
  ASSERT_TRUE(in.is_open());
  bool sawRetriedPass = false, sawTesterFail = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::map<std::string, JsonValue> obj;
    ASSERT_TRUE(parseJsonObject(line, &obj)) << line;
    if (obj.at("event").string != "candidate") continue;
    const std::string& verdict = obj.at("verdict").string;
    auto attempts = obj.find("attempts");
    if (verdict == "pass" && attempts != obj.end() &&
        attempts->second.number == 2.0)
      sawRetriedPass = true;
    if (verdict == "tester_fail") sawTesterFail = true;
  }
  EXPECT_TRUE(sawRetriedPass);  // the transient crash recovered on retry
  EXPECT_TRUE(sawTesterFail);
  std::remove(tracePath.c_str());
}

// --- loadKernelDir error paths --------------------------------------------

TEST(LoadKernelDirErrors, RegularFileIsNotADirectory) {
  std::string path = tmpFile("not_a_dir.hil");
  { std::ofstream(path) << "x"; }
  std::string err;
  auto jobs = loadKernelDir(path, &err);
  EXPECT_TRUE(jobs.empty());
  EXPECT_NE(err.find("not a directory"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(LoadKernelDirErrors, EmptyDirectoryHasNoKernels) {
  std::string dir = tmpFile("empty_kernel_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directory(dir);
  std::string err;
  auto jobs = loadKernelDir(dir, &err);
  EXPECT_TRUE(jobs.empty());
  EXPECT_NE(err.find("no .hil files"), std::string::npos) << err;
  std::filesystem::remove_all(dir);
}

TEST(LoadKernelDirErrors, DirectoryWithOnlyOtherFilesHasNoKernels) {
  std::string dir = tmpFile("no_hil_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directory(dir);
  { std::ofstream(dir + "/readme.txt") << "not a kernel"; }
  std::string err;
  auto jobs = loadKernelDir(dir, &err);
  EXPECT_TRUE(jobs.empty());
  EXPECT_NE(err.find("no .hil files"), std::string::npos) << err;
  std::filesystem::remove_all(dir);
}

TEST(LoadKernelDirErrors, UnreadableFileReportsError) {
  std::string dir = tmpFile("unreadable_kernel_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directory(dir);
  std::string file = dir + "/locked.hil";
  { std::ofstream(file) << "ROUT locked\n"; }
  ::chmod(file.c_str(), 0);
  if (::access(file.c_str(), R_OK) == 0) {
    // Running as root: permission bits don't bite, the path is untestable.
    std::filesystem::remove_all(dir);
    GTEST_SKIP() << "cannot make a file unreadable under this uid";
  }
  std::string err;
  auto jobs = loadKernelDir(dir, &err);
  EXPECT_TRUE(jobs.empty());
  EXPECT_NE(err.find("cannot read"), std::string::npos) << err;
  ::chmod(file.c_str(), 0644);
  std::filesystem::remove_all(dir);
}

// --- Jobs normalization ----------------------------------------------------

TEST(JobsNormalization, NonPositiveJobsNormalizeToOne) {
  for (int requested : {0, -4}) {
    OrchestratorConfig oc;
    oc.search = SearchConfig::smoke();
    oc.search.jobs = requested;
    Orchestrator orch(arch::p4e(), oc);
    EXPECT_EQ(orch.jobs(), 1) << "requested " << requested;
  }
  OrchestratorConfig oc;
  oc.search = SearchConfig::smoke();
  oc.search.jobs = 3;
  Orchestrator orch(arch::p4e(), oc);
  EXPECT_EQ(orch.jobs(), 3);
}

}  // namespace
}  // namespace ifko::search
