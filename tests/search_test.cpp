// The iFKO line search: defaults per the paper's formula, monotone
// improvement, ledger bookkeeping, and end-to-end tuning sanity.
#include <gtest/gtest.h>

#include "arch/machine.h"
#include "search/linesearch.h"

namespace ifko::search {
namespace {

using kernels::BlasOp;
using kernels::KernelSpec;

SearchConfig fastConfig(int64_t n = 4096) {
  SearchConfig c = SearchConfig::smoke();
  c.n = n;
  return c;
}

TEST(Defaults, MatchPaperFormula) {
  // SV=Yes, WNT=No, PF=(nta, 2L), UR=L_e, AE=No.
  KernelSpec dot{BlasOp::Dot, ir::Scal::F64};
  auto rep = fko::analyzeKernel(dot.hilSource(), arch::p4e());
  ASSERT_TRUE(rep.ok);
  auto p = fkoDefaults(rep, arch::p4e());
  EXPECT_TRUE(p.simdVectorize);
  EXPECT_FALSE(p.nonTemporalWrites);
  EXPECT_EQ(p.accumExpand, 1);
  // Vectorized double: L_e = 64/16 = 4 vectors per line.
  EXPECT_EQ(p.unroll, 4);
  ASSERT_TRUE(p.prefetch.count("X"));
  EXPECT_EQ(p.prefetch.at("X").kind, ir::PrefKind::NTA);
  EXPECT_EQ(p.prefetch.at("X").distBytes, 128);  // 2*L
  ASSERT_TRUE(p.prefetch.count("Y"));
}

TEST(Defaults, ScalarUnrollUsesElementSize) {
  // iamax is not vectorizable: L_e counts scalars (64/4=16 for float).
  KernelSpec iamax{BlasOp::Iamax, ir::Scal::F32};
  auto rep = fko::analyzeKernel(iamax.hilSource(), arch::p4e());
  ASSERT_TRUE(rep.ok);
  auto p = fkoDefaults(rep, arch::p4e());
  EXPECT_EQ(p.unroll, 16);
}

TEST(LineSearch, ImprovesOrMatchesDefaults) {
  for (BlasOp op : {BlasOp::Dot, BlasOp::Copy, BlasOp::Iamax}) {
    KernelSpec spec{op, ir::Scal::F64};
    auto r = tuneKernel(spec, arch::p4e(), fastConfig());
    ASSERT_TRUE(r.ok) << spec.name() << ": " << r.error;
    EXPECT_LE(r.bestCycles, r.defaultCycles) << spec.name();
    EXPECT_GT(r.evaluations, 1) << spec.name();
  }
}

TEST(LineSearch, LedgerIsMonotoneAndOrdered) {
  KernelSpec spec{BlasOp::Asum, ir::Scal::F32};
  auto r = tuneKernel(spec, arch::opteron(), fastConfig());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_GE(r.ledger.size(), 5u);
  EXPECT_EQ(r.ledger[0].name, "WNT");
  EXPECT_EQ(r.ledger[1].name, "PF DST");
  EXPECT_EQ(r.ledger[2].name, "PF INS");
  EXPECT_EQ(r.ledger[3].name, "UR");
  EXPECT_EQ(r.ledger[4].name, "AE");
  uint64_t prev = r.defaultCycles;
  for (const auto& d : r.ledger) {
    EXPECT_LE(d.cyclesAfter, prev) << d.name;
    prev = d.cyclesAfter;
  }
  EXPECT_EQ(r.ledger.back().cyclesAfter, r.bestCycles);
}

TEST(LineSearch, Deterministic) {
  KernelSpec spec{BlasOp::Scal, ir::Scal::F32};
  auto a = tuneKernel(spec, arch::p4e(), fastConfig());
  auto b = tuneKernel(spec, arch::p4e(), fastConfig());
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.bestCycles, b.bestCycles);
  EXPECT_EQ(a.best, b.best);
}

TEST(LineSearch, InCacheContextDiffersFromOutOfCache) {
  KernelSpec spec{BlasOp::Asum, ir::Scal::F64};
  SearchConfig cold = fastConfig(4096);
  SearchConfig warm = fastConfig(1024);
  warm.context = sim::TimeContext::InL2;
  auto a = tuneKernel(spec, arch::p4e(), cold);
  auto b = tuneKernel(spec, arch::p4e(), warm);
  ASSERT_TRUE(a.ok && b.ok);
  // In-cache runs far faster per element.
  EXPECT_LT(static_cast<double>(b.bestCycles) / 1024.0,
            static_cast<double>(a.bestCycles) / 4096.0);
}

TEST(LineSearch, ParamsRowFormat) {
  KernelSpec spec{BlasOp::Copy, ir::Scal::F64};
  auto rep = fko::analyzeKernel(spec.hilSource(), arch::p4e());
  auto p = fkoDefaults(rep, arch::p4e());
  auto row = paramsRow(p, rep);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0], "Y:N");
  EXPECT_EQ(row[1], "nta:128");
  EXPECT_EQ(row[3], "4:0");

  KernelSpec asum{BlasOp::Asum, ir::Scal::F64};
  auto rep2 = fko::analyzeKernel(asum.hilSource(), arch::p4e());
  auto row2 = paramsRow(fkoDefaults(rep2, arch::p4e()), rep2);
  EXPECT_EQ(row2[2], "n/a:0");  // no Y operand
}

TEST(LineSearch, TimeParamsMatchesEvaluate) {
  KernelSpec spec{BlasOp::Dot, ir::Scal::F32};
  auto rep = fko::analyzeKernel(spec.hilSource(), arch::p4e());
  auto p = fkoDefaults(rep, arch::p4e());
  SearchConfig c = fastConfig();
  uint64_t t1 = timeParams(spec, arch::p4e(), p, c);
  uint64_t t2 = timeParams(spec, arch::p4e(), p, c);
  EXPECT_GT(t1, 0u);
  EXPECT_EQ(t1, t2);
}

}  // namespace
}  // namespace ifko::search
