// Fleet-scale tuning: the deterministic worker partition must cover the
// job list exactly once, concurrent appenders must interleave the shared
// eval cache at line granularity (O_APPEND single-write appends), shard
// directories must dedup across writers, mergeFiles must be an
// order-independent set union, concurrent wisdom savers must never tear
// the file, and `tune-all --resume` must replay the trace into results
// identical to an uninterrupted run — with zero duplicate evaluations —
// after a kill -9 mid-batch.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "search/evalcache.h"
#include "search/orchestrator.h"
#include "search/resume.h"
#include "sim/timer.h"
#include "wisdom/wisdom.h"

namespace ifko::search {
namespace {

using kernels::BlasOp;
using kernels::KernelSpec;

SearchConfig smokeConfig(int jobs = 1) {
  SearchConfig c = SearchConfig::smoke();
  c.jobs = jobs;
  return c;
}

KernelJob jobFor(const KernelSpec& spec) {
  return {spec.name(), spec.hilSource(), &spec};
}

std::string tmpFile(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

EvalKey keyFor(const std::string& params) {
  EvalKey key;
  key.sourceHash = "cafebabe";
  key.machine = "P4E";
  key.context = "out-of-cache";
  key.n = 4096;
  key.seed = 42;
  key.testerN = 64;
  key.params = params;
  return key;
}

/// Every cache key persisted in `path`, duplicates preserved.
std::vector<std::string> cacheKeys(const std::string& path) {
  std::vector<std::string> keys;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EvalKey key;
    EvalRecord rec;
    EXPECT_TRUE(EvalCache::parseLine(line, &key, &rec)) << line;
    keys.push_back(key.str());
  }
  return keys;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// ---------------------------------------------------------------------------
// workerSlice: the no-coordination registry partition.

TEST(WorkerSlice, PartitionCoversEveryJobExactlyOnce) {
  std::vector<KernelJob> jobs;
  for (int i = 0; i < 7; ++i) jobs.push_back({"k" + std::to_string(i), "", nullptr});

  std::multiset<std::string> covered;
  for (int w = 0; w < 3; ++w) {
    auto slice = workerSlice(jobs, 3, w);
    // Worker w keeps exactly the jobs at indices i % 3 == w, in order.
    size_t expect = 0;
    for (size_t i = 0; i < jobs.size(); ++i)
      if (static_cast<int>(i % 3) == w) ++expect;
    ASSERT_EQ(slice.size(), expect);
    size_t at = 0;
    for (size_t i = 0; i < jobs.size(); ++i)
      if (static_cast<int>(i % 3) == w) EXPECT_EQ(slice[at++].name, jobs[i].name);
    for (const auto& j : slice) covered.insert(j.name);
  }
  ASSERT_EQ(covered.size(), jobs.size());  // no overlap, no gap
  for (const auto& j : jobs) EXPECT_EQ(covered.count(j.name), 1u);

  // One worker == no partition at all.
  EXPECT_EQ(workerSlice(jobs, 1, 0).size(), jobs.size());
  // More workers than jobs: the excess workers get empty slices.
  EXPECT_TRUE(workerSlice(jobs, 100, 99).empty());
}

// ---------------------------------------------------------------------------
// O_APPEND appends: many processes, one file, line granularity.

TEST(EvalCacheAppend, ConcurrentAppendersNeverTearLines) {
  const std::string path = tmpFile("dist_concurrent_append.jsonl");
  std::remove(path.c_str());
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 300;

  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      // Child: a writer process appending its own unique keys.  Every
      // insert is one whole line in a single write(2) on an O_APPEND fd,
      // so these four writers may interleave freely but never mid-line.
      EvalCache cache;
      if (!cache.open(path)) ::_exit(2);
      for (int i = 0; i < kPerWriter; ++i) {
        const std::string params =
            "w" + std::to_string(w) + "_" + std::to_string(i);
        cache.insert(keyFor(params), 1000 + i);
      }
      ::_exit(0);
    }
    children.push_back(pid);
  }
  for (pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  // Every line of the shared file parses, and every key survived.
  EvalCache merged;
  std::string err;
  ASSERT_TRUE(merged.open(path, &err)) << err;
  EXPECT_EQ(merged.damagedLines(), 0u);
  EXPECT_EQ(merged.size(), static_cast<size_t>(kWriters * kPerWriter));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Shard mode: load every shard, append to our own only.

TEST(EvalCacheShards, OpenDirDedupsAcrossShardsAndAppendsOwnOnly) {
  const std::string dir = tmpFile("dist_shards");
  std::filesystem::remove_all(dir);  // a previous run's shards would skew counts
  std::string err;

  EvalCache a;
  ASSERT_TRUE(a.openDir(dir, "w0", &err)) << err;
  a.insert(keyFor("sv=Y ur=4"), 111);

  EvalCache b;
  ASSERT_TRUE(b.openDir(dir, "w1", &err)) << err;
  EXPECT_EQ(b.size(), 1u);  // loaded w0's record at open
  // Re-inserting a key another shard already holds writes nothing...
  b.insert(keyFor("sv=Y ur=4"), 111);
  // ...and a fresh key lands in b's own shard file only.
  b.insert(keyFor("sv=Y ur=8"), 222);

  const auto w1Keys = cacheKeys(EvalCache::shardFileName(dir, "w1"));
  ASSERT_EQ(w1Keys.size(), 1u);
  EXPECT_EQ(w1Keys[0], keyFor("sv=Y ur=8").str());
  const auto w0Keys = cacheKeys(EvalCache::shardFileName(dir, "w0"));
  ASSERT_EQ(w0Keys.size(), 1u);
  EXPECT_EQ(w0Keys[0], keyFor("sv=Y ur=4").str());

  // The shard set is enumerable and sorted.
  const auto shards = EvalCache::shardFiles(dir, &err);
  ASSERT_EQ(shards.size(), 2u) << err;
  EXPECT_EQ(shards[0], EvalCache::shardFileName(dir, "w0"));
  EXPECT_EQ(shards[1], EvalCache::shardFileName(dir, "w1"));

  // A third worker opening the directory sees the union.
  EvalCache c;
  ASSERT_TRUE(c.openDir(dir, "w2", &err)) << err;
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.damagedLines(), 0u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// mergeFiles: order-independent set union with full accounting.

TEST(EvalCacheMerge, MergeDedupsCountsAndIsOrderIndependent) {
  const std::string fileA = tmpFile("dist_merge_a.jsonl");
  const std::string fileB = tmpFile("dist_merge_b.jsonl");
  const std::string outAB = tmpFile("dist_merge_ab.jsonl");
  const std::string outBA = tmpFile("dist_merge_ba.jsonl");

  EvalRecord rec;
  rec.cycles = 777;
  {
    std::ofstream a(fileA);
    a << EvalCache::formatLine(keyFor("k1"), rec) << "\n"
      << EvalCache::formatLine(keyFor("k2"), rec) << "\n";
    std::ofstream b(fileB);
    b << EvalCache::formatLine(keyFor("k2"), rec) << "\n"  // duplicate of A's
      << EvalCache::formatLine(keyFor("k3"), rec) << "\n"
      << "{not json — a torn tail\n";
  }

  std::string err;
  CacheMergeStats stats;
  ASSERT_TRUE(EvalCache::mergeFiles({fileA, fileB}, outAB, &err, &stats))
      << err;
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.lines, 4u);
  EXPECT_EQ(stats.unique, 3u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.damaged, 1u);

  // Merging in the opposite order produces byte-identical output (records
  // are pure functions of their keys; output is key-sorted).
  ASSERT_TRUE(EvalCache::mergeFiles({fileB, fileA}, outBA, &err));
  EXPECT_EQ(slurp(outAB), slurp(outBA));

  // The merged file is itself a loadable cache holding the union.
  EvalCache merged;
  ASSERT_TRUE(merged.open(outAB, &err)) << err;
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.damagedLines(), 0u);

  // A missing input is a hard error, not a silent partial merge.
  EXPECT_FALSE(EvalCache::mergeFiles({fileA, tmpFile("dist_no_such.jsonl")},
                                     outAB, &err));
  EXPECT_FALSE(err.empty());

  for (const auto& f : {fileA, fileB, outAB, outBA}) std::remove(f.c_str());
}

// ---------------------------------------------------------------------------
// WisdomStore::save: concurrent savers (pid-unique temp + rename) can race
// freely; the surviving file is always one saver's complete store.

TEST(WisdomConcurrency, ConcurrentSaversNeverTearTheFile) {
  const std::string path = tmpFile("dist_wisdom_race.jsonl");
  std::remove(path.c_str());
  constexpr int kSavers = 8;
  constexpr int kRecords = 12;
  constexpr int kRounds = 25;

  std::vector<pid_t> children;
  for (int w = 0; w < kSavers; ++w) {
    pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      // Every child saves the same 12-record store over and over; if the
      // temp name were shared (the old bug) two children would tear each
      // other's half-written temp before the rename.
      wisdom::WisdomStore store;
      for (int r = 0; r < kRecords; ++r) {
        wisdom::WisdomRecord rec;
        rec.key = {"hash" + std::to_string(r), "P4E", "out-of-cache", "2^12"};
        rec.kernel = "ddot";
        rec.params = "sv=Y ur=8";
        rec.bestCycles = 100 + r;
        rec.defaultCycles = 400 + r;
        rec.runId = "race-test";
        store.record(rec);
      }
      for (int i = 0; i < kRounds; ++i)
        if (!store.save(path)) ::_exit(2);
      ::_exit(0);
    }
    children.push_back(pid);
  }
  for (pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  wisdom::WisdomStore survivor;
  std::string err;
  ASSERT_TRUE(survivor.load(path, &err)) << err;
  EXPECT_EQ(survivor.damagedLines(), 0u);
  EXPECT_EQ(survivor.schemaSkippedLines(), 0u);
  EXPECT_EQ(survivor.size(), static_cast<size_t>(kRecords));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Trace replay: what --resume trusts.

TEST(Resume, MissingTraceIsAnExplicitError) {
  std::string err;
  ResumePlan plan = loadResumePlan(tmpFile("dist_no_trace.jsonl"), "P4E",
                                   "out-of-cache", 4096, "line", &err);
  EXPECT_TRUE(plan.completed.empty());
  EXPECT_FALSE(err.empty());
}

TEST(Resume, ReplayPairsOnlyMatchingCompletions) {
  const std::string path = tmpFile("dist_replay.jsonl");
  {
    std::ofstream out(path);
    out << R"({"event":"run_start","machine":"P4E","context":"out-of-cache","n":4096,"strategy":"line"})"
        << "\n";
    // Completed at our configuration: trusted.
    out << R"({"event":"kernel_start","kernel":"ddot","machine":"P4E","context":"out-of-cache","n":4096,"strategy":"line"})"
        << "\n";
    out << R"({"event":"kernel_end","kernel":"ddot","ok":true,"best_params":"sv=Y ur=8","best_cycles":123,"default_cycles":456,"evaluations":17,"proposals":29})"
        << "\n";
    // Completed, but on another machine: never armed, never trusted.
    out << R"({"event":"kernel_start","kernel":"sdot","machine":"Opteron","context":"out-of-cache","n":4096,"strategy":"line"})"
        << "\n";
    out << R"({"event":"kernel_end","kernel":"sdot","ok":true,"best_params":"sv=Y","best_cycles":1,"default_cycles":2,"evaluations":3,"proposals":4})"
        << "\n";
    // Failed at our configuration: re-tunes (warm), not completed.
    out << R"({"event":"kernel_start","kernel":"sasum","machine":"P4E","context":"out-of-cache","n":4096,"strategy":"line"})"
        << "\n";
    out << R"({"event":"kernel_end","kernel":"sasum","ok":false,"error":"boom"})"
        << "\n";
    // In flight when the run died: start without end.
    out << R"({"event":"kernel_start","kernel":"scopy","machine":"P4E","context":"out-of-cache","n":4096,"strategy":"line"})"
        << "\n";
    // The torn tail a kill -9 leaves behind.
    out << R"({"event":"kern)";
  }

  std::string err;
  ResumePlan plan =
      loadResumePlan(path, "P4E", "out-of-cache", 4096, "line", &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(plan.runs, 1);
  EXPECT_EQ(plan.damagedLines, 1u);
  ASSERT_EQ(plan.completed.size(), 1u);
  ASSERT_TRUE(plan.completed.count("ddot"));
  const CompletedKernel& done = plan.completed.at("ddot");
  EXPECT_EQ(done.bestParams, "sv=Y ur=8");
  EXPECT_EQ(done.bestCycles, 123u);
  EXPECT_EQ(done.defaultCycles, 456u);
  EXPECT_EQ(done.evaluations, 17);
  EXPECT_EQ(done.proposals, 29);

  // The completed record round-trips into a usable TuneResult.
  TuneResult result = resumedTuneResult(done);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.bestCycles, 123u);
  EXPECT_EQ(result.defaultCycles, 456u);
  EXPECT_EQ(result.evaluations, 17);

  // A recorded winner that no longer parses fails loudly, not silently.
  CompletedKernel bad = done;
  bad.bestParams = "zz=?";
  EXPECT_FALSE(resumedTuneResult(bad).ok);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The acceptance test: kill -9 mid-batch at a deterministic point, resume,
// and end with results identical to an uninterrupted run — zero duplicate
// evaluations persisted.

TEST(Resume, KillNineMidBatchResumesToIdenticalResults) {
  const std::string cachePath = tmpFile("dist_kill_cache.jsonl");
  const std::string tracePath = tmpFile("dist_kill_trace.jsonl");
  const std::string refCachePath = tmpFile("dist_ref_cache.jsonl");
  const std::string refTracePath = tmpFile("dist_ref_trace.jsonl");
  for (const auto& f : {cachePath, tracePath, refCachePath, refTracePath})
    std::remove(f.c_str());

  const KernelSpec specs[] = {KernelSpec{BlasOp::Dot, ir::Scal::F64},
                              KernelSpec{BlasOp::Copy, ir::Scal::F32},
                              KernelSpec{BlasOp::Asum, ir::Scal::F32}};
  std::vector<KernelJob> jobs;
  for (const KernelSpec& s : specs) jobs.push_back(jobFor(s));

  // The uninterrupted reference run.
  std::map<std::string, TuneResult> reference;
  {
    OrchestratorConfig oc;
    oc.search = smokeConfig(1);
    oc.cachePath = refCachePath;
    oc.tracePath = refTracePath;
    std::string err;
    Orchestrator orch(arch::p4e(), oc, &err);
    ASSERT_TRUE(err.empty()) << err;
    BatchOutcome out = orch.tuneAll(jobs);
    ASSERT_EQ(out.failures(), 0);
    for (const auto& k : out.kernels) reference[k.name] = k.result;
  }

  // The doomed run: a child process that dies by SIGKILL the instant the
  // second kernel completes — a deterministic kernel boundary, so the
  // trace holds exactly two completions and the cache exactly their
  // evaluations.
  pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    OrchestratorConfig oc;
    oc.search = smokeConfig(1);
    oc.cachePath = cachePath;
    oc.tracePath = tracePath;
    Orchestrator orch(arch::p4e(), oc);
    int completed = 0;
    (void)orch.tuneAll(jobs, [&](const KernelOutcome&) {
      if (++completed == 2) ::raise(SIGKILL);
    });
    ::_exit(7);  // unreachable: the kill must land first
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Resume: replay the trace, skip the two completed kernels, tune the
  // rest against the warm cache.
  std::string err;
  ResumePlan plan = loadResumePlan(
      tracePath, "P4E",
      std::string(sim::contextName(sim::TimeContext::OutOfCache)), 4096,
      "line", &err);
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(plan.completed.size(), 2u);

  std::map<std::string, TuneResult> resumed;
  std::vector<KernelJob> remaining;
  for (const KernelJob& job : jobs) {
    auto it = plan.completed.find(job.name);
    if (it != plan.completed.end())
      resumed[job.name] = resumedTuneResult(it->second);
    else
      remaining.push_back(job);
  }
  ASSERT_EQ(remaining.size(), 1u);
  {
    OrchestratorConfig oc;
    oc.search = smokeConfig(1);
    oc.cachePath = cachePath;
    oc.tracePath = tracePath;
    Orchestrator orch(arch::p4e(), oc, &err);
    ASSERT_TRUE(err.empty()) << err;
    BatchOutcome out = orch.tuneAll(remaining);
    ASSERT_EQ(out.failures(), 0);
    for (const auto& k : out.kernels) resumed[k.name] = k.result;
  }

  // Identical final results: every kernel's winner, cycle counts, and
  // evaluation tally match the uninterrupted run (the kill landed at a
  // kernel boundary, so even the in-flight accounting is unchanged).
  ASSERT_EQ(resumed.size(), reference.size());
  for (const auto& [name, ref] : reference) {
    ASSERT_TRUE(resumed.count(name)) << name;
    const TuneResult& got = resumed.at(name);
    ASSERT_TRUE(got.ok) << got.error;
    EXPECT_EQ(got.best, ref.best) << name;
    EXPECT_EQ(got.bestCycles, ref.bestCycles) << name;
    EXPECT_EQ(got.defaultCycles, ref.defaultCycles) << name;
    EXPECT_EQ(got.evaluations, ref.evaluations) << name;
  }

  // Zero duplicate evaluations persisted across kill + resume, and the
  // cache holds exactly the evaluations the uninterrupted run paid.
  const std::vector<std::string> keys = cacheKeys(cachePath);
  const std::set<std::string> uniqueKeys(keys.begin(), keys.end());
  EXPECT_EQ(uniqueKeys.size(), keys.size()) << "duplicate evaluations persisted";
  const std::vector<std::string> refKeys = cacheKeys(refCachePath);
  EXPECT_EQ(uniqueKeys,
            std::set<std::string>(refKeys.begin(), refKeys.end()));

  for (const auto& f : {cachePath, tracePath, refCachePath, refTracePath})
    std::remove(f.c_str());
}

}  // namespace
}  // namespace ifko::search
