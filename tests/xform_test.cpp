// Property tests for FKO's fundamental transforms: ANY combination of
// tuning parameters must preserve kernel semantics on the functional
// simulator (the paper's tester exists precisely because this invariant is
// what empirical tuning leans on).
#include <gtest/gtest.h>

#include "analysis/loopinfo.h"
#include "arch/machine.h"
#include "hil/lower.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "kernels/registry.h"
#include "kernels/tester.h"
#include "opt/loop_xform.h"
#include "support/rng.h"

namespace ifko {
namespace {

using kernels::BlasOp;
using kernels::KernelSpec;

ir::Function lowerKernel(const KernelSpec& spec) {
  DiagnosticEngine d;
  auto fn = hil::compileHil(spec.hilSource(), d);
  EXPECT_TRUE(fn.has_value()) << d.str();
  return std::move(*fn);
}

// ---------------------------------------------------------------------------
// Loop analysis expectations per kernel.

TEST(LoopAnalysis, DotIsVectorizableWithOneAccumulator) {
  auto fn = lowerKernel({BlasOp::Dot, ir::Scal::F64});
  auto info = analysis::analyzeLoop(fn);
  ASSERT_TRUE(info.found) << info.problem;
  EXPECT_TRUE(info.vectorizable) << info.whyNotVectorizable;
  EXPECT_EQ(info.accumulators.size(), 1u);
  EXPECT_EQ(info.arrays.size(), 2u);
  EXPECT_TRUE(info.arrays[0].loaded);
  EXPECT_FALSE(info.arrays[0].stored);
  EXPECT_FALSE(info.ivarUsedInBody);
  EXPECT_TRUE(info.sideBlocks.empty());
}

TEST(LoopAnalysis, AsumIsVectorizable) {
  auto fn = lowerKernel({BlasOp::Asum, ir::Scal::F32});
  auto info = analysis::analyzeLoop(fn);
  ASSERT_TRUE(info.found);
  EXPECT_TRUE(info.vectorizable) << info.whyNotVectorizable;
  EXPECT_EQ(info.accumulators.size(), 1u);
}

TEST(LoopAnalysis, IamaxIsNotVectorizable) {
  // "neither icc nor ifko automatically vectorize" iamax (paper Section 3.3).
  auto fn = lowerKernel({BlasOp::Iamax, ir::Scal::F64});
  auto info = analysis::analyzeLoop(fn);
  ASSERT_TRUE(info.found) << info.problem;
  EXPECT_FALSE(info.vectorizable);
  EXPECT_FALSE(info.sideBlocks.empty());
  EXPECT_TRUE(info.ivarUsedInBody);
  EXPECT_TRUE(info.accumulators.empty());
}

TEST(LoopAnalysis, SwapHasTwoStoredArraysNoAccumulators) {
  auto fn = lowerKernel({BlasOp::Swap, ir::Scal::F32});
  auto info = analysis::analyzeLoop(fn);
  ASSERT_TRUE(info.found);
  EXPECT_TRUE(info.vectorizable) << info.whyNotVectorizable;
  EXPECT_EQ(info.arrays.size(), 2u);
  for (const auto& a : info.arrays) {
    EXPECT_TRUE(a.loaded);
    EXPECT_TRUE(a.stored);
    EXPECT_TRUE(a.prefetchable());
    EXPECT_EQ(a.bumpBytes, 4);
  }
}

TEST(LoopAnalysis, AxpyYIsNotAnAccumulator) {
  // y is reloaded each iteration: not a valid AE target.
  auto fn = lowerKernel({BlasOp::Axpy, ir::Scal::F64});
  auto info = analysis::analyzeLoop(fn);
  ASSERT_TRUE(info.found);
  EXPECT_TRUE(info.accumulators.empty());
}

TEST(LoopAnalysis, NoPrefMarkupDisablesPrefetch) {
  DiagnosticEngine d;
  auto fn = hil::compileHil(R"(
ROUTINE t;
PARAMS :: X = VEC(in,nopref), N = INT;
TYPE double;
SCALARS :: x, s;
s = 0.0;
LOOP i = 0, N
LOOP_BODY
  x = X[0];
  s += x;
  X += 1;
LOOP_END
RETURN s;
END
)", d);
  ASSERT_TRUE(fn.has_value()) << d.str();
  auto info = analysis::analyzeLoop(*fn);
  ASSERT_TRUE(info.found);
  ASSERT_EQ(info.arrays.size(), 1u);
  EXPECT_FALSE(info.arrays[0].prefetchable());
}

// ---------------------------------------------------------------------------
// Structural expectations.

size_t countOp(const ir::Function& fn, ir::Op op) {
  size_t n = 0;
  for (const auto& bb : fn.blocks)
    for (const auto& in : bb.insts)
      if (in.op == op) ++n;
  return n;
}

TEST(Transforms, VectorizationProducesVectorOps) {
  auto fn = lowerKernel({BlasOp::Dot, ir::Scal::F32});
  opt::TuningParams p;
  p.simdVectorize = true;
  std::string err;
  auto out = opt::applyFundamentalTransforms(fn, p, arch::p4e(), &err);
  ASSERT_TRUE(out.has_value()) << err;
  EXPECT_GT(countOp(*out, ir::Op::VLd), 0u);
  EXPECT_GT(countOp(*out, ir::Op::VMul), 0u);
  EXPECT_EQ(countOp(*out, ir::Op::VHAdd), 1u);
  // Remainder loop retains scalar ops.
  EXPECT_GT(countOp(*out, ir::Op::FLd), 0u);
}

TEST(Transforms, UnrollDuplicatesBody) {
  auto fn = lowerKernel({BlasOp::Copy, ir::Scal::F64});
  opt::TuningParams p1, p4;
  p1.simdVectorize = p4.simdVectorize = false;
  p1.unroll = 1;
  p4.unroll = 4;
  std::string err;
  auto f1 = opt::applyFundamentalTransforms(fn, p1, arch::p4e(), &err);
  auto f4 = opt::applyFundamentalTransforms(fn, p4, arch::p4e(), &err);
  ASSERT_TRUE(f1 && f4) << err;
  // UR=1 has no remainder loop (step 1); UR=4 has 4 main copies plus the
  // scalar remainder.
  EXPECT_EQ(countOp(*f1, ir::Op::FLd), 1u);
  EXPECT_EQ(countOp(*f4, ir::Op::FLd), 5u);
}

TEST(Transforms, WntReplacesMainLoopStores) {
  auto fn = lowerKernel({BlasOp::Copy, ir::Scal::F64});
  opt::TuningParams p;
  p.simdVectorize = true;
  p.nonTemporalWrites = true;
  std::string err;
  auto out = opt::applyFundamentalTransforms(fn, p, arch::p4e(), &err);
  ASSERT_TRUE(out.has_value()) << err;
  EXPECT_GT(countOp(*out, ir::Op::VStNT), 0u);
  EXPECT_EQ(countOp(*out, ir::Op::VSt), 0u);
  // The scalar remainder keeps temporal stores.
  EXPECT_EQ(countOp(*out, ir::Op::FSt), 1u);
}

TEST(Transforms, PrefetchCountMatchesLinesPerIteration) {
  auto fn = lowerKernel({BlasOp::Asum, ir::Scal::F64});
  opt::TuningParams p;
  p.simdVectorize = true;  // 2 elements per copy
  p.unroll = 8;            // 16 doubles = 128 bytes = 2 lines per iteration
  p.prefetch["X"] = {true, ir::PrefKind::NTA, 1024};
  std::string err;
  auto out = opt::applyFundamentalTransforms(fn, p, arch::p4e(), &err);
  ASSERT_TRUE(out.has_value()) << err;
  EXPECT_EQ(countOp(*out, ir::Op::Pref), 2u);
}

TEST(Transforms, PrefetchWFallsBackWithoutPrefW) {
  auto fn = lowerKernel({BlasOp::Asum, ir::Scal::F64});
  opt::TuningParams p;
  p.prefetch["X"] = {true, ir::PrefKind::W, 512};
  std::string err;
  auto out = opt::applyFundamentalTransforms(fn, p, arch::p4e(), &err);
  ASSERT_TRUE(out.has_value()) << err;
  for (const auto& bb : out->blocks)
    for (const auto& in : bb.insts)
      if (in.op == ir::Op::Pref) {
        EXPECT_NE(in.pref, ir::PrefKind::W);
      }
}

TEST(Transforms, AccumExpansionCreatesExtraAccumulators) {
  auto fn = lowerKernel({BlasOp::Dot, ir::Scal::F64});
  opt::TuningParams p;
  p.simdVectorize = true;
  p.unroll = 4;
  p.accumExpand = 4;
  std::string err;
  auto out = opt::applyFundamentalTransforms(fn, p, arch::p4e(), &err);
  ASSERT_TRUE(out.has_value()) << err;
  // 4 vector accumulators: 1 SV init + 3 AE inits.
  EXPECT_EQ(countOp(*out, ir::Op::VZero), 4u);
}

TEST(Transforms, LoopControlOffUsesExplicitCompare) {
  auto fn = lowerKernel({BlasOp::Copy, ir::Scal::F64});
  opt::TuningParams on, off;
  on.optimizeLoopControl = true;
  off.optimizeLoopControl = false;
  std::string err;
  auto fOn = opt::applyFundamentalTransforms(fn, on, arch::p4e(), &err);
  auto fOff = opt::applyFundamentalTransforms(fn, off, arch::p4e(), &err);
  ASSERT_TRUE(fOn && fOff);
  EXPECT_GT(countOp(*fOn, ir::Op::IAddCC), 0u);
  EXPECT_GT(countOp(*fOff, ir::Op::ICmpI), countOp(*fOn, ir::Op::ICmpI));
}

// ---------------------------------------------------------------------------
// Semantic preservation sweep: every kernel x a grid of parameter sets x
// several lengths (including remainder-heavy ones).

struct SweepCase {
  KernelSpec spec;
  opt::TuningParams params;
  int label;
};

std::vector<opt::TuningParams> paramGrid() {
  std::vector<opt::TuningParams> grid;
  for (bool sv : {false, true}) {
    for (int ur : {1, 2, 3, 4, 8}) {
      opt::TuningParams p;
      p.simdVectorize = sv;
      p.unroll = ur;
      grid.push_back(p);
    }
  }
  {
    opt::TuningParams p;  // AE-heavy
    p.unroll = 6;
    p.accumExpand = 3;
    grid.push_back(p);
    p.simdVectorize = false;
    grid.push_back(p);
  }
  {
    opt::TuningParams p;  // prefetch + WNT + LC off
    p.unroll = 4;
    p.prefetch["X"] = {true, ir::PrefKind::NTA, 512};
    p.prefetch["Y"] = {true, ir::PrefKind::T0, 320};
    p.nonTemporalWrites = true;
    p.optimizeLoopControl = false;
    grid.push_back(p);
  }
  {
    opt::TuningParams p;  // prefetch at top, scalar
    p.simdVectorize = false;
    p.unroll = 5;  // non-power-of-two
    p.prefetch["X"] = {true, ir::PrefKind::T1, 128};
    p.prefSched = opt::PrefSched::Top;
    grid.push_back(p);
  }
  return grid;
}

class XformSemantics
    : public testing::TestWithParam<std::tuple<KernelSpec, int>> {};

TEST_P(XformSemantics, PreservesKernelSemantics) {
  auto [spec, gridIdx] = GetParam();
  opt::TuningParams params = paramGrid()[static_cast<size_t>(gridIdx)];
  auto lowered = lowerKernel(spec);
  std::string err;
  auto fn =
      opt::applyFundamentalTransforms(lowered, params, arch::p4e(), &err);
  ASSERT_TRUE(fn.has_value()) << spec.name() << " " << params.str() << ": "
                              << err;
  auto problems = ir::verify(*fn);
  ASSERT_TRUE(problems.empty())
      << spec.name() << " " << params.str() << "\n"
      << problems[0] << "\n"
      << ir::print(*fn);
  for (int64_t n : {0, 1, 2, 3, 5, 7, 8, 15, 16, 63, 64, 100, 257}) {
    auto outcome = kernels::testKernel(spec, *fn, n);
    ASSERT_TRUE(outcome.ok) << spec.name() << " n=" << n << " "
                            << params.str() << ": " << outcome.message;
  }
}

std::string sweepName(
    const testing::TestParamInfo<std::tuple<KernelSpec, int>>& info) {
  return std::get<0>(info.param).name() + "_g" +
         std::to_string(std::get<1>(info.param));
}

std::vector<KernelSpec> allSpecs() { return kernels::allKernels(); }

INSTANTIATE_TEST_SUITE_P(
    Grid, XformSemantics,
    testing::Combine(testing::ValuesIn(allSpecs()),
                     testing::Range(0, static_cast<int>(paramGrid().size()))),
    sweepName);

// Randomized property sweep: random parameter combinations on random
// kernels must stay correct.
TEST(XformSemantics, RandomizedParameterFuzz) {
  SplitMix64 rng(20260705);
  const auto& specs = kernels::allKernels();
  for (int iter = 0; iter < 60; ++iter) {
    const auto& spec = specs[rng.below(specs.size())];
    opt::TuningParams p;
    p.simdVectorize = rng.below(2) == 0;
    p.unroll = static_cast<int>(rng.below(12)) + 1;
    p.accumExpand = static_cast<int>(rng.below(4)) + 1;
    p.optimizeLoopControl = rng.below(2) == 0;
    p.nonTemporalWrites = rng.below(2) == 0;
    p.prefSched = rng.below(2) == 0 ? opt::PrefSched::Spread : opt::PrefSched::Top;
    for (const char* arr : {"X", "Y"}) {
      if (rng.below(2) == 0) {
        opt::PrefParam pp;
        pp.enabled = true;
        pp.kind = static_cast<ir::PrefKind>(rng.below(4));
        pp.distBytes = static_cast<int>(rng.below(32)) * 64;
        p.prefetch[arr] = pp;
      }
    }
    auto lowered = lowerKernel(spec);
    std::string err;
    auto fn = opt::applyFundamentalTransforms(lowered, p, arch::opteron(), &err);
    ASSERT_TRUE(fn.has_value()) << spec.name() << " " << p.str() << ": " << err;
    int64_t n = static_cast<int64_t>(rng.below(300));
    auto outcome = kernels::testKernel(spec, *fn, n, rng.next());
    ASSERT_TRUE(outcome.ok) << spec.name() << " n=" << n << " " << p.str()
                            << ": " << outcome.message;
  }
}

}  // namespace
}  // namespace ifko
