// Round-trip property: parse(print(fn)) reconstructs the function, for
// every kernel at every interesting pipeline stage, and the reconstruction
// is operationally identical (same printed form, verifies, and computes the
// same results on the functional simulator).
#include <gtest/gtest.h>

#include "arch/machine.h"
#include "atlas/handkernels.h"
#include "fko/compiler.h"
#include "hil/lower.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "kernels/registry.h"
#include "kernels/tester.h"

namespace ifko::ir {
namespace {

void expectRoundTrip(const Function& fn, const std::string& label) {
  std::string text = print(fn);
  std::string error;
  auto back = parse(text, &error);
  ASSERT_TRUE(back.has_value()) << label << ": " << error << "\n" << text;
  EXPECT_EQ(print(*back), text) << label;
  EXPECT_EQ(back->name, fn.name);
  EXPECT_EQ(back->retType, fn.retType);
  EXPECT_EQ(back->regAllocated, fn.regAllocated);
  EXPECT_EQ(back->numSpillSlots, fn.numSpillSlots);
  EXPECT_EQ(back->params.size(), fn.params.size());
  EXPECT_EQ(back->loop.valid, fn.loop.valid);
  if (fn.loop.valid) {
    EXPECT_EQ(back->loop.header, fn.loop.header);
    EXPECT_EQ(back->loop.latch, fn.loop.latch);
    EXPECT_EQ(back->loop.dir, fn.loop.dir);
  }
  EXPECT_EQ(verify(*back).size(), verify(fn).size()) << label;
}

TEST(IrParser, RoundTripsEveryLoweredKernel) {
  for (const auto& spec : kernels::extendedKernels()) {
    DiagnosticEngine d;
    auto fn = hil::compileHil(spec.hilSource(), d);
    ASSERT_TRUE(fn.has_value());
    expectRoundTrip(*fn, spec.name() + " (lowered)");
  }
}

TEST(IrParser, RoundTripsOptimizedAndAllocatedKernels) {
  for (const auto& spec : kernels::allKernels()) {
    fko::CompileOptions opts;
    opts.tuning.unroll = 4;
    opts.tuning.accumExpand = 2;
    opts.tuning.prefetch["X"] = {true, ir::PrefKind::T0, 512};
    opts.tuning.nonTemporalWrites = true;
    auto r = fko::compileKernel(spec.hilSource(), opts, arch::opteron());
    ASSERT_TRUE(r.ok) << spec.name();
    expectRoundTrip(r.fn, spec.name() + " (compiled)");
  }
}

TEST(IrParser, RoundTripsHandWrittenKernels) {
  expectRoundTrip(atlas::iamaxSimd(Scal::F32), "iamax_simd/f32");
  expectRoundTrip(atlas::copyBlockFetch(Scal::F64), "blockfetch");
  expectRoundTrip(atlas::copyCisc(Scal::F32, true), "cisc_nt");
}

TEST(IrParser, ParsedKernelComputesIdentically) {
  kernels::KernelSpec spec{kernels::BlasOp::Dot, ir::Scal::F64};
  fko::CompileOptions opts;
  opts.tuning.unroll = 3;
  auto r = fko::compileKernel(spec.hilSource(), opts, arch::p4e());
  ASSERT_TRUE(r.ok);
  std::string error;
  auto back = parse(print(r.fn), &error);
  ASSERT_TRUE(back.has_value()) << error;
  auto outcome = kernels::testKernel(spec, *back, 100);
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

TEST(IrParser, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(parse("", &error).has_value());
  EXPECT_FALSE(parse("not a function", &error).has_value());
  EXPECT_FALSE(parse("func f()\n  imovi rv0, 1\n", &error).has_value());
  EXPECT_NE(error.find("before any block"), std::string::npos);
  EXPECT_FALSE(parse("func f()\nbb0:\n  bogusop r1, r2\n", &error).has_value());
  EXPECT_NE(error.find("bogusop"), std::string::npos);
  EXPECT_FALSE(parse("func f()\nbb0:\n  imovi rv0\n", &error).has_value());
  EXPECT_FALSE(parse("func f(\n", &error).has_value());
}

TEST(IrParser, MalformedIntegersFailLoudlyInsteadOfParsingAsZero) {
  // Every integer field used to go through atoi/strtol, which silently
  // accepts a numeric prefix (or yields 0 on garbage); all of them are now
  // strict whole-token parses with a diagnostic.
  std::string error;

  // Block label.
  EXPECT_FALSE(parse("func f()\nbbX:\n  ret\n", &error).has_value());
  EXPECT_NE(error.find("bad block label"), std::string::npos) << error;
  EXPECT_FALSE(parse("func f()\nbb1x:\n  ret\n", &error).has_value());
  EXPECT_NE(error.find("bad block label"), std::string::npos) << error;

  // Spill count in the regalloc marker.
  EXPECT_FALSE(
      parse("func f() [regalloc, spills=two]\nbb0:\n  ret\n", &error)
          .has_value());
  EXPECT_NE(error.find("bad spill count"), std::string::npos) << error;
  EXPECT_TRUE(
      parse("func f() [regalloc, spills=2]\nbb0:\n  ret\n", &error)
          .has_value())
      << error;

  // Loop-mark block references.
  EXPECT_FALSE(
      parse("func f()\n  ; tuned loop: preheader=bb0 header=bbQ latch=bb1 "
            "exit=bb2 ivar=r0 N=r1 up\nbb0:\n  ret\n",
            &error)
          .has_value());
  EXPECT_NE(error.find("bad loop-mark block"), std::string::npos) << error;

  // Memory-operand scale and displacement.
  EXPECT_FALSE(
      parse("func f(f64* X{r}=r0)\nbb0:\n  fld.f64 x0, [r0 + r1*8z + 0]\n"
            "  ret\n",
            &error)
          .has_value());
  EXPECT_NE(error.find("bad scale"), std::string::npos) << error;
  EXPECT_FALSE(
      parse("func f(f64* X{r}=r0)\nbb0:\n  fld.f64 x0, [r0 + 8q]\n  ret\n",
            &error)
          .has_value());
  EXPECT_NE(error.find("bad displacement"), std::string::npos) << error;

  // Immediates and branch targets.
  EXPECT_FALSE(
      parse("func f()\nbb0:\n  imovi r0, 1x\n  ret\n", &error).has_value());
  EXPECT_NE(error.find("bad immediate"), std::string::npos) << error;
  EXPECT_FALSE(
      parse("func f()\nbb0:\n  jmp bb1y\nbb1:\n  ret\n", &error).has_value());
  EXPECT_NE(error.find("bad branch target"), std::string::npos) << error;
}

TEST(IrParser, ParsesNegativeDisplacementsAndIndexedMem) {
  Function fn;
  fn.name = "m";
  Reg p = fn.newIntReg();
  Reg idx = fn.newIntReg();
  fn.params.push_back({.name = "X", .kind = ParamKind::PtrF64, .reg = p});
  fn.params.push_back({.name = "I", .kind = ParamKind::Int, .reg = idx});
  fn.addBlock();
  fn.blocks[0].insts.push_back(
      Inst{.op = Op::FLd, .type = Scal::F64, .dst = fn.newFpReg(),
           .mem = Mem{.base = p, .index = idx, .scale = 8, .disp = -16}});
  fn.blocks[0].insts.push_back(Inst{.op = Op::Ret});
  expectRoundTrip(fn, "indexed-negative-disp");
}

}  // namespace
}  // namespace ifko::ir
