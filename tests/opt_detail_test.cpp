// Optimization-layer detail tests: liveness, allocator quality comparison,
// prefetch scheduling, parameter serialization.
#include <gtest/gtest.h>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "hil/lower.h"
#include "ir/builder.h"
#include "kernels/registry.h"
#include "kernels/tester.h"
#include "opt/liveness.h"
#include "opt/loop_xform.h"
#include "opt/regalloc.h"
#include "sim/timer.h"

namespace ifko::opt {
namespace {

using ir::Builder;
using ir::Cond;
using ir::Op;
using ir::Reg;
using ir::Scal;

TEST(Liveness, StraightLine) {
  ir::Function fn;
  fn.name = "l";
  Builder b(fn, fn.addBlock());
  Reg a = b.imovi(1);
  Reg c = b.iaddi(a, 2);
  b.retVal(c);
  fn.retType = ir::RetType::Int;
  auto lv = computeLiveness(fn);
  int32_t bb = fn.blocks[0].id;
  EXPECT_TRUE(lv.liveIn[bb].empty());
  EXPECT_TRUE(lv.liveOut[bb].empty());
}

TEST(Liveness, AcrossLoopBackedge) {
  // acc defined before the loop and accumulated inside: live around the
  // backedge and out of the loop.
  ir::Function fn;
  fn.name = "loop";
  int32_t b0 = fn.addBlock();
  int32_t b1 = fn.addBlock();
  int32_t b2 = fn.addBlock();
  Reg n = fn.newIntReg();
  fn.params.push_back({.name = "N", .kind = ir::ParamKind::Int, .reg = n});
  Builder e(fn, b0);
  Reg acc = e.fldi(Scal::F64, 0.0);
  Reg cnt = e.imov(n);
  Builder l(fn, b1);
  Reg one = l.fldi(Scal::F64, 1.0);
  l.emit({.op = Op::FAdd, .type = Scal::F64, .dst = acc, .src1 = acc,
          .src2 = one});
  l.emit({.op = Op::IAddCC, .dst = cnt, .src1 = cnt, .imm = -1});
  l.jcc(Cond::GT, b1);
  Builder x(fn, b2);
  x.retVal(acc);
  fn.retType = ir::RetType::F64;

  auto lv = computeLiveness(fn);
  EXPECT_TRUE(lv.liveIn[b1].count(regKey(acc)));
  EXPECT_TRUE(lv.liveOut[b1].count(regKey(acc)));
  EXPECT_TRUE(lv.liveIn[b2].count(regKey(acc)));
  EXPECT_FALSE(lv.liveOut[b2].count(regKey(acc)));
  EXPECT_TRUE(lv.liveIn[b1].count(regKey(cnt)));
  EXPECT_FALSE(lv.liveIn[b2].count(regKey(cnt)));
}

TEST(Liveness, UsedRegsCoversMemOperands) {
  ir::Function fn;
  fn.name = "m";
  Reg base = fn.newIntReg();
  Reg idx = fn.newIntReg();
  ir::Inst ld{.op = Op::FLd, .type = Scal::F64, .dst = fn.newFpReg(),
              .mem = ir::memIdx(base, idx, 8, 0)};
  auto used = usedRegs(ld);
  ASSERT_EQ(used.size(), 2u);
  EXPECT_EQ(used[0], base);
  EXPECT_EQ(used[1], idx);
  EXPECT_EQ(definedReg(ld), ld.dst);
}

TEST(RegAlloc, LoopAwareAllocatorSpillsOutsideTheLoop) {
  // High pressure with a loop: the loop-aware allocator must produce code
  // at least as fast as the Basic allocator (it spills cold values first).
  kernels::KernelSpec spec{kernels::BlasOp::Dot, ir::Scal::F64};
  fko::CompileOptions ls, basic;
  ls.tuning.unroll = 16;
  ls.tuning.accumExpand = 8;
  basic.tuning = ls.tuning;
  ls.regalloc = RegAllocKind::LinearScan;
  basic.regalloc = RegAllocKind::Basic;
  auto a = fko::compileKernel(spec.hilSource(), ls, arch::opteron());
  auto b = fko::compileKernel(spec.hilSource(), basic, arch::opteron());
  ASSERT_TRUE(a.ok && b.ok) << a.error << b.error;
  // Both are correct...
  EXPECT_TRUE(kernels::testKernel(spec, a.fn, 300).ok);
  EXPECT_TRUE(kernels::testKernel(spec, b.fn, 300).ok);
  // ...and the loop-aware one is not slower in cache (where spill traffic
  // dominates).
  auto ta = sim::timeKernel(arch::opteron(), a.fn, spec, 1024,
                            sim::TimeContext::InL2);
  auto tb = sim::timeKernel(arch::opteron(), b.fn, spec, 1024,
                            sim::TimeContext::InL2);
  EXPECT_LE(ta.cycles, tb.cycles + tb.cycles / 10);
}

TEST(PrefSched, TopAndSpreadPlaceTheSameCount) {
  kernels::KernelSpec spec{kernels::BlasOp::Asum, ir::Scal::F64};
  DiagnosticEngine d;
  auto lowered = hil::compileHil(spec.hilSource(), d);
  ASSERT_TRUE(lowered.has_value());
  for (auto sched : {PrefSched::Top, PrefSched::Spread}) {
    TuningParams p;
    p.unroll = 16;  // 32 doubles = 4 lines/iter
    p.prefetch["X"] = {true, ir::PrefKind::NTA, 512};
    p.prefSched = sched;
    std::string err;
    auto out = applyFundamentalTransforms(*lowered, p, arch::p4e(), &err);
    ASSERT_TRUE(out.has_value()) << err;
    size_t prefs = 0;
    for (const auto& bb : out->blocks)
      for (const auto& in : bb.insts) prefs += in.op == Op::Pref;
    EXPECT_EQ(prefs, 4u);
    EXPECT_TRUE(kernels::testKernel(spec, *out, 200).ok);
  }
}

TEST(TuningParams, StringKeyDistinguishesEveryDimension) {
  // The search memoizes on str(): every tunable field must appear.
  TuningParams base;
  std::vector<TuningParams> variants;
  for (int i = 0; i < 8; ++i) variants.push_back(base);
  variants[0].simdVectorize = false;
  variants[1].unroll = 7;
  variants[2].accumExpand = 3;
  variants[3].nonTemporalWrites = true;
  variants[4].optimizeLoopControl = false;
  variants[5].prefetch["X"] = {true, ir::PrefKind::T1, 640};
  variants[6].blockFetch = true;
  variants[7].ciscIndexing = true;
  for (size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(variants[i].str(), base.str()) << i;
    for (size_t j = i + 1; j < variants.size(); ++j)
      EXPECT_NE(variants[i].str(), variants[j].str()) << i << "," << j;
  }
}

TEST(TuningParams, PrefetchKindAndDistanceInKey) {
  TuningParams a, b;
  a.prefetch["X"] = {true, ir::PrefKind::NTA, 512};
  b.prefetch["X"] = {true, ir::PrefKind::T0, 512};
  EXPECT_NE(a.str(), b.str());
  b.prefetch["X"] = {true, ir::PrefKind::NTA, 1024};
  EXPECT_NE(a.str(), b.str());
}

}  // namespace
}  // namespace ifko::opt
