#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/cfg.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace ifko::ir {
namespace {

Function makeEmptyFn() {
  Function fn;
  fn.name = "t";
  return fn;
}

TEST(Inst, OpInfoBasics) {
  EXPECT_EQ(opInfo(Op::FAdd).numSrcs, 2);
  EXPECT_TRUE(opInfo(Op::FAdd).hasDst);
  EXPECT_TRUE(opInfo(Op::FLd).readsMem);
  EXPECT_TRUE(opInfo(Op::VSt).writesMem);
  EXPECT_TRUE(opInfo(Op::Jmp).isTerminator);
  EXPECT_FALSE(opInfo(Op::Jcc).isTerminator);  // may fall through
  EXPECT_TRUE(opInfo(Op::Jcc).isBranch);
  EXPECT_TRUE(opInfo(Op::ICmp).setsFlags);
  EXPECT_TRUE(opInfo(Op::VAdd).isVector);
  EXPECT_EQ(opInfo(Op::VMovMsk).dstKind, RegKind::Int);
  EXPECT_TRUE(touchesMem(Op::Pref));
  EXPECT_FALSE(touchesMem(Op::FAdd));
}

TEST(Inst, CondNegation) {
  EXPECT_EQ(negate(Cond::EQ), Cond::NE);
  EXPECT_EQ(negate(Cond::LT), Cond::GE);
  EXPECT_EQ(negate(Cond::GE), Cond::LT);
  EXPECT_EQ(negate(Cond::LE), Cond::GT);
}

TEST(Inst, TypeNames) {
  EXPECT_EQ(scalBytes(Scal::F32), 4);
  EXPECT_EQ(scalBytes(Scal::F64), 8);
  EXPECT_EQ(vecLanes(Scal::F32), 4);
  EXPECT_EQ(vecLanes(Scal::F64), 2);
}

TEST(Reg, VirtualVsPhysical) {
  Reg v = Reg::intReg(kVirtBase + 3);
  EXPECT_TRUE(v.isVirtual());
  EXPECT_FALSE(v.isPhysical());
  Reg p = Reg::fpReg(2);
  EXPECT_TRUE(p.isPhysical());
  EXPECT_EQ(p.str(), "x2");
  EXPECT_EQ(v.str(), "rv3");
  EXPECT_FALSE(Reg::none().valid());
}

TEST(Function, BlockManagement) {
  Function fn = makeEmptyFn();
  int32_t a = fn.addBlock();
  int32_t b = fn.addBlock();
  EXPECT_NE(a, b);
  EXPECT_EQ(fn.layoutIndex(a), 0u);
  EXPECT_EQ(fn.layoutIndex(b), 1u);
  int32_t c = fn.insertBlockAt(1);
  EXPECT_EQ(fn.layoutIndex(c), 1u);
  EXPECT_EQ(fn.layoutIndex(b), 2u);
  fn.removeBlock(c);
  EXPECT_EQ(fn.layoutIndex(b), 1u);
}

TEST(Builder, EmitsIntoBlock) {
  Function fn = makeEmptyFn();
  int32_t b0 = fn.addBlock();
  Builder b(fn, b0);
  Reg x = b.imovi(5);
  Reg y = b.iaddi(x, 2);
  b.icmpi(y, 7);
  b.ret();
  EXPECT_EQ(fn.block(b0).insts.size(), 4u);
  EXPECT_EQ(fn.block(b0).insts[0].op, Op::IMovI);
  EXPECT_TRUE(fn.block(b0).hardTerminator() != nullptr);
}

TEST(Printer, ContainsBlocksAndOps) {
  Function fn = makeEmptyFn();
  int32_t b0 = fn.addBlock();
  Builder b(fn, b0);
  Reg p = fn.newIntReg();
  fn.params.push_back({.name = "X", .kind = ParamKind::PtrF64, .reg = p});
  Reg v = b.fld(Scal::F64, mem(p, 8));
  b.fst(Scal::F64, mem(p, 16), v);
  b.ret();
  std::string s = print(fn);
  EXPECT_NE(s.find("bb0:"), std::string::npos);
  EXPECT_NE(s.find("fld.f64"), std::string::npos);
  EXPECT_NE(s.find("+ 8"), std::string::npos);
}

TEST(Cfg, SuccessorsOfConditional) {
  Function fn = makeEmptyFn();
  int32_t b0 = fn.addBlock();
  int32_t b1 = fn.addBlock();
  int32_t b2 = fn.addBlock();
  Builder b(fn, b0);
  Reg x = b.imovi(1);
  b.icmpi(x, 0);
  b.jcc(Cond::EQ, b2);
  Builder b1b(fn, b1);
  b1b.ret();
  Builder b2b(fn, b2);
  b2b.ret();
  auto succ = successors(fn, 0);
  ASSERT_EQ(succ.size(), 2u);
  EXPECT_EQ(succ[0], b2);  // taken target first
  EXPECT_EQ(succ[1], b1);  // fall-through
  auto preds = predecessors(fn);
  EXPECT_EQ(preds[b1].size(), 1u);
  EXPECT_EQ(preds[b2].size(), 1u);
}

TEST(Cfg, RetHasNoSuccessors) {
  Function fn = makeEmptyFn();
  int32_t b0 = fn.addBlock();
  fn.addBlock();
  Builder b(fn, b0);
  b.ret();
  EXPECT_TRUE(successors(fn, 0).empty());
}

TEST(Verifier, AcceptsMinimalFunction) {
  Function fn = makeEmptyFn();
  Builder b(fn, fn.addBlock());
  b.ret();
  EXPECT_TRUE(verify(fn).empty());
}

TEST(Verifier, RejectsFallOffEnd) {
  Function fn = makeEmptyFn();
  Builder b(fn, fn.addBlock());
  b.imovi(1);
  auto problems = verify(fn);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("falls off"), std::string::npos);
}

TEST(Verifier, RejectsBranchToUnknownBlock) {
  Function fn = makeEmptyFn();
  Builder b(fn, fn.addBlock());
  b.jmp(99);
  auto problems = verify(fn);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("unknown block"), std::string::npos);
}

TEST(Verifier, RejectsBranchNotLast) {
  Function fn = makeEmptyFn();
  int32_t b0 = fn.addBlock();
  Builder b(fn, b0);
  b.jmp(b0);
  b.imovi(1);
  b.ret();
  auto problems = verify(fn);
  ASSERT_FALSE(problems.empty());
}

TEST(Verifier, RejectsWrongRegisterClass) {
  Function fn = makeEmptyFn();
  Builder b(fn, fn.addBlock());
  Reg i = fn.newIntReg();
  // FAdd on integer registers is malformed.
  b.emit({.op = Op::FAdd, .type = Scal::F64, .dst = i, .src1 = i, .src2 = i});
  b.ret();
  auto problems = verify(fn);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("register class"), std::string::npos);
}

TEST(Verifier, RejectsUseBeforeDef) {
  Function fn = makeEmptyFn();
  Builder b(fn, fn.addBlock());
  Reg x = fn.newIntReg();
  b.iaddi(x, 1);  // x never defined
  b.ret();
  auto problems = verify(fn);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("before definition"), std::string::npos);
}

TEST(Verifier, AcceptsParamUse) {
  Function fn = makeEmptyFn();
  Reg p = fn.newIntReg();
  fn.params.push_back({.name = "N", .kind = ParamKind::Int, .reg = p});
  Builder b(fn, fn.addBlock());
  b.iaddi(p, 1);
  b.ret();
  EXPECT_TRUE(verify(fn).empty());
}

TEST(Verifier, DefOnOnePathOnlyIsRejected) {
  // bb0: jcc -> bb2 ; bb1: def x ; bb2: use x  (x undefined when jcc taken)
  Function fn = makeEmptyFn();
  int32_t b0 = fn.addBlock();
  int32_t b1 = fn.addBlock();
  int32_t b2 = fn.addBlock();
  Reg n = fn.newIntReg();
  fn.params.push_back({.name = "N", .kind = ParamKind::Int, .reg = n});
  Builder b(fn, b0);
  b.icmpi(n, 0);
  b.jcc(Cond::EQ, b2);
  Builder bb1(fn, b1);
  Reg x = fn.newIntReg();
  bb1.emit({.op = Op::IMovI, .dst = x, .imm = 3});
  Builder bb2(fn, b2);
  bb2.iaddi(x, 1);
  bb2.ret();
  auto problems = verify(fn);
  ASSERT_FALSE(problems.empty());
}

TEST(Verifier, RejectsVirtualRegAfterRegalloc) {
  Function fn = makeEmptyFn();
  fn.regAllocated = true;
  Builder b(fn, fn.addBlock());
  Reg v = fn.newIntReg();  // virtual
  b.emit({.op = Op::IMovI, .dst = v, .imm = 1});
  b.ret();
  auto problems = verify(fn);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("virtual register after regalloc"),
            std::string::npos);
}

TEST(Verifier, RejectsRetWithoutValueWhenTyped) {
  Function fn = makeEmptyFn();
  fn.retType = RetType::Int;
  Builder b(fn, fn.addBlock());
  b.ret();
  auto problems = verify(fn);
  ASSERT_FALSE(problems.empty());
}

}  // namespace
}  // namespace ifko::ir
