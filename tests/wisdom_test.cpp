// The wisdom store: the versioned best-config artifact must round-trip
// bit-identically, merge keep-best, tolerate damaged lines loudly, refuse
// other schema versions, and fall back exact -> near-N -> near-context.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "wisdom/wisdom.h"

namespace ifko::wisdom {
namespace {

std::string tmpFile(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

WisdomRecord makeRecord(const std::string& hash, const std::string& machine,
                        const std::string& context, const std::string& nClass,
                        uint64_t best) {
  WisdomRecord rec;
  rec.key = {hash, machine, context, nClass};
  rec.kernel = "ddot";
  rec.params = "sv=Y ur=8";
  rec.bestCycles = best;
  rec.defaultCycles = 2 * best;
  rec.evaluations = 15;
  rec.runId = "test/line";
  return rec;
}

TEST(NClass, PowerOfTwoBuckets) {
  EXPECT_EQ(nClassFor(1), "2^0");
  EXPECT_EQ(nClassFor(2), "2^1");
  EXPECT_EQ(nClassFor(3), "2^2");
  EXPECT_EQ(nClassFor(4096), "2^12");
  EXPECT_EQ(nClassFor(4097), "2^13");
  EXPECT_EQ(nClassFor(8192), "2^13");
  EXPECT_EQ(nClassFor(80000), "2^17");
}

TEST(NClass, ExponentRoundTrip) {
  EXPECT_EQ(nClassExponent(nClassFor(4096)), 12);
  EXPECT_EQ(nClassExponent("2^0"), 0);
  EXPECT_EQ(nClassExponent("2^62"), 62);
  EXPECT_EQ(nClassExponent("2^63"), -1);
  EXPECT_EQ(nClassExponent("4096"), -1);
  EXPECT_EQ(nClassExponent("2^-1"), -1);
  EXPECT_EQ(nClassExponent(""), -1);
}

TEST(WisdomRecordFormat, ParseInvertsFormat) {
  WisdomRecord rec = makeRecord("abc123", "P4E", "out-of-cache", "2^12", 1000);
  rec.topCause = "mem_main";
  rec.topCauseShare = 0.5;
  rec.memStallShare = 0.75;
  const std::string line = WisdomStore::formatRecord(rec);
  bool drift = true;
  std::optional<WisdomRecord> back = WisdomStore::parseRecord(line, &drift);
  ASSERT_TRUE(back.has_value()) << line;
  EXPECT_FALSE(drift);
  EXPECT_EQ(*back, rec);
}

TEST(WisdomRecordFormat, DamagedAndDriftedLines) {
  bool drift = false;
  EXPECT_FALSE(WisdomStore::parseRecord("not json", &drift).has_value());
  EXPECT_FALSE(drift);
  // Well-formed JSON that is not a wisdom record is damage, not drift.
  EXPECT_FALSE(WisdomStore::parseRecord("{\"a\":1}", &drift).has_value());
  EXPECT_FALSE(drift);
  // Missing required field (params).
  EXPECT_FALSE(
      WisdomStore::parseRecord(
          "{\"wisdom_schema\":1,\"source\":\"x\",\"machine\":\"P4E\","
          "\"context\":\"out-of-cache\",\"n_class\":\"2^12\","
          "\"best_cycles\":1,\"default_cycles\":2}",
          &drift)
          .has_value());
  EXPECT_FALSE(drift);
  // A record from a future schema is drift: never reinterpreted.
  WisdomRecord rec = makeRecord("abc", "P4E", "out-of-cache", "2^12", 10);
  std::string future = WisdomStore::formatRecord(rec);
  const std::string tag = "\"wisdom_schema\":1";
  future.replace(future.find(tag), tag.size(), "\"wisdom_schema\":2");
  EXPECT_FALSE(WisdomStore::parseRecord(future, &drift).has_value());
  EXPECT_TRUE(drift);
}

TEST(WisdomStore, KeepBestRecord) {
  WisdomStore store;
  EXPECT_TRUE(store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 100)));
  // Slower config for the same key: rejected.
  EXPECT_FALSE(
      store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 150)));
  // A tie keeps the incumbent, so merge order cannot flip the winner.
  EXPECT_FALSE(
      store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 100)));
  // Zero cycles is "no measurement", never a winner.
  EXPECT_FALSE(store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 0)));
  // Faster config: adopted.
  EXPECT_TRUE(store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 90)));
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.records()[0]->bestCycles, 90u);
}

TEST(WisdomStore, MergeKeepsBestAcrossStores) {
  WisdomStore a;
  a.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 100));
  a.record(makeRecord("h", "P4E", "in-L2", "2^12", 50));
  WisdomStore b;
  b.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 80));  // beats a's
  b.record(makeRecord("h", "P4E", "in-L2", "2^12", 60));         // loses
  b.record(makeRecord("h", "Opteron", "in-L2", "2^12", 70));     // new key
  EXPECT_EQ(a.merge(b), 2u);
  ASSERT_EQ(a.size(), 3u);
  WisdomKey ooc{"h", "P4E", "out-of-cache", "2^12"};
  ASSERT_NE(a.lookup(ooc), nullptr);
  EXPECT_EQ(a.lookup(ooc)->bestCycles, 80u);
  WisdomKey inl2{"h", "P4E", "in-L2", "2^12"};
  ASSERT_NE(a.lookup(inl2), nullptr);
  EXPECT_EQ(a.lookup(inl2)->bestCycles, 50u);
}

TEST(WisdomStore, SaveLoadSaveIsByteIdentical) {
  WisdomStore store;
  WisdomRecord withAttr = makeRecord("h2", "P4E", "in-L2", "2^10", 321);
  withAttr.topCause = "mem_main";
  withAttr.topCauseShare = 0.474951;
  withAttr.memStallShare = 0.850952;
  store.record(makeRecord("h1", "Opteron", "out-of-cache", "2^17", 12345));
  store.record(withAttr);
  store.record(makeRecord("h1", "P4E", "out-of-cache", "2^12", 999));

  const std::string first = tmpFile("wisdom_roundtrip_a.jsonl");
  const std::string second = tmpFile("wisdom_roundtrip_b.jsonl");
  ASSERT_TRUE(store.save(first));
  WisdomStore loaded;
  ASSERT_TRUE(loaded.load(first));
  EXPECT_EQ(loaded.damagedLines(), 0u);
  EXPECT_EQ(loaded.schemaSkippedLines(), 0u);
  ASSERT_EQ(loaded.size(), store.size());
  ASSERT_TRUE(loaded.save(second));
  EXPECT_EQ(slurp(first), slurp(second));
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(WisdomStore, LoadCountsDamageAndSchemaDriftSeparately) {
  const std::string path = tmpFile("wisdom_damaged.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << WisdomStore::formatRecord(
               makeRecord("h", "P4E", "out-of-cache", "2^12", 100))
        << "\n";
    out << "this line is not json\n";
    out << "{\"also\":\"not a wisdom record\"}\n";
    out << "\n";  // blank lines are fine, not damage
    WisdomRecord future = makeRecord("h9", "P4E", "in-L2", "2^9", 5);
    std::string line = WisdomStore::formatRecord(future);
    const std::string tag = "\"wisdom_schema\":1";
    line.replace(line.find(tag), tag.size(), "\"wisdom_schema\":99");
    out << line << "\n";
  }
  WisdomStore store;
  ASSERT_TRUE(store.load(path));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.damagedLines(), 2u);
  EXPECT_EQ(store.schemaSkippedLines(), 1u);
  std::remove(path.c_str());
}

TEST(WisdomStore, LoadMergesKeepBest) {
  // Concatenating two wisdom files must be a correct merge: the same key
  // twice in one file keeps the lower best_cycles whichever comes first.
  const std::string path = tmpFile("wisdom_concat.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << WisdomStore::formatRecord(
               makeRecord("h", "P4E", "out-of-cache", "2^12", 200))
        << "\n";
    out << WisdomStore::formatRecord(
               makeRecord("h", "P4E", "out-of-cache", "2^12", 100))
        << "\n";
    out << WisdomStore::formatRecord(
               makeRecord("h", "P4E", "out-of-cache", "2^12", 150))
        << "\n";
  }
  WisdomStore store;
  ASSERT_TRUE(store.load(path));
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.records()[0]->bestCycles, 100u);
  std::remove(path.c_str());
}

TEST(WisdomStore, MissingFileIsEmptyNotError) {
  WisdomStore store;
  std::string err;
  EXPECT_TRUE(store.load(tmpFile("wisdom_does_not_exist.jsonl"), &err));
  EXPECT_TRUE(err.empty());
  EXPECT_EQ(store.size(), 0u);
}

TEST(WisdomStore, FindFallsBackExactThenNearNThenNearContext) {
  WisdomStore store;
  store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 100));
  store.record(makeRecord("h", "P4E", "out-of-cache", "2^17", 500));
  store.record(makeRecord("h", "P4E", "in-L2", "2^13", 80));
  store.record(makeRecord("other", "P4E", "out-of-cache", "2^14", 1));
  store.record(makeRecord("h", "Opteron", "out-of-cache", "2^14", 1));

  // Exact hit.
  WisdomMatch m = store.find({"h", "P4E", "out-of-cache", "2^12"});
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::Exact);
  EXPECT_EQ(m.record->bestCycles, 100u);

  // Same context, nearest N-class: 2^14 is 2 from 2^12 and 3 from 2^17.
  m = store.find({"h", "P4E", "out-of-cache", "2^14"});
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::NearNClass);
  EXPECT_EQ(m.record->key.nClass, "2^12");
  EXPECT_EQ(matchKindName(m.kind), "near-n");

  // Same-context near-N beats the other context even at a larger distance.
  m = store.find({"h", "P4E", "in-L2", "2^9"});
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::NearNClass);
  EXPECT_EQ(m.record->key.context, "in-L2");

  // Other context only.
  store = WisdomStore();
  store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 100));
  m = store.find({"h", "P4E", "in-L2", "2^12"});
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::NearContext);
  EXPECT_EQ(matchKindName(m.kind), "near-context");

  // Fallback never crosses kernel hash or machine.
  m = store.find({"zzz", "P4E", "out-of-cache", "2^12"});
  EXPECT_FALSE(m.hit());
  m = store.find({"h", "Opteron", "out-of-cache", "2^12"});
  EXPECT_FALSE(m.hit());
}

}  // namespace
}  // namespace ifko::wisdom
