// The wisdom store: the versioned best-config artifact must round-trip
// bit-identically (attribution vector included), merge keep-best, tolerate
// damaged lines loudly, load old-schema (v1) lines while refusing unknown
// schemas, and fall back exact -> attribution-similar -> near-N ->
// near-context without ever crossing kernel or machine.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "wisdom/wisdom.h"

namespace ifko::wisdom {
namespace {

std::string tmpFile(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

WisdomRecord makeRecord(const std::string& hash, const std::string& machine,
                        const std::string& context, const std::string& nClass,
                        uint64_t best) {
  WisdomRecord rec;
  rec.key = {hash, machine, context, nClass};
  rec.kernel = "ddot";
  rec.params = "sv=Y ur=8";
  rec.bestCycles = best;
  rec.defaultCycles = 2 * best;
  rec.evaluations = 15;
  rec.runId = "test/line";
  return rec;
}

TEST(NClass, PowerOfTwoBuckets) {
  EXPECT_EQ(nClassFor(1), "2^0");
  EXPECT_EQ(nClassFor(2), "2^1");
  EXPECT_EQ(nClassFor(3), "2^2");
  EXPECT_EQ(nClassFor(4096), "2^12");
  EXPECT_EQ(nClassFor(4097), "2^13");
  EXPECT_EQ(nClassFor(8192), "2^13");
  EXPECT_EQ(nClassFor(80000), "2^17");
}

TEST(NClass, ExponentRoundTrip) {
  EXPECT_EQ(nClassExponent(nClassFor(4096)), 12);
  EXPECT_EQ(nClassExponent("2^0"), 0);
  EXPECT_EQ(nClassExponent("2^62"), 62);
  EXPECT_EQ(nClassExponent("2^63"), -1);
  EXPECT_EQ(nClassExponent("4096"), -1);
  EXPECT_EQ(nClassExponent("2^-1"), -1);
  EXPECT_EQ(nClassExponent(""), -1);
}

TEST(WisdomRecordFormat, ParseInvertsFormat) {
  WisdomRecord rec = makeRecord("abc123", "P4E", "out-of-cache", "2^12", 1000);
  rec.topCause = "mem_main";
  rec.topCauseShare = 0.5;
  rec.memStallShare = 0.75;
  const std::string line = WisdomStore::formatRecord(rec);
  bool drift = true;
  std::optional<WisdomRecord> back = WisdomStore::parseRecord(line, &drift);
  ASSERT_TRUE(back.has_value()) << line;
  EXPECT_FALSE(drift);
  EXPECT_EQ(*back, rec);
}

TEST(WisdomRecordFormat, DamagedAndDriftedLines) {
  bool drift = false;
  EXPECT_FALSE(WisdomStore::parseRecord("not json", &drift).has_value());
  EXPECT_FALSE(drift);
  // Well-formed JSON that is not a wisdom record is damage, not drift.
  EXPECT_FALSE(WisdomStore::parseRecord("{\"a\":1}", &drift).has_value());
  EXPECT_FALSE(drift);
  // Missing required field (params).
  EXPECT_FALSE(
      WisdomStore::parseRecord(
          "{\"wisdom_schema\":1,\"source\":\"x\",\"machine\":\"P4E\","
          "\"context\":\"out-of-cache\",\"n_class\":\"2^12\","
          "\"best_cycles\":1,\"default_cycles\":2}",
          &drift)
          .has_value());
  EXPECT_FALSE(drift);
  // A record from a future schema is drift: never reinterpreted.
  WisdomRecord rec = makeRecord("abc", "P4E", "out-of-cache", "2^12", 10);
  std::string future = WisdomStore::formatRecord(rec);
  const std::string tag = "\"wisdom_schema\":2";
  future.replace(future.find(tag), tag.size(), "\"wisdom_schema\":3");
  EXPECT_FALSE(WisdomStore::parseRecord(future, &drift).has_value());
  EXPECT_TRUE(drift);
}

TEST(WisdomRecordFormat, OldSchemaStillLoads) {
  // v1 lines are a strict subset of v2 (no attribution vector): compat,
  // not drift — a store written before the schema bump keeps working.
  WisdomRecord rec = makeRecord("abc", "P4E", "out-of-cache", "2^12", 10);
  std::string v1 = WisdomStore::formatRecord(rec);
  const std::string tag = "\"wisdom_schema\":2";
  v1.replace(v1.find(tag), tag.size(), "\"wisdom_schema\":1");
  bool drift = true;
  std::optional<WisdomRecord> back = WisdomStore::parseRecord(v1, &drift);
  ASSERT_TRUE(back.has_value()) << v1;
  EXPECT_FALSE(drift);
  EXPECT_FALSE(back->hasAttr());
  EXPECT_EQ(back->params, rec.params);
  EXPECT_EQ(back->bestCycles, rec.bestCycles);
}

TEST(WisdomRecordFormat, AttributionVectorRoundTrips) {
  WisdomRecord rec = makeRecord("abc", "P4E", "out-of-cache", "2^12", 10);
  rec.topCause = "mem_main";
  rec.topCauseShare = 0.5;
  rec.memStallShare = 0.75;
  rec.attrShare = {0.1, 0.05, 0.05, 0.0, 0.0, 0.05, 0.1, 0.05, 0.5, 0.1};
  const std::string line = WisdomStore::formatRecord(rec);
  EXPECT_NE(line.find("\"attr\":{"), std::string::npos) << line;
  EXPECT_NE(line.find("\"mem_main\":0.5"), std::string::npos) << line;
  bool drift = true;
  std::optional<WisdomRecord> back = WisdomStore::parseRecord(line, &drift);
  ASSERT_TRUE(back.has_value()) << line;
  EXPECT_FALSE(drift);
  EXPECT_EQ(*back, rec);
}

TEST(WisdomStore, KeepBestRecord) {
  WisdomStore store;
  EXPECT_TRUE(store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 100)));
  // Slower config for the same key: rejected.
  EXPECT_FALSE(
      store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 150)));
  // A tie keeps the incumbent, so merge order cannot flip the winner.
  EXPECT_FALSE(
      store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 100)));
  // Zero cycles is "no measurement", never a winner.
  EXPECT_FALSE(store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 0)));
  // Faster config: adopted.
  EXPECT_TRUE(store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 90)));
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.records()[0]->bestCycles, 90u);
}

TEST(WisdomStore, MergeKeepsBestAcrossStores) {
  WisdomStore a;
  a.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 100));
  a.record(makeRecord("h", "P4E", "in-L2", "2^12", 50));
  WisdomStore b;
  b.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 80));  // beats a's
  b.record(makeRecord("h", "P4E", "in-L2", "2^12", 60));         // loses
  b.record(makeRecord("h", "Opteron", "in-L2", "2^12", 70));     // new key
  EXPECT_EQ(a.merge(b), 2u);
  ASSERT_EQ(a.size(), 3u);
  WisdomKey ooc{"h", "P4E", "out-of-cache", "2^12"};
  ASSERT_NE(a.lookup(ooc), nullptr);
  EXPECT_EQ(a.lookup(ooc)->bestCycles, 80u);
  WisdomKey inl2{"h", "P4E", "in-L2", "2^12"};
  ASSERT_NE(a.lookup(inl2), nullptr);
  EXPECT_EQ(a.lookup(inl2)->bestCycles, 50u);
}

TEST(WisdomStore, SaveLoadSaveIsByteIdentical) {
  WisdomStore store;
  WisdomRecord withAttr = makeRecord("h2", "P4E", "in-L2", "2^10", 321);
  withAttr.topCause = "mem_main";
  withAttr.topCauseShare = 0.474951;
  withAttr.memStallShare = 0.850952;
  store.record(makeRecord("h1", "Opteron", "out-of-cache", "2^17", 12345));
  store.record(withAttr);
  store.record(makeRecord("h1", "P4E", "out-of-cache", "2^12", 999));

  const std::string first = tmpFile("wisdom_roundtrip_a.jsonl");
  const std::string second = tmpFile("wisdom_roundtrip_b.jsonl");
  ASSERT_TRUE(store.save(first));
  WisdomStore loaded;
  ASSERT_TRUE(loaded.load(first));
  EXPECT_EQ(loaded.damagedLines(), 0u);
  EXPECT_EQ(loaded.schemaSkippedLines(), 0u);
  ASSERT_EQ(loaded.size(), store.size());
  ASSERT_TRUE(loaded.save(second));
  EXPECT_EQ(slurp(first), slurp(second));
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(WisdomStore, LoadCountsDamageAndSchemaDriftSeparately) {
  const std::string path = tmpFile("wisdom_damaged.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << WisdomStore::formatRecord(
               makeRecord("h", "P4E", "out-of-cache", "2^12", 100))
        << "\n";
    out << "this line is not json\n";
    out << "{\"also\":\"not a wisdom record\"}\n";
    out << "\n";  // blank lines are fine, not damage
    WisdomRecord future = makeRecord("h9", "P4E", "in-L2", "2^9", 5);
    std::string line = WisdomStore::formatRecord(future);
    const std::string tag = "\"wisdom_schema\":2";
    line.replace(line.find(tag), tag.size(), "\"wisdom_schema\":99");
    out << line << "\n";
  }
  WisdomStore store;
  ASSERT_TRUE(store.load(path));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.damagedLines(), 2u);
  EXPECT_EQ(store.schemaSkippedLines(), 1u);
  std::remove(path.c_str());
}

TEST(WisdomStore, LoadMergesKeepBest) {
  // Concatenating two wisdom files must be a correct merge: the same key
  // twice in one file keeps the lower best_cycles whichever comes first.
  const std::string path = tmpFile("wisdom_concat.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << WisdomStore::formatRecord(
               makeRecord("h", "P4E", "out-of-cache", "2^12", 200))
        << "\n";
    out << WisdomStore::formatRecord(
               makeRecord("h", "P4E", "out-of-cache", "2^12", 100))
        << "\n";
    out << WisdomStore::formatRecord(
               makeRecord("h", "P4E", "out-of-cache", "2^12", 150))
        << "\n";
  }
  WisdomStore store;
  ASSERT_TRUE(store.load(path));
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.records()[0]->bestCycles, 100u);
  std::remove(path.c_str());
}

TEST(WisdomStore, MissingFileIsEmptyNotError) {
  WisdomStore store;
  std::string err;
  EXPECT_TRUE(store.load(tmpFile("wisdom_does_not_exist.jsonl"), &err));
  EXPECT_TRUE(err.empty());
  EXPECT_EQ(store.size(), 0u);
}

TEST(WisdomStore, FindFallsBackExactThenNearNThenNearContext) {
  WisdomStore store;
  store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 100));
  store.record(makeRecord("h", "P4E", "out-of-cache", "2^17", 500));
  store.record(makeRecord("h", "P4E", "in-L2", "2^13", 80));
  store.record(makeRecord("other", "P4E", "out-of-cache", "2^14", 1));
  store.record(makeRecord("h", "Opteron", "out-of-cache", "2^14", 1));

  // Exact hit.
  WisdomMatch m = store.find({"h", "P4E", "out-of-cache", "2^12"});
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::Exact);
  EXPECT_EQ(m.record->bestCycles, 100u);

  // Same context, nearest N-class: 2^14 is 2 from 2^12 and 3 from 2^17.
  m = store.find({"h", "P4E", "out-of-cache", "2^14"});
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::NearNClass);
  EXPECT_EQ(m.record->key.nClass, "2^12");
  EXPECT_EQ(matchKindName(m.kind), "near-n");

  // Same-context near-N beats the other context even at a larger distance.
  m = store.find({"h", "P4E", "in-L2", "2^9"});
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::NearNClass);
  EXPECT_EQ(m.record->key.context, "in-L2");

  // Other context only.
  store = WisdomStore();
  store.record(makeRecord("h", "P4E", "out-of-cache", "2^12", 100));
  m = store.find({"h", "P4E", "in-L2", "2^12"});
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::NearContext);
  EXPECT_EQ(matchKindName(m.kind), "near-context");

  // Fallback never crosses kernel hash or machine.
  m = store.find({"zzz", "P4E", "out-of-cache", "2^12"});
  EXPECT_FALSE(m.hit());
  m = store.find({"h", "Opteron", "out-of-cache", "2^12"});
  EXPECT_FALSE(m.hit());
}

TEST(WisdomStore, NearNTiesBreakTowardSmallerClass) {
  // Regression: the old scan used strict `<` over lexicographic map order,
  // and "2^11" sorts before "2^9" as a string — so at equal exponent
  // distance the larger class used to win by iteration accident.  The
  // tie-break is now explicit: smaller class.
  WisdomStore store;
  store.record(makeRecord("h", "P4E", "out-of-cache", "2^11", 300));
  store.record(makeRecord("h", "P4E", "out-of-cache", "2^9", 200));
  WisdomMatch m = store.find({"h", "P4E", "out-of-cache", "2^10"});
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::NearNClass);
  EXPECT_EQ(m.record->key.nClass, "2^9");

  // Insertion order must not matter.
  WisdomStore reversed;
  reversed.record(makeRecord("h", "P4E", "out-of-cache", "2^9", 200));
  reversed.record(makeRecord("h", "P4E", "out-of-cache", "2^11", 300));
  m = reversed.find({"h", "P4E", "out-of-cache", "2^10"});
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.record->key.nClass, "2^9");
}

TEST(WisdomStore, FindRanksByAttributionSimilarity) {
  // Two same-context candidates: a memory-bound winner one class up and an
  // fp-bound winner three classes up.  An fp-heavy probe must pick the
  // fp-bound record even though it is numerically farther — that is the
  // whole point of the performance-derived key.
  WisdomRecord memBound = makeRecord("h", "P4E", "out-of-cache", "2^13", 100);
  memBound.attrShare = {0.05, 0.05, 0.0, 0.0, 0.0, 0.0, 0.1, 0.1, 0.6, 0.1};
  WisdomRecord fpBound = makeRecord("h", "P4E", "out-of-cache", "2^15", 100);
  fpBound.attrShare = {0.1, 0.7, 0.05, 0.0, 0.0, 0.05, 0.05, 0.0, 0.0, 0.05};
  WisdomStore store;
  store.record(memBound);
  store.record(fpBound);

  AttrShares fpProbe = {0.1, 0.65, 0.05, 0.0, 0.0, 0.1, 0.05, 0.0, 0.0, 0.05};
  WisdomMatch m = store.find({"h", "P4E", "out-of-cache", "2^12"}, &fpProbe);
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::AttrSimilar);
  EXPECT_EQ(matchKindName(m.kind), "attr-similar");
  EXPECT_EQ(m.record->key.nClass, "2^15");

  AttrShares memProbe = {0.05, 0.1, 0.0, 0.0, 0.0, 0.0, 0.1, 0.1, 0.55, 0.1};
  m = store.find({"h", "P4E", "out-of-cache", "2^12"}, &memProbe);
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::AttrSimilar);
  EXPECT_EQ(m.record->key.nClass, "2^13");

  // Without a probe the ranking degrades to nearest-N.
  m = store.find({"h", "P4E", "out-of-cache", "2^12"});
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::NearNClass);
  EXPECT_EQ(m.record->key.nClass, "2^13");

  // Records without vectors (v1 imports) rank after informed ones but are
  // still found; the match kind reports the N-heuristic, not similarity.
  WisdomStore v1only;
  v1only.record(makeRecord("h", "P4E", "out-of-cache", "2^13", 100));
  m = v1only.find({"h", "P4E", "out-of-cache", "2^12"}, &fpProbe);
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.kind, MatchKind::NearNClass);

  // A probe never widens the fallback across kernel or machine.
  m = store.find({"zzz", "P4E", "out-of-cache", "2^12"}, &fpProbe);
  EXPECT_FALSE(m.hit());
  m = store.find({"h", "Opteron", "out-of-cache", "2^12"}, &fpProbe);
  EXPECT_FALSE(m.hit());

  // Same context still outranks the other context even when the other
  // context's vector is closer: contexts are tiers, similarity ranks
  // within a tier.
  WisdomRecord otherCtx = makeRecord("h", "P4E", "in-L2", "2^12", 90);
  otherCtx.attrShare = fpBound.attrShare;
  WisdomStore tiered;
  tiered.record(memBound);
  tiered.record(otherCtx);
  m = tiered.find({"h", "P4E", "out-of-cache", "2^12"}, &fpProbe);
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.record->key.context, "out-of-cache");
}

TEST(AttrMath, CosineDistanceBasics) {
  AttrShares a{}, b{};
  a[8] = 1.0;  // mem_main only
  b[8] = 1.0;
  EXPECT_NEAR(attrCosineDistance(a, b), 0.0, 1e-12);
  b = {};
  b[1] = 1.0;  // fp_dep only: orthogonal
  EXPECT_NEAR(attrCosineDistance(a, b), 1.0, 1e-12);
  // An all-zero side means "no information": sentinel 2.0, ranked after
  // any real distance.
  EXPECT_EQ(attrCosineDistance(a, AttrShares{}), 2.0);
  EXPECT_EQ(attrCosineDistance(AttrShares{}, AttrShares{}), 2.0);
}

}  // namespace
}  // namespace ifko::wisdom
