// Tuning-as-a-service: the serve protocol must parse/format exactly, the
// daemon's handleLine state machine must answer warm queries without the
// evaluator and reproduce a fresh tune on the miss path, faults must score
// structured errors without killing the daemon, and the socket layer must
// round-trip lines over Unix and TCP.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "arch/machine.h"
#include "kernels/registry.h"
#include "opt/params.h"
#include "search/orchestrator.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "support/hash.h"
#include "support/json.h"
#include "wisdom/wisdom.h"

namespace ifko::serve {
namespace {

std::string tmpFile(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::map<std::string, JsonValue> parseResponse(const std::string& line) {
  std::map<std::string, JsonValue> obj;
  EXPECT_TRUE(parseJsonObject(line, &obj)) << line;
  return obj;
}

bool okOf(const std::map<std::string, JsonValue>& obj) {
  auto it = obj.find("ok");
  return it != obj.end() && it->second.kind == JsonValue::Kind::Bool &&
         it->second.boolean;
}

std::string strOf(const std::map<std::string, JsonValue>& obj,
                  const char* key) {
  auto it = obj.find(key);
  return it != obj.end() && it->second.kind == JsonValue::Kind::String
             ? it->second.string
             : std::string();
}

int64_t numOf(const std::map<std::string, JsonValue>& obj, const char* key) {
  auto it = obj.find(key);
  return it != obj.end() && it->second.kind == JsonValue::Kind::Number
             ? it->second.asInt()
             : -1;
}

/// A daemon config sized for tests: smoke grids, small N, in-memory only.
ServeConfig smokeServeConfig() {
  ServeConfig cfg;
  cfg.orchestrator.search = search::SearchConfig::smoke();
  cfg.orchestrator.search.n = 1024;
  return cfg;
}

TEST(ServeProtocol, ParsesKernelVerbWithOptions) {
  std::string err;
  auto req = parseRequest("QUERY ddot arch=opteron context=inl2 n=5000", &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->verb, Request::Verb::Query);
  EXPECT_EQ(req->target, "ddot");
  EXPECT_EQ(req->arch, "opteron");
  EXPECT_EQ(req->context, "inl2");
  EXPECT_EQ(req->n, 5000);

  req = parseRequest("TUNE sasum", &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->verb, Request::Verb::Tune);
  EXPECT_EQ(req->target, "sasum");
  EXPECT_TRUE(req->arch.empty());
  EXPECT_EQ(req->n, 0);

  req = parseRequest("STATS", &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->verb, Request::Verb::Stats);

  req = parseRequest("EXPORT /tmp/out.jsonl", &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->verb, Request::Verb::Export);
  EXPECT_EQ(req->target, "/tmp/out.jsonl");

  req = parseRequest("IMPORT /tmp/peer.jsonl", &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->verb, Request::Verb::Import);
  EXPECT_EQ(req->target, "/tmp/peer.jsonl");
  // IMPORT needs a path; EXPORT falls back to the daemon's wisdom file.
  EXPECT_FALSE(parseRequest("IMPORT", &err).has_value());
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  std::string err;
  EXPECT_FALSE(parseRequest("", &err).has_value());
  EXPECT_FALSE(parseRequest("FROB ddot", &err).has_value());
  EXPECT_FALSE(parseRequest("QUERY", &err).has_value());  // kernel required
  EXPECT_FALSE(parseRequest("QUERY ddot arch=vax", &err).has_value());
  EXPECT_FALSE(parseRequest("QUERY ddot context=l3", &err).has_value());
  EXPECT_FALSE(parseRequest("QUERY ddot n=0", &err).has_value());
  EXPECT_FALSE(parseRequest("QUERY ddot n=many", &err).has_value());
  EXPECT_FALSE(parseRequest("QUERY ddot bogus=1", &err).has_value());
}

TEST(ServeProtocol, FormatParsesBackToItself) {
  Request req;
  req.verb = Request::Verb::Explain;
  req.target = "daxpy";
  req.arch = "opteron";
  req.context = "inl2";
  req.n = 4096;
  std::string err;
  auto back = parseRequest(formatRequest(req), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->verb, req.verb);
  EXPECT_EQ(back->target, req.target);
  EXPECT_EQ(back->arch, req.arch);
  EXPECT_EQ(back->context, req.context);
  EXPECT_EQ(back->n, req.n);

  // Defaults are omitted on the wire.
  Request bare;
  bare.verb = Request::Verb::Query;
  bare.target = "ddot";
  EXPECT_EQ(formatRequest(bare), "QUERY ddot");
}

TEST(Daemon, StructuredErrorsForBadRequests) {
  Daemon d(smokeServeConfig());
  auto resp = parseResponse(d.handleLine("FROB ddot"));
  EXPECT_FALSE(okOf(resp));
  EXPECT_EQ(strOf(resp, "code"), "parse_error");

  resp = parseResponse(d.handleLine("QUERY no_such_kernel"));
  EXPECT_FALSE(okOf(resp));
  EXPECT_EQ(strOf(resp, "code"), "unknown_kernel");

  resp = parseResponse(d.handleLine("EXPLAIN ddot"));
  EXPECT_FALSE(okOf(resp));
  EXPECT_EQ(strOf(resp, "code"), "no_wisdom");

  // No --wisdom file and no explicit path: EXPORT has nowhere to write.
  resp = parseResponse(d.handleLine("EXPORT"));
  EXPECT_FALSE(okOf(resp));
  EXPECT_EQ(strOf(resp, "code"), "export_failed");

  resp = parseResponse(d.handleLine("STATS"));
  EXPECT_TRUE(okOf(resp));
  EXPECT_EQ(numOf(resp, "requests"), 5);
  EXPECT_EQ(numOf(resp, "errors"), 4);
  EXPECT_EQ(numOf(resp, "evaluations"), 0);
  EXPECT_GE(numOf(resp, "kernels"), 14);
}

TEST(Daemon, TuneThenWarmQueryAndExplain) {
  Daemon d(smokeServeConfig());

  auto tuned = parseResponse(d.handleLine("TUNE ddot"));
  ASSERT_TRUE(okOf(tuned)) << d.handleLine("TUNE ddot");
  EXPECT_EQ(strOf(tuned, "match"), "tuned");
  EXPECT_GT(numOf(tuned, "evaluations"), 0);
  EXPECT_GT(numOf(tuned, "best_cycles"), 0);
  const std::string params = strOf(tuned, "params");
  EXPECT_TRUE(opt::parseTuningSpec(params).ok) << params;

  // Same (kernel, arch, context, N-class): answered from wisdom, evaluator
  // untouched.
  auto warm = parseResponse(d.handleLine("QUERY ddot"));
  ASSERT_TRUE(okOf(warm));
  EXPECT_EQ(strOf(warm, "match"), "exact");
  EXPECT_EQ(numOf(warm, "evaluations"), 0);
  EXPECT_EQ(strOf(warm, "params"), params);
  EXPECT_EQ(numOf(warm, "best_cycles"), numOf(tuned, "best_cycles"));

  // Another N in the same power-of-two class is the same record.
  auto sameClass = parseResponse(d.handleLine("QUERY ddot n=1000"));
  ASSERT_TRUE(okOf(sameClass));
  EXPECT_EQ(strOf(sameClass, "match"), "exact");

  // A different N-class falls back to the nearest record — still no
  // evaluator.
  auto near = parseResponse(d.handleLine("QUERY ddot n=80000"));
  ASSERT_TRUE(okOf(near));
  EXPECT_EQ(strOf(near, "match"), "near-n");
  EXPECT_EQ(numOf(near, "evaluations"), 0);

  auto explained = parseResponse(d.handleLine("EXPLAIN ddot"));
  ASSERT_TRUE(okOf(explained));
  EXPECT_EQ(strOf(explained, "params"), params);
  EXPECT_EQ(strOf(explained, "run"), "serve/line");

  auto stats = parseResponse(d.handleLine("STATS"));
  EXPECT_EQ(numOf(stats, "tuned"), 1);
  EXPECT_EQ(numOf(stats, "wisdom_exact"), 2);
  EXPECT_EQ(numOf(stats, "wisdom_near"), 1);
  EXPECT_EQ(numOf(stats, "evaluations"), numOf(tuned, "evaluations"));
  EXPECT_EQ(numOf(stats, "wisdom_records"), 1);
  EXPECT_EQ(numOf(stats, "warm_pipelines"), 1);
}

// The acceptance bar: for every surveyed kernel, in both timing contexts,
// the daemon's miss path finds exactly what a fresh one-shot tune finds,
// and the second query is a pure wisdom hit.
TEST(DaemonAcceptance, MissTuneMatchesFreshTuneAcrossContexts) {
  // One daemon per context: within one store the second context would be
  // answered by the near-context fallback instead of tuning, which is the
  // serving behavior but not what this test pins down.
  for (const sim::TimeContext context :
       {sim::TimeContext::OutOfCache, sim::TimeContext::InL2}) {
    const bool inl2 = context == sim::TimeContext::InL2;
    ServeConfig cfg = smokeServeConfig();
    cfg.orchestrator.search.context = context;
    Daemon d(cfg);
    search::OrchestratorConfig freshCfg;
    freshCfg.search = search::SearchConfig::smoke();
    freshCfg.search.n = 1024;
    freshCfg.search.context = context;
    search::Orchestrator fresh(arch::p4e(), freshCfg);
    int64_t expectEvals = 0;
    for (const kernels::KernelSpec& spec : kernels::allKernels()) {
      SCOPED_TRACE(spec.name() + (inl2 ? "/inl2" : "/ooc"));
      const search::KernelOutcome want =
          fresh.tune({spec.name(), spec.hilSource(), &spec, std::nullopt});
      ASSERT_TRUE(want.result.ok) << want.result.error;
      expectEvals += want.result.evaluations;

      auto miss = parseResponse(d.handleLine("QUERY " + spec.name()));
      ASSERT_TRUE(okOf(miss));
      EXPECT_EQ(strOf(miss, "match"), "tuned");
      EXPECT_EQ(strOf(miss, "params"), opt::formatTuningSpec(want.result.best));
      EXPECT_EQ(numOf(miss, "best_cycles"),
                static_cast<int64_t>(want.result.bestCycles));
      EXPECT_EQ(numOf(miss, "default_cycles"),
                static_cast<int64_t>(want.result.defaultCycles));

      auto warm = parseResponse(d.handleLine("QUERY " + spec.name()));
      ASSERT_TRUE(okOf(warm));
      EXPECT_EQ(strOf(warm, "match"), "exact");
      EXPECT_EQ(numOf(warm, "evaluations"), 0);
      EXPECT_EQ(strOf(warm, "params"), strOf(miss, "params"));
    }
    // The warm queries must not have moved the evaluation counter.
    auto stats = parseResponse(d.handleLine("STATS"));
    EXPECT_EQ(numOf(stats, "evaluations"), expectEvals);
    EXPECT_EQ(numOf(stats, "tuned"),
              static_cast<int64_t>(kernels::allKernels().size()));
    EXPECT_EQ(numOf(stats, "wisdom_exact"),
              static_cast<int64_t>(kernels::allKernels().size()));
  }
}

TEST(Daemon, WisdomFileRoundTripAndExport) {
  const std::string wisdomPath = tmpFile("serve_wisdom.jsonl");
  const std::string exportPath = tmpFile("serve_export.jsonl");
  std::remove(wisdomPath.c_str());
  std::string tunedParams;
  {
    ServeConfig cfg = smokeServeConfig();
    cfg.wisdomPath = wisdomPath;
    Daemon d(cfg);
    auto tuned = parseResponse(d.handleLine("TUNE scopy"));
    ASSERT_TRUE(okOf(tuned));
    tunedParams = strOf(tuned, "params");
    auto exported = parseResponse(d.handleLine("EXPORT " + exportPath));
    ASSERT_TRUE(okOf(exported));
    EXPECT_EQ(numOf(exported, "records"), 1);
    auto down = parseResponse(d.handleLine("SHUTDOWN"));
    EXPECT_TRUE(okOf(down));
    EXPECT_TRUE(d.shutdownRequested());
  }
  // A fresh daemon on the same wisdom file answers without tuning.
  {
    ServeConfig cfg = smokeServeConfig();
    cfg.wisdomPath = wisdomPath;
    Daemon d(cfg);
    auto warm = parseResponse(d.handleLine("QUERY scopy"));
    ASSERT_TRUE(okOf(warm));
    EXPECT_EQ(strOf(warm, "match"), "exact");
    EXPECT_EQ(numOf(warm, "evaluations"), 0);
    EXPECT_EQ(strOf(warm, "params"), tunedParams);
  }
  // The EXPORT target is a loadable wisdom file with the same record.
  wisdom::WisdomStore store;
  ASSERT_TRUE(store.load(exportPath));
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.records()[0]->params, tunedParams);
  EXPECT_EQ(store.records()[0]->kernel, "scopy");
  std::remove(wisdomPath.c_str());
  std::remove(exportPath.c_str());
}

// IMPORT is the federation primitive: keep-best merge of a wisdom file
// into the live store, answering with what it adopted.
TEST(Daemon, ImportMergesKeepBestAndAnswersWarm) {
  const std::string peerPath = tmpFile("serve_import_peer.jsonl");
  std::remove(peerPath.c_str());
  std::string tunedParams;
  {
    // A "peer" daemon tunes one kernel and exports its store.
    Daemon peer(smokeServeConfig());
    auto tuned = parseResponse(peer.handleLine("TUNE scopy"));
    ASSERT_TRUE(okOf(tuned));
    tunedParams = strOf(tuned, "params");
    ASSERT_TRUE(okOf(parseResponse(peer.handleLine("EXPORT " + peerPath))));
  }

  Daemon d(smokeServeConfig());
  // A typo'd path must fail loudly — WisdomStore::load treats a missing
  // file as an empty store, which would silently adopt nothing.
  auto missing =
      parseResponse(d.handleLine("IMPORT " + tmpFile("serve_no_such.jsonl")));
  EXPECT_FALSE(okOf(missing));
  EXPECT_EQ(strOf(missing, "code"), "import_failed");

  auto imported = parseResponse(d.handleLine("IMPORT " + peerPath));
  ASSERT_TRUE(okOf(imported));
  EXPECT_EQ(numOf(imported, "loaded"), 1);
  EXPECT_EQ(numOf(imported, "adopted"), 1);
  EXPECT_EQ(numOf(imported, "records"), 1);

  // Importing the same file again adopts nothing (keep-best is idempotent).
  auto again = parseResponse(d.handleLine("IMPORT " + peerPath));
  ASSERT_TRUE(okOf(again));
  EXPECT_EQ(numOf(again, "adopted"), 0);

  // The adopted record answers queries without the evaluator.
  auto warm = parseResponse(d.handleLine("QUERY scopy"));
  ASSERT_TRUE(okOf(warm));
  EXPECT_EQ(strOf(warm, "match"), "exact");
  EXPECT_EQ(numOf(warm, "evaluations"), 0);
  EXPECT_EQ(strOf(warm, "params"), tunedParams);
  std::remove(peerPath.c_str());
}

// A quarantine-inducing kernel must cost a structured error, not the
// daemon: later requests — including wisdom hits for the same kernel —
// still answer.
TEST(Daemon, SurvivesQuarantinedTunes) {
  ServeConfig cfg = smokeServeConfig();
  std::string planError;
  // Spare the default evaluation so the search gets going, then crash
  // everything after it until the quarantine threshold trips.
  auto plan = search::FaultPlan::parse("crash@2+1", &planError);
  ASSERT_TRUE(plan.has_value()) << planError;
  cfg.orchestrator.faultPlan = *plan;
  cfg.orchestrator.search.maxEvalAttempts = 1;
  cfg.orchestrator.quarantineAfter = 2;

  // Pre-seed wisdom for ddot so the hit path has something to serve.
  const std::string wisdomPath = tmpFile("serve_faulted_wisdom.jsonl");
  {
    std::string source;
    for (const kernels::KernelSpec& spec : kernels::extendedKernels())
      if (spec.name() == "ddot") source = spec.hilSource();
    ASSERT_FALSE(source.empty());
    wisdom::WisdomRecord rec;
    rec.key = {hashHex(source), "P4E", "out-of-cache",
               wisdom::nClassFor(1024)};
    rec.kernel = "ddot";
    rec.params = "ur=4";
    rec.bestCycles = 1000;
    rec.defaultCycles = 2000;
    wisdom::WisdomStore seed;
    seed.record(rec);
    ASSERT_TRUE(seed.save(wisdomPath));
  }
  cfg.wisdomPath = wisdomPath;

  Daemon d(cfg);
  // Every evaluation crashes: the tune is quarantined, with a structured
  // error response.
  auto failed = parseResponse(d.handleLine("TUNE sasum"));
  EXPECT_FALSE(okOf(failed));
  EXPECT_EQ(strOf(failed, "code"), "quarantined");

  // The daemon is still serving: STATS answers and the pre-seeded wisdom
  // still hits without touching the (broken) evaluator.
  auto stats = parseResponse(d.handleLine("STATS"));
  EXPECT_TRUE(okOf(stats));
  EXPECT_EQ(numOf(stats, "errors"), 1);
  auto warm = parseResponse(d.handleLine("QUERY ddot"));
  ASSERT_TRUE(okOf(warm));
  EXPECT_EQ(strOf(warm, "match"), "exact");
  EXPECT_EQ(numOf(warm, "evaluations"), 0);
  EXPECT_EQ(strOf(warm, "params"), "ur=4");
  std::remove(wisdomPath.c_str());
}

TEST(DaemonSocket, UnixRoundTrip) {
  // Not TempDir: sun_path caps at ~107 bytes, /tmp is always short enough.
  const std::string path =
      "/tmp/ifko_serve_test_" + std::to_string(::getpid()) + ".sock";
  Daemon d(smokeServeConfig());
  std::string err;
  ASSERT_TRUE(d.listenUnix(path, &err)) << err;
  std::thread server([&d] { EXPECT_EQ(d.run(), 0); });

  Connection conn;
  ASSERT_TRUE(conn.connect({path, 0}, &err)) << err;
  auto resp = conn.roundTrip("STATS", &err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_TRUE(okOf(parseResponse(*resp)));
  resp = conn.roundTrip("SHUTDOWN", &err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_TRUE(okOf(parseResponse(*resp)));
  server.join();
}

TEST(DaemonSocket, TcpEphemeralPortRoundTrip) {
  Daemon d(smokeServeConfig());
  std::string err;
  ASSERT_TRUE(d.listenTcp(0, &err)) << err;
  ASSERT_GT(d.boundPort(), 0);
  std::thread server([&d] { EXPECT_EQ(d.run(), 0); });

  Request req;
  req.verb = Request::Verb::Stats;
  auto resp = requestOnce({"", d.boundPort()}, req, &err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_TRUE(okOf(parseResponse(*resp)));

  Connection conn;
  ASSERT_TRUE(conn.connect({"", d.boundPort()}, &err)) << err;
  resp = conn.roundTrip("SHUTDOWN", &err);
  ASSERT_TRUE(resp.has_value()) << err;
  server.join();
}

// A client that connects and stalls mid-line must not park the serial
// accept loop: after the receive deadline it gets a structured timeout
// response, its connection drops, and the next client is served.
TEST(DaemonSocket, StalledClientTimesOutAndDaemonKeepsServing) {
  ServeConfig cfg = smokeServeConfig();
  cfg.recvTimeoutMs = 200;
  Daemon d(cfg);
  std::string err;
  ASSERT_TRUE(d.listenTcp(0, &err)) << err;
  std::thread server([&d] { EXPECT_EQ(d.run(), 0); });

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(d.boundPort()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::send(fd, "STA", 3, 0), 3);  // a line that never finishes

  std::string resp;
  char buf[512];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
    if (resp.find('\n') != std::string::npos) break;
  }
  ::close(fd);
  auto timedOut = parseResponse(resp.substr(0, resp.find('\n')));
  EXPECT_FALSE(okOf(timedOut));
  EXPECT_EQ(strOf(timedOut, "code"), "timeout");

  // The accept loop survived; a well-behaved client still gets answers.
  Connection conn;
  ASSERT_TRUE(conn.connect({"", d.boundPort()}, &err)) << err;
  auto stats = conn.roundTrip("STATS", &err);
  ASSERT_TRUE(stats.has_value()) << err;
  EXPECT_TRUE(okOf(parseResponse(*stats)));
  auto down = conn.roundTrip("SHUTDOWN", &err);
  ASSERT_TRUE(down.has_value()) << err;
  server.join();
}

}  // namespace
}  // namespace ifko::serve
