// The cycle-attribution observability layer.
//
// The accounting identity is the load-bearing property: every cycle the
// timing model's completion front advanced is charged to exactly one
// StallCause, so Attribution::total() == cycles() — for every kernel, in
// both timing contexts, at any --jobs.  On top of that, the golden
// semantics tests pin the attributions to the paper's mechanisms: AE
// shrinks the FP-dependence share, PF shrinks the memory-stall share out
// of cache, and WNT on a read-modify-write stream raises it (the NT-flush
// penalty on machines that punish NT stores to cached lines).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "kernels/registry.h"
#include "search/evalcache.h"
#include "search/orchestrator.h"
#include "sim/timer.h"
#include "support/json.h"

namespace ifko {
namespace {

using kernels::BlasOp;
using kernels::KernelSpec;

std::string tmpFile(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

sim::TimeResult timeWith(const KernelSpec& spec, const arch::MachineConfig& m,
                         const opt::TuningParams& tuning, int64_t n,
                         sim::TimeContext ctx) {
  fko::CompileOptions opts;
  opts.tuning = tuning;
  auto r = fko::compileKernel(spec.hilSource(), opts, m);
  EXPECT_TRUE(r.ok) << spec.name() << ": " << r.error;
  return sim::timeKernel(m, r.fn, spec, n, ctx);
}

double share(const sim::Attribution& a, uint64_t part) {
  uint64_t total = a.total();
  return total == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(total);
}

// --- the accounting identity ------------------------------------------------

TEST(Attribution, IdentityHoldsForEveryRegistryKernelInBothContexts) {
  for (const arch::MachineConfig& m : {arch::p4e(), arch::opteron()}) {
    for (const auto& spec : kernels::allKernels()) {
      for (sim::TimeContext ctx :
           {sim::TimeContext::OutOfCache, sim::TimeContext::InL2}) {
        auto t = timeWith(spec, m, opt::TuningParams{}, 512, ctx);
        EXPECT_EQ(t.attr.total(), t.cycles)
            << spec.name() << " on " << m.name << " in "
            << std::string(sim::contextName(ctx));
      }
    }
  }
}

TEST(Attribution, IdentityHoldsUnderAggressiveTransforms) {
  // Unroll + accumulator expansion + prefetch + NT stores exercise every
  // milestone in the attribution partition (mid-segment memory charges,
  // store drains, unit occupancy, mispredicts from the shorter loop).
  opt::TuningParams p;
  p.unroll = 4;
  p.accumExpand = 4;
  p.nonTemporalWrites = true;
  p.prefetch["X"] = {true, ir::PrefKind::NTA, 1024};
  p.prefetch["Y"] = {true, ir::PrefKind::NTA, 1024};
  for (const arch::MachineConfig& m : {arch::p4e(), arch::opteron()}) {
    for (BlasOp op : {BlasOp::Dot, BlasOp::Axpy, BlasOp::Iamax}) {
      KernelSpec spec{op, ir::Scal::F64};
      for (sim::TimeContext ctx :
           {sim::TimeContext::OutOfCache, sim::TimeContext::InL2}) {
        auto t = timeWith(spec, m, p, 1024, ctx);
        EXPECT_EQ(t.attr.total(), t.cycles)
            << spec.name() << " on " << m.name;
      }
    }
  }
}

// --- golden attribution semantics -------------------------------------------

TEST(Attribution, AccumulatorExpansionShrinksFpChainShare) {
  KernelSpec ddot{BlasOp::Dot, ir::Scal::F64};
  opt::TuningParams base;
  base.unroll = 4;
  base.accumExpand = 1;
  opt::TuningParams expanded = base;
  expanded.accumExpand = 4;

  // In-L2 so memory is quiet and the FP dependence chain dominates.
  auto before = timeWith(ddot, arch::p4e(), base, 1024,
                         sim::TimeContext::InL2);
  auto after = timeWith(ddot, arch::p4e(), expanded, 1024,
                        sim::TimeContext::InL2);
  double beforeShare = share(before.attr, before.attr.of(sim::StallCause::FpDep));
  double afterShare = share(after.attr, after.attr.of(sim::StallCause::FpDep));
  EXPECT_LT(afterShare, beforeShare)
      << "AE should break the single-accumulator FP recurrence";

  // dasum's |x| reduction is entirely FP-chain-bound in L2, so there AE
  // pays off in cycles too, not just in the attribution mix.
  KernelSpec dasum{BlasOp::Asum, ir::Scal::F64};
  auto sumBefore = timeWith(dasum, arch::p4e(), base, 1024,
                            sim::TimeContext::InL2);
  auto sumAfter = timeWith(dasum, arch::p4e(), expanded, 1024,
                           sim::TimeContext::InL2);
  EXPECT_LT(share(sumAfter.attr, sumAfter.attr.of(sim::StallCause::FpDep)),
            share(sumBefore.attr, sumBefore.attr.of(sim::StallCause::FpDep)));
  EXPECT_LT(sumAfter.cycles, sumBefore.cycles);
}

TEST(Attribution, PrefetchShrinksMemoryStallShareOutOfCache) {
  KernelSpec ddot{BlasOp::Dot, ir::Scal::F64};
  opt::TuningParams base;
  base.unroll = 4;
  opt::TuningParams pf = base;
  pf.prefetch["X"] = {true, ir::PrefKind::NTA, 256};
  pf.prefetch["Y"] = {true, ir::PrefKind::NTA, 256};

  auto before = timeWith(ddot, arch::p4e(), base, 8192,
                         sim::TimeContext::OutOfCache);
  auto after = timeWith(ddot, arch::p4e(), pf, 8192,
                        sim::TimeContext::OutOfCache);
  EXPECT_LT(share(after.attr, after.attr.memoryStalls()),
            share(before.attr, before.attr.memoryStalls()));
  EXPECT_LT(after.cycles, before.cycles);
}

TEST(Attribution, NonTemporalStoresRaiseMemoryStallShareOnRmwStream) {
  // axpy reads and writes Y; its demand loads cache the lines, so NT
  // stores to them pay the flush penalty on Opteron
  // (ntStoreCheapWhenCached=false) — blind WNT makes the memory share of
  // the cycles worse, which is exactly why it must be searched, not
  // defaulted on.
  KernelSpec axpy{BlasOp::Axpy, ir::Scal::F64};
  opt::TuningParams base;
  base.unroll = 4;
  opt::TuningParams wnt = base;
  wnt.nonTemporalWrites = true;

  auto before = timeWith(axpy, arch::opteron(), base, 8192,
                         sim::TimeContext::OutOfCache);
  auto after = timeWith(axpy, arch::opteron(), wnt, 8192,
                        sim::TimeContext::OutOfCache);
  EXPECT_GT(share(after.attr, after.attr.memoryStalls()),
            share(before.attr, before.attr.memoryStalls()));
}

// --- memory-counter isolation between timing contexts -----------------------

TEST(Attribution, MemStatsDoNotBleedAcrossContexts) {
  KernelSpec ddot{BlasOp::Dot, ir::Scal::F64};
  opt::TuningParams p;

  // An in-L2 run between two out-of-cache runs (and vice versa) must see
  // identical counters: each timing run owns a fresh MemSystem and the
  // warming protocol's traffic is discarded before the timed pass.
  auto inAlone = timeWith(ddot, arch::p4e(), p, 128, sim::TimeContext::InL2);
  auto ooc1 = timeWith(ddot, arch::p4e(), p, 128,
                       sim::TimeContext::OutOfCache);
  auto inAfterOoc = timeWith(ddot, arch::p4e(), p, 128,
                             sim::TimeContext::InL2);
  auto ooc2 = timeWith(ddot, arch::p4e(), p, 128,
                       sim::TimeContext::OutOfCache);

  EXPECT_EQ(inAlone.mem, inAfterOoc.mem);
  EXPECT_EQ(inAlone.attr, inAfterOoc.attr);
  EXPECT_EQ(ooc1.mem, ooc2.mem);

  // The warmed run's counters describe only the timed pass: a 128-element
  // working set lives in the caches, so nothing goes to memory — the
  // warming fetches and installs must not leak into these counters.
  EXPECT_EQ(inAlone.mem.loadMissMem, 0u);
  EXPECT_EQ(inAlone.mem.busBytes, 0u);
  EXPECT_GT(ooc1.mem.loadMissMem, 0u);
}

// --- repeatable-block convergence reporting ---------------------------------

TEST(CompileObservability, RepeatableCapHitIsReportedNotSilent) {
  KernelSpec ddot{BlasOp::Dot, ir::Scal::F64};
  fko::CompileOptions full;
  full.tuning.unroll = 8;
  full.tuning.accumExpand = 4;
  auto converged = fko::compileKernel(ddot.hilSource(), full, arch::p4e());
  ASSERT_TRUE(converged.ok) << converged.error;
  EXPECT_TRUE(converged.repeatableConverged);
  EXPECT_TRUE(converged.warnings.empty());
  ASSERT_GE(converged.repeatableIters, 1);

  // Cap the block at exactly the iterations it needed: the confirming
  // no-change sweep never runs, so the compile must say so out loud.
  fko::CompileOptions capped = full;
  capped.maxRepeatableIters = converged.repeatableIters;
  auto cut = fko::compileKernel(ddot.hilSource(), capped, arch::p4e());
  ASSERT_TRUE(cut.ok) << cut.error;
  EXPECT_FALSE(cut.repeatableConverged);
  ASSERT_FALSE(cut.warnings.empty());
  EXPECT_EQ(cut.warnings[0].severity, DiagSeverity::Warning);
  EXPECT_NE(cut.warnings[0].message.find("iteration cap"), std::string::npos)
      << cut.warnings[0].message;
}

TEST(CompileObservability, PassDeltasCoverTheWholePipeline) {
  KernelSpec ddot{BlasOp::Dot, ir::Scal::F64};
  fko::CompileOptions opts;
  opts.tuning.unroll = 4;
  auto r = fko::compileKernel(ddot.hilSource(), opts, arch::p4e());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_FALSE(r.passes.empty());
  // The fundamental-transform stage leads, then only passes that fired.
  EXPECT_EQ(r.passes[0].name, "fundamental");
  for (const auto& p : r.passes) {
    EXPECT_TRUE(p.changed) << p.name;
    EXPECT_GT(p.instsBefore, 0u) << p.name;
  }
}

// --- schema v3: trace and cache carry bit-identical counters ----------------

std::vector<std::string> sortedLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(SchemaV3, CacheAndTraceAreBitIdenticalAtAnyJobs) {
  KernelSpec spec{BlasOp::Dot, ir::Scal::F64};
  auto runAt = [&](int jobs, const char* cacheName) {
    search::OrchestratorConfig oc;
    oc.search = search::SearchConfig::smoke();
    oc.search.jobs = jobs;
    oc.cachePath = tmpFile(cacheName);
    std::remove(oc.cachePath.c_str());
    search::Orchestrator orch(arch::p4e(), oc);
    auto outcome = orch.tune({spec.name(), spec.hilSource(), &spec});
    EXPECT_TRUE(outcome.result.ok) << outcome.result.error;
    return oc.cachePath;
  };
  std::string serial = runAt(1, "attr_cache_j1.jsonl");
  std::string parallel = runAt(8, "attr_cache_j8.jsonl");
  auto a = sortedLines(serial);
  auto b = sortedLines(parallel);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "cache records must not depend on --jobs";
  // The records really are v3: counters with attribution fields.
  bool sawCounters = false;
  for (const auto& line : a)
    if (line.find("\"counters\":{") != std::string::npos &&
        line.find("\"attr_fp_dep\":") != std::string::npos)
      sawCounters = true;
  EXPECT_TRUE(sawCounters);

  // Warm replay of the v3 cache: zero fresh evaluations, same winner.
  search::OrchestratorConfig oc;
  oc.search = search::SearchConfig::smoke();
  oc.cachePath = serial;
  search::Orchestrator warm(arch::p4e(), oc);
  auto replay = warm.tune({spec.name(), spec.hilSource(), &spec});
  ASSERT_TRUE(replay.result.ok) << replay.result.error;
  EXPECT_EQ(replay.result.evaluations, 0);
}

TEST(SchemaV3, TraceCountersSatisfyTheIdentityPerCandidate) {
  KernelSpec spec{BlasOp::Asum, ir::Scal::F32};
  search::OrchestratorConfig oc;
  oc.search = search::SearchConfig::smoke();
  oc.tracePath = tmpFile("attr_trace_v3.jsonl");
  std::remove(oc.tracePath.c_str());
  search::Orchestrator orch(arch::p4e(), oc);
  auto outcome = orch.tune({spec.name(), spec.hilSource(), &spec});
  ASSERT_TRUE(outcome.result.ok) << outcome.result.error;

  std::ifstream in(oc.tracePath);
  ASSERT_TRUE(in.good());
  std::string line;
  int counted = 0;
  while (std::getline(in, line)) {
    std::map<std::string, JsonValue> obj;
    ASSERT_TRUE(parseJsonObject(line, &obj)) << line;
    auto str = [&](const char* k) {
      auto it = obj.find(k);
      return it == obj.end() ? std::string() : it->second.string;
    };
    if (str("event") != "candidate") continue;
    auto it = obj.find("counters");
    if (str("verdict") == "pass") {
      ASSERT_NE(it, obj.end()) << "timed candidate without counters: " << line;
      ASSERT_EQ(it->second.kind, JsonValue::Kind::Object);
      uint64_t attrTotal = 0;
      for (const auto& [key, value] : *it->second.object)
        if (key.rfind("attr_", 0) == 0) attrTotal += value.asUint();
      EXPECT_EQ(attrTotal, obj.at("cycles").asUint()) << line;
      ++counted;
    } else {
      EXPECT_EQ(it, obj.end()) << "failed candidate carries counters: " << line;
    }
  }
  EXPECT_GT(counted, 0);
}

TEST(SchemaV3, LegacyCacheLinesStillLoadAndNewOnesRoundTrip) {
  std::string path = tmpFile("attr_cache_compat.jsonl");
  std::remove(path.c_str());
  {
    // A v1 line (no status, no counters) and a v2 line (status, no
    // counters), as earlier releases wrote them.
    std::ofstream out(path);
    out << "{\"source\":\"deadbeef\",\"machine\":\"p4e\",\"context\":"
           "\"out-of-cache\",\"n\":4096,\"seed\":42,\"tester_n\":64,"
           "\"params\":\"v1\",\"cycles\":123}\n";
    out << "{\"source\":\"deadbeef\",\"machine\":\"p4e\",\"context\":"
           "\"out-of-cache\",\"n\":4096,\"seed\":42,\"tester_n\":64,"
           "\"params\":\"v2\",\"cycles\":0,\"status\":\"tester_fail\"}\n";
  }

  search::EvalKey v1{"deadbeef", "p4e", "out-of-cache", 4096, 42, 64, "v1"};
  search::EvalKey v2{"deadbeef", "p4e", "out-of-cache", 4096, 42, 64, "v2"};
  search::EvalKey v3{"deadbeef", "p4e", "out-of-cache", 4096, 42, 64, "v3"};

  search::EvalCounters counters;
  counters.attr.cycles[static_cast<size_t>(sim::StallCause::FpDep)] = 70;
  counters.attr.cycles[static_cast<size_t>(sim::StallCause::MemMain)] = 53;
  counters.mem.loads = 11;
  counters.mem.loadHitL1 = 9;
  counters.mem.prefUseful = 2;
  counters.irInsts = 31;
  counters.repeatableIters = 2;
  counters.repeatableConverged = false;
  counters.spillSlots = 1;

  {
    search::EvalCache cache;
    ASSERT_TRUE(cache.open(path));
    EXPECT_EQ(cache.damagedLines(), 0u);
    auto r1 = cache.lookup(v1);
    ASSERT_TRUE(r1.has_value());
    EXPECT_EQ(r1->cycles, 123u);
    EXPECT_EQ(r1->status, search::EvalOutcome::Status::Timed);
    EXPECT_FALSE(r1->counters.has_value());
    auto r2 = cache.lookup(v2);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->status, search::EvalOutcome::Status::TesterFail);
    EXPECT_FALSE(r2->counters.has_value());
    cache.insert(v3, 123, search::EvalOutcome::Status::Timed, counters);
  }
  {
    // Reopen: the v3 record round-trips bit for bit, legacy lines intact.
    search::EvalCache cache;
    ASSERT_TRUE(cache.open(path));
    EXPECT_EQ(cache.size(), 3u);
    auto r3 = cache.lookup(v3);
    ASSERT_TRUE(r3.has_value());
    ASSERT_TRUE(r3->counters.has_value());
    EXPECT_EQ(*r3->counters, counters);
    EXPECT_TRUE(cache.lookup(v1).has_value());
  }
}

}  // namespace
}  // namespace ifko
