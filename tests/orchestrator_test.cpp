// The batch-tuning orchestrator: parallel evaluation must reproduce the
// serial search bit for bit, the persistent cache must round-trip, and the
// trace must be well-formed JSONL.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "arch/machine.h"
#include "search/orchestrator.h"
#include "support/json.h"

namespace ifko::search {
namespace {

using kernels::BlasOp;
using kernels::KernelSpec;

SearchConfig smokeConfig(int jobs = 1) {
  SearchConfig c = SearchConfig::smoke();
  c.jobs = jobs;
  return c;
}

KernelJob jobFor(const KernelSpec& spec) {
  return {spec.name(), spec.hilSource(), &spec};
}

std::string tmpFile(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(SearchConfigApi, SmokeMatchesLegacyFastSettings) {
  SearchConfig c = SearchConfig::smoke();
  EXPECT_TRUE(c.reducedGrids());
  EXPECT_EQ(c.n, 4096);
  EXPECT_EQ(c.testerN, 64);
  EXPECT_EQ(c.jobs, 1);
  EXPECT_FALSE(SearchConfig{}.reducedGrids());
}

TEST(Orchestrator, ParallelMatchesSerialExactly) {
  KernelSpec spec{BlasOp::Dot, ir::Scal::F64};
  OrchestratorConfig serial;
  serial.search = smokeConfig(1);
  OrchestratorConfig parallel;
  parallel.search = smokeConfig(8);

  Orchestrator a(arch::p4e(), serial);
  Orchestrator b(arch::p4e(), parallel);
  auto ra = a.tune(jobFor(spec));
  auto rb = b.tune(jobFor(spec));
  ASSERT_TRUE(ra.result.ok) << ra.result.error;
  ASSERT_TRUE(rb.result.ok) << rb.result.error;
  EXPECT_EQ(ra.result.best, rb.result.best);
  EXPECT_EQ(ra.result.bestCycles, rb.result.bestCycles);
  EXPECT_EQ(ra.result.defaultCycles, rb.result.defaultCycles);
  EXPECT_EQ(ra.result.evaluations, rb.result.evaluations);
  EXPECT_EQ(ra.result.ledger, rb.result.ledger);
}

TEST(Orchestrator, MatchesPlainTuneKernel) {
  // The orchestrated evaluator is a drop-in for the serial path.
  KernelSpec spec{BlasOp::Asum, ir::Scal::F32};
  auto direct = tuneKernel(spec, arch::p4e(), smokeConfig());
  OrchestratorConfig oc;
  oc.search = smokeConfig(4);
  Orchestrator orch(arch::p4e(), oc);
  auto viaOrch = orch.tune(jobFor(spec));
  ASSERT_TRUE(direct.ok && viaOrch.result.ok);
  EXPECT_EQ(direct.best, viaOrch.result.best);
  EXPECT_EQ(direct.bestCycles, viaOrch.result.bestCycles);
  EXPECT_EQ(direct.ledger, viaOrch.result.ledger);
}

TEST(Orchestrator, CacheRoundTripSecondRunAllHits) {
  std::string cachePath = tmpFile("orch_cache_roundtrip.jsonl");
  std::remove(cachePath.c_str());
  KernelSpec spec{BlasOp::Copy, ir::Scal::F64};

  OrchestratorConfig oc;
  oc.search = smokeConfig(2);
  oc.cachePath = cachePath;

  TuneResult cold, warm;
  uint64_t coldMisses = 0;
  {
    std::string err;
    Orchestrator orch(arch::p4e(), oc, &err);
    ASSERT_TRUE(err.empty()) << err;
    auto out = orch.tune(jobFor(spec));
    ASSERT_TRUE(out.result.ok) << out.result.error;
    cold = out.result;
    coldMisses = out.cacheMisses;
    EXPECT_GT(coldMisses, 0u);
  }
  {
    std::string err;
    Orchestrator orch(arch::p4e(), oc, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(orch.cache().size(), coldMisses);  // reloaded from disk
    auto out = orch.tune(jobFor(spec));
    ASSERT_TRUE(out.result.ok) << out.result.error;
    warm = out.result;
    EXPECT_EQ(out.cacheMisses, 0u);  // 100% hit rate
    EXPECT_GT(out.cacheHits, 0u);
    EXPECT_EQ(out.result.evaluations, 0);  // nothing re-timed
  }
  EXPECT_EQ(cold.best, warm.best);
  EXPECT_EQ(cold.bestCycles, warm.bestCycles);
  EXPECT_EQ(cold.ledger, warm.ledger);
  std::remove(cachePath.c_str());
}

TEST(Orchestrator, TraceIsWellFormedJsonl) {
  std::string tracePath = tmpFile("orch_trace.jsonl");
  std::remove(tracePath.c_str());
  KernelSpec spec{BlasOp::Scal, ir::Scal::F32};

  OrchestratorConfig oc;
  oc.search = smokeConfig(2);
  oc.tracePath = tracePath;
  {
    std::string err;
    Orchestrator orch(arch::p4e(), oc, &err);
    ASSERT_TRUE(err.empty()) << err;
    auto outcome = orch.tuneAll({jobFor(spec)});
    ASSERT_EQ(outcome.failures(), 0);
  }

  std::ifstream in(tracePath);
  ASSERT_TRUE(in.is_open());
  std::set<std::string> events;
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    std::map<std::string, JsonValue> obj;
    std::string perr;
    ASSERT_TRUE(parseJsonObject(line, &obj, &perr)) << perr << ": " << line;
    auto ev = obj.find("event");
    ASSERT_NE(ev, obj.end()) << line;
    events.insert(ev->second.string);
    if (ev->second.string == "candidate") {
      // Every traced candidate carries a parseable canonical spec.
      auto params = obj.find("params");
      ASSERT_NE(params, obj.end());
      auto spec = opt::parseTuningSpec(params->second.string);
      EXPECT_TRUE(spec.ok) << spec.error;
    }
  }
  EXPECT_GT(lines, 10);
  for (const char* required : {"kernel_start", "dimension_start", "candidate",
                               "dimension_end", "kernel_end", "batch_end"})
    EXPECT_TRUE(events.count(required)) << required;
  std::remove(tracePath.c_str());
}

TEST(EvalCacheTest, PersistAndReload) {
  std::string path = tmpFile("evalcache_persist.jsonl");
  std::remove(path.c_str());
  EvalKey key{"deadbeef01234567", "P4E", "out-of-cache", 4096, 42, 64,
              "sv=Y ur=4 lc=Y ae=1 sched=spread wnt=N bf=N cisc=N"};
  {
    EvalCache cache;
    ASSERT_TRUE(cache.open(path));
    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.insert(key, 12345);
    cache.insert(key, 99999);  // duplicate insert is a no-op
    auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->cycles, 12345u);
    EXPECT_EQ(hit->status, EvalOutcome::Status::Timed);
  }
  {
    EvalCache cache;
    std::string err;
    ASSERT_TRUE(cache.open(path, &err)) << err;
    EXPECT_EQ(cache.size(), 1u);
    auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->cycles, 12345u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.hitRate(), 1.0);
  }
  std::remove(path.c_str());
}

TEST(EvalCacheTest, SkipsCorruptLines) {
  std::string path = tmpFile("evalcache_corrupt.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"source\":\"aa\",\"machine\":\"P4E\",\"context\":\"in-L2\","
           "\"n\":128,\"seed\":1,\"tester_n\":16,\"params\":\"ur=2\","
           "\"cycles\":777}\n";
    out << "not json at all\n";
    out << "{\"source\":\"truncated\n";
  }
  EvalCache cache;
  ASSERT_TRUE(cache.open(path));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.damagedLines(), 2u);  // the bad JSON and the truncated tail
  EvalKey key{"aa", "P4E", "in-L2", 128, 1, 16, "ur=2"};
  auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cycles, 777u);
  std::remove(path.c_str());
}

TEST(EvalKeyTest, DistinctFieldsDistinctKeys) {
  EvalKey a{"h", "P4E", "out-of-cache", 4096, 42, 64, "ur=1"};
  EvalKey b = a;
  EXPECT_EQ(a.str(), b.str());
  b.n = 8192;
  EXPECT_NE(a.str(), b.str());
  b = a;
  b.context = "in-L2";
  EXPECT_NE(a.str(), b.str());
  b = a;
  b.testerN = 128;
  EXPECT_NE(a.str(), b.str());
  b = a;
  b.params = "ur=2";
  EXPECT_NE(a.str(), b.str());
}

TEST(LoadKernelDir, LoadsSortedHilFiles) {
  std::string err;
  auto jobs = loadKernelDir(IFKO_KERNELS_HIL_DIR, &err);
  ASSERT_FALSE(jobs.empty()) << err;
  EXPECT_TRUE(err.empty());
  for (size_t i = 1; i < jobs.size(); ++i)
    EXPECT_LT(jobs[i - 1].name, jobs[i].name);
  for (const auto& j : jobs) {
    EXPECT_FALSE(j.hilSource.empty()) << j.name;
    EXPECT_EQ(j.name.find(".hil"), std::string::npos) << j.name;
  }
}

TEST(LoadKernelDir, MissingDirectoryReportsError) {
  std::string err;
  auto jobs = loadKernelDir("/nonexistent-ifko-kernel-dir", &err);
  EXPECT_TRUE(jobs.empty());
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace ifko::search
