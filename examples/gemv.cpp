// Level 2 BLAS on the nested-loop support: tune gemv's inner dot-product
// loop and compare against the plain lowering — the direction the paper's
// conclusion points at ("ifko already capable of improving even Level 3
// BLAS performance"; here we demonstrate Level 2).
//
//   $ ./gemv [M] [N]
#include <cstdio>
#include <cstdlib>

#include "fko/compiler.h"
#include "kernels/level2.h"
#include "search/linesearch.h"

int main(int argc, char** argv) {
  using namespace ifko;
  int64_t m = argc > 1 ? std::atoll(argv[1]) : 256;
  int64_t n = argc > 2 ? std::atoll(argv[2]) : 512;

  for (const auto& machine : arch::allMachines()) {
    std::printf("=== dgemv (%lldx%lld, row-major) on %s ===\n",
                static_cast<long long>(m), static_cast<long long>(n),
                machine.name.c_str());
    std::string src = kernels::gemvSource(ir::Scal::F64);

    // A small parameter sweep over the inner loop's transforms, each
    // candidate verified against the reference before timing.
    struct Candidate {
      const char* label;
      opt::TuningParams p;
    };
    std::vector<Candidate> candidates;
    {
      opt::TuningParams p;
      p.simdVectorize = false;
      candidates.push_back({"scalar (plain lowering)", p});
    }
    {
      opt::TuningParams p;
      candidates.push_back({"SV", p});
    }
    for (int ae : {2, 4}) {
      opt::TuningParams p;
      p.unroll = 4;
      p.accumExpand = ae;
      p.prefetch["A"] = {true, ir::PrefKind::NTA, 1024};
      candidates.push_back({ae == 2 ? "SV+UR4+AE2+PF" : "SV+UR4+AE4+PF", p});
    }

    for (const auto& c : candidates) {
      fko::CompileOptions opts;
      opts.tuning = c.p;
      auto r = fko::compileKernel(src, opts, machine);
      if (!r.ok) {
        std::fprintf(stderr, "  %-24s compile failed: %s\n", c.label,
                     r.error.c_str());
        continue;
      }
      auto check = kernels::testGemv(r.fn, 16, 33);
      if (!check.ok) {
        std::fprintf(stderr, "  %-24s WRONG: %s\n", c.label,
                     check.message.c_str());
        continue;
      }
      auto t = kernels::timeGemv(machine, r.fn, m, n,
                                 sim::TimeContext::OutOfCache);
      double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n);
      std::printf("  %-24s %10llu cycles  (%.0f MFLOPS)\n", c.label,
                  static_cast<unsigned long long>(t.cycles),
                  t.mflops(flops, machine.ghz));
    }
  }
  return 0;
}
