// Tune a Level 1 BLAS kernel with the full iFKO line search and show what
// the empirical tuning bought, dimension by dimension.
//
//   $ ./tune_kernel [dot|asum|copy|swap|axpy|scal|iamax] [p4e|opteron]
#include <cstdio>
#include <cstring>

#include "search/linesearch.h"

int main(int argc, char** argv) {
  using namespace ifko;

  kernels::BlasOp op = kernels::BlasOp::Dot;
  if (argc > 1)
    for (auto o : kernels::allOps())
      if (kernels::opName(o) == argv[1]) op = o;
  arch::MachineConfig machine =
      (argc > 2 && std::strcmp(argv[2], "opteron") == 0) ? arch::opteron()
                                                         : arch::p4e();

  for (ir::Scal prec : {ir::Scal::F32, ir::Scal::F64}) {
    kernels::KernelSpec spec{op, prec};
    search::SearchConfig cfg;  // paper defaults: N=80000, out-of-cache
    auto r = search::tuneKernel(spec, machine, cfg);
    if (!r.ok) {
      std::fprintf(stderr, "%s: %s\n", spec.name().c_str(), r.error.c_str());
      continue;
    }
    std::printf("%s on %s: FKO defaults %llu cycles -> ifko %llu cycles "
                "(%.2fx, %d evaluations)\n",
                spec.name().c_str(), machine.name.c_str(),
                static_cast<unsigned long long>(r.defaultCycles),
                static_cast<unsigned long long>(r.bestCycles),
                r.speedupOverDefaults(), r.evaluations);
    uint64_t prev = r.defaultCycles;
    for (const auto& d : r.ledger) {
      std::printf("  after tuning %-7s: %10llu cycles (%+.1f%%)\n",
                  d.name.c_str(),
                  static_cast<unsigned long long>(d.cyclesAfter),
                  100.0 * (static_cast<double>(prev) /
                               static_cast<double>(d.cyclesAfter) -
                           1.0));
      prev = d.cyclesAfter;
    }
    auto row = search::paramsRow(r.best, r.analysis);
    std::printf("  chosen parameters (Table 3 format): SV:WNT=%s  PF X=%s  "
                "PF Y=%s  UR:AE=%s\n\n",
                row[0].c_str(), row[1].c_str(), row[2].c_str(),
                row[3].c_str());
  }
  return 0;
}
