// Context adaptation (paper Section 3.3): the same kernel tuned for
// out-of-cache and for in-L2 usage lands on different parameters — prefetch
// matters cold, computational optimizations (AE) matter warm, and WNT flips
// from useful to harmful.
//
//   $ ./context_adaptation
#include <cstdio>

#include "search/linesearch.h"

int main() {
  using namespace ifko;

  kernels::KernelSpec spec{kernels::BlasOp::Asum, ir::Scal::F32};
  for (const auto& machine : arch::allMachines()) {
    std::printf("=== %s on %s ===\n", spec.name().c_str(),
                machine.name.c_str());
    struct Ctx {
      sim::TimeContext ctx;
      int64_t n;
      const char* label;
    };
    for (const Ctx& c : {Ctx{sim::TimeContext::OutOfCache, 80000, "out-of-cache"},
                         Ctx{sim::TimeContext::InL2, 1024, "in-L2"}}) {
      search::SearchConfig cfg;
      cfg.n = c.n;
      cfg.context = c.ctx;
      auto r = search::tuneKernel(spec, machine, cfg);
      if (!r.ok) continue;
      auto row = search::paramsRow(r.best, r.analysis);
      std::printf("  %-13s N=%-6lld  SV:WNT=%s  PF X=%-9s  UR:AE=%-6s  "
                  "(%.2fx over FKO defaults)\n",
                  c.label, static_cast<long long>(c.n), row[0].c_str(),
                  row[1].c_str(), row[3].c_str(), r.speedupOverDefaults());
    }
  }
  std::printf(
      "\nThe paper's observation: \"empirical methods can be utilized to tune"
      "\na kernel to the particular context in which it is being used.\"\n");
  return 0;
}
