// Quickstart: compile a HIL kernel with FKO, run it on the simulated
// machine, and print the result and cycle count.
//
//   $ ./quickstart
//
// This touches each layer of the library once: the kernel registry (HIL
// source), the FKO compiler, the operand harness, and the co-simulator.
#include <cstdio>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "kernels/registry.h"
#include "kernels/tester.h"
#include "sim/timer.h"

int main() {
  using namespace ifko;

  // 1. Pick a kernel: double-precision dot product, straight from the
  //    paper's Figure 6(a).
  kernels::KernelSpec spec{kernels::BlasOp::Dot, ir::Scal::F64};
  std::printf("HIL source for %s:\n%s\n", spec.name().c_str(),
              spec.hilSource().c_str());

  // 2. Compile it with FKO's default transform parameters.
  arch::MachineConfig machine = arch::p4e();
  fko::CompileOptions opts;  // SV on, UR=1, no prefetch: plain defaults
  auto compiled = fko::compileKernel(spec.hilSource(), opts, machine);
  if (!compiled.ok) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.error.c_str());
    return 1;
  }
  std::printf("compiled to %zu instructions (%d spill slots)\n\n",
              compiled.fn.instCount(), compiled.spillSlots);

  // 3. Check it against the reference implementation.
  auto outcome = kernels::testKernel(spec, compiled.fn, 1000);
  std::printf("tester: %s\n", outcome.ok ? "PASS" : outcome.message.c_str());

  // 4. Time it on the simulated machine, out of cache.
  const int64_t n = 80000;
  auto t = sim::timeKernel(machine, compiled.fn, spec, n,
                           sim::TimeContext::OutOfCache);
  std::printf("%s, N=%lld, out-of-cache on %s: %llu cycles (%.1f MFLOPS)\n",
              spec.name().c_str(), static_cast<long long>(n),
              machine.name.c_str(),
              static_cast<unsigned long long>(t.cycles),
              t.mflops(spec.flops(n), machine.ghz));
  return 0;
}
