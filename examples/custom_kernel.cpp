// The point of putting the search in the compiler rather than a library
// generator (paper Section 1.1): tuning a kernel ATLAS knows nothing about.
//
// This example writes a new kernel in HIL — axpby: y = alpha*x + beta*y —
// and drives the compiler, tester, and timer layers directly in a small
// hand-rolled line search over unroll and prefetch distance.
//
//   $ ./custom_kernel
#include <cmath>
#include <cstdio>
#include <vector>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "search/linesearch.h"
#include "sim/interp.h"
#include "sim/memsys.h"
#include "sim/timer.h"
#include "sim/timing.h"
#include "support/rng.h"

namespace {

constexpr const char* kAxpby = R"(
# y[i] = alpha*x[i] + beta*y[i] -- not a Level 1 BLAS routine ATLAS tunes.
ROUTINE axpby;
PARAMS :: X = VEC(in), Y = VEC(inout), alpha = SCALAR, beta = SCALAR, N = INT;
TYPE double;
SCALARS :: x, y;
LOOP i = 0, N
LOOP_BODY
  x = X[0];
  y = Y[0];
  y = alpha * x + beta * y;
  Y[0] = y;
  X += 1;
  Y += 1;
LOOP_END
END
)";

struct Run {
  uint64_t cycles = 0;
  bool correct = false;
};

// Place operands, execute, verify against a host-side reference, and time.
Run runOnce(const ifko::ir::Function& fn, const ifko::arch::MachineConfig& m,
            int64_t n) {
  using namespace ifko;
  Run out;
  const double alpha = 1.25, beta = -0.5;

  sim::Memory mem(static_cast<size_t>(n) * 16 + (1 << 20));
  uint64_t xAddr = mem.allocate(static_cast<size_t>(n) * 8, 64);
  uint64_t yAddr = mem.allocate(static_cast<size_t>(n) * 8, 64);
  SplitMix64 rng(99);
  std::vector<double> hx(static_cast<size_t>(n)), hy(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    hx[static_cast<size_t>(i)] = rng.uniform(-1, 1);
    hy[static_cast<size_t>(i)] = rng.uniform(-1, 1);
    mem.write<double>(xAddr + static_cast<uint64_t>(i) * 8, hx[static_cast<size_t>(i)]);
    mem.write<double>(yAddr + static_cast<uint64_t>(i) * 8, hy[static_cast<size_t>(i)]);
  }

  sim::MemSystem msys(m);
  sim::TimingModel timing(m, msys);
  sim::Interp interp(fn, mem, &timing);
  std::vector<sim::ArgValue> args;
  for (const auto& p : fn.params) {
    if (p.isPointer())
      args.emplace_back(static_cast<int64_t>(p.name == "Y" ? yAddr : xAddr));
    else if (p.kind == ir::ParamKind::Int)
      args.emplace_back(n);
    else
      args.emplace_back(p.name == "alpha" ? alpha : beta);
  }
  interp.run(args);

  out.correct = true;
  for (int64_t i = 0; i < n; ++i) {
    double want = alpha * hx[static_cast<size_t>(i)] +
                  beta * hy[static_cast<size_t>(i)];
    double got = mem.read<double>(yAddr + static_cast<uint64_t>(i) * 8);
    if (got != want) out.correct = false;
  }
  out.cycles = timing.cycles();
  return out;
}

}  // namespace

int main() {
  using namespace ifko;
  arch::MachineConfig machine = arch::opteron();
  const int64_t n = 40000;

  // What does FKO's analysis say about this loop?
  auto report = fko::analyzeKernel(kAxpby, machine);
  if (!report.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("axpby analysis: vectorizable=%s, arrays=%zu, "
              "accumulators=%d\n\n",
              report.vectorizable ? "yes" : "no", report.arrays.size(),
              report.numAccumulators);

  // A small hand-rolled line search over (unroll, prefetch distance).
  opt::TuningParams best = search::fkoDefaults(report, machine);
  uint64_t bestCycles = UINT64_MAX;
  for (int ur : {1, 2, 4, 8}) {
    for (int distLines : {0, 2, 8, 16, 32}) {
      opt::TuningParams p = best;
      p.unroll = ur;
      for (auto& [name, pf] : p.prefetch) {
        pf.enabled = distLines > 0;
        pf.distBytes = distLines * machine.lineBytes();
      }
      fko::CompileOptions opts;
      opts.tuning = p;
      auto compiled = fko::compileKernel(kAxpby, opts, machine);
      if (!compiled.ok) continue;
      Run r = runOnce(compiled.fn, machine, n);
      if (!r.correct) {
        std::fprintf(stderr, "wrong answer at UR=%d dist=%d!\n", ur, distLines);
        return 1;
      }
      std::printf("  UR=%d PF dist=%2d lines -> %9llu cycles\n", ur, distLines,
                  static_cast<unsigned long long>(r.cycles));
      if (r.cycles < bestCycles) {
        bestCycles = r.cycles;
        best = p;
      }
    }
  }
  std::printf("\nbest: %s (%llu cycles, %.2f cycles/element)\n",
              best.str().c_str(), static_cast<unsigned long long>(bestCycles),
              static_cast<double>(bestCycles) / static_cast<double>(n));
  return 0;
}
