#include "support/str.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ifko {

bool parseInt64(std::string_view s, int64_t* out) {
  // strtoll needs a terminated buffer; reject anything that is not exactly
  // one integer (the lenient atoi family turns garbage into silent zeros).
  // strtoll itself would skip leading whitespace — " 4" is still garbage
  // for a flag value, so rule it out up front.
  if (s.empty() || s.size() > 32) return false;
  if (s.front() == ' ' || s.front() == '\t' || s.front() == '\n' ||
      s.front() == '\r')
    return false;
  char buf[33];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf, &end, 10);
  if (end != buf + s.size() || errno == ERANGE) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string replaceAll(std::string s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string fmtFixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace ifko
