#include "support/diagnostics.h"

#include <sstream>

namespace ifko {

std::string SourceLoc::str() const {
  if (!valid()) return "<no-loc>";
  std::ostringstream os;
  os << line << ":" << col;
  return os.str();
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  switch (severity) {
    case DiagSeverity::Note: os << "note"; break;
    case DiagSeverity::Warning: os << "warning"; break;
    case DiagSeverity::Error: os << "error"; break;
  }
  if (loc.valid()) os << " at " << loc.str();
  os << ": " << message;
  return os.str();
}

void DiagnosticEngine::error(SourceLoc loc, std::string msg) {
  diags_.push_back({DiagSeverity::Error, loc, std::move(msg)});
  ++error_count_;
}

void DiagnosticEngine::warning(SourceLoc loc, std::string msg) {
  diags_.push_back({DiagSeverity::Warning, loc, std::move(msg)});
}

void DiagnosticEngine::note(SourceLoc loc, std::string msg) {
  diags_.push_back({DiagSeverity::Note, loc, std::move(msg)});
}

std::string DiagnosticEngine::str() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.str() << "\n";
  return os.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

}  // namespace ifko
