// Minimal JSON support for the JSONL files the tuning subsystem exchanges:
// the persistent evaluation cache and the search event trace.  Both are
// streams of one-line objects (string/number/bool/null values, plus
// shallowly nested objects for grouped counters — no arrays), which is all
// this implements — by design, so a cache line can be appended atomically
// and a trace can be processed with line-oriented tools.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace ifko {

/// Escapes `s` for inclusion inside a JSON string literal (quotes excluded).
[[nodiscard]] std::string jsonEscape(std::string_view s);

/// Builds one flat JSON object; fields render in insertion order.
///
///   JsonWriter w;
///   w.field("event", "candidate").field("cycles", cycles);
///   fputs((w.str() + "\n").c_str(), f);
class JsonWriter {
 public:
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, const std::string& value);
  JsonWriter& field(std::string_view key, int64_t value);
  JsonWriter& field(std::string_view key, uint64_t value);
  JsonWriter& field(std::string_view key, int value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, bool value);
  /// Embeds another writer's object as a nested value.
  JsonWriter& field(std::string_view key, const JsonWriter& nested);

  /// The complete object, e.g. {"event":"candidate","cycles":123}.
  [[nodiscard]] std::string str() const;

 private:
  JsonWriter& raw(std::string_view key, std::string rendered);
  std::string body_;
};

/// One parsed JSON value.  Objects nest (boundedly deep); arrays do not.
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  /// Set iff kind == Object (shared_ptr: JsonValue is incomplete here).
  std::shared_ptr<std::map<std::string, JsonValue>> object;

  [[nodiscard]] int64_t asInt() const { return static_cast<int64_t>(number); }
  [[nodiscard]] uint64_t asUint() const {
    return static_cast<uint64_t>(number);
  }
};

/// Parses one JSON object into `out` (cleared first).  Returns false —
/// with a message in *error when given — on malformed input, trailing
/// garbage, arrays, or objects nested deeper than a small bound.
[[nodiscard]] bool parseJsonObject(std::string_view line,
                                   std::map<std::string, JsonValue>* out,
                                   std::string* error = nullptr);

}  // namespace ifko
