// Deterministic RNG (SplitMix64) used by tests, workload generators and the
// timer's data initialization.  Simulation results must be bit-reproducible,
// so all randomness flows through explicitly seeded instances of this.
#pragma once

#include <cstdint>

namespace ifko {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * nextDouble();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  uint64_t below(uint64_t n) { return next() % n; }

 private:
  uint64_t state_;
};

}  // namespace ifko
