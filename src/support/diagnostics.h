// Diagnostic machinery shared by the HIL front end and the FKO driver.
//
// The front end reports user-visible errors (bad HIL source) through a
// DiagnosticEngine; internal invariant violations use assertions.  This split
// follows the paper's system structure: HIL input is user-supplied, while IR
// is produced and consumed only by the toolchain itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ifko {

/// A position in a HIL source buffer.  Lines and columns are 1-based;
/// a default-constructed location means "no position" (driver-level errors).
struct SourceLoc {
  uint32_t line = 0;
  uint32_t col = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  [[nodiscard]] std::string str() const;
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

enum class DiagSeverity { Note, Warning, Error };

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Collects diagnostics during a front-end run.  Never throws; callers check
/// hasErrors() after each phase.
class DiagnosticEngine {
 public:
  void error(SourceLoc loc, std::string msg);
  void warning(SourceLoc loc, std::string msg);
  void note(SourceLoc loc, std::string msg);

  [[nodiscard]] bool hasErrors() const { return error_count_ > 0; }
  [[nodiscard]] size_t errorCount() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  /// All diagnostics rendered one per line (convenient for tests/messages).
  [[nodiscard]] std::string str() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  size_t error_count_ = 0;
};

}  // namespace ifko
