// Small string helpers used across the toolchain.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ifko {

[[nodiscard]] std::string_view trim(std::string_view s);
/// Strict base-10 integer parse: the whole of `s` must be a number (no
/// empty input, no trailing garbage, no overflow).  On success stores the
/// value in *out and returns true; on failure *out is untouched.
[[nodiscard]] bool parseInt64(std::string_view s, int64_t* out);
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix);
/// Replace every occurrence of `from` in `s` with `to`.
[[nodiscard]] std::string replaceAll(std::string s, std::string_view from,
                                     std::string_view to);
/// Printf-light double formatting with fixed decimals.
[[nodiscard]] std::string fmtFixed(double v, int decimals);

}  // namespace ifko
