#include "support/table.h"

#include <algorithm>
#include <sstream>

namespace ifko {

void TextTable::setHeader(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::addRow(std::vector<std::string> cells) {
  rows_.push_back({std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::addRule() { pending_rule_ = true; }

std::string TextTable::str() const {
  // Compute column widths over header and all rows.
  std::vector<size_t> w;
  auto widen = [&w](const std::vector<std::string>& cells) {
    if (cells.size() > w.size()) w.resize(cells.size(), 0);
    for (size_t i = 0; i < cells.size(); ++i)
      w[i] = std::max(w[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r.cells);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < w.size(); ++i) {
      std::string c = i < cells.size() ? cells[i] : "";
      os << c << std::string(w[i] - c.size(), ' ');
      if (i + 1 < w.size()) os << "  ";
    }
    os << "\n";
  };
  auto rule = [&] {
    size_t total = 0;
    for (size_t i = 0; i < w.size(); ++i) total += w[i] + (i + 1 < w.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
  };

  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) {
    if (r.rule_before) rule();
    emit(r.cells);
  }
  return os.str();
}

}  // namespace ifko
