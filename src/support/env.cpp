#include "support/env.h"

#include <cstdlib>

namespace ifko {

int64_t envInt(const std::string& name, int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

bool envFast() { return envInt("IFKO_FAST", 0) != 0; }

}  // namespace ifko
