// Stable content hashing for cache keys.
//
// The persistent evaluation cache (src/search/evalcache.h) keys on the HIL
// source text, so the hash must be identical across runs, platforms, and
// standard-library versions — std::hash guarantees none of that.  FNV-1a is
// tiny, has no seed, and is more than strong enough for a few thousand
// distinct kernel sources.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace ifko {

/// 64-bit FNV-1a over the bytes of `s`.
[[nodiscard]] constexpr uint64_t fnv1a(std::string_view s) {
  uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// fnv1a rendered as 16 lowercase hex digits (the cache's "source" field).
[[nodiscard]] inline std::string hashHex(std::string_view s) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a(s)));
  return buf;
}

}  // namespace ifko
