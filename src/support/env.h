// Environment-variable overrides for benchmark scale.
//
// The paper runs N=80000 out-of-cache and N=1024 in-L2; those are the
// defaults here.  Export IFKO_N_OOC / IFKO_N_INL2 / IFKO_FAST=1 to scale the
// benchmarks down (e.g. in CI).
#pragma once

#include <cstdint>
#include <string>

namespace ifko {

/// Returns the integer value of `name`, or `fallback` when unset/unparsable.
[[nodiscard]] int64_t envInt(const std::string& name, int64_t fallback);

/// True when IFKO_FAST is set to a non-zero value: benches shrink problem
/// sizes and sweep grids to smoke-test scale.
[[nodiscard]] bool envFast();

}  // namespace ifko
