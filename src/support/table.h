// Plain-text table rendering used by the benchmark harness to print
// paper-style tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace ifko {

/// Column-aligned text table.  Cells are strings; the first row added with
/// setHeader() is separated from the body by a rule.
class TextTable {
 public:
  void setHeader(std::vector<std::string> cells);
  void addRow(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next row.
  void addRule();

  [[nodiscard]] std::string str() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace ifko
