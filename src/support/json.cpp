#include "support/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ifko {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::raw(std::string_view key, std::string rendered) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += jsonEscape(key);
  body_ += "\":";
  body_ += rendered;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  return raw(key, '"' + jsonEscape(value) + '"');
}
JsonWriter& JsonWriter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}
JsonWriter& JsonWriter::field(std::string_view key, const std::string& value) {
  return field(key, std::string_view(value));
}
JsonWriter& JsonWriter::field(std::string_view key, int64_t value) {
  return raw(key, std::to_string(value));
}
JsonWriter& JsonWriter::field(std::string_view key, uint64_t value) {
  return raw(key, std::to_string(value));
}
JsonWriter& JsonWriter::field(std::string_view key, int value) {
  return raw(key, std::to_string(value));
}
JsonWriter& JsonWriter::field(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return raw(key, buf);
}
JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  return raw(key, value ? "true" : "false");
}
JsonWriter& JsonWriter::field(std::string_view key, const JsonWriter& nested) {
  return raw(key, nested.str());
}

std::string JsonWriter::str() const { return "{" + body_ + "}"; }

namespace {

/// Cursor over one line; every helper skips leading whitespace itself.
struct Parser {
  std::string_view s;
  size_t pos = 0;
  std::string error;

  void skipWs() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
      ++pos;
  }

  bool fail(const std::string& msg) {
    error = msg + " at offset " + std::to_string(pos);
    return false;
  }

  bool expect(char c) {
    skipWs();
    if (pos >= s.size() || s[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool peekIs(char c) {
    skipWs();
    return pos < s.size() && s[pos] == c;
  }

  bool parseString(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos < s.size() && s[pos] != '"') {
      char c = s[pos++];
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos >= s.size()) return fail("dangling escape");
      char e = s[pos++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos + 4 > s.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // The writer only emits \u for control characters; decode the
          // ASCII range and reject anything that would need UTF-8 encoding.
          if (code > 0x7f) return fail("non-ASCII \\u escape unsupported");
          *out += static_cast<char>(code);
          break;
        }
        default: return fail("unknown escape");
      }
    }
    if (pos >= s.size()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  bool parseObject(std::map<std::string, JsonValue>* out, int depth);

  bool parseValue(JsonValue* out, int depth) {
    skipWs();
    if (pos >= s.size()) return fail("missing value");
    char c = s[pos];
    if (c == '"') {
      out->kind = JsonValue::Kind::String;
      return parseString(&out->string);
    }
    if (c == '{') {
      // Shallow nesting only: grouped counters, not general documents.
      if (depth >= 4) return fail("object nested too deep");
      out->kind = JsonValue::Kind::Object;
      out->object = std::make_shared<std::map<std::string, JsonValue>>();
      return parseObject(out->object.get(), depth + 1);
    }
    if (c == '[') return fail("arrays unsupported");
    if (s.compare(pos, 4, "true") == 0) {
      out->kind = JsonValue::Kind::Bool;
      out->boolean = true;
      pos += 4;
      return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
      out->kind = JsonValue::Kind::Bool;
      out->boolean = false;
      pos += 5;
      return true;
    }
    if (s.compare(pos, 4, "null") == 0) {
      out->kind = JsonValue::Kind::Null;
      pos += 4;
      return true;
    }
    size_t end = pos;
    while (end < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[end])) || s[end] == '-' ||
            s[end] == '+' || s[end] == '.' || s[end] == 'e' || s[end] == 'E'))
      ++end;
    if (end == pos) return fail("bad value");
    std::string num(s.substr(pos, end - pos));
    char* endp = nullptr;
    double v = std::strtod(num.c_str(), &endp);
    if (endp != num.c_str() + num.size()) return fail("bad number");
    out->kind = JsonValue::Kind::Number;
    out->number = v;
    pos = end;
    return true;
  }
};

bool Parser::parseObject(std::map<std::string, JsonValue>* out, int depth) {
  if (!expect('{')) return false;
  if (!peekIs('}')) {
    for (;;) {
      std::string key;
      if (!parseString(&key)) return false;
      if (!expect(':')) return false;
      JsonValue v;
      if (!parseValue(&v, depth)) return false;
      (*out)[key] = std::move(v);
      if (peekIs(',')) {
        ++pos;
        continue;
      }
      break;
    }
  }
  return expect('}');
}

}  // namespace

bool parseJsonObject(std::string_view line,
                     std::map<std::string, JsonValue>* out,
                     std::string* error) {
  out->clear();
  Parser p{line};
  auto bail = [&] {
    if (error != nullptr) *error = p.error;
    return false;
  };
  if (!p.parseObject(out, 0)) return bail();
  p.skipWs();
  if (p.pos != line.size()) {
    p.fail("trailing garbage");
    return bail();
  }
  return true;
}

}  // namespace ifko
