// Machine configurations for the timing simulator.
//
// Two presets model the paper's evaluation platforms.  Parameter values are
// approximations of the published microarchitectural numbers; what the
// reproduction depends on is the *relationships* the paper leans on:
//
//  * P4E: high clock relative to memory (deep miss penalty, low bus
//    bytes/cycle), long FP latencies, expensive mispredicts, NT stores
//    cheap even for cached lines (write-combining through the L1),
//    no 3DNow! prefetchw.
//  * Opteron: lower clock with an integrated memory controller (shallower
//    miss penalty, more bus bytes/cycle => less bus-bound), short FP
//    latencies, NT stores costly unless the destination was never cached
//    (write-only streams), prefetchw available.
//
// Both are 3-wide out-of-order x86 cores whose 128-bit SSE operations split
// into two 64-bit halves (vector ops occupy their unit for 2 cycles).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/inst.h"

namespace ifko::arch {

struct CacheLevelConfig {
  int sizeBytes = 0;
  int lineBytes = 64;
  int assoc = 8;
  int latency = 3;  ///< load-to-use cycles on hit at this level
};

struct MachineConfig {
  std::string name;
  double ghz = 1.0;  ///< used only to convert cycles to MFLOPS

  std::vector<CacheLevelConfig> caches;  ///< L1 first
  int memLatency = 300;        ///< cycles from bus grant to data
  double busBytesPerCycle = 2; ///< sustained memory bandwidth
  int busTurnaround = 10;      ///< cycles lost switching read<->write streams
  int maxOutstandingMisses = 8;  ///< MSHRs; also gates prefetch issue
  /// Hardware stride prefetcher: lines fetched ahead once a sequential miss
  /// stream is detected (0 disables).  Both evaluation machines have one,
  /// which is why software prefetch buys percent-level rather than
  /// multiple-x improvements (paper Fig. 7: PF DST averages +26%).
  int hwPrefetchDepth = 2;
  int hwPrefetchTrainStreak = 2;  ///< sequential misses before it engages
  /// A prefetch is silently dropped when the bus backlog exceeds this many
  /// cycles (the paper: "many architectures discard prefetches when they are
  /// issued while the bus is busy").
  int prefetchDropBacklog = 48;
  int storeBufferEntries = 16;

  int issueWidth = 3;
  int robSize = 96;
  int mispredictPenalty = 20;

  // Instruction latencies (cycles).
  int latInt = 1;
  int latFAdd = 4;
  int latFMul = 5;
  int latFDiv = 30;
  int latFMisc = 2;   ///< abs/moves/bitwise/broadcast/reduction step
  int latLoadFwd = 1; ///< extra cycles a vector op spends per 64-bit half
  int vecOccupancy = 2;  ///< cycles a 128-bit op occupies its unit

  bool hasPrefW = false;
  /// True (P4E): an NT store that hits a cached line is still cheap.
  /// False (Opteron): it forces a flush/invalidate costing ntFlushPenalty.
  bool ntStoreCheapWhenCached = true;
  int ntFlushPenalty = 40;
  /// Write-combining buffers for non-temporal stores (P4: 6, K8: 4).  With
  /// fewer buffers than concurrently-written NT streams, partial lines
  /// flush at full line cost.
  int wcBuffers = 4;

  [[nodiscard]] int lineBytes() const { return caches.front().lineBytes; }
  /// Available prefetch instruction kinds on this machine.
  [[nodiscard]] std::vector<ir::PrefKind> prefKinds() const;
};

[[nodiscard]] MachineConfig p4e();
[[nodiscard]] MachineConfig opteron();
[[nodiscard]] const std::vector<MachineConfig>& allMachines();

}  // namespace ifko::arch
