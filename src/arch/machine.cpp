#include "arch/machine.h"

namespace ifko::arch {

std::vector<ir::PrefKind> MachineConfig::prefKinds() const {
  std::vector<ir::PrefKind> kinds = {ir::PrefKind::NTA, ir::PrefKind::T0,
                                     ir::PrefKind::T1};
  if (hasPrefW) kinds.push_back(ir::PrefKind::W);
  return kinds;
}

MachineConfig p4e() {
  MachineConfig m;
  m.name = "P4E";
  m.ghz = 2.8;
  // Prescott: 16KB 8-way L1D (4-cycle), 1MB 8-way L2 (~28-cycle).
  m.caches = {{.sizeBytes = 16 * 1024, .lineBytes = 64, .assoc = 8, .latency = 4},
              {.sizeBytes = 1024 * 1024, .lineBytes = 64, .assoc = 8, .latency = 28}};
  // ~140ns to DRAM at 2.8GHz; 6.4GB/s FSB = 2.3 B/cycle.
  m.memLatency = 392;
  m.busBytesPerCycle = 2.3;
  m.busTurnaround = 24;
  m.maxOutstandingMisses = 8;
  m.hwPrefetchDepth = 8;
  m.prefetchDropBacklog = 280;  // ~10 line transfers
  m.storeBufferEntries = 24;
  m.issueWidth = 3;
  m.robSize = 126;
  m.mispredictPenalty = 30;  // 31-stage pipeline
  m.latInt = 1;
  m.latFAdd = 5;
  m.latFMul = 7;
  m.latFDiv = 38;
  m.latFMisc = 2;
  m.vecOccupancy = 2;
  m.hasPrefW = false;
  m.ntStoreCheapWhenCached = true;
  m.ntFlushPenalty = 0;
  m.wcBuffers = 6;
  return m;
}

MachineConfig opteron() {
  MachineConfig m;
  m.name = "Opteron";
  m.ghz = 1.6;
  // K8: 64KB 2-way L1D (3-cycle), 1MB 16-way L2 (~12-cycle).
  m.caches = {{.sizeBytes = 64 * 1024, .lineBytes = 64, .assoc = 2, .latency = 3},
              {.sizeBytes = 1024 * 1024, .lineBytes = 64, .assoc = 16, .latency = 12}};
  // Integrated controller: ~80ns at 1.6GHz; ~5.3GB/s = 3.3 B/cycle.
  m.memLatency = 128;
  m.busBytesPerCycle = 3.3;
  m.busTurnaround = 10;
  m.maxOutstandingMisses = 8;
  m.hwPrefetchDepth = 6;
  m.prefetchDropBacklog = 200;
  m.storeBufferEntries = 20;
  m.issueWidth = 3;
  m.robSize = 72;
  m.mispredictPenalty = 12;
  m.latInt = 1;
  m.latFAdd = 4;
  m.latFMul = 4;
  m.latFDiv = 20;
  m.latFMisc = 2;
  m.vecOccupancy = 2;
  m.hasPrefW = true;
  m.ntStoreCheapWhenCached = false;
  m.ntFlushPenalty = 48;
  m.wcBuffers = 4;
  return m;
}

const std::vector<MachineConfig>& allMachines() {
  static const std::vector<MachineConfig> kMachines = {p4e(), opteron()};
  return kMachines;
}

}  // namespace ifko::arch
