#include "atlas/atlas.h"

#include "atlas/handkernels.h"
#include "fko/compiler.h"
#include "kernels/tester.h"

namespace ifko::atlas {

using kernels::BlasOp;
using opt::TuningParams;

namespace {

/// Fixed parameterizations standing in for ATLAS's hand-written C kernels
/// ("a multitude of both high and low-level optimizations": software
/// pipelining is implicit in the OOO model; prefetch, unrolling and WNT are
/// explicit here).
std::vector<std::pair<std::string, TuningParams>> cPresets(
    const kernels::KernelSpec& spec, const arch::MachineConfig& machine) {
  const int line = machine.lineBytes();
  auto report = fko::analyzeKernel(spec.hilSource(), machine);

  std::vector<std::pair<std::string, TuningParams>> presets;
  auto withPrefetch = [&](TuningParams p, ir::PrefKind kind, int distLines) {
    for (const auto& a : report.arrays) {
      if (!a.prefetchable) continue;
      p.prefetch[a.name] = {true, kind, distLines * line};
    }
    return p;
  };

  {
    TuningParams p;  // conservative: vectorize + moderate unroll + nta
    p.unroll = 4;
    presets.emplace_back("c_ur4_nta8", withPrefetch(p, ir::PrefKind::NTA, 8));
  }
  {
    TuningParams p;  // deep unroll, long prefetch
    p.unroll = 16;
    presets.emplace_back("c_ur16_nta24", withPrefetch(p, ir::PrefKind::NTA, 24));
  }
  {
    TuningParams p;  // t0 prefetch variant
    p.unroll = 8;
    presets.emplace_back("c_ur8_t0_16", withPrefetch(p, ir::PrefKind::T0, 16));
  }
  if (report.numAccumulators > 0) {
    TuningParams p;  // reduction kernels: accumulator-expanded variant
    p.unroll = 8;
    p.accumExpand = 4;
    presets.emplace_back("c_ur8_ae4_nta16",
                         withPrefetch(p, ir::PrefKind::NTA, 16));
  }
  {
    TuningParams p;  // streaming-store variant
    p.unroll = 8;
    p.nonTemporalWrites = true;
    presets.emplace_back("c_ur8_wnt_nta16",
                         withPrefetch(p, ir::PrefKind::NTA, 16));
  }
  if (!report.vectorizable) {
    TuningParams p;  // scalar deep-unroll variant (iamax-style kernels)
    p.simdVectorize = false;
    p.unroll = 16;
    presets.emplace_back("c_scalar_ur16", withPrefetch(p, ir::PrefKind::NTA, 8));
  }
  return presets;
}

}  // namespace

std::vector<Variant> variantPool(const kernels::KernelSpec& spec,
                                 const arch::MachineConfig& machine) {
  std::vector<Variant> pool;
  for (auto& [name, params] : cPresets(spec, machine)) {
    fko::CompileOptions opts;
    opts.tuning = params;
    auto r = fko::compileKernel(spec.hilSource(), opts, machine);
    if (!r.ok) continue;
    pool.push_back({name, false, std::move(r.fn)});
  }
  switch (spec.op) {
    case BlasOp::Iamax:
      pool.push_back({"asm_simd", true, iamaxSimd(spec.prec)});
      break;
    case BlasOp::Copy:
      pool.push_back({"asm_blockfetch", true, copyBlockFetch(spec.prec)});
      pool.push_back({"asm_cisc_nt", true, copyCisc(spec.prec, true)});
      pool.push_back({"asm_cisc", true, copyCisc(spec.prec, false)});
      break;
    default:
      break;
  }
  return pool;
}

Selection selectKernel(const kernels::KernelSpec& spec,
                       const arch::MachineConfig& machine, int64_t n,
                       sim::TimeContext context, uint64_t seed) {
  Selection sel;
  auto pool = variantPool(spec, machine);
  if (pool.empty()) {
    sel.error = "empty variant pool";
    return sel;
  }
  for (auto& v : pool) {
    // ATLAS's install tests every candidate before timing it.
    auto outcome = kernels::testKernel(spec, v.fn, 257);
    if (!outcome.ok) continue;
    auto t = sim::timeKernel(machine, v.fn, spec, n, context, seed);
    ++sel.tried;
    if (!sel.ok || t.cycles < sel.cycles) {
      sel.ok = true;
      sel.cycles = t.cycles;
      sel.best = v;
    }
  }
  if (!sel.ok) {
    sel.error = "no variant passed the tester";
    return sel;
  }
  sel.displayName = spec.name() + (sel.best.assembly ? "*" : "");
  return sel;
}

}  // namespace ifko::atlas
