// Hand-tuned "assembly" kernels (the paper's ATLAS comparators that beat
// automated compilation):
//
//  * iamaxSimd — SIMD-vectorized absolute-max search with per-lane running
//    maxima and index blending; the transformation "neither icc nor ifko can
//    do automatically" (paper Section 3.3).  First-index tie semantics are
//    preserved exactly.
//  * copyBlockFetch — AMD's block-fetch technique [Wall 2001]: touch a block
//    of lines with grouped dummy loads, then stream it out with grouped
//    non-temporal stores, amortizing the bus read/write turnaround.  The
//    trick behind the hand-tuned P4E dcopy win.
//  * copyCisc — copy with a single shared index register (CISC
//    base+index addressing), one fewer integer op per iteration than FKO's
//    two pointer bumps; the Opteron scopy win.
//
// These are written directly in physical registers like real hand-tuned
// assembly: they bypass every compiler pass.
#pragma once

#include "ir/function.h"

namespace ifko::atlas {

[[nodiscard]] ir::Function iamaxSimd(ir::Scal prec);
[[nodiscard]] ir::Function copyBlockFetch(ir::Scal prec);
[[nodiscard]] ir::Function copyCisc(ir::Scal prec, bool nonTemporal);

}  // namespace ifko::atlas
