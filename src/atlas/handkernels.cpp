#include "atlas/handkernels.h"

#include "ir/builder.h"

namespace ifko::atlas {

using ir::Builder;
using ir::Cond;
using ir::Function;
using ir::Mem;
using ir::Op;
using ir::Reg;
using ir::Scal;

namespace {

Reg R(int i) { return Reg::intReg(i); }
Reg X(int i) { return Reg::fpReg(i); }

void markHandWritten(Function& fn) {
  // Physical registers throughout, no spills: ready to execute as-is.
  fn.regAllocated = true;
  fn.numSpillSlots = 0;
}

}  // namespace

Function copyCisc(Scal prec, bool nonTemporal) {
  // copy(X=r0, Y=r1, N=r2) with a shared byte index in r3.
  const int esize = scalBytes(prec);
  const int elemsPerIter = 64 / esize;  // 4 x 16B vectors = one line

  Function fn;
  fn.name = nonTemporal ? "copy_cisc_nt" : "copy_cisc";
  fn.params.push_back({.name = "X", .kind = prec == Scal::F32
                                               ? ir::ParamKind::PtrF32
                                               : ir::ParamKind::PtrF64,
                       .reg = R(0), .vecRead = true});
  fn.params.push_back({.name = "Y", .kind = prec == Scal::F32
                                               ? ir::ParamKind::PtrF32
                                               : ir::ParamKind::PtrF64,
                       .reg = R(1), .vecWritten = true});
  fn.params.push_back({.name = "N", .kind = ir::ParamKind::Int, .reg = R(2)});

  int32_t entry = fn.addBlock();
  int32_t main = fn.addBlock();
  int32_t remEntry = fn.addBlock();
  int32_t remLoop = fn.addBlock();
  int32_t exit = fn.addBlock();

  {
    Builder b(fn, entry);
    b.emit({.op = Op::IMovI, .dst = R(3), .imm = 0});  // byte index
    b.emit({.op = Op::IAddCC, .dst = R(4), .src1 = R(2), .imm = -elemsPerIter});
    b.jcc(Cond::LT, remEntry);
  }
  {
    Builder b(fn, main);
    for (int v = 0; v < 4; ++v) {
      Mem src = ir::memIdx(R(0), R(3), 1, v * 16);
      Mem dst = ir::memIdx(R(1), R(3), 1, v * 16);
      b.emit({.op = Op::VLd, .type = prec, .dst = X(v), .mem = src});
      b.emit({.op = nonTemporal ? Op::VStNT : Op::VSt, .type = prec,
              .src1 = X(v), .mem = dst});
    }
    b.emit({.op = Op::IAddI, .dst = R(3), .src1 = R(3), .imm = 64});
    b.emit({.op = Op::IAddCC, .dst = R(4), .src1 = R(4), .imm = -elemsPerIter});
    b.jcc(Cond::GE, main);
  }
  {
    Builder b(fn, remEntry);
    b.emit({.op = Op::IAddI, .dst = R(5), .src1 = R(4), .imm = elemsPerIter});
    b.icmpi(R(5), 0);
    b.jcc(Cond::LE, exit);
  }
  {
    Builder b(fn, remLoop);
    b.emit({.op = Op::FLd, .type = prec, .dst = X(0),
            .mem = ir::memIdx(R(0), R(3), 1, 0)});
    b.emit({.op = Op::FSt, .type = prec, .src1 = X(0),
            .mem = ir::memIdx(R(1), R(3), 1, 0)});
    b.emit({.op = Op::IAddI, .dst = R(3), .src1 = R(3), .imm = esize});
    b.emit({.op = Op::IAddCC, .dst = R(5), .src1 = R(5), .imm = -1});
    b.jcc(Cond::GT, remLoop);
  }
  {
    Builder b(fn, exit);
    b.ret();
  }
  markHandWritten(fn);
  return fn;
}

Function copyBlockFetch(Scal prec) {
  // copy(X=r0, Y=r1, N=r2): blocks of 8 lines (512B).  Phase 1 touches each
  // line with a dummy load (grouped reads); phase 2 streams the block out
  // with grouped non-temporal stores.
  const int esize = scalBytes(prec);
  const int blkElems = 512 / esize;

  Function fn;
  fn.name = "copy_blockfetch";
  fn.params.push_back({.name = "X", .kind = prec == Scal::F32
                                               ? ir::ParamKind::PtrF32
                                               : ir::ParamKind::PtrF64,
                       .reg = R(0), .vecRead = true});
  fn.params.push_back({.name = "Y", .kind = prec == Scal::F32
                                               ? ir::ParamKind::PtrF32
                                               : ir::ParamKind::PtrF64,
                       .reg = R(1), .vecWritten = true});
  fn.params.push_back({.name = "N", .kind = ir::ParamKind::Int, .reg = R(2)});

  int32_t entry = fn.addBlock();
  int32_t blk = fn.addBlock();
  int32_t remEntry = fn.addBlock();
  int32_t remLoop = fn.addBlock();
  int32_t exit = fn.addBlock();

  {
    Builder b(fn, entry);
    b.emit({.op = Op::IMovI, .dst = R(3), .imm = 0});
    b.emit({.op = Op::IAddCC, .dst = R(4), .src1 = R(2), .imm = -blkElems});
    b.jcc(Cond::LT, remEntry);
  }
  {
    Builder b(fn, blk);
    // Block fetch: one load per line pulls the block into cache back-to-back.
    for (int l = 0; l < 8; ++l)
      b.emit({.op = Op::FLd, .type = prec, .dst = X(7),
              .mem = ir::memIdx(R(0), R(3), 1, l * 64)});
    // Stream out in batches of 8 vectors (reads all hit the cache now).
    for (int batch = 0; batch < 4; ++batch) {
      for (int v = 0; v < 8; ++v)
        b.emit({.op = Op::VLd, .type = prec, .dst = X(v),
                .mem = ir::memIdx(R(0), R(3), 1, batch * 128 + v * 16)});
      for (int v = 0; v < 8; ++v)
        b.emit({.op = Op::VStNT, .type = prec, .src1 = X(v),
                .mem = ir::memIdx(R(1), R(3), 1, batch * 128 + v * 16)});
    }
    b.emit({.op = Op::IAddI, .dst = R(3), .src1 = R(3), .imm = 512});
    b.emit({.op = Op::IAddCC, .dst = R(4), .src1 = R(4), .imm = -blkElems});
    b.jcc(Cond::GE, blk);
  }
  {
    Builder b(fn, remEntry);
    b.emit({.op = Op::IAddI, .dst = R(5), .src1 = R(4), .imm = blkElems});
    b.icmpi(R(5), 0);
    b.jcc(Cond::LE, exit);
  }
  {
    Builder b(fn, remLoop);
    b.emit({.op = Op::FLd, .type = prec, .dst = X(0),
            .mem = ir::memIdx(R(0), R(3), 1, 0)});
    b.emit({.op = Op::FSt, .type = prec, .src1 = X(0),
            .mem = ir::memIdx(R(1), R(3), 1, 0)});
    b.emit({.op = Op::IAddI, .dst = R(3), .src1 = R(3), .imm = esize});
    b.emit({.op = Op::IAddCC, .dst = R(5), .src1 = R(5), .imm = -1});
    b.jcc(Cond::GT, remLoop);
  }
  {
    Builder b(fn, exit);
    b.ret();
  }
  markHandWritten(fn);
  return fn;
}

Function iamaxSimd(Scal prec) {
  // iamax(X=r0, N=r1) -> int index of first max |x|.
  // Register plan:
  //   x0 vmax (per-lane running max), x1 vbidx (per-lane best index, float),
  //   x2 vcuridx, x3 vinc, x4/x5 scratch, x6 best (scalar), x7 bidx (scalar)
  //   r2 biased counter, r3 result, r4 remainder base index, r5 remainder cnt
  const int lanes = ir::vecLanes(prec);
  const int esize = scalBytes(prec);

  Function fn;
  fn.name = "iamax_simd";
  fn.retType = ir::RetType::Int;
  fn.params.push_back({.name = "X", .kind = prec == Scal::F32
                                               ? ir::ParamKind::PtrF32
                                               : ir::ParamKind::PtrF64,
                       .reg = R(0), .vecRead = true});
  fn.params.push_back({.name = "N", .kind = ir::ParamKind::Int, .reg = R(1)});

  int32_t entry = fn.addBlock();
  int32_t main = fn.addBlock();
  int32_t epi = fn.addBlock();
  // Per-lane epilogue comparison blocks created below.
  struct LaneBlocks {
    int32_t cmp, ltSkip, tie, take, skip;
  };
  std::vector<LaneBlocks> lb(static_cast<size_t>(lanes) - 1);
  for (auto& l : lb) {
    l.cmp = fn.addBlock();
    l.ltSkip = fn.addBlock();
    l.tie = fn.addBlock();
    l.take = fn.addBlock();
    l.skip = fn.addBlock();
  }
  int32_t remEntry = fn.addBlock();
  int32_t remLoop = fn.addBlock();
  int32_t remUpdate = fn.addBlock();
  int32_t remSkip = fn.addBlock();
  int32_t done = fn.addBlock();

  const int step = 2 * lanes;  // two vectors per iteration
  {
    Builder b(fn, entry);
    b.emit({.op = Op::FLdI, .type = prec, .dst = X(4), .fimm = -1.0});
    b.emit({.op = Op::VBcast, .type = prec, .dst = X(0), .src1 = X(4)});
    b.emit({.op = Op::VZero, .type = prec, .dst = X(1)});
    b.emit({.op = Op::VIota, .type = prec, .dst = X(2)});
    b.emit({.op = Op::FLdI, .type = prec, .dst = X(4),
            .fimm = static_cast<double>(step)});
    b.emit({.op = Op::VBcast, .type = prec, .dst = X(3), .src1 = X(4)});
    b.emit({.op = Op::FLdI, .type = prec, .dst = X(4),
            .fimm = static_cast<double>(lanes)});
    b.emit({.op = Op::VBcast, .type = prec, .dst = X(6), .src1 = X(4)});
    b.emit({.op = Op::IMovI, .dst = R(3), .imm = 0});
    b.emit({.op = Op::IAddCC, .dst = R(2), .src1 = R(1), .imm = -step});
    b.jcc(Cond::LT, epi);
  }
  {
    // Unrolled by two vectors with software prefetch (hand-tuned kernels
    // always carried their own prefetch).
    Builder b(fn, main);
    b.emit({.op = Op::VLd, .type = prec, .dst = X(4), .mem = ir::mem(R(0))});
    b.emit({.op = Op::VAbs, .type = prec, .dst = X(4), .src1 = X(4)});
    b.emit({.op = Op::VCmpGT, .type = prec, .dst = X(5), .src1 = X(4),
            .src2 = X(0)});
    b.emit({.op = Op::VSel, .type = prec, .dst = X(0), .src1 = X(5),
            .src2 = X(4), .src3 = X(0)});
    b.emit({.op = Op::VSel, .type = prec, .dst = X(1), .src1 = X(5),
            .src2 = X(2), .src3 = X(1)});
    b.emit({.op = Op::Pref, .mem = ir::mem(R(0), 1536), .pref = ir::PrefKind::NTA});
    b.emit({.op = Op::VLd, .type = prec, .dst = X(4),
            .mem = ir::mem(R(0), 16)});
    b.emit({.op = Op::VAbs, .type = prec, .dst = X(4), .src1 = X(4)});
    b.emit({.op = Op::VCmpGT, .type = prec, .dst = X(5), .src1 = X(4),
            .src2 = X(0)});
    b.emit({.op = Op::VSel, .type = prec, .dst = X(0), .src1 = X(5),
            .src2 = X(4), .src3 = X(0)});
    // Second copy's index vector: current indices + lanes.
    b.emit({.op = Op::VAdd, .type = prec, .dst = X(4), .src1 = X(2),
            .src2 = X(6)});
    b.emit({.op = Op::VSel, .type = prec, .dst = X(1), .src1 = X(5),
            .src2 = X(4), .src3 = X(1)});
    b.emit({.op = Op::VAdd, .type = prec, .dst = X(2), .src1 = X(2),
            .src2 = X(3)});
    b.emit({.op = Op::IAddI, .dst = R(0), .src1 = R(0), .imm = 32});
    b.emit({.op = Op::IAddCC, .dst = R(2), .src1 = R(2), .imm = -step});
    b.jcc(Cond::GE, main);
  }
  {
    // Horizontal reduce with first-index tie semantics: lane 0 seeds, later
    // lanes replace only on strictly-greater value or equal value with a
    // smaller index.
    Builder b(fn, epi);
    b.emit({.op = Op::VExt, .type = prec, .dst = X(6), .src1 = X(0), .imm = 0});
    b.emit({.op = Op::VExt, .type = prec, .dst = X(7), .src1 = X(1), .imm = 0});
  }
  for (int l = 1; l < lanes; ++l) {
    const LaneBlocks& blocks = lb[static_cast<size_t>(l) - 1];
    {
      Builder b(fn, blocks.cmp);
      b.emit({.op = Op::VExt, .type = prec, .dst = X(4), .src1 = X(0),
              .imm = l});
      b.emit({.op = Op::VExt, .type = prec, .dst = X(5), .src1 = X(1),
              .imm = l});
      b.emit({.op = Op::FCmp, .type = prec, .src1 = X(4), .src2 = X(6)});
      b.jcc(Cond::GT, blocks.take);
    }
    {
      Builder b(fn, blocks.ltSkip);
      b.jcc(Cond::LT, blocks.skip);
    }
    {
      Builder b(fn, blocks.tie);  // equal values: lower index wins
      b.emit({.op = Op::FCmp, .type = prec, .src1 = X(5), .src2 = X(7)});
      b.jcc(Cond::GE, blocks.skip);
    }
    {
      Builder b(fn, blocks.take);
      b.emit({.op = Op::FMov, .type = prec, .dst = X(6), .src1 = X(4)});
      b.emit({.op = Op::FMov, .type = prec, .dst = X(7), .src1 = X(5)});
    }
    {
      Builder b(fn, blocks.skip);  // falls through to the next lane
    }
  }
  {
    Builder b(fn, remEntry);
    b.emit({.op = Op::FToI, .type = prec, .dst = R(3), .src1 = X(7)});
    b.emit({.op = Op::IAddI, .dst = R(5), .src1 = R(2), .imm = step});
    // Base element index for the scalar tail: N - remaining.
    b.emit({.op = Op::ISub, .dst = R(4), .src1 = R(1), .src2 = R(5)});
    b.icmpi(R(5), 0);
    b.jcc(Cond::LE, done);
  }
  {
    Builder b(fn, remLoop);
    b.emit({.op = Op::FLd, .type = prec, .dst = X(4), .mem = ir::mem(R(0))});
    b.emit({.op = Op::FAbs, .type = prec, .dst = X(4), .src1 = X(4)});
    b.emit({.op = Op::FCmp, .type = prec, .src1 = X(4), .src2 = X(6)});
    b.jcc(Cond::LE, remSkip);
  }
  {
    Builder b(fn, remUpdate);
    b.emit({.op = Op::FMov, .type = prec, .dst = X(6), .src1 = X(4)});
    b.emit({.op = Op::IMov, .dst = R(3), .src1 = R(4)});
  }
  {
    Builder b(fn, remSkip);
    b.emit({.op = Op::IAddI, .dst = R(0), .src1 = R(0), .imm = esize});
    b.emit({.op = Op::IAddI, .dst = R(4), .src1 = R(4), .imm = 1});
    b.emit({.op = Op::IAddCC, .dst = R(5), .src1 = R(5), .imm = -1});
    b.jcc(Cond::GT, remLoop);
  }
  {
    Builder b(fn, done);
    b.retVal(R(3));
  }
  markHandWritten(fn);
  return fn;
}

}  // namespace ifko::atlas
