// The ATLAS comparator (paper Section 3.3, "ATLAS" bars): a pool of
// laboriously hand-tuned kernel implementations per routine — ANSI-C-style
// variants with inline prefetch (modeled as fixed FKO parameterizations,
// exactly what ATLAS's C kernels with inline-assembly prefetch were) plus
// genuinely hand-written all-"assembly" variants — selected by ATLAS's own
// empirical search: time them all, keep the fastest.
//
// When the winner is an all-assembly kernel the name carries the paper's
// "*" suffix (e.g. dcopy*).
#pragma once

#include <string>
#include <vector>

#include "arch/machine.h"
#include "ir/function.h"
#include "kernels/registry.h"
#include "sim/timer.h"

namespace ifko::atlas {

struct Variant {
  std::string name;
  bool assembly = false;  ///< hand-written in the virtual ISA
  ir::Function fn;
};

/// The implementation pool for one kernel on one machine.  Every variant is
/// ready to execute (compiled or hand-written).
[[nodiscard]] std::vector<Variant> variantPool(const kernels::KernelSpec& spec,
                                               const arch::MachineConfig& machine);

struct Selection {
  bool ok = false;
  std::string error;
  Variant best;
  uint64_t cycles = 0;
  /// Display name: kernel name plus "*" when an assembly variant won.
  std::string displayName;
  int tried = 0;
};

/// ATLAS's empirical search over the pool.
[[nodiscard]] Selection selectKernel(const kernels::KernelSpec& spec,
                                     const arch::MachineConfig& machine,
                                     int64_t n, sim::TimeContext context,
                                     uint64_t seed = 42);

}  // namespace ifko::atlas
