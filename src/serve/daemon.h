// Tuning-as-a-service: the long-lived `ifko serve` daemon.
//
// One-shot tuning re-lowers, re-searches, and exits; the daemon inverts
// that posture.  It holds the hot state in memory across requests — the
// wisdom store (wisdom/wisdom.h), every orchestrator's persistent eval
// cache, and the per-kernel EvalPipeline memos
// (OrchestratorConfig::keepPipelinesWarm) — so "give me the tuned kernel"
// is a wisdom lookup that never touches the evaluator, and a full
// empirical search runs only on the cache-miss path.  Misses route through
// the ordinary fault-isolated orchestrator (deadline, retry, quarantine),
// so a crashing or hanging kernel scores a structured error response and
// the daemon keeps serving.
//
// The request surface is serve/protocol.h (QUERY/TUNE/EXPLAIN/EXPORT/
// IMPORT/STATS/SHUTDOWN), carried over a Unix-domain or loopback TCP
// socket, one request line per response line.  Requests are handled serially on the
// accept loop — candidate-level parallelism inside a tune (--jobs) is
// where the cores go, and serial request handling keeps every response
// deterministic.  handleLine() is the whole state machine; the socket
// layer only moves lines, which is what makes the daemon testable without
// a socket.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "search/orchestrator.h"
#include "serve/protocol.h"
#include "wisdom/wisdom.h"

namespace ifko::serve {

struct ServeConfig {
  /// Template for the tune-on-miss path: search scale (n, context, smoke
  /// grids), jobs, cache/trace paths, strategy, budget, fault policy.  The
  /// daemon clones it per requested (arch, context, n) combination and
  /// always keeps pipelines warm.
  search::OrchestratorConfig orchestrator;
  std::string defaultArch = "p4e";  ///< when a request names no arch
  /// Wisdom file: loaded at startup, re-saved after every new record and
  /// on SHUTDOWN; also the default EXPORT target.  "" = in-memory only.
  std::string wisdomPath;
  /// Directory of extra *.hil kernels to serve by file stem; entries
  /// override registry kernels of the same name.  "" = registry only.
  std::string kernelsDir;
  std::string runId = "serve";  ///< provenance stamped into wisdom records
  /// Per-connection receive deadline (SO_RCVTIMEO), in milliseconds.  A
  /// client that connects and then stalls mid-line would otherwise park
  /// the serial accept loop forever; after this long with no bytes the
  /// daemon sends a structured `{"ok":false,"code":"timeout",...}` line
  /// and drops the connection.  0 disables the deadline.
  int recvTimeoutMs = 30000;
};

struct ServeStats {
  uint64_t requests = 0;
  uint64_t wisdomExact = 0;  ///< queries answered from an exact record
  uint64_t wisdomNear = 0;   ///< queries answered from a near record
  uint64_t tuned = 0;        ///< requests that ran a search (miss or TUNE)
  uint64_t errors = 0;       ///< structured error responses sent
  /// Real candidate evaluations performed since startup, summed over every
  /// tune — the "was this answered without the evaluator?" counter.
  uint64_t evaluations = 0;
};

class Daemon {
 public:
  /// Loads the wisdom file and the kernel table.  *error receives wisdom
  /// damage/schema warnings and kernel-dir problems; the daemon stays
  /// usable (a missing kernels dir just serves the registry).
  explicit Daemon(ServeConfig config, std::string* error = nullptr);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Handles one protocol line, returns exactly one JSON response line
  /// (no trailing newline).  Never throws; every failure is a structured
  /// `{"ok":false,...}` response.  The whole daemon, minus the socket.
  [[nodiscard]] std::string handleLine(const std::string& line);

  /// True once a SHUTDOWN request was handled.
  [[nodiscard]] bool shutdownRequested() const { return shutdown_; }

  [[nodiscard]] const ServeStats& stats() const { return stats_; }
  [[nodiscard]] wisdom::WisdomStore& store() { return store_; }
  /// Kernel names the daemon can serve, sorted.
  [[nodiscard]] std::vector<std::string> kernelNames() const;

  // --- socket layer ---------------------------------------------------
  /// Binds a Unix-domain stream socket at `path` (an existing socket file
  /// is replaced).  Returns false with *error on failure.
  bool listenUnix(const std::string& path, std::string* error = nullptr);
  /// Binds loopback TCP on `port` (0 = ephemeral; see boundPort()).
  bool listenTcp(int port, std::string* error = nullptr);
  /// The TCP port actually bound (after listenTcp), 0 otherwise.
  [[nodiscard]] int boundPort() const { return boundPort_; }

  /// Accept loop: serves connections (one at a time, line by line) until a
  /// SHUTDOWN request arrives.  Returns 0 on clean shutdown, 1 on a socket
  /// error with *error set.
  int run(std::string* error = nullptr);

 private:
  struct KernelEntry {
    std::string source;
    const kernels::KernelSpec* spec = nullptr;
  };

  [[nodiscard]] std::string handleKernelVerb(const Request& req);
  [[nodiscard]] std::string handleExport(const Request& req);
  [[nodiscard]] std::string handleImport(const Request& req);
  [[nodiscard]] std::string handleStats();
  [[nodiscard]] std::string handleShutdown();
  [[nodiscard]] std::string errorResponse(const std::string& code,
                                          const std::string& message);
  /// The orchestrator serving one (arch, context, n) combination, created
  /// on first use and kept hot (cache + pipelines) for the daemon's life.
  [[nodiscard]] search::Orchestrator& orchestratorFor(
      const arch::MachineConfig& machine, sim::TimeContext context, int64_t n);
  void saveWisdom();

  ServeConfig config_;
  wisdom::WisdomStore store_;
  std::map<std::string, KernelEntry> kernels_;
  std::map<std::string, std::unique_ptr<search::Orchestrator>> orchestrators_;
  ServeStats stats_;
  bool shutdown_ = false;
  int listenFd_ = -1;
  int boundPort_ = 0;
  std::string unixPath_;  ///< unlinked on destruction when we bound it
};

}  // namespace ifko::serve
