#include "serve/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "opt/params.h"
#include "support/hash.h"
#include "support/json.h"
#include "wisdom/harvest.h"

namespace ifko::serve {

namespace {

arch::MachineConfig machineFor(const std::string& archFlag) {
  return archFlag == "opteron" ? arch::opteron() : arch::p4e();
}

std::string comboKey(const arch::MachineConfig& machine,
                     sim::TimeContext context, int64_t n) {
  return machine.name + "|" + std::string(sim::contextName(context)) + "|" +
         std::to_string(n);
}

}  // namespace

Daemon::Daemon(ServeConfig config, std::string* error)
    : config_(std::move(config)) {
  std::string problems;
  // The daemon always tunes through warm pipelines: its whole point is that
  // repeat work hits hot state.
  config_.orchestrator.keepPipelinesWarm = true;

  for (const kernels::KernelSpec& spec : kernels::extendedKernels())
    kernels_[spec.name()] = KernelEntry{spec.hilSource(), &spec};
  if (!config_.kernelsDir.empty()) {
    std::string dirError;
    for (search::KernelJob& job :
         search::loadKernelDir(config_.kernelsDir, &dirError))
      kernels_[job.name] = KernelEntry{std::move(job.hilSource), nullptr};
    if (!dirError.empty()) problems += "kernels: " + dirError + "\n";
  }

  if (!config_.wisdomPath.empty()) {
    std::string loadError;
    if (!store_.load(config_.wisdomPath, &loadError))
      problems += "wisdom: " + loadError + "\n";
    if (store_.damagedLines() > 0)
      problems += "wisdom: skipped " + std::to_string(store_.damagedLines()) +
                  " damaged line(s) in " + config_.wisdomPath + "\n";
    if (store_.schemaSkippedLines() > 0)
      problems += "wisdom: skipped " +
                  std::to_string(store_.schemaSkippedLines()) +
                  " line(s) from another wisdom_schema in " +
                  config_.wisdomPath + "\n";
  }
  if (error != nullptr) *error = problems;
}

Daemon::~Daemon() {
  if (listenFd_ >= 0) ::close(listenFd_);
  if (!unixPath_.empty()) ::unlink(unixPath_.c_str());
}

std::vector<std::string> Daemon::kernelNames() const {
  std::vector<std::string> names;
  names.reserve(kernels_.size());
  for (const auto& [name, entry] : kernels_) names.push_back(name);
  return names;
}

std::string Daemon::errorResponse(const std::string& code,
                                  const std::string& message) {
  ++stats_.errors;
  JsonWriter w;
  w.field("ok", false).field("code", code).field("error", message);
  return w.str();
}

search::Orchestrator& Daemon::orchestratorFor(
    const arch::MachineConfig& machine, sim::TimeContext context, int64_t n) {
  const std::string key = comboKey(machine, context, n);
  auto it = orchestrators_.find(key);
  if (it == orchestrators_.end()) {
    search::OrchestratorConfig cfg = config_.orchestrator;
    cfg.search.context = context;
    cfg.search.n = n;
    std::string ignored;  // cache/trace file problems degrade, not fail
    it = orchestrators_
             .emplace(key, std::make_unique<search::Orchestrator>(
                               machine, std::move(cfg), &ignored))
             .first;
  }
  return *it->second;
}

void Daemon::saveWisdom() {
  if (config_.wisdomPath.empty()) return;
  std::string error;
  if (!store_.save(config_.wisdomPath, &error))
    std::fprintf(stderr, "ifko serve: wisdom save failed: %s\n",
                 error.c_str());
}

std::string Daemon::handleLine(const std::string& line) {
  ++stats_.requests;
  std::string parseError;
  const std::optional<Request> req = parseRequest(line, &parseError);
  if (!req.has_value()) return errorResponse("parse_error", parseError);
  try {
    switch (req->verb) {
      case Request::Verb::Query:
      case Request::Verb::Tune:
      case Request::Verb::Explain: return handleKernelVerb(*req);
      case Request::Verb::Export: return handleExport(*req);
      case Request::Verb::Import: return handleImport(*req);
      case Request::Verb::Stats: return handleStats();
      case Request::Verb::Shutdown: return handleShutdown();
    }
    return errorResponse("internal_error", "unhandled verb");
  } catch (const std::exception& e) {
    return errorResponse("internal_error", e.what());
  } catch (...) {
    return errorResponse("internal_error", "unknown exception");
  }
}

std::string Daemon::handleKernelVerb(const Request& req) {
  const auto kernelIt = kernels_.find(req.target);
  if (kernelIt == kernels_.end())
    return errorResponse("unknown_kernel",
                         "no kernel '" + req.target + "' (see STATS)");
  const KernelEntry& entry = kernelIt->second;

  const arch::MachineConfig machine =
      machineFor(req.arch.empty() ? config_.defaultArch : req.arch);
  sim::TimeContext context = config_.orchestrator.search.context;
  if (!req.context.empty())
    context = req.context == "inl2" ? sim::TimeContext::InL2
                                    : sim::TimeContext::OutOfCache;
  const int64_t n = req.n > 0 ? req.n : config_.orchestrator.search.n;

  wisdom::WisdomKey key;
  key.sourceHash = hashHex(entry.source);
  key.machine = machine.name;
  key.context = std::string(sim::contextName(context));
  key.nClass = wisdom::nClassFor(n);

  const wisdom::WisdomMatch match = store_.find(key);

  auto respond = [&](const std::string& how, const std::string& params,
                     uint64_t bestCycles, uint64_t defaultCycles,
                     int64_t evaluations) {
    JsonWriter w;
    w.field("ok", true)
        .field("kernel", req.target)
        .field("machine", key.machine)
        .field("context", key.context)
        .field("n_class", key.nClass)
        .field("match", how)
        .field("params", params)
        .field("best_cycles", bestCycles)
        .field("default_cycles", defaultCycles);
    if (bestCycles != 0)
      w.field("speedup", static_cast<double>(defaultCycles) /
                             static_cast<double>(bestCycles));
    w.field("evaluations", evaluations);
    return w.str();
  };

  if (req.verb == Request::Verb::Explain) {
    if (!match.hit())
      return errorResponse("no_wisdom", "no wisdom for " + req.target + " (" +
                                            key.machine + ", " + key.context +
                                            ", " + key.nClass +
                                            ") — QUERY or TUNE it first");
    const wisdom::WisdomRecord& rec = *match.record;
    JsonWriter w;
    w.field("ok", true)
        .field("kernel", req.target)
        .field("machine", rec.key.machine)
        .field("context", rec.key.context)
        .field("n_class", rec.key.nClass)
        .field("match", std::string(wisdom::matchKindName(match.kind)))
        .field("params", rec.params)
        .field("best_cycles", rec.bestCycles)
        .field("default_cycles", rec.defaultCycles)
        .field("speedup", rec.speedup())
        .field("evaluations", rec.evaluations)
        .field("run", rec.runId);
    if (!rec.topCause.empty())
      w.field("top_cause", rec.topCause)
          .field("top_cause_share", rec.topCauseShare)
          .field("mem_share", rec.memStallShare);
    return w.str();
  }

  // QUERY answered from wisdom: the fast path.  Exact and near hits both
  // answer without touching the evaluator; only a full miss tunes.
  if (req.verb == Request::Verb::Query && match.hit()) {
    if (match.kind == wisdom::MatchKind::Exact)
      ++stats_.wisdomExact;
    else
      ++stats_.wisdomNear;
    const wisdom::WisdomRecord& rec = *match.record;
    return respond(std::string(wisdom::matchKindName(match.kind)), rec.params,
                   rec.bestCycles, rec.defaultCycles, 0);
  }

  // Tune-through path (QUERY miss, or an explicit TUNE): route through the
  // fault-isolated orchestrator for this (arch, context, n) combination,
  // seeded by the nearest wisdom we do have.  The lookup is deferred so the
  // kernel's DEFAULTS attribution ranks the fallback candidates — the store
  // never crosses kernel or machine, so the probe only reorders this
  // kernel's own records.
  search::Orchestrator& orch = orchestratorFor(machine, context, n);
  search::KernelJob job;
  job.name = req.target;
  job.hilSource = entry.source;
  job.spec = entry.spec;
  job.warmStartProvider = [this, key](const search::EvalOutcome& def)
      -> std::optional<opt::TuningParams> {
    std::optional<wisdom::AttrShares> probe;
    if (def.counters.has_value())
      probe = wisdom::attrSharesFrom(*def.counters);
    const wisdom::WisdomMatch m =
        store_.find(key, probe.has_value() ? &*probe : nullptr);
    if (!m.hit()) return std::nullopt;
    const opt::TuningSpec seed = opt::parseTuningSpec(m.record->params);
    if (!seed.ok) return std::nullopt;
    return seed.params;
  };
  const search::KernelOutcome outcome = orch.tune(job);
  ++stats_.tuned;
  stats_.evaluations += static_cast<uint64_t>(outcome.result.evaluations);
  if (!outcome.result.ok)
    return errorResponse(outcome.quarantined ? "quarantined" : "tune_failed",
                         outcome.result.error);

  search::SearchConfig usedConfig = config_.orchestrator.search;
  usedConfig.context = context;
  usedConfig.n = n;
  const wisdom::WisdomRecord rec = wisdom::harvestRecord(
      key, req.target,
      config_.runId + "/" +
          std::string(search::strategyName(config_.orchestrator.strategy)),
      outcome.result, usedConfig, &orch.cache());

  if (store_.record(rec)) saveWisdom();
  return respond("tuned", rec.params, rec.bestCycles, rec.defaultCycles,
                 outcome.result.evaluations);
}

std::string Daemon::handleExport(const Request& req) {
  const std::string path =
      req.target.empty() ? config_.wisdomPath : req.target;
  if (path.empty())
    return errorResponse("export_failed",
                         "no path: daemon has no --wisdom file, so EXPORT "
                         "needs an explicit path");
  std::string error;
  if (!store_.save(path, &error)) return errorResponse("export_failed", error);
  JsonWriter w;
  w.field("ok", true).field("path", path).field(
      "records", static_cast<uint64_t>(store_.size()));
  return w.str();
}

std::string Daemon::handleImport(const Request& req) {
  // The inbound half of federation: keep-best merge a peer's exported
  // wisdom file into the live store.  Merge order never matters (lower
  // best_cycles wins, ties keep the incumbent), so two daemons IMPORTing
  // each other's EXPORTs converge on the same records.
  std::error_code ec;
  if (!std::filesystem::exists(req.target, ec))
    return errorResponse("import_failed", "no such file: " + req.target);
  wisdom::WisdomStore incoming;
  std::string loadError;
  if (!incoming.load(req.target, &loadError))
    return errorResponse("import_failed", loadError);
  const size_t adopted = store_.merge(incoming);
  if (adopted > 0) saveWisdom();
  JsonWriter w;
  w.field("ok", true)
      .field("path", req.target)
      .field("loaded", static_cast<uint64_t>(incoming.size()))
      .field("adopted", static_cast<uint64_t>(adopted))
      .field("records", static_cast<uint64_t>(store_.size()));
  return w.str();
}

std::string Daemon::handleStats() {
  size_t warmPipelines = 0;
  size_t cacheEntries = 0;
  for (const auto& [key, orch] : orchestrators_) {
    warmPipelines += orch->warmPipelines();
    cacheEntries += orch->cache().size();
  }
  JsonWriter w;
  w.field("ok", true)
      .field("requests", stats_.requests)
      .field("wisdom_exact", stats_.wisdomExact)
      .field("wisdom_near", stats_.wisdomNear)
      .field("tuned", stats_.tuned)
      .field("errors", stats_.errors)
      .field("evaluations", stats_.evaluations)
      .field("wisdom_records", static_cast<uint64_t>(store_.size()))
      .field("kernels", static_cast<uint64_t>(kernels_.size()))
      .field("orchestrators", static_cast<uint64_t>(orchestrators_.size()))
      .field("warm_pipelines", static_cast<uint64_t>(warmPipelines))
      .field("eval_cache_entries", static_cast<uint64_t>(cacheEntries));
  return w.str();
}

std::string Daemon::handleShutdown() {
  shutdown_ = true;
  saveWisdom();
  JsonWriter w;
  w.field("ok", true)
      .field("shutdown", true)
      .field("wisdom_saved", !config_.wisdomPath.empty());
  return w.str();
}

// --- socket layer ----------------------------------------------------------

bool Daemon::listenUnix(const std::string& path, std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr)
      *error = "socket path too long (" + std::to_string(path.size()) +
               " bytes, limit " + std::to_string(sizeof(addr.sun_path) - 1) +
               "): " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // replace a stale socket from a dead daemon
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return fail("bind " + path);
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    ::unlink(path.c_str());
    return fail("listen " + path);
  }
  listenFd_ = fd;
  unixPath_ = path;
  return true;
}

bool Daemon::listenTcp(int port, std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return fail("listen 127.0.0.1:" + std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    boundPort_ = ntohs(bound.sin_port);
  listenFd_ = fd;
  return true;
}

namespace {

/// Writes the whole buffer, riding out partial writes.  MSG_NOSIGNAL: a
/// client that hangs up mid-response must not SIGPIPE the daemon.
bool sendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

int Daemon::run(std::string* error) {
  if (listenFd_ < 0) {
    if (error != nullptr) *error = "run() before listenUnix()/listenTcp()";
    return 1;
  }
  while (!shutdown_) {
    const int conn = ::accept(listenFd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr)
        *error = std::string("accept: ") + std::strerror(errno);
      return 1;
    }
    // Satellite fix: a client that connects and never finishes a line used
    // to park this serial loop forever (one stalled peer = denial of
    // service for everyone behind it).  SO_RCVTIMEO turns the stall into a
    // structured timeout response and a dropped connection.
    if (config_.recvTimeoutMs > 0) {
      timeval tv{};
      tv.tv_sec = config_.recvTimeoutMs / 1000;
      tv.tv_usec = (config_.recvTimeoutMs % 1000) * 1000;
      ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    std::string buffer;
    char chunk[4096];
    while (!shutdown_) {
      const ssize_t n = ::recv(conn, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        sendAll(conn, errorResponse(
                          "timeout",
                          "no complete request line within " +
                              std::to_string(config_.recvTimeoutMs) +
                              " ms — connection closed") +
                          "\n");
        break;
      }
      if (n <= 0) break;  // client hung up (or a read error: same treatment)
      buffer.append(chunk, static_cast<size_t>(n));
      size_t nl;
      while (!shutdown_ && (nl = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (!sendAll(conn, handleLine(line) + "\n")) break;
      }
    }
    ::close(conn);
  }
  ::close(listenFd_);
  listenFd_ = -1;
  if (!unixPath_.empty()) {
    ::unlink(unixPath_.c_str());
    unixPath_.clear();
  }
  return 0;
}

}  // namespace ifko::serve
