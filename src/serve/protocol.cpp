#include "serve/protocol.h"

#include <sstream>
#include <vector>

#include "support/str.h"

namespace ifko::serve {

namespace {

struct VerbEntry {
  Request::Verb verb;
  const char* name;
  bool takesTarget;      ///< QUERY/TUNE/EXPLAIN require one, EXPORT allows one
  bool requiresTarget;
};

constexpr VerbEntry kVerbs[] = {
    {Request::Verb::Query, "QUERY", true, true},
    {Request::Verb::Tune, "TUNE", true, true},
    {Request::Verb::Explain, "EXPLAIN", true, true},
    {Request::Verb::Export, "EXPORT", true, false},
    {Request::Verb::Import, "IMPORT", true, true},
    {Request::Verb::Stats, "STATS", false, false},
    {Request::Verb::Shutdown, "SHUTDOWN", false, false},
};

}  // namespace

std::string_view verbName(Request::Verb verb) {
  for (const VerbEntry& e : kVerbs)
    if (e.verb == verb) return e.name;
  return "?";
}

std::optional<Request> parseRequest(const std::string& line,
                                    std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  if (tokens.empty()) return fail("empty request");

  const VerbEntry* entry = nullptr;
  for (const VerbEntry& e : kVerbs)
    if (tokens[0] == e.name) entry = &e;
  if (entry == nullptr)
    return fail("unknown verb '" + tokens[0] +
                "' (want QUERY|TUNE|EXPLAIN|EXPORT|IMPORT|STATS|SHUTDOWN)");

  Request req;
  req.verb = entry->verb;
  size_t i = 1;
  // The target is the first token without '=' after the verb (kernel names
  // and export paths never contain '=').
  if (entry->takesTarget && i < tokens.size() &&
      tokens[i].find('=') == std::string::npos)
    req.target = tokens[i++];
  if (entry->requiresTarget && req.target.empty())
    return fail(std::string(entry->name) + " needs a kernel name");

  for (; i < tokens.size(); ++i) {
    const size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0)
      return fail("malformed option '" + tokens[i] + "' (want key=value)");
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    if (key == "arch") {
      if (value != "p4e" && value != "opteron")
        return fail("unknown arch '" + value + "' (want p4e|opteron)");
      req.arch = value;
    } else if (key == "context") {
      if (value != "ooc" && value != "inl2")
        return fail("unknown context '" + value + "' (want ooc|inl2)");
      req.context = value;
    } else if (key == "n") {
      int64_t n = 0;
      if (!parseInt64(value, &n) || n < 1)
        return fail("bad n '" + value + "' (want integer >= 1)");
      req.n = n;
    } else {
      return fail("unknown option '" + key + "' (want arch|context|n)");
    }
  }
  return req;
}

std::string formatRequest(const Request& req) {
  std::string out{verbName(req.verb)};
  if (!req.target.empty()) out += " " + req.target;
  if (!req.arch.empty()) out += " arch=" + req.arch;
  if (!req.context.empty()) out += " context=" + req.context;
  if (req.n > 0) out += " n=" + std::to_string(req.n);
  return out;
}

}  // namespace ifko::serve
