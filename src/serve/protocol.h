// The `ifko serve` wire protocol: one request line in, one JSON line out.
//
// Requests are a single line of space-separated tokens (full grammar in
// docs/SERVING.md):
//
//   QUERY <kernel> [arch=p4e|opteron] [context=ooc|inl2] [n=N]
//   TUNE <kernel> [arch=...] [context=...] [n=...]
//   EXPLAIN <kernel> [arch=...] [context=...] [n=...]
//   EXPORT [<path>]
//   IMPORT <path>
//   STATS
//   SHUTDOWN
//
// Responses are exactly one JSON object per line (support/json.h writer):
// `{"ok":true,...}` on success, `{"ok":false,"code":"...","error":"..."}`
// on failure — structured either way, so a client never parses prose.
// Line-oriented on both sides, so the protocol composes with netcat, the
// `ifko query` client, and tools/serve_probe alike.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ifko::serve {

struct Request {
  enum class Verb : uint8_t {
    Query,
    Tune,
    Explain,
    Export,
    Import,
    Stats,
    Shutdown
  };
  Verb verb = Verb::Stats;
  /// QUERY/TUNE/EXPLAIN: the kernel name.  EXPORT: the target path
  /// (optional — empty means the daemon's own wisdom file).  IMPORT: the
  /// wisdom file to keep-best merge into the store (required).
  std::string target;
  std::string arch;     ///< "p4e" | "opteron"; "" = daemon default
  std::string context;  ///< "ooc" | "inl2"; "" = daemon default
  int64_t n = 0;        ///< problem size; 0 = daemon default
};

[[nodiscard]] std::string_view verbName(Request::Verb verb);

/// Parses one request line.  nullopt with *error on an unknown verb, a
/// missing kernel, a malformed key=value token, or a bad value.
[[nodiscard]] std::optional<Request> parseRequest(const std::string& line,
                                                  std::string* error);

/// Renders `req` in the wire grammar (what the client sends).  Only
/// non-default fields are emitted, so round-tripping is stable.
[[nodiscard]] std::string formatRequest(const Request& req);

}  // namespace ifko::serve
