#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ifko::serve {

namespace {

void setError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

}  // namespace

Connection::~Connection() { close(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Connection::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

bool Connection::connect(const Endpoint& endpoint, std::string* error) {
  close();
  if (!endpoint.unixPath.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unixPath.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr)
        *error = "socket path too long: " + endpoint.unixPath;
      return false;
    }
    std::memcpy(addr.sun_path, endpoint.unixPath.c_str(),
                endpoint.unixPath.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      setError(error, "socket");
      return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      setError(error, "connect " + endpoint.unixPath);
      ::close(fd);
      return false;
    }
    fd_ = fd;
    return true;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(endpoint.tcpPort));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    setError(error, "socket");
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    setError(error,
             "connect 127.0.0.1:" + std::to_string(endpoint.tcpPort));
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool Connection::sendLine(const std::string& line, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  const std::string data = line + "\n";
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      setError(error, "send");
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::optional<std::string> Connection::recvLine(std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return std::nullopt;
  }
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      setError(error, "recv");
      return std::nullopt;
    }
    if (n == 0) {
      if (error != nullptr) *error = "connection closed by daemon";
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

std::optional<std::string> Connection::roundTrip(const std::string& line,
                                                 std::string* error) {
  if (!sendLine(line, error)) return std::nullopt;
  return recvLine(error);
}

std::optional<std::string> requestOnce(const Endpoint& endpoint,
                                       const Request& req,
                                       std::string* error) {
  Connection conn;
  if (!conn.connect(endpoint, error)) return std::nullopt;
  return conn.roundTrip(formatRequest(req), error);
}

}  // namespace ifko::serve
