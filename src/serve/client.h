// Client side of the serve protocol: connect, send request lines, read
// response lines.  Shared by the `ifko query` CLI verb and the
// tools/serve_probe load generator, so the wire handling lives once.
#pragma once

#include <optional>
#include <string>

#include "serve/protocol.h"

namespace ifko::serve {

/// Where the daemon listens: exactly one of the two is set.
struct Endpoint {
  std::string unixPath;  ///< Unix-domain socket path ("" = use TCP)
  int tcpPort = 0;       ///< loopback TCP port (used when unixPath empty)
};

/// One connection to a serve daemon.  Move-only RAII around the socket fd;
/// requests pipeline fine (the daemon answers lines in order).
class Connection {
 public:
  Connection() = default;
  ~Connection();
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Connects to `endpoint`.  Returns false with *error on failure.
  bool connect(const Endpoint& endpoint, std::string* error = nullptr);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one request line (newline appended).
  bool sendLine(const std::string& line, std::string* error = nullptr);
  /// Reads one response line (newline stripped).  nullopt on EOF/error.
  [[nodiscard]] std::optional<std::string> recvLine(
      std::string* error = nullptr);
  /// sendLine + recvLine.
  [[nodiscard]] std::optional<std::string> roundTrip(
      const std::string& line, std::string* error = nullptr);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

/// One-shot convenience: connect, send `req`, return the response line.
[[nodiscard]] std::optional<std::string> requestOnce(
    const Endpoint& endpoint, const Request& req, std::string* error = nullptr);

}  // namespace ifko::serve
