// FKO — the specialized compiler of the paper's Figure 1.
//
// compileKernel runs the full pipeline on a HIL kernel:
//   HIL -> lower -> fundamental transforms (SV/UR/LC/AE/PF/WNT)
//       -> repeatable transforms to a fixed point -> register allocation.
//
// analyzeKernel is the compiler's other interface to the search driver: it
// reports the analysis results (loop, max unroll, vectorizability, array
// sets/uses and prefetch candidates, accumulator-expansion targets) together
// with the machine's cache geometry, from which the search derives its
// defaults and dimensions.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "ir/function.h"
#include "opt/params.h"
#include "opt/regalloc.h"
#include "opt/repeatable.h"
#include "support/diagnostics.h"

namespace ifko::fko {

struct CompileOptions {
  opt::TuningParams tuning;
  opt::RegAllocKind regalloc = opt::RegAllocKind::LinearScan;
  bool runRepeatable = true;
  bool runRegalloc = true;
  /// Iteration cap for the repeatable optimization block; hitting it
  /// without reaching a fixed point sets repeatableConverged = false.
  int maxRepeatableIters = 10;
};

struct CompileResult {
  bool ok = false;
  std::string error;
  ir::Function fn;
  int repeatableIters = 0;
  /// False when the repeatable block's iteration cap cut off a
  /// still-changing (possibly oscillating) pass sequence.
  bool repeatableConverged = true;
  int spillSlots = 0;
  /// Per-pass observability: the fundamental-transform delta first, then
  /// one entry per repeatable pass that fired.
  std::vector<opt::PassDelta> passes;
  /// Non-fatal compile diagnostics (e.g. the repeatable cap warning).
  std::vector<Diagnostic> warnings;
};

[[nodiscard]] CompileResult compileKernel(const std::string& hilSource,
                                          const CompileOptions& options,
                                          const arch::MachineConfig& machine);

/// The front end's output, reusable across many compiles of the same
/// source.  The empirical search compiles one kernel hundreds of times with
/// different tuning parameters; lowering is parameter-independent, so the
/// search lowers once and feeds the result to the overload below.
struct LoweredKernel {
  bool ok = false;
  std::string error;
  ir::Function fn;
};

[[nodiscard]] LoweredKernel lowerKernel(const std::string& hilSource);

/// Compiles from an already-lowered kernel (transforms onward).  `lowered`
/// is copied, never mutated, so one LoweredKernel serves concurrent calls.
[[nodiscard]] CompileResult compileKernel(const ir::Function& lowered,
                                          const CompileOptions& options,
                                          const arch::MachineConfig& machine);

/// Per-array analysis relayed to the search.
struct ArrayReport {
  std::string name;
  bool loaded = false;
  bool stored = false;
  bool prefetchable = false;
  int64_t strideElems = 1;  ///< elements the pointer advances per iteration
};

struct AnalysisReport {
  bool ok = false;
  std::string error;
  // Architecture information (paper: "numbers of available cache levels and
  // their line sizes").
  int cacheLevels = 0;
  std::vector<int> lineBytes;
  std::vector<ir::PrefKind> prefKinds;
  // Kernel-specific information.
  bool loopFound = false;
  int maxUnroll = 0;
  bool vectorizable = false;
  std::string whyNotVectorizable;
  int vecLanes = 1;
  ir::Scal elemType = ir::Scal::F64;
  std::vector<ArrayReport> arrays;
  int numAccumulators = 0;
};

[[nodiscard]] AnalysisReport analyzeKernel(const std::string& hilSource,
                                           const arch::MachineConfig& machine);

}  // namespace ifko::fko
