#include "fko/harness.h"

#include <cmath>
#include <sstream>

#include "analysis/loopinfo.h"
#include "fko/compiler.h"
#include "sim/timing.h"
#include "support/rng.h"

namespace ifko::fko {

GenericData makeGenericData(const std::vector<ir::Param>& params, int64_t n,
                            uint64_t seed, double alpha, int64_t strideElems) {
  GenericData data;
  // Integer parameters: the last is the (tuned, inner) length n; earlier
  // ones are outer dimensions fixed at 64.  Arrays are sized by the
  // product, so an MxN matrix operand fits.
  int numInts = 0;
  for (const auto& p : params) numInts += p.kind == ir::ParamKind::Int;
  int64_t product = n;
  for (int i = 1; i < numInts; ++i) product *= 64;
  const size_t elems = static_cast<size_t>(std::max<int64_t>(product, 1)) *
                       static_cast<size_t>(std::max<int64_t>(strideElems, 1));
  size_t totalVecBytes = 0;
  for (const auto& p : params)
    if (p.isPointer())
      totalVecBytes += elems * scalBytes(p.elemType()) + 256;
  data.mem = std::make_unique<sim::Memory>(totalVecBytes + (1 << 21));

  SplitMix64 rng(seed);
  for (const auto& p : params) {
    if (p.isPointer()) {
      size_t esize = scalBytes(p.elemType());
      size_t bytes = std::max<size_t>(elems * esize, 64);
      uint64_t addr = data.mem->allocate(bytes + 192, 64) + 192;
      for (int64_t i = 0; i < static_cast<int64_t>(elems); ++i) {
        double v = rng.uniform(-1.0, 1.0);
        if (p.elemType() == ir::Scal::F32)
          data.mem->write<float>(addr + static_cast<uint64_t>(i) * 4,
                                 static_cast<float>(v));
        else
          data.mem->write<double>(addr + static_cast<uint64_t>(i) * 8, v);
      }
      data.arrays.push_back({p.name, addr, elems * esize, p.vecWritten});
      data.args.emplace_back(static_cast<int64_t>(addr));
    } else if (p.kind == ir::ParamKind::Int) {
      --numInts;
      data.args.emplace_back(numInts == 0 ? n : int64_t{64});
    } else {
      data.args.emplace_back(alpha);
      alpha = -alpha * 0.5;  // distinct value for a second scalar (e.g. beta)
    }
  }
  return data;
}

DiffOutcome testAgainstUnoptimized(const std::string& hilSource,
                                   const ir::Function& candidate, int64_t n,
                                   uint64_t seed) {
  CompileOptions plain;
  plain.runRepeatable = false;
  plain.runRegalloc = false;
  // The unoptimized lowering: no vectorization, no unrolling, no prefetch.
  plain.tuning.simdVectorize = false;
  plain.tuning.unroll = 1;
  plain.tuning.optimizeLoopControl = false;
  auto reference = compileKernel(hilSource, plain, arch::p4e());
  if (!reference.ok)
    return {false, "reference lowering failed: " + reference.error};

  // A stride-k kernel touches k*n elements: size the operands accordingly.
  int64_t strideElems = 1;
  auto rep = analyzeKernel(hilSource, arch::p4e());
  if (rep.ok)
    for (const auto& a : rep.arrays)
      strideElems = std::max(strideElems, a.strideElems);

  GenericData refData = makeGenericData(reference.fn, n, seed, 0.75, strideElems);
  GenericData candData = makeGenericData(candidate, n, seed, 0.75, strideElems);

  sim::RunResult refRun, candRun;
  try {
    sim::Interp refI(reference.fn, *refData.mem);
    refRun = refI.run(refData.args);
    sim::Interp candI(candidate, *candData.mem);
    candRun = candI.run(candData.args);
  } catch (const std::exception& e) {
    return {false, std::string("kernel faulted: ") + e.what()};
  }

  // Written arrays must match.  Elementwise kernels match bitwise (the
  // transforms never change elementwise arithmetic); when the kernel has
  // accumulators, stored values may derive from reassociated reductions
  // (e.g. gemv's y[r]), so those compare with a precision tolerance.
  const bool hasAccumulators = rep.ok && rep.numAccumulators > 0;
  const ir::Scal elem = rep.ok ? rep.elemType : ir::Scal::F64;
  for (const auto& span : candData.arrays) {
    if (!span.written) continue;
    const GenericData::Span* refSpan = nullptr;
    for (const auto& s : refData.arrays)
      if (s.name == span.name) refSpan = &s;
    if (refSpan == nullptr)
      return {false, "candidate writes unknown array '" + span.name + "'"};
    if (!hasAccumulators) {
      for (size_t off = 0; off < span.bytes; ++off) {
        uint8_t a = candData.mem->read<uint8_t>(span.addr + off);
        uint8_t b = refData.mem->read<uint8_t>(refSpan->addr + off);
        if (a != b) {
          std::ostringstream os;
          os << "output array '" << span.name << "' differs at byte " << off;
          return {false, os.str()};
        }
      }
      continue;
    }
    const size_t esize = scalBytes(elem);
    const double tol = elem == ir::Scal::F32 ? 5e-3 : 1e-8;
    for (size_t off = 0; off + esize <= span.bytes; off += esize) {
      double a = elem == ir::Scal::F32
                     ? candData.mem->read<float>(span.addr + off)
                     : candData.mem->read<double>(span.addr + off);
      double b = elem == ir::Scal::F32
                     ? refData.mem->read<float>(refSpan->addr + off)
                     : refData.mem->read<double>(refSpan->addr + off);
      if (std::fabs(a - b) > tol * std::max(1.0, std::fabs(b))) {
        std::ostringstream os;
        os << "output array '" << span.name << "' differs at element "
           << off / esize << ": " << a << " vs " << b;
        return {false, os.str()};
      }
    }
  }

  // Results.
  if (refRun.intResult.has_value() != candRun.intResult.has_value() ||
      refRun.fpResult.has_value() != candRun.fpResult.has_value())
    return {false, "result kind mismatch"};
  if (refRun.intResult && *refRun.intResult != *candRun.intResult) {
    std::ostringstream os;
    os << "index result " << *candRun.intResult << ", expected "
       << *refRun.intResult;
    return {false, os.str()};
  }
  if (refRun.fpResult) {
    double want = *refRun.fpResult, got = *candRun.fpResult;
    double tol = reference.fn.retType == ir::RetType::F32 ? 5e-3 : 1e-8;
    if (std::fabs(got - want) > tol * std::max(1.0, std::fabs(want))) {
      std::ostringstream os;
      os << "result " << got << ", expected " << want;
      return {false, os.str()};
    }
  }
  return {};
}

namespace {

// Shared operand setup + result assembly for the two timeCompiled overloads.
template <typename RunFn>
sim::TimeResult timeCompiledWith(const arch::MachineConfig& machine,
                                 const std::vector<ir::Param>& params,
                                 int64_t n, sim::TimeContext ctx,
                                 uint64_t seed, int64_t strideElems,
                                 int64_t loopN, const GenericData* tmpl,
                                 RunFn&& execute) {
  GenericData data = tmpl != nullptr
                         ? tmpl->clone()
                         : makeGenericData(params, n, seed, 0.75, strideElems);
  sim::MemSystem mem(machine);
  if (ctx == sim::TimeContext::InL2)
    for (const auto& span : data.arrays) mem.warm(span.addr, span.bytes);
  // Warming displaces lines; reset so its evictions never reach the timed
  // run's counters (and OutOfCache/InL2 stats stay independent).
  mem.resetStats();
  // Truncated runs keep the full-size operands and shorten only the trip
  // count (the LAST integer parameter; see makeGenericData): the timed
  // region is an exact prefix of the full run.
  if (loopN > 0) {
    for (size_t i = params.size(); i-- > 0;) {
      if (params[i].kind != ir::ParamKind::Int) continue;
      data.args[i] = sim::ArgValue(loopN);
      break;
    }
  }
  sim::TimingModel timing(machine, mem);
  sim::RunResult run = execute(data, timing);

  sim::TimeResult out;
  out.cycles = timing.cycles();
  out.dynInsts = run.dynInsts;
  out.mem = mem.stats();
  out.core = timing.stats();
  out.attr = timing.attribution();
  return out;
}

}  // namespace

sim::TimeResult timeCompiled(const arch::MachineConfig& machine,
                             const ir::Function& fn, int64_t n,
                             sim::TimeContext ctx, uint64_t seed,
                             int64_t strideElems, int64_t loopN,
                             const GenericData* tmpl) {
  return timeCompiledWith(machine, fn.params, n, ctx, seed, strideElems, loopN,
                          tmpl,
                          [&](GenericData& data, sim::TimingModel& timing) {
                            sim::Interp interp(fn, *data.mem, &timing);
                            return interp.run(data.args);
                          });
}

sim::TimeResult timeCompiled(const arch::MachineConfig& machine,
                             const sim::DecodedFunction& dfn, int64_t n,
                             sim::TimeContext ctx, uint64_t seed,
                             int64_t strideElems, int64_t loopN,
                             const GenericData* tmpl) {
  return timeCompiledWith(machine, dfn.params, n, ctx, seed, strideElems,
                          loopN, tmpl,
                          [&](GenericData& data, sim::TimingModel& timing) {
                            return sim::runDecoded(dfn, *data.mem, data.args,
                                                   &timing);
                          });
}

}  // namespace ifko::fko
