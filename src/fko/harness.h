// Generic kernel harness: operand placement, differential testing, and
// timing for ANY HIL kernel, not just the surveyed BLAS.
//
// This is what "keeping the search in the compiler" (paper Section 1.1)
// buys: a user kernel with any signature can be tested and tuned without a
// hand-written reference implementation.  Correctness is established
// differentially — the candidate is compared against the *unoptimized*
// lowering of the same source on identical operands.  Elementwise outputs
// must match bitwise (the transforms never change elementwise arithmetic);
// scalar results are compared with a precision-appropriate tolerance since
// vectorization and accumulator expansion reassociate reductions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "ir/function.h"
#include "sim/decode.h"
#include "sim/interp.h"
#include "sim/memsys.h"
#include "sim/timer.h"

namespace ifko::fko {

/// Operands for one kernel invocation, derived from the parameter list:
/// FP scalars get fixed distinct values; the LAST integer parameter gets n
/// and any earlier ones (outer dimensions, e.g. gemv's M) get 64; every
/// pointer parameter gets an array sized by the product of the integer
/// parameters times its stride, filled with reproducible values.
struct GenericData {
  std::unique_ptr<sim::Memory> mem;
  std::vector<sim::ArgValue> args;
  /// (address, bytes) per vector parameter, in parameter order.
  struct Span {
    std::string name;
    uint64_t addr = 0;
    size_t bytes = 0;
    bool written = false;
  };
  std::vector<Span> arrays;

  /// A deep copy (fresh memory image); see kernels::KernelData::clone().
  [[nodiscard]] GenericData clone() const {
    GenericData out;
    out.mem = std::make_unique<sim::Memory>(*mem);
    out.args = args;
    out.arrays = arrays;
    return out;
  }
};

/// `strideElems` scales every array allocation (a stride-k kernel touches
/// k*n elements over n iterations); derive it from the analysis when the
/// source is available.
[[nodiscard]] GenericData makeGenericData(const std::vector<ir::Param>& params,
                                          int64_t n, uint64_t seed = 42,
                                          double alpha = 0.75,
                                          int64_t strideElems = 1);
[[nodiscard]] inline GenericData makeGenericData(const ir::Function& fn,
                                                 int64_t n, uint64_t seed = 42,
                                                 double alpha = 0.75,
                                                 int64_t strideElems = 1) {
  return makeGenericData(fn.params, n, seed, alpha, strideElems);
}

struct DiffOutcome {
  bool ok = true;
  std::string message;
};

/// Runs `candidate` and the unoptimized lowering of `hilSource` on
/// identical operands of length `n`; compares written arrays bitwise and
/// scalar/index results (reductions with tolerance).
[[nodiscard]] DiffOutcome testAgainstUnoptimized(const std::string& hilSource,
                                                 const ir::Function& candidate,
                                                 int64_t n, uint64_t seed = 42);

/// Times any compiled kernel at length n (generic analogue of
/// sim::timeKernel).  InL2 pre-warms every vector parameter.  `loopN`
/// (0 = n) truncates the loop trip count while the operands stay sized at
/// `n` — the screen-then-confirm prefix run (see sim/timer.h); `tmpl`
/// clones a pristine operand image instead of regenerating the data.
[[nodiscard]] sim::TimeResult timeCompiled(const arch::MachineConfig& machine,
                                           const ir::Function& fn, int64_t n,
                                           sim::TimeContext ctx,
                                           uint64_t seed = 42,
                                           int64_t strideElems = 1,
                                           int64_t loopN = 0,
                                           const GenericData* tmpl = nullptr);

/// Fast-path variant over the pre-decoded form (sim/decode.h); bit-identical
/// results to the ir::Function overload for the same kernel.
[[nodiscard]] sim::TimeResult timeCompiled(const arch::MachineConfig& machine,
                                           const sim::DecodedFunction& dfn,
                                           int64_t n, sim::TimeContext ctx,
                                           uint64_t seed = 42,
                                           int64_t strideElems = 1,
                                           int64_t loopN = 0,
                                           const GenericData* tmpl = nullptr);

}  // namespace ifko::fko
