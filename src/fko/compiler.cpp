#include "fko/compiler.h"

#include "analysis/loopinfo.h"
#include "hil/lower.h"
#include "ir/verifier.h"
#include "opt/loop_xform.h"
#include "opt/repeatable.h"

namespace ifko::fko {

CompileResult compileKernel(const std::string& hilSource,
                            const CompileOptions& options,
                            const arch::MachineConfig& machine) {
  LoweredKernel lowered = lowerKernel(hilSource);
  if (!lowered.ok) {
    CompileResult result;
    result.error = lowered.error;
    return result;
  }
  return compileKernel(lowered.fn, options, machine);
}

LoweredKernel lowerKernel(const std::string& hilSource) {
  LoweredKernel result;
  DiagnosticEngine diags;
  auto lowered = hil::compileHil(hilSource, diags);
  if (!lowered) {
    result.error = "front end: " + diags.str();
    return result;
  }
  result.ok = true;
  result.fn = std::move(*lowered);
  return result;
}

CompileResult compileKernel(const ir::Function& lowered,
                            const CompileOptions& options,
                            const arch::MachineConfig& machine) {
  CompileResult result;
  std::string err;
  const size_t loweredInsts = lowered.instCount();
  auto transformed =
      opt::applyFundamentalTransforms(lowered, options.tuning, machine, &err);
  if (!transformed) {
    result.error = "fundamental transforms: " + err;
    return result;
  }
  result.fn = std::move(*transformed);
  {
    opt::PassDelta fundamental;
    fundamental.name = "fundamental";
    fundamental.instsBefore = loweredInsts;
    fundamental.instsAfter = result.fn.instCount();
    fundamental.iterations = 1;
    fundamental.changed = fundamental.instsAfter != fundamental.instsBefore;
    result.passes.push_back(std::move(fundamental));
  }

  if (options.runRepeatable) {
    opt::RepeatableReport rep =
        opt::runRepeatableReport(result.fn, options.maxRepeatableIters);
    result.repeatableIters = rep.iterations;
    result.repeatableConverged = rep.converged;
    for (auto& delta : rep.passes)
      if (delta.changed) result.passes.push_back(std::move(delta));
    if (!rep.converged) {
      Diagnostic warn;
      warn.severity = DiagSeverity::Warning;
      warn.message = "repeatable optimization block hit its iteration cap (" +
                     std::to_string(options.maxRepeatableIters) +
                     ") before reaching a fixed point; a pass oscillation "
                     "would look exactly like this";
      result.warnings.push_back(std::move(warn));
    }
  }

  if (options.runRegalloc) {
    auto ra = opt::allocateRegisters(result.fn, options.regalloc);
    if (!ra.ok) {
      result.error = "register allocation: " + ra.error;
      return result;
    }
    result.spillSlots = ra.spillSlots;
  }

  auto problems = ir::verify(result.fn);
  if (!problems.empty()) {
    result.error = "verifier: " + problems[0];
    return result;
  }
  result.ok = true;
  return result;
}

AnalysisReport analyzeKernel(const std::string& hilSource,
                             const arch::MachineConfig& machine) {
  AnalysisReport report;
  DiagnosticEngine diags;
  auto lowered = hil::compileHil(hilSource, diags);
  if (!lowered) {
    report.error = "front end: " + diags.str();
    return report;
  }
  report.cacheLevels = static_cast<int>(machine.caches.size());
  for (const auto& c : machine.caches) report.lineBytes.push_back(c.lineBytes);
  report.prefKinds = machine.prefKinds();

  auto info = analysis::analyzeLoop(*lowered);
  if (!info.found) {
    report.error = info.problem;
    return report;
  }
  report.ok = true;
  report.loopFound = true;
  report.maxUnroll = info.maxUnroll;
  report.vectorizable = info.vectorizable;
  report.whyNotVectorizable = info.whyNotVectorizable;
  if (!info.arrays.empty()) {
    report.elemType = info.arrays.front().elem;
    report.vecLanes = ir::vecLanes(report.elemType);
  }
  for (const auto& a : info.arrays) {
    int64_t stride = a.bumpBytes > 0 ? a.bumpBytes / scalBytes(a.elem) : 1;
    report.arrays.push_back(
        {a.name, a.loaded, a.stored, a.prefetchable(), std::max<int64_t>(stride, 1)});
  }
  report.numAccumulators = static_cast<int>(info.accumulators.size());
  return report;
}

}  // namespace ifko::fko
