// The ifko command-line driver.
//
//   ifko analyze <file.hil> [--arch=p4e|opteron]
//       What FKO's analysis reports to the search: vectorizability, arrays,
//       accumulator candidates, machine cache facts.
//
//   ifko compile <file.hil> [--arch=...] [--sv=0|1] [--ur=N] [--ae=N]
//                [--wnt] [--lc=0|1] [--pf=ARRAY:KIND:DIST]... [--bf]
//                [--cisc] [--dump-ir]
//       One FKO compile with explicit transform parameters; verifies the
//       result differentially against the unoptimized lowering.
//
//   ifko run <file.hil> [--arch=...] [--n=N] [--context=ooc|inl2] (+compile flags)
//       Compile, check, and time on the simulated machine.
//
//   ifko tune <file.hil> [--arch=...] [--n=N] [--context=ooc|inl2]
//             [--extensions] [--fast]
//       The full iterative empirical search, with the per-dimension ledger.
//
//   ifko sim <file.ir> [--arch=...] [--n=N] [--context=ooc|inl2]
//       Parse a textual IR dump (the --dump-ir format) and time it on the
//       simulated machine — the path for hand-edited or hand-written code.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "fko/compiler.h"
#include "fko/harness.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "search/linesearch.h"
#include "support/str.h"

namespace {

using namespace ifko;

int usage() {
  std::fprintf(stderr,
               "usage: ifko <analyze|compile|run|tune|sim> <file> [options]\n"
               "see the header of src/driver/main.cpp or docs/HIL.md\n");
  return 2;
}

std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Options {
  arch::MachineConfig machine = arch::p4e();
  fko::CompileOptions compile;
  int64_t n = 80000;
  sim::TimeContext context = sim::TimeContext::OutOfCache;
  bool dumpIr = false;
  bool extensions = false;
  bool fast = false;
  bool ok = true;
};

Options parseOptions(int argc, char** argv, int first) {
  Options o;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&](const char* prefix) -> std::optional<std::string> {
      if (!startsWith(a, prefix)) return std::nullopt;
      return a.substr(std::strlen(prefix));
    };
    if (auto v = value("--arch=")) {
      if (*v == "p4e") o.machine = arch::p4e();
      else if (*v == "opteron") o.machine = arch::opteron();
      else { std::fprintf(stderr, "unknown arch '%s'\n", v->c_str()); o.ok = false; }
    } else if (auto v = value("--sv=")) {
      o.compile.tuning.simdVectorize = *v != "0";
    } else if (auto v = value("--ur=")) {
      o.compile.tuning.unroll = std::atoi(v->c_str());
    } else if (auto v = value("--ae=")) {
      o.compile.tuning.accumExpand = std::atoi(v->c_str());
    } else if (a == "--wnt") {
      o.compile.tuning.nonTemporalWrites = true;
    } else if (auto v = value("--lc=")) {
      o.compile.tuning.optimizeLoopControl = *v != "0";
    } else if (a == "--bf") {
      o.compile.tuning.blockFetch = true;
    } else if (a == "--cisc") {
      o.compile.tuning.ciscIndexing = true;
    } else if (auto v = value("--pf=")) {
      // ARRAY:KIND:DIST, e.g. --pf=X:nta:1024
      auto parts = split(*v, ':');
      if (parts.size() != 3) {
        std::fprintf(stderr, "bad --pf (want ARRAY:KIND:DIST): %s\n", v->c_str());
        o.ok = false;
        continue;
      }
      opt::PrefParam p;
      p.enabled = parts[1] != "none";
      p.distBytes = std::atoi(parts[2].c_str());
      if (parts[1] == "nta") p.kind = ir::PrefKind::NTA;
      else if (parts[1] == "t0") p.kind = ir::PrefKind::T0;
      else if (parts[1] == "t1") p.kind = ir::PrefKind::T1;
      else if (parts[1] == "w") p.kind = ir::PrefKind::W;
      else if (parts[1] != "none") {
        std::fprintf(stderr, "unknown prefetch kind '%s'\n", parts[1].c_str());
        o.ok = false;
      }
      o.compile.tuning.prefetch[parts[0]] = p;
    } else if (auto v = value("--n=")) {
      o.n = std::atoll(v->c_str());
    } else if (auto v = value("--context=")) {
      o.context = *v == "inl2" ? sim::TimeContext::InL2
                               : sim::TimeContext::OutOfCache;
    } else if (a == "--dump-ir") {
      o.dumpIr = true;
    } else if (a == "--extensions") {
      o.extensions = true;
    } else if (a == "--fast") {
      o.fast = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      o.ok = false;
    }
  }
  return o;
}

int cmdAnalyze(const std::string& src, const Options& o) {
  auto rep = fko::analyzeKernel(src, o.machine);
  if (!rep.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", rep.error.c_str());
    return 1;
  }
  std::printf("machine: %s (%d cache levels, %dB lines)\n",
              o.machine.name.c_str(), rep.cacheLevels, rep.lineBytes[0]);
  std::printf("tuned loop: found, max unroll %d\n", rep.maxUnroll);
  std::printf("SIMD vectorizable: %s%s%s (%d lanes of %s)\n",
              rep.vectorizable ? "yes" : "no",
              rep.vectorizable ? "" : " — ",
              rep.vectorizable ? "" : rep.whyNotVectorizable.c_str(),
              rep.vecLanes, std::string(scalName(rep.elemType)).c_str());
  for (const auto& a : rep.arrays)
    std::printf("array %-8s loaded=%d stored=%d prefetchable=%d\n",
                a.name.c_str(), a.loaded, a.stored, a.prefetchable);
  std::printf("accumulator-expansion candidates: %d\n", rep.numAccumulators);
  return 0;
}

int cmdCompile(const std::string& src, const Options& o, bool alsoRun) {
  auto r = fko::compileKernel(src, o.compile, o.machine);
  if (!r.ok) {
    std::fprintf(stderr, "compile failed: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("compiled: %zu instructions, %d spill slots, %d repeatable "
              "iterations\n",
              r.fn.instCount(), r.spillSlots, r.repeatableIters);
  if (o.dumpIr) std::fputs(ir::print(r.fn).c_str(), stdout);

  auto diff = fko::testAgainstUnoptimized(src, r.fn, std::min<int64_t>(o.n, 512));
  std::printf("differential check vs unoptimized lowering: %s\n",
              diff.ok ? "PASS" : diff.message.c_str());
  if (!diff.ok) return 1;

  if (alsoRun) {
    int64_t strideElems = 1;
    auto rep = fko::analyzeKernel(src, o.machine);
    if (rep.ok)
      for (const auto& a : rep.arrays)
        strideElems = std::max(strideElems, a.strideElems);
    auto t = fko::timeCompiled(o.machine, r.fn, o.n, o.context, 42, strideElems);
    std::printf("%s, N=%lld, %s: %llu cycles (%.3f cycles/element, "
                "%llu dynamic instructions)\n",
                o.machine.name.c_str(), static_cast<long long>(o.n),
                std::string(sim::contextName(o.context)).c_str(),
                static_cast<unsigned long long>(t.cycles),
                static_cast<double>(t.cycles) / static_cast<double>(o.n),
                static_cast<unsigned long long>(t.dynInsts));
  }
  return 0;
}

int cmdTune(const std::string& src, const Options& o) {
  search::SearchConfig cfg;
  cfg.n = o.n;
  cfg.context = o.context;
  cfg.fast = o.fast;
  cfg.searchExtensions = o.extensions;
  auto r = search::tuneSource(src, o.machine, cfg);
  if (!r.ok) {
    std::fprintf(stderr, "tuning failed: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("FKO defaults: %llu cycles\n",
              static_cast<unsigned long long>(r.defaultCycles));
  uint64_t prev = r.defaultCycles;
  for (const auto& d : r.ledger) {
    std::printf("  %-7s -> %10llu cycles (%+.1f%%)\n", d.name.c_str(),
                static_cast<unsigned long long>(d.cyclesAfter),
                100.0 * (static_cast<double>(prev) /
                             static_cast<double>(d.cyclesAfter) -
                         1.0));
    prev = d.cyclesAfter;
  }
  std::printf("ifko: %llu cycles (%.2fx over defaults, %d evaluations)\n",
              static_cast<unsigned long long>(r.bestCycles),
              r.speedupOverDefaults(), r.evaluations);
  std::printf("best parameters: %s\n", r.best.str().c_str());
  return 0;
}

int cmdSim(const std::string& src, const Options& o) {
  std::string error;
  auto fn = ir::parse(src, &error);
  if (!fn) {
    std::fprintf(stderr, "IR parse failed: %s\n", error.c_str());
    return 1;
  }
  auto problems = ir::verify(*fn);
  if (!problems.empty()) {
    std::fprintf(stderr, "IR verification failed: %s\n", problems[0].c_str());
    return 1;
  }
  auto t = fko::timeCompiled(o.machine, *fn, o.n, o.context);
  std::printf("%s, N=%lld, %s: %llu cycles (%.3f cycles/element, "
              "%llu dynamic instructions)\n",
              o.machine.name.c_str(), static_cast<long long>(o.n),
              std::string(sim::contextName(o.context)).c_str(),
              static_cast<unsigned long long>(t.cycles),
              static_cast<double>(t.cycles) / static_cast<double>(o.n),
              static_cast<unsigned long long>(t.dynInsts));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string cmd = argv[1];
  auto src = readFile(argv[2]);
  if (!src) {
    std::fprintf(stderr, "cannot read '%s'\n", argv[2]);
    return 1;
  }
  Options o = parseOptions(argc, argv, 3);
  if (!o.ok) return 2;

  if (cmd == "analyze") return cmdAnalyze(*src, o);
  if (cmd == "compile") return cmdCompile(*src, o, /*alsoRun=*/false);
  if (cmd == "run") return cmdCompile(*src, o, /*alsoRun=*/true);
  if (cmd == "tune") return cmdTune(*src, o);
  if (cmd == "sim") return cmdSim(*src, o);
  return usage();
}
