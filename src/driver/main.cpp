// The ifko command-line driver.
//
// Every verb lives in the kVerbs table below — the usage text and the
// dispatch in main() are both generated from it, so a new verb cannot be
// runnable but undocumented (or documented but unrunnable).
//
//   ifko analyze <file.hil> [--arch=p4e|opteron]
//       What FKO's analysis reports to the search: vectorizability, arrays,
//       accumulator candidates, machine cache facts.
//
//   ifko compile <file.hil> [--arch=...] [--sv=0|1] [--ur=N] [--ae=N]
//                [--wnt] [--lc=0|1] [--pf=ARRAY:KIND:DIST]... [--bf]
//                [--cisc] [--params=SPEC] [--dump-ir]
//       One FKO compile with explicit transform parameters; verifies the
//       result differentially against the unoptimized lowering.  All the
//       per-flag spellings are sugar over the TuningSpec grammar
//       (docs/TUNING.md): --ur=4 is exactly --params=ur=4.
//
//   ifko run <file.hil> [--arch=...] [--n=N] [--context=ooc|inl2] (+compile flags)
//       Compile, check, and time on the simulated machine.
//
//   ifko tune <file.hil> [--arch=...] [--n=N] [--context=ooc|inl2]
//             [--extensions] [--fast] [--jobs=N] [--cache=FILE] [--trace=FILE]
//             [--wisdom=FILE]
//             [--strategy=line|random|hillclimb|evolve|attribution|bandit]
//             [--budget=N] [--budget-cycles=N] [--search-seed=S]
//             [--eval-timeout-ms=N] [--eval-retries=N] [--quarantine=N]
//             [--fault-plan=SPEC] [--screen-n=N] [--screen-margin=X]
//             [--no-predecode]
//       The empirical search, with the per-dimension ledger.  --strategy
//       picks the search policy (default: the paper's line search);
//       --budget caps observed candidates, --budget-cycles caps simulated
//       cycles spent, and --search-seed seeds the stochastic strategies
//       (same seed + budget => same proposals at any --jobs).  A stochastic
//       strategy with no budget gets a default of 128 evaluations.
//       --wisdom warm-starts the search from the store's best known config
//       for this (kernel, arch, context, N-class) and writes the winner
//       back keep-best (docs/SERVING.md).
//       Fault isolation: --eval-timeout-ms deadlines each candidate in
//       deterministic simulated work (0 = off), --eval-retries bounds extra
//       attempts after a timeout/crash (default 1), --quarantine abandons a
//       kernel after N hard failures (default 3, 0 = never), and
//       --fault-plan injects deterministic faults for testing (grammar in
//       docs/TUNING.md).
//       Fast path: --screen-n times each new cohort at a reduced size first
//       and confirms only the near-best at full --n (0 = off), with
//       --screen-margin setting the survivor cutoff (default 1.25x);
//       --no-predecode disables the pre-decoded execution form (debugging).
//
//   ifko tune-all <dir> [--arch=...] [--n=N] [--context=ooc|inl2] [--fast]
//                 [--extensions] [--jobs=N] [--cache=FILE] [--trace=FILE]
//                 [--wisdom=FILE] [--strategy=...] [--budget=N]
//                 [--budget-cycles=N] [--search-seed=S] [--eval-timeout-ms=N]
//                 [--eval-retries=N] [--quarantine=N] [--fault-plan=SPEC]
//                 [--cache-dir=DIR] [--shard=NAME]
//                 [--workers=N --worker-id=K] [--resume]
//       Batch-tunes every *.hil kernel in <dir> through the orchestrator and
//       prints a Table-3-style summary with turnaround and cache statistics.
//       --wisdom warm-starts every kernel and writes each winner back as it
//       lands (atomic per-kernel saves, so a crash loses at most the
//       in-flight kernel).
//       Fleet mode (docs/DISTRIBUTED.md): --cache-dir gives every process
//       its own append-only cache.<shard>.jsonl (all shards are loaded, only
//       our own is written; --shard defaults to the pid); --workers=N
//       --worker-id=K keeps the jobs at sorted indices i with i % N == K,
//       so N uncoordinated workers cover the directory exactly once;
//       --resume (needs --trace) replays the trace of an interrupted run
//       and skips every kernel that already completed — with a warm cache
//       the re-entered kernels replay as hits, so nothing is paid twice.
//
//   ifko explain <file.hil> (same options as tune)
//       Tunes the kernel (cheap when a --cache is warm), then diffs the
//       winner against the FKO defaults: a per-cause cycle-attribution
//       table (why the winner is faster, not just that it is), the memory
//       system's per-level counters, and the compile pipeline's per-pass
//       deltas for the winning parameters.
//
//   ifko sim <file.ir> [--arch=...] [--n=N] [--context=ooc|inl2]
//       Parse a textual IR dump (the --dump-ir format) and time it on the
//       simulated machine — the path for hand-edited or hand-written code.
//
//   ifko serve --socket=PATH | --port=N [--wisdom=FILE] [--kernels=DIR]
//              [--recv-timeout-ms=N] (+ tune options for the tune-on-miss path)
//       Tuning-as-a-service (docs/SERVING.md): a long-lived daemon that
//       answers QUERY/TUNE/EXPLAIN/EXPORT/IMPORT/STATS/SHUTDOWN over a Unix
//       or loopback TCP socket.  --recv-timeout-ms bounds how long a
//       stalled connection may hold the serial accept loop (default 30000,
//       0 = no deadline).  Already-tuned queries are served from the
//       wisdom store with zero candidate evaluations; misses tune through
//       the fault-isolated orchestrator and write back.  --port=0 picks an
//       ephemeral port (printed as "PORT <n>" on stdout).
//
//   ifko query [<kernel>] --socket=PATH | --port=N [--arch=...]
//              [--context=...] [--n=N] [--tune] [--explain-verb]
//              [--stats] [--export[=PATH]] [--shutdown]
//       Client for a running serve daemon: sends one request, prints the
//       JSON response line, exits 0 iff the daemon answered ok.  With a
//       kernel name it sends QUERY (or TUNE with --tune, EXPLAIN with
//       --explain-verb); --stats/--export/--shutdown need no kernel.
//
//   ifko cache-merge <out.jsonl> --from=FILE_OR_DIR [--from=...]
//       Offline set union of eval-cache shards (a directory --from expands
//       to its cache.*.jsonl files).  Identical keys dedup to one record;
//       the output is sorted, so it is byte-identical regardless of input
//       order (docs/DISTRIBUTED.md).
//
//   ifko wisdom-merge <out.jsonl> --from=FILE [--from=...]
//       Keep-best merge of wisdom files: merging the per-worker stores of a
//       partitioned tune-all reproduces the single-process wisdom file byte
//       for byte.
//
//   ifko federate <peer> --socket=PATH | --port=N
//       Two-way keep-best wisdom exchange between the local daemon
//       (--socket/--port) and a peer daemon (<peer> = a port number or a
//       Unix socket path), via EXPORT/IMPORT temp files.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "fko/compiler.h"
#include "fko/harness.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "search/evalpipeline.h"
#include "search/orchestrator.h"
#include "search/resume.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "support/hash.h"
#include "support/json.h"
#include "support/str.h"
#include "support/table.h"
#include "wisdom/harvest.h"
#include "wisdom/wisdom.h"

namespace {

using namespace ifko;

std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Options {
  arch::MachineConfig machine = arch::p4e();
  fko::CompileOptions compile;
  int64_t n = 80000;
  sim::TimeContext context = sim::TimeContext::OutOfCache;
  bool dumpIr = false;
  bool extensions = false;
  bool fast = false;
  int jobs = 1;
  std::string cachePath;
  std::string cacheDirPath;  ///< --cache-dir: sharded eval-cache directory
  std::string cacheShard;    ///< --shard: shard name inside --cache-dir
  std::string tracePath;
  int64_t workers = 0;   ///< tune-all --workers: fleet width; 0 = single
  int64_t workerId = 0;  ///< tune-all --worker-id: this worker's slot
  bool workerIdSet = false;
  bool resume = false;            ///< tune-all --resume: replay the trace
  int64_t recvTimeoutMs = 30000;  ///< serve --recv-timeout-ms (0 = off)
  std::vector<std::string> fromPaths;  ///< --from= inputs (repeatable)
  search::StrategyKind strategy = search::StrategyKind::Line;
  int64_t budget = 0;        ///< max observed candidates; 0 = unlimited
  int64_t budgetCycles = 0;  ///< max simulated cycles spent; 0 = unlimited
  int64_t searchSeed = 1;
  int64_t evalTimeoutMs = 0;  ///< per-candidate deadline; 0 = off
  int64_t evalRetries = 1;    ///< extra attempts after a hard failure
  int64_t quarantine = 3;     ///< hard failures before abandoning; 0 = never
  int64_t screenN = 0;        ///< screen-then-confirm sample size; 0 = off
  double screenMargin = 0;    ///< survivor margin; 0 = SearchConfig default
  bool predecode = true;      ///< run candidates through sim/decode.h
  search::FaultPlan faultPlan;
  std::string wisdomPath;  ///< --wisdom: warm-start + write-back store
  // serve/query plumbing
  std::string socketPath;  ///< --socket: Unix-domain endpoint
  int64_t tcpPort = -1;    ///< --port: loopback TCP; -1 unset, 0 ephemeral
  std::string kernelsDir;  ///< serve --kernels: extra *.hil kernels
  serve::Request::Verb queryVerb = serve::Request::Verb::Query;
  std::string exportPath;  ///< query --export=PATH ("" = daemon default)
  // Raw flag spellings, so `query` forwards only what the user actually
  // said and the daemon's own defaults cover the rest.
  std::string archFlag;     ///< "" unless --arch was given
  std::string contextFlag;  ///< "" unless --context was given
  bool nSet = false;        ///< --n was given
  bool ok = true;
};

Options parseOptions(int argc, char** argv, int first) {
  Options o;
  // Every tuning-parameter flag funnels through the TuningSpec parser, so
  // validation and serialization live in exactly one place (opt/params.cpp).
  auto applySpec = [&](const std::string& fragment) {
    auto spec = opt::parseTuningSpec(fragment, o.compile.tuning);
    if (!spec.ok) {
      std::fprintf(stderr, "bad tuning spec '%s': %s\n", fragment.c_str(),
                   spec.error.c_str());
      o.ok = false;
      return;
    }
    o.compile.tuning = spec.params;
  };
  auto intFlag = [&](const std::string& v, const char* name, int64_t minValue,
                     int64_t* out) {
    int64_t parsed = 0;
    if (!parseInt64(v, &parsed) || parsed < minValue) {
      std::fprintf(stderr, "bad %s (want integer >= %lld): '%s'\n", name,
                   static_cast<long long>(minValue), v.c_str());
      o.ok = false;
      return;
    }
    *out = parsed;
  };

  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&](const char* prefix) -> std::optional<std::string> {
      if (!startsWith(a, prefix)) return std::nullopt;
      return a.substr(std::strlen(prefix));
    };
    if (auto v = value("--arch=")) {
      if (*v == "p4e") o.machine = arch::p4e();
      else if (*v == "opteron") o.machine = arch::opteron();
      else { std::fprintf(stderr, "unknown arch '%s'\n", v->c_str()); o.ok = false; continue; }
      o.archFlag = *v;
    } else if (auto v = value("--sv=")) {
      applySpec("sv=" + *v);
    } else if (auto v = value("--ur=")) {
      applySpec("ur=" + *v);
    } else if (auto v = value("--ae=")) {
      applySpec("ae=" + *v);
    } else if (a == "--wnt") {
      applySpec("wnt=Y");
    } else if (auto v = value("--lc=")) {
      applySpec("lc=" + *v);
    } else if (a == "--bf") {
      applySpec("bf=Y");
    } else if (a == "--cisc") {
      applySpec("cisc=Y");
    } else if (auto v = value("--pf=")) {
      // ARRAY:KIND:DIST (e.g. --pf=X:nta:1024) -> pf(ARRAY)=KIND:DIST
      size_t colon = v->find(':');
      if (colon == std::string::npos || colon == 0) {
        std::fprintf(stderr, "bad --pf (want ARRAY:KIND:DIST): %s\n",
                     v->c_str());
        o.ok = false;
        continue;
      }
      std::string rest = v->substr(colon + 1);
      if (rest == "none:0" || rest == "none") rest = "none";
      applySpec("pf(" + v->substr(0, colon) + ")=" + rest);
    } else if (auto v = value("--params=")) {
      applySpec(*v);
    } else if (auto v = value("--n=")) {
      intFlag(*v, "--n", 1, &o.n);
      o.nSet = true;
    } else if (auto v = value("--jobs=")) {
      int64_t jobs = 1;
      intFlag(*v, "--jobs", 1, &jobs);
      o.jobs = static_cast<int>(jobs);
    } else if (auto v = value("--cache=")) {
      o.cachePath = *v;
    } else if (auto v = value("--cache-dir=")) {
      o.cacheDirPath = *v;
    } else if (auto v = value("--shard=")) {
      o.cacheShard = *v;
    } else if (auto v = value("--workers=")) {
      intFlag(*v, "--workers", 1, &o.workers);
    } else if (auto v = value("--worker-id=")) {
      intFlag(*v, "--worker-id", 0, &o.workerId);
      o.workerIdSet = true;
    } else if (a == "--resume") {
      o.resume = true;
    } else if (auto v = value("--recv-timeout-ms=")) {
      intFlag(*v, "--recv-timeout-ms", 0, &o.recvTimeoutMs);
    } else if (auto v = value("--from=")) {
      o.fromPaths.push_back(*v);
    } else if (auto v = value("--trace=")) {
      o.tracePath = *v;
    } else if (auto v = value("--wisdom=")) {
      o.wisdomPath = *v;
    } else if (auto v = value("--socket=")) {
      o.socketPath = *v;
    } else if (auto v = value("--port=")) {
      intFlag(*v, "--port", 0, &o.tcpPort);
    } else if (auto v = value("--kernels=")) {
      o.kernelsDir = *v;
    } else if (a == "--tune") {
      o.queryVerb = serve::Request::Verb::Tune;
    } else if (a == "--explain-verb") {
      o.queryVerb = serve::Request::Verb::Explain;
    } else if (a == "--stats") {
      o.queryVerb = serve::Request::Verb::Stats;
    } else if (a == "--shutdown") {
      o.queryVerb = serve::Request::Verb::Shutdown;
    } else if (a == "--export") {
      o.queryVerb = serve::Request::Verb::Export;
    } else if (auto v = value("--export=")) {
      o.queryVerb = serve::Request::Verb::Export;
      o.exportPath = *v;
    } else if (auto v = value("--strategy=")) {
      auto kind = search::parseStrategyKind(*v);
      if (!kind.has_value()) {
        std::fprintf(stderr,
                     "unknown strategy '%s' (want line|random|hillclimb|"
                     "evolve|attribution|bandit)\n",
                     v->c_str());
        o.ok = false;
      } else {
        o.strategy = *kind;
      }
    } else if (auto v = value("--budget=")) {
      intFlag(*v, "--budget", 1, &o.budget);
    } else if (auto v = value("--budget-cycles=")) {
      intFlag(*v, "--budget-cycles", 1, &o.budgetCycles);
    } else if (auto v = value("--search-seed=")) {
      intFlag(*v, "--search-seed", 0, &o.searchSeed);
    } else if (auto v = value("--eval-timeout-ms=")) {
      intFlag(*v, "--eval-timeout-ms", 0, &o.evalTimeoutMs);
    } else if (auto v = value("--eval-retries=")) {
      intFlag(*v, "--eval-retries", 0, &o.evalRetries);
    } else if (auto v = value("--quarantine=")) {
      intFlag(*v, "--quarantine", 0, &o.quarantine);
    } else if (auto v = value("--screen-n=")) {
      intFlag(*v, "--screen-n", 0, &o.screenN);
    } else if (auto v = value("--screen-margin=")) {
      char* end = nullptr;
      double m = std::strtod(v->c_str(), &end);
      if (end == v->c_str() || *end != '\0' || m < 1.0) {
        std::fprintf(stderr, "bad --screen-margin (want number >= 1): '%s'\n",
                     v->c_str());
        o.ok = false;
      } else {
        o.screenMargin = m;
      }
    } else if (a == "--no-predecode") {
      o.predecode = false;
    } else if (auto v = value("--fault-plan=")) {
      std::string perr;
      auto plan = search::FaultPlan::parse(*v, &perr);
      if (!plan.has_value()) {
        std::fprintf(stderr, "bad --fault-plan: %s\n", perr.c_str());
        o.ok = false;
      } else {
        o.faultPlan = *plan;
      }
    } else if (auto v = value("--context=")) {
      o.context = *v == "inl2" ? sim::TimeContext::InL2
                               : sim::TimeContext::OutOfCache;
      o.contextFlag = *v;
    } else if (a == "--dump-ir") {
      o.dumpIr = true;
    } else if (a == "--extensions") {
      o.extensions = true;
    } else if (a == "--fast") {
      o.fast = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      o.ok = false;
    }
  }
  return o;
}

search::SearchConfig searchConfig(const Options& o) {
  search::SearchConfig cfg = o.fast ? search::SearchConfig::smoke()
                                    : search::SearchConfig{};
  cfg.n = o.n;
  cfg.context = o.context;
  cfg.jobs = o.jobs;
  cfg.searchExtensions = o.extensions;
  cfg.evalTimeoutMs = o.evalTimeoutMs;
  cfg.maxEvalAttempts = static_cast<int>(o.evalRetries) + 1;
  cfg.screenN = o.screenN;
  if (o.screenMargin > 0) cfg.screenMargin = o.screenMargin;
  cfg.predecode = o.predecode;
  return cfg;
}

/// The shared tune/tune-all configuration: search scale, cache/trace paths,
/// strategy, and budget.  A stochastic strategy with no explicit budget
/// would only stop at its internal round limits, so it defaults to 128
/// observed candidates — about one full line search on the full grids.
search::OrchestratorConfig orchestratorConfig(const Options& o) {
  search::OrchestratorConfig oc;
  oc.search = searchConfig(o);
  oc.cachePath = o.cachePath;
  oc.cacheDir = o.cacheDirPath;
  oc.cacheShard = o.cacheShard;
  oc.tracePath = o.tracePath;
  oc.strategy = o.strategy;
  oc.budget.maxEvaluations = static_cast<int>(o.budget);
  oc.budget.maxCycles = static_cast<uint64_t>(o.budgetCycles);
  oc.budget.seed = static_cast<uint64_t>(o.searchSeed);
  if (oc.strategy != search::StrategyKind::Line && oc.budget.unlimited())
    oc.budget.maxEvaluations = 128;
  oc.quarantineAfter = static_cast<int>(o.quarantine);
  oc.faultPlan = o.faultPlan;
  return oc;
}

/// The user-facing name of whatever eval cache the options select (the
/// shard directory wins over a single file, mirroring OrchestratorConfig).
std::string cacheName(const Options& o) {
  return o.cacheDirPath.empty() ? o.cachePath : o.cacheDirPath;
}

/// "2 timeouts, 1 crash, 3 retries" — only the nonzero categories.
std::string faultSummary(const search::FailureCounts& f) {
  std::string s;
  auto item = [&](int n, const char* one, const char* many) {
    if (n == 0) return;
    if (!s.empty()) s += ", ";
    s += std::to_string(n) + " " + (n == 1 ? one : many);
  };
  item(f.timeouts, "timeout", "timeouts");
  item(f.crashes, "crash", "crashes");
  item(f.testerFails, "tester fail", "tester fails");
  item(f.compileFails, "compile fail", "compile fails");
  item(f.retries, "retry", "retries");
  return s;
}

// --- wisdom plumbing for tune/tune-all --------------------------------------

wisdom::WisdomKey wisdomKeyFor(const std::string& src, const Options& o) {
  wisdom::WisdomKey key;
  key.sourceHash = hashHex(src);
  key.machine = o.machine.name;
  key.context = std::string(sim::contextName(o.context));
  key.nClass = wisdom::nClassFor(o.n);
  return key;
}

void loadWisdomWarn(wisdom::WisdomStore& store, const std::string& path,
                    const char* who) {
  std::string err;
  if (!store.load(path, &err))
    std::fprintf(stderr, "%s: wisdom: %s\n", who, err.c_str());
  if (store.damagedLines() > 0)
    std::fprintf(stderr,
                 "%s: warning: skipped %zu damaged wisdom line(s) in '%s'\n",
                 who, store.damagedLines(), path.c_str());
  if (store.schemaSkippedLines() > 0)
    std::fprintf(stderr,
                 "%s: warning: skipped %zu wisdom line(s) from another "
                 "wisdom_schema in '%s'\n",
                 who, store.schemaSkippedLines(), path.c_str());
}

int cmdAnalyze(const std::string& src, const Options& o) {
  auto rep = fko::analyzeKernel(src, o.machine);
  if (!rep.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", rep.error.c_str());
    return 1;
  }
  std::printf("machine: %s (%d cache levels, %dB lines)\n",
              o.machine.name.c_str(), rep.cacheLevels, rep.lineBytes[0]);
  std::printf("tuned loop: found, max unroll %d\n", rep.maxUnroll);
  std::printf("SIMD vectorizable: %s%s%s (%d lanes of %s)\n",
              rep.vectorizable ? "yes" : "no",
              rep.vectorizable ? "" : " — ",
              rep.vectorizable ? "" : rep.whyNotVectorizable.c_str(),
              rep.vecLanes, std::string(scalName(rep.elemType)).c_str());
  for (const auto& a : rep.arrays)
    std::printf("array %-8s loaded=%d stored=%d prefetchable=%d\n",
                a.name.c_str(), a.loaded, a.stored, a.prefetchable);
  std::printf("accumulator-expansion candidates: %d\n", rep.numAccumulators);
  return 0;
}

int cmdCompile(const std::string& src, const Options& o, bool alsoRun) {
  auto r = fko::compileKernel(src, o.compile, o.machine);
  if (!r.ok) {
    std::fprintf(stderr, "compile failed: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("compiled: %zu instructions, %d spill slots, %d repeatable "
              "iterations\n",
              r.fn.instCount(), r.spillSlots, r.repeatableIters);
  for (const auto& w : r.warnings)
    std::fprintf(stderr, "%s\n", w.str().c_str());
  if (o.dumpIr) std::fputs(ir::print(r.fn).c_str(), stdout);

  auto diff = fko::testAgainstUnoptimized(src, r.fn, std::min<int64_t>(o.n, 512));
  std::printf("differential check vs unoptimized lowering: %s\n",
              diff.ok ? "PASS" : diff.message.c_str());
  if (!diff.ok) return 1;

  if (alsoRun) {
    int64_t strideElems = 1;
    auto rep = fko::analyzeKernel(src, o.machine);
    if (rep.ok)
      for (const auto& a : rep.arrays)
        strideElems = std::max(strideElems, a.strideElems);
    auto t = fko::timeCompiled(o.machine, r.fn, o.n, o.context, 42, strideElems);
    std::printf("%s, N=%lld, %s: %llu cycles (%.3f cycles/element, "
                "%llu dynamic instructions)\n",
                o.machine.name.c_str(), static_cast<long long>(o.n),
                std::string(sim::contextName(o.context)).c_str(),
                static_cast<unsigned long long>(t.cycles),
                static_cast<double>(t.cycles) / static_cast<double>(o.n),
                static_cast<unsigned long long>(t.dynInsts));
  }
  return 0;
}

std::string pathStem(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

int cmdTune(const std::string& path, const std::string& src, const Options& o) {
  search::OrchestratorConfig oc = orchestratorConfig(o);
  std::string err;
  search::Orchestrator orch(o.machine, oc, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  if (orch.cache().damagedLines() > 0)
    std::fprintf(stderr,
                 "tune: warning: skipped %zu damaged line(s) in cache '%s'\n",
                 orch.cache().damagedLines(), cacheName(o).c_str());

  search::KernelJob job{pathStem(path), src, nullptr};
  wisdom::WisdomStore wis;
  wisdom::WisdomKey wkey;
  if (!o.wisdomPath.empty()) {
    loadWisdomWarn(wis, o.wisdomPath, "tune");
    wkey = wisdomKeyFor(src, o);
    // Deferred until the DEFAULTS point is timed, so the lookup can rank
    // fallback candidates by similarity to this kernel's own attribution
    // vector (the probe) instead of by raw N-class distance.
    job.warmStartProvider = [&wis, wkey](const search::EvalOutcome& def)
        -> std::optional<opt::TuningParams> {
      std::optional<wisdom::AttrShares> probe;
      if (def.counters.has_value())
        probe = wisdom::attrSharesFrom(*def.counters);
      const wisdom::WisdomMatch m =
          wis.find(wkey, probe.has_value() ? &*probe : nullptr);
      if (!m.hit()) return std::nullopt;
      const opt::TuningSpec seed = opt::parseTuningSpec(m.record->params);
      if (!seed.ok) return std::nullopt;
      std::printf("wisdom: warm start (%s): %s\n",
                  std::string(wisdom::matchKindName(m.kind)).c_str(),
                  m.record->params.c_str());
      return seed.params;
    };
  }

  auto outcome = orch.tune(job);
  const search::TuneResult& r = outcome.result;
  if (!r.ok) {
    std::fprintf(stderr, "tuning failed: %s\n", r.error.c_str());
    if (outcome.faults.total() > 0)
      std::fprintf(stderr, "evaluation failures: %s\n",
                   faultSummary(outcome.faults).c_str());
    return 1;
  }
  std::printf("FKO defaults: %llu cycles\n",
              static_cast<unsigned long long>(r.defaultCycles));
  uint64_t prev = r.defaultCycles;
  for (const auto& d : r.ledger) {
    std::printf("  %-7s -> %10llu cycles (%+.1f%%)\n", d.name.c_str(),
                static_cast<unsigned long long>(d.cyclesAfter),
                100.0 * (static_cast<double>(prev) /
                             static_cast<double>(d.cyclesAfter) -
                         1.0));
    prev = d.cyclesAfter;
  }
  std::printf("ifko: %llu cycles (%.2fx over defaults, %d evaluations)\n",
              static_cast<unsigned long long>(r.bestCycles),
              r.speedupOverDefaults(), r.evaluations);
  std::printf("best parameters: %s\n",
              opt::formatTuningSpec(r.best).c_str());
  if (oc.strategy != search::StrategyKind::Line) {
    std::string budget = oc.budget.unlimited() ? "unlimited"
                         : oc.budget.maxEvaluations > 0
                             ? std::to_string(oc.budget.maxEvaluations)
                             : std::to_string(oc.budget.maxCycles) + " cycles";
    std::printf("strategy %s: %d proposals (budget %s, seed %llu)\n",
                std::string(search::strategyName(oc.strategy)).c_str(),
                r.proposals, budget.c_str(),
                static_cast<unsigned long long>(oc.budget.seed));
  }
  if (outcome.faults.total() > 0 || outcome.faults.retries > 0)
    std::printf("evaluation failures survived: %s\n",
                faultSummary(outcome.faults).c_str());
  if (!cacheName(o).empty())
    std::printf("cache: %llu hits / %llu misses (%zu entries in %s)\n",
                static_cast<unsigned long long>(outcome.cacheHits),
                static_cast<unsigned long long>(outcome.cacheMisses),
                orch.cache().size(), cacheName(o).c_str());

  if (!o.wisdomPath.empty()) {
    const bool adopted = wis.record(wisdom::harvestRecord(
        wkey, job.name,
        "tune/" + std::string(search::strategyName(oc.strategy)), r, oc.search,
        &orch.cache()));
    std::string werr;
    if (!wis.save(o.wisdomPath, &werr)) {
      std::fprintf(stderr, "tune: wisdom save failed: %s\n", werr.c_str());
      return 1;
    }
    std::printf("wisdom: %s (%zu records in %s)\n",
                adopted ? "best recorded" : "incumbent kept (not beaten)",
                wis.size(), o.wisdomPath.c_str());
  }
  return 0;
}

/// `ifko explain`: tune (warm-cache cheap), then attribute the cycles of the
/// default and winning parameter sets cause by cause, so the speedup has an
/// explanation and not just a number.
int cmdExplain(const std::string& path, const std::string& src,
               const Options& o) {
  search::OrchestratorConfig oc = orchestratorConfig(o);
  std::string err;
  search::Orchestrator orch(o.machine, oc, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  if (orch.cache().damagedLines() > 0)
    std::fprintf(stderr,
                 "explain: warning: skipped %zu damaged line(s) in cache "
                 "'%s'\n",
                 orch.cache().damagedLines(), cacheName(o).c_str());
  auto outcome = orch.tune({pathStem(path), src, nullptr});
  const search::TuneResult& r = outcome.result;
  if (!r.ok) {
    std::fprintf(stderr, "tuning failed: %s\n", r.error.c_str());
    return 1;
  }

  // Re-evaluate the two endpoints directly: a pre-v3 cache has no counters
  // to replay, and two evaluations are cheap next to the search itself.
  // One pipeline lowers the source once and keeps the winner's compiled
  // artifact for the pass-delta display below — no re-lowering, no second
  // compile of the same candidate.
  search::SearchConfig cfg = searchConfig(o);
  search::EvalPipeline pipe(src, nullptr, o.machine, cfg);
  if (!pipe.lowered().ok) {
    std::fprintf(stderr, "lowering failed: %s\n",
                 pipe.lowered().error.c_str());
    return 1;
  }
  auto def = search::evaluateCandidate(pipe.request(r.defaults));
  auto best = search::evaluateCandidate(pipe.request(r.best));
  if (!def.counters.has_value() || !best.counters.has_value()) {
    std::fprintf(stderr, "explain: endpoint re-evaluation failed (%s / %s)\n",
                 std::string(search::evalStatusName(def.status)).c_str(),
                 std::string(search::evalStatusName(best.status)).c_str());
    return 1;
  }
  const search::EvalCounters& dc = *def.counters;
  const search::EvalCounters& bc = *best.counters;

  std::printf("%s on %s, N=%lld, %s\n", pathStem(path).c_str(),
              o.machine.name.c_str(), static_cast<long long>(o.n),
              std::string(sim::contextName(o.context)).c_str());
  std::printf("defaults: %-40s %10llu cycles\n",
              opt::formatTuningSpec(r.defaults).c_str(),
              static_cast<unsigned long long>(def.cycles));
  std::printf("winner:   %-40s %10llu cycles (%.2fx)\n",
              opt::formatTuningSpec(r.best).c_str(),
              static_cast<unsigned long long>(best.cycles),
              best.cycles == 0 ? 0.0
                               : static_cast<double>(def.cycles) /
                                     static_cast<double>(best.cycles));

  // Per-cause attribution, defaults vs winner.  Shares are of each run's own
  // total, which equals its cycle count exactly (the accounting identity).
  uint64_t dTot = dc.attr.total();
  uint64_t bTot = bc.attr.total();
  auto share = [](uint64_t c, uint64_t total) {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(c) /
                            static_cast<double>(total);
  };
  std::printf("\ncycle attribution (why, not just how much):\n");
  TextTable t;
  t.setHeader({"cause", "FKO cyc", "FKO %", "ifko cyc", "ifko %", "delta"});
  for (size_t i = 0; i < sim::kNumStallCauses; ++i) {
    uint64_t d = dc.attr.cycles[i];
    uint64_t b = bc.attr.cycles[i];
    if (d == 0 && b == 0) continue;
    int64_t delta = static_cast<int64_t>(b) - static_cast<int64_t>(d);
    t.addRow({std::string(sim::stallCauseName(static_cast<sim::StallCause>(i))),
              std::to_string(d), fmtFixed(share(d, dTot), 1),
              std::to_string(b), fmtFixed(share(b, bTot), 1),
              (delta > 0 ? "+" : "") + std::to_string(delta)});
  }
  t.addRow({"total", std::to_string(dTot), "100.0", std::to_string(bTot),
            "100.0",
            (bTot > dTot ? "+" : "") +
                std::to_string(static_cast<int64_t>(bTot) -
                               static_cast<int64_t>(dTot))});
  std::fputs(t.str().c_str(), stdout);
  std::printf("memory stalls: %llu cycles (%.1f%%) -> %llu cycles (%.1f%%)\n",
              static_cast<unsigned long long>(dc.attr.memoryStalls()),
              share(dc.attr.memoryStalls(), dTot),
              static_cast<unsigned long long>(bc.attr.memoryStalls()),
              share(bc.attr.memoryStalls(), bTot));

  auto memLine = [](const char* who, const search::EvalCounters& c) {
    std::printf("  %-8s loads %llu (L1 %llu, L2 %llu, mem %llu)  stores %llu "
                "(RFO %llu, NT %llu)  pref %llu/%llu useful  evict %llu+%llu  "
                "bus %lluB\n",
                who, static_cast<unsigned long long>(c.mem.loads),
                static_cast<unsigned long long>(c.mem.loadHitL1),
                static_cast<unsigned long long>(c.mem.loadHitL2),
                static_cast<unsigned long long>(c.mem.loadMissMem),
                static_cast<unsigned long long>(c.mem.stores),
                static_cast<unsigned long long>(c.mem.storeRFOs),
                static_cast<unsigned long long>(c.mem.ntStores),
                static_cast<unsigned long long>(c.mem.prefUseful),
                static_cast<unsigned long long>(c.mem.prefIssued),
                static_cast<unsigned long long>(c.mem.evictL1),
                static_cast<unsigned long long>(c.mem.evictL2),
                static_cast<unsigned long long>(c.mem.busBytes));
  };
  std::printf("\nmemory system:\n");
  memLine("defaults", dc);
  memLine("winner", bc);

  // Compile observability for the winning parameters: the per-pass deltas of
  // the fundamental + repeatable pipeline.  The pipeline memo already holds
  // the winner's artifact from the endpoint re-evaluation above.
  const fko::CompileResult& compiled = pipe.compile(r.best)->compiled;
  if (compiled.ok) {
    std::printf("\ncompile (winner): %zu IR instructions, %d spill slots, "
                "%d repeatable iteration(s)%s\n",
                compiled.fn.instCount(), compiled.spillSlots,
                compiled.repeatableIters,
                compiled.repeatableConverged ? "" : " [did not converge]");
    for (const auto& p : compiled.passes)
      std::printf("  %-12s %4zu -> %4zu insts  (%d iteration%s)\n",
                  p.name.c_str(), p.instsBefore, p.instsAfter, p.iterations,
                  p.iterations == 1 ? "" : "s");
    for (const auto& w : compiled.warnings)
      std::fprintf(stderr, "%s\n", w.str().c_str());
  }
  return 0;
}

int cmdTuneAll(const std::string& dir, const Options& o) {
  std::string err;
  auto jobs = search::loadKernelDir(dir, &err);
  if (jobs.empty()) {
    std::fprintf(stderr, "tune-all: %s\n", err.c_str());
    return 1;
  }

  // --workers=N --worker-id=K: deterministic partition of the sorted job
  // list.  Each worker keeps jobs[i] with i % N == K, so an uncoordinated
  // fleet covers the directory exactly once — and because every kernel's
  // search is independent, the union of the workers' results is
  // bit-identical to one process tuning the whole list.
  if (o.workers > 0 || o.workerIdSet) {
    if (o.workers < 1 || o.workerId >= o.workers) {
      std::fprintf(stderr,
                   "tune-all: need --workers=N with --worker-id=K in "
                   "[0, N): got workers=%lld worker-id=%lld\n",
                   static_cast<long long>(o.workers),
                   static_cast<long long>(o.workerId));
      return 2;
    }
    const size_t total = jobs.size();
    jobs = search::workerSlice(std::move(jobs), static_cast<int>(o.workers),
                               static_cast<int>(o.workerId));
    std::fprintf(stderr, "tune-all: worker %lld of %lld: %zu of %zu kernels\n",
                 static_cast<long long>(o.workerId),
                 static_cast<long long>(o.workers), jobs.size(), total);
  }

  search::OrchestratorConfig oc = orchestratorConfig(o);

  // --resume: the trace is a write-ahead log of batch progress.  Replay it,
  // skip every kernel whose ok kernel_end survived the crash, and re-enter
  // the rest — with the eval cache warm their already-paid candidates
  // replay as hits, so nothing is evaluated twice.
  search::ResumePlan plan;
  std::vector<search::KernelJob> doneJobs;
  if (o.resume) {
    if (o.tracePath.empty()) {
      std::fprintf(stderr,
                   "tune-all: --resume needs --trace=FILE (the interrupted "
                   "run's trace is the log it resumes from)\n");
      return 2;
    }
    std::string rerr;
    plan = search::loadResumePlan(
        o.tracePath, o.machine.name, std::string(sim::contextName(o.context)),
        o.n, std::string(search::strategyName(oc.strategy)), &rerr);
    if (!rerr.empty()) {
      std::fprintf(stderr, "tune-all: %s\n", rerr.c_str());
      return 1;
    }
    if (plan.damagedLines > 0)
      std::fprintf(stderr,
                   "tune-all: warning: skipped %zu damaged trace line(s) (a "
                   "torn tail from the kill is normal)\n",
                   plan.damagedLines);
    std::vector<search::KernelJob> remaining;
    for (auto& job : jobs) {
      if (plan.completed.count(job.name) != 0)
        doneJobs.push_back(std::move(job));
      else
        remaining.push_back(std::move(job));
    }
    jobs = std::move(remaining);
    std::fprintf(stderr,
                 "tune-all: resume: %zu kernel(s) already complete in %s, "
                 "%zu to go\n",
                 doneJobs.size(), o.tracePath.c_str(), jobs.size());
  }

  search::Orchestrator orch(o.machine, oc, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "tune-all: %s\n", err.c_str());
    return 1;
  }
  if (orch.cache().damagedLines() > 0)
    std::fprintf(stderr,
                 "tune-all: warning: skipped %zu damaged line(s) in cache "
                 "'%s'\n",
                 orch.cache().damagedLines(), cacheName(o).c_str());

  wisdom::WisdomStore wis;
  std::map<std::string, wisdom::WisdomKey> wkeyByName;
  if (!o.wisdomPath.empty()) {
    loadWisdomWarn(wis, o.wisdomPath, "tune-all");
    size_t warmStarts = 0;
    for (auto& job : jobs) {
      wisdom::WisdomKey key = wisdomKeyFor(job.hilSource, o);
      if (wis.find(key).hit()) ++warmStarts;
      // Deferred lookup: the kernel's DEFAULTS attribution becomes the
      // similarity probe, and later kernels also see records written back
      // by earlier ones in this same run.
      job.warmStartProvider = [&wis, key](const search::EvalOutcome& def)
          -> std::optional<opt::TuningParams> {
        std::optional<wisdom::AttrShares> probe;
        if (def.counters.has_value())
          probe = wisdom::attrSharesFrom(*def.counters);
        const wisdom::WisdomMatch m =
            wis.find(key, probe.has_value() ? &*probe : nullptr);
        if (!m.hit()) return std::nullopt;
        const opt::TuningSpec seed = opt::parseTuningSpec(m.record->params);
        if (!seed.ok) return std::nullopt;
        return seed.params;
      };
      wkeyByName.emplace(job.name, std::move(key));
    }
    for (const auto& job : doneJobs)
      wkeyByName.emplace(job.name, wisdomKeyFor(job.hilSource, o));
    std::fprintf(stderr, "wisdom: warm-starting %zu of %zu kernels from %s\n",
                 warmStarts, jobs.size(), o.wisdomPath.c_str());
  }

  // Write wisdom back after every kernel, not once at the end: save() is
  // atomic (pid-unique temp + rename), so a kill -9 at any point loses at
  // most the in-flight kernel's record — which --resume re-harvests anyway.
  size_t adopted = 0;
  auto recordWisdom = [&](const search::KernelOutcome& k) {
    if (o.wisdomPath.empty() || !k.result.ok) return;
    if (wis.record(wisdom::harvestRecord(
            wkeyByName.at(k.name), k.name,
            "tune-all/" + std::string(search::strategyName(oc.strategy)),
            k.result, oc.search, &orch.cache())))
      ++adopted;
    std::string werr;
    if (!wis.save(o.wisdomPath, &werr))
      std::fprintf(stderr, "tune-all: wisdom save failed: %s\n", werr.c_str());
  };

  // Resumed kernels: re-emit their results straight from the trace.  Their
  // wisdom records are re-harvested through the (warm) cache, so a run that
  // died between a kernel's trace event and its wisdom write-back still
  // ends with the record — byte-identical to the uninterrupted run's.
  std::vector<search::KernelOutcome> resumed;
  for (const auto& job : doneJobs) {
    search::KernelOutcome ko;
    ko.name = job.name;
    ko.result = search::resumedTuneResult(plan.completed.at(job.name));
    recordWisdom(ko);
    resumed.push_back(std::move(ko));
  }

  std::fprintf(stderr, "tuning %zu kernels on %s (jobs=%d)...\n", jobs.size(),
               o.machine.name.c_str(), std::max(1, o.jobs));
  auto batch = orch.tuneAll(jobs, recordWisdom);

  // Compact per-kernel fault cell: "2t 1c" = 2 timeouts, 1 crash; "-" = clean.
  auto faultCell = [](const search::FailureCounts& f) {
    std::string s;
    auto item = [&](int n, const char* tag) {
      if (n == 0) return;
      if (!s.empty()) s += " ";
      s += std::to_string(n) + tag;
    };
    item(f.timeouts, "t");
    item(f.crashes, "c");
    item(f.testerFails, "x");
    item(f.compileFails, "e");
    return s.empty() ? "-" : s;
  };

  TextTable t;
  t.setHeader({"kernel", "SV:WNT", "PF X", "PF Y", "UR:AE", "FKO cyc",
               "ifko cyc", "speedup", "evals", "faults", "hit%", "sec"});
  auto addRow = [&](const search::KernelOutcome& k, const char* tag,
                    bool timed) {
    const search::TuneResult& r = k.result;
    if (!r.ok) {
      t.addRow({k.name + (k.quarantined ? " (quarantined)" : tag), "-", "-",
                "-", "-", "-", "-", "-", std::to_string(r.evaluations),
                faultCell(k.faults), "-",
                timed ? fmtFixed(k.seconds, 2) : "-"});
      return;
    }
    auto row = search::paramsRow(r.best, r.analysis);
    uint64_t lookups = k.cacheHits + k.cacheMisses;
    double hitPct = lookups == 0 ? 0.0
                                 : 100.0 * static_cast<double>(k.cacheHits) /
                                       static_cast<double>(lookups);
    t.addRow({k.name + tag, row[0], row[1], row[2], row[3],
              std::to_string(r.defaultCycles), std::to_string(r.bestCycles),
              fmtFixed(r.speedupOverDefaults(), 2) + "x",
              std::to_string(r.evaluations), faultCell(k.faults),
              timed ? fmtFixed(hitPct, 1) : "-",
              timed ? fmtFixed(k.seconds, 2) : "-"});
  };
  for (const auto& k : resumed) addRow(k, " (resumed)", /*timed=*/false);
  for (const auto& k : batch.kernels) addRow(k, "", /*timed=*/true);
  std::fputs(t.str().c_str(), stdout);

  int resumedFailures = 0;
  for (const auto& k : resumed) resumedFailures += k.result.ok ? 0 : 1;

  std::printf("\n%zu kernels (%d failed, %d quarantined) in %.2f s wall: "
              "%d evaluations, cache %.1f%% hits (%llu/%llu)",
              resumed.size() + batch.kernels.size(),
              batch.failures() + resumedFailures, batch.quarantined(),
              batch.wallSeconds, batch.evaluations, 100.0 * batch.hitRate(),
              static_cast<unsigned long long>(batch.cacheHits),
              static_cast<unsigned long long>(batch.cacheHits +
                                              batch.cacheMisses));
  if (!resumed.empty()) std::printf(", %zu resumed", resumed.size());
  if (!cacheName(o).empty())
    std::printf(", %zu cached entries in %s", orch.cache().size(),
                cacheName(o).c_str());
  std::printf("\n");
  if (batch.faults.total() > 0 || batch.faults.retries > 0)
    std::printf("evaluation failures survived: %s\n",
                faultSummary(batch.faults).c_str());
  for (const auto& k : resumed)
    if (!k.result.ok)
      std::fprintf(stderr, "FAILED %s: %s\n", k.name.c_str(),
                   k.result.error.c_str());
  for (const auto& k : batch.kernels)
    if (!k.result.ok)
      std::fprintf(stderr, "FAILED %s: %s\n", k.name.c_str(),
                   k.result.error.c_str());

  if (!o.wisdomPath.empty()) {
    // Every record is already on disk (recordWisdom saves per kernel); this
    // final save only matters when the batch adopted nothing, so the file
    // still exists and reflects what was loaded.
    std::string werr;
    if (!wis.save(o.wisdomPath, &werr)) {
      std::fprintf(stderr, "tune-all: wisdom save failed: %s\n", werr.c_str());
      return 1;
    }
    std::printf("wisdom: %zu result(s) adopted (%zu records in %s)\n",
                adopted, wis.size(), o.wisdomPath.c_str());
  }
  return batch.failures() + resumedFailures == 0 ? 0 : 1;
}

int cmdSim(const std::string& src, const Options& o) {
  std::string error;
  auto fn = ir::parse(src, &error);
  if (!fn) {
    std::fprintf(stderr, "IR parse failed: %s\n", error.c_str());
    return 1;
  }
  auto problems = ir::verify(*fn);
  if (!problems.empty()) {
    std::fprintf(stderr, "IR verification failed: %s\n", problems[0].c_str());
    return 1;
  }
  auto t = fko::timeCompiled(o.machine, *fn, o.n, o.context);
  std::printf("%s, N=%lld, %s: %llu cycles (%.3f cycles/element, "
              "%llu dynamic instructions)\n",
              o.machine.name.c_str(), static_cast<long long>(o.n),
              std::string(sim::contextName(o.context)).c_str(),
              static_cast<unsigned long long>(t.cycles),
              static_cast<double>(t.cycles) / static_cast<double>(o.n),
              static_cast<unsigned long long>(t.dynInsts));
  return 0;
}

int cmdServe(const Options& o) {
  if (o.socketPath.empty() && o.tcpPort < 0) {
    std::fprintf(stderr,
                 "serve: need --socket=PATH or --port=N (0 = ephemeral)\n");
    return 2;
  }
  serve::ServeConfig cfg;
  cfg.orchestrator = orchestratorConfig(o);
  cfg.defaultArch = o.machine.name == "Opteron" ? "opteron" : "p4e";
  cfg.wisdomPath = o.wisdomPath;
  cfg.kernelsDir = o.kernelsDir;
  cfg.recvTimeoutMs = static_cast<int>(o.recvTimeoutMs);
  std::string warn;
  serve::Daemon daemon(cfg, &warn);
  if (!warn.empty()) std::fputs(warn.c_str(), stderr);  // one warning per line

  std::string err;
  const bool listening = o.socketPath.empty()
                             ? daemon.listenTcp(static_cast<int>(o.tcpPort), &err)
                             : daemon.listenUnix(o.socketPath, &err);
  if (!listening) {
    std::fprintf(stderr, "serve: %s\n", err.c_str());
    return 1;
  }
  if (o.socketPath.empty()) {
    std::fprintf(stderr,
                 "ifko serve: listening on 127.0.0.1:%d (%zu kernels, %zu "
                 "wisdom records)\n",
                 daemon.boundPort(), daemon.kernelNames().size(),
                 daemon.store().size());
    // Machine-readable line for scripts that asked for an ephemeral port.
    std::printf("PORT %d\n", daemon.boundPort());
    std::fflush(stdout);
  } else {
    std::fprintf(stderr,
                 "ifko serve: listening on %s (%zu kernels, %zu wisdom "
                 "records)\n",
                 o.socketPath.c_str(), daemon.kernelNames().size(),
                 daemon.store().size());
  }

  const int rc = daemon.run(&err);
  if (rc != 0) {
    std::fprintf(stderr, "serve: %s\n", err.c_str());
    return rc;
  }
  const serve::ServeStats& s = daemon.stats();
  std::fprintf(stderr,
               "ifko serve: shutdown after %llu requests (%llu wisdom hits, "
               "%llu tuned, %llu evaluations, %llu errors)\n",
               static_cast<unsigned long long>(s.requests),
               static_cast<unsigned long long>(s.wisdomExact + s.wisdomNear),
               static_cast<unsigned long long>(s.tuned),
               static_cast<unsigned long long>(s.evaluations),
               static_cast<unsigned long long>(s.errors));
  return 0;
}

int cmdQuery(const std::string& kernel, const Options& o) {
  if (o.socketPath.empty() && o.tcpPort < 0) {
    std::fprintf(stderr, "query: need --socket=PATH or --port=N\n");
    return 2;
  }
  serve::Request req;
  req.verb = o.queryVerb;
  const bool kernelVerb = req.verb == serve::Request::Verb::Query ||
                          req.verb == serve::Request::Verb::Tune ||
                          req.verb == serve::Request::Verb::Explain;
  if (kernelVerb) {
    if (kernel.empty()) {
      std::fprintf(stderr,
                   "query: need a kernel name (or --stats, --export, "
                   "--shutdown)\n");
      return 2;
    }
    req.target = kernel;
    req.arch = o.archFlag;
    req.context = o.contextFlag;
    if (o.nSet) req.n = o.n;
  } else if (req.verb == serve::Request::Verb::Export) {
    req.target = o.exportPath;
  }

  serve::Endpoint ep;
  ep.unixPath = o.socketPath;
  ep.tcpPort = static_cast<int>(std::max<int64_t>(o.tcpPort, 0));
  std::string err;
  const std::optional<std::string> resp = serve::requestOnce(ep, req, &err);
  if (!resp.has_value()) {
    std::fprintf(stderr, "query: %s\n", err.c_str());
    return 1;
  }
  std::printf("%s\n", resp->c_str());

  std::map<std::string, JsonValue> obj;
  if (!parseJsonObject(*resp, &obj)) {
    std::fprintf(stderr, "query: daemon sent a malformed response\n");
    return 1;
  }
  const auto it = obj.find("ok");
  return it != obj.end() && it->second.kind == JsonValue::Kind::Bool &&
                 it->second.boolean
             ? 0
             : 1;
}

// --- fleet verbs: cache-merge, wisdom-merge, federate -----------------------

/// `ifko cache-merge <out> --from=FILE_OR_DIR...`: offline set union of
/// eval-cache shards.  A --from naming a directory expands to every
/// cache.*.jsonl shard inside it; records are pure functions of their keys,
/// so dedup keeps the first occurrence and the output is byte-identical
/// regardless of input order.
int cmdCacheMerge(const std::string& out, const Options& o) {
  if (o.fromPaths.empty()) {
    std::fprintf(stderr,
                 "cache-merge: need at least one --from=FILE_OR_DIR\n");
    return 2;
  }
  std::vector<std::string> inputs;
  for (const std::string& from : o.fromPaths) {
    std::error_code ec;
    if (std::filesystem::is_directory(from, ec)) {
      std::string derr;
      std::vector<std::string> shards =
          search::EvalCache::shardFiles(from, &derr);
      if (!derr.empty()) {
        std::fprintf(stderr, "cache-merge: %s\n", derr.c_str());
        return 1;
      }
      if (shards.empty())
        std::fprintf(stderr,
                     "cache-merge: warning: no cache.*.jsonl shards in %s\n",
                     from.c_str());
      inputs.insert(inputs.end(), shards.begin(), shards.end());
    } else {
      inputs.push_back(from);
    }
  }
  std::string err;
  search::CacheMergeStats stats;
  if (!search::EvalCache::mergeFiles(inputs, out, &err, &stats)) {
    std::fprintf(stderr, "cache-merge: %s\n", err.c_str());
    return 1;
  }
  std::printf("merged %zu files: %zu unique records (%zu duplicates "
              "dropped, %zu damaged skipped) -> %s\n",
              stats.files, stats.unique, stats.duplicates, stats.damaged,
              out.c_str());
  return 0;
}

/// `ifko wisdom-merge <out> --from=FILE...`: keep-best union of wisdom
/// files.  Lower best_cycles wins and ties keep the incumbent, so the merge
/// is order-independent; the save is sorted, so merging the per-worker
/// stores of a partitioned tune-all reproduces the single-process file
/// byte for byte.
int cmdWisdomMerge(const std::string& out, const Options& o) {
  if (o.fromPaths.empty()) {
    std::fprintf(stderr, "wisdom-merge: need at least one --from=FILE\n");
    return 2;
  }
  wisdom::WisdomStore merged;
  for (const std::string& from : o.fromPaths)
    loadWisdomWarn(merged, from, "wisdom-merge");
  std::string err;
  if (!merged.save(out, &err)) {
    std::fprintf(stderr, "wisdom-merge: %s\n", err.c_str());
    return 1;
  }
  std::printf("merged %zu files: %zu records -> %s\n", o.fromPaths.size(),
              merged.size(), out.c_str());
  return 0;
}

/// `ifko federate <peer>`: two-way keep-best wisdom exchange between a
/// local daemon (--socket/--port) and a peer daemon (<peer> = a port
/// number or a Unix socket path).  Each side EXPORTs to a temp file the
/// other side IMPORTs — both daemons are loopback-only by design, so
/// federation assumes a shared filesystem.
int cmdFederate(const std::string& peer, const Options& o) {
  if (o.socketPath.empty() && o.tcpPort < 0) {
    std::fprintf(stderr,
                 "federate: need --socket=PATH or --port=N for the local "
                 "daemon\n");
    return 2;
  }
  if (peer.empty()) {
    std::fprintf(stderr,
                 "federate: need a peer (a port number or a socket path)\n");
    return 2;
  }
  serve::Endpoint local;
  local.unixPath = o.socketPath;
  local.tcpPort = static_cast<int>(std::max<int64_t>(o.tcpPort, 0));
  serve::Endpoint remote;
  bool peerIsPort = true;
  for (char c : peer) peerIsPort = peerIsPort && c >= '0' && c <= '9';
  if (peerIsPort) {
    // Strict parse with a TCP range check: "99999999" must be an error,
    // never a silently truncated (or zero) port.
    int64_t port = 0;
    if (!parseInt64(peer, &port) || port < 1 || port > 65535) {
      std::fprintf(stderr,
                   "federate: bad peer port '%s' (want an integer in "
                   "1..65535, or a socket path)\n",
                   peer.c_str());
      return 2;
    }
    remote.tcpPort = static_cast<int>(port);
  } else {
    remote.unixPath = peer;
  }

  auto call = [&](const serve::Endpoint& ep, serve::Request req,
                  const char* what)
      -> std::optional<std::map<std::string, JsonValue>> {
    std::string err;
    const std::optional<std::string> resp = serve::requestOnce(ep, req, &err);
    if (!resp.has_value()) {
      std::fprintf(stderr, "federate: %s: %s\n", what, err.c_str());
      return std::nullopt;
    }
    std::map<std::string, JsonValue> obj;
    if (!parseJsonObject(*resp, &obj)) {
      std::fprintf(stderr, "federate: %s: malformed response: %s\n", what,
                   resp->c_str());
      return std::nullopt;
    }
    const auto ok = obj.find("ok");
    if (ok == obj.end() || ok->second.kind != JsonValue::Kind::Bool ||
        !ok->second.boolean) {
      const auto msg = obj.find("error");
      std::fprintf(stderr, "federate: %s: %s\n", what,
                   msg != obj.end() ? msg->second.string.c_str()
                                    : resp->c_str());
      return std::nullopt;
    }
    return obj;
  };
  auto adoptedOf = [](const std::map<std::string, JsonValue>& obj) {
    const auto it = obj.find("adopted");
    return it != obj.end() ? it->second.asUint() : 0;
  };

  const std::string base =
      "/tmp/ifko.federate." + std::to_string(static_cast<long>(::getpid()));
  const std::string peerFile = base + ".peer.jsonl";
  const std::string localFile = base + ".local.jsonl";
  auto cleanup = [&] {
    std::remove(peerFile.c_str());
    std::remove(localFile.c_str());
  };

  serve::Request exp;
  exp.verb = serve::Request::Verb::Export;
  serve::Request imp;
  imp.verb = serve::Request::Verb::Import;

  exp.target = peerFile;
  if (!call(remote, exp, "peer EXPORT")) return 1;
  imp.target = peerFile;
  const auto localImport = call(local, imp, "local IMPORT");
  if (!localImport) {
    cleanup();
    return 1;
  }
  exp.target = localFile;
  if (!call(local, exp, "local EXPORT")) {
    cleanup();
    return 1;
  }
  imp.target = localFile;
  const auto peerImport = call(remote, imp, "peer IMPORT");
  cleanup();
  if (!peerImport) return 1;

  std::printf("federated with %s: adopted %llu record(s) from the peer, "
              "peer adopted %llu of ours\n",
              peer.c_str(),
              static_cast<unsigned long long>(adoptedOf(*localImport)),
              static_cast<unsigned long long>(adoptedOf(*peerImport)));
  return 0;
}

// --- the verb table ---------------------------------------------------------

/// One driver verb.  The usage text and main()'s dispatch are both generated
/// from kVerbs, so the two can never drift apart.
struct VerbSpec {
  const char* name;
  const char* argHelp;  ///< "" = no positional argument
  const char* summary;  ///< one usage line
  bool needsArg;        ///< the positional argument is required
  bool readsFile;       ///< the argument is a file whose contents `run` gets
  int (*run)(const std::string& arg, const std::string& src, const Options& o);
};

const VerbSpec kVerbs[] = {
    {"analyze", "<file.hil>", "what FKO's analysis reports to the search",
     true, true,
     [](const std::string&, const std::string& src, const Options& o) {
       return cmdAnalyze(src, o);
     }},
    {"compile", "<file.hil>", "one FKO compile with explicit parameters",
     true, true,
     [](const std::string&, const std::string& src, const Options& o) {
       return cmdCompile(src, o, /*alsoRun=*/false);
     }},
    {"run", "<file.hil>", "compile, check, and time on the simulated machine",
     true, true,
     [](const std::string&, const std::string& src, const Options& o) {
       return cmdCompile(src, o, /*alsoRun=*/true);
     }},
    {"tune", "<file.hil>",
     "the empirical search (--wisdom warm-starts and records it)", true, true,
     [](const std::string& arg, const std::string& src, const Options& o) {
       return cmdTune(arg, src, o);
     }},
    {"tune-all", "<dir>", "batch-tune every *.hil kernel in <dir>", true,
     false,
     [](const std::string& arg, const std::string&, const Options& o) {
       return cmdTuneAll(arg, o);
     }},
    {"explain", "<file.hil>", "attribute the winner's cycles cause by cause",
     true, true,
     [](const std::string& arg, const std::string& src, const Options& o) {
       return cmdExplain(arg, src, o);
     }},
    {"sim", "<file.ir>", "time a textual IR dump on the simulated machine",
     true, true,
     [](const std::string&, const std::string& src, const Options& o) {
       return cmdSim(src, o);
     }},
    {"serve", "",
     "tuning daemon over --socket/--port (docs/SERVING.md)", false, false,
     [](const std::string&, const std::string&, const Options& o) {
       return cmdServe(o);
     }},
    {"query", "[<kernel>]", "client for a running serve daemon", false, false,
     [](const std::string& arg, const std::string&, const Options& o) {
       return cmdQuery(arg, o);
     }},
    {"cache-merge", "<out>",
     "set-union eval-cache shards (--from=FILE_OR_DIR...)", true, false,
     [](const std::string& arg, const std::string&, const Options& o) {
       return cmdCacheMerge(arg, o);
     }},
    {"wisdom-merge", "<out>", "keep-best merge wisdom files (--from=FILE...)",
     true, false,
     [](const std::string& arg, const std::string&, const Options& o) {
       return cmdWisdomMerge(arg, o);
     }},
    {"federate", "<peer>",
     "two-way wisdom exchange between serve daemons", true, false,
     [](const std::string& arg, const std::string&, const Options& o) {
       return cmdFederate(arg, o);
     }},
};

int usage() {
  std::string verbs;
  for (const VerbSpec& v : kVerbs) {
    if (!verbs.empty()) verbs += "|";
    verbs += v.name;
  }
  std::fprintf(stderr, "usage: ifko <%s> [<arg>] [options]\n", verbs.c_str());
  for (const VerbSpec& v : kVerbs)
    std::fprintf(stderr, "  %-8s %-11s %s\n", v.name, v.argHelp, v.summary);
  std::fprintf(stderr,
               "see the header of src/driver/main.cpp, docs/TUNING.md, "
               "docs/SERVING.md\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const VerbSpec* verb = nullptr;
  for (const VerbSpec& v : kVerbs)
    if (std::strcmp(argv[1], v.name) == 0) verb = &v;
  if (verb == nullptr) return usage();

  const bool hasArg = argc > 2 && argv[2][0] != '-';
  if (verb->needsArg && !hasArg) return usage();
  Options o = parseOptions(argc, argv, hasArg ? 3 : 2);
  if (!o.ok) return 2;

  const std::string arg = hasArg ? argv[2] : "";
  std::string src;
  if (verb->readsFile) {
    auto contents = readFile(arg);
    if (!contents) {
      std::fprintf(stderr, "cannot read '%s'\n", arg.c_str());
      return 1;
    }
    src = std::move(*contents);
  }
  return verb->run(arg, src, o);
}
