// Recursive-descent parser for HIL.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "hil/ast.h"
#include "support/diagnostics.h"

namespace ifko::hil {

/// Parses one routine.  Returns nullptr (with diagnostics) on error.
[[nodiscard]] std::unique_ptr<Routine> parse(std::string_view source,
                                             DiagnosticEngine& diags);

}  // namespace ifko::hil
