// Semantic analysis for HIL routines.
//
// Validates names, type classes (integer vs floating point), label
// resolution, the single-tuned-loop rule, and the pointer-bump discipline
// the optimizer relies on: within the loop body, every reference to an
// array must lexically precede the first bump of that array's pointer, so
// references are always relative to the iteration-entry pointer value.
// Also reclassifies `X += k` on vector parameters from scalar assignment to
// PtrBump.
#pragma once

#include <string>
#include <unordered_map>

#include "hil/ast.h"
#include "support/diagnostics.h"

namespace ifko::hil {

enum class SymKind { VecParam, FpParam, IntParam, FpLocal, IntLocal, LoopVar };

struct Symbols {
  std::unordered_map<std::string, SymKind> table;
  /// Return class of the routine: 'f' fp, 'i' int, 0 none.
  char retClass = 0;

  [[nodiscard]] bool isInt(const std::string& n) const {
    auto it = table.find(n);
    if (it == table.end()) return false;
    return it->second == SymKind::IntParam || it->second == SymKind::IntLocal ||
           it->second == SymKind::LoopVar;
  }
  [[nodiscard]] bool isVec(const std::string& n) const {
    auto it = table.find(n);
    return it != table.end() && it->second == SymKind::VecParam;
  }
};

/// Runs all checks, mutating `r` (PtrBump reclassification).  Returns the
/// symbol table; callers must check diags.hasErrors().
Symbols analyze(Routine& r, DiagnosticEngine& diags);

}  // namespace ifko::hil
