// Tokens of the HIL kernel language (paper Section 2.2.1).
#pragma once

#include <cstdint>
#include <string>

#include "support/diagnostics.h"

namespace ifko::hil {

enum class Tok : uint8_t {
  // literals / identifiers
  Ident, Number,
  // keywords
  KwRoutine, KwParams, KwType, KwScalars, KwInts, KwLoop, KwLoopBody,
  KwLoopEnd, KwIf, KwGoto, KwReturn, KwEnd, KwAbs, KwVec, KwScalar, KwInt,
  KwFloat, KwDouble, KwIn, KwOut, KwInOut, KwNoPref,
  // punctuation / operators
  LParen, RParen, LBracket, RBracket, Comma, Semi, Colon, DoubleColon,
  Assign, PlusAssign, MinusAssign, StarAssign,
  Plus, Minus, Star, Slash,
  Lt, Gt, Le, Ge, EqEq, Ne,
  Eof,
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;   ///< identifier spelling / number spelling
  double number = 0;  ///< value when kind == Number
  bool isIntLiteral = false;
  SourceLoc loc;
};

[[nodiscard]] std::string_view tokName(Tok t);

}  // namespace ifko::hil
