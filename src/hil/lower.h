// Lowering from HIL AST to virtual-ISA IR.
//
// Produces the straightforward, unoptimized form of the kernel: one block
// per label region, a simple counted loop (init / pretest / body / latch
// with increment+compare+branch), scalar FP operations only.  All
// optimization — including the restructuring into the guarded main loop +
// remainder loop form — is done by FKO's transforms, exactly as the paper
// applies "no high level optimizations to the source".
#pragma once

#include <optional>

#include "hil/ast.h"
#include "hil/sema.h"
#include "ir/function.h"
#include "support/diagnostics.h"

namespace ifko::hil {

/// Lowers `r` (already sema-checked) to IR.  Returns nullopt and reports
/// diagnostics on failure.
[[nodiscard]] std::optional<ir::Function> lower(const Routine& r,
                                                const Symbols& syms,
                                                DiagnosticEngine& diags);

/// Convenience: parse + analyze + lower in one call.
[[nodiscard]] std::optional<ir::Function> compileHil(std::string_view source,
                                                     DiagnosticEngine& diags);

}  // namespace ifko::hil
