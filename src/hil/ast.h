// Abstract syntax of the HIL kernel language.
//
// The language is deliberately small (paper Section 2.2.1): it is close to
// ANSI C in form but with Fortran-77 usage rules (no aliasing of output
// arrays) and explicit mark-up: vector parameters carry in/out/inout intent
// and an optional `nopref` hint ("operands known to be already in cache"),
// and the loop to be empirically tuned is flagged by the LOOP construct.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace ifko::hil {

enum class FpType { F32, F64 };

enum class VecIntent { In, Out, InOut };

enum class ParamClass { Vec, FpScalar, Int };

struct ParamDecl {
  std::string name;
  ParamClass cls = ParamClass::Vec;
  VecIntent intent = VecIntent::In;  ///< only for Vec
  bool noPrefetch = false;           ///< `nopref` mark-up, only for Vec
  SourceLoc loc;
};

// --- expressions -----------------------------------------------------------

enum class BinOp { Add, Sub, Mul, Div };
enum class RelOp { Lt, Le, Gt, Ge, Eq, Ne };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { Number, NameRef, ArrayRef, Binary, Abs, Neg };
  Kind kind;
  SourceLoc loc;

  double number = 0;          ///< Number
  bool isIntLiteral = false;  ///< Number
  std::string name;           ///< NameRef / ArrayRef (array name)
  int64_t index = 0;          ///< ArrayRef: constant element offset
  BinOp bin = BinOp::Add;     ///< Binary
  ExprPtr lhs, rhs;           ///< Binary; Abs/Neg use lhs
};

// --- statements --------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class AssignOp { Set, Add, Sub, Mul };

struct Stmt {
  enum class Kind {
    AssignScalar,  ///< name op= expr
    AssignArray,   ///< name[index] = expr
    PtrBump,       ///< name += intliteral
    PtrReset,      ///< name -= intexpr (rewind a pointer after an inner loop)
    If,            ///< IF (lhs rel rhs) GOTO label
    Goto,          ///< GOTO label
    Label,         ///< label:
    Return,        ///< RETURN [expr]
    Loop,          ///< LOOP var = from, to [, -1] ... LOOP_END
  };
  Kind kind;
  SourceLoc loc;

  std::string name;   ///< target scalar/array/label/loop var
  AssignOp op = AssignOp::Set;
  int64_t index = 0;  ///< AssignArray element / PtrBump amount
  ExprPtr value;      ///< assigned value / returned value / If lhs
  ExprPtr rhs;        ///< If rhs
  RelOp rel = RelOp::Lt;
  std::string label;  ///< If/Goto target

  // Loop fields
  ExprPtr loopFrom, loopTo;
  bool loopDown = false;
  std::vector<StmtPtr> body;
};

struct Routine {
  std::string name;
  FpType type = FpType::F64;
  std::vector<ParamDecl> params;
  std::vector<std::string> fpScalars;
  std::vector<std::string> intScalars;
  std::vector<StmtPtr> stmts;
  SourceLoc loc;

  [[nodiscard]] const ParamDecl* findParam(std::string_view n) const {
    for (const auto& p : params)
      if (p.name == n) return &p;
    return nullptr;
  }
};

}  // namespace ifko::hil
