#include "hil/sema.h"

#include <functional>
#include <set>

namespace ifko::hil {

namespace {

class SemaPass {
 public:
  SemaPass(Routine& r, DiagnosticEngine& diags) : r_(r), diags_(diags) {}

  Symbols run() {
    buildSymbols();
    collectLabels(r_.stmts);
    size_t loops = 0;
    checkStmts(r_.stmts, /*depth=*/0, loops);
    if (loops == 0)
      diags_.warning(r_.loc, "routine has no LOOP; nothing to tune");
    return std::move(syms_);
  }

 private:
  void buildSymbols() {
    auto declare = [&](const std::string& n, SymKind k, SourceLoc loc) {
      if (!syms_.table.emplace(n, k).second)
        diags_.error(loc, "redeclaration of '" + n + "'");
    };
    for (const auto& p : r_.params) {
      SymKind k = p.cls == ParamClass::Vec        ? SymKind::VecParam
                  : p.cls == ParamClass::FpScalar ? SymKind::FpParam
                                                  : SymKind::IntParam;
      declare(p.name, k, p.loc);
    }
    for (const auto& n : r_.fpScalars) declare(n, SymKind::FpLocal, r_.loc);
    for (const auto& n : r_.intScalars) declare(n, SymKind::IntLocal, r_.loc);
  }

  void collectLabels(const std::vector<StmtPtr>& stmts) {
    for (const auto& s : stmts) {
      if (s->kind == Stmt::Kind::Label) {
        if (!labels_.insert(s->name).second)
          diags_.error(s->loc, "duplicate label '" + s->name + "'");
      }
      if (s->kind == Stmt::Kind::Loop) collectLabels(s->body);
    }
  }

  /// 'i' for integer-class, 'f' for floating-point-class, 0 on error.
  char exprClass(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Number:
        return e.isIntLiteral ? 'i' : 'f';
      case Expr::Kind::NameRef: {
        auto it = syms_.table.find(e.name);
        if (it == syms_.table.end()) {
          diags_.error(e.loc, "use of undeclared name '" + e.name + "'");
          return 0;
        }
        if (it->second == SymKind::VecParam) {
          diags_.error(e.loc, "vector '" + e.name + "' used as a scalar");
          return 0;
        }
        return syms_.isInt(e.name) ? 'i' : 'f';
      }
      case Expr::Kind::ArrayRef: {
        if (!syms_.isVec(e.name)) {
          diags_.error(e.loc, "'" + e.name + "' is not a vector parameter");
          return 0;
        }
        if (e.index < 0)
          diags_.error(e.loc, "negative array index");
        const ParamDecl* p = r_.findParam(e.name);
        if (p && p->intent == VecIntent::Out)
          diags_.warning(e.loc,
                         "reading vector '" + e.name + "' declared out-only");
        return 'f';
      }
      case Expr::Kind::Binary: {
        char a = exprClass(*e.lhs), b = exprClass(*e.rhs);
        if (a == 0 || b == 0) return 0;
        if (e.bin == BinOp::Div && a == 'i' && b == 'i') {
          diags_.error(e.loc, "integer division is not supported");
          return 0;
        }
        return (a == 'i' && b == 'i') ? 'i' : 'f';
      }
      case Expr::Kind::Abs:
      case Expr::Kind::Neg: {
        char a = exprClass(*e.lhs);
        if (e.kind == Expr::Kind::Abs && a == 'i') {
          diags_.error(e.loc, "ABS of an integer expression is not supported");
          return 0;
        }
        return a;
      }
    }
    return 0;
  }

  static bool containsLoop(const std::vector<StmtPtr>& stmts) {
    for (const auto& s : stmts)
      if (s->kind == Stmt::Kind::Loop) return true;
    return false;
  }

  void checkStmts(std::vector<StmtPtr>& stmts, int depth, size_t& loops) {
    const bool inLoop = depth > 0;
    const bool hasNestedLoop = containsLoop(stmts);
    // Arrays whose pointer was already bumped in this lexical region.
    std::set<std::string> bumped;

    std::function<void(Expr&)> checkRefsAfterBump = [&](Expr& e) {
      if (e.kind == Expr::Kind::ArrayRef && bumped.count(e.name))
        diags_.error(e.loc, "reference to '" + e.name +
                                "' after its pointer bump; move all "
                                "references before the bumps");
      if (e.lhs) checkRefsAfterBump(*e.lhs);
      if (e.rhs) checkRefsAfterBump(*e.rhs);
    };

    for (auto& sp : stmts) {
      Stmt& s = *sp;
      switch (s.kind) {
        case Stmt::Kind::AssignScalar: {
          // Reclassify vector-pointer updates: `X += <intlit>` is a bump,
          // `X -= <int expr>` rewinds the pointer after an inner loop.
          if (syms_.isVec(s.name)) {
            if (s.op == AssignOp::Add && s.value->kind == Expr::Kind::Number &&
                s.value->isIntLiteral && s.value->number >= 1) {
              s.kind = Stmt::Kind::PtrBump;
              s.index = static_cast<int64_t>(s.value->number);
              if (!inLoop)
                diags_.error(s.loc, "pointer bump outside the loop body");
              bumped.insert(s.name);
              break;
            }
            if (s.op == AssignOp::Sub) {
              if (!hasNestedLoop)
                diags_.error(s.loc,
                             "'X -= expr' (pointer rewind) is only allowed in "
                             "a loop body that contains a nested loop");
              if (exprClass(*s.value) != 'i')
                diags_.error(s.loc, "pointer rewind amount must be an integer");
              s.kind = Stmt::Kind::PtrReset;
              break;
            }
            diags_.error(s.loc,
                         "vectors only support 'X += <positive int literal>' "
                         "and 'X -= <int expr>'");
            break;
          }
          auto it = syms_.table.find(s.name);
          if (it == syms_.table.end()) {
            diags_.error(s.loc, "assignment to undeclared name '" + s.name + "'");
            break;
          }
          if (it->second == SymKind::LoopVar) {
            diags_.error(s.loc, "the loop variable may not be assigned");
            break;
          }
          if (it->second == SymKind::FpParam || it->second == SymKind::IntParam)
            diags_.error(s.loc, "parameters are read-only; use a local");
          checkRefsAfterBump(*s.value);
          char vc = exprClass(*s.value);
          if (vc == 'f' && syms_.isInt(s.name))
            diags_.error(s.loc, "cannot assign floating-point value to integer '" +
                                    s.name + "'");
          if (s.op == AssignOp::Mul && syms_.isInt(s.name))
            diags_.error(s.loc, "'*=' is not supported on integers");
          break;
        }
        case Stmt::Kind::AssignArray: {
          if (!syms_.isVec(s.name)) {
            diags_.error(s.loc, "'" + s.name + "' is not a vector parameter");
            break;
          }
          const ParamDecl* p = r_.findParam(s.name);
          if (p && p->intent == VecIntent::In)
            diags_.error(s.loc, "store to vector '" + s.name +
                                    "' declared in-only");
          if (bumped.count(s.name))
            diags_.error(s.loc, "store to '" + s.name + "' after its bump");
          if (!inLoop)
            diags_.error(s.loc, "array stores are only supported inside the loop");
          checkRefsAfterBump(*s.value);
          if (exprClass(*s.value) == 0) break;
          break;
        }
        case Stmt::Kind::PtrBump:
        case Stmt::Kind::PtrReset:
          break;  // produced above
        case Stmt::Kind::If: {
          checkRefsAfterBump(*s.value);
          checkRefsAfterBump(*s.rhs);
          exprClass(*s.value);
          exprClass(*s.rhs);
          if (!labels_.count(s.label))
            diags_.error(s.loc, "GOTO to undefined label '" + s.label + "'");
          break;
        }
        case Stmt::Kind::Goto:
          if (!labels_.count(s.label))
            diags_.error(s.loc, "GOTO to undefined label '" + s.label + "'");
          break;
        case Stmt::Kind::Label:
          break;
        case Stmt::Kind::Return: {
          char c = 0;
          if (s.value) {
            checkRefsAfterBump(*s.value);
            c = exprClass(*s.value);
          }
          if (syms_.retClass != 0 && c != syms_.retClass)
            diags_.error(s.loc, "inconsistent return types");
          syms_.retClass = c;
          break;
        }
        case Stmt::Kind::Loop: {
          // At most one loop per nesting level, nesting depth at most 2;
          // the innermost loop is the one the search tunes.
          if (loops > 0) {
            diags_.error(s.loc, "only a single LOOP per nesting level is supported");
            break;
          }
          if (depth >= 2) {
            diags_.error(s.loc, "LOOP nesting deeper than 2 is not supported");
            break;
          }
          ++loops;
          if (syms_.table.count(s.name))
            diags_.error(s.loc, "loop variable '" + s.name + "' shadows a declaration");
          else
            syms_.table.emplace(s.name, SymKind::LoopVar);
          if (exprClass(*s.loopFrom) == 'f' || exprClass(*s.loopTo) == 'f')
            diags_.error(s.loc, "loop bounds must be integer expressions");
          size_t innerLoops = 0;
          checkStmts(s.body, depth + 1, innerLoops);
          break;
        }
      }
    }
  }

  Routine& r_;
  DiagnosticEngine& diags_;
  Symbols syms_;
  std::set<std::string> labels_;
};

}  // namespace

Symbols analyze(Routine& r, DiagnosticEngine& diags) {
  return SemaPass(r, diags).run();
}

}  // namespace ifko::hil
