#include "hil/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace ifko::hil {

std::string_view tokName(Tok t) {
  switch (t) {
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::KwRoutine: return "ROUTINE";
    case Tok::KwParams: return "PARAMS";
    case Tok::KwType: return "TYPE";
    case Tok::KwScalars: return "SCALARS";
    case Tok::KwInts: return "INTS";
    case Tok::KwLoop: return "LOOP";
    case Tok::KwLoopBody: return "LOOP_BODY";
    case Tok::KwLoopEnd: return "LOOP_END";
    case Tok::KwIf: return "IF";
    case Tok::KwGoto: return "GOTO";
    case Tok::KwReturn: return "RETURN";
    case Tok::KwEnd: return "END";
    case Tok::KwAbs: return "ABS";
    case Tok::KwVec: return "VEC";
    case Tok::KwScalar: return "SCALAR";
    case Tok::KwInt: return "INT";
    case Tok::KwFloat: return "float";
    case Tok::KwDouble: return "double";
    case Tok::KwIn: return "in";
    case Tok::KwOut: return "out";
    case Tok::KwInOut: return "inout";
    case Tok::KwNoPref: return "nopref";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Comma: return ",";
    case Tok::Semi: return ";";
    case Tok::Colon: return ":";
    case Tok::DoubleColon: return "::";
    case Tok::Assign: return "=";
    case Tok::PlusAssign: return "+=";
    case Tok::MinusAssign: return "-=";
    case Tok::StarAssign: return "*=";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
    case Tok::Lt: return "<";
    case Tok::Gt: return ">";
    case Tok::Le: return "<=";
    case Tok::Ge: return ">=";
    case Tok::EqEq: return "==";
    case Tok::Ne: return "!=";
    case Tok::Eof: return "<eof>";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok> kKeywords = {
    {"ROUTINE", Tok::KwRoutine}, {"PARAMS", Tok::KwParams},
    {"TYPE", Tok::KwType},       {"SCALARS", Tok::KwScalars},
    {"INTS", Tok::KwInts},       {"LOOP", Tok::KwLoop},
    {"LOOP_BODY", Tok::KwLoopBody}, {"LOOP_END", Tok::KwLoopEnd},
    {"IF", Tok::KwIf},           {"GOTO", Tok::KwGoto},
    {"RETURN", Tok::KwReturn},   {"END", Tok::KwEnd},
    {"ABS", Tok::KwAbs},         {"VEC", Tok::KwVec},
    {"SCALAR", Tok::KwScalar},   {"INT", Tok::KwInt},
    {"float", Tok::KwFloat},     {"double", Tok::KwDouble},
    {"in", Tok::KwIn},           {"out", Tok::KwOut},
    {"inout", Tok::KwInOut},     {"nopref", Tok::KwNoPref},
};

}  // namespace

std::vector<Token> lex(std::string_view src, DiagnosticEngine& diags) {
  std::vector<Token> out;
  uint32_t line = 1, col = 1;
  size_t i = 0;

  auto loc = [&] { return SourceLoc{line, col}; };
  auto advance = [&](size_t n = 1) {
    for (size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto push = [&](Tok kind, SourceLoc at, std::string text = {}) {
    out.push_back({kind, std::move(text), 0, false, at});
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') advance();
      continue;
    }
    SourceLoc at = loc();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_'))
        advance();
      std::string_view word = src.substr(start, i - start);
      auto it = kKeywords.find(word);
      if (it != kKeywords.end())
        push(it->second, at, std::string(word));
      else
        push(Tok::Ident, at, std::string(word));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t start = i;
      bool isInt = true;
      while (i < src.size() && (std::isdigit(static_cast<unsigned char>(src[i])) ||
                                src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
                                ((src[i] == '+' || src[i] == '-') && i > start &&
                                 (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
        if (src[i] == '.' || src[i] == 'e' || src[i] == 'E') isInt = false;
        advance();
      }
      std::string text(src.substr(start, i - start));
      Token tok{Tok::Number, text, std::strtod(text.c_str(), nullptr), isInt, at};
      out.push_back(std::move(tok));
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    if (two(':', ':')) { push(Tok::DoubleColon, at); advance(2); continue; }
    if (two('+', '=')) { push(Tok::PlusAssign, at); advance(2); continue; }
    if (two('-', '=')) { push(Tok::MinusAssign, at); advance(2); continue; }
    if (two('*', '=')) { push(Tok::StarAssign, at); advance(2); continue; }
    if (two('<', '=')) { push(Tok::Le, at); advance(2); continue; }
    if (two('>', '=')) { push(Tok::Ge, at); advance(2); continue; }
    if (two('=', '=')) { push(Tok::EqEq, at); advance(2); continue; }
    if (two('!', '=')) { push(Tok::Ne, at); advance(2); continue; }
    switch (c) {
      case '(': push(Tok::LParen, at); break;
      case ')': push(Tok::RParen, at); break;
      case '[': push(Tok::LBracket, at); break;
      case ']': push(Tok::RBracket, at); break;
      case ',': push(Tok::Comma, at); break;
      case ';': push(Tok::Semi, at); break;
      case ':': push(Tok::Colon, at); break;
      case '=': push(Tok::Assign, at); break;
      case '+': push(Tok::Plus, at); break;
      case '-': push(Tok::Minus, at); break;
      case '*': push(Tok::Star, at); break;
      case '/': push(Tok::Slash, at); break;
      case '<': push(Tok::Lt, at); break;
      case '>': push(Tok::Gt, at); break;
      default:
        diags.error(at, std::string("unexpected character '") + c + "'");
        break;
    }
    advance();
  }
  out.push_back({Tok::Eof, "", 0, false, loc()});
  return out;
}

}  // namespace ifko::hil
