#include "hil/lower.h"

#include <unordered_map>

#include "hil/parser.h"
#include "ir/builder.h"

namespace ifko::hil {

namespace {

using ir::Builder;
using ir::Cond;
using ir::Op;
using ir::Reg;
using ir::Scal;

Cond relToCond(RelOp r) {
  switch (r) {
    case RelOp::Lt: return Cond::LT;
    case RelOp::Le: return Cond::LE;
    case RelOp::Gt: return Cond::GT;
    case RelOp::Ge: return Cond::GE;
    case RelOp::Eq: return Cond::EQ;
    case RelOp::Ne: return Cond::NE;
  }
  return Cond::EQ;
}

class Lowerer {
 public:
  Lowerer(const Routine& r, const Symbols& syms, DiagnosticEngine& diags)
      : r_(r), syms_(syms), diags_(diags),
        type_(r.type == FpType::F32 ? Scal::F32 : Scal::F64),
        esize_(scalBytes(type_)) {}

  std::optional<ir::Function> run() {
    fn_.name = r_.name;
    fn_.retType = syms_.retClass == 'f'
                      ? (type_ == Scal::F32 ? ir::RetType::F32 : ir::RetType::F64)
                  : syms_.retClass == 'i' ? ir::RetType::Int
                                          : ir::RetType::None;

    for (const auto& p : r_.params) {
      ir::Param ip;
      ip.name = p.name;
      if (p.cls == ParamClass::Vec) {
        ip.kind = type_ == Scal::F32 ? ir::ParamKind::PtrF32 : ir::ParamKind::PtrF64;
        ip.reg = fn_.newIntReg();
        ip.vecRead = p.intent != VecIntent::Out;
        ip.vecWritten = p.intent != VecIntent::In;
        ip.noPrefetch = p.noPrefetch;
      } else if (p.cls == ParamClass::FpScalar) {
        ip.kind = type_ == Scal::F32 ? ir::ParamKind::ScalF32 : ir::ParamKind::ScalF64;
        ip.reg = fn_.newFpReg();
      } else {
        ip.kind = ir::ParamKind::Int;
        ip.reg = fn_.newIntReg();
      }
      regs_[p.name] = ip.reg;
      fn_.params.push_back(std::move(ip));
    }
    for (const auto& n : r_.fpScalars) regs_[n] = fn_.newFpReg();
    for (const auto& n : r_.intScalars) regs_[n] = fn_.newIntReg();

    cur_ = fn_.addBlock();
    lowerStmts(r_.stmts);

    // Drop trailing empty blocks left behind by a GOTO/RETURN that closed
    // the routine (nothing can fall into them).
    while (fn_.blocks.size() > 1 && fn_.blocks.back().insts.empty() &&
           !fn_.blocks[fn_.blocks.size() - 2].fallsThrough()) {
      int32_t deadId = fn_.blocks.back().id;
      bool referenced = false;
      for (const auto& bb : fn_.blocks)
        for (const auto& in : bb.insts)
          if (ir::opInfo(in.op).isBranch && in.label == deadId) referenced = true;
      if (referenced) break;
      fn_.removeBlock(deadId);
    }
    // Functions with no return value need an explicit terminator.
    if (fn_.blocks.back().fallsThrough()) {
      if (fn_.retType != ir::RetType::None) {
        diags_.error({}, "control reaches end of routine without RETURN");
        return std::nullopt;
      }
      Builder b(fn_, fn_.blocks.back().id);
      b.ret();
    }

    // Patch forward branches.
    for (const auto& fx : fixups_) {
      auto it = labelBlocks_.find(fx.label);
      if (it == labelBlocks_.end()) {
        diags_.error({}, "internal: unresolved label '" + fx.label + "'");
        return std::nullopt;
      }
      fn_.block(fx.blockId).insts[fx.instIdx].label = it->second;
    }
    if (diags_.hasErrors()) return std::nullopt;
    return std::move(fn_);
  }

 private:
  struct Fixup {
    int32_t blockId;
    size_t instIdx;
    std::string label;
  };

  Reg reg(const std::string& n) const { return regs_.at(n); }

  /// Emits a branch whose target label may not be lowered yet.
  void emitBranchTo(Builder& b, std::optional<Cond> cc, const std::string& label) {
    auto it = labelBlocks_.find(label);
    int32_t target = it != labelBlocks_.end() ? it->second : 0;
    if (cc)
      b.jcc(*cc, target);
    else
      b.jmp(target);
    if (it == labelBlocks_.end())
      fixups_.push_back({b.blockId(), fn_.block(b.blockId()).insts.size() - 1, label});
  }

  char classOf(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::Number: return e.isIntLiteral ? 'i' : 'f';
      case Expr::Kind::NameRef: return syms_.isInt(e.name) ? 'i' : 'f';
      case Expr::Kind::ArrayRef: return 'f';
      case Expr::Kind::Binary: {
        char a = classOf(*e.lhs), b = classOf(*e.rhs);
        return (a == 'i' && b == 'i') ? 'i' : 'f';
      }
      case Expr::Kind::Abs:
      case Expr::Kind::Neg: return classOf(*e.lhs);
    }
    return 'f';
  }

  Reg lowerInt(Builder& b, const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Number:
        return b.imovi(static_cast<int64_t>(e.number));
      case Expr::Kind::NameRef:
        return reg(e.name);
      case Expr::Kind::Binary: {
        Reg x = lowerInt(b, *e.lhs);
        Reg y = lowerInt(b, *e.rhs);
        switch (e.bin) {
          case BinOp::Add: return b.iadd(x, y);
          case BinOp::Sub: return b.isub(x, y);
          case BinOp::Mul: return b.imul(x, y);
          case BinOp::Div: break;
        }
        break;
      }
      case Expr::Kind::Neg: {
        Reg x = lowerInt(b, *e.lhs);
        Reg zero = b.imovi(0);
        return b.isub(zero, x);
      }
      default: break;
    }
    diags_.error(e.loc, "unsupported integer expression");
    return b.imovi(0);
  }

  void lowerIntInto(Builder& b, const Expr& e, Reg dst) {
    if (e.kind == Expr::Kind::Number) {
      b.emit({.op = Op::IMovI, .dst = dst, .imm = static_cast<int64_t>(e.number)});
      return;
    }
    if (e.kind == Expr::Kind::NameRef) {
      b.emit({.op = Op::IMov, .dst = dst, .src1 = reg(e.name)});
      return;
    }
    if (e.kind == Expr::Kind::Binary) {
      Reg x = lowerInt(b, *e.lhs);
      Reg y = lowerInt(b, *e.rhs);
      Op op = e.bin == BinOp::Add   ? Op::IAdd
              : e.bin == BinOp::Sub ? Op::ISub
                                    : Op::IMul;
      b.emit({.op = op, .dst = dst, .src1 = x, .src2 = y});
      return;
    }
    Reg v = lowerInt(b, e);
    b.emit({.op = Op::IMov, .dst = dst, .src1 = v});
  }

  Reg lowerFp(Builder& b, const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Number:
        return b.fldi(type_, e.number);
      case Expr::Kind::NameRef:
        if (syms_.isInt(e.name)) {
          diags_.error(e.loc, "integer value used in floating-point context");
          return b.fldi(type_, 0);
        }
        return reg(e.name);
      case Expr::Kind::ArrayRef:
        return b.fld(type_, ir::mem(reg(e.name), e.index * esize_));
      case Expr::Kind::Binary: {
        Reg x = lowerFp(b, *e.lhs);
        Reg y = lowerFp(b, *e.rhs);
        switch (e.bin) {
          case BinOp::Add: return b.fadd(type_, x, y);
          case BinOp::Sub: return b.fsub(type_, x, y);
          case BinOp::Mul: return b.fmul(type_, x, y);
          case BinOp::Div: return b.fdiv(type_, x, y);
        }
        break;
      }
      case Expr::Kind::Abs:
        return b.fabs_(type_, lowerFp(b, *e.lhs));
      case Expr::Kind::Neg: {
        Reg x = lowerFp(b, *e.lhs);
        Reg d = fn_.newFpReg();
        b.emit({.op = Op::FNeg, .type = type_, .dst = d, .src1 = x});
        return d;
      }
    }
    diags_.error(e.loc, "unsupported floating-point expression");
    return b.fldi(type_, 0);
  }

  void lowerFpInto(Builder& b, const Expr& e, Reg dst) {
    switch (e.kind) {
      case Expr::Kind::Number:
        b.emit({.op = Op::FLdI, .type = type_, .dst = dst, .fimm = e.number});
        return;
      case Expr::Kind::NameRef:
        if (!syms_.isInt(e.name)) {
          b.emit({.op = Op::FMov, .type = type_, .dst = dst, .src1 = reg(e.name)});
          return;
        }
        break;
      case Expr::Kind::ArrayRef:
        b.emit({.op = Op::FLd, .type = type_, .dst = dst,
                .mem = ir::mem(reg(e.name), e.index * esize_)});
        return;
      case Expr::Kind::Binary: {
        Reg x = lowerFp(b, *e.lhs);
        Reg y = lowerFp(b, *e.rhs);
        Op op = e.bin == BinOp::Add   ? Op::FAdd
                : e.bin == BinOp::Sub ? Op::FSub
                : e.bin == BinOp::Mul ? Op::FMul
                                      : Op::FDiv;
        b.emit({.op = op, .type = type_, .dst = dst, .src1 = x, .src2 = y});
        return;
      }
      case Expr::Kind::Abs: {
        Reg x = lowerFp(b, *e.lhs);
        b.emit({.op = Op::FAbs, .type = type_, .dst = dst, .src1 = x});
        return;
      }
      case Expr::Kind::Neg: {
        Reg x = lowerFp(b, *e.lhs);
        b.emit({.op = Op::FNeg, .type = type_, .dst = dst, .src1 = x});
        return;
      }
    }
    Reg v = lowerFp(b, e);
    b.emit({.op = Op::FMov, .type = type_, .dst = dst, .src1 = v});
  }

  /// Starts a new block that is a fall-through successor of the current one.
  int32_t startBlock() {
    cur_ = fn_.addBlock();
    return cur_;
  }

  void lowerStmts(const std::vector<StmtPtr>& stmts) {
    for (const auto& sp : stmts) lowerStmt(*sp);
  }

  void lowerStmt(const Stmt& s) {
    Builder b(fn_, cur_);
    switch (s.kind) {
      case Stmt::Kind::Label: {
        int32_t blockId = startBlock();
        labelBlocks_[s.name] = blockId;
        break;
      }
      case Stmt::Kind::AssignScalar: {
        Reg dst = reg(s.name);
        bool isInt = syms_.isInt(s.name);
        if (s.op == AssignOp::Set) {
          if (isInt)
            lowerIntInto(b, *s.value, dst);
          else
            lowerFpInto(b, *s.value, dst);
          break;
        }
        if (isInt) {
          Reg v = lowerInt(b, *s.value);
          Op op = s.op == AssignOp::Add ? Op::IAdd : Op::ISub;
          b.emit({.op = op, .dst = dst, .src1 = dst, .src2 = v});
        } else {
          Reg v = lowerFp(b, *s.value);
          Op op = s.op == AssignOp::Add   ? Op::FAdd
                  : s.op == AssignOp::Sub ? Op::FSub
                                          : Op::FMul;
          b.emit({.op = op, .type = type_, .dst = dst, .src1 = dst, .src2 = v});
        }
        break;
      }
      case Stmt::Kind::AssignArray: {
        Reg v = lowerFp(b, *s.value);
        b.fst(type_, ir::mem(reg(s.name), s.index * esize_), v);
        break;
      }
      case Stmt::Kind::PtrBump: {
        Reg p = reg(s.name);
        b.emit({.op = Op::IAddI, .dst = p, .src1 = p, .imm = s.index * esize_});
        break;
      }
      case Stmt::Kind::PtrReset: {
        // X -= expr: rewind the pointer by expr elements.
        Reg p = reg(s.name);
        Reg elems = lowerInt(b, *s.value);
        Reg es = b.imovi(esize_);
        Reg bytes = b.imul(elems, es);
        b.emit({.op = Op::ISub, .dst = p, .src1 = p, .src2 = bytes});
        break;
      }
      case Stmt::Kind::If: {
        char ca = classOf(*s.value), cb = classOf(*s.rhs);
        if (ca == 'f' || cb == 'f') {
          Reg x = lowerFp(b, *s.value);
          Reg y = lowerFp(b, *s.rhs);
          b.fcmp(type_, x, y);
        } else {
          Reg x = lowerInt(b, *s.value);
          Reg y = lowerInt(b, *s.rhs);
          b.icmp(x, y);
        }
        emitBranchTo(b, relToCond(s.rel), s.label);
        startBlock();  // fall-through path continues in a fresh block
        break;
      }
      case Stmt::Kind::Goto:
        emitBranchTo(b, std::nullopt, s.label);
        startBlock();  // anything after an unconditional jump begins anew
        break;
      case Stmt::Kind::Return: {
        if (s.value) {
          Reg v = syms_.retClass == 'i' ? lowerInt(b, *s.value)
                                        : lowerFp(b, *s.value);
          b.retVal(v);
        } else {
          b.ret();
        }
        startBlock();
        break;
      }
      case Stmt::Kind::Loop:
        lowerLoop(s);
        break;
    }
  }

  void lowerLoop(const Stmt& s) {
    // Only the innermost loop is flagged for tuning.
    bool innermost = true;
    for (const auto& inner : s.body)
      if (inner->kind == Stmt::Kind::Loop) innermost = false;

    Builder b(fn_, cur_);
    int32_t preheader = cur_;

    Reg from = lowerInt(b, *s.loopFrom);
    Reg to = lowerInt(b, *s.loopTo);
    Reg ivar = fn_.newIntReg();
    regs_[s.name] = ivar;
    b.emit({.op = Op::IMov, .dst = ivar, .src1 = from});
    // Trip count: the loop runs |to - from| iterations.
    Reg trip = s.loopDown ? b.isub(from, to) : b.isub(to, from);
    b.icmpi(trip, 0);
    // Pretest: skip the loop entirely when the trip count is <= 0.  The
    // target is the exit block, created below; patch afterwards.
    b.jcc(Cond::LE, 0);
    size_t pretestIdx = fn_.block(preheader).insts.size() - 1;

    int32_t header = startBlock();
    lowerStmts(s.body);

    // Latch: induction update + test + backedge.
    int32_t latch = cur_;
    Builder lb(fn_, latch);
    lb.emit({.op = Op::IAddI, .dst = ivar, .src1 = ivar,
             .imm = s.loopDown ? -1 : 1});
    lb.icmp(ivar, to);
    lb.jcc(s.loopDown ? Cond::GT : Cond::LT, header);

    int32_t exit = startBlock();
    fn_.block(preheader).insts[pretestIdx].label = exit;

    if (!innermost) return;
    fn_.loop.valid = true;
    fn_.loop.preheader = preheader;
    fn_.loop.header = header;
    fn_.loop.latch = latch;
    fn_.loop.exit = exit;
    fn_.loop.ivar = ivar;
    fn_.loop.dir = s.loopDown ? ir::LoopDir::Down : ir::LoopDir::Up;
    fn_.loop.bound = trip;
    // bodyBlocks (including out-of-line side blocks such as iamax's NEWMAX)
    // are discovered by the natural-loop analysis, not here.
  }

  const Routine& r_;
  const Symbols& syms_;
  DiagnosticEngine& diags_;
  Scal type_;
  int64_t esize_;
  ir::Function fn_;
  std::unordered_map<std::string, Reg> regs_;
  std::unordered_map<std::string, int32_t> labelBlocks_;
  std::vector<Fixup> fixups_;
  int32_t cur_ = -1;
};

}  // namespace

std::optional<ir::Function> lower(const Routine& r, const Symbols& syms,
                                  DiagnosticEngine& diags) {
  return Lowerer(r, syms, diags).run();
}

std::optional<ir::Function> compileHil(std::string_view source,
                                       DiagnosticEngine& diags) {
  auto routine = parse(source, diags);
  if (!routine) return std::nullopt;
  Symbols syms = analyze(*routine, diags);
  if (diags.hasErrors()) return std::nullopt;
  return lower(*routine, syms, diags);
}

}  // namespace ifko::hil
