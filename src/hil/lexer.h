// HIL lexer.  `#` starts a comment running to end of line.
#pragma once

#include <string_view>
#include <vector>

#include "hil/token.h"
#include "support/diagnostics.h"

namespace ifko::hil {

/// Tokenizes `source`.  Lexical errors are reported to `diags`; the returned
/// stream always ends with an Eof token.
[[nodiscard]] std::vector<Token> lex(std::string_view source,
                                     DiagnosticEngine& diags);

}  // namespace ifko::hil
