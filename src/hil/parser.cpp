#include "hil/parser.h"

#include "hil/lexer.h"

namespace ifko::hil {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> toks, DiagnosticEngine& diags)
      : toks_(std::move(toks)), diags_(diags) {}

  std::unique_ptr<Routine> parseRoutine() {
    auto r = std::make_unique<Routine>();
    r->loc = cur().loc;
    if (!expect(Tok::KwRoutine)) return nullptr;
    if (!expectIdent(r->name)) return nullptr;
    if (!expect(Tok::Semi)) return nullptr;

    if (!parseParams(*r)) return nullptr;
    if (!parseType(*r)) return nullptr;
    while (at(Tok::KwScalars) || at(Tok::KwInts)) {
      bool fp = at(Tok::KwScalars);
      next();
      if (!expect(Tok::DoubleColon)) return nullptr;
      do {
        std::string n;
        if (!expectIdent(n)) return nullptr;
        (fp ? r->fpScalars : r->intScalars).push_back(std::move(n));
      } while (accept(Tok::Comma));
      if (!expect(Tok::Semi)) return nullptr;
    }

    while (!at(Tok::KwEnd) && !at(Tok::Eof)) {
      StmtPtr s = parseStmt();
      if (!s) return nullptr;
      r->stmts.push_back(std::move(s));
    }
    if (!expect(Tok::KwEnd)) return nullptr;
    return r;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(size_t n = 1) const {
    size_t i = pos_ + n;
    return toks_[i < toks_.size() ? i : toks_.size() - 1];
  }
  void next() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  bool at(Tok k) const { return cur().kind == k; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    next();
    return true;
  }
  bool expect(Tok k) {
    if (accept(k)) return true;
    diags_.error(cur().loc, std::string("expected '") + std::string(tokName(k)) +
                                "', found '" + std::string(tokName(cur().kind)) +
                                "'");
    return false;
  }
  bool expectIdent(std::string& out) {
    if (!at(Tok::Ident)) {
      diags_.error(cur().loc, "expected identifier, found '" +
                                  std::string(tokName(cur().kind)) + "'");
      return false;
    }
    out = cur().text;
    next();
    return true;
  }

  bool parseParams(Routine& r) {
    if (!expect(Tok::KwParams) || !expect(Tok::DoubleColon)) return false;
    do {
      ParamDecl p;
      p.loc = cur().loc;
      if (!expectIdent(p.name)) return false;
      if (!expect(Tok::Assign)) return false;
      if (accept(Tok::KwVec)) {
        p.cls = ParamClass::Vec;
        if (!expect(Tok::LParen)) return false;
        if (accept(Tok::KwIn))
          p.intent = VecIntent::In;
        else if (accept(Tok::KwOut))
          p.intent = VecIntent::Out;
        else if (accept(Tok::KwInOut))
          p.intent = VecIntent::InOut;
        else {
          diags_.error(cur().loc, "expected in/out/inout intent");
          return false;
        }
        if (accept(Tok::Comma)) {
          if (!expect(Tok::KwNoPref)) return false;
          p.noPrefetch = true;
        }
        if (!expect(Tok::RParen)) return false;
      } else if (accept(Tok::KwScalar)) {
        p.cls = ParamClass::FpScalar;
      } else if (accept(Tok::KwInt)) {
        p.cls = ParamClass::Int;
      } else {
        diags_.error(cur().loc, "expected VEC/SCALAR/INT parameter class");
        return false;
      }
      r.params.push_back(std::move(p));
    } while (accept(Tok::Comma));
    return expect(Tok::Semi);
  }

  bool parseType(Routine& r) {
    if (!expect(Tok::KwType)) return false;
    if (accept(Tok::KwFloat))
      r.type = FpType::F32;
    else if (accept(Tok::KwDouble))
      r.type = FpType::F64;
    else {
      diags_.error(cur().loc, "expected 'float' or 'double'");
      return false;
    }
    return expect(Tok::Semi);
  }

  ExprPtr parsePrimary() {
    SourceLoc loc = cur().loc;
    if (cur().kind == Tok::Number) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Number;
      e->loc = loc;
      e->number = cur().number;
      e->isIntLiteral = cur().isIntLiteral;
      next();
      return e;
    }
    if (accept(Tok::LParen)) {
      ExprPtr e = parseExpr();
      if (!e || !expect(Tok::RParen)) return nullptr;
      return e;
    }
    if (accept(Tok::KwAbs)) {
      ExprPtr inner = parsePrimary();
      if (!inner) return nullptr;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Abs;
      e->loc = loc;
      e->lhs = std::move(inner);
      return e;
    }
    if (accept(Tok::Minus)) {
      ExprPtr inner = parsePrimary();
      if (!inner) return nullptr;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Neg;
      e->loc = loc;
      e->lhs = std::move(inner);
      return e;
    }
    if (at(Tok::Ident)) {
      std::string name = cur().text;
      next();
      if (accept(Tok::LBracket)) {
        if (!at(Tok::Number) || !cur().isIntLiteral) {
          diags_.error(cur().loc, "array index must be an integer literal");
          return nullptr;
        }
        int64_t idx = static_cast<int64_t>(cur().number);
        next();
        if (!expect(Tok::RBracket)) return nullptr;
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::ArrayRef;
        e->loc = loc;
        e->name = std::move(name);
        e->index = idx;
        return e;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::NameRef;
      e->loc = loc;
      e->name = std::move(name);
      return e;
    }
    diags_.error(loc, "expected expression");
    return nullptr;
  }

  ExprPtr parseTerm() {
    ExprPtr lhs = parsePrimary();
    if (!lhs) return nullptr;
    while (at(Tok::Star) || at(Tok::Slash)) {
      BinOp op = at(Tok::Star) ? BinOp::Mul : BinOp::Div;
      SourceLoc opLoc = cur().loc;
      next();
      ExprPtr rhs = parsePrimary();
      if (!rhs) return nullptr;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Binary;
      e->loc = opLoc;
      e->bin = op;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parseExpr() {
    ExprPtr lhs = parseTerm();
    if (!lhs) return nullptr;
    while (at(Tok::Plus) || at(Tok::Minus)) {
      BinOp op = at(Tok::Plus) ? BinOp::Add : BinOp::Sub;
      SourceLoc opLoc = cur().loc;
      next();
      ExprPtr rhs = parseTerm();
      if (!rhs) return nullptr;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Binary;
      e->loc = opLoc;
      e->bin = op;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  std::optional<RelOp> parseRelOp() {
    switch (cur().kind) {
      case Tok::Lt: next(); return RelOp::Lt;
      case Tok::Le: next(); return RelOp::Le;
      case Tok::Gt: next(); return RelOp::Gt;
      case Tok::Ge: next(); return RelOp::Ge;
      case Tok::EqEq: next(); return RelOp::Eq;
      case Tok::Ne: next(); return RelOp::Ne;
      default:
        diags_.error(cur().loc, "expected relational operator");
        return std::nullopt;
    }
  }

  StmtPtr parseStmt() {
    SourceLoc loc = cur().loc;

    if (accept(Tok::KwLoop)) return parseLoop(loc);

    if (accept(Tok::KwIf)) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::If;
      s->loc = loc;
      if (!expect(Tok::LParen)) return nullptr;
      s->value = parseExpr();
      if (!s->value) return nullptr;
      auto rel = parseRelOp();
      if (!rel) return nullptr;
      s->rel = *rel;
      s->rhs = parseExpr();
      if (!s->rhs) return nullptr;
      if (!expect(Tok::RParen) || !expect(Tok::KwGoto)) return nullptr;
      if (!expectIdent(s->label)) return nullptr;
      if (!expect(Tok::Semi)) return nullptr;
      return s;
    }

    if (accept(Tok::KwGoto)) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::Goto;
      s->loc = loc;
      if (!expectIdent(s->label)) return nullptr;
      if (!expect(Tok::Semi)) return nullptr;
      return s;
    }

    if (accept(Tok::KwReturn)) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::Return;
      s->loc = loc;
      if (!at(Tok::Semi)) {
        s->value = parseExpr();
        if (!s->value) return nullptr;
      }
      if (!expect(Tok::Semi)) return nullptr;
      return s;
    }

    // Label, scalar assignment, array assignment, or pointer bump: all start
    // with an identifier.
    if (at(Tok::Ident)) {
      std::string name = cur().text;
      if (peek().kind == Tok::Colon) {
        next();
        next();
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Label;
        s->loc = loc;
        s->name = std::move(name);
        return s;
      }
      next();
      if (accept(Tok::LBracket)) {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::AssignArray;
        s->loc = loc;
        s->name = std::move(name);
        if (!at(Tok::Number) || !cur().isIntLiteral) {
          diags_.error(cur().loc, "array index must be an integer literal");
          return nullptr;
        }
        s->index = static_cast<int64_t>(cur().number);
        next();
        if (!expect(Tok::RBracket) || !expect(Tok::Assign)) return nullptr;
        s->value = parseExpr();
        if (!s->value || !expect(Tok::Semi)) return nullptr;
        return s;
      }
      AssignOp op;
      if (accept(Tok::Assign))
        op = AssignOp::Set;
      else if (accept(Tok::PlusAssign))
        op = AssignOp::Add;
      else if (accept(Tok::MinusAssign))
        op = AssignOp::Sub;
      else if (accept(Tok::StarAssign))
        op = AssignOp::Mul;
      else {
        diags_.error(cur().loc, "expected assignment operator");
        return nullptr;
      }
      auto s = std::make_unique<Stmt>();
      s->loc = loc;
      s->name = std::move(name);
      s->op = op;
      s->value = parseExpr();
      if (!s->value || !expect(Tok::Semi)) return nullptr;
      // `X += 3` on a vector parameter is a pointer bump; the distinction is
      // drawn in sema (needs the symbol table), so record it as AssignScalar
      // here and let sema reclassify.
      s->kind = Stmt::Kind::AssignScalar;
      return s;
    }

    diags_.error(loc, "expected statement, found '" +
                         std::string(tokName(cur().kind)) + "'");
    return nullptr;
  }

  StmtPtr parseLoop(SourceLoc loc) {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Loop;
    s->loc = loc;
    if (!expectIdent(s->name)) return nullptr;
    if (!expect(Tok::Assign)) return nullptr;
    s->loopFrom = parseExpr();
    if (!s->loopFrom || !expect(Tok::Comma)) return nullptr;
    s->loopTo = parseExpr();
    if (!s->loopTo) return nullptr;
    if (accept(Tok::Comma)) {
      // Only a step of -1 is supported (the paper's downward loops).
      if (!accept(Tok::Minus) || !at(Tok::Number) || cur().number != 1) {
        diags_.error(cur().loc, "only a loop step of -1 is supported");
        return nullptr;
      }
      next();
      s->loopDown = true;
    }
    if (!expect(Tok::KwLoopBody)) return nullptr;
    while (!at(Tok::KwLoopEnd) && !at(Tok::Eof)) {
      StmtPtr inner = parseStmt();
      if (!inner) return nullptr;
      s->body.push_back(std::move(inner));
    }
    if (!expect(Tok::KwLoopEnd)) return nullptr;
    return s;
  }

  std::vector<Token> toks_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Routine> parse(std::string_view source,
                               DiagnosticEngine& diags) {
  std::vector<Token> toks = lex(source, diags);
  if (diags.hasErrors()) return nullptr;
  Parser p(std::move(toks), diags);
  auto r = p.parseRoutine();
  if (diags.hasErrors()) return nullptr;
  return r;
}

}  // namespace ifko::hil
