#include "analysis/loopinfo.h"

#include <algorithm>
#include <set>

#include "ir/cfg.h"

namespace ifko::analysis {

using ir::Inst;
using ir::Op;
using ir::Reg;

namespace {

bool usesReg(const Inst& in, Reg r) {
  const ir::OpInfo& info = ir::opInfo(in.op);
  if (info.numSrcs >= 1 && in.src1 == r) return true;
  if (info.numSrcs >= 2 && in.src2 == r) return true;
  if (info.numSrcs >= 3 && in.src3 == r) return true;
  if (in.op == Op::Ret && in.src1 == r) return true;
  if (ir::touchesMem(in.op) && (in.mem.base == r || in.mem.index == r))
    return true;
  return false;
}

}  // namespace

LoopInfo analyzeLoop(const ir::Function& fn) {
  LoopInfo info;
  if (!fn.loop.valid) {
    info.problem = "no loop flagged for tuning";
    return info;
  }
  const ir::LoopMark& loop = fn.loop;

  // --- natural-loop membership: reverse walk from the latch to the header --
  auto preds = ir::predecessors(fn);
  std::set<int32_t> members = {loop.header, loop.latch};
  std::vector<int32_t> work = {loop.latch};
  while (!work.empty()) {
    int32_t b = work.back();
    work.pop_back();
    if (b == loop.header) continue;
    for (int32_t p : preds[b]) {
      if (members.insert(p).second) work.push_back(p);
    }
  }

  // --- hot chain: layout-contiguous run from header to latch ---------------
  size_t headerPos = fn.layoutIndex(loop.header);
  size_t latchPos = fn.layoutIndex(loop.latch);
  if (headerPos == static_cast<size_t>(-1) ||
      latchPos == static_cast<size_t>(-1) || latchPos < headerPos) {
    info.problem = "loop blocks not in canonical layout";
    return info;
  }
  for (size_t i = headerPos; i <= latchPos; ++i) {
    int32_t id = fn.blocks[i].id;
    if (members.count(id) == 0) {
      info.problem = "non-loop block interleaved with the loop body";
      return info;
    }
    info.hotBlocks.push_back(id);
  }
  for (int32_t id : members)
    if (std::find(info.hotBlocks.begin(), info.hotBlocks.end(), id) ==
        info.hotBlocks.end())
      info.sideBlocks.push_back(id);

  // --- latch tail contract ---------------------------------------------------
  const ir::BasicBlock& latch = fn.block(loop.latch);
  if (latch.insts.size() < 3) {
    info.problem = "latch too short for canonical tail";
    return info;
  }
  size_t n = latch.insts.size();
  const Inst& backedge = latch.insts[n - 1];
  const Inst& cmp = latch.insts[n - 2];
  const Inst& upd = latch.insts[n - 3];
  if (backedge.op != Op::Jcc || backedge.label != loop.header ||
      (cmp.op != Op::ICmp && cmp.op != Op::ICmpI) || upd.op != Op::IAddI ||
      upd.dst != loop.ivar) {
    info.problem = "latch tail does not match [ivar update, cmp, backedge]";
    return info;
  }
  info.backedgeIdx = n - 1;
  info.cmpIdx = n - 2;
  info.ivarUpdateIdx = n - 3;

  // --- arrays: bumps immediately before the tail ----------------------------
  size_t firstBump = info.ivarUpdateIdx;
  for (size_t i = info.ivarUpdateIdx; i-- > 0;) {
    const Inst& in = latch.insts[i];
    bool isBump = in.op == Op::IAddI && in.dst == in.src1;
    if (!isBump) break;
    const ir::Param* p = nullptr;
    for (const auto& param : fn.params)
      if (param.reg == in.dst && param.isPointer()) p = &param;
    if (p == nullptr) break;
    firstBump = i;
  }
  info.firstBumpIdx = firstBump;

  for (const auto& param : fn.params) {
    if (!param.isPointer()) continue;
    ArrayInfo a;
    a.name = param.name;
    a.ptr = param.reg;
    a.elem = param.elemType();
    a.noPrefetch = param.noPrefetch;
    for (size_t i = firstBump; i < info.ivarUpdateIdx; ++i) {
      const Inst& in = latch.insts[i];
      if (in.op == Op::IAddI && in.dst == param.reg) a.bumpBytes = in.imm;
    }
    // Sets/uses over the whole loop body.
    for (int32_t bid : info.hotBlocks) {
      const auto& bb = fn.block(bid);
      size_t limit = bid == loop.latch ? firstBump : bb.insts.size();
      for (size_t i = 0; i < limit; ++i) {
        const Inst& in = bb.insts[i];
        if (!ir::touchesMem(in.op) || in.mem.base != param.reg) continue;
        if (ir::opInfo(in.op).readsMem) a.loaded = true;
        if (ir::opInfo(in.op).writesMem) a.stored = true;
      }
    }
    for (int32_t bid : info.sideBlocks) {
      for (const Inst& in : fn.block(bid).insts) {
        if (!ir::touchesMem(in.op) || in.mem.base != param.reg) continue;
        if (ir::opInfo(in.op).readsMem) a.loaded = true;
        if (ir::opInfo(in.op).writesMem) a.stored = true;
      }
    }
    info.arrays.push_back(std::move(a));
  }

  // --- iterate over "iteration code" (body minus bumps+tail) ---------------
  auto forEachIterationInst = [&](auto&& f) {
    for (int32_t bid : info.hotBlocks) {
      const auto& bb = fn.block(bid);
      size_t limit = bid == loop.latch ? firstBump : bb.insts.size();
      for (size_t i = 0; i < limit; ++i) f(fn.block(bid).insts[i]);
    }
    for (int32_t bid : info.sideBlocks)
      for (const Inst& in : fn.block(bid).insts) f(in);
  };

  // --- accumulator candidates -----------------------------------------------
  {
    std::set<int32_t> fpDefs;
    forEachIterationInst([&](const Inst& in) {
      if (ir::opInfo(in.op).hasDst && in.dst.kind == ir::RegKind::Fp)
        fpDefs.insert(in.dst.id);
    });
    for (int32_t id : fpDefs) {
      Reg r = Reg::fpReg(id);
      bool ok = true;
      bool hasAccumAdd = false;
      forEachIterationInst([&](const Inst& in) {
        bool isAccumAdd = in.op == Op::FAdd && in.dst == r &&
                          (in.src1 == r || in.src2 == r) &&
                          !(in.src1 == r && in.src2 == r);
        if (isAccumAdd) {
          hasAccumAdd = true;
          return;
        }
        if ((ir::opInfo(in.op).hasDst && in.dst == r) || usesReg(in, r))
          ok = false;
      });
      // Must be initialized before the loop (defined outside the body).
      bool definedOutside = false;
      std::set<int32_t> bodySet(info.hotBlocks.begin(), info.hotBlocks.end());
      for (int32_t sid : info.sideBlocks) bodySet.insert(sid);
      for (const auto& bb : fn.blocks) {
        if (bodySet.count(bb.id)) continue;
        for (const Inst& in : bb.insts)
          if (ir::opInfo(in.op).hasDst && in.dst == r) definedOutside = true;
      }
      for (const auto& p : fn.params)
        if (p.reg == r) definedOutside = true;
      if (ok && hasAccumAdd && definedOutside) info.accumulators.push_back(r);
    }
  }

  // --- loop-variable usage ---------------------------------------------------
  {
    size_t idx = 0;
    for (int32_t bid : info.hotBlocks) {
      const auto& bb = fn.block(bid);
      for (size_t i = 0; i < bb.insts.size(); ++i) {
        if (bid == loop.latch && i >= info.ivarUpdateIdx) continue;
        if (usesReg(bb.insts[i], loop.ivar)) info.ivarUsedInBody = true;
      }
      ++idx;
    }
    for (int32_t bid : info.sideBlocks)
      for (const Inst& in : fn.block(bid).insts)
        if (usesReg(in, loop.ivar)) info.ivarUsedInBody = true;
    std::set<int32_t> bodySet(info.hotBlocks.begin(), info.hotBlocks.end());
    for (int32_t sid : info.sideBlocks) bodySet.insert(sid);
    for (const auto& bb : fn.blocks) {
      if (bodySet.count(bb.id) || bb.id == loop.preheader) continue;
      for (const Inst& in : bb.insts)
        if (usesReg(in, loop.ivar)) info.ivarUsedAfterLoop = true;
    }
  }

  // --- vectorizability --------------------------------------------------------
  info.vectorizable = true;
  if (!info.sideBlocks.empty()) {
    info.vectorizable = false;
    info.whyNotVectorizable = "loop body has control flow (side blocks)";
  }
  if (info.vectorizable) {
    for (size_t i = 0; i + 1 < info.hotBlocks.size(); ++i) {
      const auto& bb = fn.block(info.hotBlocks[i]);
      for (const Inst& in : bb.insts)
        if (ir::opInfo(in.op).isBranch || in.op == Op::Ret) {
          info.vectorizable = false;
          info.whyNotVectorizable = "loop body has internal branches";
        }
    }
  }
  if (info.vectorizable && info.ivarUsedInBody) {
    info.vectorizable = false;
    info.whyNotVectorizable = "loop variable used in body";
  }
  if (info.vectorizable) {
    // SIMD loads/stores require unit stride: every accessed array must
    // advance by exactly one element per iteration.
    for (const auto& a : info.arrays) {
      bool accessed = a.loaded || a.stored;
      if (accessed && a.bumpBytes != scalBytes(a.elem)) {
        info.vectorizable = false;
        info.whyNotVectorizable =
            "array '" + a.name + "' is not accessed with unit stride";
      }
    }
  }
  if (info.vectorizable) {
    std::set<int32_t> accums;
    for (Reg r : info.accumulators) accums.insert(r.id);
    // Registers the body defines anywhere (for invariance checking).
    std::set<int32_t> fpDefinedAnywhere;
    forEachIterationInst([&](const Inst& in) {
      if (ir::opInfo(in.op).hasDst && in.dst.kind == ir::RegKind::Fp)
        fpDefinedAnywhere.insert(in.dst.id);
    });
    std::set<int32_t> fpDefined;
    std::set<int32_t> invariants;
    forEachIterationInst([&](const Inst& in) {
      if (!info.vectorizable) return;
      switch (in.op) {
        case Op::FLd: case Op::FSt: case Op::FStNT: case Op::FMov:
        case Op::FAdd: case Op::FSub: case Op::FMul: case Op::FAbs:
        case Op::FMax: case Op::FLdI:
          break;  // vectorizable FP ops
        case Op::FDiv: case Op::FCmp: case Op::FNeg:
        case Op::FAddM: case Op::FMulM:
          info.vectorizable = false;
          info.whyNotVectorizable =
              std::string("unsupported FP operation ") +
              std::string(ir::opInfo(in.op).name);
          return;
        default:
          if (ir::opInfo(in.op).isVector) {
            info.vectorizable = false;
            info.whyNotVectorizable = "already vectorized";
            return;
          }
          // Integer computation inside the iteration code.
          if (in.op != Op::Nop) {
            info.vectorizable = false;
            info.whyNotVectorizable =
                std::string("integer computation in body: ") +
                std::string(ir::opInfo(in.op).name);
            return;
          }
      }
      // FP operands must be temps defined in the body, accumulators, or
      // loop-invariant inputs (never redefined by the body -- parameters
      // and outer-loop scalars); carried values like iamax's running max
      // cannot be widened safely.
      auto checkSrc = [&](Reg r) {
        if (!r.valid() || r.kind != ir::RegKind::Fp) return;
        if (fpDefined.count(r.id) || accums.count(r.id)) return;
        if (!fpDefinedAnywhere.count(r.id)) {
          invariants.insert(r.id);
          return;
        }
        info.vectorizable = false;
        info.whyNotVectorizable =
            "loop-carried FP value is not an accumulator";
      };
      const ir::OpInfo& oi = ir::opInfo(in.op);
      if (oi.numSrcs >= 1) checkSrc(in.src1);
      if (oi.numSrcs >= 2) checkSrc(in.src2);
      if (oi.hasDst && in.dst.kind == ir::RegKind::Fp) fpDefined.insert(in.dst.id);
    });
    for (int32_t id : invariants)
      info.invariantFpInputs.push_back(Reg::fpReg(id));
  }

  info.found = true;
  return info;
}

}  // namespace ifko::analysis
