// Analysis of the tuned loop (paper Section 2.2.2).
//
// This is the information FKO communicates to the iterative search: the
// loop's structure, the maximum safe unrolling, whether it can be SIMD
// vectorized (and if not, why), per-array sets/uses and prefetchability,
// and the scalars that are valid targets for accumulator expansion.
//
// It also records the structural contract lowering establishes for the
// latch block — [iteration code..., pointer bumps, ivar update, compare,
// backedge] — which the fundamental transforms rely on.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/function.h"

namespace ifko::analysis {

/// One array (vector parameter) accessed by the loop.
struct ArrayInfo {
  std::string name;
  ir::Reg ptr;
  ir::Scal elem = ir::Scal::F64;
  int64_t bumpBytes = 0;  ///< pointer advance per iteration
  bool loaded = false;    ///< "uses" within the loop
  bool stored = false;    ///< "sets" within the loop
  bool noPrefetch = false;  ///< user mark-up: already in cache
  /// Valid prefetch target: references advance with the loop and the user
  /// did not opt out.
  [[nodiscard]] bool prefetchable() const {
    return bumpBytes > 0 && !noPrefetch;
  }
};

struct LoopInfo {
  bool found = false;
  std::string problem;  ///< why analysis failed, when !found

  /// Natural-loop body in layout order: the fall-through ("hot") chain from
  /// header to latch, then any out-of-line side blocks (e.g. iamax's
  /// NEWMAX) that jump back into the chain.
  std::vector<int32_t> hotBlocks;
  std::vector<int32_t> sideBlocks;

  std::vector<ArrayInfo> arrays;
  /// Scalars that are exclusively targets of FP adds in the loop
  /// (accumulator-expansion candidates).
  std::vector<ir::Reg> accumulators;

  bool vectorizable = false;
  std::string whyNotVectorizable;
  /// FP values live into the loop body that the body never redefines
  /// (parameters like axpy's alpha, or outer-loop computed scalars like
  /// ger's alpha*x[r]): vectorization broadcasts these in the preheader.
  std::vector<ir::Reg> invariantFpInputs;
  int maxUnroll = 128;  ///< cap; these loops have no carried array deps
  bool ivarUsedInBody = false;   ///< uses besides the latch update
  bool ivarUsedAfterLoop = false;

  // Latch tail contract (indices into the latch block's instruction list).
  size_t firstBumpIdx = 0;  ///< first pointer bump (== ivarUpdateIdx if none)
  size_t ivarUpdateIdx = 0;
  size_t cmpIdx = 0;
  size_t backedgeIdx = 0;

  [[nodiscard]] const ArrayInfo* findArray(const std::string& name) const {
    for (const auto& a : arrays)
      if (a.name == name) return &a;
    return nullptr;
  }
};

/// Analyzes fn.loop.  Requires lowering's canonical latch shape; reports a
/// problem (found=false) when the contract does not hold.
[[nodiscard]] LoopInfo analyzeLoop(const ir::Function& fn);

}  // namespace ifko::analysis
