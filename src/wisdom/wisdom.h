// The wisdom store: tuned configurations as a served, versioned artifact.
//
// Every empirical tune ends with one small fact worth keeping — "for this
// kernel source, on this machine model, in this timing context, at this
// problem-size class, these parameters won, at this cost" — and the paper's
// harness throws that fact away when the process exits.  A WisdomStore
// keeps it: best-config-per-(kernel content hash, arch, context, N-class)
// records with full provenance (winning TuningSpec, cycles, evaluation
// count, run id, attribution summary), exported/imported as a versioned
// JSONL file so batch tuning (`ifko tune --wisdom`), fleets of tuners, and
// the long-lived `ifko serve` daemon all populate and serve one artifact.
//
// File format (docs/SERVING.md): one flat JSON object per line, every line
// carrying `"wisdom_schema":1`.  Lines from a *newer* schema are skipped
// and counted (schemaSkippedLines) — never reinterpreted — so a store
// written by a future version degrades loudly, not wrongly; unparseable
// lines are skipped and counted like EvalCache::damagedLines().  Loading
// merges keep-best: when two lines share a key the lower best_cycles wins,
// which makes concatenating two wisdom files a correct merge.  save() is
// atomic (temp file + rename) and deterministic (records sorted by key),
// so export → import → export is byte-identical.
//
// Lookup falls back from exact to nearest: an exact (hash, machine,
// context, N-class) hit first, then — same kernel and machine only — the
// *performance-nearest* record: candidates in the wanted timing context
// rank by cosine distance between their stored attribution vector and the
// probe (the querying kernel's own normalized stall-cause shares, measured
// on its DEFAULTS run), then the other context the same way.  Records or
// queries without a vector fall back to nearest N-class (smallest exponent
// delta, ties toward the smaller class) — a near answer is still a far
// better search seed (and often a better config) than FKO's static
// defaults.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ifko::search {
struct EvalCounters;  // search/counters.h
}

namespace ifko::wisdom {

/// Schema version written to every wisdom line.  v2 adds the winner's
/// normalized attribution vector (`attr`); v1 lines (kWisdomSchemaCompat)
/// still load — like the eval cache's v1→v3 path — and simply carry no
/// vector.  Anything else is drift: skipped and counted, never
/// reinterpreted.
inline constexpr int64_t kWisdomSchema = 2;
inline constexpr int64_t kWisdomSchemaCompat = 1;

/// Length of the attribution vector — one share per sim::StallCause
/// (mirrors sim::kNumStallCauses; static_assert'd in wisdom.cpp, so the
/// wisdom format cannot silently drift from the simulator's cause set).
inline constexpr size_t kAttrCauses = 10;

/// Normalized per-cause cycle shares (sum 1 when present); all-zero means
/// "no attribution recorded" (a v1 record, or a tune without counters).
using AttrShares = std::array<double, kAttrCauses>;

/// Normalized shares out of a timed candidate's counters; nullopt when the
/// counters charge no cycles (nothing to normalize by).
[[nodiscard]] std::optional<AttrShares> attrSharesFrom(
    const search::EvalCounters& counters);

/// Cosine distance (1 - cosine similarity) between two share vectors, the
/// similarity metric of the lookup fallback.  Shares are non-negative, so
/// real distances live in [0, 1]; an all-zero side returns 2.0 — "no
/// information" ranks after every informed candidate.
[[nodiscard]] double attrCosineDistance(const AttrShares& a,
                                        const AttrShares& b);

/// Problem-size class: sizes within the same power-of-two bucket share one
/// record ("2^13" covers 4097..8192).  Tuned parameters drift with scale
/// regime (in-cache vs out-of-cache), not with every individual N, so the
/// store keys on the class and the daemon serves any N inside it.
[[nodiscard]] std::string nClassFor(int64_t n);
/// The bucket exponent back out of an nClassFor string; -1 if not one.
[[nodiscard]] int nClassExponent(const std::string& nClass);

/// Identity of one wisdom record.
struct WisdomKey {
  std::string sourceHash;  ///< ifko::hashHex of the HIL source text
  std::string machine;     ///< arch::MachineConfig::name ("P4E", "Opteron")
  std::string context;     ///< sim::contextName ("out-of-cache" | "in-L2")
  std::string nClass;      ///< nClassFor(n)

  /// Canonical joined form, the in-memory map key ('|' occurs in none of
  /// the fields).
  [[nodiscard]] std::string str() const;
  friend bool operator==(const WisdomKey&, const WisdomKey&) = default;
};

/// One best-known configuration, with provenance.
struct WisdomRecord {
  WisdomKey key;
  std::string kernel;  ///< human name ("ddot") — reporting only, not keyed
  std::string params;  ///< canonical opt::formatTuningSpec of the winner
  uint64_t bestCycles = 0;
  uint64_t defaultCycles = 0;  ///< FKO's static choice, for the speedup
  int64_t evaluations = 0;     ///< candidate evaluations the tune spent
  std::string runId;           ///< provenance: who found it ("tune/line", ...)
  /// Attribution summary of the winner (empty/0 when the tune had no
  /// counters): the dominant stall cause, its share of the winner's
  /// cycles, and the memory-stall share.
  std::string topCause;
  double topCauseShare = 0.0;
  double memStallShare = 0.0;
  /// Full normalized attribution vector of the winner, indexed by
  /// sim::StallCause — the similarity key of find()'s fallback ranking.
  /// All-zero when the tune carried no counters (or the record is v1).
  AttrShares attrShare{};

  /// Whether the record carries an attribution vector.
  [[nodiscard]] bool hasAttr() const {
    for (double s : attrShare)
      if (s != 0.0) return true;
    return false;
  }

  [[nodiscard]] double speedup() const {
    return bestCycles == 0 ? 0.0
                           : static_cast<double>(defaultCycles) /
                                 static_cast<double>(bestCycles);
  }
  friend bool operator==(const WisdomRecord&, const WisdomRecord&) = default;
};

/// Fills the record's attribution summary from a winner's counters.
void applyCounters(WisdomRecord& rec, const search::EvalCounters& counters);

/// How a lookup was satisfied.
enum class MatchKind : uint8_t {
  Exact,        ///< same (hash, machine, context, N-class)
  AttrSimilar,  ///< nearest by attribution-vector cosine distance
  NearNClass,   ///< same context, nearest other N-class
  NearContext,  ///< other timing context (nearest N-class there)
};
[[nodiscard]] std::string_view matchKindName(MatchKind kind);

struct WisdomMatch {
  const WisdomRecord* record = nullptr;  ///< null = miss
  MatchKind kind = MatchKind::Exact;

  [[nodiscard]] bool hit() const { return record != nullptr; }
};

/// The in-memory store.  Not thread-safe: the daemon serializes requests
/// and the CLI is single-threaded; callers that share one across threads
/// must lock.
class WisdomStore {
 public:
  /// Merges every well-formed line of `path` into the store (keep-best on
  /// key conflicts).  A missing file is not an error (the store starts
  /// empty — first run of a fresh deployment).  Returns false with *error
  /// only when the file exists but cannot be read.
  bool load(const std::string& path, std::string* error = nullptr);

  /// Writes the store to `path` atomically: records render sorted by key
  /// into a pid-unique temp file, which is then renamed over `path` (so
  /// concurrent savers in different processes cannot tear each other's
  /// write — the last complete file wins).  Returns false with *error when
  /// the temp file cannot be written or renamed.
  bool save(const std::string& path, std::string* error = nullptr) const;

  /// Keep-best insert: adopts `rec` when its key is new or its bestCycles
  /// beat the incumbent's.  Returns true when the store changed.
  bool record(const WisdomRecord& rec);

  /// Keep-best merge of every record of `other` into this store.  Returns
  /// the number of records adopted.
  size_t merge(const WisdomStore& other);

  /// Exact-key lookup.
  [[nodiscard]] const WisdomRecord* lookup(const WisdomKey& key) const;

  /// Exact lookup, then fallback (same kernel + machine only): candidates
  /// in the same timing context first, then the other context; within each
  /// tier the *performance-nearest* record wins — smallest cosine distance
  /// between its attribution vector and `probe` (the querying kernel's own
  /// normalized stall shares), with N-class distance breaking cosine ties
  /// and the smaller class breaking exponent-distance ties.  Without a
  /// probe — or for v1 records with no vector — ranking degrades to the
  /// N-class heuristic alone.  Never crosses sourceHash or machine.
  [[nodiscard]] WisdomMatch find(const WisdomKey& key,
                                 const AttrShares* probe = nullptr) const;

  [[nodiscard]] size_t size() const { return records_.size(); }
  /// Records in key order (the save order).
  [[nodiscard]] std::vector<const WisdomRecord*> records() const;

  /// Lines the last load() skipped as unparseable or missing required
  /// fields — the analogue of EvalCache::damagedLines().
  [[nodiscard]] size_t damagedLines() const { return damagedLines_; }
  /// Lines the last load() skipped because they carry a different (newer)
  /// wisdom_schema — schema drift worth a warning, never a reinterpret.
  [[nodiscard]] size_t schemaSkippedLines() const { return schemaSkipped_; }

  /// One well-formed JSONL line for `rec` (schema field included) — the
  /// save() format, exposed for tests and tools.
  [[nodiscard]] static std::string formatRecord(const WisdomRecord& rec);
  /// Parses one line; nullopt for damaged lines.  *schemaDrift (when
  /// given) is set when the line is well-formed but from another schema.
  [[nodiscard]] static std::optional<WisdomRecord> parseRecord(
      const std::string& line, bool* schemaDrift = nullptr);

 private:
  std::map<std::string, WisdomRecord> records_;  ///< ordered => stable save
  size_t damagedLines_ = 0;
  size_t schemaSkipped_ = 0;
};

}  // namespace ifko::wisdom
