// Bridge from a finished tune to a wisdom record.
//
// Every write-back site — `ifko tune --wisdom`, `ifko tune-all --wisdom`,
// and the serve daemon's tune-on-miss path — turns a search::TuneResult
// into the same WisdomRecord: winning spec, both cycle counts, evaluation
// count, provenance, and the winner's attribution summary fished out of the
// evaluation cache (the winner was just timed, so its counters are already
// memoized — no re-simulation).
#pragma once

#include <string>

#include "search/evalcache.h"
#include "search/linesearch.h"
#include "wisdom/wisdom.h"

namespace ifko::wisdom {

/// Builds the record for a successful tune (`result.ok` assumed).  `config`
/// must be the SearchConfig the tune actually ran with (its n/seed/testerN
/// form the winner's cache key); `cache` may be null — the record then just
/// carries no attribution summary.
[[nodiscard]] WisdomRecord harvestRecord(const WisdomKey& key,
                                         const std::string& kernel,
                                         const std::string& runId,
                                         const search::TuneResult& result,
                                         const search::SearchConfig& config,
                                         search::EvalCache* cache);

}  // namespace ifko::wisdom
