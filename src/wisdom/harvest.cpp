#include "wisdom/harvest.h"

#include <optional>

#include "opt/params.h"

namespace ifko::wisdom {

WisdomRecord harvestRecord(const WisdomKey& key, const std::string& kernel,
                           const std::string& runId,
                           const search::TuneResult& result,
                           const search::SearchConfig& config,
                           search::EvalCache* cache) {
  WisdomRecord rec;
  rec.key = key;
  rec.kernel = kernel;
  rec.params = opt::formatTuningSpec(result.best);
  rec.bestCycles = result.bestCycles;
  rec.defaultCycles = result.defaultCycles;
  rec.evaluations = result.evaluations;
  rec.runId = runId;
  if (cache != nullptr) {
    search::EvalKey winner;
    winner.sourceHash = key.sourceHash;
    winner.machine = key.machine;
    winner.context = key.context;
    winner.n = config.n;
    winner.seed = config.seed;
    winner.testerN = config.testerN;
    winner.params = rec.params;
    if (const std::optional<search::EvalRecord> cached = cache->lookup(winner);
        cached.has_value() && cached->counters.has_value())
      applyCounters(rec, *cached->counters);
  }
  return rec;
}

}  // namespace ifko::wisdom
