#include "wisdom/wisdom.h"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "search/counters.h"
#include "sim/timing.h"
#include "support/json.h"
#include "support/str.h"

namespace ifko::wisdom {

std::string nClassFor(int64_t n) {
  int exp = 0;
  int64_t bucket = 1;
  while (bucket < n && exp < 62) {
    bucket <<= 1;
    ++exp;
  }
  return "2^" + std::to_string(exp);
}

int nClassExponent(const std::string& nClass) {
  if (!startsWith(nClass, "2^")) return -1;
  int64_t exp = 0;
  if (!parseInt64(nClass.substr(2), &exp) || exp < 0 || exp > 62) return -1;
  return static_cast<int>(exp);
}

std::string WisdomKey::str() const {
  return sourceHash + "|" + machine + "|" + context + "|" + nClass;
}

// The wisdom format's vector length is the simulator's cause set — if one
// grows, this fails to compile instead of silently truncating records.
static_assert(kAttrCauses == sim::kNumStallCauses,
              "wisdom attribution vector must cover every stall cause");

std::optional<AttrShares> attrSharesFrom(const search::EvalCounters& counters) {
  const uint64_t total = counters.attr.total();
  if (total == 0) return std::nullopt;
  AttrShares shares{};
  for (size_t i = 0; i < kAttrCauses; ++i)
    shares[i] = static_cast<double>(counters.attr.cycles[i]) /
                static_cast<double>(total);
  return shares;
}

double attrCosineDistance(const AttrShares& a, const AttrShares& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < kAttrCauses; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 2.0;
  return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
}

void applyCounters(WisdomRecord& rec, const search::EvalCounters& counters) {
  const uint64_t total = counters.attr.total();
  if (total == 0) return;
  size_t top = 0;
  for (size_t i = 1; i < sim::kNumStallCauses; ++i)
    if (counters.attr.cycles[i] > counters.attr.cycles[top]) top = i;
  rec.topCause =
      std::string(sim::stallCauseName(static_cast<sim::StallCause>(top)));
  rec.topCauseShare = static_cast<double>(counters.attr.cycles[top]) /
                      static_cast<double>(total);
  rec.memStallShare = static_cast<double>(counters.attr.memoryStalls()) /
                      static_cast<double>(total);
  if (std::optional<AttrShares> shares = attrSharesFrom(counters))
    rec.attrShare = *shares;
}

std::string_view matchKindName(MatchKind kind) {
  switch (kind) {
    case MatchKind::Exact: return "exact";
    case MatchKind::AttrSimilar: return "attr-similar";
    case MatchKind::NearNClass: return "near-n";
    case MatchKind::NearContext: return "near-context";
  }
  return "?";
}

std::string WisdomStore::formatRecord(const WisdomRecord& rec) {
  JsonWriter w;
  w.field("wisdom_schema", kWisdomSchema)
      .field("kernel", rec.kernel)
      .field("source", rec.key.sourceHash)
      .field("machine", rec.key.machine)
      .field("context", rec.key.context)
      .field("n_class", rec.key.nClass)
      .field("params", rec.params)
      .field("best_cycles", rec.bestCycles)
      .field("default_cycles", rec.defaultCycles)
      .field("evaluations", rec.evaluations)
      .field("run", rec.runId);
  if (!rec.topCause.empty()) {
    w.field("top_cause", rec.topCause)
        .field("top_cause_share", rec.topCauseShare)
        .field("mem_share", rec.memStallShare);
  }
  if (rec.hasAttr()) {
    JsonWriter attr;
    for (size_t i = 0; i < kAttrCauses; ++i)
      attr.field(sim::stallCauseName(static_cast<sim::StallCause>(i)),
                 rec.attrShare[i]);
    w.field("attr", attr);
  }
  return w.str();
}

std::optional<WisdomRecord> WisdomStore::parseRecord(const std::string& line,
                                                     bool* schemaDrift) {
  if (schemaDrift != nullptr) *schemaDrift = false;
  std::map<std::string, JsonValue> obj;
  if (!parseJsonObject(line, &obj)) return std::nullopt;
  auto str = [&](const char* k) -> const std::string* {
    auto it = obj.find(k);
    if (it == obj.end() || it->second.kind != JsonValue::Kind::String)
      return nullptr;
    return &it->second.string;
  };
  auto num = [&](const char* k, double* out) {
    auto it = obj.find(k);
    if (it == obj.end() || it->second.kind != JsonValue::Kind::Number)
      return false;
    *out = it->second.number;
    return true;
  };

  double schema = 0;
  if (!num("wisdom_schema", &schema)) return std::nullopt;
  const int64_t schemaInt = static_cast<int64_t>(schema);
  if (schemaInt != kWisdomSchema && schemaInt != kWisdomSchemaCompat) {
    // A well-formed record from another schema: drift, not damage.  Never
    // reinterpreted — a future version's fields may not mean what ours do.
    // v1 is the exception: a strict subset of v2 (it just lacks the
    // attribution vector), so old stores keep loading across the bump.
    if (schemaDrift != nullptr) *schemaDrift = true;
    return std::nullopt;
  }

  const std::string* source = str("source");
  const std::string* machine = str("machine");
  const std::string* context = str("context");
  const std::string* nClass = str("n_class");
  const std::string* params = str("params");
  double best = 0, def = 0, evals = 0;
  if (source == nullptr || machine == nullptr || context == nullptr ||
      nClass == nullptr || params == nullptr || !num("best_cycles", &best) ||
      !num("default_cycles", &def) || nClassExponent(*nClass) < 0)
    return std::nullopt;

  WisdomRecord rec;
  rec.key = {*source, *machine, *context, *nClass};
  rec.params = *params;
  rec.bestCycles = static_cast<uint64_t>(best);
  rec.defaultCycles = static_cast<uint64_t>(def);
  if (num("evaluations", &evals)) rec.evaluations = static_cast<int64_t>(evals);
  if (const std::string* kernel = str("kernel")) rec.kernel = *kernel;
  if (const std::string* run = str("run")) rec.runId = *run;
  if (const std::string* cause = str("top_cause")) {
    rec.topCause = *cause;
    num("top_cause_share", &rec.topCauseShare);
    num("mem_share", &rec.memStallShare);
  }
  if (auto it = obj.find("attr");
      it != obj.end() && it->second.kind == JsonValue::Kind::Object) {
    for (size_t i = 0; i < kAttrCauses; ++i) {
      auto c = it->second.object->find(std::string(
          sim::stallCauseName(static_cast<sim::StallCause>(i))));
      if (c != it->second.object->end() &&
          c->second.kind == JsonValue::Kind::Number)
        rec.attrShare[i] = c->second.number;
    }
  }
  return rec;
}

bool WisdomStore::load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) return true;  // a store that does not exist yet is just empty
  damagedLines_ = 0;
  schemaSkipped_ = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    bool drift = false;
    std::optional<WisdomRecord> rec = parseRecord(line, &drift);
    if (!rec.has_value()) {
      if (drift) ++schemaSkipped_;
      else ++damagedLines_;
      continue;
    }
    record(*rec);
  }
  if (in.bad()) {
    if (error != nullptr) *error = "error reading wisdom file '" + path + "'";
    return false;
  }
  return true;
}

bool WisdomStore::save(const std::string& path, std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  // Atomic: readers (and a crash mid-save) see either the old complete
  // file or the new complete file, never a torn one.  The temp name is
  // pid-unique so concurrent savers in different processes (fleet workers
  // sharing one store) cannot clobber each other's half-written temp —
  // last rename wins, and every rename installs a complete file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return fail("cannot write wisdom file '" + tmp + "'");
    for (const auto& [key, rec] : records_) out << formatRecord(rec) << "\n";
    out.flush();
    if (!out) return fail("error writing wisdom file '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail("cannot rename '" + tmp + "' over '" + path + "'");
  }
  return true;
}

bool WisdomStore::record(const WisdomRecord& rec) {
  auto [it, inserted] = records_.emplace(rec.key.str(), rec);
  if (inserted) return true;
  // Keep-best: ties keep the incumbent, so merge order cannot flip between
  // two equally fast configs.
  if (rec.bestCycles == 0 || (it->second.bestCycles != 0 &&
                              rec.bestCycles >= it->second.bestCycles))
    return false;
  it->second = rec;
  return true;
}

size_t WisdomStore::merge(const WisdomStore& other) {
  size_t adopted = 0;
  for (const auto& [key, rec] : other.records_)
    if (record(rec)) ++adopted;
  return adopted;
}

const WisdomRecord* WisdomStore::lookup(const WisdomKey& key) const {
  auto it = records_.find(key.str());
  return it == records_.end() ? nullptr : &it->second;
}

namespace {

/// One fallback candidate's rank: cosine distance to the probe first (2.0
/// when either side has no vector, so informed candidates always outrank
/// uninformed ones), N-class exponent distance second, and — the explicit
/// tie-break the old strict-`<` scan got wrong — the *smaller* class last,
/// independent of map iteration order ("2^11" sorts before "2^9"
/// lexicographically, so iteration order used to hand ties to the larger
/// class).
struct FallbackRank {
  double cosDist = 2.0;
  int nDist = 0;
  int exp = 0;

  [[nodiscard]] bool betterThan(const FallbackRank& other) const {
    if (cosDist != other.cosDist) return cosDist < other.cosDist;
    if (nDist != other.nDist) return nDist < other.nDist;
    return exp < other.exp;
  }
};

}  // namespace

WisdomMatch WisdomStore::find(const WisdomKey& key,
                              const AttrShares* probe) const {
  if (const WisdomRecord* exact = lookup(key))
    return {exact, MatchKind::Exact};

  // Fallback never crosses kernel or machine — a config tuned for another
  // source or another pipeline model is not a near answer, it is a wrong
  // one.  Same-context candidates always beat other-context ones; within a
  // tier, FallbackRank prefers the performance-nearest record (cosine over
  // attribution vectors) and degrades to nearest-N when either the query
  // or the record carries no vector.
  const int wantExp = nClassExponent(key.nClass);
  const WisdomRecord* bestSameCtx = nullptr;
  const WisdomRecord* bestOtherCtx = nullptr;
  FallbackRank bestSameRank, bestOtherRank;
  bool sameByAttr = false, otherByAttr = false;
  for (const auto& [k, rec] : records_) {
    if (rec.key.sourceHash != key.sourceHash ||
        rec.key.machine != key.machine)
      continue;
    FallbackRank rank;
    rank.exp = nClassExponent(rec.key.nClass);
    rank.nDist = wantExp < 0 || rank.exp < 0 ? 1 << 20
                                             : std::abs(rank.exp - wantExp);
    if (probe != nullptr) rank.cosDist = attrCosineDistance(*probe, rec.attrShare);
    const bool byAttr = rank.cosDist < 2.0;
    if (rec.key.context == key.context) {
      if (bestSameCtx == nullptr || rank.betterThan(bestSameRank)) {
        bestSameCtx = &rec;
        bestSameRank = rank;
        sameByAttr = byAttr;
      }
    } else if (bestOtherCtx == nullptr || rank.betterThan(bestOtherRank)) {
      bestOtherCtx = &rec;
      bestOtherRank = rank;
      otherByAttr = byAttr;
    }
  }
  if (bestSameCtx != nullptr)
    return {bestSameCtx,
            sameByAttr ? MatchKind::AttrSimilar : MatchKind::NearNClass};
  if (bestOtherCtx != nullptr)
    return {bestOtherCtx,
            otherByAttr ? MatchKind::AttrSimilar : MatchKind::NearContext};
  return {nullptr, MatchKind::Exact};
}

std::vector<const WisdomRecord*> WisdomStore::records() const {
  std::vector<const WisdomRecord*> out;
  out.reserve(records_.size());
  for (const auto& [key, rec] : records_) out.push_back(&rec);
  return out;
}

}  // namespace ifko::wisdom
