#include "sim/memsys.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace ifko::sim {

MemSystem::MemSystem(const arch::MachineConfig& cfg)
    : cfg_(cfg), line_bytes_(cfg.lineBytes()) {
  for (const auto& lc : cfg.caches) {
    Level level;
    level.cfg = lc;
    level.numSets = lc.sizeBytes / (lc.lineBytes * lc.assoc);
    assert(level.numSets > 0);
    level.lines.resize(static_cast<size_t>(level.numSets) * lc.assoc);
    levels_.push_back(std::move(level));
  }
}

MemSystem::Line* MemSystem::Level::find(uint64_t laddr) {
  uint64_t set = (laddr / cfg.lineBytes) % static_cast<uint64_t>(numSets);
  Line* base = lines.data() + set * cfg.assoc;
  for (int i = 0; i < cfg.assoc; ++i)
    if (base[i].valid && base[i].tag == laddr) return &base[i];
  return nullptr;
}

MemSystem::Line* MemSystem::findL1(uint64_t laddr) {
  // Tags are unique within a level (installLine dedupes), and a tag can only
  // live in its own set, so a valid tag match IS the line find would return.
  if (Line* m = l1_memo_[0]; m != nullptr && m->valid && m->tag == laddr)
    return m;
  if (Line* m = l1_memo_[1]; m != nullptr && m->valid && m->tag == laddr) {
    std::swap(l1_memo_[0], l1_memo_[1]);
    return m;
  }
  Line* f = levels_[0].find(laddr);
  if (f != nullptr) {
    l1_memo_[1] = l1_memo_[0];
    l1_memo_[0] = f;
  }
  return f;
}

MemSystem::Line& MemSystem::Level::victim(uint64_t laddr) {
  uint64_t set = (laddr / cfg.lineBytes) % static_cast<uint64_t>(numSets);
  Line* base = lines.data() + set * cfg.assoc;
  // Invalid way first; then the oldest non-temporal line (prefetchnta marks
  // its fills as first-out); then plain LRU.
  Line* oldestNt = nullptr;
  Line* oldest = base;
  for (int i = 0; i < cfg.assoc; ++i) {
    if (!base[i].valid) return base[i];
    if (base[i].nt && (oldestNt == nullptr || base[i].lastUse < oldestNt->lastUse))
      oldestNt = &base[i];
    if (base[i].lastUse < oldest->lastUse) oldest = &base[i];
  }
  return oldestNt != nullptr ? *oldestNt : *oldest;
}

uint64_t MemSystem::busAcquire(uint64_t now, BusDir dir) {
  return busAcquireImpl(now, dir, /*buffered=*/false);
}

uint64_t MemSystem::busAcquireImpl(uint64_t now, BusDir dir, bool buffered) {
  const uint64_t cycles = static_cast<uint64_t>(std::llround(
      static_cast<double>(line_bytes_) / cfg_.busBytesPerCycle));
  stats_.busBytes += static_cast<uint64_t>(line_bytes_);
  if (buffered) {
    // Buffered writes (writebacks, WC flushes) are pure bandwidth
    // consumers: they extend the bus schedule from wherever it stands and
    // never synchronize with the (possibly late) request time -- the
    // controller drains them opportunistically.
    bus_last_dir_ = dir;
    bus_free_ += cycles;
    return bus_free_ - cycles;
  }
  uint64_t start = std::max(now, bus_free_);
  // A read that follows written data pays the turnaround (DRAM
  // write-to-read).  This asymmetry is what block fetch exploits by
  // grouping reads before writes.
  if (dir == BusDir::Read && bus_last_dir_ == BusDir::Write)
    start += static_cast<uint64_t>(cfg_.busTurnaround);
  bus_last_dir_ = dir;
  bus_free_ = start + cycles;
  return start;
}

void MemSystem::installLine(Level& level, uint64_t laddr, uint64_t now,
                            uint64_t fillReady, bool dirty, bool exclusive,
                            bool ntHint, bool prefetched) {
  if (laddr == nt_uncached_line_) nt_uncached_line_ = UINT64_MAX;
  if (Line* hit = level.find(laddr)) {
    hit->dirty = hit->dirty || dirty;
    hit->exclusive = hit->exclusive || exclusive;
    hit->fillReady = std::max(hit->fillReady, fillReady);
    hit->lastUse = use_counter_++;
    hit->nt = hit->nt && ntHint;
    hit->pref = hit->pref && prefetched;
    return;
  }
  Line& v = level.victim(laddr);
  if (v.valid) {
    // Per-level eviction accounting (the dirty ones also write back below).
    if (&level == &levels_[0])
      ++stats_.evictL1;
    else
      ++stats_.evictL2;
  }
  if (v.valid && v.dirty) {
    // Writeback: buffered by the controller, occupies bandwidth but causes
    // no read/write turnaround and nothing waits on it.
    busAcquireImpl(now, BusDir::Write, /*buffered=*/true);
    ++stats_.writebacks;
  }
  v.valid = true;
  v.tag = laddr;
  v.dirty = dirty;
  v.exclusive = exclusive;
  v.fillReady = fillReady;
  // Non-temporal fills are marked first-out (prefetchnta's "nearest cache,
  // do not pollute" behaviour) but age normally among themselves.
  v.nt = ntHint;
  v.pref = prefetched;
  v.lastUse = use_counter_++;
}

void MemSystem::noteDemandHit(Line& line) {
  if (line.pref) {
    line.pref = false;
    ++stats_.prefUseful;
  }
}

uint64_t MemSystem::fetchLine(uint64_t laddr, uint64_t now, bool forWrite,
                              bool intoL1, bool intoL2, bool ntHint,
                              bool isPrefetch) {
  // Deduplicate against in-flight fills.
  for (auto& e : inflight_) {
    if (e.first != laddr) continue;
    uint64_t ready = e.second;
    if (ready <= now) {
      e = inflight_.back();
      inflight_.pop_back();
    }
    return std::max(ready, now);
  }
  // MSHR capacity: block until a slot frees (drop stale entries first).
  for (;;) {
    for (size_t i = 0; i < inflight_.size();) {
      if (inflight_[i].second <= now) {
        inflight_[i] = inflight_.back();
        inflight_.pop_back();
      } else {
        ++i;
      }
    }
    if (inflight_.size() <
        static_cast<size_t>(cfg_.maxOutstandingMisses))
      break;
    // Wait for the earliest outstanding fill.
    uint64_t earliest = UINT64_MAX;
    for (const auto& [a, t] : inflight_) earliest = std::min(earliest, t);
    now = std::max(now, earliest);
  }
  uint64_t grant = busAcquire(now, BusDir::Read);
  uint64_t ready = grant + static_cast<uint64_t>(cfg_.memLatency);
  inflight_.emplace_back(laddr, ready);
  ++stats_.loadMissMem;
#ifdef IFKO_DEBUG_MEM
  std::fprintf(stderr,
               "fetch %#llx now=%llu grant=%llu ready=%llu inflight=%zu\n",
               (unsigned long long)laddr, (unsigned long long)now,
               (unsigned long long)grant, (unsigned long long)ready,
               inflight_.size());
#endif
  if (intoL2 && levels_.size() > 1)
    installLine(levels_[1], laddr, now, ready, forWrite && false, forWrite,
                ntHint && !intoL1, isPrefetch);
  if (intoL1)
    installLine(levels_[0], laddr, now, ready, false, forWrite, ntHint,
                isPrefetch);
  return ready;
}

uint64_t MemSystem::load(uint64_t addr, uint32_t bytes, uint64_t now) {
  ++stats_.loads;
  uint64_t laddr = lineAddr(addr);
  // A 16-byte access can straddle two lines only if misaligned; kernels keep
  // vectors aligned, so model the access by its first line.
  (void)bytes;
  Level& l1 = levels_[0];
  if (Line* hit = findL1(laddr)) {
    hit->lastUse = use_counter_++;
    ++stats_.loadHitL1;
    noteDemandHit(*hit);
    last_service_ = Service::L1;
    return std::max(now + l1.cfg.latency, hit->fillReady + l1.cfg.latency);
  }
  ++stats_.loadMissL1;
  trainHwPrefetcher(laddr, now);
  if (levels_.size() > 1) {
    Level& l2 = levels_[1];
    if (Line* hit = l2.find(laddr)) {
      hit->lastUse = use_counter_++;
      ++stats_.loadHitL2;
      noteDemandHit(*hit);
      last_service_ = Service::L2;
      uint64_t ready =
          std::max(now + l2.cfg.latency,
                   hit->fillReady + static_cast<uint64_t>(l2.cfg.latency));
      installLine(l1, laddr, now, ready, false, hit->exclusive, false);
      return ready;
    }
  }
  uint64_t ready = fetchLine(laddr, now, /*forWrite=*/false, /*intoL1=*/true,
                             /*intoL2=*/true, /*ntHint=*/false);
  last_service_ = Service::Mem;
  return std::max(ready, now + l1.cfg.latency);
}

void MemSystem::trainHwPrefetcher(uint64_t laddr, uint64_t now) {
  if (cfg_.hwPrefetchDepth <= 0) return;
  // Find a stream this miss continues.
  Stream* match = nullptr;
  for (auto& s : streams_)
    if (s.streak > 0 &&
        laddr == s.lastLine + static_cast<uint64_t>(line_bytes_))
      match = &s;
  if (match == nullptr) {
    // Start (or restart) a stream in the least recently used slot.
    Stream* victim = &streams_[0];
    for (auto& s : streams_)
      if (s.lastUse < victim->lastUse) victim = &s;
    victim->lastLine = laddr;
    victim->streak = 1;
    victim->lastUse = ++use_counter_;
    return;
  }
  match->lastLine = laddr;
  match->streak += 1;
  match->lastUse = ++use_counter_;
  if (match->streak < cfg_.hwPrefetchTrainStreak) return;

  for (int d = 1; d <= cfg_.hwPrefetchDepth; ++d) {
    uint64_t target = laddr + static_cast<uint64_t>(d) *
                                  static_cast<uint64_t>(line_bytes_);
    // Like the 2005 hardware, the stream prefetcher does not cross 4KB
    // page boundaries (software prefetch does -- one of its advantages).
    if ((target >> 12) != (laddr >> 12)) break;
    if (levels_.size() > 1 && levels_[1].find(target) != nullptr) continue;
    if (levels_[0].find(target) != nullptr) continue;
    bool inFlight = false;
    for (const auto& [a, t] : inflight_) inFlight |= a == target;
    if (inFlight) continue;
    if (inflight_.size() >= static_cast<size_t>(cfg_.maxOutstandingMisses))
      break;
    if (bus_free_ > now + static_cast<uint64_t>(cfg_.prefetchDropBacklog))
      break;  // like software prefetch, throttled when the bus is backed up
    ++stats_.hwPrefetches;
    fetchLine(target, now, /*forWrite=*/false, /*intoL1=*/false,
              /*intoL2=*/true, /*ntHint=*/false, /*isPrefetch=*/true);
  }
}

uint64_t MemSystem::store(uint64_t addr, uint32_t bytes, uint64_t now) {
  ++stats_.stores;
  (void)bytes;
  uint64_t laddr = lineAddr(addr);

  // Store buffer: commits are asynchronous until the buffer fills.
  auto reserveSlot = [&](uint64_t ready) -> uint64_t {
    store_buffer_.push_back(ready);
    if (store_buffer_.size() <= static_cast<size_t>(cfg_.storeBufferEntries))
      return now + 1;
    // Oldest entry must drain first.
    auto oldest = std::min_element(store_buffer_.begin(), store_buffer_.end());
    uint64_t wait = *oldest;
    store_buffer_.erase(oldest);
    return std::max(now + 1, wait);
  };

  Level& l1 = levels_[0];
  Line* l1hit = findL1(laddr);
  if (l1hit == nullptr) trainHwPrefetcher(laddr, now);
  if (Line* hit = l1hit) {
    hit->lastUse = use_counter_++;
    ++stats_.storeHitL1;
    noteDemandHit(*hit);
    last_service_ = Service::L1;
    uint64_t extra = 0;
    if (!hit->exclusive) {
      // Ownership upgrade: short address-only transaction; costs the store
      // a few cycles but transfers no data.
      extra = 4;
      hit->exclusive = true;
    }
    hit->dirty = true;
    return reserveSlot(std::max(hit->fillReady, now + 1 + extra));
  }
  if (levels_.size() > 1) {
    Level& l2 = levels_[1];
    if (Line* hit = l2.find(laddr)) {
      hit->lastUse = use_counter_++;
      ++stats_.storeHitL2;
      noteDemandHit(*hit);
      last_service_ = Service::L2;
      uint64_t extra = 0;
      if (!hit->exclusive) {
        extra = 4;
        hit->exclusive = true;
      }
      hit->dirty = true;
      installLine(l1, laddr, now, hit->fillReady, true, true, false);
      return reserveSlot(std::max(hit->fillReady, now + 1 + extra));
    }
  }
  // Write-allocate miss: read-for-ownership fetch, then the store commits.
  ++stats_.storeRFOs;
  uint64_t ready = fetchLine(laddr, now, /*forWrite=*/true, /*intoL1=*/true,
                             /*intoL2=*/true, /*ntHint=*/false);
  last_service_ = Service::Mem;
  if (Line* hit = l1.find(laddr)) hit->dirty = true;
  return reserveSlot(ready);
}

void MemSystem::flushWC(uint64_t now, size_t idx) {
  WcEntry& e = wc_[idx];
  if (e.line == UINT64_MAX) return;
  // Partial lines transfer at full line cost (uncombined WC flush); any
  // pending NT-flush penalty is charged to the bus here.
  bus_free_ += wc_extra_delay_;
  busAcquireImpl(now, BusDir::Write, /*buffered=*/true);
  e.line = UINT64_MAX;
  e.bytes = 0;
  wc_extra_delay_ = 0;
}

uint64_t MemSystem::storeNT(uint64_t addr, uint32_t bytes, uint64_t now) {
  ++stats_.ntStores;
  uint64_t laddr = lineAddr(addr);

  // NT stores bypass the caches; a line that is currently cached must be
  // invalidated (and on machines where NT interacts poorly with cached
  // read-modify-write streams, pay the flush penalty).  A streaming NT
  // store revisits the line it just invalidated: the cache walk is skipped
  // while the line is provably absent (installLine clears the memo).
  if (laddr != nt_uncached_line_) {
    bool wasCached = false;
    for (auto& level : levels_) {
      if (Line* hit = level.find(laddr)) {
        wasCached = true;
        if (hit->dirty) {
          busAcquireImpl(now, BusDir::Write, /*buffered=*/true);
          ++stats_.writebacks;
        }
        hit->valid = false;
      }
    }
    if (wasCached && !cfg_.ntStoreCheapWhenCached) {
      ++stats_.ntFlushes;
      wc_extra_delay_ += static_cast<uint64_t>(cfg_.ntFlushPenalty);
    }
    nt_uncached_line_ = laddr;
  }

  if (wc_.empty()) wc_.resize(static_cast<size_t>(cfg_.wcBuffers));
  size_t slot = SIZE_MAX;
  for (size_t i = 0; i < wc_.size(); ++i)
    if (wc_[i].line == laddr) slot = i;
  if (slot == SIZE_MAX) {
    // Take a free buffer, or evict (flush) the least recently used one.
    for (size_t i = 0; i < wc_.size() && slot == SIZE_MAX; ++i)
      if (wc_[i].line == UINT64_MAX) slot = i;
    if (slot == SIZE_MAX) {
      slot = 0;
      for (size_t i = 1; i < wc_.size(); ++i)
        if (wc_[i].lastUse < wc_[slot].lastUse) slot = i;
      flushWC(now, slot);
    }
    wc_[slot].line = laddr;
    wc_[slot].bytes = 0;
  }
  wc_[slot].bytes += bytes;
  wc_[slot].lastUse = ++use_counter_;
  if (wc_[slot].bytes >= static_cast<uint32_t>(line_bytes_)) flushWC(now, slot);
  return now + 1;
}

void MemSystem::prefetch(ir::PrefKind kind, uint64_t addr, uint64_t now) {
  uint64_t laddr = lineAddr(addr);
  // Already resident or in flight: nothing to do (not counted as dropped).
  if (findL1(laddr) != nullptr) return;
  bool l2Resident = levels_.size() > 1 && levels_[1].find(laddr) != nullptr;
  for (const auto& [a, t] : inflight_)
    if (a == laddr) return;

  // The drop rule: a busy bus or full MSHRs silently discards the prefetch.
  for (size_t i = 0; i < inflight_.size();) {
    if (inflight_[i].second <= now) {
      inflight_[i] = inflight_.back();
      inflight_.pop_back();
    } else {
      ++i;
    }
  }
  if (inflight_.size() >= static_cast<size_t>(cfg_.maxOutstandingMisses) ||
      bus_free_ > now + static_cast<uint64_t>(cfg_.prefetchDropBacklog)) {
    ++stats_.prefDropped;
    return;
  }

  bool intoL1 = kind != ir::PrefKind::T1;
  bool intoL2 = kind == ir::PrefKind::T0 || kind == ir::PrefKind::T1 ||
                kind == ir::PrefKind::W;
  bool ntHint = kind == ir::PrefKind::NTA;
  bool forWrite = kind == ir::PrefKind::W;
  ++stats_.prefIssued;
  if (l2Resident) {
    // L2 -> L1 move: no memory traffic, just install.
    Line* hit = levels_[1].find(laddr);
    if (intoL1)
      installLine(levels_[0], laddr, now, now + levels_[1].cfg.latency, false,
                  hit->exclusive, ntHint, /*prefetched=*/true);
    return;
  }
  fetchLine(laddr, now, forWrite, intoL1, intoL2, ntHint, /*isPrefetch=*/true);
}

void MemSystem::warm(uint64_t addr, uint64_t bytes) {
  uint64_t first = lineAddr(addr);
  uint64_t last = lineAddr(addr + (bytes == 0 ? 0 : bytes - 1));
  for (uint64_t laddr = first; laddr <= last;
       laddr += static_cast<uint64_t>(line_bytes_)) {
    for (auto& level : levels_)
      installLine(level, laddr, 0, 0, false, true, false);
  }
}

}  // namespace ifko::sim
