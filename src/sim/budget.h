// Cooperative per-evaluation deadline for the co-simulated machine.
//
// Empirical search must survive candidates that hang (paper §3: the timer
// keeps going even when a transformation misbehaves).  Wall-clock timers
// cannot give reproducible verdicts — the same candidate would pass on a
// fast host and time out on a loaded one — so the deadline is counted in
// *simulated work*: interpreter steps (sim::Interp charges one per dynamic
// instruction) and completion cycles (sim::TimingModel checks its clock as
// it retires).  Exceeding either cap throws TimeoutError, which the
// guarded evaluation path (search/faultguard.h) converts into a structured
// Timeout outcome.  The budget is a thread-local scope, so worker threads
// in the orchestrator pool meter their own candidate without touching the
// simulator call signatures.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ifko::sim {

/// A candidate evaluation exceeded its cooperative step/cycle budget.
/// Deliberately its own type: the guarded evaluator must tell a deadline
/// (Timeout, possibly transient) from a machine fault (Crash).
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
/// The thread's active budget; interp/timing cache the pointer once per run
/// so the per-instruction charge is one decrement, not a TLS lookup.
struct EvalBudgetState {
  uint64_t stepsLeft = 0;  ///< remaining interpreter steps
  uint64_t cycleCap = 0;   ///< timing-model completion-cycle ceiling
};

/// The budget installed on the current thread, or nullptr.
[[nodiscard]] EvalBudgetState* currentEvalBudget();
}  // namespace detail

/// RAII: installs a step/cycle budget on the current thread for the
/// duration of the scope.  Scopes nest; the innermost wins.
class ScopedEvalBudget {
 public:
  ScopedEvalBudget(uint64_t maxSteps, uint64_t cycleCap);
  ~ScopedEvalBudget();
  ScopedEvalBudget(const ScopedEvalBudget&) = delete;
  ScopedEvalBudget& operator=(const ScopedEvalBudget&) = delete;

  [[nodiscard]] static bool active();
  /// Charges `n` interpreter steps against the current thread's budget
  /// (no-op when none is installed).  Throws TimeoutError on exhaustion.
  static void chargeSteps(uint64_t n);
  /// Reports a timing-model completion cycle; throws TimeoutError when it
  /// passes the cap (no-op when no budget is installed).
  static void checkCycles(uint64_t completionCycle);

 private:
  detail::EvalBudgetState state_;
  detail::EvalBudgetState* prev_;
};

}  // namespace ifko::sim
