// The timer from the paper's Figure 1 (standing in for the ATLAS L1 BLAS
// kernel timers): runs a compiled kernel on the co-simulated machine and
// reports cycle-accurate results.
//
// Two usage contexts from the paper's evaluation:
//  * OutOfCache: operands start uncached (N=80000 in the paper);
//  * InL2: operands are pre-loaded into the caches before timing (N=1024),
//    the ATLAS timers' cache-warming protocol.
//
// The simulator is deterministic, so the paper's repeat-six-take-minimum
// protocol collapses to a single run.
#pragma once

#include "arch/machine.h"
#include "ir/function.h"
#include "kernels/registry.h"
#include "kernels/tester.h"
#include "sim/decode.h"
#include "sim/memsys.h"
#include "sim/timing.h"

namespace ifko::sim {

enum class TimeContext { OutOfCache, InL2 };

struct TimeResult {
  uint64_t cycles = 0;
  uint64_t dynInsts = 0;
  MemSystem::Stats mem;
  TimingModel::Stats core;
  Attribution attr;  ///< per-cause cycle attribution; attr.total() == cycles

  /// MFLOPS given the FLOP count charged for the run.
  [[nodiscard]] double mflops(double flops, double ghz) const {
    if (cycles == 0) return 0;
    return flops * ghz * 1000.0 / static_cast<double>(cycles);
  }
};

/// Times `fn` (a compiled kernel for `spec`) at length `n`.
///
/// `loopN` (0 = n) truncates the *iteration count* while the operands stay
/// sized at `n`: the run is then an exact prefix of the full-length run —
/// identical addresses, identical code — which is what the screen-then-
/// confirm policy (search/evalpipeline.h) ranks candidates by.  `tmpl`, when
/// non-null, is a pristine operand image for (spec, n, seed) that is cloned
/// instead of re-generating the data; the clone is bit-identical to a fresh
/// makeKernelData, just cheaper.
[[nodiscard]] TimeResult timeKernel(const arch::MachineConfig& machine,
                                    const ir::Function& fn,
                                    const kernels::KernelSpec& spec, int64_t n,
                                    TimeContext ctx, uint64_t seed = 42,
                                    int64_t loopN = 0,
                                    const kernels::KernelData* tmpl = nullptr);

/// Fast-path variant over the pre-decoded form (sim/decode.h).  Produces
/// bit-identical results to the ir::Function overload for the same kernel.
[[nodiscard]] TimeResult timeKernel(const arch::MachineConfig& machine,
                                    const DecodedFunction& dfn,
                                    const kernels::KernelSpec& spec, int64_t n,
                                    TimeContext ctx, uint64_t seed = 42,
                                    int64_t loopN = 0,
                                    const kernels::KernelData* tmpl = nullptr);

[[nodiscard]] std::string_view contextName(TimeContext ctx);

}  // namespace ifko::sim
