#include "sim/decode.h"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "sim/budget.h"

namespace ifko::sim {

using ir::Op;
using ir::Scal;

namespace {

// Mirrors the interpreter's private Flags helper; the decoded loop must make
// identical branch decisions.
struct Flags {
  bool lt = false;
  bool eq = false;

  [[nodiscard]] bool test(ir::Cond c) const {
    switch (c) {
      case ir::Cond::EQ: return eq;
      case ir::Cond::NE: return !eq;
      case ir::Cond::LT: return lt;
      case ir::Cond::LE: return lt || eq;
      case ir::Cond::GT: return !lt && !eq;
      case ir::Cond::GE: return !lt;
    }
    return false;
  }
};

}  // namespace

DecodedFunction decodeFunction(const ir::Function& fn,
                               const arch::MachineConfig& machine) {
  DecodedFunction out;
  out.params = fn.params;
  out.retType = fn.retType;
  out.regAllocated = fn.regAllocated;
  out.numSpillSlots = fn.numSpillSlots;
  out.maxIntReg = fn.maxIntReg();
  out.maxFpReg = fn.maxFpReg();
  out.numBlocks = fn.blocks.size();

  // Flat start index of each block in layout order.  A branch to an empty
  // block resolves to the first instruction after it, which is exactly where
  // the interpreter's fall-through walk would land.
  std::unordered_map<int32_t, uint32_t> start;
  start.reserve(fn.blocks.size());
  uint32_t idx = 0;
  for (const auto& bb : fn.blocks) {
    start[bb.id] = idx;
    idx += static_cast<uint32_t>(bb.insts.size());
  }
  out.insts.reserve(idx);

  for (const auto& bb : fn.blocks) {
    for (size_t i = 0; i < bb.insts.size(); ++i) {
      DecodedInst d;
      d.inst = bb.insts[i];
      d.pcId = (static_cast<uint64_t>(bb.id) << 20) | i;
      d.cost = instCost(d.inst, machine);
      if (d.inst.op == Op::Jmp || d.inst.op == Op::Jcc) {
        auto it = start.find(d.inst.label);
        if (it == start.end())
          throw std::runtime_error("decodeFunction: branch to unknown block");
        d.target = it->second;
      }
      out.insts.push_back(d);
    }
  }
  return out;
}

RunResult runDecoded(const DecodedFunction& dfn, Memory& mem,
                     std::span<const ArgValue> args, TimingModel* timing,
                     uint64_t maxDynInsts) {
  if (args.size() != dfn.params.size())
    throw std::runtime_error("Interp::run: argument count mismatch");
  if (dfn.empty()) throw std::runtime_error("Interp::run: empty function");

  const size_t nInt = std::max<size_t>(dfn.maxIntReg, ir::kVirtBase);
  const size_t nFp = std::max<size_t>(dfn.maxFpReg, ir::kVirtBase);
  std::vector<int64_t> iregs(nInt, 0);
  std::vector<VReg16> fregs(nFp);
  Flags flags;

  if (dfn.regAllocated && dfn.numSpillSlots > 0) {
    uint64_t base =
        mem.allocate(static_cast<size_t>(dfn.numSpillSlots) * 16, 16);
    iregs[ir::kSpillBaseReg] = static_cast<int64_t>(base);
  }

  for (size_t i = 0; i < dfn.params.size(); ++i) {
    const ir::Param& p = dfn.params[i];
    if (p.kind == ir::ParamKind::ScalF32) {
      fregs[p.reg.id].setF(0, static_cast<float>(std::get<double>(args[i])));
    } else if (p.kind == ir::ParamKind::ScalF64) {
      fregs[p.reg.id].setD(0, std::get<double>(args[i]));
    } else {
      iregs[p.reg.id] = std::get<int64_t>(args[i]);
    }
  }

  auto effAddr = [&](const ir::Mem& m) -> uint64_t {
    int64_t a = iregs[m.base.id];
    if (m.hasIndex()) a += iregs[m.index.id] * m.scale;
    return static_cast<uint64_t>(a + m.disp);
  };

  RunResult result;
  size_t pc = 0;
  uint64_t dyn = 0;
  detail::EvalBudgetState* budget = detail::currentEvalBudget();

  while (true) {
    if (pc >= dfn.insts.size())
      throw std::runtime_error("Interp: fell off end of function");
    const DecodedInst& di = dfn.insts[pc];
    const ir::Inst& in = di.inst;
    if (++dyn > maxDynInsts)
      throw std::runtime_error("Interp: dynamic instruction budget exceeded");
    if (budget != nullptr) {
      if (budget->stepsLeft == 0)
        throw TimeoutError("evaluation exceeded its interpreter step budget");
      --budget->stepsLeft;
    }

    InstEvent ev;
    ev.inst = &in;
    ev.pcId = di.pcId;

    bool jumped = false;
    switch (in.op) {
      case Op::IMovI: iregs[in.dst.id] = in.imm; break;
      case Op::IMov: iregs[in.dst.id] = iregs[in.src1.id]; break;
      case Op::IAdd: iregs[in.dst.id] = iregs[in.src1.id] + iregs[in.src2.id]; break;
      case Op::ISub: iregs[in.dst.id] = iregs[in.src1.id] - iregs[in.src2.id]; break;
      case Op::IMul: iregs[in.dst.id] = iregs[in.src1.id] * iregs[in.src2.id]; break;
      case Op::IAddI: iregs[in.dst.id] = iregs[in.src1.id] + in.imm; break;
      case Op::IShlI: iregs[in.dst.id] = iregs[in.src1.id] << in.imm; break;
      case Op::IAddCC: {
        int64_t v = iregs[in.src1.id] + in.imm;
        iregs[in.dst.id] = v;
        flags.lt = v < 0;
        flags.eq = v == 0;
        break;
      }
      case Op::ICmp: {
        int64_t a = iregs[in.src1.id], b = iregs[in.src2.id];
        flags.lt = a < b;
        flags.eq = a == b;
        break;
      }
      case Op::ICmpI: {
        int64_t a = iregs[in.src1.id];
        flags.lt = a < in.imm;
        flags.eq = a == in.imm;
        break;
      }
      case Op::ILd: {
        uint64_t a = effAddr(in.mem);
        ev.addr = a;
        ev.accessBytes = 8;
        iregs[in.dst.id] = mem.read<int64_t>(a);
        break;
      }
      case Op::ISt: {
        uint64_t a = effAddr(in.mem);
        ev.addr = a;
        ev.accessBytes = 8;
        mem.write<int64_t>(a, iregs[in.src1.id]);
        break;
      }
      case Op::Jmp:
        pc = di.target;
        jumped = true;
        ev.taken = true;
        break;
      case Op::Jcc: {
        bool taken = flags.test(in.cc);
        ev.taken = taken;
        if (taken) {
          pc = di.target;
          jumped = true;
        }
        break;
      }
      case Op::Ret:
        if (dfn.retType == ir::RetType::Int)
          result.intResult = iregs[in.src1.id];
        else if (dfn.retType == ir::RetType::F32)
          result.fpResult = static_cast<double>(fregs[in.src1.id].f(0));
        else if (dfn.retType == ir::RetType::F64)
          result.fpResult = fregs[in.src1.id].d(0);
        result.dynInsts = dyn;
        if (timing) timing->onDecodedInst(ev, di.cost);
        return result;

      // --- scalar FP ---
      case Op::FLdI:
        if (in.type == Scal::F32)
          fregs[in.dst.id].setF(0, static_cast<float>(in.fimm));
        else
          fregs[in.dst.id].setD(0, in.fimm);
        break;
      case Op::FMov: fregs[in.dst.id] = fregs[in.src1.id]; break;
      case Op::FLd: {
        uint64_t a = effAddr(in.mem);
        ev.addr = a;
        ev.accessBytes = scalBytes(in.type);
        if (in.type == Scal::F32)
          fregs[in.dst.id].setF(0, mem.read<float>(a));
        else
          fregs[in.dst.id].setD(0, mem.read<double>(a));
        break;
      }
      case Op::FSt:
      case Op::FStNT: {
        uint64_t a = effAddr(in.mem);
        ev.addr = a;
        ev.accessBytes = scalBytes(in.type);
        if (in.type == Scal::F32)
          mem.write<float>(a, fregs[in.src1.id].f(0));
        else
          mem.write<double>(a, fregs[in.src1.id].d(0));
        break;
      }
      case Op::FAdd:
      case Op::FSub:
      case Op::FMul:
      case Op::FDiv:
      case Op::FMax: {
        if (in.type == Scal::F32) {
          float a = fregs[in.src1.id].f(0), b = fregs[in.src2.id].f(0), r = 0;
          switch (in.op) {
            case Op::FAdd: r = a + b; break;
            case Op::FSub: r = a - b; break;
            case Op::FMul: r = a * b; break;
            case Op::FDiv: r = a / b; break;
            case Op::FMax: r = a > b ? a : b; break;
            default: break;
          }
          fregs[in.dst.id].setF(0, r);
        } else {
          double a = fregs[in.src1.id].d(0), b = fregs[in.src2.id].d(0), r = 0;
          switch (in.op) {
            case Op::FAdd: r = a + b; break;
            case Op::FSub: r = a - b; break;
            case Op::FMul: r = a * b; break;
            case Op::FDiv: r = a / b; break;
            case Op::FMax: r = a > b ? a : b; break;
            default: break;
          }
          fregs[in.dst.id].setD(0, r);
        }
        break;
      }
      case Op::FAbs:
        if (in.type == Scal::F32)
          fregs[in.dst.id].setF(0, std::fabs(fregs[in.src1.id].f(0)));
        else
          fregs[in.dst.id].setD(0, std::fabs(fregs[in.src1.id].d(0)));
        break;
      case Op::FNeg:
        if (in.type == Scal::F32)
          fregs[in.dst.id].setF(0, -fregs[in.src1.id].f(0));
        else
          fregs[in.dst.id].setD(0, -fregs[in.src1.id].d(0));
        break;
      case Op::FAddM:
      case Op::FMulM: {
        uint64_t a = effAddr(in.mem);
        ev.addr = a;
        ev.accessBytes = scalBytes(in.type);
        if (in.type == Scal::F32) {
          float m = mem.read<float>(a), s = fregs[in.src1.id].f(0);
          fregs[in.dst.id].setF(0, in.op == Op::FAddM ? s + m : s * m);
        } else {
          double m = mem.read<double>(a), s = fregs[in.src1.id].d(0);
          fregs[in.dst.id].setD(0, in.op == Op::FAddM ? s + m : s * m);
        }
        break;
      }
      case Op::FCmp: {
        if (in.type == Scal::F32) {
          float a = fregs[in.src1.id].f(0), b = fregs[in.src2.id].f(0);
          flags.lt = a < b;
          flags.eq = a == b;
        } else {
          double a = fregs[in.src1.id].d(0), b = fregs[in.src2.id].d(0);
          flags.lt = a < b;
          flags.eq = a == b;
        }
        break;
      }

      // --- vector ---
      case Op::VLd: {
        uint64_t a = effAddr(in.mem);
        ev.addr = a;
        ev.accessBytes = ir::kVecBytes;
        mem.readBytes(a, fregs[in.dst.id].b.data(), ir::kVecBytes);
        break;
      }
      case Op::VSt:
      case Op::VStNT: {
        uint64_t a = effAddr(in.mem);
        ev.addr = a;
        ev.accessBytes = ir::kVecBytes;
        mem.writeBytes(a, fregs[in.src1.id].b.data(), ir::kVecBytes);
        break;
      }
      case Op::VMov: fregs[in.dst.id] = fregs[in.src1.id]; break;
      case Op::VAdd:
      case Op::VSub:
      case Op::VMul:
      case Op::VMax: {
        VReg16 r;
        if (in.type == Scal::F32) {
          for (int l = 0; l < 4; ++l) {
            float a = fregs[in.src1.id].f(l), b = fregs[in.src2.id].f(l), v = 0;
            switch (in.op) {
              case Op::VAdd: v = a + b; break;
              case Op::VSub: v = a - b; break;
              case Op::VMul: v = a * b; break;
              case Op::VMax: v = a > b ? a : b; break;
              default: break;
            }
            r.setF(l, v);
          }
        } else {
          for (int l = 0; l < 2; ++l) {
            double a = fregs[in.src1.id].d(l), b = fregs[in.src2.id].d(l), v = 0;
            switch (in.op) {
              case Op::VAdd: v = a + b; break;
              case Op::VSub: v = a - b; break;
              case Op::VMul: v = a * b; break;
              case Op::VMax: v = a > b ? a : b; break;
              default: break;
            }
            r.setD(l, v);
          }
        }
        fregs[in.dst.id] = r;
        break;
      }
      case Op::VAbs: {
        VReg16 r;
        if (in.type == Scal::F32)
          for (int l = 0; l < 4; ++l) r.setF(l, std::fabs(fregs[in.src1.id].f(l)));
        else
          for (int l = 0; l < 2; ++l) r.setD(l, std::fabs(fregs[in.src1.id].d(l)));
        fregs[in.dst.id] = r;
        break;
      }
      case Op::VBcast: {
        VReg16 r;
        if (in.type == Scal::F32) {
          float v = fregs[in.src1.id].f(0);
          for (int l = 0; l < 4; ++l) r.setF(l, v);
        } else {
          double v = fregs[in.src1.id].d(0);
          for (int l = 0; l < 2; ++l) r.setD(l, v);
        }
        fregs[in.dst.id] = r;
        break;
      }
      case Op::VZero: fregs[in.dst.id] = VReg16{}; break;
      case Op::VHAdd: {
        VReg16 r;
        if (in.type == Scal::F32) {
          const VReg16& s = fregs[in.src1.id];
          r.setF(0, ((s.f(0) + s.f(1)) + (s.f(2) + s.f(3))));
        } else {
          const VReg16& s = fregs[in.src1.id];
          r.setD(0, s.d(0) + s.d(1));
        }
        fregs[in.dst.id] = r;
        break;
      }
      case Op::VHMax: {
        VReg16 r;
        if (in.type == Scal::F32) {
          const VReg16& s = fregs[in.src1.id];
          float m = s.f(0);
          for (int l = 1; l < 4; ++l) m = s.f(l) > m ? s.f(l) : m;
          r.setF(0, m);
        } else {
          const VReg16& s = fregs[in.src1.id];
          r.setD(0, s.d(0) > s.d(1) ? s.d(0) : s.d(1));
        }
        fregs[in.dst.id] = r;
        break;
      }
      case Op::VCmpGT: {
        VReg16 r;
        if (in.type == Scal::F32) {
          for (int l = 0; l < 4; ++l) {
            uint32_t m = fregs[in.src1.id].f(l) > fregs[in.src2.id].f(l)
                             ? 0xFFFFFFFFu
                             : 0u;
            std::memcpy(r.b.data() + l * 4, &m, 4);
          }
        } else {
          for (int l = 0; l < 2; ++l) {
            uint64_t m = fregs[in.src1.id].d(l) > fregs[in.src2.id].d(l)
                             ? ~0ull
                             : 0ull;
            std::memcpy(r.b.data() + l * 8, &m, 8);
          }
        }
        fregs[in.dst.id] = r;
        break;
      }
      case Op::VAnd:
      case Op::VAndN:
      case Op::VOr: {
        VReg16 r;
        for (int i = 0; i < ir::kVecBytes; ++i) {
          uint8_t a = fregs[in.src1.id].b[i], b = fregs[in.src2.id].b[i];
          r.b[i] = in.op == Op::VAnd    ? static_cast<uint8_t>(a & b)
                   : in.op == Op::VAndN ? static_cast<uint8_t>(~a & b)
                                        : static_cast<uint8_t>(a | b);
        }
        fregs[in.dst.id] = r;
        break;
      }
      case Op::VSel: {
        VReg16 r;
        for (int i = 0; i < ir::kVecBytes; ++i) {
          uint8_t m = fregs[in.src1.id].b[i];
          r.b[i] = static_cast<uint8_t>((fregs[in.src2.id].b[i] & m) |
                                        (fregs[in.src3.id].b[i] & ~m));
        }
        fregs[in.dst.id] = r;
        break;
      }
      case Op::VMovMsk: {
        int64_t mask = 0;
        if (in.type == Scal::F32) {
          for (int l = 0; l < 4; ++l) {
            uint32_t bits;
            std::memcpy(&bits, fregs[in.src1.id].b.data() + l * 4, 4);
            if (bits & 0x80000000u) mask |= (1 << l);
          }
        } else {
          for (int l = 0; l < 2; ++l) {
            uint64_t bits;
            std::memcpy(&bits, fregs[in.src1.id].b.data() + l * 8, 8);
            if (bits & (1ull << 63)) mask |= (1 << l);
          }
        }
        iregs[in.dst.id] = mask;
        break;
      }
      case Op::VExt: {
        VReg16 r;
        int lane = static_cast<int>(in.imm);
        if (in.type == Scal::F32)
          r.setF(0, fregs[in.src1.id].f(lane));
        else
          r.setD(0, fregs[in.src1.id].d(lane));
        fregs[in.dst.id] = r;
        break;
      }
      case Op::FToI:
        if (in.type == Scal::F32)
          iregs[in.dst.id] = static_cast<int64_t>(fregs[in.src1.id].f(0));
        else
          iregs[in.dst.id] = static_cast<int64_t>(fregs[in.src1.id].d(0));
        break;
      case Op::VIota: {
        VReg16 r;
        if (in.type == Scal::F32)
          for (int l = 0; l < 4; ++l) r.setF(l, static_cast<float>(l));
        else
          for (int l = 0; l < 2; ++l) r.setD(l, static_cast<double>(l));
        fregs[in.dst.id] = r;
        break;
      }
      case Op::VAddM:
      case Op::VMulM: {
        uint64_t a = effAddr(in.mem);
        ev.addr = a;
        ev.accessBytes = ir::kVecBytes;
        VReg16 m;
        mem.readBytes(a, m.b.data(), ir::kVecBytes);
        VReg16 r;
        if (in.type == Scal::F32) {
          for (int l = 0; l < 4; ++l)
            r.setF(l, in.op == Op::VAddM ? fregs[in.src1.id].f(l) + m.f(l)
                                         : fregs[in.src1.id].f(l) * m.f(l));
        } else {
          for (int l = 0; l < 2; ++l)
            r.setD(l, in.op == Op::VAddM ? fregs[in.src1.id].d(l) + m.d(l)
                                         : fregs[in.src1.id].d(l) * m.d(l));
        }
        fregs[in.dst.id] = r;
        break;
      }

      case Op::Pref:
        ev.addr = effAddr(in.mem);
        break;
      case Op::Touch: {
        uint64_t a = effAddr(in.mem);
        ev.addr = a;
        ev.accessBytes = scalBytes(in.type == Scal::I64 ? Scal::F64 : in.type);
        (void)mem.read<uint8_t>(a);
        break;
      }
      case Op::Nop:
        break;
    }

    if (timing) timing->onDecodedInst(ev, di.cost);
    if (!jumped) ++pc;
  }
}

}  // namespace ifko::sim
