// Functional interpreter for the virtual ISA.
//
// Plays two roles from the paper's Figure 1: it is the *tester* (does the
// transformed kernel still compute the right answer?) and it feeds the
// *timer*: every executed instruction is streamed to an optional observer,
// which the timing model consumes to produce a cycle count.  Functional
// semantics and timing are deliberately decoupled so each can be tested on
// its own.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "ir/function.h"
#include "sim/memory.h"

namespace ifko::sim {

/// One 16-byte xmm register value with typed lane access.
struct VReg16 {
  alignas(16) std::array<uint8_t, 16> b{};

  [[nodiscard]] double d(int lane) const {
    double v;
    std::memcpy(&v, b.data() + lane * 8, 8);
    return v;
  }
  void setD(int lane, double v) { std::memcpy(b.data() + lane * 8, &v, 8); }
  [[nodiscard]] float f(int lane) const {
    float v;
    std::memcpy(&v, b.data() + lane * 4, 4);
    return v;
  }
  void setF(int lane, float v) { std::memcpy(b.data() + lane * 4, &v, 4); }
};

/// Argument for one kernel parameter: integer/pointer or FP scalar.
using ArgValue = std::variant<int64_t, double>;

/// What the observer sees for each executed instruction.
struct InstEvent {
  const ir::Inst* inst = nullptr;
  uint64_t addr = 0;         ///< effective address for memory ops, else 0
  uint32_t accessBytes = 0;  ///< size of the memory access, 0 if none
  bool taken = false;        ///< branch outcome (conditional branches)
  uint64_t pcId = 0;         ///< stable id of the static instruction
};

class InstObserver {
 public:
  virtual ~InstObserver() = default;
  virtual void onInst(const InstEvent& ev) = 0;
};

struct RunResult {
  std::optional<int64_t> intResult;
  std::optional<double> fpResult;
  uint64_t dynInsts = 0;
};

class Interp {
 public:
  /// `fn` must outlive the interpreter.  `maxDynInsts` bounds runaway loops.
  Interp(const ir::Function& fn, Memory& mem, InstObserver* observer = nullptr,
         uint64_t maxDynInsts = 1ull << 33);

  /// Binds `args` (one per parameter, same order) and executes from the
  /// first block until Ret.  Throws std::runtime_error on machine faults
  /// (bad memory access, dynamic instruction budget exceeded).
  RunResult run(std::span<const ArgValue> args);

 private:
  const ir::Function& fn_;
  Memory& mem_;
  InstObserver* observer_;
  uint64_t max_dyn_;
};

}  // namespace ifko::sim
