// Timing model of the memory hierarchy: set-associative caches, a memory
// bus with occupancy and read/write turnaround, MSHRs, write-combining
// non-temporal stores, and the SSE/3DNow! prefetch family.
//
// Every mechanism the paper's analysis leans on is modeled explicitly:
//  * write-allocate stores do read-for-ownership on miss (why WNT wins on
//    copy: it removes one of the three bus transfers per line);
//  * prefetches are dropped when the bus backlog is deep or MSHRs are full
//    (why prefetch stops helping for bus-bound kernels like swap/axpy);
//  * NT stores to lines that are currently cached cost a flush on machines
//    with ntStoreCheapWhenCached=false (why blind WNT collapses on
//    Opteron's swap/axpy while copy's write-only Y is fine);
//  * reads and writes interleaving on the bus pay a turnaround penalty
//    (what AMD's block-fetch technique amortizes).
//
// All methods take the current cycle and return data-ready/commit cycles;
// the functional interpreter supplies addresses, so timing and semantics
// stay decoupled.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "arch/machine.h"
#include "ir/inst.h"

namespace ifko::sim {

class MemSystem {
 public:
  explicit MemSystem(const arch::MachineConfig& cfg);

  /// The level that serviced the most recent load()/store() call.  Read by
  /// the timing model immediately after each access to attribute the stall
  /// to a memory level (safe: one MemSystem is owned by one evaluation).
  enum class Service : uint8_t { None, L1, L2, Mem };
  [[nodiscard]] Service lastService() const { return last_service_; }

  /// Data-ready cycle for a load of `bytes` at `addr` executed at `now`.
  uint64_t load(uint64_t addr, uint32_t bytes, uint64_t now);
  /// Commit cycle for a write-allocate store (store buffer permitting).
  uint64_t store(uint64_t addr, uint32_t bytes, uint64_t now);
  /// Commit cycle for a non-temporal (write-combining) store.
  uint64_t storeNT(uint64_t addr, uint32_t bytes, uint64_t now);
  /// Issues (or silently drops) a prefetch of the line containing `addr`.
  void prefetch(ir::PrefKind kind, uint64_t addr, uint64_t now);

  /// Installs [addr, addr+bytes) into the caches as if previously accessed
  /// (used by the in-L2 timing context).  No stats, no bus traffic.
  void warm(uint64_t addr, uint64_t bytes);

  struct Stats {
    uint64_t loads = 0;
    uint64_t loadMissL1 = 0;
    uint64_t loadMissMem = 0;  ///< misses that went to memory
    uint64_t stores = 0;
    uint64_t storeRFOs = 0;
    uint64_t ntStores = 0;
    uint64_t ntFlushes = 0;  ///< NT stores that hit a cached line (penalized)
    uint64_t prefIssued = 0;
    uint64_t prefDropped = 0;
    uint64_t hwPrefetches = 0;
    uint64_t writebacks = 0;
    uint64_t busBytes = 0;
    // Per-level accounting (observability layer; appended so existing
    // aggregate initializers keep their field positions).
    uint64_t loadHitL1 = 0;
    uint64_t loadHitL2 = 0;   ///< L1 misses served by the L2
    uint64_t storeHitL1 = 0;
    uint64_t storeHitL2 = 0;
    uint64_t evictL1 = 0;     ///< valid lines displaced from the L1
    uint64_t evictL2 = 0;
    uint64_t prefUseful = 0;  ///< prefetched lines later hit by demand
    friend bool operator==(const Stats&, const Stats&) = default;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }

  /// Cycle at which the bus becomes idle (exposed for tests).
  [[nodiscard]] uint64_t busFreeTime() const { return bus_free_; }

 private:
  struct Line {
    uint64_t tag = 0;
    uint64_t lastUse = 0;    ///< LRU stamp (0 = prefer for eviction)
    uint64_t fillReady = 0;  ///< cycle the fill completes (in-flight lines)
    bool valid = false;
    bool dirty = false;
    bool exclusive = false;  ///< owned for writing (no upgrade needed)
    bool nt = false;         ///< non-temporal fill: preferred eviction victim
    bool pref = false;       ///< filled by a prefetch, not yet demand-hit
  };
  struct Level {
    arch::CacheLevelConfig cfg;
    int numSets = 0;
    std::vector<Line> lines;  ///< numSets * assoc

    Line* find(uint64_t lineAddr);
    /// Victim slot for lineAddr's set (invalid or least recently used).
    Line& victim(uint64_t lineAddr);
  };

  [[nodiscard]] uint64_t lineAddr(uint64_t addr) const {
    return addr & ~static_cast<uint64_t>(line_bytes_ - 1);
  }

  enum class BusDir { Read, Write };
  /// Acquires the bus for one line transfer; returns the grant cycle.
  uint64_t busAcquire(uint64_t now, BusDir dir);
  uint64_t busAcquireImpl(uint64_t now, BusDir dir, bool buffered);

  /// Fetches a line from memory (deduplicating against in-flight fills);
  /// returns the data-ready cycle.  `forWrite` installs it exclusive;
  /// `isPrefetch` marks the installed lines for prefetch-useful accounting.
  uint64_t fetchLine(uint64_t laddr, uint64_t now, bool forWrite,
                     bool intoL1, bool intoL2, bool ntHint,
                     bool isPrefetch = false);

  void installLine(Level& level, uint64_t laddr, uint64_t now,
                   uint64_t fillReady, bool dirty, bool exclusive, bool ntHint,
                   bool prefetched = false);
  /// Demand access touched `line`: credits a useful prefetch once.
  void noteDemandHit(Line& line);
  void flushWC(uint64_t now, size_t idx);
  /// Trains the hardware stride prefetcher on a demand miss and issues
  /// ahead-fetches into the L2 once a sequential stream is detected.
  void trainHwPrefetcher(uint64_t laddr, uint64_t now);

  /// L1 lookup accelerator: the two most recently hit lines (streaming
  /// kernels touch each line several times in a row, and two entries cover
  /// a load stream and a store stream).  Pure cache of Level::find — the
  /// tag/valid check re-validates on every use, so results are identical;
  /// pointers are stable because the line arrays never resize after
  /// construction.
  Line* findL1(uint64_t laddr);

  const arch::MachineConfig& cfg_;
  int line_bytes_;
  std::vector<Level> levels_;
  uint64_t bus_free_ = 0;
  BusDir bus_last_dir_ = BusDir::Read;
  uint64_t use_counter_ = 1;
  /// lineAddr -> ready cycle.  Flat, unordered, swap-pop erase: MSHR counts
  /// are a handful, so linear scans beat hashing; no consumer depends on
  /// order (min/existence scans only).
  std::vector<std::pair<uint64_t, uint64_t>> inflight_;
  std::vector<uint64_t> store_buffer_;  ///< outstanding commits
  Line* l1_memo_[2] = {nullptr, nullptr};  ///< MRU-first; see findL1
  /// Line known absent from every level (the last NT-stored line: storeNT
  /// invalidates it and only installLine can bring it back).  Lets the NT
  /// fast path skip the cache walk on streaming NT stores.
  uint64_t nt_uncached_line_ = UINT64_MAX;
  // Write-combining buffers (cfg.wcBuffers of them).
  struct WcEntry {
    uint64_t line = UINT64_MAX;
    uint32_t bytes = 0;
    uint64_t lastUse = 0;
  };
  std::vector<WcEntry> wc_;
  uint64_t wc_extra_delay_ = 0;  ///< pending NT flush penalty
  struct Stream {
    uint64_t lastLine = 0;
    int streak = 0;
    uint64_t lastUse = 0;
  };
  Stream streams_[8];
  Stats stats_;
  Service last_service_ = Service::None;
};

}  // namespace ifko::sim
