#include "sim/budget.h"

namespace ifko::sim {

namespace {
thread_local detail::EvalBudgetState* tlsBudget = nullptr;
}  // namespace

namespace detail {
EvalBudgetState* currentEvalBudget() { return tlsBudget; }
}  // namespace detail

ScopedEvalBudget::ScopedEvalBudget(uint64_t maxSteps, uint64_t cycleCap)
    : state_{maxSteps, cycleCap}, prev_(tlsBudget) {
  tlsBudget = &state_;
}

ScopedEvalBudget::~ScopedEvalBudget() { tlsBudget = prev_; }

bool ScopedEvalBudget::active() { return tlsBudget != nullptr; }

void ScopedEvalBudget::chargeSteps(uint64_t n) {
  detail::EvalBudgetState* b = tlsBudget;
  if (b == nullptr) return;
  if (b->stepsLeft < n) {
    b->stepsLeft = 0;
    throw TimeoutError("evaluation exceeded its interpreter step budget");
  }
  b->stepsLeft -= n;
}

void ScopedEvalBudget::checkCycles(uint64_t completionCycle) {
  detail::EvalBudgetState* b = tlsBudget;
  if (b == nullptr || b->cycleCap == 0) return;
  if (completionCycle > b->cycleCap)
    throw TimeoutError("evaluation exceeded its simulated cycle budget");
}

}  // namespace ifko::sim
