#include "sim/timing.h"

#include <algorithm>

namespace ifko::sim {

using ir::Op;
using ir::Reg;
using ir::RegKind;

std::string_view stallCauseName(StallCause c) {
  switch (c) {
    case StallCause::Issue: return "issue";
    case StallCause::FpDep: return "fp_dep";
    case StallCause::IntDep: return "int_dep";
    case StallCause::Rob: return "rob";
    case StallCause::Mispredict: return "mispredict";
    case StallCause::Unit: return "unit";
    case StallCause::MemL1: return "mem_l1";
    case StallCause::MemL2: return "mem_l2";
    case StallCause::MemMain: return "mem_main";
    case StallCause::Store: return "store";
  }
  return "?";
}

namespace {

/// The memory level that served the last access, as a stall cause.
StallCause serviceCause(MemSystem::Service s) {
  switch (s) {
    case MemSystem::Service::L1: return StallCause::MemL1;
    case MemSystem::Service::L2: return StallCause::MemL2;
    case MemSystem::Service::Mem: return StallCause::MemMain;
    case MemSystem::Service::None: break;
  }
  return StallCause::MemL1;
}

/// Store commits that stay in the L1/store buffer are cheap bookkeeping
/// (Store); ones that had to fetch ownership from further out are memory.
StallCause storeServiceCause(MemSystem::Service s) {
  switch (s) {
    case MemSystem::Service::L2: return StallCause::MemL2;
    case MemSystem::Service::Mem: return StallCause::MemMain;
    default: return StallCause::Store;
  }
}

}  // namespace

TimingModel::TimingModel(const arch::MachineConfig& cfg, MemSystem& mem)
    : cfg_(cfg), mem_(mem), budget_(detail::currentEvalBudget()) {
  rob_retire_.assign(static_cast<size_t>(cfg.robSize), 0);
  predictor_.assign(1024, 1);  // weakly not-taken
}

uint64_t TimingModel::readyOf(Reg r) const {
  if (!r.valid()) return 0;
  const auto& v = r.kind == RegKind::Int ? int_ready_ : fp_ready_;
  return static_cast<size_t>(r.id) < v.size() ? v[static_cast<size_t>(r.id)] : 0;
}

void TimingModel::setReady(Reg r, uint64_t t) {
  auto& v = r.kind == RegKind::Int ? int_ready_ : fp_ready_;
  if (static_cast<size_t>(r.id) >= v.size())
    v.resize(static_cast<size_t>(r.id) + 64, 0);
  v[static_cast<size_t>(r.id)] = t;
}

uint64_t TimingModel::memOperandReady(const ir::Inst& inst) const {
  uint64_t t = readyOf(inst.mem.base);
  if (inst.mem.hasIndex()) t = std::max(t, readyOf(inst.mem.index));
  return t;
}

uint64_t TimingModel::acquireUnit(ExecUnit u, uint64_t earliest, int occupancy) {
  if (u == ExecUnit::None) return earliest;
  if (u == ExecUnit::Int) {
    // Two integer ALUs: pick whichever frees first.
    size_t best = unit_free_[0] <= unit_free_[1] ? 0 : 1;
    uint64_t start = std::max(earliest, unit_free_[best]);
    unit_free_[best] = start + static_cast<uint64_t>(occupancy);
    return start;
  }
  if (u == ExecUnit::FpAny) {
    // Logical/shuffle/blend micro-ops issue to whichever FP pipe is free
    // (both evaluation machines had two FP pipes accepting them).
    size_t best = unit_free_[2] <= unit_free_[3] ? 2 : 3;
    uint64_t start = std::max(earliest, unit_free_[best]);
    unit_free_[best] = start + static_cast<uint64_t>(occupancy);
    return start;
  }
  size_t idx = u == ExecUnit::FpAdd ? 2
               : u == ExecUnit::FpMul ? 3
               : u == ExecUnit::Load  ? 4
                                        : 5;
  uint64_t start = std::max(earliest, unit_free_[idx]);
  unit_free_[idx] = start + static_cast<uint64_t>(occupancy);
  return start;
}

InstCost instCost(const ir::Inst& inst, const arch::MachineConfig& cfg) {
  const bool vec = ir::opInfo(inst.op).isVector;
  const int vocc = vec ? cfg.vecOccupancy : 1;
  switch (inst.op) {
    case Op::IMovI: case Op::IMov: case Op::IAdd: case Op::ISub:
    case Op::IAddI: case Op::IShlI: case Op::IAddCC: case Op::ICmp:
    case Op::ICmpI:
      return {ExecUnit::Int, cfg.latInt, 1};
    case Op::IMul:
      return {ExecUnit::Int, 3, 1};
    case Op::Jmp: case Op::Jcc: case Op::Ret:
      return {ExecUnit::Int, 1, 1};
    case Op::ILd: case Op::FLd: case Op::VLd:
      return {ExecUnit::Load, 0, vocc};  // latency comes from the memory system
    case Op::ISt: case Op::FSt: case Op::FStNT: case Op::VSt: case Op::VStNT:
      return {ExecUnit::Store, 0, vocc};
    case Op::FLdI: case Op::FMov: case Op::FAbs: case Op::FNeg:
      return {ExecUnit::FpAny, cfg.latFMisc, 1};
    case Op::VMov: case Op::VAbs: case Op::VBcast: case Op::VZero:
    case Op::VCmpGT: case Op::VAnd: case Op::VAndN: case Op::VOr:
    case Op::VSel: case Op::VMovMsk: case Op::VIota: case Op::VExt:
      return {ExecUnit::FpAny, cfg.latFMisc, vocc};
    case Op::FToI:
      return {ExecUnit::FpAdd, cfg.latFAdd, 1};
    case Op::FAdd: case Op::FSub: case Op::FMax: case Op::FCmp:
      return {ExecUnit::FpAdd, cfg.latFAdd, 1};
    case Op::VAdd: case Op::VSub: case Op::VMax:
      return {ExecUnit::FpAdd, cfg.latFAdd, vocc};
    case Op::VHAdd: case Op::VHMax:
      return {ExecUnit::FpAdd, cfg.latFAdd + cfg.latFMisc, vocc};
    case Op::FMul:
      return {ExecUnit::FpMul, cfg.latFMul, 1};
    case Op::VMul:
      return {ExecUnit::FpMul, cfg.latFMul, vocc};
    case Op::FDiv:
      return {ExecUnit::FpMul, cfg.latFDiv, cfg.latFDiv};  // unpipelined
    case Op::FAddM: case Op::VAddM:
      return {ExecUnit::FpAdd, cfg.latFAdd, vocc};
    case Op::FMulM: case Op::VMulM:
      return {ExecUnit::FpMul, cfg.latFMul, vocc};
    case Op::Pref: case Op::Touch:
      return {ExecUnit::Load, 0, 1};
    case Op::Nop:
      return {ExecUnit::None, 0, 0};
  }
  return {ExecUnit::None, 1, 1};
}

void TimingModel::onInst(const InstEvent& ev) {
  step(ev, instCost(*ev.inst, cfg_));
}

void TimingModel::step(const InstEvent& ev, InstCost cost) {
  const ir::Inst& inst = *ev.inst;
  const ir::OpInfo& info = ir::opInfo(inst.op);
  ++stats_.insts;

  // ---- in-order issue, issueWidth per cycle, bounded by the ROB ----------
  uint64_t robGate = rob_retire_[rob_pos_];  // retire time robSize insts ago
  uint64_t issueAt = std::max(issue_cycle_, robGate);
  if (issueAt > issue_cycle_) {
    issue_cycle_ = issueAt;
    issued_in_cycle_ = 0;
  }
  if (++issued_in_cycle_ >= cfg_.issueWidth) {
    ++issue_cycle_;
    issued_in_cycle_ = 0;
  }

  // ---- operand readiness ---------------------------------------------------
  // Stores issue their memory request at address-generation time; the data
  // only gates the final commit (real OOO cores start the RFO as soon as
  // the address is known).
  const bool isStore = info.writesMem;
  uint64_t deps = issueAt;
  // The attribution charges dependency waits to the register class of the
  // operand that gates dispatch (FP chain vs integer/address/flags).
  StallCause depCause = StallCause::IntDep;
  auto raiseDep = [&](uint64_t t, StallCause c) {
    if (t > deps) {
      deps = t;
      depCause = c;
    }
  };
  auto regCause = [](Reg r) {
    return r.kind == RegKind::Fp ? StallCause::FpDep : StallCause::IntDep;
  };
  if (!isStore) {
    if (info.numSrcs >= 1) raiseDep(readyOf(inst.src1), regCause(inst.src1));
    if (info.numSrcs >= 2) raiseDep(readyOf(inst.src2), regCause(inst.src2));
    if (info.numSrcs >= 3) raiseDep(readyOf(inst.src3), regCause(inst.src3));
  }
  if (inst.op == Op::Ret && inst.src1.valid())
    raiseDep(readyOf(inst.src1), regCause(inst.src1));
  if (ir::touchesMem(inst.op))
    raiseDep(memOperandReady(inst), StallCause::IntDep);
  if (info.readsFlags) raiseDep(flags_ready_, StallCause::IntDep);
  uint64_t storeDataReady = isStore ? readyOf(inst.src1) : 0;

  uint64_t execStart = acquireUnit(cost.unit, deps, cost.occupancy);
  uint64_t complete = execStart + static_cast<uint64_t>(cost.latency);

  // Attribution milestones for the [execStart, complete) span: an optional
  // op-specific mid boundary, then a tail cause for the final segment
  // (exposed latency of the unit class unless the op says otherwise).
  uint64_t midAt = 0;
  StallCause midCause = StallCause::Issue;
  StallCause tailCause = StallCause::Issue;
  switch (cost.unit) {
    case ExecUnit::FpAdd: case ExecUnit::FpMul: case ExecUnit::FpAny:
      tailCause = StallCause::FpDep;
      break;
    case ExecUnit::Int:
      tailCause = StallCause::IntDep;
      break;
    default:
      break;
  }

  // ---- memory and control specifics ---------------------------------------
  switch (inst.op) {
    case Op::ILd: case Op::FLd: case Op::VLd:
      complete = mem_.load(ev.addr, ev.accessBytes, execStart);
      tailCause = serviceCause(mem_.lastService());
      break;
    case Op::Touch:
      // The fill is initiated (and nothing waits on the value).
      mem_.load(ev.addr, ev.accessBytes, execStart);
      complete = execStart + 1;
      tailCause = StallCause::Issue;
      break;
    case Op::FAddM: case Op::FMulM: case Op::VAddM: case Op::VMulM: {
      // Fused load + arithmetic: the load micro-op goes first.
      uint64_t loadStart = acquireUnit(ExecUnit::Load, deps, 1);
      uint64_t dataReady = mem_.load(ev.addr, ev.accessBytes, loadStart);
      uint64_t start = std::max(execStart, dataReady);
      complete = start + static_cast<uint64_t>(cost.latency);
      // Waiting for the operand is memory; the arithmetic is FP latency.
      midAt = start;
      midCause = serviceCause(mem_.lastService());
      tailCause = StallCause::FpDep;
      break;
    }
    case Op::ISt: case Op::FSt: case Op::VSt: {
      uint64_t commit = mem_.store(ev.addr, ev.accessBytes, execStart);
      complete = std::max(commit, storeDataReady);
      midAt = commit;
      midCause = storeServiceCause(mem_.lastService());
      // Past the commit point the store only waits for its data operand.
      tailCause = regCause(inst.src1);
      break;
    }
    case Op::FStNT: case Op::VStNT:
      // NT stores drain through the write-combining buffer once the data
      // arrives.
      complete = std::max(mem_.storeNT(ev.addr, ev.accessBytes,
                                       std::max(execStart, storeDataReady)),
                          storeDataReady);
      midAt = std::max(execStart, storeDataReady);
      midCause = regCause(inst.src1);
      tailCause = StallCause::Store;
      break;
    case Op::Pref:
      mem_.prefetch(inst.pref, ev.addr, execStart);
      complete = execStart + 1;
      tailCause = StallCause::Issue;
      break;
    case Op::Jcc: {
      ++stats_.branches;
      uint8_t& ctr = predictor_[ev.pcId % predictor_.size()];
      bool predictedTaken = ctr >= 2;
      if (predictedTaken != ev.taken) {
        ++stats_.mispredicts;
        // The front end restarts after the branch resolves.
        uint64_t resolve = std::max(deps, execStart);
        issue_cycle_ =
            std::max(issue_cycle_,
                     resolve + static_cast<uint64_t>(cfg_.mispredictPenalty));
        issued_in_cycle_ = 0;
        // Issue cycles inflated by this restart are charged to Mispredict
        // (see the attribution segment below) on the refilled instructions.
        mispredict_until_ = std::max(mispredict_until_, issue_cycle_);
      }
      if (ev.taken && ctr < 3) ++ctr;
      if (!ev.taken && ctr > 0) --ctr;
      break;
    }
    default:
      break;
  }

  if (info.hasDst) setReady(inst.dst, complete);
  if (info.setsFlags) flags_ready_ = complete;

  // ---- cycle attribution ---------------------------------------------------
  // Partition this instruction's advance of the completion front
  // [last_retire_, complete) along its ordered critical-path milestones.
  // Boundaries are clamped to `complete` and the cursor only moves forward,
  // so the per-instruction charges sum to exactly the front's advance:
  // the accounting identity  attribution().total() == cycles().
  {
    uint64_t lo = last_retire_;
    auto seg = [&](uint64_t boundary, StallCause c) {
      uint64_t hi = std::min(boundary, complete);
      if (hi > lo) {
        attr_.cycles[static_cast<size_t>(c)] += hi - lo;
        lo = hi;
      }
    };
    seg(std::min(issueAt, mispredict_until_), StallCause::Mispredict);
    seg(std::min(issueAt, robGate), StallCause::Rob);
    seg(issueAt, StallCause::Issue);
    seg(deps, depCause);
    seg(execStart, StallCause::Unit);
    if (midAt != 0) seg(midAt, midCause);
    seg(complete, tailCause);
  }

  // ---- in-order retire -----------------------------------------------------
  uint64_t retire = std::max(complete, last_retire_);
  last_retire_ = retire;
  rob_retire_[rob_pos_] = retire;
  rob_pos_ = (rob_pos_ + 1) % rob_retire_.size();

  max_complete_ = std::max(max_complete_, retire);

  // Cooperative deadline (sim/budget.h): the clock only moves forward, so a
  // periodic check bounds how far a runaway candidate can run past its cap.
  if (budget_ != nullptr && budget_->cycleCap != 0 &&
      (stats_.insts & 0x3FF) == 0 && max_complete_ > budget_->cycleCap)
    throw TimeoutError("evaluation exceeded its simulated cycle budget");
}

}  // namespace ifko::sim
