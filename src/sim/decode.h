// Pre-decoded execution form for the evaluation fast path.
//
// The functional interpreter (sim/interp.h) walks ir::Function block
// structure on every dynamic instruction: a block-position/instruction-index
// pair, a hash lookup per taken branch, and a per-dispatch cost-table switch
// inside the timing model.  None of that work depends on runtime state, so
// the decoder flattens a compiled function once into a dense array of
// DecodedInst -- instruction copy, resolved flat branch target, the
// interpreter's static pcId, and the precomputed TimingModel dispatch cost.
// runDecoded() then executes with a single integer program counter and feeds
// the timing model through its non-virtual onDecodedInst entry.
//
// Contract: runDecoded(decodeFunction(fn, m), ...) produces bit-identical
// results, cycle counts, and cycle attribution to Interp(fn, ...) with a
// TimingModel observer (tests/evalpipeline_test.cpp holds this).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/machine.h"
#include "ir/function.h"
#include "sim/interp.h"
#include "sim/timing.h"

namespace ifko::sim {

/// One flattened instruction: everything the decoded loop needs without
/// touching block structure or the cost table.
struct DecodedInst {
  ir::Inst inst;        ///< full copy; semantics read only this
  uint32_t target = 0;  ///< flat index of the branch target (Jmp/Jcc)
  uint64_t pcId = 0;    ///< (block id << 20) | index, matching Interp
  InstCost cost;        ///< precomputed TimingModel dispatch cost
};

/// A function flattened into layout order, plus the header fields the
/// runner needs (parameter binding, spill area, register file sizing).
struct DecodedFunction {
  std::vector<DecodedInst> insts;
  std::vector<ir::Param> params;
  ir::RetType retType = ir::RetType::None;
  bool regAllocated = false;
  int numSpillSlots = 0;
  size_t maxIntReg = 0;
  size_t maxFpReg = 0;
  size_t numBlocks = 0;  ///< preserved so empty-function errors match Interp

  [[nodiscard]] bool empty() const { return numBlocks == 0; }
};

/// Flatten `fn` for `machine`.  The machine config is baked into the
/// per-instruction costs, so a decoded function is machine-specific.
[[nodiscard]] DecodedFunction decodeFunction(const ir::Function& fn,
                                             const arch::MachineConfig& machine);

/// Execute a decoded function.  Mirrors Interp::run exactly: same argument
/// binding, same budget charging, same error messages, same observer
/// ordering -- but `timing` (optional) is driven through the non-virtual
/// fast path with precomputed costs.
RunResult runDecoded(const DecodedFunction& dfn, Memory& mem,
                     std::span<const ArgValue> args,
                     TimingModel* timing = nullptr,
                     uint64_t maxDynInsts = 1ull << 33);

}  // namespace ifko::sim
