// Out-of-order core timing model.
//
// Consumes the functional interpreter's instruction stream (as an
// InstObserver) and produces a cycle count.  The model is a scoreboard with
// the structural limits that matter for the paper's transforms:
//
//  * issue width and ROB size (bounds memory-level parallelism, which is
//    why software prefetch still matters on an OOO core);
//  * per-unit latencies and occupancy (FP add/mul chains bound reductions
//    -- the stall accumulator expansion removes; 128-bit SSE ops occupy
//    their unit for two cycles on these 64-bit-datapath machines);
//  * a 2-bit branch predictor with a deep-pipeline mispredict penalty
//    (why scalar iamax suffers on data with frequent new maxima and why
//    its unrolled loop control matters);
//  * the memory system (MemSystem) for loads/stores/prefetches.
//
// "Modern x86 architectures are relatively insensitive to scheduling" --
// the paper's observation holds here too: within the window, execution
// order is chosen by operand readiness, not program order.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "arch/machine.h"
#include "sim/budget.h"
#include "sim/interp.h"
#include "sim/memsys.h"

namespace ifko::sim {

/// The closed set of causes every simulated cycle is charged to.  Each
/// instruction's advance of the completion front is partitioned along its
/// critical path: front-end restart after a mispredict, ROB-full pressure,
/// steady in-order issue, waiting on an FP (or integer/address) operand,
/// functional-unit occupancy, the memory level that served its access, or
/// store commit/drain.  See TimingModel::attribution().
enum class StallCause : uint8_t {
  Issue,       ///< steady-state in-order issue (front-end pacing)
  FpDep,       ///< FP dependency chain: waiting on / exposing FP latency
  IntDep,      ///< integer/address dependency (incl. exposed int latency)
  Rob,         ///< reorder-buffer (window) pressure
  Mispredict,  ///< front-end restart after a branch mispredict
  Unit,        ///< functional-unit occupancy
  MemL1,       ///< load-to-use latency served by the L1
  MemL2,       ///< L1 miss served by the L2
  MemMain,     ///< miss to main memory (bus + DRAM latency)
  Store,       ///< store commit, store-buffer and WC-buffer drain
};
inline constexpr size_t kNumStallCauses = 10;

/// Trace/cache field name ("issue", "fp_dep", "mem_main", ...).
[[nodiscard]] std::string_view stallCauseName(StallCause c);

/// Cycles charged per cause.  The accounting identity: total() of the
/// attribution equals TimingModel::cycles() exactly — every cycle the
/// completion front advanced is charged to exactly one cause.
struct Attribution {
  std::array<uint64_t, kNumStallCauses> cycles{};

  [[nodiscard]] uint64_t of(StallCause c) const {
    return cycles[static_cast<size_t>(c)];
  }
  [[nodiscard]] uint64_t total() const {
    uint64_t t = 0;
    for (uint64_t v : cycles) t += v;
    return t;
  }
  /// MemL1 + MemL2 + MemMain + Store: every memory-system stall.
  [[nodiscard]] uint64_t memoryStalls() const {
    return of(StallCause::MemL1) + of(StallCause::MemL2) +
           of(StallCause::MemMain) + of(StallCause::Store);
  }
  friend bool operator==(const Attribution&, const Attribution&) = default;
};

/// Functional-unit class an instruction dispatches to.
enum class ExecUnit : uint8_t { Int, FpAdd, FpMul, FpAny, Load, Store, None };

/// Static dispatch cost of one instruction: unit class, result latency, and
/// unit occupancy.  Depends only on the opcode and the machine config, so the
/// decoder (sim/decode.h) precomputes it once per static instruction instead
/// of re-deriving it on every dynamic dispatch.
struct InstCost {
  ExecUnit unit = ExecUnit::None;
  int latency = 1;
  int occupancy = 1;
};

/// The cost table itself (shared by TimingModel::onInst and the decoder).
[[nodiscard]] InstCost instCost(const ir::Inst& inst,
                                const arch::MachineConfig& cfg);

class TimingModel : public InstObserver {
 public:
  TimingModel(const arch::MachineConfig& cfg, MemSystem& mem);

  void onInst(const InstEvent& ev) override;

  /// Fast-path entry for pre-decoded execution: identical semantics to
  /// onInst, but non-virtual and with the dispatch cost already computed.
  /// Produces bit-identical cycles/attribution to the observer path.
  void onDecodedInst(const InstEvent& ev, InstCost cost) { step(ev, cost); }

  /// Completion cycle of everything observed so far.
  [[nodiscard]] uint64_t cycles() const { return max_complete_; }

  struct Stats {
    uint64_t insts = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Per-cause cycle attribution; attribution().total() == cycles() always.
  [[nodiscard]] const Attribution& attribution() const { return attr_; }

 private:
  /// The shared per-instruction scoreboard update behind both entry points.
  void step(const InstEvent& ev, InstCost cost);

  uint64_t readyOf(ir::Reg r) const;
  void setReady(ir::Reg r, uint64_t t);
  uint64_t memOperandReady(const ir::Inst& inst) const;
  /// Earliest cycle a unit of this class is free; books the occupancy.
  uint64_t acquireUnit(ExecUnit u, uint64_t earliest, int occupancy);

  const arch::MachineConfig& cfg_;
  MemSystem& mem_;
  /// The cooperative deadline installed on the constructing thread (may be
  /// null); cached so the hot path pays one pointer test, not a TLS lookup.
  detail::EvalBudgetState* budget_;

  std::vector<uint64_t> int_ready_;
  std::vector<uint64_t> fp_ready_;
  uint64_t flags_ready_ = 0;

  uint64_t issue_cycle_ = 0;
  int issued_in_cycle_ = 0;
  /// Issue cycles below this watermark were inflated by a mispredict
  /// restart; the attribution charges them to Mispredict, not Issue.
  uint64_t mispredict_until_ = 0;
  std::vector<uint64_t> rob_retire_;  ///< circular, robSize entries
  size_t rob_pos_ = 0;
  uint64_t last_retire_ = 0;

  // Functional units: int x2, fpadd, fpmul, load, store.
  uint64_t unit_free_[6] = {0, 0, 0, 0, 0, 0};

  // 2-bit saturating counters indexed by a hash of the static instruction.
  std::vector<uint8_t> predictor_;

  uint64_t max_complete_ = 0;
  Stats stats_;
  Attribution attr_;
};

}  // namespace ifko::sim
