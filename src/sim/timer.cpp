#include "sim/timer.h"

#include "sim/interp.h"

namespace ifko::sim {

std::string_view contextName(TimeContext ctx) {
  return ctx == TimeContext::OutOfCache ? "out-of-cache" : "in-L2";
}

namespace {

// Shared operand setup + result assembly; only the execution engine differs
// between the two overloads.
template <typename RunFn>
TimeResult timeKernelWith(const arch::MachineConfig& machine,
                          const kernels::KernelSpec& spec, int64_t n,
                          TimeContext ctx, uint64_t seed, int64_t loopN,
                          const kernels::KernelData* tmpl, RunFn&& execute) {
  kernels::KernelData data =
      tmpl != nullptr ? tmpl->clone() : kernels::makeKernelData(spec, n, seed);
  MemSystem mem(machine);
  if (ctx == TimeContext::InL2) {
    const uint64_t bytes =
        static_cast<uint64_t>(n) * scalBytes(spec.prec);
    mem.warm(data.xAddr, bytes);
    if (data.yAddr != 0) mem.warm(data.yAddr, bytes);
  }
  // Warming displaces lines and would otherwise leak eviction counts into
  // the timed run's stats; the timed region starts from a clean slate.
  mem.resetStats();
  // Truncated runs keep the full-size operands and shorten only the loop
  // trip count: the timed region is an exact prefix of the full run.
  if (loopN > 0) data.n = loopN;
  TimingModel timing(machine, mem);
  RunResult run = execute(data, timing);

  TimeResult out;
  out.cycles = timing.cycles();
  out.dynInsts = run.dynInsts;
  out.mem = mem.stats();
  out.core = timing.stats();
  out.attr = timing.attribution();
  return out;
}

}  // namespace

TimeResult timeKernel(const arch::MachineConfig& machine,
                      const ir::Function& fn, const kernels::KernelSpec& spec,
                      int64_t n, TimeContext ctx, uint64_t seed, int64_t loopN,
                      const kernels::KernelData* tmpl) {
  return timeKernelWith(machine, spec, n, ctx, seed, loopN, tmpl,
                        [&](kernels::KernelData& data, TimingModel& timing) {
                          Interp interp(fn, *data.mem, &timing);
                          return interp.run(data.args(fn));
                        });
}

TimeResult timeKernel(const arch::MachineConfig& machine,
                      const DecodedFunction& dfn,
                      const kernels::KernelSpec& spec, int64_t n,
                      TimeContext ctx, uint64_t seed, int64_t loopN,
                      const kernels::KernelData* tmpl) {
  return timeKernelWith(machine, spec, n, ctx, seed, loopN, tmpl,
                        [&](kernels::KernelData& data, TimingModel& timing) {
                          return runDecoded(dfn, *data.mem, data.args(dfn.params),
                                            &timing);
                        });
}

}  // namespace ifko::sim
