#include "sim/timer.h"

#include "sim/interp.h"

namespace ifko::sim {

std::string_view contextName(TimeContext ctx) {
  return ctx == TimeContext::OutOfCache ? "out-of-cache" : "in-L2";
}

TimeResult timeKernel(const arch::MachineConfig& machine,
                      const ir::Function& fn, const kernels::KernelSpec& spec,
                      int64_t n, TimeContext ctx, uint64_t seed) {
  kernels::KernelData data = kernels::makeKernelData(spec, n, seed);
  MemSystem mem(machine);
  if (ctx == TimeContext::InL2) {
    const uint64_t bytes =
        static_cast<uint64_t>(n) * scalBytes(spec.prec);
    mem.warm(data.xAddr, bytes);
    if (data.yAddr != 0) mem.warm(data.yAddr, bytes);
  }
  // Warming displaces lines and would otherwise leak eviction counts into
  // the timed run's stats; the timed region starts from a clean slate.
  mem.resetStats();
  TimingModel timing(machine, mem);
  Interp interp(fn, *data.mem, &timing);
  RunResult run = interp.run(data.args(fn));

  TimeResult out;
  out.cycles = timing.cycles();
  out.dynInsts = run.dynInsts;
  out.mem = mem.stats();
  out.core = timing.stats();
  out.attr = timing.attribution();
  return out;
}

}  // namespace ifko::sim
