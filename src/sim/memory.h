// Flat byte-addressable memory image for the simulated machine.
//
// Kernel operands (the BLAS vectors), the spill area, and any scratch data
// live here.  Addresses are plain byte offsets; address 0 is kept unmapped
// so stray null dereferences fault loudly.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace ifko::sim {

class Memory {
 public:
  /// Creates an image of `size` bytes.  The first 64 bytes are reserved
  /// (unallocatable) so that address 0 never aliases real data.
  explicit Memory(size_t size) : bytes_(size, 0), brk_(64) {
    if (size < 128) throw std::invalid_argument("Memory too small");
  }

  /// Bump-allocates `size` bytes aligned to `align` (a power of two).
  [[nodiscard]] uint64_t allocate(size_t size, size_t align = 64) {
    uint64_t addr = (brk_ + align - 1) & ~(static_cast<uint64_t>(align) - 1);
    if (addr + size > bytes_.size())
      throw std::out_of_range("Memory::allocate: image exhausted");
    brk_ = addr + size;
    return addr;
  }

  template <typename T>
  [[nodiscard]] T read(uint64_t addr) const {
    check(addr, sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + addr, sizeof(T));
    return v;
  }

  template <typename T>
  void write(uint64_t addr, T v) {
    check(addr, sizeof(T));
    std::memcpy(bytes_.data() + addr, &v, sizeof(T));
  }

  void readBytes(uint64_t addr, void* out, size_t n) const {
    check(addr, n);
    std::memcpy(out, bytes_.data() + addr, n);
  }

  void writeBytes(uint64_t addr, const void* in, size_t n) {
    check(addr, n);
    std::memcpy(bytes_.data() + addr, in, n);
  }

  [[nodiscard]] size_t size() const { return bytes_.size(); }

 private:
  void check(uint64_t addr, size_t n) const {
    if (addr < 64 || addr + n > bytes_.size())
      throw std::out_of_range("simulated memory access out of bounds at " +
                              std::to_string(addr));
  }

  std::vector<uint8_t> bytes_;
  uint64_t brk_;
};

}  // namespace ifko::sim
