#include "opt/liveness.h"

#include "ir/cfg.h"

namespace ifko::opt {

std::vector<ir::Reg> usedRegs(const ir::Inst& in) {
  std::vector<ir::Reg> out;
  const ir::OpInfo& info = ir::opInfo(in.op);
  if (info.numSrcs >= 1 && in.src1.valid()) out.push_back(in.src1);
  if (info.numSrcs >= 2 && in.src2.valid()) out.push_back(in.src2);
  if (info.numSrcs >= 3 && in.src3.valid()) out.push_back(in.src3);
  if (in.op == ir::Op::Ret && in.src1.valid()) out.push_back(in.src1);
  if (ir::touchesMem(in.op)) {
    if (in.mem.base.valid()) out.push_back(in.mem.base);
    if (in.mem.index.valid()) out.push_back(in.mem.index);
  }
  return out;
}

ir::Reg definedReg(const ir::Inst& in) {
  return ir::opInfo(in.op).hasDst ? in.dst : ir::Reg::none();
}

Liveness computeLiveness(const ir::Function& fn) {
  Liveness lv;
  // use/def per block.
  std::unordered_map<int32_t, std::set<RegKey>> use, def;
  for (const auto& bb : fn.blocks) {
    auto& u = use[bb.id];
    auto& d = def[bb.id];
    for (const auto& in : bb.insts) {
      for (ir::Reg r : usedRegs(in))
        if (!d.count(regKey(r))) u.insert(regKey(r));
      ir::Reg w = definedReg(in);
      if (w.valid()) d.insert(regKey(w));
    }
    lv.liveIn[bb.id];
    lv.liveOut[bb.id];
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = fn.blocks.size(); i-- > 0;) {
      const auto& bb = fn.blocks[i];
      std::set<RegKey> out;
      for (int32_t s : ir::successors(fn, i)) {
        const auto& sin = lv.liveIn[s];
        out.insert(sin.begin(), sin.end());
      }
      std::set<RegKey> in = use[bb.id];
      for (RegKey k : out)
        if (!def[bb.id].count(k)) in.insert(k);
      if (out != lv.liveOut[bb.id] || in != lv.liveIn[bb.id]) {
        lv.liveOut[bb.id] = std::move(out);
        lv.liveIn[bb.id] = std::move(in);
        changed = true;
      }
    }
  }
  return lv;
}

}  // namespace ifko::opt
