#include "opt/repeatable.h"

#include <iterator>
#include <map>
#include <set>
#include <unordered_map>

#include "ir/cfg.h"
#include "opt/liveness.h"

namespace ifko::opt {

using ir::Inst;
using ir::Op;
using ir::Reg;

bool copyPropagation(ir::Function& fn) {
  bool changed = false;
  for (auto& bb : fn.blocks) {
    std::map<RegKey, Reg> copies;  // dst -> src of an active copy
    auto invalidate = [&](Reg r) {
      copies.erase(regKey(r));
      for (auto it = copies.begin(); it != copies.end();) {
        if (it->second == r)
          it = copies.erase(it);
        else
          ++it;
      }
    };
    for (auto& in : bb.insts) {
      const ir::OpInfo& info = ir::opInfo(in.op);
      auto substitute = [&](Reg& r) {
        if (!r.valid()) return;
        auto it = copies.find(regKey(r));
        if (it != copies.end()) {
          r = it->second;
          changed = true;
        }
      };
      if (info.numSrcs >= 1) substitute(in.src1);
      if (info.numSrcs >= 2) substitute(in.src2);
      if (info.numSrcs >= 3) substitute(in.src3);
      if (in.op == Op::Ret) substitute(in.src1);
      if (ir::touchesMem(in.op)) {
        substitute(in.mem.base);
        substitute(in.mem.index);
      }
      if (info.hasDst) invalidate(in.dst);
      if ((in.op == Op::IMov || in.op == Op::FMov || in.op == Op::VMov) &&
          !(in.dst == in.src1))
        copies[regKey(in.dst)] = in.src1;
    }
  }
  return changed;
}

bool deadCodeElim(ir::Function& fn) {
  bool changed = false;

  // Dead induction cycles: a register whose only use is its own
  // `r = r + imm` update keeps itself alive; break the cycle explicitly.
  {
    std::map<RegKey, int> useCount;
    std::map<RegKey, const Inst*> selfUpdate;
    for (const auto& bb : fn.blocks) {
      for (const auto& in : bb.insts) {
        for (Reg r : usedRegs(in)) ++useCount[regKey(r)];
        if (in.op == Op::IAddI && in.dst == in.src1)
          selfUpdate[regKey(in.dst)] = &in;
      }
    }
    for (const auto& p : fn.params) useCount[regKey(p.reg)] += 1000;
    for (auto& bb : fn.blocks) {
      for (auto it = bb.insts.begin(); it != bb.insts.end();) {
        bool isDeadCycle = it->op == Op::IAddI && it->dst == it->src1 &&
                           useCount[regKey(it->dst)] == 1;
        if (isDeadCycle) {
          it = bb.insts.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
  }

  Liveness lv = computeLiveness(fn);
  for (auto& bb : fn.blocks) {
    std::set<RegKey> live = lv.liveOut[bb.id];
    // Backward scan, removing dead pure instructions.
    for (size_t i = bb.insts.size(); i-- > 0;) {
      const Inst& in = bb.insts[i];
      const ir::OpInfo& info = ir::opInfo(in.op);
      bool sideEffect = info.writesMem || info.isBranch || info.isTerminator ||
                        info.setsFlags || in.op == Op::Pref;
      Reg d = definedReg(in);
      if (!sideEffect && d.valid() && !live.count(regKey(d))) {
        bb.insts.erase(bb.insts.begin() + static_cast<ptrdiff_t>(i));
        changed = true;
        continue;
      }
      if (d.valid()) live.erase(regKey(d));
      for (Reg r : usedRegs(in)) live.insert(regKey(r));
    }
  }
  return changed;
}

bool peepholeLoadOp(ir::Function& fn) {
  bool changed = false;
  Liveness lv = computeLiveness(fn);
  for (auto& bb : fn.blocks) {
    for (size_t i = 0; i < bb.insts.size(); ++i) {
      const Inst load = bb.insts[i];
      bool scalar = load.op == Op::FLd;
      bool vector = load.op == Op::VLd;
      if (!scalar && !vector) continue;
      Reg t = load.dst;
      if (lv.liveOut[bb.id].count(regKey(t))) continue;

      // Find the unique consumer within the block.  Before the consumer, no
      // store may intervene (conservative aliasing) and neither the loaded
      // register nor the address registers may be redefined; after it, the
      // loaded register must be dead.
      size_t useIdx = SIZE_MAX;
      bool ok = true;
      for (size_t j = i + 1; j < bb.insts.size(); ++j) {
        const Inst& in = bb.insts[j];
        const ir::OpInfo& info = ir::opInfo(in.op);
        bool usesT = false;
        for (Reg r : usedRegs(in))
          if (r == t) usesT = true;
        if (useIdx == SIZE_MAX) {
          if (usesT) {
            useIdx = j;
            continue;
          }
          if (info.writesMem ||
              (info.hasDst && (in.dst == t || in.dst == load.mem.base ||
                               in.dst == load.mem.index))) {
            ok = false;
            break;
          }
        } else {
          if (usesT) {
            ok = false;  // second use: cannot fold
            break;
          }
          if (info.hasDst && in.dst == t) break;  // t dead from here on
        }
      }
      if (!ok || useIdx == SIZE_MAX) continue;

      Inst& use = bb.insts[useIdx];
      Op newOp = Op::Nop;
      if (scalar && use.op == Op::FAdd) newOp = Op::FAddM;
      if (scalar && use.op == Op::FMul) newOp = Op::FMulM;
      if (vector && use.op == Op::VAdd) newOp = Op::VAddM;
      if (vector && use.op == Op::VMul) newOp = Op::VMulM;
      if (newOp == Op::Nop) continue;
      if (use.src1 == t && use.src2 == t) continue;
      // Commutative: put the register operand in src1.
      Reg other = use.src1 == t ? use.src2 : use.src1;
      use.op = newOp;
      use.src1 = other;
      use.src2 = Reg::none();
      use.mem = load.mem;
      bb.insts.erase(bb.insts.begin() + static_cast<ptrdiff_t>(i));
      changed = true;
      --i;
    }
  }
  return changed;
}

bool branchChaining(ir::Function& fn) {
  bool changed = false;
  // Resolve each branch target through empty/jump-only blocks.
  auto resolve = [&](int32_t target) {
    for (int hops = 0; hops < 8; ++hops) {
      size_t pos = fn.layoutIndex(target);
      if (pos == static_cast<size_t>(-1)) return target;
      const ir::BasicBlock& bb = fn.blocks[pos];
      if (bb.insts.empty()) {
        if (pos + 1 >= fn.blocks.size()) return target;
        target = fn.blocks[pos + 1].id;
        continue;
      }
      if (bb.insts.size() == 1 && bb.insts[0].op == Op::Jmp) {
        if (bb.insts[0].label == target) return target;  // self loop
        target = bb.insts[0].label;
        continue;
      }
      return target;
    }
    return target;
  };
  for (auto& bb : fn.blocks) {
    for (auto& in : bb.insts) {
      if (!ir::opInfo(in.op).isBranch) continue;
      int32_t t = resolve(in.label);
      if (t != in.label) {
        in.label = t;
        changed = true;
      }
    }
  }
  return changed;
}

bool uselessJumpElim(ir::Function& fn) {
  bool changed = false;
  for (size_t i = 0; i + 1 < fn.blocks.size(); ++i) {
    auto& bb = fn.blocks[i];
    if (bb.insts.empty()) continue;
    Inst& last = bb.insts.back();
    if (last.op == Op::Jmp && last.label == fn.blocks[i + 1].id) {
      bb.insts.pop_back();
      changed = true;
    }
  }
  return changed;
}

bool removeUnreachable(ir::Function& fn) {
  if (fn.blocks.empty()) return false;
  std::set<int32_t> reachable;
  std::vector<size_t> work = {0};
  reachable.insert(fn.blocks[0].id);
  while (!work.empty()) {
    size_t pos = work.back();
    work.pop_back();
    for (int32_t s : ir::successors(fn, pos)) {
      if (reachable.insert(s).second) work.push_back(fn.layoutIndex(s));
    }
  }
  bool changed = false;
  for (size_t i = fn.blocks.size(); i-- > 0;) {
    if (!reachable.count(fn.blocks[i].id)) {
      fn.blocks.erase(fn.blocks.begin() + static_cast<ptrdiff_t>(i));
      changed = true;
    }
  }
  return changed;
}

bool mergeBlocks(ir::Function& fn) {
  bool changed = false;
  auto preds = ir::predecessors(fn);
  // Count branch references separately: a block that is a branch target
  // cannot be merged into its fall-through predecessor without relabeling.
  std::map<int32_t, int> branchRefs;
  for (const auto& bb : fn.blocks)
    for (const auto& in : bb.insts)
      if (ir::opInfo(in.op).isBranch) ++branchRefs[in.label];

  for (size_t i = 0; i + 1 < fn.blocks.size(); ++i) {
    ir::BasicBlock& b = fn.blocks[i];
    ir::BasicBlock& c = fn.blocks[i + 1];
    bool bFallsOnly =
        b.insts.empty() || (!ir::opInfo(b.insts.back().op).isBranch &&
                            !ir::opInfo(b.insts.back().op).isTerminator);
    if (!bFallsOnly) continue;
    if (branchRefs[c.id] > 0) continue;
    if (preds[c.id].size() != 1) continue;
    // Merge c into b.
    for (auto& in : c.insts) b.insts.push_back(in);
    int32_t cId = c.id;
    // Keep loop metadata coherent.
    if (fn.loop.valid) {
      if (fn.loop.header == cId) fn.loop.header = b.id;
      if (fn.loop.latch == cId) fn.loop.latch = b.id;
      if (fn.loop.exit == cId) fn.loop.exit = b.id;
      if (fn.loop.preheader == cId) fn.loop.preheader = b.id;
    }
    fn.blocks.erase(fn.blocks.begin() + static_cast<ptrdiff_t>(i) + 1);
    changed = true;
    --i;
    preds = ir::predecessors(fn);
  }
  return changed;
}

RepeatableReport runRepeatableReport(ir::Function& fn, int maxIters) {
  static constexpr struct {
    const char* name;
    bool (*run)(ir::Function&);
  } kPasses[] = {
      {"copy-prop", copyPropagation},   {"dce", deadCodeElim},
      {"peephole", peepholeLoadOp},     {"branch-chain", branchChaining},
      {"jump-elim", uselessJumpElim},   {"unreachable", removeUnreachable},
      {"merge-blocks", mergeBlocks},
  };
  constexpr size_t kNumPasses = std::size(kPasses);

  RepeatableReport report;
  report.passes.resize(kNumPasses);
  for (size_t p = 0; p < kNumPasses; ++p)
    report.passes[p].name = kPasses[p].name;

  bool lastChanged = false;
  for (int iter = 0; iter < maxIters; ++iter) {
    lastChanged = false;
    for (size_t p = 0; p < kNumPasses; ++p) {
      PassDelta& delta = report.passes[p];
      size_t before = fn.instCount();
      bool changed = kPasses[p].run(fn);
      if (changed) {
        if (!delta.changed) delta.instsBefore = before;
        delta.instsAfter = fn.instCount();
        delta.changed = true;
        ++delta.iterations;
      }
      lastChanged |= changed;
    }
    if (!lastChanged) break;
    ++report.iterations;
  }
  // Converged iff the loop exited because a sweep was a no-op; if the cap
  // cut off a still-changing sequence, the fixed point was not reached.
  report.converged = !lastChanged;
  return report;
}

int runRepeatable(ir::Function& fn, int maxIters) {
  return runRepeatableReport(fn, maxIters).iterations;
}

}  // namespace ifko::opt
