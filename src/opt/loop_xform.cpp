#include "opt/loop_xform.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>

#include "analysis/loopinfo.h"
#include "ir/builder.h"
#include "ir/verifier.h"

namespace ifko::opt {

using analysis::LoopInfo;
using ir::BasicBlock;
using ir::Cond;
using ir::Inst;
using ir::Mem;
using ir::Op;
using ir::Reg;
using ir::Scal;

namespace {

struct LatchTail {
  bool ok = false;
  size_t firstBump = 0;
  size_t ivarUpd = 0;
  size_t cmp = 0;
  size_t backedge = 0;
};

LatchTail findLatchTail(const ir::Function& fn) {
  LatchTail t;
  const BasicBlock& latch = fn.block(fn.loop.latch);
  size_t n = latch.insts.size();
  if (n < 3) return t;
  if (latch.insts[n - 1].op != Op::Jcc ||
      latch.insts[n - 1].label != fn.loop.header)
    return t;
  if (latch.insts[n - 2].op != Op::ICmp && latch.insts[n - 2].op != Op::ICmpI)
    return t;
  if (latch.insts[n - 3].op != Op::IAddI ||
      !(latch.insts[n - 3].dst == fn.loop.ivar))
    return t;
  t.backedge = n - 1;
  t.cmp = n - 2;
  t.ivarUpd = n - 3;
  t.firstBump = t.ivarUpd;
  for (size_t i = t.ivarUpd; i-- > 0;) {
    const Inst& in = latch.insts[i];
    bool isPtrBump = in.op == Op::IAddI && in.dst == in.src1;
    if (!isPtrBump) break;
    bool isParamPtr = false;
    for (const auto& p : fn.params)
      if (p.reg == in.dst && p.isPointer()) isParamPtr = true;
    if (!isParamPtr) break;
    t.firstBump = i;
  }
  t.ok = true;
  return t;
}

bool instUsesReg(const Inst& in, Reg r) {
  const ir::OpInfo& info = ir::opInfo(in.op);
  if (info.numSrcs >= 1 && in.src1 == r) return true;
  if (info.numSrcs >= 2 && in.src2 == r) return true;
  if (info.numSrcs >= 3 && in.src3 == r) return true;
  if (in.op == Op::Ret && in.src1 == r) return true;
  if (ir::touchesMem(in.op) && (in.mem.base == r || in.mem.index == r))
    return true;
  return false;
}

class LoopXform {
 public:
  LoopXform(const ir::Function& lowered, const TuningParams& params,
            const arch::MachineConfig& machine)
      : fn_(lowered), params_(params), machine_(machine) {}

  std::optional<ir::Function> run(std::string* error) {
    auto fail = [&](const std::string& msg) -> std::optional<ir::Function> {
      if (error) *error = msg;
      return std::nullopt;
    };

    info_ = analysis::analyzeLoop(fn_);
    if (!info_.found) return fail(info_.problem);
    if (info_.arrays.empty()) return fail("loop accesses no arrays");
    elem_ = info_.arrays.front().elem;

    unroll_ = std::clamp(params_.unroll, 1, info_.maxUnroll);
    accum_expand_ = std::max(1, std::min(params_.accumExpand, unroll_));
    if (info_.accumulators.empty()) accum_expand_ = 1;

    capturePristine();

    if (params_.simdVectorize && info_.vectorizable) vectorize();
    totalStep_ = perCopyStep_ * unroll_;

    restructure();
    if (params_.ciscIndexing) applyCiscIndexing();
    if (params_.blockFetch) applyBlockFetch();
    insertPrefetches();
    if (params_.nonTemporalWrites) applyWNT();

    auto problems = ir::verify(fn_);
    if (!problems.empty())
      return fail("transformed IR failed verification: " + problems[0]);
    return std::move(fn_);
  }

 private:
  // --- pristine capture (for the scalar remainder loop) ---------------------
  void capturePristine() {
    for (int32_t id : info_.hotBlocks) pristine_.push_back(fn_.block(id));
    for (int32_t id : info_.sideBlocks) pristine_.push_back(fn_.block(id));
    // Strip ivar update + compare + backedge from the pristine latch copy
    // (the remainder builds its own); keep the pointer bumps.
    for (auto& bb : pristine_) {
      if (bb.id != fn_.loop.latch) continue;
      LatchTail t = findLatchTail(fn_);
      bb.insts.erase(bb.insts.begin() + static_cast<ptrdiff_t>(t.ivarUpd),
                     bb.insts.end());
    }
  }

  // --- SV --------------------------------------------------------------------
  void vectorize() {
    vectorized_ = true;
    perCopyStep_ = ir::vecLanes(elem_);

    // Accumulators get fresh vector registers initialized to zero; FP scalar
    // parameters are broadcast once in the preheader.
    for (Reg acc : info_.accumulators) {
      Reg vacc = fn_.newFpReg();
      preheaderInsts_.push_back({.op = Op::VZero, .type = elem_, .dst = vacc});
      regMap_[acc.id] = vacc;
      accumSets_[acc.id] = {vacc};
    }
    // Loop-invariant FP inputs (parameters and outer-loop scalars) are
    // broadcast once in the preheader.
    for (Reg inv : info_.invariantFpInputs) {
      Reg vp = fn_.newFpReg();
      preheaderInsts_.push_back(
          {.op = Op::VBcast, .type = elem_, .dst = vp, .src1 = inv});
      regMap_[inv.id] = vp;
    }

    LatchTail tail = findLatchTail(fn_);
    for (int32_t bid : info_.hotBlocks) {
      BasicBlock& bb = fn_.block(bid);
      size_t limit =
          bid == fn_.loop.latch ? tail.firstBump : bb.insts.size();
      for (size_t i = 0; i < limit; ++i) {
        Inst& in = bb.insts[i];
        switch (in.op) {
          case Op::FLd: in.op = Op::VLd; break;
          case Op::FSt: in.op = Op::VSt; break;
          case Op::FStNT: in.op = Op::VStNT; break;
          case Op::FMov: in.op = Op::VMov; break;
          case Op::FAdd: in.op = Op::VAdd; break;
          case Op::FSub: in.op = Op::VSub; break;
          case Op::FMul: in.op = Op::VMul; break;
          case Op::FAbs: in.op = Op::VAbs; break;
          case Op::FMax: in.op = Op::VMax; break;
          case Op::FLdI: {
            // Materialize the scalar constant, then widen it.
            Reg tmp = fn_.newFpReg();
            Reg dst = in.dst;
            in.dst = tmp;
            Inst bcast{.op = Op::VBcast, .type = elem_, .dst = dst, .src1 = tmp};
            bb.insts.insert(bb.insts.begin() + static_cast<ptrdiff_t>(i) + 1,
                            bcast);
            ++i;
            ++limit;
            continue;
          }
          default:
            break;
        }
        remapRegs(in);
      }
    }
  }

  void remapRegs(Inst& in) {
    auto remap = [&](Reg& r) {
      if (r.valid() && r.kind == ir::RegKind::Fp) {
        auto it = regMap_.find(r.id);
        if (it != regMap_.end()) r = it->second;
      }
    };
    remap(in.dst);
    remap(in.src1);
    remap(in.src2);
    remap(in.src3);
  }

  // --- restructuring: copies, latch, reductions, remainder -------------------
  void restructure() {
    const ir::LoopMark loop = fn_.loop;  // copy: ids used before mutation
    LatchTail tail = findLatchTail(fn_);
    assert(tail.ok);

    BasicBlock& latch = fn_.block(loop.latch);
    // Save the tail instructions, then strip them from the latch.
    std::vector<Inst> bumps(latch.insts.begin() + static_cast<ptrdiff_t>(tail.firstBump),
                            latch.insts.begin() + static_cast<ptrdiff_t>(tail.ivarUpd));
    Inst ivarUpd = latch.insts[tail.ivarUpd];
    latch.insts.erase(latch.insts.begin() + static_cast<ptrdiff_t>(tail.firstBump),
                      latch.insts.end());

    // Extra accumulators for AE (applied to the unrolled copies below).
    for (Reg acc : info_.accumulators) {
      auto& set = accumSets_[acc.id];
      if (set.empty()) set = {acc};  // scalar accumulation (SV off)
      for (int a = 1; a < accum_expand_; ++a) {
        Reg extra = fn_.newFpReg();
        if (vectorized_)
          preheaderInsts_.push_back({.op = Op::VZero, .type = elem_, .dst = extra});
        else
          preheaderInsts_.push_back(
              {.op = Op::FLdI, .type = elem_, .dst = extra, .fimm = 0.0});
        set.push_back(extra);
      }
    }

    // ---- which registers may be privatized per unroll copy -----------------
    // A register is iteration-local (renameable) when its first appearance
    // in the hot chain is a definition and it never appears in a side block
    // (side-block values like iamax's running max are loop-carried).
    {
      std::set<int64_t> seenUse, seenDef;
      auto key = [](Reg r) {
        return (static_cast<int64_t>(r.kind) << 32) | r.id;
      };
      auto scan = [&](const Inst& in) {
        const ir::OpInfo& oi = ir::opInfo(in.op);
        auto use = [&](Reg r) {
          if (r.valid() && r.isVirtual() && !seenDef.count(key(r)))
            seenUse.insert(key(r));
        };
        if (oi.numSrcs >= 1) use(in.src1);
        if (oi.numSrcs >= 2) use(in.src2);
        if (oi.numSrcs >= 3) use(in.src3);
        if (ir::touchesMem(in.op)) {
          use(in.mem.base);
          use(in.mem.index);
        }
        if (oi.hasDst && in.dst.isVirtual()) seenDef.insert(key(in.dst));
      };
      // The latch tail has already been stripped, so every remaining
      // instruction in the hot blocks is iteration code.
      for (int32_t bid : info_.hotBlocks)
        for (const Inst& in : fn_.block(bid).insts) scan(in);
      for (int64_t k : seenDef)
        if (!seenUse.count(k)) renameable_.insert(k);
      // Anything touched in a side block is shared.
      for (int32_t bid : info_.sideBlocks) {
        for (const Inst& in : fn_.block(bid).insts) {
          const ir::OpInfo& oi = ir::opInfo(in.op);
          auto drop = [&](Reg r) {
            if (r.valid()) renameable_.erase((static_cast<int64_t>(r.kind) << 32) | r.id);
          };
          if (oi.numSrcs >= 1) drop(in.src1);
          if (oi.numSrcs >= 2) drop(in.src2);
          if (oi.numSrcs >= 3) drop(in.src3);
          if (oi.hasDst) drop(in.dst);
          if (ir::touchesMem(in.op)) {
            drop(in.mem.base);
            drop(in.mem.index);
          }
        }
      }
    }

    // ---- unrolled copies 1..k-1 --------------------------------------------
    mainHotBlocks_ = info_.hotBlocks;
    size_t cursor = fn_.layoutIndex(loop.latch) + 1;
    std::vector<BasicBlock> sideClones;
    for (int c = 1; c < unroll_; ++c) {
      cursor = cloneCopy(c, cursor, loop, &sideClones);
    }
    // Rewrite copy 0's accumulator adds to target accumSets_[..][0] — they
    // already do (copy 0 keeps the original registers / the SV mapping).

    // ---- main latch -----------------------------------------------------------
    int32_t mlId = fn_.insertBlockAt(cursor++);
    Reg cnt = fn_.newIntReg();
    {
      ir::Builder b(fn_, mlId);
      for (Inst bump : bumps) {
        bump.imm *= totalStep_;
        b.emit(bump);
      }
      Inst upd = ivarUpd;
      upd.imm *= totalStep_;
      b.emit(upd);
      if (params_.optimizeLoopControl) {
        b.emit({.op = Op::IAddCC, .dst = cnt, .src1 = cnt, .imm = -totalStep_});
        b.jcc(Cond::GE, loop.header);
      } else {
        b.emit({.op = Op::IAddI, .dst = cnt, .src1 = cnt, .imm = -totalStep_});
        b.icmpi(cnt, totalStep_);
        b.jcc(Cond::GE, loop.header);
      }
    }

    // ---- reduction block -------------------------------------------------------
    int32_t reduceId = fn_.insertBlockAt(cursor++);
    reduceId_ = reduceId;
    {
      ir::Builder b(fn_, reduceId);
      for (Reg acc : info_.accumulators) {
        auto& set = accumSets_[acc.id];
        Reg a0 = set[0];
        for (size_t i = 1; i < set.size(); ++i) {
          Op op = vectorized_ ? Op::VAdd : Op::FAdd;
          b.emit({.op = op, .type = elem_, .dst = a0, .src1 = a0, .src2 = set[i]});
        }
        if (vectorized_) {
          Reg h = fn_.newFpReg();
          b.emit({.op = Op::VHAdd, .type = elem_, .dst = h, .src1 = a0});
          b.emit({.op = Op::FAdd, .type = elem_, .dst = acc, .src1 = acc, .src2 = h});
        }
      }
    }

    // ---- remainder loop --------------------------------------------------------
    Reg rem = fn_.newIntReg();
    if (totalStep_ > 1) {
      {
        ir::Builder b(fn_, reduceId);
        if (params_.optimizeLoopControl)
          b.emit({.op = Op::IAddI, .dst = rem, .src1 = cnt, .imm = totalStep_});
        else
          b.emit({.op = Op::IMov, .dst = rem, .src1 = cnt});
        b.icmpi(rem, 0);
        b.jcc(Cond::LE, loop.exit);
      }
      cursor = buildRemainder(cursor, loop, rem, ivarUpd);
    }

    // ---- side-block clones from unrolled copies --------------------------------
    for (auto& bb : sideClones) {
      int32_t id = fn_.insertBlockAt(cursor++);
      fn_.block(id).insts = std::move(bb.insts);
      sideCloneIdFix_[bb.id] = id;  // bb.id holds the provisional id
    }
    // Patch branches that referenced provisional side-clone ids.
    for (auto& bb : fn_.blocks)
      for (auto& in : bb.insts)
        if (ir::opInfo(in.op).isBranch) {
          auto it = sideCloneIdFix_.find(in.label);
          if (it != sideCloneIdFix_.end()) in.label = it->second;
        }

    // ---- preheader setup block (P2) ---------------------------------------------
    int32_t p2 = fn_.insertBlockAt(fn_.layoutIndex(loop.header));
    {
      ir::Builder b(fn_, p2);
      for (const Inst& in : preheaderInsts_) b.emit(in);
      if (params_.optimizeLoopControl) {
        b.emit({.op = Op::IAddCC, .dst = cnt, .src1 = loop.bound,
                .imm = -totalStep_});
        b.jcc(Cond::LT, reduceId);
      } else {
        b.emit({.op = Op::IMov, .dst = cnt, .src1 = loop.bound});
        b.icmpi(cnt, totalStep_);
        b.jcc(Cond::LT, reduceId);
      }
    }

    // Update the loop mark: the main loop now runs header..mainLatch.
    fn_.loop.latch = mlId;
    fn_.loop.preheader = p2;
  }

  /// Clones all body blocks for unroll copy `c`; returns the new cursor.
  /// Hot clones are inserted at `cursor`; side clones are collected with
  /// provisional ids (fixed up by the caller).
  size_t cloneCopy(int c, size_t cursor, const ir::LoopMark& loop,
                   std::vector<BasicBlock>* sideClones) {
    // Fresh names for everything the iteration code defines, except
    // accumulators (those rotate through the AE set).
    std::unordered_map<int32_t, Reg> renameInt, renameFp;
    std::unordered_map<int32_t, int32_t> blockMap;

    LatchTail tail{};  // strip info no longer needed: latch already stripped

    // Pre-create hot clone blocks to allow forward label references.
    for (int32_t bid : info_.hotBlocks) {
      int32_t nid = fn_.insertBlockAt(cursor++);
      blockMap[bid] = nid;
    }
    // Provisional ids for side clones (negative space to avoid collision).
    for (int32_t bid : info_.sideBlocks) {
      BasicBlock bb;
      bb.id = -1000 - static_cast<int32_t>(sideClones->size());
      blockMap[bid] = bb.id;
      sideClones->push_back(bb);
    }

    auto adjustInst = [&](Inst in, int32_t origBlock) -> std::vector<Inst> {
      std::vector<Inst> out;
      (void)origBlock;
      // Loop-variable uses become adjusted temporaries.
      if (instUsesReg(in, loop.ivar)) {
        Reg tmp = fn_.newIntReg();
        int64_t delta = fn_.loop.dir == ir::LoopDir::Down
                            ? -static_cast<int64_t>(c) * perCopyStep_
                            : static_cast<int64_t>(c) * perCopyStep_;
        out.push_back({.op = Op::IAddI, .dst = tmp, .src1 = loop.ivar,
                       .imm = delta});
        auto sub = [&](Reg& r) {
          if (r == loop.ivar) r = tmp;
        };
        sub(in.src1);
        sub(in.src2);
        sub(in.src3);
        if (in.mem.base == loop.ivar) in.mem.base = tmp;
        if (in.mem.index == loop.ivar) in.mem.index = tmp;
      }
      // Array displacements advance by c * perCopyStep_ elements
      // (bumpBytes is the per-element advance; 0 for non-advancing arrays).
      if (ir::touchesMem(in.op)) {
        for (const auto& a : info_.arrays) {
          if (in.mem.base == a.ptr)
            in.mem.disp += static_cast<int64_t>(c) * perCopyStep_ * a.bumpBytes;
        }
      }
      // Register renaming: accumulators rotate through the AE set;
      // iteration-local temps get fresh copies; loop-carried scalars
      // (e.g. iamax's running maximum) are shared, which is always correct
      // since the copies execute in original iteration order.
      auto rename = [&](Reg& r) {
        if (!r.valid() || !r.isVirtual()) return;
        if (r == loop.ivar) return;
        for (auto& [origId, set] : accumSets_) {
          for (Reg member : set)
            if (r == member) {
              r = set[static_cast<size_t>(c) % set.size()];
              return;
            }
          (void)origId;
        }
        if (renameable_.count((static_cast<int64_t>(r.kind) << 32) | r.id) == 0)
          return;
        auto& map = r.kind == ir::RegKind::Int ? renameInt : renameFp;
        auto it = map.find(r.id);
        if (it != map.end()) {
          r = it->second;
          return;
        }
        Reg fresh = r.kind == ir::RegKind::Int ? fn_.newIntReg() : fn_.newFpReg();
        map.emplace(r.id, fresh);
        r = fresh;
      };
      const ir::OpInfo& oi = ir::opInfo(in.op);
      if (oi.numSrcs >= 1) rename(in.src1);
      if (oi.numSrcs >= 2) rename(in.src2);
      if (oi.numSrcs >= 3) rename(in.src3);
      if (ir::touchesMem(in.op)) {
        rename(in.mem.base);
        rename(in.mem.index);
      }
      if (oi.hasDst) rename(in.dst);
      // Branch labels into the copy.
      if (oi.isBranch) {
        auto it = blockMap.find(in.label);
        if (it != blockMap.end()) in.label = it->second;
      }
      out.push_back(in);
      return out;
    };

    for (int32_t bid : info_.hotBlocks) {
      const BasicBlock& src = fn_.block(bid);
      std::vector<Inst> cloned;
      for (const Inst& in : src.insts)
        for (Inst& out : adjustInst(in, bid)) cloned.push_back(out);
      fn_.block(blockMap[bid]).insts = std::move(cloned);
      mainHotBlocks_.push_back(blockMap[bid]);
    }
    size_t sideBase = sideClones->size() - info_.sideBlocks.size();
    for (size_t s = 0; s < info_.sideBlocks.size(); ++s) {
      const BasicBlock& src = fn_.block(info_.sideBlocks[s]);
      std::vector<Inst> cloned;
      for (const Inst& in : src.insts)
        for (Inst& out : adjustInst(in, src.id)) cloned.push_back(out);
      (*sideClones)[sideBase + s].insts = std::move(cloned);
    }
    (void)tail;
    return cursor;
  }

  /// Builds the scalar remainder loop from the pristine body; returns cursor.
  size_t buildRemainder(size_t cursor, const ir::LoopMark& loop, Reg rem,
                        const Inst& ivarUpd) {
    std::unordered_map<int32_t, int32_t> blockMap;
    size_t numHot = info_.hotBlocks.size();
    // Pre-create hot remainder blocks.
    for (size_t i = 0; i < numHot; ++i) {
      int32_t nid = fn_.insertBlockAt(cursor++);
      blockMap[pristine_[i].id] = nid;
    }
    std::vector<int32_t> sideIds;
    for (size_t i = numHot; i < pristine_.size(); ++i) {
      int32_t nid = fn_.insertBlockAt(cursor++);
      blockMap[pristine_[i].id] = nid;
      sideIds.push_back(nid);
    }
    for (size_t i = 0; i < pristine_.size(); ++i) {
      std::vector<Inst> cloned;
      for (Inst in : pristine_[i].insts) {
        if (ir::opInfo(in.op).isBranch) {
          auto it = blockMap.find(in.label);
          if (it != blockMap.end()) in.label = it->second;
        }
        cloned.push_back(in);
      }
      fn_.block(blockMap[pristine_[i].id]).insts = std::move(cloned);
    }
    // Remainder latch tail: ivar update, counter, backedge, exit jump.
    int32_t remLatch = blockMap[loop.latch];
    int32_t remHeader = blockMap[loop.header];
    {
      ir::Builder b(fn_, remLatch);
      b.emit(ivarUpd);  // original +-1 update
      b.emit({.op = Op::IAddCC, .dst = rem, .src1 = rem, .imm = -1});
      b.jcc(Cond::GT, remHeader);
      b.jmp(loop.exit);
    }
    // Hot remainder blocks were inserted before side blocks, so the latch
    // falls through correctly; side blocks end with their own jumps.
    return cursor;
  }

  // --- PF --------------------------------------------------------------------
  void insertPrefetches() {
    const int line = machine_.lineBytes();
    std::vector<Inst> prefs;
    for (size_t ord = 0; ord < info_.arrays.size(); ++ord) {
      const auto& a = info_.arrays[ord];
      auto it = params_.prefetch.find(a.name);
      if (it == params_.prefetch.end() || !it->second.enabled) continue;
      if (!a.prefetchable()) continue;
      ir::PrefKind kind = it->second.kind;
      if (kind == ir::PrefKind::W && !machine_.hasPrefW)
        kind = ir::PrefKind::NTA;
      int64_t bytesPerIter = a.bumpBytes * totalStep_;
      int64_t nl = std::max<int64_t>(1, (bytesPerIter + line - 1) / line);
      for (int64_t j = 0; j < nl; ++j) {
        ir::Mem target = cisc_idx_.valid()
                             ? ir::memIdx(a.ptr, cisc_idx_, 1,
                                          it->second.distBytes + j * line)
                             : ir::mem(a.ptr, it->second.distBytes + j * line);
        // `imm` records which analysis array this Pref serves (ordinal in
        // the analysis report's array order) so the evaluation pipeline can
        // re-aim the displacement when only prefetch distances change.
        prefs.push_back({.op = Op::Pref, .mem = target,
                         .imm = static_cast<int64_t>(ord), .pref = kind});
      }
    }
    if (prefs.empty()) return;

    // Insertion slots across the main loop's hot blocks.
    struct Slot {
      int32_t block;
      size_t idx;
    };
    std::vector<Slot> slots;
    for (int32_t bid : mainHotBlocks_) {
      const BasicBlock& bb = fn_.block(bid);
      for (size_t i = 0; i <= bb.insts.size(); ++i) {
        // Never insert after a trailing branch.
        if (i == bb.insts.size() && !bb.insts.empty() &&
            ir::opInfo(bb.insts.back().op).isBranch)
          continue;
        slots.push_back({bid, i});
      }
    }
    if (slots.empty()) return;

    std::vector<std::pair<Slot, Inst>> placements;
    if (params_.prefSched == PrefSched::Top) {
      for (const Inst& p : prefs) placements.push_back({slots.front(), p});
    } else {
      for (size_t i = 0; i < prefs.size(); ++i) {
        size_t pick = slots.size() * (i + 1) / (prefs.size() + 1);
        pick = std::min(pick, slots.size() - 1);
        placements.push_back({slots[pick], prefs[i]});
      }
    }
    // Insert from the highest index down so earlier slots stay valid.
    std::stable_sort(placements.begin(), placements.end(),
                     [&](const auto& x, const auto& y) {
                       if (x.first.block != y.first.block)
                         return fn_.layoutIndex(x.first.block) >
                                fn_.layoutIndex(y.first.block);
                       return x.first.idx > y.first.idx;
                     });
    for (const auto& [slot, inst] : placements) {
      auto& insts = fn_.block(slot.block).insts;
      insts.insert(insts.begin() + static_cast<ptrdiff_t>(slot.idx), inst);
    }
  }

  // --- extension: CISC two-array indexing ------------------------------------
  void applyCiscIndexing() {
    std::vector<const analysis::ArrayInfo*> bumped;
    for (const auto& a : info_.arrays)
      if (a.bumpBytes > 0) bumped.push_back(&a);
    if (bumped.size() < 2) return;  // nothing to share
    int64_t perIter = bumped[0]->bumpBytes;
    for (const auto* a : bumped)
      if (a->bumpBytes != perIter) return;  // mixed strides: bail out

    Reg idx = fn_.newIntReg();
    cisc_idx_ = idx;
    // idx = 0 at the top of the preheader setup block.
    auto& p2 = fn_.block(fn_.loop.preheader).insts;
    p2.insert(p2.begin(), Inst{.op = Op::IMovI, .dst = idx, .imm = 0});

    // References go through [ptr + idx + disp].
    for (int32_t bid : mainHotBlocks_) {
      for (Inst& in : fn_.block(bid).insts) {
        if (!ir::touchesMem(in.op)) continue;
        for (const auto* a : bumped)
          if (in.mem.base == a->ptr && !in.mem.hasIndex()) in.mem.index = idx;
      }
    }
    // The main latch replaces the per-array bumps with one index update.
    auto& latch = fn_.block(fn_.loop.latch).insts;
    bool inserted = false;
    for (size_t i = 0; i < latch.size();) {
      bool isBump = latch[i].op == Op::IAddI && latch[i].dst == latch[i].src1;
      const analysis::ArrayInfo* arr = nullptr;
      for (const auto* a : bumped)
        if (latch[i].dst == a->ptr) arr = a;
      if (isBump && arr != nullptr) {
        if (!inserted) {
          latch[i] = Inst{.op = Op::IAddI, .dst = idx, .src1 = idx,
                          .imm = perIter * totalStep_};
          inserted = true;
          ++i;
        } else {
          latch.erase(latch.begin() + static_cast<ptrdiff_t>(i));
        }
      } else {
        ++i;
      }
    }
    // Materialize the pointer advance before the reductions/remainder (the
    // remainder loop still addresses through the plain pointers).
    auto& reduce = fn_.block(reduceId_).insts;
    size_t at = 0;
    for (const auto* a : bumped) {
      reduce.insert(reduce.begin() + static_cast<ptrdiff_t>(at++),
                    Inst{.op = Op::IAdd, .dst = a->ptr, .src1 = a->ptr,
                         .src2 = idx});
    }
  }

  // --- extension: block fetch --------------------------------------------------
  void applyBlockFetch() {
    const int line = machine_.lineBytes();
    std::vector<Inst> touches;
    for (const auto& a : info_.arrays) {
      if (!a.loaded || a.bumpBytes <= 0) continue;
      int64_t bytesPerIter = a.bumpBytes * totalStep_;
      int64_t nl = std::max<int64_t>(1, (bytesPerIter + line - 1) / line);
      for (int64_t j = 0; j < nl; ++j) {
        ir::Mem target = cisc_idx_.valid()
                             ? ir::memIdx(a.ptr, cisc_idx_, 1, j * line)
                             : ir::mem(a.ptr, j * line);
        touches.push_back({.op = Op::Touch, .type = elem_, .mem = target});
      }
    }
    if (touches.empty()) return;
    auto& header = fn_.block(fn_.loop.header).insts;
    header.insert(header.begin(), touches.begin(), touches.end());
  }

  // --- WNT --------------------------------------------------------------------
  void applyWNT() {
    std::set<int32_t> outPtrs;
    for (const auto& a : info_.arrays)
      if (a.stored) outPtrs.insert(a.ptr.id);
    for (int32_t bid : mainHotBlocks_) {
      for (Inst& in : fn_.block(bid).insts) {
        if (in.op == Op::FSt && outPtrs.count(in.mem.base.id))
          in.op = Op::FStNT;
        else if (in.op == Op::VSt && outPtrs.count(in.mem.base.id))
          in.op = Op::VStNT;
      }
    }
  }

  ir::Function fn_;
  const TuningParams& params_;
  const arch::MachineConfig& machine_;
  LoopInfo info_;
  Scal elem_ = Scal::F64;
  bool vectorized_ = false;
  int perCopyStep_ = 1;   ///< elements consumed by one unrolled copy
  int unroll_ = 1;
  int accum_expand_ = 1;
  int64_t totalStep_ = 1; ///< elements per main-loop iteration
  std::vector<BasicBlock> pristine_;
  std::vector<Inst> preheaderInsts_;
  std::unordered_map<int32_t, Reg> regMap_;  ///< SV: fp reg -> vector reg
  /// Per original accumulator: the expanded register set used by the copies.
  std::map<int32_t, std::vector<Reg>> accumSets_;
  std::vector<int32_t> mainHotBlocks_;
  int32_t reduceId_ = -1;
  Reg cisc_idx_ = Reg::none();
  std::unordered_map<int32_t, int32_t> sideCloneIdFix_;
  /// Keys (kind<<32)|id of registers that may be privatized per unroll copy.
  std::set<int64_t> renameable_;
};

}  // namespace

std::optional<ir::Function> applyFundamentalTransforms(
    const ir::Function& lowered, const TuningParams& params,
    const arch::MachineConfig& machine, std::string* error) {
  return LoopXform(lowered, params, machine).run(error);
}

}  // namespace ifko::opt
