#include "opt/regalloc.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "opt/liveness.h"

namespace ifko::opt {

using ir::Inst;
using ir::Op;
using ir::Reg;
using ir::RegKind;

namespace {

struct Interval {
  RegKey key = 0;
  int64_t start = 0;
  int64_t end = 0;
  double weight = 0;
  int assigned = -1;
};

struct Builder {
  const ir::Function& fn;
  std::map<RegKey, Interval> intervals;
  std::unordered_map<int32_t, std::pair<int64_t, int64_t>> blockRange;

  void build() {
    Liveness lv = computeLiveness(fn);
    // Loop-body block set for weighting.
    std::set<int32_t> loopBlocks;
    if (fn.loop.valid) {
      size_t h = fn.layoutIndex(fn.loop.header);
      size_t l = fn.layoutIndex(fn.loop.latch);
      if (h != static_cast<size_t>(-1) && l != static_cast<size_t>(-1))
        for (size_t i = h; i <= l && i < fn.blocks.size(); ++i)
          loopBlocks.insert(fn.blocks[i].id);
    }

    int64_t pos = 0;
    for (const auto& bb : fn.blocks) {
      int64_t bStart = pos;
      double w = loopBlocks.count(bb.id) ? 64.0 : 1.0;
      for (const auto& in : bb.insts) {
        for (Reg r : usedRegs(in))
          if (r.isVirtual()) touch(regKey(r), pos, w);
        Reg d = definedReg(in);
        if (d.valid() && d.isVirtual()) touch(regKey(d), pos, w);
        ++pos;
      }
      int64_t bEnd = pos > bStart ? pos - 1 : bStart;
      blockRange[bb.id] = {bStart, bEnd};
      // Live-through registers span the whole block.
      for (RegKey k : lv.liveIn[bb.id]) {
        if (!keyReg(k).isVirtual()) continue;
        touch(k, bStart, 0);
      }
      for (RegKey k : lv.liveOut[bb.id]) {
        if (!keyReg(k).isVirtual()) continue;
        touch(k, bEnd, 0);
      }
    }
    // Parameters are live from entry and must never spill; neither may
    // spill-code temporaries (see rewriteSpill).
    for (const auto& p : fn.params) {
      touch(regKey(p.reg), 0, 0);
      intervals[regKey(p.reg)].weight += 1e12;
    }
    for (RegKey k : *unspillable) {
      auto it = intervals.find(k);
      if (it != intervals.end()) it->second.weight += 1e12;
    }
  }

  const std::set<RegKey>* unspillable = nullptr;

  void touch(RegKey k, int64_t pos, double weight) {
    auto [it, fresh] = intervals.try_emplace(k);
    Interval& iv = it->second;
    if (fresh) {
      iv.key = k;
      iv.start = pos;
      iv.end = pos;
    } else {
      iv.start = std::min(iv.start, pos);
      iv.end = std::max(iv.end, pos);
    }
    iv.weight += weight;
  }
};

/// One scan over one register class; returns vregs to spill (empty = fit).
std::vector<RegKey> scanClass(std::vector<Interval> ivs, int numRegs,
                              RegAllocKind kind,
                              std::map<RegKey, int>* assignment) {
  std::sort(ivs.begin(), ivs.end(), [](const Interval& a, const Interval& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.key < b.key;
  });
  std::vector<RegKey> spills;
  std::vector<Interval*> active;
  std::set<int> freeRegs;
  for (int i = 0; i < numRegs; ++i) freeRegs.insert(i);

  for (auto& iv : ivs) {
    // Expire.
    for (size_t i = active.size(); i-- > 0;) {
      if (active[i]->end < iv.start) {
        freeRegs.insert(active[i]->assigned);
        active.erase(active.begin() + static_cast<ptrdiff_t>(i));
      }
    }
    if (!freeRegs.empty()) {
      iv.assigned = *freeRegs.begin();
      freeRegs.erase(freeRegs.begin());
      active.push_back(&iv);
      continue;
    }
    // Choose a victim: cheapest weight (LinearScan) or furthest end (Basic),
    // considering the new interval itself.
    Interval* victim = &iv;
    auto density = [](const Interval* x) {
      // Spill cost per cycle of register occupancy: long, rarely-used
      // intervals are the cheapest to evict.
      return x->weight / static_cast<double>(x->end - x->start + 1);
    };
    for (Interval* a : active) {
      bool better;
      if (kind == RegAllocKind::LinearScan) {
        better = density(a) < density(victim);
      } else {
        // Basic: furthest end, but never an unspillable interval.
        bool aPinned = a->weight >= 1e12, vPinned = victim->weight >= 1e12;
        better = vPinned ? !aPinned : (!aPinned && a->end > victim->end);
      }
      if (better) victim = a;
    }
    if (victim == &iv) {
      spills.push_back(iv.key);
      continue;
    }
    iv.assigned = victim->assigned;
    spills.push_back(victim->key);
    victim->assigned = -1;
    active.erase(std::find(active.begin(), active.end(), victim));
    active.push_back(&iv);
  }
  for (const auto& iv : ivs)
    if (iv.assigned >= 0) (*assignment)[iv.key] = iv.assigned;
  return spills;
}

/// Spill-everywhere rewriting for one vreg.  Freshly created reload/store
/// temporaries are recorded as unspillable: their live ranges are minimal,
/// and allowing them to spill again would make the rewrite diverge.
void rewriteSpill(ir::Function& fn, Reg v, int slot,
                  std::set<RegKey>* unspillable) {
  Reg sp = Reg::intReg(ir::kSpillBaseReg);
  ir::Mem slotMem{.base = sp, .index = Reg::none(), .scale = 1,
                  .disp = static_cast<int64_t>(slot) * 16};
  for (auto& bb : fn.blocks) {
    for (size_t i = 0; i < bb.insts.size(); ++i) {
      Inst& in = bb.insts[i];
      bool usesV = false;
      for (Reg r : usedRegs(in))
        if (r == v) usesV = true;
      bool defsV = definedReg(in) == v;
      if (!usesV && !defsV) continue;

      if (usesV) {
        Reg tmp = v.kind == RegKind::Int ? fn.newIntReg() : fn.newFpReg();
        unspillable->insert(regKey(tmp));
        Inst reload = v.kind == RegKind::Int
                          ? Inst{.op = Op::ILd, .dst = tmp, .mem = slotMem}
                          : Inst{.op = Op::VLd, .type = ir::Scal::F64,
                                 .dst = tmp, .mem = slotMem};
        auto sub = [&](Reg& r) {
          if (r == v) r = tmp;
        };
        sub(in.src1);
        sub(in.src2);
        sub(in.src3);
        sub(in.mem.base);
        sub(in.mem.index);
        bb.insts.insert(bb.insts.begin() + static_cast<ptrdiff_t>(i), reload);
        ++i;  // `in` moved one forward; i now indexes it again after ++ below
      }
      Inst& cur = bb.insts[i];
      if (defsV) {
        Reg tmp = v.kind == RegKind::Int ? fn.newIntReg() : fn.newFpReg();
        unspillable->insert(regKey(tmp));
        cur.dst = tmp;
        Inst store = v.kind == RegKind::Int
                         ? Inst{.op = Op::ISt, .src1 = tmp, .mem = slotMem}
                         : Inst{.op = Op::VSt, .type = ir::Scal::F64,
                                .src1 = tmp, .mem = slotMem};
        bb.insts.insert(bb.insts.begin() + static_cast<ptrdiff_t>(i) + 1, store);
        ++i;
      }
    }
  }
}

}  // namespace

RegAllocResult allocateRegisters(ir::Function& fn, RegAllocKind kind) {
  RegAllocResult result;
  std::map<RegKey, int> spillSlot;
  std::set<RegKey> unspillable;

  for (int round = 0; round < 12; ++round) {
    Builder b{fn};
    b.unspillable = &unspillable;
    b.build();

    std::vector<Interval> intIvs, fpIvs;
    for (auto& [k, iv] : b.intervals) {
      // Already-spilled vregs were fully rewritten away.
      if (keyReg(k).kind == RegKind::Int)
        intIvs.push_back(iv);
      else
        fpIvs.push_back(iv);
    }
    std::map<RegKey, int> assignment;
    // Integer register 7 is the spill base; 0..6 are allocatable.
    std::vector<RegKey> spills =
        scanClass(intIvs, ir::kNumIntRegs - 1, kind, &assignment);
    for (RegKey k : scanClass(fpIvs, ir::kNumFpRegs, kind, &assignment))
      spills.push_back(k);

    if (spills.empty()) {
      // Apply the assignment.
      auto apply = [&](Reg& r) {
        if (!r.valid() || !r.isVirtual()) return;
        auto it = assignment.find(regKey(r));
        r = Reg{r.kind, it == assignment.end() ? 0 : it->second};
      };
      for (auto& bb : fn.blocks) {
        for (auto& in : bb.insts) {
          apply(in.dst);
          apply(in.src1);
          apply(in.src2);
          apply(in.src3);
          apply(in.mem.base);
          apply(in.mem.index);
        }
      }
      for (auto& p : fn.params) apply(p.reg);
      if (fn.loop.valid) {
        apply(fn.loop.ivar);
        apply(fn.loop.bound);
      }
      fn.regAllocated = true;
      fn.numSpillSlots = static_cast<int>(spillSlot.size());
      result.ok = true;
      result.spillSlots = fn.numSpillSlots;
      result.spilledValues = static_cast<int>(spillSlot.size());
      return result;
    }

    for (RegKey k : spills) {
      Reg v = keyReg(k);
      bool isParam = false;
      for (const auto& p : fn.params)
        if (p.reg == v) isParam = true;
      if (isParam) {
        result.error = "register allocator tried to spill a parameter";
        return result;
      }
      int slot = static_cast<int>(spillSlot.size());
      auto [it, fresh] = spillSlot.try_emplace(k, slot);
      rewriteSpill(fn, v, it->second, &unspillable);
      (void)fresh;
    }
  }
  result.error = "register allocation did not converge";
  return result;
}

}  // namespace ifko::opt
