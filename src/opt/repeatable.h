// FKO's repeatable transformations (paper Section 2.2.4): register-usage
// and control-flow cleanups that are applied in a series (an "optimization
// block") repeated while they still change the code.
//
//  * copy propagation (several forms: forward within blocks, for both
//    register classes)
//  * dead code elimination (liveness-based)
//  * x86 peephole: fold loads into memory-operand ALU forms (the ISA "is
//    not a true load/store architecture", which matters with 8 registers)
//  * branch chaining, useless jump elimination, unreachable-block removal,
//    and basic-block merging (critical after extensive loop unrolling)
//
// Each pass returns true when it changed the function; runRepeatable drives
// them to a fixed point.
#pragma once

#include "ir/function.h"

namespace ifko::opt {

bool copyPropagation(ir::Function& fn);
bool deadCodeElim(ir::Function& fn);
bool peepholeLoadOp(ir::Function& fn);
bool branchChaining(ir::Function& fn);
bool uselessJumpElim(ir::Function& fn);
bool removeUnreachable(ir::Function& fn);
bool mergeBlocks(ir::Function& fn);

/// Runs the full optimization block to a fixed point (bounded).
/// Returns the number of iterations that changed something.
int runRepeatable(ir::Function& fn, int maxIters = 10);

}  // namespace ifko::opt
