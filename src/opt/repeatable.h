// FKO's repeatable transformations (paper Section 2.2.4): register-usage
// and control-flow cleanups that are applied in a series (an "optimization
// block") repeated while they still change the code.
//
//  * copy propagation (several forms: forward within blocks, for both
//    register classes)
//  * dead code elimination (liveness-based)
//  * x86 peephole: fold loads into memory-operand ALU forms (the ISA "is
//    not a true load/store architecture", which matters with 8 registers)
//  * branch chaining, useless jump elimination, unreachable-block removal,
//    and basic-block merging (critical after extensive loop unrolling)
//
// Each pass returns true when it changed the function; runRepeatable drives
// them to a fixed point.
#pragma once

#include <string>
#include <vector>

#include "ir/function.h"

namespace ifko::opt {

bool copyPropagation(ir::Function& fn);
bool deadCodeElim(ir::Function& fn);
bool peepholeLoadOp(ir::Function& fn);
bool branchChaining(ir::Function& fn);
bool uselessJumpElim(ir::Function& fn);
bool removeUnreachable(ir::Function& fn);
bool mergeBlocks(ir::Function& fn);

/// Observability record for one pass of the optimization block: how many
/// instructions it saw, what it left behind, and across how many of the
/// block's iterations it fired.
struct PassDelta {
  std::string name;
  size_t instsBefore = 0;  ///< at the pass's first application
  size_t instsAfter = 0;   ///< after its last application
  int iterations = 0;      ///< block iterations in which the pass changed fn
  bool changed = false;
};

struct RepeatableReport {
  int iterations = 0;  ///< block iterations that changed something
  /// True when the block exited because a full sweep changed nothing;
  /// false means the iteration cap cut a still-changing (possibly
  /// oscillating) sequence short.
  bool converged = true;
  std::vector<PassDelta> passes;
};

/// Runs the full optimization block to a fixed point (bounded), recording
/// per-pass deltas.
RepeatableReport runRepeatableReport(ir::Function& fn, int maxIters = 10);

/// Runs the full optimization block to a fixed point (bounded).
/// Returns the number of iterations that changed something.
int runRepeatable(ir::Function& fn, int maxIters = 10);

}  // namespace ifko::opt
