// Global liveness analysis over virtual (and physical) registers.
// Shared by dead-code elimination and the register allocator.
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "ir/function.h"

namespace ifko::opt {

/// Registers are keyed by (kind << 32) | id.
using RegKey = int64_t;

[[nodiscard]] inline RegKey regKey(ir::Reg r) {
  return (static_cast<int64_t>(r.kind) << 32) | static_cast<uint32_t>(r.id);
}
[[nodiscard]] inline ir::Reg keyReg(RegKey k) {
  return {static_cast<ir::RegKind>(k >> 32), static_cast<int32_t>(k & 0xFFFFFFFF)};
}

struct Liveness {
  std::unordered_map<int32_t, std::set<RegKey>> liveIn;
  std::unordered_map<int32_t, std::set<RegKey>> liveOut;
};

/// Registers read by `in` (sources, memory operands, ret value).
[[nodiscard]] std::vector<ir::Reg> usedRegs(const ir::Inst& in);
/// Register written by `in`, or invalid.
[[nodiscard]] ir::Reg definedReg(const ir::Inst& in);

[[nodiscard]] Liveness computeLiveness(const ir::Function& fn);

}  // namespace ifko::opt
