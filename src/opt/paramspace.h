// The legal tuning-parameter space, as data: enumeration grids, uniform
// sampling, one-step neighborhoods, mutation and crossover.
//
// The paper's modified line search walks hard-coded per-dimension grids;
// growing the search into a pluggable subsystem (search/strategy) requires
// the space itself to be a first-class object the strategies share.  The
// grids here are exactly the ones the line search has always used, so every
// strategy — line, random, hill-climb, evolutionary — explores the same
// legal space and their results are directly comparable.
//
// Legality rules encoded here (and enforced by clamp/sample/neighbors):
//   - UR comes from unrollGrid, never exceeding the kernel's max unroll;
//   - AE <= UR, and AE is only searched when the kernel has reduction
//     accumulators (accums is empty otherwise);
//   - a prefetch distance of 0 bytes means "prefetch disabled" and
//     canonicalizes the kind away (opt::formatPref renders it "none");
//   - WNT is only toggled when the loop stores (wnt flag);
//   - BF / CISC only when the extension transforms are being searched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/inst.h"
#include "opt/params.h"
#include "support/rng.h"

namespace ifko::opt {

/// Candidate unroll factors (paper Table 3 lands on values like 1..5, 8,
/// 16, 32, 64), filtered to the kernel's maximum legal unroll.  `reduced`
/// selects the smoke-test grid.
[[nodiscard]] std::vector<int> unrollGrid(bool reduced, int maxUnroll);

/// Candidate accumulator-expansion counts.
[[nodiscard]] std::vector<int> accumGrid(bool reduced);

/// Candidate prefetch distances in cache-line multiples; 0 encodes "no
/// prefetch".
[[nodiscard]] std::vector<int> prefDistMultGrid(bool reduced);

/// The searchable space for one kernel on one machine.  Built by the search
/// layer from the compiler's analysis report (search::spaceFor); pure
/// parameter data here, so every helper below is deterministic and
/// side-effect-free.
struct ParamSpace {
  std::vector<int> unrolls;             ///< legal UR values, ascending
  std::vector<int> accums;              ///< legal AE values; empty = AE off
  std::vector<int> prefDistBytes;       ///< per-array distances; 0 = off
  std::vector<ir::PrefKind> prefKinds;  ///< machine's prefetch instructions
  std::vector<std::string> prefArrays;  ///< prefetchable arrays, loop order
  bool wnt = false;         ///< loop stores: WNT is a live axis
  bool extensions = false;  ///< BF / CISC toggles are live axes
  bool reduced = false;     ///< smoke-test grids (skips UR*AE refinement)
  int maxUnroll = 1;        ///< kernel's legal unroll ceiling

  /// Number of distinct legal points (saturating; 0 only for a degenerate
  /// empty space).
  [[nodiscard]] uint64_t size() const;

  /// Legalizes `p`: clamps UR into the grid ceiling and AE to at most UR
  /// (the same rule the line search applies when it moves UR).
  [[nodiscard]] TuningParams clamp(TuningParams p) const;

  /// Uniform random point.  Axes not in the space (SV, LC, sched, and any
  /// frozen toggles) keep their values from `base`.
  [[nodiscard]] TuningParams sample(const TuningParams& base,
                                    SplitMix64& rng) const;

  /// Every one-step move from `p`: adjacent UR/AE/distance grid values,
  /// adjacent prefetch kinds, and the live toggles.  Deterministic order,
  /// deduplicated, never contains `p` itself.
  [[nodiscard]] std::vector<TuningParams> neighbors(const TuningParams& p) const;

  /// One random one-step move (a uniform choice among neighbors(p));
  /// returns `p` unchanged when it has no neighbors.
  [[nodiscard]] TuningParams mutate(const TuningParams& p,
                                    SplitMix64& rng) const;

  /// Per-axis uniform crossover: each searched axis (UR, AE, WNT, each
  /// array's whole prefetch setting, BF, CISC) comes from `a` or `b` by
  /// coin flip, then the result is legalized.
  [[nodiscard]] TuningParams crossover(const TuningParams& a,
                                       const TuningParams& b,
                                       SplitMix64& rng) const;
};

}  // namespace ifko::opt
