// Empirically tuned parameters of FKO's fundamental transforms
// (paper Sections 2.2.3 and 2.3).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ir/inst.h"

namespace ifko::opt {

/// Prefetch settings for one array.
struct PrefParam {
  bool enabled = false;
  ir::PrefKind kind = ir::PrefKind::NTA;
  int distBytes = 0;  ///< fetch-ahead distance from the current iteration

  friend bool operator==(const PrefParam&, const PrefParam&) = default;
};

/// How prefetch instructions are placed within the unrolled loop body
/// ("various simple scheduling methodologies").
enum class PrefSched : uint8_t {
  Spread,  ///< distributed across the unrolled body (default)
  Top,     ///< all at the top of the body
};

struct TuningParams {
  /// SV: SIMD-vectorize the loop when analysis allows it.
  bool simdVectorize = true;
  /// UR: unroll factor (applied after SV, so the computational unrolling is
  /// unroll * veclen when vectorization succeeds).  1 = no unrolling.
  int unroll = 1;
  /// LC: optimized loop control (biased counter with fused test).
  bool optimizeLoopControl = true;
  /// AE: number of accumulators per reduction scalar.  1 = off.
  int accumExpand = 1;
  /// PF: per-array prefetch, keyed by parameter name ("X", "Y").
  std::map<std::string, PrefParam> prefetch;
  PrefSched prefSched = PrefSched::Spread;
  /// WNT: non-temporal writes on the loop's output arrays.
  bool nonTemporalWrites = false;

  // --- extensions beyond the paper's evaluated transform set --------------
  // (both named as planned/future work in Section 3.3; off by default so
  // the reproduction matches the evaluated FKO)

  /// Block fetch [Wall 2001]: touch every line an iteration will read with
  /// grouped demand loads at the top of the body ("can be performed
  /// generally and safely in a compiler, and we are planning to add it").
  bool blockFetch = false;
  /// CISC two-array indexing: address all arrays through one shared index
  /// register, removing the per-array pointer bumps ("FKO presently does
  /// not exploit the opportunity").
  bool ciscIndexing = false;

  friend bool operator==(const TuningParams&, const TuningParams&) = default;

  [[nodiscard]] std::string str() const;
};

}  // namespace ifko::opt
