// Empirically tuned parameters of FKO's fundamental transforms
// (paper Sections 2.2.3 and 2.3).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ir/inst.h"

namespace ifko::opt {

/// Prefetch settings for one array.
struct PrefParam {
  bool enabled = false;
  ir::PrefKind kind = ir::PrefKind::NTA;
  int distBytes = 0;  ///< fetch-ahead distance from the current iteration

  friend bool operator==(const PrefParam&, const PrefParam&) = default;
};

/// How prefetch instructions are placed within the unrolled loop body
/// ("various simple scheduling methodologies").
enum class PrefSched : uint8_t {
  Spread,  ///< distributed across the unrolled body (default)
  Top,     ///< all at the top of the body
};

struct TuningParams {
  /// SV: SIMD-vectorize the loop when analysis allows it.
  bool simdVectorize = true;
  /// UR: unroll factor (applied after SV, so the computational unrolling is
  /// unroll * veclen when vectorization succeeds).  1 = no unrolling.
  int unroll = 1;
  /// LC: optimized loop control (biased counter with fused test).
  bool optimizeLoopControl = true;
  /// AE: number of accumulators per reduction scalar.  1 = off.
  int accumExpand = 1;
  /// PF: per-array prefetch, keyed by parameter name ("X", "Y").
  std::map<std::string, PrefParam> prefetch;
  PrefSched prefSched = PrefSched::Spread;
  /// WNT: non-temporal writes on the loop's output arrays.
  bool nonTemporalWrites = false;

  // --- extensions beyond the paper's evaluated transform set --------------
  // (both named as planned/future work in Section 3.3; off by default so
  // the reproduction matches the evaluated FKO)

  /// Block fetch [Wall 2001]: touch every line an iteration will read with
  /// grouped demand loads at the top of the body ("can be performed
  /// generally and safely in a compiler, and we are planning to add it").
  bool blockFetch = false;
  /// CISC two-array indexing: address all arrays through one shared index
  /// register, removing the per-array pointer bumps ("FKO presently does
  /// not exploit the opportunity").
  bool ciscIndexing = false;

  friend bool operator==(const TuningParams&, const TuningParams&) = default;

  /// Alias for formatTuningSpec(*this).
  [[nodiscard]] std::string str() const;
};

// --- TuningSpec: the one serialization of TuningParams ----------------------
//
// A tuning spec is a whitespace- or comma-separated list of assignments:
//
//   spec   := assign (("," | ws)+ assign)*
//   assign := key "=" value
//   key    := "sv" | "ur" | "lc" | "ae" | "sched" | "wnt" | "bf" | "cisc"
//           | "pf(" ARRAY ")"
//   value  := bool for sv/lc/wnt/bf/cisc   (Y|N|1|0|yes|no|true|false)
//           | int >= 1 for ur/ae
//           | "spread" | "top" for sched
//           | ("none" | KIND ":" DIST) for pf(...), KIND in nta|t0|t1|w,
//             DIST a byte count >= 0
//
// formatTuningSpec renders the canonical form: every scalar field explicit,
// fixed order, lowercase keys, prefetch entries sorted by array name —
//
//   sv=Y ur=4 lc=Y ae=1 sched=spread wnt=N bf=N cisc=N pf(X)=nta:128
//
// This exact string is what the driver flags parse into, what
// search::paramsRow renders from, what the persistent evaluation cache keys
// on, and what the trace events carry — one serialization, four call sites.
// A disabled prefetch entry canonicalizes to "none" (its stale kind/distance
// are not round-tripped; they are meaningless while disabled).

/// Result of parseTuningSpec.
struct TuningSpec {
  bool ok = false;
  std::string error;
  TuningParams params;
};

/// Canonical single-line rendering of `params` (grammar above).
[[nodiscard]] std::string formatTuningSpec(const TuningParams& params);

/// Renders one prefetch setting: "none" or "KIND:DIST" (e.g. "nta:128") —
/// the shared piece behind formatTuningSpec and search::paramsRow cells.
[[nodiscard]] std::string formatPref(const PrefParam& p);

/// Parses `text` as a sequence of assignments applied on top of `base`
/// (defaults when omitted), so a partial spec like "ur=8" is valid.  Strictly
/// validating: non-numeric counts, unknown keys/kinds, and out-of-range
/// values are errors, never silently zero.
[[nodiscard]] TuningSpec parseTuningSpec(const std::string& text,
                                         const TuningParams& base = {});

}  // namespace ifko::opt
