// Register allocation onto the x86 files: 8 integer registers (one reserved
// as the spill-area base) and 8 xmm registers.
//
// The paper's FKO supports "two types of register allocation"; both are
// linear-scan variants here, differing in spill choice:
//  * LinearScan: loop-aware weights (uses inside the tuned loop count far
//    more), spill the cheapest interval;
//  * Basic: classic furthest-end spilling with no loop awareness.
//
// Spilled values use spill-everywhere rewriting (a reload before each use,
// a store after each def, 16-byte slots so vector values are safe), then the
// scan repeats on the rewritten code until it fits.
#pragma once

#include <string>

#include "ir/function.h"

namespace ifko::opt {

enum class RegAllocKind { LinearScan, Basic };

struct RegAllocResult {
  bool ok = false;
  std::string error;
  int spillSlots = 0;
  int spilledValues = 0;
};

RegAllocResult allocateRegisters(ir::Function& fn,
                                 RegAllocKind kind = RegAllocKind::LinearScan);

}  // namespace ifko::opt
