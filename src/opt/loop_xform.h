// FKO's fundamental transformations (paper Section 2.2.3), applied once and
// in a fixed order to the loop flagged for tuning:
//
//   SV  SIMD vectorization        (scalar body ops -> packed SSE ops)
//   UR  loop unrolling            (N_u copies, merged pointer/index updates;
//                                  after SV the computational unrolling is
//                                  N_u * veclen)
//   LC  optimized loop control    (biased down-counter with a fused
//                                  update+test, avoiding the extra compare)
//   AE  accumulator expansion     (breaks the FP-add dependence chain of
//                                  reduction scalars across N_a registers)
//   PF  prefetch                  (instruction kind, distance, scheduling,
//                                  per array)
//   WNT non-temporal writes       (on the loop's output arrays)
//
// The pipeline also performs the supporting restructuring: a guarded main
// loop consuming veclen*N_u elements per iteration plus a scalar remainder
// loop cloned from the pristine body, with reduction epilogues between them.
#pragma once

#include <optional>
#include <string>

#include "arch/machine.h"
#include "ir/function.h"
#include "opt/params.h"

namespace ifko::opt {

/// Applies the fundamental transforms to a freshly lowered kernel.
/// Returns nullopt (with *error set) when the request is malformed; tuning
/// parameters that are merely unprofitable or inapplicable (e.g. SV on
/// iamax) degrade gracefully instead of failing.
[[nodiscard]] std::optional<ir::Function> applyFundamentalTransforms(
    const ir::Function& lowered, const TuningParams& params,
    const arch::MachineConfig& machine, std::string* error = nullptr);

}  // namespace ifko::opt
