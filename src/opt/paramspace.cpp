#include "opt/paramspace.h"

#include <algorithm>
#include <cstdlib>

namespace ifko::opt {

std::vector<int> unrollGrid(bool reduced, int maxUnroll) {
  std::vector<int> grid = reduced ? std::vector<int>{1, 2, 4, 8}
                                  : std::vector<int>{1, 2, 3, 4, 5, 6, 8, 12,
                                                     16, 24, 32, 64, 128};
  grid.erase(std::remove_if(grid.begin(), grid.end(),
                            [&](int u) { return u > maxUnroll; }),
             grid.end());
  return grid;
}

std::vector<int> accumGrid(bool reduced) {
  return reduced ? std::vector<int>{1, 2, 4}
                 : std::vector<int>{1, 2, 3, 4, 5, 8, 16};
}

std::vector<int> prefDistMultGrid(bool reduced) {
  return reduced ? std::vector<int>{0, 2, 16}
                 : std::vector<int>{0, 1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 28,
                                    32};
}

namespace {

/// Index of the grid value nearest to `v` (ties toward the smaller), for
/// points that sit between grid lines (e.g. a default UR the grid lacks).
size_t nearestIndex(const std::vector<int>& grid, int v) {
  size_t best = 0;
  int bestDist = INT32_MAX;
  for (size_t i = 0; i < grid.size(); ++i) {
    int d = std::abs(grid[i] - v);
    if (d < bestDist) {
      bestDist = d;
      best = i;
    }
  }
  return best;
}

/// The canonical disabled prefetch setting ("none").
PrefParam prefOff() { return PrefParam{false, ir::PrefKind::NTA, 0}; }

PrefParam prefAt(ir::PrefKind kind, int distBytes) {
  if (distBytes == 0) return prefOff();
  return PrefParam{true, kind, distBytes};
}

}  // namespace

uint64_t ParamSpace::size() const {
  // UR x AE under the AE <= UR constraint.
  uint64_t urae = 0;
  for (int u : unrolls) {
    uint64_t ae = 0;
    for (int m : accums)
      if (m <= u) ++ae;
    urae += std::max<uint64_t>(ae, 1);
  }
  if (urae == 0) urae = 1;

  // Per-array prefetch: disabled, or any (kind, nonzero distance) pair.
  uint64_t nonzero = 0;
  for (int d : prefDistBytes)
    if (d != 0) ++nonzero;
  uint64_t perArray = 1 + nonzero * std::max<uint64_t>(prefKinds.size(), 1);

  uint64_t total = urae;
  auto mul = [&](uint64_t f) {
    if (f == 0) return;
    total = total > UINT64_MAX / f ? UINT64_MAX : total * f;
  };
  for (size_t i = 0; i < prefArrays.size(); ++i) mul(perArray);
  if (wnt) mul(2);
  if (extensions) mul(4);
  return total;
}

TuningParams ParamSpace::clamp(TuningParams p) const {
  if (p.unroll < 1) p.unroll = 1;
  if (p.unroll > maxUnroll) p.unroll = maxUnroll;
  if (p.accumExpand < 1) p.accumExpand = 1;
  if (accums.empty()) p.accumExpand = 1;
  p.accumExpand = std::min(p.accumExpand, p.unroll);
  for (auto& [name, pref] : p.prefetch)
    if (!pref.enabled || pref.distBytes == 0) pref = prefOff();
  return p;
}

TuningParams ParamSpace::sample(const TuningParams& base,
                                SplitMix64& rng) const {
  TuningParams p = base;
  if (!unrolls.empty()) p.unroll = unrolls[rng.below(unrolls.size())];
  if (!accums.empty()) {
    // Draw AE among the values legal for the drawn UR.
    std::vector<int> legal;
    for (int m : accums)
      if (m <= p.unroll) legal.push_back(m);
    p.accumExpand = legal.empty() ? 1 : legal[rng.below(legal.size())];
  } else {
    p.accumExpand = 1;
  }
  for (const std::string& name : prefArrays) {
    if (prefDistBytes.empty()) break;
    int dist = prefDistBytes[rng.below(prefDistBytes.size())];
    ir::PrefKind kind = prefKinds.empty()
                            ? ir::PrefKind::NTA
                            : prefKinds[rng.below(prefKinds.size())];
    p.prefetch[name] = prefAt(kind, dist);
  }
  if (wnt) p.nonTemporalWrites = rng.below(2) == 1;
  if (extensions) {
    p.blockFetch = rng.below(2) == 1;
    p.ciscIndexing = rng.below(2) == 1;
  }
  return clamp(p);
}

std::vector<TuningParams> ParamSpace::neighbors(const TuningParams& p) const {
  std::vector<TuningParams> out;
  std::vector<std::string> seen = {formatTuningSpec(p)};
  auto push = [&](TuningParams t) {
    t = clamp(std::move(t));
    std::string key = formatTuningSpec(t);
    for (const std::string& s : seen)
      if (s == key) return;
    seen.push_back(std::move(key));
    out.push_back(std::move(t));
  };
  auto adjacent = [&](const std::vector<int>& grid, int v,
                      const auto& apply) {
    if (grid.empty()) return;
    size_t i = nearestIndex(grid, v);
    if (i > 0) apply(grid[i - 1]);
    if (grid[i] != v) apply(grid[i]);  // off-grid point: snap is a move too
    if (i + 1 < grid.size()) apply(grid[i + 1]);
  };

  adjacent(unrolls, p.unroll, [&](int u) {
    TuningParams t = p;
    t.unroll = u;
    t.accumExpand = std::min(t.accumExpand, u);
    push(std::move(t));
  });
  adjacent(accums, p.accumExpand, [&](int m) {
    if (m > p.unroll) return;
    TuningParams t = p;
    t.accumExpand = m;
    push(std::move(t));
  });
  for (const std::string& name : prefArrays) {
    auto it = p.prefetch.find(name);
    PrefParam cur = it == p.prefetch.end() ? prefOff() : it->second;
    int curDist = cur.enabled ? cur.distBytes : 0;
    ir::PrefKind curKind = cur.enabled ? cur.kind : ir::PrefKind::NTA;
    adjacent(prefDistBytes, curDist, [&](int d) {
      TuningParams t = p;
      t.prefetch[name] = prefAt(curKind, d);
      push(std::move(t));
    });
    if (cur.enabled && prefKinds.size() > 1) {
      size_t i = 0;
      for (size_t k = 0; k < prefKinds.size(); ++k)
        if (prefKinds[k] == curKind) i = k;
      auto kindMove = [&](size_t k) {
        TuningParams t = p;
        t.prefetch[name] = prefAt(prefKinds[k], curDist);
        push(std::move(t));
      };
      if (i > 0) kindMove(i - 1);
      if (i + 1 < prefKinds.size()) kindMove(i + 1);
    }
  }
  if (wnt) {
    TuningParams t = p;
    t.nonTemporalWrites = !t.nonTemporalWrites;
    push(std::move(t));
  }
  if (extensions) {
    TuningParams t = p;
    t.blockFetch = !t.blockFetch;
    push(std::move(t));
    TuningParams u = p;
    u.ciscIndexing = !u.ciscIndexing;
    push(std::move(u));
  }
  return out;
}

TuningParams ParamSpace::mutate(const TuningParams& p, SplitMix64& rng) const {
  std::vector<TuningParams> moves = neighbors(p);
  if (moves.empty()) return p;
  return moves[rng.below(moves.size())];
}

TuningParams ParamSpace::crossover(const TuningParams& a, const TuningParams& b,
                                   SplitMix64& rng) const {
  TuningParams child = a;
  auto fromB = [&] { return rng.below(2) == 1; };
  if (fromB()) child.unroll = b.unroll;
  if (fromB()) child.accumExpand = b.accumExpand;
  if (wnt && fromB()) child.nonTemporalWrites = b.nonTemporalWrites;
  for (const std::string& name : prefArrays) {
    if (!fromB()) continue;
    auto it = b.prefetch.find(name);
    child.prefetch[name] = it == b.prefetch.end() ? prefOff() : it->second;
  }
  if (extensions) {
    if (fromB()) child.blockFetch = b.blockFetch;
    if (fromB()) child.ciscIndexing = b.ciscIndexing;
  }
  return clamp(std::move(child));
}

}  // namespace ifko::opt
