// TuningSpec: canonical, round-trippable serialization of TuningParams.
#include "opt/params.h"

#include <climits>
#include <cstdlib>

#include "support/str.h"

namespace ifko::opt {

namespace {

const char* yn(bool b) { return b ? "Y" : "N"; }

bool parseBool(std::string_view v, bool* out) {
  if (v == "Y" || v == "y" || v == "1" || v == "yes" || v == "true") {
    *out = true;
    return true;
  }
  if (v == "N" || v == "n" || v == "0" || v == "no" || v == "false") {
    *out = false;
    return true;
  }
  return false;
}

/// Strict decimal parse: the whole token must be digits (optional sign).
bool parseInt(std::string_view v, int* out) {
  if (v.empty()) return false;
  std::string s(v);
  char* end = nullptr;
  long val = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  if (val < INT_MIN || val > INT_MAX) return false;
  *out = static_cast<int>(val);
  return true;
}

bool parsePrefKind(std::string_view v, ir::PrefKind* out) {
  if (v == "nta") *out = ir::PrefKind::NTA;
  else if (v == "t0") *out = ir::PrefKind::T0;
  else if (v == "t1") *out = ir::PrefKind::T1;
  else if (v == "w") *out = ir::PrefKind::W;
  else return false;
  return true;
}

}  // namespace

std::string formatPref(const PrefParam& p) {
  if (!p.enabled) return "none";
  return std::string(ir::prefName(p.kind)) + ":" + std::to_string(p.distBytes);
}

std::string formatTuningSpec(const TuningParams& p) {
  std::string s = std::string("sv=") + yn(p.simdVectorize) +
                  " ur=" + std::to_string(p.unroll) +
                  " lc=" + yn(p.optimizeLoopControl) +
                  " ae=" + std::to_string(p.accumExpand) +
                  " sched=" + (p.prefSched == PrefSched::Top ? "top" : "spread") +
                  " wnt=" + yn(p.nonTemporalWrites) + " bf=" + yn(p.blockFetch) +
                  " cisc=" + yn(p.ciscIndexing);
  for (const auto& [name, pref] : p.prefetch)  // std::map: sorted by name
    s += " pf(" + name + ")=" + formatPref(pref);
  return s;
}

std::string TuningParams::str() const { return formatTuningSpec(*this); }

TuningSpec parseTuningSpec(const std::string& text, const TuningParams& base) {
  TuningSpec r;
  r.params = base;
  auto fail = [&](const std::string& msg) {
    r.ok = false;
    r.error = msg;
    return r;
  };

  std::string norm = text;
  for (char& c : norm)
    if (c == ',' || c == '\t' || c == '\n' || c == '\r') c = ' ';

  for (const std::string& token : split(norm, ' ')) {
    if (token.empty()) continue;
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      return fail("expected key=value, got '" + token + "'");
    std::string key = token.substr(0, eq);
    std::string val = token.substr(eq + 1);

    auto boolField = [&](bool* field) -> bool {
      if (parseBool(val, field)) return true;
      r.error = "bad boolean for '" + key + "': '" + val + "'";
      return false;
    };
    auto countField = [&](int* field) -> bool {
      int v = 0;
      if (!parseInt(val, &v) || v < 1) {
        r.error = "bad count for '" + key + "' (want integer >= 1): '" + val +
                  "'";
        return false;
      }
      *field = v;
      return true;
    };

    TuningParams& p = r.params;
    if (key == "sv") {
      if (!boolField(&p.simdVectorize)) return r;
    } else if (key == "lc") {
      if (!boolField(&p.optimizeLoopControl)) return r;
    } else if (key == "wnt") {
      if (!boolField(&p.nonTemporalWrites)) return r;
    } else if (key == "bf") {
      if (!boolField(&p.blockFetch)) return r;
    } else if (key == "cisc") {
      if (!boolField(&p.ciscIndexing)) return r;
    } else if (key == "ur") {
      if (!countField(&p.unroll)) return r;
    } else if (key == "ae") {
      if (!countField(&p.accumExpand)) return r;
    } else if (key == "sched") {
      if (val == "spread") p.prefSched = PrefSched::Spread;
      else if (val == "top") p.prefSched = PrefSched::Top;
      else return fail("bad sched (want spread|top): '" + val + "'");
    } else if (startsWith(key, "pf(") && key.back() == ')') {
      std::string name = key.substr(3, key.size() - 4);
      if (name.empty()) return fail("empty array name in '" + key + "'");
      PrefParam pref;  // disabled entries reset to the canonical NTA:0
      if (val != "none") {
        size_t colon = val.find(':');
        if (colon == std::string::npos)
          return fail("bad prefetch for '" + name +
                      "' (want none or KIND:DIST): '" + val + "'");
        std::string kind = val.substr(0, colon);
        std::string dist = val.substr(colon + 1);
        if (!parsePrefKind(kind, &pref.kind))
          return fail("unknown prefetch kind '" + kind + "' for '" + name +
                      "' (want nta|t0|t1|w)");
        int d = 0;
        if (!parseInt(dist, &d) || d < 0)
          return fail("bad prefetch distance for '" + name +
                      "' (want integer >= 0): '" + dist + "'");
        pref.enabled = true;
        pref.distBytes = d;
      }
      p.prefetch[name] = pref;
    } else {
      return fail("unknown tuning key '" + key + "'");
    }
  }
  r.ok = true;
  return r;
}

}  // namespace ifko::opt
