#include "search/faultguard.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "sim/budget.h"
#include "support/rng.h"
#include "support/str.h"

namespace ifko::search {

std::string_view faultKindName(FaultPlan::Kind kind) {
  switch (kind) {
    case FaultPlan::Kind::Crash: return "crash";
    case FaultPlan::Kind::Hang: return "hang";
    case FaultPlan::Kind::TesterFail: return "tester";
  }
  return "?";
}

std::optional<FaultPlan::Kind> FaultPlan::fires(uint64_t evalIndex,
                                                int attempt) const {
  for (const Rule& r : rules) {
    if (r.transient && attempt > 1) continue;
    bool due = false;
    if (r.oneIn != 0) {
      // Seed-stable per-index decision: hash the index through SplitMix64
      // so neighbouring indices are uncorrelated.
      due = SplitMix64(r.seed * 0x9E3779B97F4A7C15ull + evalIndex).next() %
                r.oneIn ==
            0;
    } else if (r.every != 0) {
      due = evalIndex >= r.at && (evalIndex - r.at) % r.every == 0;
    } else {
      due = evalIndex == r.at;
    }
    if (due) return r.kind;
  }
  return std::nullopt;
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec,
                                          std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::optional<FaultPlan>{};
  };
  auto parseU64 = [](std::string_view s, uint64_t* out) {
    if (s.empty()) return false;
    uint64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = v;
    return v != 0;  // 0 is never a valid index/period/seed here
  };

  FaultPlan plan;
  for (const std::string& partStr : split(spec, ',')) {
    std::string_view part = trim(partStr);
    if (part.empty()) continue;
    Rule rule;
    std::string_view rest = part;
    // Trailing ":once" / ":seed=S" options, in any order.
    for (size_t colon = rest.rfind(':'); colon != std::string_view::npos;
         colon = rest.rfind(':')) {
      std::string_view opt = rest.substr(colon + 1);
      if (opt == "once") {
        rule.transient = true;
      } else if (opt.substr(0, 5) == "seed=") {
        if (!parseU64(opt.substr(5), &rule.seed))
          return fail("bad seed in fault rule '" + std::string(part) + "'");
      } else {
        break;  // not an option — part of the schedule (unknown -> error below)
      }
      rest = rest.substr(0, colon);
    }

    size_t sep = rest.find_first_of("@%");
    if (sep == std::string_view::npos || sep == 0)
      return fail("fault rule '" + std::string(part) +
                  "' wants kind@N, kind@N+K, or kind%P");
    std::string_view kindStr = rest.substr(0, sep);
    if (kindStr == "crash") rule.kind = Kind::Crash;
    else if (kindStr == "hang") rule.kind = Kind::Hang;
    else if (kindStr == "tester") rule.kind = Kind::TesterFail;
    else
      return fail("unknown fault kind '" + std::string(kindStr) +
                  "' (want crash|hang|tester)");

    std::string_view sched = rest.substr(sep + 1);
    if (rest[sep] == '%') {
      if (!parseU64(sched, &rule.oneIn))
        return fail("bad probability in fault rule '" + std::string(part) +
                    "' (want kind%P with integer P >= 1)");
    } else {
      size_t plus = sched.find('+');
      std::string_view atStr =
          plus == std::string_view::npos ? sched : sched.substr(0, plus);
      if (!parseU64(atStr, &rule.at))
        return fail("bad evaluation index in fault rule '" +
                    std::string(part) + "'");
      if (plus != std::string_view::npos &&
          !parseU64(sched.substr(plus + 1), &rule.every))
        return fail("bad period in fault rule '" + std::string(part) + "'");
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

namespace {

/// What an injected crash throws.  Any exception type would do — the guard
/// classifies everything non-TimeoutError as Crash — but a named message
/// keeps diagnostics honest about the fault being injected.
struct InjectedCrash : std::runtime_error {
  explicit InjectedCrash(uint64_t idx)
      : std::runtime_error("injected crash at evaluation " +
                           std::to_string(idx)) {}
};

}  // namespace

std::optional<EvalOutcome> FaultInjector::fire(uint64_t evalIndex,
                                               int attempt) const {
  std::optional<FaultPlan::Kind> kind = plan_.fires(evalIndex, attempt);
  if (!kind.has_value()) return std::nullopt;
  switch (*kind) {
    case FaultPlan::Kind::Crash:
      throw InjectedCrash(evalIndex);
    case FaultPlan::Kind::Hang:
      // A hang is "work that never ends": burn the cooperative budget in
      // chunks until the deadline fires.  With no deadline armed the hang
      // would be unbounded, so it times out immediately — containment must
      // not depend on the flag being set.
      if (!sim::ScopedEvalBudget::active())
        throw sim::TimeoutError("injected hang at evaluation " +
                                std::to_string(evalIndex) +
                                " (no deadline armed)");
      for (;;) sim::ScopedEvalBudget::chargeSteps(1u << 20);
    case FaultPlan::Kind::TesterFail:
      return EvalOutcome{0, EvalOutcome::Status::TesterFail};
  }
  return std::nullopt;
}

EvalOutcome guardedEvaluateCandidate(const EvalRequest& req) {
  const SearchConfig& config = *req.config;
  FaultInjector* injector = req.injector;
  const int maxAttempts = std::max(1, config.maxEvalAttempts);
  const uint64_t evalIndex =
      injector != nullptr && !injector->empty() ? injector->nextIndex() : 0;

  EvalOutcome last{0, EvalOutcome::Status::Crash};
  for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
    try {
      std::optional<sim::ScopedEvalBudget> deadline;
      if (config.evalTimeoutMs > 0) {
        const uint64_t ms = static_cast<uint64_t>(config.evalTimeoutMs);
        deadline.emplace(ms * kStepsPerTimeoutMs, ms * kCyclesPerTimeoutMs);
      }
      if (evalIndex != 0) {
        if (auto forced = injector->fire(evalIndex, attempt)) {
          forced->attempts = attempt;
          return *forced;  // deterministic rejection: no retry
        }
      }
      EvalOutcome o = evaluateCandidate(req);
      o.attempts = attempt;
      return o;
    } catch (const sim::TimeoutError&) {
      last = {0, EvalOutcome::Status::Timeout};
    } catch (...) {
      last = {0, EvalOutcome::Status::Crash};
    }
    last.attempts = attempt;
    if (attempt < maxAttempts && config.retryBackoffMs > 0) {
      int64_t ms = std::min<int64_t>(config.retryBackoffMs << (attempt - 1),
                                     1000);
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
  return last;
}

EvalOutcome guardedEvaluateCandidate(
    const std::string& hilSource, const fko::LoweredKernel& lowered,
    const kernels::KernelSpec* spec, const fko::AnalysisReport& analysis,
    const arch::MachineConfig& machine, const SearchConfig& config,
    const opt::TuningParams& params, FaultInjector* injector) {
  EvalRequest req;
  req.hilSource = &hilSource;
  req.lowered = &lowered;
  req.spec = spec;
  req.analysis = &analysis;
  req.machine = &machine;
  req.config = &config;
  req.params = params;
  req.injector = injector;
  return guardedEvaluateCandidate(req);
}

}  // namespace ifko::search
