// Parallel batch-tuning orchestrator: the evaluation loop as a service.
//
// The paper's empirical search pays a turnaround tax — hundreds of
// compile+test+time evaluations per kernel, serial in the original iFKO.
// The simulated evaluation is deterministic and side-effect-free (each
// candidate gets its own compile pipeline and sim::Memory), so independent
// candidates can fan out to a worker thread pool, every result can be
// memoized in a persistent content-addressed cache (evalcache.h), and the
// whole search can emit a structured JSONL event trace — none of which
// changes the chosen parameters: jobs=N, warm or cold, reproduces the
// serial search bit for bit.
//
// Evaluation is fault-isolated (search/faultguard.h): every candidate runs
// through guardedEvaluateCandidate — cooperative deadline, exception
// containment, bounded retry — so a crashing or hanging candidate scores a
// structured failure instead of killing the batch, and a kernel whose
// candidates keep hard-failing is quarantined (skipped with a diagnostic)
// rather than poisoning the rest of the run.
//
// Trace event schema (one flat JSON object per line; the trace file is
// opened in append mode, one run_start per run; see docs/TUNING.md):
//   run_start       machine, context, n, jobs, strategy, eval_timeout_ms,
//                   max_attempts
//   kernel_start    kernel, machine, context, n, jobs, strategy
//   dimension_start kernel, dim
//   candidate       kernel, dim, params, cycles, cache (hit|miss),
//                   verdict (pass|compile_fail|tester_fail|timeout|crash|
//                   fail), [attempts]
//   dimension_end   kernel, dim, best_cycles, best_params
//   kernel_end      kernel, ok, [error, quarantined] | [default_cycles,
//                   best_cycles, best_params, speedup, evaluations,
//                   proposals], timeouts, crashes, tester_fails,
//                   compile_fails, retries, cache_hits, cache_misses,
//                   seconds
//   batch_end       kernels, failures, quarantined, evaluations, timeouts,
//                   crashes, cache_hits, cache_misses, hit_rate, seconds
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/machine.h"
#include "search/evalcache.h"
#include "search/evalpipeline.h"
#include "search/faultguard.h"
#include "search/linesearch.h"
#include "search/strategy/strategy.h"

namespace ifko::search {

struct OrchestratorConfig {
  /// search.jobs sizes the worker pool (values < 1 normalize to 1);
  /// search.evalTimeoutMs / maxEvalAttempts / retryBackoffMs set the
  /// fault-isolation policy (search/faultguard.h).
  SearchConfig search;
  std::string cachePath;  ///< persistent JSONL evaluation cache ("" = memory only)
  /// Sharded cache mode (takes precedence over cachePath): load every
  /// cache.*.jsonl shard in this directory, append new results to our own
  /// shard only (EvalCache::openDir) — the multi-process posture, where
  /// each worker owns one append-only file and merge is a later set union.
  std::string cacheDir;
  /// Shard name inside cacheDir; "" defaults to the process id, so
  /// uncoordinated workers never collide on a shard file.
  std::string cacheShard;
  std::string tracePath;  ///< JSONL event trace ("" = off); appended per run
  /// Search policy.  Every kind runs through the same strategy driver;
  /// Line with an unlimited budget reproduces the legacy serial
  /// runLineSearch bit for bit (orchestrator_test holds it to that).
  StrategyKind strategy = StrategyKind::Line;
  Budget budget;  ///< default: unlimited, seed 1
  /// Quarantine: once a kernel accumulates this many hard failures
  /// (Timeout/Crash, post-retry), its search is abandoned with a
  /// diagnostic instead of poisoning the batch.  0 = never quarantine.
  int quarantineAfter = 3;
  /// Deterministic fault injection for tests/benchmarks; empty = none.
  FaultPlan faultPlan;
  /// Keep each kernel's EvalPipeline (lowering, compile/decode/tester
  /// memos, pristine operand templates) alive across tune() calls, keyed
  /// by source hash.  One-shot CLI runs leave this off (a pipeline dies
  /// with its search); the long-lived `ifko serve` daemon turns it on so a
  /// repeat tune of the same kernel skips straight to hot memos.
  bool keepPipelinesWarm = false;
};

/// One kernel to tune.  When `spec` names a surveyed BLAS kernel its
/// hand-written reference implementation checks the candidates; otherwise
/// they are tested differentially against the unoptimized lowering.
struct KernelJob {
  std::string name;
  std::string hilSource;
  const kernels::KernelSpec* spec = nullptr;
  /// Warm start (e.g. from a wisdom record): evaluated right after the
  /// DEFAULTS point as the "WISDOM" dimension, so a previously found
  /// winner becomes the incumbent before the strategy proposes anything.
  /// The strategy never observes it — proposal sequences stay identical
  /// with or without a warm start; only the incumbent can differ.
  std::optional<opt::TuningParams> warmStart;
  /// Deferred warm start: invoked once with the DEFAULTS outcome so a
  /// wisdom lookup can use the kernel's own attribution vector as its
  /// similarity probe.  Supersedes `warmStart` when set.
  WarmStartFn warmStartProvider;
};

struct KernelOutcome {
  std::string name;
  TuneResult result;
  uint64_t cacheHits = 0;
  uint64_t cacheMisses = 0;
  double seconds = 0.0;
  /// Evaluation failures this kernel's search survived (post-retry).
  FailureCounts faults;
  /// The search was abandoned by the quarantine policy; result.ok is
  /// false and result.error carries the diagnostic.
  bool quarantined = false;
};

struct BatchOutcome {
  std::vector<KernelOutcome> kernels;
  uint64_t cacheHits = 0;
  uint64_t cacheMisses = 0;
  int evaluations = 0;  ///< real (uncached) compile+test+time evaluations
  double wallSeconds = 0.0;
  FailureCounts faults;  ///< summed over kernels

  [[nodiscard]] double hitRate() const {
    uint64_t total = cacheHits + cacheMisses;
    return total == 0
               ? 0.0
               : static_cast<double>(cacheHits) / static_cast<double>(total);
  }
  [[nodiscard]] int failures() const {
    int n = 0;
    for (const auto& k : kernels) n += k.result.ok ? 0 : 1;
    return n;
  }
  [[nodiscard]] int quarantined() const {
    int n = 0;
    for (const auto& k : kernels) n += k.quarantined ? 1 : 0;
    return n;
  }
};

namespace detail {
class ThreadPool;
}

/// Owns the worker pool, the evaluation cache, and the trace stream for a
/// batch of tuning runs on one machine model.
class Orchestrator {
 public:
  /// Opens the cache and trace files named by `config`.  File problems are
  /// reported through *error (when given); the orchestrator stays usable
  /// with the affected feature disabled, so callers decide severity.
  Orchestrator(const arch::MachineConfig& machine, OrchestratorConfig config,
               std::string* error = nullptr);
  ~Orchestrator();
  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  /// Tunes one kernel through the parallel cached evaluator.
  [[nodiscard]] KernelOutcome tune(const KernelJob& job);

  /// Tunes every job in order (candidate-level parallelism keeps the
  /// per-kernel results independent of the batch composition).  `onKernel`
  /// (when given) runs on the orchestrator thread right after each
  /// kernel's outcome lands — the hook incremental consumers (per-kernel
  /// wisdom write-back, so a kill -9 loses at most the in-flight kernel)
  /// attach to.
  [[nodiscard]] BatchOutcome tuneAll(
      const std::vector<KernelJob>& jobs,
      const std::function<void(const KernelOutcome&)>& onKernel = {});

  [[nodiscard]] EvalCache& cache() { return cache_; }
  /// Worker-pool width after normalization (always >= 1).
  [[nodiscard]] int jobs() const { return config_.search.jobs; }

  /// Kernels the quarantine policy abandoned this run, with their tallies.
  struct QuarantineRecord {
    std::string kernel;
    FailureCounts faults;
  };
  [[nodiscard]] const std::vector<QuarantineRecord>& quarantined() const {
    return quarantined_;
  }

  /// The kernel's evaluation pipeline: a fresh one per call normally, the
  /// warm one (created on first use) under config.keepPipelinesWarm.
  [[nodiscard]] std::shared_ptr<EvalPipeline> pipelineFor(
      const KernelJob& job);
  /// Pipelines currently kept warm (0 unless keepPipelinesWarm).
  [[nodiscard]] size_t warmPipelines() const { return pipelines_.size(); }

 private:
  void trace(const std::string& jsonLine);

  arch::MachineConfig machine_;
  OrchestratorConfig config_;
  EvalCache cache_;
  std::unique_ptr<detail::ThreadPool> pool_;
  std::FILE* trace_ = nullptr;
  FaultInjector injector_;
  std::vector<QuarantineRecord> quarantined_;
  /// source hash -> warm pipeline (only filled when keepPipelinesWarm).
  std::unordered_map<std::string, std::shared_ptr<EvalPipeline>> pipelines_;

  friend class OrchestratedEvaluator;
};

/// Loads every *.hil file in `dir` as a KernelJob (name = file stem),
/// sorted by name.  Empty with *error set when the directory is missing,
/// unreadable, or holds no .hil files.
[[nodiscard]] std::vector<KernelJob> loadKernelDir(const std::string& dir,
                                                   std::string* error);

/// Deterministic registry partition for `tune-all --workers=N
/// --worker-id=K`: worker K keeps the jobs at indices i with
/// i % workers == workerId.  Every worker slicing the same (sorted) job
/// list covers it exactly once with no coordination — and because each
/// kernel's search is independent and deterministic, the union of the
/// workers' results is bit-identical to one process running the whole
/// list.
[[nodiscard]] std::vector<KernelJob> workerSlice(std::vector<KernelJob> jobs,
                                                 int workers, int workerId);

}  // namespace ifko::search
