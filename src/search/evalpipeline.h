// The evaluation fast path behind one API.
//
// Every probe of the transform space used to re-thread seven loose
// parameters (hilSource/lowered/spec/analysis/machine/config/params) through
// three entry points, and paid the full compile + interpret + time tax per
// candidate.  This header gives the evaluation state one home:
//
//  * EvalRequest — the single argument struct all evaluation entry points
//    consume (evaluateCandidate here, guardedEvaluateCandidate in
//    search/faultguard.h).  The legacy loose-parameter overloads survive one
//    release as deprecated shims.
//
//  * EvalPipeline — a per-kernel object owning the front-end products
//    (lowering, analysis) and two memos shared across candidates:
//      - a compile memo keyed on the canonical TuningSpec string, holding
//        the compiled function plus its pre-decoded execution form
//        (sim/decode.h) so repeated probes of the same point never
//        recompile or re-decode;
//      - a prefix memo keyed on the TuningSpec with prefetch distances
//        canonicalized out (content hash via support/hash.h), so candidates
//        that differ ONLY in prefetch distances — the largest line-search
//        dimension — are derived by patching the Pref displacements of a
//        previously compiled sibling instead of re-running the whole pass
//        stack.  The patched artifact is byte-identical to a from-scratch
//        compile (tests/evalpipeline_test.cpp holds this).
//
//  * Screen-then-confirm policy helpers (SearchConfig::screenN): early
//    rounds time a sub-sampled N and only candidates near the batch's best
//    screen time get the full-size confirmation run; the rest score
//    EvalOutcome::Status::ScreenedOut.  Committed winners always come from
//    full-size runs.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "fko/harness.h"
#include "kernels/registry.h"
#include "kernels/tester.h"
#include "opt/params.h"
#include "search/linesearch.h"
#include "sim/decode.h"

namespace ifko::search {

class FaultInjector;  // search/faultguard.h
class EvalPipeline;

/// Everything one candidate evaluation needs.  The referenced objects must
/// outlive the call; `pipeline` (optional) supplies the decode/compile
/// memos, `injector` (optional) drives fault injection on the guarded path,
/// and `timeN` (0 = config->n) overrides the timed problem size for
/// screening runs.
struct EvalRequest {
  const std::string* hilSource = nullptr;
  const fko::LoweredKernel* lowered = nullptr;
  const kernels::KernelSpec* spec = nullptr;  ///< null => differential tester
  const fko::AnalysisReport* analysis = nullptr;
  const arch::MachineConfig* machine = nullptr;
  const SearchConfig* config = nullptr;
  opt::TuningParams params;
  EvalPipeline* pipeline = nullptr;
  FaultInjector* injector = nullptr;
  int64_t timeN = 0;
};

/// One compiled candidate held by the pipeline's memos: the compiler output
/// plus its pre-decoded execution form and a memoized tester verdict (the
/// tester is a pure function of the compiled code, so screen + confirm runs
/// of the same candidate verify it once).
struct CompiledCandidate {
  fko::CompileResult compiled;
  sim::DecodedFunction decoded;  ///< populated when compiled.ok && predecode
  /// -1 unknown, 0 failed, 1 passed.  The tester is deterministic on the
  /// compiled code, so screen + confirm runs share one verdict; mutable
  /// because candidates are shared const — guarded by the pipeline lock.
  mutable int testerVerdict = -1;
};

/// Per-kernel evaluation state: owns the source text, the front-end products
/// (lowered once, analyzed once), and the cross-candidate memos.  Thread
/// safe: worker threads share one pipeline per kernel.
class EvalPipeline {
 public:
  /// Lowers and analyzes `hilSource` once.  `machine` and `config` must
  /// outlive the pipeline; `spec` may be null (differential checking).
  EvalPipeline(std::string hilSource, const kernels::KernelSpec* spec,
               const arch::MachineConfig& machine, const SearchConfig& config);

  [[nodiscard]] const std::string& source() const { return source_; }
  [[nodiscard]] const kernels::KernelSpec* spec() const { return spec_; }
  [[nodiscard]] const arch::MachineConfig& machine() const { return machine_; }
  [[nodiscard]] const SearchConfig& config() const { return config_; }
  [[nodiscard]] const fko::LoweredKernel& lowered() const { return lowered_; }
  [[nodiscard]] const fko::AnalysisReport& analysis() const {
    return analysis_;
  }
  /// max over the analysis arrays (sizes generic-timer operands).
  [[nodiscard]] int64_t maxStrideElems() const { return maxStrideElems_; }

  /// Compile (or reuse) the candidate for `params`: compile memo first, then
  /// prefetch-distance patching of a compiled sibling, then a full compile.
  /// Never returns null; !result->compiled.ok reports the compile error.
  [[nodiscard]] std::shared_ptr<const CompiledCandidate> compile(
      const opt::TuningParams& params);

  /// A ready-to-evaluate request against this pipeline.
  [[nodiscard]] EvalRequest request(const opt::TuningParams& params) {
    EvalRequest req;
    req.hilSource = &source_;
    req.lowered = &lowered_;
    req.spec = spec_;
    req.analysis = &analysis_;
    req.machine = &machine_;
    req.config = &config_;
    req.params = params;
    req.pipeline = this;
    return req;
  }

  /// Memoized differential/reference tester verdict for a compiled
  /// candidate (keyed by the candidate object; runs at config.testerN).
  [[nodiscard]] bool testerPasses(
      const std::shared_ptr<const CompiledCandidate>& cand);

  /// Pristine timing operands for (spec, config.n, config.seed), generated
  /// once and cloned per run (config.reuseKernelData; null when off or when
  /// the pipeline checks differentially).  Immutable after creation.
  [[nodiscard]] const kernels::KernelData* dataTemplate();
  /// Generic-path analogue, for pipelines without a KernelSpec.
  [[nodiscard]] const fko::GenericData* genericTemplate();

  struct Stats {
    uint64_t fullCompiles = 0;   ///< complete pass-stack runs
    uint64_t prefixPatches = 0;  ///< candidates derived by Pref patching
    uint64_t memoHits = 0;       ///< compile-memo hits
    uint64_t testerRuns = 0;     ///< non-memoized tester executions
  };
  [[nodiscard]] Stats stats() const;

 private:
  [[nodiscard]] std::shared_ptr<const CompiledCandidate> build(
      const opt::TuningParams& params);

  std::string source_;
  const kernels::KernelSpec* spec_;
  const arch::MachineConfig& machine_;
  const SearchConfig& config_;
  fko::LoweredKernel lowered_;
  fko::AnalysisReport analysis_;
  int64_t maxStrideElems_ = 1;

  struct PrefixEntry {
    std::shared_ptr<const CompiledCandidate> base;
    opt::TuningParams params;  ///< the params `base` was compiled with
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const CompiledCandidate>>
      memo_;
  std::unordered_map<std::string, PrefixEntry> prefix_;
  std::unique_ptr<kernels::KernelData> dataTmpl_;  ///< built once under mu_
  std::unique_ptr<fko::GenericData> genTmpl_;      ///< built once under mu_
  Stats stats_;
};

/// Compile + test + time one candidate (EvalRequest form; see linesearch.h
/// for the deprecated loose-parameter shim).  With a pipeline attached the
/// compile/decode/tester memos are consulted; without one, each call pays
/// the full cost, exactly like the legacy path.
[[nodiscard]] EvalOutcome evaluateCandidate(const EvalRequest& req);

/// Whether screen-then-confirm applies to a cohort of `cohort` cache-missing
/// candidates under `config` (needs screenN on, 2*screenN within n, and a
/// cohort of at least kScreenMinCohort).
[[nodiscard]] bool screeningApplies(const SearchConfig& config, size_t cohort);

/// The screening metric from two truncated prefix runs of the same
/// candidate: the cycles of iterations (screenN, 2*screenN] — i.e.
/// tail.cycles - head.cycles.  Subtracting the shared prefix cancels the
/// cold-start transient (compulsory misses, prefetch ramp-up, pipeline
/// fill), leaving the steady-state per-iteration rate that dominates the
/// full-size ranking; ranking raw prefixes instead demonstrably inverts the
/// unroll dimension.  Both outcomes must be usable; the result carries the
/// tail's status/counters and the combined attempt count.
[[nodiscard]] EvalOutcome deltaScreen(const EvalOutcome& head,
                                      const EvalOutcome& tail);

/// Given the cohort's screen outcomes, marks which candidates advance to
/// the full-size confirmation run: usable outcomes within
/// config.screenMargin of the cohort's best screen time — and, when the
/// caller knows the search incumbent's screen-size cycles
/// (`incumbentScreen`, 0 = unknown), of that too.  Only would-be incumbents
/// pay for a full-size run; a candidate that cannot beat the current best
/// needs no accurate full-size number, because the search only ever commits
/// strict improvements.  Failed screens never advance (their failure is
/// already the final verdict); if no screen is usable the vector is
/// all-false.
[[nodiscard]] std::vector<char> screenSurvivors(
    const SearchConfig& config, const std::vector<EvalOutcome>& screens,
    uint64_t incumbentScreen = 0);

}  // namespace ifko::search
