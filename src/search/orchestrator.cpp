#include "search/orchestrator.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "search/threadpool.h"
#include "support/hash.h"
#include "support/json.h"

namespace ifko::search {

namespace {

/// Thrown by OrchestratedEvaluator (on the orchestrator thread, after a
/// batch drains) when a kernel crosses the quarantine threshold; caught by
/// Orchestrator::tune, which turns it into a failed-with-diagnostic
/// outcome.  Never escapes the orchestrator.
struct QuarantineSignal {
  FailureCounts faults;
};

}  // namespace

/// The orchestrated backend: consults the shared EvalCache, fans cache
/// misses out to the pool, and emits candidate/dimension trace events.
/// Lookups, inserts, and trace writes all happen on the orchestrator
/// thread; workers only run the pure evaluateCandidate.
class OrchestratedEvaluator final : public Evaluator {
 public:
  OrchestratedEvaluator(Orchestrator& orch, const KernelJob& job)
      : orch_(orch), job_(job), pipeline_(orch.pipelineFor(job)),
        baseKey_{hashHex(job.hilSource),
                 orch.machine_.name,
                 std::string(sim::contextName(orch.config_.search.context)),
                 orch.config_.search.n,
                 orch.config_.search.seed,
                 orch.config_.search.testerN,
                 /*params=*/""} {}

  std::vector<EvalOutcome> evaluateBatch(
      const std::vector<opt::TuningParams>& batch,
      const std::string& dimension) override {
    if (dimension != lastDim_) {
      lastDim_ = dimension;
      JsonWriter w;
      w.field("event", "dimension_start")
          .field("kernel", job_.name)
          .field("dim", dimension);
      orch_.trace(w.str());
    }

    const size_t count = batch.size();
    std::vector<EvalOutcome> out(count);
    std::vector<std::string> specs(count);
    // Cache pre-pass; first occurrence of each missing key gets evaluated,
    // duplicates (none in practice — the sweeps build distinct candidates)
    // copy its result.  A hit replays the recorded failure status, so warm
    // runs reproduce cold-run outcomes faithfully.
    std::vector<size_t> missIdx;
    std::unordered_map<std::string, size_t> firstMiss;
    std::vector<size_t> copyFrom(count, SIZE_MAX);
    for (size_t i = 0; i < count; ++i) {
      specs[i] = opt::formatTuningSpec(batch[i]);
      auto cached = orch_.cache_.lookup(keyFor(specs[i]));
      if (cached.has_value()) {
        out[i] = {cached->cycles, cached->status, /*fromCache=*/true};
        out[i].counters = cached->counters;
        continue;
      }
      auto [it, inserted] = firstMiss.emplace(specs[i], i);
      if (inserted) missIdx.push_back(i);
      else copyFrom[i] = it->second;
    }

    const SearchConfig& cfg = orch_.config_.search;
    FaultInjector* injector =
        orch_.injector_.empty() ? nullptr : &orch_.injector_;
    // guardedEvaluateCandidate never throws — workers cannot unwind — but
    // parallelFor would contain and rethrow an exception here regardless.
    auto runOver = [&](const std::vector<size_t>& idx, int64_t timeN,
                       std::vector<EvalOutcome>& dst) {
      auto evalOne = [&](size_t k) {
        EvalRequest req = pipeline_->request(batch[idx[k]]);
        req.injector = injector;
        req.timeN = timeN;
        dst[k] = guardedEvaluateCandidate(req);
      };
      if (orch_.pool_ != nullptr) {
        orch_.pool_->parallelFor(idx.size(), evalOne);
      } else {
        for (size_t k = 0; k < idx.size(); ++k) evalOne(k);
      }
    };

    if (screeningApplies(cfg, missIdx.size())) {
      // Screen-then-confirm: time every miss at the reduced screenN, then
      // re-time only the survivors at full size.  Non-survivors score
      // ScreenedOut (cached under the full-size key, so a warm replay walks
      // the same trajectory); failed screens already ARE the final verdict.
      std::vector<EvalOutcome> heads(missIdx.size());
      std::vector<EvalOutcome> tails(missIdx.size());
      runOver(missIdx, cfg.screenN, heads);
      runOver(missIdx, 2 * cfg.screenN, tails);
      std::vector<EvalOutcome> screens(missIdx.size());
      for (size_t k = 0; k < missIdx.size(); ++k)
        screens[k] = !heads[k].usable()   ? heads[k]
                     : !tails[k].usable() ? tails[k]
                                          : deltaScreen(heads[k], tails[k]);
      std::vector<char> advance =
          screenSurvivors(cfg, screens, incumbentScreen_);
      std::vector<size_t> confirmIdx;
      std::vector<size_t> confirmSlot;
      for (size_t k = 0; k < missIdx.size(); ++k) {
        if (advance[k]) {
          confirmIdx.push_back(missIdx[k]);
          confirmSlot.push_back(k);
        } else if (screens[k].usable()) {
          out[missIdx[k]] = EvalOutcome{0, EvalOutcome::Status::ScreenedOut};
          out[missIdx[k]].attempts = screens[k].attempts;
        } else {
          out[missIdx[k]] = screens[k];
        }
      }
      std::vector<EvalOutcome> confirms(confirmIdx.size());
      runOver(confirmIdx, /*timeN=*/0, confirms);
      for (size_t c = 0; c < confirmIdx.size(); ++c) {
        out[confirmIdx[c]] = confirms[c];
        out[confirmIdx[c]].attempts += screens[confirmSlot[c]].attempts - 1;
        noteConfirmed(confirms[c], screens[confirmSlot[c]].cycles);
      }
    } else {
      std::vector<EvalOutcome> results(missIdx.size());
      runOver(missIdx, /*timeN=*/0, results);
      for (size_t k = 0; k < missIdx.size(); ++k) {
        out[missIdx[k]] = results[k];
        noteConfirmed(results[k], 0);
      }
    }

    for (size_t i : missIdx) {
      orch_.cache_.insert(keyFor(specs[i]), out[i].cycles, out[i].status,
                          out[i].counters);
      faults_.add(out[i]);
      ++evaluations_;
    }
    for (size_t i = 0; i < count; ++i)
      if (copyFrom[i] != SIZE_MAX) {
        out[i] = out[copyFrom[i]];
        out[i].fromCache = true;
        out[i].attempts = 1;
      }

    if (orch_.trace_ != nullptr) {
      for (size_t i = 0; i < count; ++i) {
        JsonWriter w;
        w.field("event", "candidate")
            .field("kernel", job_.name)
            .field("dim", dimension)
            .field("params", specs[i])
            .field("cycles", out[i].cycles)
            .field("cache", out[i].fromCache ? "hit" : "miss")
            .field("verdict", out[i].status == EvalOutcome::Status::Timed
                                  ? "pass"
                                  : evalStatusName(out[i].status));
        if (out[i].attempts > 1) w.field("attempts", out[i].attempts);
        // Trace v3: timed candidates carry their observability counters.
        if (out[i].counters.has_value())
          w.field("counters", countersJson(*out[i].counters));
        orch_.trace(w.str());
      }
    }

    // Quarantine check, on the orchestrator thread after the whole batch
    // drained (and was cached/traced): a kernel that keeps hard-failing is
    // abandoned rather than allowed to poison the rest of the batch.
    const int threshold = orch_.config_.quarantineAfter;
    if (threshold > 0 && faults_.hard() >= threshold)
      throw QuarantineSignal{faults_};
    return out;
  }

  [[nodiscard]] const FailureCounts& faults() const { return faults_; }

  int evaluations() const override { return evaluations_; }

  void onDimensionEnd(const std::string& dimension, uint64_t bestCycles,
                      const opt::TuningParams& best) override {
    JsonWriter w;
    w.field("event", "dimension_end")
        .field("kernel", job_.name)
        .field("dim", dimension)
        .field("best_cycles", bestCycles)
        .field("best_params", opt::formatTuningSpec(best));
    orch_.trace(w.str());
  }

 private:
  EvalKey keyFor(const std::string& spec) const {
    EvalKey k = baseKey_;
    k.params = spec;
    return k;
  }

  /// Track the search incumbent so screenSurvivors can skip full-size
  /// confirmation of candidates that cannot beat it.  Runs on the
  /// orchestrator thread after the batch barrier — never racing the
  /// workers.  `screenCycles` is the candidate's own screen-size time (0
  /// when it ran unscreened — then only the full-size best advances and the
  /// screen yardstick stays put).
  void noteConfirmed(const EvalOutcome& full, uint64_t screenCycles) {
    if (!full.usable()) return;
    if (bestFull_ != 0 && full.cycles >= bestFull_) return;
    bestFull_ = full.cycles;
    if (screenCycles != 0) incumbentScreen_ = screenCycles;
  }

  Orchestrator& orch_;
  const KernelJob& job_;
  std::shared_ptr<EvalPipeline> pipeline_;
  EvalKey baseKey_;
  std::string lastDim_;
  int evaluations_ = 0;
  uint64_t bestFull_ = 0;         ///< best full-size cycles confirmed so far
  uint64_t incumbentScreen_ = 0;  ///< that incumbent's screen-size cycles
  FailureCounts faults_;
};

Orchestrator::Orchestrator(const arch::MachineConfig& machine,
                           OrchestratorConfig config, std::string* error)
    : machine_(machine), config_(std::move(config)),
      injector_(config_.faultPlan) {
  config_.search.jobs = std::max(1, config_.search.jobs);
  std::string problems;
  if (!config_.cacheDir.empty()) {
    // Shard mode: load every worker's shard, append to our own only.  A
    // caller that names no shard gets a pid-unique one, so uncoordinated
    // processes sharing the directory can never interleave in one file.
    const std::string shard =
        config_.cacheShard.empty()
            ? std::to_string(static_cast<long>(::getpid()))
            : config_.cacheShard;
    std::string err;
    if (!cache_.openDir(config_.cacheDir, shard, &err)) problems = err;
  } else if (!config_.cachePath.empty()) {
    std::string err;
    if (!cache_.open(config_.cachePath, &err)) problems = err;
  }
  if (!config_.tracePath.empty()) {
    // Append, never truncate: earlier runs' events stay in the trace and
    // tools/tune_report splits runs on the run_start marker.
    trace_ = std::fopen(config_.tracePath.c_str(), "a");
    if (trace_ == nullptr) {
      if (!problems.empty()) problems += "; ";
      problems += "cannot open trace file '" + config_.tracePath + "'";
    }
  }
  if (config_.search.jobs > 1)
    pool_ = std::make_unique<detail::ThreadPool>(config_.search.jobs);
  {
    JsonWriter w;
    w.field("event", "run_start")
        .field("machine", machine_.name)
        .field("context", sim::contextName(config_.search.context))
        .field("n", config_.search.n)
        .field("jobs", config_.search.jobs)
        .field("strategy", std::string(strategyName(config_.strategy)))
        .field("eval_timeout_ms", config_.search.evalTimeoutMs)
        .field("max_attempts", std::max(1, config_.search.maxEvalAttempts));
    trace(w.str());
  }
  if (error != nullptr) *error = problems;
}

Orchestrator::~Orchestrator() {
  if (trace_ != nullptr) std::fclose(trace_);
}

void Orchestrator::trace(const std::string& jsonLine) {
  if (trace_ == nullptr) return;
  std::fputs((jsonLine + "\n").c_str(), trace_);
}

std::shared_ptr<EvalPipeline> Orchestrator::pipelineFor(const KernelJob& job) {
  if (!config_.keepPipelinesWarm)
    return std::make_shared<EvalPipeline>(job.hilSource, job.spec, machine_,
                                          config_.search);
  // Warm map keyed on content: the same source re-tuned (the daemon's
  // repeat-TUNE path) lands on hot compile/decode/tester memos.  machine_
  // and config_.search outlive the map, which EvalPipeline requires.
  const std::string key = hashHex(job.hilSource);
  auto it = pipelines_.find(key);
  if (it == pipelines_.end())
    it = pipelines_
             .emplace(key, std::make_shared<EvalPipeline>(
                               job.hilSource, job.spec, machine_,
                               config_.search))
             .first;
  return it->second;
}

KernelOutcome Orchestrator::tune(const KernelJob& job) {
  KernelOutcome outcome;
  outcome.name = job.name;
  const uint64_t hits0 = cache_.hits();
  const uint64_t misses0 = cache_.misses();

  {
    JsonWriter w;
    w.field("event", "kernel_start")
        .field("kernel", job.name)
        .field("machine", machine_.name)
        .field("context", sim::contextName(config_.search.context))
        .field("n", config_.search.n)
        .field("jobs", std::max(1, config_.search.jobs))
        .field("strategy", std::string(strategyName(config_.strategy)));
    trace(w.str());
  }

  auto t0 = std::chrono::steady_clock::now();
  OrchestratedEvaluator eval(*this, job);
  std::unique_ptr<SearchStrategy> strategy =
      makeStrategy(config_.strategy, config_.budget);
  try {
    outcome.result = runStrategySearch(
        job.hilSource, machine_, config_.search, *strategy, config_.budget,
        eval, job.warmStart.has_value() ? &*job.warmStart : nullptr,
        job.warmStartProvider);
  } catch (const QuarantineSignal& q) {
    outcome.result = {};
    outcome.result.ok = false;
    outcome.result.error =
        "quarantined after " + std::to_string(q.faults.hard()) +
        " hard evaluation failures (" + std::to_string(q.faults.timeouts) +
        " timeouts, " + std::to_string(q.faults.crashes) + " crashes)";
    outcome.result.evaluations = eval.evaluations();
    outcome.quarantined = true;
    quarantined_.push_back({job.name, eval.faults()});
  }
  outcome.faults = eval.faults();
  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  outcome.cacheHits = cache_.hits() - hits0;
  outcome.cacheMisses = cache_.misses() - misses0;

  {
    JsonWriter w;
    w.field("event", "kernel_end")
        .field("kernel", job.name)
        .field("ok", outcome.result.ok);
    if (outcome.result.ok) {
      w.field("default_cycles", outcome.result.defaultCycles)
          .field("best_cycles", outcome.result.bestCycles)
          .field("best_params", opt::formatTuningSpec(outcome.result.best))
          .field("speedup", outcome.result.speedupOverDefaults())
          .field("evaluations", outcome.result.evaluations)
          .field("proposals", outcome.result.proposals);
    } else {
      w.field("error", outcome.result.error)
          .field("quarantined", outcome.quarantined);
    }
    w.field("timeouts", outcome.faults.timeouts)
        .field("crashes", outcome.faults.crashes)
        .field("tester_fails", outcome.faults.testerFails)
        .field("compile_fails", outcome.faults.compileFails)
        .field("retries", outcome.faults.retries)
        .field("cache_hits", outcome.cacheHits)
        .field("cache_misses", outcome.cacheMisses)
        .field("seconds", outcome.seconds);
    trace(w.str());
  }
  if (trace_ != nullptr) std::fflush(trace_);
  return outcome;
}

BatchOutcome Orchestrator::tuneAll(
    const std::vector<KernelJob>& jobs,
    const std::function<void(const KernelOutcome&)>& onKernel) {
  BatchOutcome batch;
  auto t0 = std::chrono::steady_clock::now();
  for (const KernelJob& job : jobs) {
    batch.kernels.push_back(tune(job));
    const KernelOutcome& o = batch.kernels.back();
    batch.cacheHits += o.cacheHits;
    batch.cacheMisses += o.cacheMisses;
    batch.evaluations += o.result.evaluations;
    batch.faults += o.faults;
    if (onKernel) onKernel(o);
  }
  batch.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  JsonWriter w;
  w.field("event", "batch_end")
      .field("kernels", static_cast<int64_t>(batch.kernels.size()))
      .field("failures", batch.failures())
      .field("quarantined", batch.quarantined())
      .field("evaluations", batch.evaluations)
      .field("timeouts", batch.faults.timeouts)
      .field("crashes", batch.faults.crashes)
      .field("cache_hits", batch.cacheHits)
      .field("cache_misses", batch.cacheMisses)
      .field("hit_rate", batch.hitRate())
      .field("seconds", batch.wallSeconds);
  trace(w.str());
  if (trace_ != nullptr) std::fflush(trace_);
  return batch;
}

std::vector<KernelJob> loadKernelDir(const std::string& dir,
                                     std::string* error) {
  namespace fs = std::filesystem;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::vector<KernelJob>{};
  };
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return fail("'" + dir + "' is not a directory");

  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".hil")
      paths.push_back(entry.path());
  }
  if (ec) return fail("cannot list '" + dir + "': " + ec.message());
  if (paths.empty()) return fail("no .hil files in '" + dir + "'");
  std::sort(paths.begin(), paths.end());

  std::vector<KernelJob> jobs;
  for (const auto& p : paths) {
    std::ifstream in(p);
    if (!in) return fail("cannot read '" + p.string() + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    jobs.push_back({p.stem().string(), ss.str(), nullptr});
  }
  return jobs;
}

std::vector<KernelJob> workerSlice(std::vector<KernelJob> jobs, int workers,
                                   int workerId) {
  if (workers <= 1) return jobs;
  std::vector<KernelJob> mine;
  for (size_t i = 0; i < jobs.size(); ++i)
    if (static_cast<int>(i % static_cast<size_t>(workers)) == workerId)
      mine.push_back(std::move(jobs[i]));
  return mine;
}

}  // namespace ifko::search
