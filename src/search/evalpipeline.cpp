#include "search/evalpipeline.h"

#include <algorithm>

#include "fko/harness.h"
#include "kernels/tester.h"
#include "support/hash.h"

namespace ifko::search {

namespace {

/// The prefix-memo key: the canonical TuningSpec with every *enabled*
/// prefetch distance replaced by a sentinel, hashed (support/hash.h).  Two
/// candidates share a key exactly when they differ only in the distances of
/// already-enabled prefetches — the one degree of freedom the compiler
/// threads through to codegen as a pure Pref displacement (the emitted
/// instruction count, placement, and every other pass decision depend on
/// the enabled set and kind, which stay in the key).
std::string prefixKey(const opt::TuningParams& params) {
  opt::TuningParams canon = params;
  for (auto& [name, pp] : canon.prefetch)
    if (pp.enabled) pp.distBytes = -1;  // out-of-grammar sentinel
  return hashHex(opt::formatTuningSpec(canon));
}

[[nodiscard]] bool hasEnabledPrefetch(const opt::TuningParams& params) {
  for (const auto& [name, pp] : params.prefetch)
    if (pp.enabled) return true;
  return false;
}

}  // namespace

EvalPipeline::EvalPipeline(std::string hilSource,
                           const kernels::KernelSpec* spec,
                           const arch::MachineConfig& machine,
                           const SearchConfig& config)
    : source_(std::move(hilSource)), spec_(spec), machine_(machine),
      config_(config), lowered_(fko::lowerKernel(source_)),
      analysis_(fko::analyzeKernel(source_, machine)) {
  for (const auto& a : analysis_.arrays)
    maxStrideElems_ = std::max(maxStrideElems_, a.strideElems);
}

std::shared_ptr<const CompiledCandidate> EvalPipeline::build(
    const opt::TuningParams& params) {
  auto cand = std::make_shared<CompiledCandidate>();
  fko::CompileOptions opts;
  opts.tuning = params;
  cand->compiled = fko::compileKernel(lowered_.fn, opts, machine_);
  if (cand->compiled.ok && config_.predecode)
    cand->decoded = sim::decodeFunction(cand->compiled.fn, machine_);
  return cand;
}

std::shared_ptr<const CompiledCandidate> EvalPipeline::compile(
    const opt::TuningParams& params) {
  const std::string key = opt::formatTuningSpec(params);
  const bool tryPrefix =
      config_.reusePrefixCompiles && hasEnabledPrefetch(params);
  std::string pkey;
  PrefixEntry basis;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++stats_.memoHits;
      return it->second;
    }
    if (tryPrefix) {
      pkey = prefixKey(params);
      auto pit = prefix_.find(pkey);
      if (pit != prefix_.end()) basis = pit->second;
    }
  }

  std::shared_ptr<const CompiledCandidate> cand;
  bool patched = false;
  if (basis.base != nullptr) {
    // Derive from the compiled sibling: copy, then shift every Pref
    // displacement by the per-array distance delta.  The decoder re-runs
    // (displacements are baked into the decoded instructions); the tester
    // verdict carries over — prefetch hints cannot change results.
    auto out = std::make_shared<CompiledCandidate>();
    out->compiled = basis.base->compiled;
    for (auto& bb : out->compiled.fn.blocks) {
      for (auto& inst : bb.insts) {
        if (inst.op != ir::Op::Pref) continue;
        const auto ordinal = static_cast<size_t>(inst.imm);
        if (ordinal >= analysis_.arrays.size()) continue;
        const std::string& name = analysis_.arrays[ordinal].name;
        auto nit = params.prefetch.find(name);
        auto oit = basis.params.prefetch.find(name);
        if (nit == params.prefetch.end() || oit == basis.params.prefetch.end())
          continue;
        inst.mem.disp += nit->second.distBytes - oit->second.distBytes;
      }
    }
    if (config_.predecode)
      out->decoded = sim::decodeFunction(out->compiled.fn, machine_);
    out->testerVerdict = basis.base->testerVerdict;
    cand = std::move(out);
    patched = true;
  } else {
    cand = build(params);
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = memo_.emplace(key, cand);
  if (!inserted) return it->second;  // lost a benign race; results identical
  if (patched)
    ++stats_.prefixPatches;
  else
    ++stats_.fullCompiles;
  // Only a from-scratch success seeds the prefix memo: a patched artifact
  // would work too (identical bytes), but failures must never be a basis.
  if (!patched && tryPrefix && cand->compiled.ok)
    prefix_.emplace(pkey, PrefixEntry{cand, params});
  return cand;
}

bool EvalPipeline::testerPasses(
    const std::shared_ptr<const CompiledCandidate>& cand) {
  if (config_.testerN <= 0) return true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cand->testerVerdict != -1) return cand->testerVerdict == 1;
  }
  const bool pass =
      spec_ != nullptr
          ? kernels::testKernel(*spec_, cand->compiled.fn, config_.testerN).ok
          : fko::testAgainstUnoptimized(source_, cand->compiled.fn,
                                        config_.testerN)
                .ok;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.testerRuns;
  cand->testerVerdict = pass ? 1 : 0;
  return pass;
}

EvalPipeline::Stats EvalPipeline::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

const kernels::KernelData* EvalPipeline::dataTemplate() {
  if (!config_.reuseKernelData || spec_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (dataTmpl_ == nullptr)
    dataTmpl_ = std::make_unique<kernels::KernelData>(
        kernels::makeKernelData(*spec_, config_.n, config_.seed));
  return dataTmpl_.get();
}

const fko::GenericData* EvalPipeline::genericTemplate() {
  if (!config_.reuseKernelData || !lowered_.ok) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (genTmpl_ == nullptr)
    genTmpl_ = std::make_unique<fko::GenericData>(fko::makeGenericData(
        lowered_.fn.params, config_.n, config_.seed, 0.75, maxStrideElems_));
  return genTmpl_.get();
}

EvalOutcome evaluateCandidate(const EvalRequest& req) {
  const SearchConfig& config = *req.config;
  if (!req.lowered->ok) return {0, EvalOutcome::Status::CompileFail};

  std::shared_ptr<const CompiledCandidate> held;
  fko::CompileResult local;
  const fko::CompileResult* compiled = nullptr;
  const sim::DecodedFunction* decoded = nullptr;
  if (req.pipeline != nullptr) {
    held = req.pipeline->compile(req.params);
    compiled = &held->compiled;
    if (compiled->ok && held->decoded.numBlocks > 0) decoded = &held->decoded;
  } else {
    fko::CompileOptions opts;
    opts.tuning = req.params;
    local = fko::compileKernel(req.lowered->fn, opts, *req.machine);
    compiled = &local;
  }
  if (!compiled->ok) return {0, EvalOutcome::Status::CompileFail};

  if (config.testerN > 0) {
    bool pass;
    if (req.pipeline != nullptr) {
      pass = req.pipeline->testerPasses(held);
    } else {
      pass = req.spec != nullptr
                 ? kernels::testKernel(*req.spec, compiled->fn, config.testerN)
                       .ok
                 : fko::testAgainstUnoptimized(*req.hilSource, compiled->fn,
                                               config.testerN)
                       .ok;
    }
    if (!pass) return {0, EvalOutcome::Status::TesterFail};
  }

  // Screening runs (timeN > 0) truncate the loop trip count but keep the
  // operands at the full config.n: the screen is an exact prefix of the
  // full-size run (see sim/timer.h).
  const int64_t loopN = req.timeN > 0 ? req.timeN : 0;
  sim::TimeResult timed;
  if (req.spec != nullptr) {
    const kernels::KernelData* tmpl =
        req.pipeline != nullptr ? req.pipeline->dataTemplate() : nullptr;
    timed = decoded != nullptr
                ? sim::timeKernel(*req.machine, *decoded, *req.spec, config.n,
                                  config.context, config.seed, loopN, tmpl)
                : sim::timeKernel(*req.machine, compiled->fn, *req.spec,
                                  config.n, config.context, config.seed, loopN,
                                  tmpl);
  } else {
    int64_t strideElems = 1;
    const fko::GenericData* tmpl = nullptr;
    if (req.pipeline != nullptr) {
      strideElems = req.pipeline->maxStrideElems();
      tmpl = req.pipeline->genericTemplate();
    } else {
      for (const auto& a : req.analysis->arrays)
        strideElems = std::max(strideElems, a.strideElems);
    }
    timed = decoded != nullptr
                ? fko::timeCompiled(*req.machine, *decoded, config.n,
                                    config.context, config.seed, strideElems,
                                    loopN, tmpl)
                : fko::timeCompiled(*req.machine, compiled->fn, config.n,
                                    config.context, config.seed, strideElems,
                                    loopN, tmpl);
  }
  EvalOutcome out{timed.cycles, EvalOutcome::Status::Timed};
  out.counters = collectCounters(*compiled, timed);
  return out;
}

bool screeningApplies(const SearchConfig& config, size_t cohort) {
  return config.screenN > 0 && 2 * config.screenN < config.n &&
         cohort >= kScreenMinCohort;
}

EvalOutcome deltaScreen(const EvalOutcome& head, const EvalOutcome& tail) {
  EvalOutcome d = tail;
  // The tail strictly contains the head run, so the subtraction cannot
  // underflow on usable outcomes; guard anyway so a surprise never wraps.
  d.cycles = tail.cycles > head.cycles ? tail.cycles - head.cycles : 1;
  d.attempts = head.attempts + tail.attempts - 1;
  return d;
}

std::vector<char> screenSurvivors(const SearchConfig& config,
                                  const std::vector<EvalOutcome>& screens,
                                  uint64_t incumbentScreen) {
  std::vector<char> advance(screens.size(), 0);
  uint64_t best = 0;
  for (const EvalOutcome& s : screens)
    if (s.usable() && (best == 0 || s.cycles < best)) best = s.cycles;
  if (best == 0) return advance;  // every screen failed; verdicts are final
  if (incumbentScreen != 0) best = std::min(best, incumbentScreen);
  const double cutoff = static_cast<double>(best) * config.screenMargin;
  for (size_t i = 0; i < screens.size(); ++i)
    advance[i] = screens[i].usable() &&
                 static_cast<double>(screens[i].cycles) <= cutoff;
  return advance;
}

}  // namespace ifko::search
