// Uniform random search: the baseline every smarter strategy must beat.
//
// Each propose() draws up to maxBatch points uniformly from the legal space
// (opt::ParamSpace::sample) that have not been proposed or observed before,
// rejection-sampling each slot.  When 64 consecutive draws for a slot all
// land on seen points the space is treated as exhausted and the strategy
// finishes — the budget normally stops it long before that on real spaces.
#include <string>
#include <unordered_set>
#include <vector>

#include "search/strategy/strategies_impl.h"
#include "support/rng.h"

namespace ifko::search {
namespace {

using opt::TuningParams;

class RandomStrategy final : public SearchStrategy {
 public:
  explicit RandomStrategy(uint64_t seed) : rng_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "random"; }

  void init(const opt::ParamSpace& space,
            const TuningParams& defaults) override {
    space_ = space;
    base_ = defaults;
  }

  [[nodiscard]] Proposal propose(int maxBatch) override {
    Proposal p{"RAND", {}};
    const int want = maxBatch < 1 ? 1 : maxBatch;
    for (int slot = 0; slot < want; ++slot) {
      bool found = false;
      for (int attempt = 0; attempt < 64 && !found; ++attempt) {
        TuningParams s = space_.sample(base_, rng_);
        if (seen_.insert(opt::formatTuningSpec(s)).second) {
          p.candidates.push_back(std::move(s));
          found = true;
        }
      }
      if (!found) {
        exhausted_ = true;
        break;
      }
    }
    if (p.candidates.empty()) exhausted_ = true;
    return p;
  }

  void observe(const TuningParams& spec, const EvalOutcome&) override {
    seen_.insert(opt::formatTuningSpec(spec));  // the DEFAULTS point
  }

  [[nodiscard]] bool done() const override { return exhausted_; }

 private:
  opt::ParamSpace space_;
  TuningParams base_;
  SplitMix64 rng_;
  std::unordered_set<std::string> seen_;
  bool exhausted_ = false;
};

}  // namespace

std::unique_ptr<SearchStrategy> makeRandomStrategy(uint64_t seed) {
  return std::make_unique<RandomStrategy>(seed);
}

}  // namespace ifko::search
