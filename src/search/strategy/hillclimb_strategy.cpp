// Steepest-ascent hill climbing with random restarts.
//
// Each climb step proposes the whole one-step neighborhood of the current
// point (opt::ParamSpace::neighbors) as one indivisible batch; the next
// propose() moves to the best strictly improving neighbor, or — at a local
// optimum — restarts from a fresh uniform point.  Neighborhoods are
// filtered against everything already proposed, so the climber never
// re-spends budget on a point it has seen (the evaluator would just serve
// the cache, but the Budget meters observations).  After kMaxRestarts
// restarts, or when no unseen point can be drawn, the strategy finishes.
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "search/strategy/strategies_impl.h"
#include "support/rng.h"

namespace ifko::search {
namespace {

using opt::TuningParams;

class HillClimbStrategy final : public SearchStrategy {
 public:
  explicit HillClimbStrategy(uint64_t seed) : rng_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "hillclimb"; }

  void init(const opt::ParamSpace& space,
            const TuningParams& defaults) override {
    space_ = space;
    base_ = defaults;
    cur_ = defaults;
  }

  [[nodiscard]] Proposal propose(int /*maxBatch*/) override {
    settle();
    while (!done_) {
      if (restartPending_) {
        if (restarts_ >= kMaxRestarts) {
          done_ = true;
          break;
        }
        std::optional<TuningParams> pt = drawUnseen();
        if (!pt.has_value()) {
          done_ = true;
          break;
        }
        ++restarts_;
        mode_ = Mode::RestartWait;
        return {"RESTART " + std::to_string(restarts_), {*pt}};
      }
      std::vector<TuningParams> fresh;
      for (TuningParams& t : space_.neighbors(cur_))
        if (seen_.insert(opt::formatTuningSpec(t)).second)
          fresh.push_back(std::move(t));
      if (fresh.empty()) {
        restartPending_ = true;
        continue;
      }
      ++steps_;
      mode_ = Mode::ClimbWait;
      return {"CLIMB " + std::to_string(steps_), std::move(fresh)};
    }
    return {};
  }

  void observe(const TuningParams& spec, const EvalOutcome& o) override {
    obs_.push_back({spec, o.cycles});
    if (o.cycles != 0 && (bestCycles_ == 0 || o.cycles < bestCycles_))
      bestCycles_ = o.cycles;
  }

  [[nodiscard]] bool done() const override { return done_; }

  [[nodiscard]] std::vector<DimensionResult> ledger() const override {
    return ledger_;
  }

 private:
  enum class Mode : uint8_t { Defaults, ClimbWait, RestartWait };
  static constexpr int kMaxRestarts = 6;

  struct Observed {
    TuningParams spec;
    uint64_t cycles;
  };

  /// Digests the last batch's observations into the climber's state.
  void settle() {
    if (obs_.empty()) return;
    switch (mode_) {
      case Mode::Defaults:
        // The driver guarantees the DEFAULTS point timed successfully.
        curCycles_ = obs_[0].cycles;
        seen_.insert(opt::formatTuningSpec(cur_));
        break;

      case Mode::ClimbWait: {
        size_t bi = SIZE_MAX;
        for (size_t i = 0; i < obs_.size(); ++i) {
          const uint64_t c = obs_[i].cycles;
          if (c == 0 || c >= curCycles_) continue;
          if (bi == SIZE_MAX || c < obs_[bi].cycles) bi = i;
        }
        if (bi != SIZE_MAX) {
          cur_ = obs_[bi].spec;
          curCycles_ = obs_[bi].cycles;
        } else {
          restartPending_ = true;  // local optimum
        }
        ledger_.push_back({"CLIMB " + std::to_string(steps_), bestCycles_});
        break;
      }

      case Mode::RestartWait:
        if (obs_[0].cycles != 0) {
          cur_ = obs_[0].spec;
          curCycles_ = obs_[0].cycles;
          restartPending_ = false;
        }  // a failed restart point keeps restartPending_: draw another
        ledger_.push_back({"RESTART " + std::to_string(restarts_), bestCycles_});
        break;
    }
    obs_.clear();
  }

  std::optional<TuningParams> drawUnseen() {
    for (int attempt = 0; attempt < 64; ++attempt) {
      TuningParams s = space_.sample(base_, rng_);
      if (seen_.insert(opt::formatTuningSpec(s)).second) return s;
    }
    return std::nullopt;
  }

  opt::ParamSpace space_;
  TuningParams base_;
  TuningParams cur_;
  uint64_t curCycles_ = 0;
  uint64_t bestCycles_ = 0;
  SplitMix64 rng_;
  Mode mode_ = Mode::Defaults;
  bool restartPending_ = false;
  bool done_ = false;
  int steps_ = 0;
  int restarts_ = 0;
  std::vector<Observed> obs_;
  std::unordered_set<std::string> seen_;
  std::vector<DimensionResult> ledger_;
};

}  // namespace

std::unique_ptr<SearchStrategy> makeHillClimbStrategy(uint64_t seed) {
  return std::make_unique<HillClimbStrategy>(seed);
}

}  // namespace ifko::search
