// A small (mu + lambda) evolutionary search over the tuning space.
//
// Generation 0 seeds the population with the DEFAULTS point (observed by
// the driver before the first propose) plus kPop-1 uniform samples; each
// later generation breeds kPop children by binary-tournament parent
// selection, per-axis uniform crossover, and a coin-flip one-step mutation
// (opt::ParamSpace::crossover / mutate).  Survivor selection is elitist
// mu+lambda: the kPop fittest of parents plus children carry over, with
// failed candidates (0 cycles) ranked worst.  Children are rejection-
// sampled against everything already proposed, so a converged population
// that can produce nothing new ends the run rather than re-spending budget.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "search/strategy/strategies_impl.h"
#include "support/rng.h"

namespace ifko::search {
namespace {

using opt::TuningParams;

class EvolutionaryStrategy final : public SearchStrategy {
 public:
  explicit EvolutionaryStrategy(uint64_t seed) : rng_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "evolve"; }

  void init(const opt::ParamSpace& space,
            const TuningParams& defaults) override {
    space_ = space;
    base_ = defaults;
  }

  [[nodiscard]] Proposal propose(int /*maxBatch*/) override {
    settle();
    if (done_ || gen_ > kMaxGen) {
      done_ = true;
      return {};
    }
    Proposal p{"GEN " + std::to_string(gen_), {}};
    if (gen_ == 0) {
      for (int i = 0; i < kPop - 1; ++i) {
        if (auto s = drawUnseen([&] { return space_.sample(base_, rng_); }))
          p.candidates.push_back(std::move(*s));
      }
    } else {
      for (int i = 0; i < kPop; ++i) {
        if (auto s = drawUnseen([&] { return breed(); }))
          p.candidates.push_back(std::move(*s));
      }
    }
    if (p.candidates.empty()) {
      done_ = true;  // nothing new to try: converged
      return {};
    }
    awaiting_ = true;
    return p;
  }

  void observe(const TuningParams& spec, const EvalOutcome& o) override {
    obs_.push_back({spec, o.cycles});
    if (o.cycles != 0 && (bestCycles_ == 0 || o.cycles < bestCycles_))
      bestCycles_ = o.cycles;
  }

  [[nodiscard]] bool done() const override { return done_; }

  [[nodiscard]] std::vector<DimensionResult> ledger() const override {
    return ledger_;
  }

 private:
  static constexpr int kPop = 16;
  static constexpr int kMaxGen = 40;

  struct Individual {
    TuningParams spec;
    uint64_t cycles;  ///< 0 = failed to compile/verify

    /// Lower is fitter; failures rank last.
    [[nodiscard]] uint64_t fitness() const {
      return cycles == 0 ? UINT64_MAX : cycles;
    }
  };

  void settle() {
    if (obs_.empty()) return;
    for (Individual& o : obs_) {
      seen_.insert(opt::formatTuningSpec(o.spec));
      pop_.push_back(std::move(o));
    }
    obs_.clear();
    std::stable_sort(pop_.begin(), pop_.end(),
                     [](const Individual& a, const Individual& b) {
                       return a.fitness() < b.fitness();
                     });
    if (pop_.size() > static_cast<size_t>(kPop)) pop_.resize(kPop);
    if (awaiting_) {  // a generation's batch came back (not just DEFAULTS)
      ledger_.push_back({"GEN " + std::to_string(gen_), bestCycles_});
      ++gen_;
      awaiting_ = false;
    }
  }

  [[nodiscard]] const TuningParams& tournament() {
    const size_t i = rng_.below(pop_.size());
    const size_t j = rng_.below(pop_.size());
    return pop_[pop_[j].fitness() < pop_[i].fitness() ? j : i].spec;
  }

  [[nodiscard]] TuningParams breed() {
    const TuningParams& a = tournament();
    const TuningParams& b = tournament();
    TuningParams child = space_.crossover(a, b, rng_);
    if (rng_.below(2) == 1) child = space_.mutate(child, rng_);
    return child;
  }

  template <typename Gen>
  std::optional<TuningParams> drawUnseen(const Gen& gen) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      TuningParams s = gen();
      if (seen_.insert(opt::formatTuningSpec(s)).second) return s;
    }
    return std::nullopt;
  }

  opt::ParamSpace space_;
  TuningParams base_;
  SplitMix64 rng_;
  uint64_t bestCycles_ = 0;
  int gen_ = 0;
  bool awaiting_ = false;
  bool done_ = false;
  std::vector<Individual> obs_;
  std::vector<Individual> pop_;
  std::unordered_set<std::string> seen_;
  std::vector<DimensionResult> ledger_;
};

}  // namespace

std::unique_ptr<SearchStrategy> makeEvolutionaryStrategy(uint64_t seed) {
  return std::make_unique<EvolutionaryStrategy>(seed);
}

}  // namespace ifko::search
