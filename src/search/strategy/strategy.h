// Pluggable search strategies: the empirical search as a subsystem.
//
// The paper hard-codes one search — the modified line search of Section
// 2.3 — and names smarter searches as the obvious next step.  This layer
// factors the search policy out of the evaluation machinery behind a
// four-call interface:
//
//   init(space, defaults)   the legal space and FKO's start point
//   propose(maxBatch)       next candidates to evaluate (empty = finished)
//   observe(spec, outcome)  one result per proposed candidate, in order
//   done()                  the strategy has nothing left to propose
//
// The driver loop (runStrategySearch) owns everything else: it evaluates
// proposals through any search::Evaluator — so the orchestrator's worker
// pool, persistent cache, and JSONL trace work unchanged for every
// strategy — tracks the best-so-far frontier, and enforces a shared Budget.
//
// Determinism contract: a strategy's proposal sequence is a pure function
// of (space, defaults, budget seed, observed outcomes).  Outcomes are
// deterministic (the simulator is), the driver observes a batch in proposal
// order regardless of evaluation order, and the batch-size hint is fixed —
// so the same seed and budget reproduce the same proposals and the same
// best-found spec at any --jobs value, warm or cold cache.
//
// Budget semantics: maxEvaluations counts every observed candidate
// (including the DEFAULTS point, cached or not — so a warm cache cannot
// change the search trajectory), maxCycles bounds the total simulated
// cycles spent; 0 disables either limit.  The budget is checked between
// proposals: an indivisible batch (a line-search dimension, a hill-climb
// neighborhood, an evolutionary generation) completes once started, so a
// run may overshoot by at most one batch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "opt/paramspace.h"
#include "search/linesearch.h"

namespace ifko::search {

/// Shared evaluation budget, enforced by the driver loop.
struct Budget {
  int maxEvaluations = 0;  ///< observed-candidate cap; 0 = unlimited
  uint64_t maxCycles = 0;  ///< simulated-cycle cap; 0 = unlimited
  uint64_t seed = 1;       ///< PRNG seed for the stochastic strategies

  [[nodiscard]] bool unlimited() const {
    return maxEvaluations == 0 && maxCycles == 0;
  }
};

/// One batch of candidates from a strategy.  `dimension` labels the batch
/// for trace events and dimension ledgers ("WNT", "RAND", "GEN 3", ...).
struct Proposal {
  std::string dimension;
  std::vector<opt::TuningParams> candidates;
};

/// A search policy over the tuning-parameter space.  See the determinism
/// contract above; strategies must not consult wall clocks or unseeded
/// randomness.
class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Called once, before any propose.
  virtual void init(const opt::ParamSpace& space,
                    const opt::TuningParams& defaults) = 0;
  /// Up to `maxBatch` candidates (a hint: indivisible batches may exceed
  /// it).  An empty proposal means the strategy is finished.
  [[nodiscard]] virtual Proposal propose(int maxBatch) = 0;
  /// One call per proposed candidate, in proposal order, before the next
  /// propose.  The driver also reports the DEFAULTS point here first.
  virtual void observe(const opt::TuningParams& spec,
                       const EvalOutcome& outcome) = 0;
  [[nodiscard]] virtual bool done() const = 0;
  /// Progress ledger for TuneResult/trace: the line search fills the
  /// paper's Figure-7 dimensions; stochastic strategies report rounds.
  [[nodiscard]] virtual std::vector<DimensionResult> ledger() const {
    return {};
  }
};

enum class StrategyKind : uint8_t {
  Line,
  Random,
  HillClimb,
  Evolve,
  Attribution,
  Bandit,
};

/// Flag spellings: "line", "random", "hillclimb", "evolve", "attribution",
/// "bandit".
[[nodiscard]] std::string_view strategyName(StrategyKind kind);
[[nodiscard]] std::optional<StrategyKind> parseStrategyKind(
    std::string_view name);
/// All kinds, in flag order — for tools that sweep every strategy.
[[nodiscard]] const std::vector<StrategyKind>& allStrategies();

[[nodiscard]] std::unique_ptr<SearchStrategy> makeStrategy(StrategyKind kind,
                                                           const Budget& budget);

/// Builds the legal parameter space for one analyzed kernel — the line
/// search's own grids (opt::unrollGrid & co.), so every strategy explores
/// the space the paper's search explores.
[[nodiscard]] opt::ParamSpace spaceFor(const fko::AnalysisReport& report,
                                       const arch::MachineConfig& machine,
                                       const SearchConfig& config);

/// The budgeted driver loop: evaluates the strategy's proposals through
/// `evaluator` (serial, or the orchestrator's parallel cached one) until
/// the strategy finishes or the budget is spent.  With StrategyKind::Line
/// and an unlimited budget this reproduces runLineSearch bit for bit.
///
/// Deferred warm-start: called once, right after the DEFAULTS evaluation,
/// with its outcome (counters included).  Returning a TuningParams makes it
/// the "WISDOM" warm point — this is how wisdom lookups use the kernel's
/// own attribution as the similarity probe for the performance-nearest
/// record.  Must be deterministic (outcomes are); supersedes `warmStart`
/// when both are given.
using WarmStartFn =
    std::function<std::optional<opt::TuningParams>(const EvalOutcome&)>;

/// `warmStart` (optional) is a previously known winner — a wisdom record's
/// parameters — evaluated immediately after DEFAULTS as the "WISDOM"
/// dimension so it becomes the incumbent the search must beat.  It counts
/// against the budget like any observed candidate but is never reported to
/// the strategy: proposal sequences are identical with or without it.
/// `warmStartFn` defers that choice until the DEFAULTS outcome is known.
[[nodiscard]] TuneResult runStrategySearch(
    const std::string& hilSource, const arch::MachineConfig& machine,
    const SearchConfig& config, SearchStrategy& strategy, const Budget& budget,
    Evaluator& evaluator, const opt::TuningParams* warmStart = nullptr,
    const WarmStartFn& warmStartFn = {});

/// Convenience wrappers over the built-in serial evaluator, mirroring
/// tuneKernel / tuneSource.
[[nodiscard]] TuneResult tuneKernelWithStrategy(const kernels::KernelSpec& spec,
                                                const arch::MachineConfig& machine,
                                                const SearchConfig& config,
                                                StrategyKind kind,
                                                const Budget& budget);
[[nodiscard]] TuneResult tuneSourceWithStrategy(const std::string& hilSource,
                                                const arch::MachineConfig& machine,
                                                const SearchConfig& config,
                                                StrategyKind kind,
                                                const Budget& budget);

}  // namespace ifko::search
