// The strategy driver loop and the StrategyKind registry.
//
// runStrategySearch owns everything the strategies must not: evaluation
// (through any search::Evaluator, so the orchestrator's pool/cache/trace
// serve every strategy), the best-so-far frontier, dimension-ledger event
// relay, and Budget enforcement.  Strategies only decide what to try next.
#include "search/strategy/strategy.h"

#include <algorithm>

#include "search/strategy/strategies_impl.h"

namespace ifko::search {

std::string_view strategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::Line: return "line";
    case StrategyKind::Random: return "random";
    case StrategyKind::HillClimb: return "hillclimb";
    case StrategyKind::Evolve: return "evolve";
    case StrategyKind::Attribution: return "attribution";
    case StrategyKind::Bandit: return "bandit";
  }
  return "?";
}

std::optional<StrategyKind> parseStrategyKind(std::string_view name) {
  for (StrategyKind k : allStrategies())
    if (strategyName(k) == name) return k;
  return std::nullopt;
}

const std::vector<StrategyKind>& allStrategies() {
  static const std::vector<StrategyKind> kAll = {
      StrategyKind::Line,   StrategyKind::Random,
      StrategyKind::HillClimb, StrategyKind::Evolve,
      StrategyKind::Attribution, StrategyKind::Bandit};
  return kAll;
}

std::unique_ptr<SearchStrategy> makeStrategy(StrategyKind kind,
                                             const Budget& budget) {
  switch (kind) {
    case StrategyKind::Line: return makeLineSearchStrategy();
    case StrategyKind::Random: return makeRandomStrategy(budget.seed);
    case StrategyKind::HillClimb: return makeHillClimbStrategy(budget.seed);
    case StrategyKind::Evolve: return makeEvolutionaryStrategy(budget.seed);
    case StrategyKind::Attribution:
      return makeAttributionStrategy(budget.seed);
    case StrategyKind::Bandit: return makeBanditStrategy(budget.seed);
  }
  return makeLineSearchStrategy();
}

opt::ParamSpace spaceFor(const fko::AnalysisReport& report,
                         const arch::MachineConfig& machine,
                         const SearchConfig& config) {
  opt::ParamSpace s;
  s.reduced = config.reducedGrids();
  s.maxUnroll = std::max(1, report.maxUnroll);
  s.unrolls = opt::unrollGrid(s.reduced, report.maxUnroll);
  if (report.numAccumulators > 0) s.accums = opt::accumGrid(s.reduced);
  const int line = machine.lineBytes();
  for (int mult : opt::prefDistMultGrid(s.reduced))
    s.prefDistBytes.push_back(mult * line);
  s.prefKinds = report.prefKinds;
  for (const auto& a : report.arrays) {
    if (a.prefetchable) s.prefArrays.push_back(a.name);
    if (a.stored) s.wnt = true;
  }
  s.extensions = config.searchExtensions;
  return s;
}

namespace {

/// The fixed batch-size ceiling handed to propose().  Deliberately not
/// derived from config.jobs: the hint shapes the proposal sequence, and
/// that sequence must be identical at every --jobs value.
constexpr int kBatchHint = 16;

}  // namespace

TuneResult runStrategySearch(const std::string& hilSource,
                             const arch::MachineConfig& machine,
                             const SearchConfig& config,
                             SearchStrategy& strategy, const Budget& budget,
                             Evaluator& eval, const opt::TuningParams* warmStart,
                             const WarmStartFn& warmStartFn) {
  TuneResult result;
  result.analysis = fko::analyzeKernel(hilSource, machine);
  if (!result.analysis.ok) {
    result.error = result.analysis.error;
    return result;
  }

  const opt::ParamSpace space = spaceFor(result.analysis, machine, config);
  const opt::TuningParams defaults = fkoDefaults(result.analysis, machine);
  result.defaults = defaults;
  strategy.init(space, defaults);

  // The DEFAULTS point anchors every strategy (and the budget: it is
  // proposal #1, so a warm cache cannot change the trajectory).
  const EvalOutcome def = eval.evaluateBatch({defaults}, "DEFAULTS")[0];
  if (def.cycles == 0) {
    result.error = "default parameters failed to compile/time";
    result.evaluations = eval.evaluations();
    return result;
  }
  strategy.observe(defaults, def);
  result.defaultCycles = def.cycles;

  opt::TuningParams best = defaults;
  uint64_t bestCycles = def.cycles;
  int proposals = 1;
  uint64_t cyclesSpent = def.cycles;
  result.frontier.push_back({proposals, bestCycles});

  // Warm start: time the remembered winner once, up front.  A failing or
  // slower-than-defaults warm point simply never becomes the incumbent —
  // stale wisdom can cost one evaluation, never the result.  The deferred
  // form sees the DEFAULTS outcome first, so a wisdom lookup can rank its
  // candidates by similarity to this kernel's own attribution.
  std::optional<opt::TuningParams> deferredWarm;
  if (warmStartFn) {
    deferredWarm = warmStartFn(def);
    warmStart = deferredWarm.has_value() ? &*deferredWarm : nullptr;
  }
  if (warmStart != nullptr && !(*warmStart == defaults)) {
    const EvalOutcome warm = eval.evaluateBatch({*warmStart}, "WISDOM")[0];
    ++proposals;
    cyclesSpent += warm.cycles;
    if (warm.usable() && warm.cycles < bestCycles) {
      bestCycles = warm.cycles;
      best = *warmStart;
      result.frontier.push_back({proposals, bestCycles});
    }
  }

  // Relays new dimension-ledger entries to the evaluator as dimension_end
  // events, preserving the evaluate -> dimension_end -> next-dimension
  // order the line search has always traced.
  size_t ledgerSent = 0;
  auto flushLedger = [&] {
    std::vector<DimensionResult> led = strategy.ledger();
    for (; ledgerSent < led.size(); ++ledgerSent)
      eval.onDimensionEnd(led[ledgerSent].name, led[ledgerSent].cyclesAfter,
                          best);
  };

  auto budgetSpent = [&] {
    if (budget.maxEvaluations > 0 && proposals >= budget.maxEvaluations)
      return true;
    if (budget.maxCycles > 0 && cyclesSpent >= budget.maxCycles) return true;
    return false;
  };

  while (!budgetSpent() && !strategy.done()) {
    int hint = kBatchHint;
    if (budget.maxEvaluations > 0)
      hint = std::min(hint, budget.maxEvaluations - proposals);
    Proposal p = strategy.propose(hint);
    flushLedger();
    if (p.candidates.empty()) break;
    const std::vector<EvalOutcome> outcomes =
        eval.evaluateBatch(p.candidates, p.dimension);
    for (size_t i = 0; i < p.candidates.size(); ++i) {
      strategy.observe(p.candidates[i], outcomes[i]);
      ++proposals;
      cyclesSpent += outcomes[i].cycles;
      if (outcomes[i].cycles != 0 && outcomes[i].cycles < bestCycles) {
        bestCycles = outcomes[i].cycles;
        best = p.candidates[i];
        result.frontier.push_back({proposals, bestCycles});
      }
    }
  }
  flushLedger();

  result.best = best;
  result.bestCycles = bestCycles;
  result.ledger = strategy.ledger();
  result.evaluations = eval.evaluations();
  result.proposals = proposals;
  result.ok = true;
  return result;
}

TuneResult tuneKernelWithStrategy(const kernels::KernelSpec& spec,
                                  const arch::MachineConfig& machine,
                                  const SearchConfig& config, StrategyKind kind,
                                  const Budget& budget) {
  const std::string source = spec.hilSource();
  std::unique_ptr<Evaluator> eval =
      makeSerialEvaluator(source, &spec, machine, config);
  std::unique_ptr<SearchStrategy> strategy = makeStrategy(kind, budget);
  return runStrategySearch(source, machine, config, *strategy, budget, *eval);
}

TuneResult tuneSourceWithStrategy(const std::string& hilSource,
                                  const arch::MachineConfig& machine,
                                  const SearchConfig& config, StrategyKind kind,
                                  const Budget& budget) {
  std::unique_ptr<Evaluator> eval =
      makeSerialEvaluator(hilSource, nullptr, machine, config);
  std::unique_ptr<SearchStrategy> strategy = makeStrategy(kind, budget);
  return runStrategySearch(hilSource, machine, config, *strategy, budget,
                           *eval);
}

}  // namespace ifko::search
