// Attribution-guided hill climbing: the cycle-attribution counters as a
// search policy, not just an observability feed.
//
// The simulator charges every cycle to one of ten stall causes
// (sim::Attribution, an enforced accounting identity), and every
// EvalOutcome carries those counters.  This strategy reads the incumbent's
// normalized stall-cause vector and proposes only the one-step moves that
// attack the cause groups actually charged with the cycles:
//
//   memory   (mem_l1 + mem_l2 + mem_main + store)        -> prefetch
//     distance/kind moves, the WNT toggle, and UR moves: fetch earlier,
//     write around the cache, and widen the window of outstanding misses
//     one iteration covers (unroll amortizes loop control in streaming
//     loops, so it is a memory lever as much as a pipeline one)
//   fp-dep   (fp_dep)                                    -> AE and UR
//     moves: break the reduction recurrence, expose more parallel chains
//   pipeline (issue + int_dep + rob + mispredict + unit) -> UR moves and
//     a prefetch-schedule flip: fewer loop-control instructions per
//     element, different placement inside the body
//
// The three groups partition the ten causes.  A step is guided when the
// largest group owns at least kDominantShare of the incumbent's cycles;
// the step then attacks every group whose share is at least
// kSecondaryShare — a streaming reduction is ~70% memory and ~30% fp_dep,
// and pruning the fp moves there would hide the AE win behind a restart.
// What gets pruned is only the groups the counters say are noise.  When
// no group dominates — or the incumbent carries no counters (a pre-v3
// cache line) — the step is the full neighborhood, i.e. plain hill
// climbing.  A guided step that fails to improve also widens to the full
// neighborhood before the climber declares a local optimum, so the
// guidance prunes provably-cold moves early without ever searching a
// smaller space than HillClimbStrategy; restarts and budget accounting
// mirror it exactly, making strategy_compare an apples-to-apples referee
// for the value of the attribution signal.
//
// Determinism: moves derive only from (space, incumbent, observed
// outcomes), counters are part of the outcome and replayed by the v3
// eval cache, so warm and cold runs propose identically at any --jobs.
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "search/counters.h"
#include "search/strategy/strategies_impl.h"
#include "sim/timing.h"
#include "support/rng.h"

namespace ifko::search {
namespace {

using opt::TuningParams;

/// Which stall-cause groups a step should attack (bitmask; kNone = no
/// guidance, propose the full neighborhood).
enum TargetMask : uint8_t {
  kNone = 0,
  kMem = 1 << 0,
  kFp = 1 << 1,
  kPipe = 1 << 2,
};

std::string targetLabel(uint8_t mask) {
  if (mask == kNone) return "none";
  std::string s;
  if (mask & kMem) s += "mem";
  if (mask & kFp) s += s.empty() ? "fp" : "+fp";
  if (mask & kPipe) s += s.empty() ? "pipe" : "+pipe";
  return s;
}

class AttributionStrategy final : public SearchStrategy {
 public:
  explicit AttributionStrategy(uint64_t seed) : rng_(seed) {}

  [[nodiscard]] std::string_view name() const override {
    return "attribution";
  }

  void init(const opt::ParamSpace& space,
            const TuningParams& defaults) override {
    space_ = space;
    base_ = defaults;
    cur_ = defaults;
  }

  [[nodiscard]] Proposal propose(int /*maxBatch*/) override {
    settle();
    while (!done_) {
      if (restartPending_) {
        if (restarts_ >= kMaxRestarts) {
          done_ = true;
          break;
        }
        std::optional<TuningParams> pt = drawUnseen();
        if (!pt.has_value()) {
          done_ = true;
          break;
        }
        ++restarts_;
        mode_ = Mode::RestartWait;
        return {"RESTART " + std::to_string(restarts_), {*pt}};
      }

      const uint8_t target =
          widen_ ? static_cast<uint8_t>(kNone) : targetOf(curAttr_);
      std::vector<TuningParams> fresh;
      for (TuningParams& t : space_.neighbors(cur_)) {
        if (target != kNone && !moveTargets(t, target)) continue;
        if (seen_.insert(opt::formatTuningSpec(t)).second)
          fresh.push_back(std::move(t));
      }
      if (target & kPipe) addSchedFlip(fresh);
      if (fresh.empty()) {
        // Nothing fresh in the targeted subset: widen to the whole
        // neighborhood; nothing fresh there either means local optimum.
        if (target != kNone) {
          widen_ = true;
          continue;
        }
        widen_ = false;
        restartPending_ = true;
        continue;
      }
      ++steps_;
      targeted_ = target != kNone;
      mode_ = Mode::StepWait;
      return {"ATTR " + targetLabel(target) + " " + std::to_string(steps_),
              std::move(fresh)};
    }
    return {};
  }

  void observe(const TuningParams& spec, const EvalOutcome& o) override {
    obs_.push_back({spec, o.cycles, o.counters});
    if (o.cycles != 0 && (bestCycles_ == 0 || o.cycles < bestCycles_))
      bestCycles_ = o.cycles;
  }

  [[nodiscard]] bool done() const override { return done_; }

  [[nodiscard]] std::vector<DimensionResult> ledger() const override {
    return ledger_;
  }

 private:
  enum class Mode : uint8_t { Defaults, StepWait, RestartWait };
  static constexpr int kMaxRestarts = 6;
  /// Guidance engages only when the largest cause group owns at least
  /// this share of the incumbent's cycles (the groups partition the
  /// causes, so the max share is always >= 1/3 — the threshold keeps
  /// near-uniform profiles on the unbiased full neighborhood).
  static constexpr double kDominantShare = 0.40;
  /// Once engaged, every group at or above this share is attacked too:
  /// a secondary cause worth a quarter of the cycles is a real lever,
  /// not noise (e.g. fp_dep in a streaming reduction).
  static constexpr double kSecondaryShare = 0.25;

  struct Observed {
    TuningParams spec;
    uint64_t cycles;
    std::optional<EvalCounters> counters;
  };

  static uint8_t targetOf(const std::optional<EvalCounters>& counters) {
    if (!counters.has_value()) return kNone;
    const sim::Attribution& a = counters->attr;
    const uint64_t total = a.total();
    if (total == 0) return kNone;
    const double mem = static_cast<double>(a.memoryStalls()) / total;
    const double fp =
        static_cast<double>(a.of(sim::StallCause::FpDep)) / total;
    const double pipe = 1.0 - mem - fp;
    if (mem < kDominantShare && fp < kDominantShare && pipe < kDominantShare)
      return kNone;
    uint8_t mask = kNone;
    if (mem >= kSecondaryShare) mask |= kMem;
    if (fp >= kSecondaryShare) mask |= kFp;
    if (pipe >= kSecondaryShare) mask |= kPipe;
    return mask;
  }

  /// Whether the move cur_ -> t touches an axis that attacks any group in
  /// `target`.
  [[nodiscard]] bool moveTargets(const TuningParams& t, uint8_t target) const {
    if ((target & kMem) &&
        (t.prefetch != cur_.prefetch ||
         t.nonTemporalWrites != cur_.nonTemporalWrites ||
         t.blockFetch != cur_.blockFetch || t.unroll != cur_.unroll))
      return true;
    if ((target & kFp) &&
        (t.accumExpand != cur_.accumExpand || t.unroll != cur_.unroll))
      return true;
    if ((target & kPipe) &&
        (t.unroll != cur_.unroll || t.prefSched != cur_.prefSched ||
         t.ciscIndexing != cur_.ciscIndexing))
      return true;
    return false;
  }

  /// neighbors() does not move prefSched; pipeline-bound steps add the flip
  /// (placement inside the body matters when issue pressure dominates).
  void addSchedFlip(std::vector<TuningParams>& fresh) {
    bool anyPref = false;
    for (const auto& [name, p] : cur_.prefetch) anyPref |= p.enabled;
    if (!anyPref) return;
    TuningParams t = cur_;
    t.prefSched = t.prefSched == opt::PrefSched::Spread ? opt::PrefSched::Top
                                                        : opt::PrefSched::Spread;
    if (seen_.insert(opt::formatTuningSpec(t)).second)
      fresh.push_back(std::move(t));
  }

  void settle() {
    if (obs_.empty()) return;
    switch (mode_) {
      case Mode::Defaults:
        // The driver guarantees the DEFAULTS point timed successfully.
        curCycles_ = obs_[0].cycles;
        curAttr_ = obs_[0].counters;
        seen_.insert(opt::formatTuningSpec(cur_));
        break;

      case Mode::StepWait: {
        size_t bi = SIZE_MAX;
        for (size_t i = 0; i < obs_.size(); ++i) {
          const uint64_t c = obs_[i].cycles;
          if (c == 0 || c >= curCycles_) continue;
          if (bi == SIZE_MAX || c < obs_[bi].cycles) bi = i;
        }
        if (bi != SIZE_MAX) {
          cur_ = obs_[bi].spec;
          curCycles_ = obs_[bi].cycles;
          curAttr_ = obs_[bi].counters;
          widen_ = false;
        } else if (targeted_) {
          widen_ = true;  // targeted probes failed: try the full neighborhood
        } else {
          widen_ = false;
          restartPending_ = true;  // local optimum
        }
        ledger_.push_back({"STEP " + std::to_string(steps_), bestCycles_});
        break;
      }

      case Mode::RestartWait:
        if (obs_[0].cycles != 0) {
          cur_ = obs_[0].spec;
          curCycles_ = obs_[0].cycles;
          curAttr_ = obs_[0].counters;
          restartPending_ = false;
          widen_ = false;
        }  // a failed restart point keeps restartPending_: draw another
        ledger_.push_back({"RESTART " + std::to_string(restarts_), bestCycles_});
        break;
    }
    obs_.clear();
  }

  std::optional<TuningParams> drawUnseen() {
    for (int attempt = 0; attempt < 64; ++attempt) {
      TuningParams s = space_.sample(base_, rng_);
      if (seen_.insert(opt::formatTuningSpec(s)).second) return s;
    }
    return std::nullopt;
  }

  opt::ParamSpace space_;
  TuningParams base_;
  TuningParams cur_;
  uint64_t curCycles_ = 0;
  uint64_t bestCycles_ = 0;
  std::optional<EvalCounters> curAttr_;
  SplitMix64 rng_;
  Mode mode_ = Mode::Defaults;
  bool restartPending_ = false;
  bool widen_ = false;
  bool targeted_ = false;
  bool done_ = false;
  int steps_ = 0;
  int restarts_ = 0;
  std::vector<Observed> obs_;
  std::unordered_set<std::string> seen_;
  std::vector<DimensionResult> ledger_;
};

}  // namespace

std::unique_ptr<SearchStrategy> makeAttributionStrategy(uint64_t seed) {
  return std::make_unique<AttributionStrategy>(seed);
}

}  // namespace ifko::search
