// The paper's modified line search re-expressed as a SearchStrategy.
//
// This is the same sweep LineSearchCore (linesearch.cpp) runs, turned
// inside-out into a propose/observe state machine: each propose() emits the
// next indivisible batch (one dimension's grid, or one per-array sub-batch
// of the PF sweeps), and observe() applies the serial commit rule — take
// every strict improvement, scanning in proposal order.  Because that rule
// commits exactly the candidates the legacy core commits, and the batches
// are built from the same running point `cur_` at the same moments, the
// proposal sequence, the committed parameters, and the dimension ledger are
// bit-for-bit those of runLineSearch (strategy_test.cpp holds this against
// every registry kernel).
//
// Ledger timing: a dimension's entry is recorded at the first propose()
// after its last batch was observed (closeAfter_), which reproduces the
// legacy evaluate -> dimension_end -> next-dimension event order through
// the driver's ledger flush.
#include <algorithm>
#include <string>
#include <vector>

#include "search/strategy/strategies_impl.h"

namespace ifko::search {
namespace {

using opt::PrefParam;
using opt::TuningParams;

class LineSearchStrategy final : public SearchStrategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "line"; }

  void init(const opt::ParamSpace& space,
            const TuningParams& defaults) override {
    space_ = space;
    cur_ = defaults;
  }

  [[nodiscard]] Proposal propose(int /*maxBatch*/) override {
    flushClose();
    while (stage_ != Stage::Done) {
      Proposal p = buildCurrent();
      if (!p.candidates.empty()) return p;
      flushClose();  // the stage had nothing to try; its ledger entry lands
    }
    return {};
  }

  void observe(const TuningParams& spec, const EvalOutcome& o) override {
    // The serial commit rule: every strict improvement, in proposal order.
    // The first observation is the DEFAULTS point (curCycles_ == 0).
    if (o.cycles != 0 && (curCycles_ == 0 || o.cycles < curCycles_)) {
      curCycles_ = o.cycles;
      cur_ = spec;
    }
  }

  [[nodiscard]] bool done() const override {
    return stage_ == Stage::Done && closeAfter_.empty();
  }

  [[nodiscard]] std::vector<DimensionResult> ledger() const override {
    return ledger_;
  }

 private:
  enum class Stage : uint8_t { Wnt, PfDst, PfIns, Ur, Ae, UrAe, Bf, Cisc, Done };

  void flushClose() {
    if (closeAfter_.empty()) return;
    ledger_.push_back({closeAfter_, curCycles_});
    closeAfter_.clear();
  }

  Proposal buildCurrent() {
    switch (stage_) {
      case Stage::Wnt: {
        Proposal p{"WNT", {}};
        if (space_.wnt) {
          TuningParams t = cur_;
          t.nonTemporalWrites = !t.nonTemporalWrites;
          p.candidates.push_back(std::move(t));
        }
        closeAfter_ = "WNT";
        stage_ = Stage::PfDst;
        return p;
      }

      case Stage::PfDst: {
        // One batch per prefetchable array, arrays committed sequentially,
        // two rounds when the arrays' distances interact through the bus.
        if (space_.prefArrays.empty()) {
          closeAfter_ = "PF DST";
          stage_ = Stage::PfIns;
          pfIdx_ = 0;
          return {};
        }
        const std::string& arr = space_.prefArrays[pfIdx_];
        Proposal p{"PF DST", {}};
        for (int dist : space_.prefDistBytes) {
          TuningParams t = cur_;
          PrefParam& pp = t.prefetch[arr];
          if (dist == 0) {
            pp.enabled = false;
            pp.distBytes = 0;
          } else {
            pp.enabled = true;
            pp.distBytes = dist;
          }
          p.candidates.push_back(std::move(t));
        }
        const size_t rounds = space_.prefArrays.size() > 1 ? 2 : 1;
        if (++pfIdx_ >= space_.prefArrays.size()) {
          pfIdx_ = 0;
          if (++pfRound_ >= rounds) {
            closeAfter_ = "PF DST";
            stage_ = Stage::PfIns;
          }
        }
        return p;
      }

      case Stage::PfIns: {
        while (pfIdx_ < space_.prefArrays.size()) {
          const std::string& arr = space_.prefArrays[pfIdx_++];
          const bool last = pfIdx_ >= space_.prefArrays.size();
          Proposal p{"PF INS", {}};
          auto it = cur_.prefetch.find(arr);
          if (it != cur_.prefetch.end() && it->second.enabled) {
            ir::PrefKind curKind = it->second.kind;
            for (ir::PrefKind kind : space_.prefKinds) {
              if (kind == curKind) continue;
              TuningParams t = cur_;
              t.prefetch[arr].kind = kind;
              p.candidates.push_back(std::move(t));
            }
          }
          if (last) {
            closeAfter_ = "PF INS";
            stage_ = Stage::Ur;
          }
          if (!p.candidates.empty()) return p;
          if (last) return {};
        }
        closeAfter_ = "PF INS";
        stage_ = Stage::Ur;
        return {};
      }

      case Stage::Ur: {
        Proposal p{"UR", {}};
        for (int u : space_.unrolls) {
          if (u == cur_.unroll) continue;
          TuningParams t = cur_;
          t.unroll = u;
          t.accumExpand = std::min(t.accumExpand, u);
          p.candidates.push_back(std::move(t));
        }
        closeAfter_ = "UR";
        stage_ = Stage::Ae;
        return p;
      }

      case Stage::Ae: {
        Proposal p{"AE", {}};
        for (int m : space_.accums) {
          if (m == cur_.accumExpand || m > cur_.unroll) continue;
          TuningParams t = cur_;
          t.accumExpand = m;
          p.candidates.push_back(std::move(t));
        }
        closeAfter_ = "AE";
        stage_ = !space_.accums.empty() && !space_.reduced ? Stage::UrAe
                 : space_.extensions                       ? Stage::Bf
                                                           : Stage::Done;
        return p;
      }

      case Stage::UrAe: {
        // Restricted 2-D refinement of the strongly interacting pair, on
        // the full grids (this stage only runs with them).
        Proposal p{"UR*AE", {}};
        auto near = [](int v, const std::vector<int>& grid) {
          std::vector<int> out;
          auto it = std::find(grid.begin(), grid.end(), v);
          if (it == grid.end()) return out;
          if (it != grid.begin()) out.push_back(*(it - 1));
          if (it + 1 != grid.end()) out.push_back(*(it + 1));
          return out;
        };
        std::vector<int> urCands = near(cur_.unroll, space_.unrolls);
        urCands.push_back(cur_.unroll);
        std::vector<int> aeCands = near(cur_.accumExpand, space_.accums);
        aeCands.push_back(cur_.accumExpand);
        for (int u : urCands)
          for (int m : aeCands) {
            if (m > u) continue;
            if (u == cur_.unroll && m == cur_.accumExpand) continue;
            TuningParams t = cur_;
            t.unroll = u;
            t.accumExpand = m;
            p.candidates.push_back(std::move(t));
          }
        closeAfter_ = "UR*AE";
        stage_ = space_.extensions ? Stage::Bf : Stage::Done;
        return p;
      }

      case Stage::Bf: {
        Proposal p{"BF", {}};
        TuningParams t = cur_;
        t.blockFetch = !t.blockFetch;
        p.candidates.push_back(std::move(t));
        // Block fetch wants whole blocks per iteration: retry deeper unrolls.
        for (int u : {8, 16, 32}) {
          if (u > space_.maxUnroll) continue;
          TuningParams t2 = cur_;
          t2.blockFetch = true;
          t2.unroll = u;
          p.candidates.push_back(std::move(t2));
        }
        closeAfter_ = "BF";
        stage_ = Stage::Cisc;
        return p;
      }

      case Stage::Cisc: {
        Proposal p{"CISC", {}};
        TuningParams t = cur_;
        t.ciscIndexing = !t.ciscIndexing;
        p.candidates.push_back(std::move(t));
        closeAfter_ = "CISC";
        stage_ = Stage::Done;
        return p;
      }

      case Stage::Done: break;
    }
    return {};
  }

  opt::ParamSpace space_;
  TuningParams cur_;
  uint64_t curCycles_ = 0;
  Stage stage_ = Stage::Wnt;
  size_t pfIdx_ = 0;
  size_t pfRound_ = 0;
  std::string closeAfter_;
  std::vector<DimensionResult> ledger_;
};

}  // namespace

std::unique_ptr<SearchStrategy> makeLineSearchStrategy() {
  return std::make_unique<LineSearchStrategy>();
}

}  // namespace ifko::search
