// UCB1 bandit portfolio over the concrete strategies.
//
// No single search policy wins on every kernel: line search is strong when
// axes are independent, hill climbing when the space is locally smooth,
// evolution when it is not, attribution guidance when one stall cause
// dominates.  Rather than asking the user to pick, this strategy treats
// each constituent (line, random, hillclimb, evolve, attribution) as a
// bandit arm and allocates the shared evaluation budget with UCB1: each
// pull hands one arm a batch (its own next proposal), the reward is binary
// — did that batch improve the portfolio-wide best? — and the index
// mean + sqrt(2 ln N / n) balances exploiting the arm that keeps winning
// against revisiting the others as improvements dry up.
//
// Every arm observes the DEFAULTS point (the driver reports it first);
// after that, observations go only to the arm whose batch is out, so each
// constituent sees exactly the (defaults + own proposals) stream it would
// see running alone and its internal state stays well-formed.  Arm seeds
// derive from the budget seed through SplitMix64, ties break toward the
// earlier arm, and rewards are a pure function of observed outcomes — so
// the pull sequence, like every proposal, is replay-deterministic at any
// --jobs, warm or cold cache.
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "search/strategy/strategies_impl.h"
#include "support/rng.h"

namespace ifko::search {
namespace {

using opt::TuningParams;

class BanditStrategy final : public SearchStrategy {
 public:
  explicit BanditStrategy(uint64_t seed) {
    SplitMix64 mix(seed);
    arms_.push_back({"line", makeLineSearchStrategy()});
    arms_.push_back({"random", makeRandomStrategy(mix.next())});
    arms_.push_back({"hillclimb", makeHillClimbStrategy(mix.next())});
    arms_.push_back({"evolve", makeEvolutionaryStrategy(mix.next())});
    arms_.push_back({"attribution", makeAttributionStrategy(mix.next())});
  }

  [[nodiscard]] std::string_view name() const override { return "bandit"; }

  void init(const opt::ParamSpace& space,
            const TuningParams& defaults) override {
    for (Arm& a : arms_) a.strategy->init(space, defaults);
  }

  [[nodiscard]] Proposal propose(int maxBatch) override {
    settle();
    while (true) {
      const int ai = pickArm();
      if (ai < 0) {
        done_ = true;
        return {};
      }
      Arm& arm = arms_[ai];
      Proposal p = arm.strategy->propose(maxBatch);
      if (p.candidates.empty()) {
        arm.finished = true;
        continue;
      }
      cur_ = ai;
      bestAtBatchStart_ = bestCycles_;
      p.dimension = arm.label + ":" + p.dimension;
      return p;
    }
  }

  void observe(const TuningParams& spec, const EvalOutcome& o) override {
    if (o.cycles != 0 && (bestCycles_ == 0 || o.cycles < bestCycles_))
      bestCycles_ = o.cycles;
    if (!sawDefaults_) {
      // The DEFAULTS anchor: every arm starts from the same incumbent.
      for (Arm& a : arms_) a.strategy->observe(spec, o);
      sawDefaults_ = true;
      return;
    }
    arms_[cur_].strategy->observe(spec, o);
  }

  [[nodiscard]] bool done() const override { return done_; }

  [[nodiscard]] std::vector<DimensionResult> ledger() const override {
    return ledger_;
  }

 private:
  struct Arm {
    std::string label;
    std::unique_ptr<SearchStrategy> strategy;
    int pulls = 0;
    double rewardSum = 0.0;
    bool finished = false;
  };

  /// Credits the batch that just came back: reward 1 iff it improved the
  /// portfolio-wide best.
  void settle() {
    if (cur_ < 0) return;
    Arm& arm = arms_[cur_];
    ++arm.pulls;
    ++totalPulls_;
    if (bestCycles_ < bestAtBatchStart_) arm.rewardSum += 1.0;
    ledger_.push_back(
        {arm.label + " pull " + std::to_string(arm.pulls), bestCycles_});
    cur_ = -1;
  }

  /// UCB1 with a fixed-order cold-start sweep (each live arm pulled once
  /// before any index comparison); ties break toward the earlier arm.
  [[nodiscard]] int pickArm() const {
    for (size_t i = 0; i < arms_.size(); ++i)
      if (!armDead(i) && arms_[i].pulls == 0) return static_cast<int>(i);
    int best = -1;
    double bestIndex = 0.0;
    for (size_t i = 0; i < arms_.size(); ++i) {
      if (armDead(i)) continue;
      const Arm& a = arms_[i];
      const double mean = a.rewardSum / a.pulls;
      const double index =
          mean + std::sqrt(2.0 * std::log(static_cast<double>(totalPulls_)) /
                           a.pulls);
      if (best < 0 || index > bestIndex) {
        best = static_cast<int>(i);
        bestIndex = index;
      }
    }
    return best;
  }

  [[nodiscard]] bool armDead(size_t i) const {
    return arms_[i].finished || arms_[i].strategy->done();
  }

  std::vector<Arm> arms_;
  int cur_ = -1;
  int totalPulls_ = 0;
  uint64_t bestCycles_ = 0;
  uint64_t bestAtBatchStart_ = 0;
  bool sawDefaults_ = false;
  bool done_ = false;
  std::vector<DimensionResult> ledger_;
};

}  // namespace

std::unique_ptr<SearchStrategy> makeBanditStrategy(uint64_t seed) {
  return std::make_unique<BanditStrategy>(seed);
}

}  // namespace ifko::search
