// Internal: constructors for the concrete strategies, one per translation
// unit, linked together by makeStrategy (strategy.cpp).  Callers outside
// the subsystem go through the StrategyKind factory instead of naming
// concrete classes — the whole point of the pluggable interface.
#pragma once

#include <cstdint>
#include <memory>

#include "search/strategy/strategy.h"

namespace ifko::search {

[[nodiscard]] std::unique_ptr<SearchStrategy> makeLineSearchStrategy();
[[nodiscard]] std::unique_ptr<SearchStrategy> makeRandomStrategy(uint64_t seed);
[[nodiscard]] std::unique_ptr<SearchStrategy> makeHillClimbStrategy(
    uint64_t seed);
[[nodiscard]] std::unique_ptr<SearchStrategy> makeEvolutionaryStrategy(
    uint64_t seed);
[[nodiscard]] std::unique_ptr<SearchStrategy> makeAttributionStrategy(
    uint64_t seed);
[[nodiscard]] std::unique_ptr<SearchStrategy> makeBanditStrategy(uint64_t seed);

}  // namespace ifko::search
