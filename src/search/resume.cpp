#include "search/resume.h"

#include <fstream>

#include "opt/params.h"
#include "support/json.h"

namespace ifko::search {

namespace {

std::string getStr(const std::map<std::string, JsonValue>& obj,
                   const char* key) {
  auto it = obj.find(key);
  return it != obj.end() && it->second.kind == JsonValue::Kind::String
             ? it->second.string
             : "";
}

double getNum(const std::map<std::string, JsonValue>& obj, const char* key) {
  auto it = obj.find(key);
  return it != obj.end() && it->second.kind == JsonValue::Kind::Number
             ? it->second.number
             : 0.0;
}

bool getBool(const std::map<std::string, JsonValue>& obj, const char* key) {
  auto it = obj.find(key);
  return it != obj.end() && it->second.kind == JsonValue::Kind::Bool &&
         it->second.boolean;
}

}  // namespace

ResumePlan loadResumePlan(const std::string& tracePath,
                          const std::string& machine,
                          const std::string& context, int64_t n,
                          const std::string& strategy, std::string* error) {
  ResumePlan plan;
  std::ifstream in(tracePath);
  if (!in) {
    if (error != nullptr)
      *error = "cannot read trace file '" + tracePath +
               "' (resume needs the interrupted run's --trace)";
    return plan;
  }
  // Kernels whose kernel_start matched this configuration and whose
  // kernel_end has not arrived yet — in flight when the run died, or from
  // another configuration (then never armed here at all).
  std::map<std::string, bool> armed;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::map<std::string, JsonValue> obj;
    if (!parseJsonObject(line, &obj)) {  // torn tail from the kill, usually
      ++plan.damagedLines;
      continue;
    }
    const std::string event = getStr(obj, "event");
    if (event == "run_start") {
      ++plan.runs;
    } else if (event == "kernel_start") {
      const std::string kernel = getStr(obj, "kernel");
      // Only results from the same configuration are trustworthy: the
      // trace file is append-mode and may hold runs at other settings.
      armed[kernel] = getStr(obj, "machine") == machine &&
                      getStr(obj, "context") == context &&
                      static_cast<int64_t>(getNum(obj, "n")) == n &&
                      getStr(obj, "strategy") == strategy;
    } else if (event == "kernel_end") {
      const std::string kernel = getStr(obj, "kernel");
      auto it = armed.find(kernel);
      if (it == armed.end() || !it->second) continue;
      it->second = false;
      if (!getBool(obj, "ok")) continue;  // failed kernels re-tune (warm)
      CompletedKernel done;
      done.kernel = kernel;
      done.bestParams = getStr(obj, "best_params");
      done.bestCycles = static_cast<uint64_t>(getNum(obj, "best_cycles"));
      done.defaultCycles =
          static_cast<uint64_t>(getNum(obj, "default_cycles"));
      done.evaluations = static_cast<int>(getNum(obj, "evaluations"));
      done.proposals = static_cast<int>(getNum(obj, "proposals"));
      plan.completed[kernel] = done;
    }
  }
  return plan;
}

TuneResult resumedTuneResult(const CompletedKernel& done) {
  TuneResult result;
  const opt::TuningSpec spec = opt::parseTuningSpec(done.bestParams);
  if (!spec.ok) {
    result.ok = false;
    result.error = "resume: recorded winner '" + done.bestParams +
                   "' no longer parses: " + spec.error;
    return result;
  }
  result.ok = true;
  result.best = spec.params;
  result.bestCycles = done.bestCycles;
  result.defaultCycles = done.defaultCycles;
  result.evaluations = done.evaluations;
  result.proposals = done.proposals;
  return result;
}

}  // namespace ifko::search
