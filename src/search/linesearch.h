// The iFKO search drivers (paper Section 2.3): a modified line search over
// the fundamental transform parameters.
//
// Defaults (the paper's "intelligent start values", with L the line size of
// the first prefetchable cache and L_e the number of elements of the loop's
// type in such a line — counted in SIMD vectors when vectorization applies):
//   SV = Yes, WNT = No, PF = (prefetchnta, 2*L), UR = L_e, AE = No.
//
// The search then sweeps one dimension at a time in the order the paper's
// Figure 7 reports contributions — WNT, PF distance, PF instruction, UR,
// AE — holding the rest fixed, and finishes with a restricted 2-D
// refinement of the strongly-interacting (UR, AE) pair.  Every candidate is
// timed on the simulated machine and checked by the tester ("unnecessary in
// theory, but useful in practice").
//
// The search core is parameterized over an evaluation backend (Evaluator):
// each dimension hands its mutually independent candidates over as one
// batch, which is what lets search::Orchestrator fan evaluations out to a
// worker thread pool, memoize them in a persistent cache, and trace them —
// without the search logic knowing.  Batching does not change the result:
// the committed point is the earliest strict improvement, exactly what the
// serial scan picks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "kernels/registry.h"
#include "opt/params.h"
#include "search/counters.h"
#include "sim/timer.h"

namespace ifko::search {

struct EvalRequest;  // search/evalpipeline.h

struct SearchConfig {
  int64_t n = 80000;  ///< problem size to time (paper: 80000 / 1024)
  sim::TimeContext context = sim::TimeContext::OutOfCache;
  uint64_t seed = 42;
  /// Verify each candidate's output at this length (0 disables the tester).
  int64_t testerN = 256;
  /// Worker threads for candidate evaluation under search::Orchestrator
  /// (the built-in serial evaluator ignores it).  Any value produces
  /// identical results; it only changes turnaround.
  int jobs = 1;
  /// Also search the extension transforms (block fetch, CISC indexing) the
  /// paper lists as planned work.  Off by default so Table 3 matches the
  /// evaluated FKO.
  bool searchExtensions = false;

  // --- evaluation fast path (search/evalpipeline.h) ------------------------
  /// Execute timing runs over the pre-decoded instruction form
  /// (sim/decode.h) when an EvalPipeline is attached.  Bit-identical cycles
  /// to the interpreter path; exists as a switch only for A/B testing.
  bool predecode = true;
  /// Reuse compiled artifacts across candidates that differ only in
  /// prefetch distances (the largest line-search dimension): the pipeline
  /// patches the Pref displacements of a previously compiled sibling
  /// instead of re-running the pass stack.  Byte-identical output either
  /// way; a switch for A/B testing.
  bool reusePrefixCompiles = true;
  /// Generate the timing operands once per search and clone the pristine
  /// image per evaluation (timed runs mutate their operands) instead of
  /// re-running data generation every time.  The clone is bit-for-bit the
  /// fresh image; a switch for A/B testing.
  bool reuseKernelData = true;
  /// Screen-then-confirm (opt-in, 0 = off): when a batch has at least
  /// kScreenMinCohort cache-missing candidates, each is first timed over
  /// this many loop iterations ON THE FULL-SIZE OPERANDS — an exact prefix
  /// of the full run, so prefetch distances and strides behave as they do
  /// at full length.  Only candidates within screenMargin of the cohort's
  /// best screen time (and of the incumbent's, once one is known) are
  /// re-timed at the full `n` ("confirmed").  The rest score
  /// Status::ScreenedOut (cycles 0, never committed).  Every cycle count
  /// the search reports/commits still comes from a full-size run, so
  /// confirmed results are comparable across screened and unscreened
  /// searches; the set of candidates that got a full look may differ.
  int64_t screenN = 0;
  /// Screen survivors: screenCycles <= margin * bestScreenCycles.
  double screenMargin = 1.25;

  // --- fault isolation (search/faultguard.h) -------------------------------
  /// Per-candidate deadline in "milliseconds", converted at a fixed
  /// deterministic rate into an interpreter-step and simulated-cycle budget
  /// (sim/budget.h) so the verdict is reproducible on any host and any
  /// --jobs.  0 disables the deadline.
  int64_t evalTimeoutMs = 0;
  /// Total attempts per candidate (first try + retries) for hard failures
  /// (Timeout/Crash).  Deterministic rejections are never retried.  1 = no
  /// retry; values < 1 behave as 1.
  int maxEvalAttempts = 2;
  /// Base backoff between retry attempts, doubled per attempt, capped at
  /// 1 s.  0 retries immediately (what tests use).
  int64_t retryBackoffMs = 0;

  /// Named constructor for smoke-test scale: reduced sweep grids, small
  /// problem size (4096) and tester length (64).
  [[nodiscard]] static SearchConfig smoke() {
    SearchConfig c;
    c.reducedGrids_ = true;
    c.n = 4096;
    c.testerN = 64;
    return c;
  }

  /// Whether the search sweeps the reduced smoke-test grids (set only by
  /// smoke()).
  [[nodiscard]] bool reducedGrids() const { return reducedGrids_; }

 private:
  bool reducedGrids_ = false;
};

/// Smallest cohort of cache-missing candidates screen-then-confirm applies
/// to: below this the screening run costs more than it saves (and DEFAULTS,
/// always a batch of one, is always confirmed at full size).  Two is enough
/// once an incumbent yardstick exists (SerialEvaluator::noteConfirmed):
/// most of a line search's batches are pairs, and a pair that cannot beat
/// the incumbent costs two short screens instead of two full-size runs.
inline constexpr size_t kScreenMinCohort = 2;

/// One completed line-search dimension, for the Figure 7 ledger.
struct DimensionResult {
  std::string name;      ///< "WNT", "PF DST", "PF INS", "UR", "AE", "UR*AE"
  uint64_t cyclesAfter;  ///< best cycles once this dimension was tuned

  friend bool operator==(const DimensionResult&,
                         const DimensionResult&) = default;
};

/// One point of the best-so-far curve: after `proposals` observed
/// candidates, the best known time was `cycles`.
struct FrontierPoint {
  int proposals = 0;
  uint64_t cycles = 0;

  friend bool operator==(const FrontierPoint&, const FrontierPoint&) = default;
};

struct TuneResult {
  bool ok = false;
  std::string error;
  opt::TuningParams defaults;  ///< FKO's statically chosen parameters
  opt::TuningParams best;
  uint64_t defaultCycles = 0;  ///< "FKO": no empirical search
  uint64_t bestCycles = 0;     ///< "ifko": after the search
  std::vector<DimensionResult> ledger;
  int evaluations = 0;
  /// Strategy-driver runs only: candidates observed (including DEFAULTS;
  /// cached repeats count — this is what a Budget meters) and the
  /// best-so-far improvement curve over them.
  int proposals = 0;
  std::vector<FrontierPoint> frontier;
  fko::AnalysisReport analysis;

  [[nodiscard]] double speedupOverDefaults() const {
    return bestCycles == 0 ? 0.0
                           : static_cast<double>(defaultCycles) /
                                 static_cast<double>(bestCycles);
  }
};

/// Outcome of evaluating one candidate parameter set.  cycles == 0 means
/// the candidate is unusable; `status` records which way it failed:
///
///   Timed        compiled, passed the tester, timed (cycles != 0)
///   CompileFail  the transformed kernel did not compile
///   TesterFail   compiled but computed a wrong answer (paper §3: the
///                tester rejects transformations that break correctness)
///   Timeout      exceeded its cooperative step/cycle deadline (sim/budget.h)
///   Crash        the evaluation threw — a simulator machine fault or an
///                injected fault, contained by search/faultguard.h
///   FailUnknown  a pre-status cache line recorded only cycles == 0; the
///                failure flavour was never written down
///   ScreenedOut  screen-then-confirm (SearchConfig::screenN) timed the
///                candidate at the reduced size and it fell outside the
///                confirmation margin; it was never timed at full size and
///                can never be committed
///
/// CompileFail/TesterFail are deterministic rejections; Timeout/Crash are
/// the "hard" failures the guarded path retries and the orchestrator's
/// quarantine counts.
struct EvalOutcome {
  enum class Status : uint8_t {
    Timed, CompileFail, TesterFail, Timeout, Crash, FailUnknown, ScreenedOut
  };
  uint64_t cycles = 0;
  Status status = Status::Timed;
  bool fromCache = false;  ///< replayed from a memo/cache, not re-evaluated
  int attempts = 1;        ///< evaluation attempts the guarded path spent
  /// Observability counters for a timed candidate (attribution, memory,
  /// compile); absent for failures and for pre-v3 cache replays.
  std::optional<EvalCounters> counters;

  [[nodiscard]] bool usable() const {
    return status == Status::Timed && cycles != 0;
  }
  /// Timeout or Crash: possibly transient, worth a retry, quarantine-worthy.
  [[nodiscard]] bool hardFailure() const {
    return status == Status::Timeout || status == Status::Crash;
  }
};

/// Trace/cache name: "timed", "compile_fail", "tester_fail", "timeout",
/// "crash", "fail" (FailUnknown), "screened" (ScreenedOut).
[[nodiscard]] std::string_view evalStatusName(EvalOutcome::Status s);
/// Inverse of evalStatusName; nullopt for unknown strings.
[[nodiscard]] std::optional<EvalOutcome::Status> parseEvalStatus(
    std::string_view name);

/// Evaluation backend for the search core.
class Evaluator {
 public:
  virtual ~Evaluator() = default;
  /// Evaluates batch[i] -> result[i].  `dimension` names the current search
  /// dimension ("DEFAULTS", "WNT", "PF DST", ...) for tracing backends.
  [[nodiscard]] virtual std::vector<EvalOutcome> evaluateBatch(
      const std::vector<opt::TuningParams>& batch,
      const std::string& dimension) = 0;
  /// Real (non-memoized) compile+test+time evaluations performed so far.
  [[nodiscard]] virtual int evaluations() const = 0;
  /// Called when a dimension's sweep finishes, with its committed best.
  virtual void onDimensionEnd(const std::string& dimension,
                              uint64_t bestCycles,
                              const opt::TuningParams& best);
};

/// Compile + differential-test + time one candidate.  A pure function of
/// its request (the simulator is deterministic and side-effect-free), so it
/// is safe to call concurrently from worker threads.  Declared in
/// search/evalpipeline.h with the EvalRequest it consumes.
[[nodiscard]] EvalOutcome evaluateCandidate(const EvalRequest& req);

/// Deprecated loose-parameter shim for the EvalRequest form above; builds a
/// request (no pipeline, so no fast path) and forwards.  One release of
/// grace for out-of-tree callers, then it goes away.
[[deprecated("pack the arguments into a search::EvalRequest")]]
[[nodiscard]] EvalOutcome evaluateCandidate(const std::string& hilSource,
                                            const fko::LoweredKernel& lowered,
                                            const kernels::KernelSpec* spec,
                                            const fko::AnalysisReport& analysis,
                                            const arch::MachineConfig& machine,
                                            const SearchConfig& config,
                                            const opt::TuningParams& params);

/// The built-in evaluation backend: serial, memoized on the canonical
/// TuningSpec string for its own lifetime.  `source` is copied; `spec` may
/// be null (differential checking), and `machine`/`config` must outlive
/// the evaluator.  tuneKernel/tuneSource use this; the strategy wrappers
/// (strategy/strategy.h) reuse it so every strategy times candidates
/// through the same path.
[[nodiscard]] std::unique_ptr<Evaluator> makeSerialEvaluator(
    std::string source, const kernels::KernelSpec* spec,
    const arch::MachineConfig& machine, const SearchConfig& config);

/// The search core, parameterized over the evaluation backend.  tuneKernel
/// and tuneSource wrap it with the built-in serial memoizing evaluator;
/// search::Orchestrator supplies a parallel, cached, tracing one.  (How a
/// candidate is checked — reference BLAS or differential — is the
/// evaluator's concern, so no KernelSpec appears here.)
[[nodiscard]] TuneResult runLineSearch(const std::string& hilSource,
                                       const arch::MachineConfig& machine,
                                       const SearchConfig& config,
                                       Evaluator& evaluator);

/// FKO's default parameters for this kernel/machine (no search).
[[nodiscard]] opt::TuningParams fkoDefaults(const fko::AnalysisReport& report,
                                            const arch::MachineConfig& machine);

/// Runs the full iterative search on a surveyed BLAS kernel (candidates
/// are checked against the hand-written reference implementations).
[[nodiscard]] TuneResult tuneKernel(const kernels::KernelSpec& spec,
                                    const arch::MachineConfig& machine,
                                    const SearchConfig& config);

/// Runs the full iterative search on an arbitrary HIL kernel.  Candidates
/// are checked differentially against the unoptimized lowering of the same
/// source (fko::testAgainstUnoptimized), so no reference implementation is
/// required — the "generalize it enough to tune almost any floating point
/// kernel" goal of the paper.
[[nodiscard]] TuneResult tuneSource(const std::string& hilSource,
                                    const arch::MachineConfig& machine,
                                    const SearchConfig& config);

/// Times one parameter set (compile + simulate).  Exposed for the
/// benchmarks' fixed-parameter runs; returns 0 cycles on compile failure.
[[nodiscard]] uint64_t timeParams(const kernels::KernelSpec& spec,
                                  const arch::MachineConfig& machine,
                                  const opt::TuningParams& params,
                                  const SearchConfig& config);

/// Table 3 style row: "Y:N  nta:1024  none:0  4:2".  The prefetch cells are
/// rendered by opt::formatPref — the same serialization the TuningSpec
/// grammar, the evaluation cache key, and the trace events use.
[[nodiscard]] std::vector<std::string> paramsRow(
    const opt::TuningParams& params, const fko::AnalysisReport& analysis);

}  // namespace ifko::search
