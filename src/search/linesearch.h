// The iFKO search drivers (paper Section 2.3): a modified line search over
// the fundamental transform parameters.
//
// Defaults (the paper's "intelligent start values", with L the line size of
// the first prefetchable cache and L_e the number of elements of the loop's
// type in such a line — counted in SIMD vectors when vectorization applies):
//   SV = Yes, WNT = No, PF = (prefetchnta, 2*L), UR = L_e, AE = No.
//
// The search then sweeps one dimension at a time in the order the paper's
// Figure 7 reports contributions — WNT, PF distance, PF instruction, UR,
// AE — holding the rest fixed, and finishes with a restricted 2-D
// refinement of the strongly-interacting (UR, AE) pair.  Every candidate is
// timed on the simulated machine and checked by the tester ("unnecessary in
// theory, but useful in practice").
//
// The search core is parameterized over an evaluation backend (Evaluator):
// each dimension hands its mutually independent candidates over as one
// batch, which is what lets search::Orchestrator fan evaluations out to a
// worker thread pool, memoize them in a persistent cache, and trace them —
// without the search logic knowing.  Batching does not change the result:
// the committed point is the earliest strict improvement, exactly what the
// serial scan picks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "kernels/registry.h"
#include "opt/params.h"
#include "search/counters.h"
#include "sim/timer.h"

// Reading a deprecated member from its own accessors must not warn.
#if defined(__GNUC__)
#define IFKO_SUPPRESS_DEPRECATED_BEGIN \
  _Pragma("GCC diagnostic push")       \
  _Pragma("GCC diagnostic ignored \"-Wdeprecated-declarations\"")
#define IFKO_SUPPRESS_DEPRECATED_END _Pragma("GCC diagnostic pop")
#else
#define IFKO_SUPPRESS_DEPRECATED_BEGIN
#define IFKO_SUPPRESS_DEPRECATED_END
#endif

namespace ifko::search {

struct SearchConfig {
  int64_t n = 80000;  ///< problem size to time (paper: 80000 / 1024)
  sim::TimeContext context = sim::TimeContext::OutOfCache;
  uint64_t seed = 42;
  /// Verify each candidate's output at this length (0 disables the tester).
  int64_t testerN = 256;
  /// Worker threads for candidate evaluation under search::Orchestrator
  /// (the built-in serial evaluator ignores it).  Any value produces
  /// identical results; it only changes turnaround.
  int jobs = 1;
  /// Reduced grids for smoke tests.  Deprecated alias slated for removal:
  /// construct with SearchConfig::smoke() (which also shrinks N and the
  /// tester) and read through reducedGrids().
  [[deprecated(
      "set via SearchConfig::smoke() and read via reducedGrids()")]] bool
      fast = false;
  /// Also search the extension transforms (block fetch, CISC indexing) the
  /// paper lists as planned work.  Off by default so Table 3 matches the
  /// evaluated FKO.
  bool searchExtensions = false;

  // --- fault isolation (search/faultguard.h) -------------------------------
  /// Per-candidate deadline in "milliseconds", converted at a fixed
  /// deterministic rate into an interpreter-step and simulated-cycle budget
  /// (sim/budget.h) so the verdict is reproducible on any host and any
  /// --jobs.  0 disables the deadline.
  int64_t evalTimeoutMs = 0;
  /// Total attempts per candidate (first try + retries) for hard failures
  /// (Timeout/Crash).  Deterministic rejections are never retried.  1 = no
  /// retry; values < 1 behave as 1.
  int maxEvalAttempts = 2;
  /// Base backoff between retry attempts, doubled per attempt, capped at
  /// 1 s.  0 retries immediately (what tests use).
  int64_t retryBackoffMs = 0;

  // Special members spelled out inside the suppression region so that
  // initializing/copying the deprecated `fast` member warns only at direct
  // uses, not at every synthesized-constructor site.
  IFKO_SUPPRESS_DEPRECATED_BEGIN
  SearchConfig() = default;
  SearchConfig(const SearchConfig&) = default;
  SearchConfig(SearchConfig&&) = default;
  SearchConfig& operator=(const SearchConfig&) = default;
  SearchConfig& operator=(SearchConfig&&) = default;
  IFKO_SUPPRESS_DEPRECATED_END

  /// Named constructor for smoke-test scale: reduced sweep grids, small
  /// problem size (4096) and tester length (64).  Replaces bare `fast=true`.
  [[nodiscard]] static SearchConfig smoke() {
    SearchConfig c;
    IFKO_SUPPRESS_DEPRECATED_BEGIN
    c.fast = true;
    IFKO_SUPPRESS_DEPRECATED_END
    c.n = 4096;
    c.testerN = 64;
    return c;
  }

  /// Whether the search sweeps the reduced smoke-test grids (the
  /// non-deprecated read of the legacy `fast` flag).
  [[nodiscard]] bool reducedGrids() const {
    IFKO_SUPPRESS_DEPRECATED_BEGIN
    return fast;
    IFKO_SUPPRESS_DEPRECATED_END
  }
};

/// One completed line-search dimension, for the Figure 7 ledger.
struct DimensionResult {
  std::string name;      ///< "WNT", "PF DST", "PF INS", "UR", "AE", "UR*AE"
  uint64_t cyclesAfter;  ///< best cycles once this dimension was tuned

  friend bool operator==(const DimensionResult&,
                         const DimensionResult&) = default;
};

/// One point of the best-so-far curve: after `proposals` observed
/// candidates, the best known time was `cycles`.
struct FrontierPoint {
  int proposals = 0;
  uint64_t cycles = 0;

  friend bool operator==(const FrontierPoint&, const FrontierPoint&) = default;
};

struct TuneResult {
  bool ok = false;
  std::string error;
  opt::TuningParams defaults;  ///< FKO's statically chosen parameters
  opt::TuningParams best;
  uint64_t defaultCycles = 0;  ///< "FKO": no empirical search
  uint64_t bestCycles = 0;     ///< "ifko": after the search
  std::vector<DimensionResult> ledger;
  int evaluations = 0;
  /// Strategy-driver runs only: candidates observed (including DEFAULTS;
  /// cached repeats count — this is what a Budget meters) and the
  /// best-so-far improvement curve over them.
  int proposals = 0;
  std::vector<FrontierPoint> frontier;
  fko::AnalysisReport analysis;

  [[nodiscard]] double speedupOverDefaults() const {
    return bestCycles == 0 ? 0.0
                           : static_cast<double>(defaultCycles) /
                                 static_cast<double>(bestCycles);
  }
};

/// Outcome of evaluating one candidate parameter set.  cycles == 0 means
/// the candidate is unusable; `status` records which way it failed:
///
///   Timed        compiled, passed the tester, timed (cycles != 0)
///   CompileFail  the transformed kernel did not compile
///   TesterFail   compiled but computed a wrong answer (paper §3: the
///                tester rejects transformations that break correctness)
///   Timeout      exceeded its cooperative step/cycle deadline (sim/budget.h)
///   Crash        the evaluation threw — a simulator machine fault or an
///                injected fault, contained by search/faultguard.h
///   FailUnknown  a pre-status cache line recorded only cycles == 0; the
///                failure flavour was never written down
///
/// CompileFail/TesterFail are deterministic rejections; Timeout/Crash are
/// the "hard" failures the guarded path retries and the orchestrator's
/// quarantine counts.
struct EvalOutcome {
  enum class Status : uint8_t {
    Timed, CompileFail, TesterFail, Timeout, Crash, FailUnknown
  };
  uint64_t cycles = 0;
  Status status = Status::Timed;
  bool fromCache = false;  ///< replayed from a memo/cache, not re-evaluated
  int attempts = 1;        ///< evaluation attempts the guarded path spent
  /// Observability counters for a timed candidate (attribution, memory,
  /// compile); absent for failures and for pre-v3 cache replays.
  std::optional<EvalCounters> counters;

  [[nodiscard]] bool usable() const {
    return status == Status::Timed && cycles != 0;
  }
  /// Timeout or Crash: possibly transient, worth a retry, quarantine-worthy.
  [[nodiscard]] bool hardFailure() const {
    return status == Status::Timeout || status == Status::Crash;
  }
};

/// Trace/cache name: "timed", "compile_fail", "tester_fail", "timeout",
/// "crash", "fail" (FailUnknown).
[[nodiscard]] std::string_view evalStatusName(EvalOutcome::Status s);
/// Inverse of evalStatusName; nullopt for unknown strings.
[[nodiscard]] std::optional<EvalOutcome::Status> parseEvalStatus(
    std::string_view name);

/// Evaluation backend for the search core.
class Evaluator {
 public:
  virtual ~Evaluator() = default;
  /// Evaluates batch[i] -> result[i].  `dimension` names the current search
  /// dimension ("DEFAULTS", "WNT", "PF DST", ...) for tracing backends.
  [[nodiscard]] virtual std::vector<EvalOutcome> evaluateBatch(
      const std::vector<opt::TuningParams>& batch,
      const std::string& dimension) = 0;
  /// Real (non-memoized) compile+test+time evaluations performed so far.
  [[nodiscard]] virtual int evaluations() const = 0;
  /// Called when a dimension's sweep finishes, with its committed best.
  virtual void onDimensionEnd(const std::string& dimension,
                              uint64_t bestCycles,
                              const opt::TuningParams& best);
};

/// Compile + differential-test + time one candidate.  A pure function of
/// its arguments (the simulator is deterministic and side-effect-free), so
/// it is safe to call concurrently from worker threads.  `lowered` is the
/// front end's output for `hilSource` (fko::lowerKernel) — callers lower
/// once per kernel, not once per candidate.  `spec` may be null: generic
/// kernels are then checked against their own unoptimized lowering
/// (fko::testAgainstUnoptimized) instead of a reference BLAS.
[[nodiscard]] EvalOutcome evaluateCandidate(const std::string& hilSource,
                                            const fko::LoweredKernel& lowered,
                                            const kernels::KernelSpec* spec,
                                            const fko::AnalysisReport& analysis,
                                            const arch::MachineConfig& machine,
                                            const SearchConfig& config,
                                            const opt::TuningParams& params);

/// The built-in evaluation backend: serial, memoized on the canonical
/// TuningSpec string for its own lifetime.  `source` is copied; `spec` may
/// be null (differential checking), and `machine`/`config` must outlive
/// the evaluator.  tuneKernel/tuneSource use this; the strategy wrappers
/// (strategy/strategy.h) reuse it so every strategy times candidates
/// through the same path.
[[nodiscard]] std::unique_ptr<Evaluator> makeSerialEvaluator(
    std::string source, const kernels::KernelSpec* spec,
    const arch::MachineConfig& machine, const SearchConfig& config);

/// The search core, parameterized over the evaluation backend.  tuneKernel
/// and tuneSource wrap it with the built-in serial memoizing evaluator;
/// search::Orchestrator supplies a parallel, cached, tracing one.  (How a
/// candidate is checked — reference BLAS or differential — is the
/// evaluator's concern, so no KernelSpec appears here.)
[[nodiscard]] TuneResult runLineSearch(const std::string& hilSource,
                                       const arch::MachineConfig& machine,
                                       const SearchConfig& config,
                                       Evaluator& evaluator);

/// FKO's default parameters for this kernel/machine (no search).
[[nodiscard]] opt::TuningParams fkoDefaults(const fko::AnalysisReport& report,
                                            const arch::MachineConfig& machine);

/// Runs the full iterative search on a surveyed BLAS kernel (candidates
/// are checked against the hand-written reference implementations).
[[nodiscard]] TuneResult tuneKernel(const kernels::KernelSpec& spec,
                                    const arch::MachineConfig& machine,
                                    const SearchConfig& config);

/// Runs the full iterative search on an arbitrary HIL kernel.  Candidates
/// are checked differentially against the unoptimized lowering of the same
/// source (fko::testAgainstUnoptimized), so no reference implementation is
/// required — the "generalize it enough to tune almost any floating point
/// kernel" goal of the paper.
[[nodiscard]] TuneResult tuneSource(const std::string& hilSource,
                                    const arch::MachineConfig& machine,
                                    const SearchConfig& config);

/// Times one parameter set (compile + simulate).  Exposed for the
/// benchmarks' fixed-parameter runs; returns 0 cycles on compile failure.
[[nodiscard]] uint64_t timeParams(const kernels::KernelSpec& spec,
                                  const arch::MachineConfig& machine,
                                  const opt::TuningParams& params,
                                  const SearchConfig& config);

/// Table 3 style row: "Y:N  nta:1024  none:0  4:2".  The prefetch cells are
/// rendered by opt::formatPref — the same serialization the TuningSpec
/// grammar, the evaluation cache key, and the trace events use.
[[nodiscard]] std::vector<std::string> paramsRow(
    const opt::TuningParams& params, const fko::AnalysisReport& analysis);

}  // namespace ifko::search
