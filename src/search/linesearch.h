// The iFKO search drivers (paper Section 2.3): a modified line search over
// the fundamental transform parameters.
//
// Defaults (the paper's "intelligent start values", with L the line size of
// the first prefetchable cache and L_e the number of elements of the loop's
// type in such a line — counted in SIMD vectors when vectorization applies):
//   SV = Yes, WNT = No, PF = (prefetchnta, 2*L), UR = L_e, AE = No.
//
// The search then sweeps one dimension at a time in the order the paper's
// Figure 7 reports contributions — WNT, PF distance, PF instruction, UR,
// AE — holding the rest fixed, and finishes with a restricted 2-D
// refinement of the strongly-interacting (UR, AE) pair.  Every candidate is
// timed on the simulated machine and checked by the tester ("unnecessary in
// theory, but useful in practice").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "kernels/registry.h"
#include "opt/params.h"
#include "sim/timer.h"

namespace ifko::search {

struct SearchConfig {
  int64_t n = 80000;  ///< problem size to time (paper: 80000 / 1024)
  sim::TimeContext context = sim::TimeContext::OutOfCache;
  uint64_t seed = 42;
  /// Verify each candidate's output at this length (0 disables the tester).
  int64_t testerN = 256;
  /// Reduced grids for smoke tests.
  bool fast = false;
  /// Also search the extension transforms (block fetch, CISC indexing) the
  /// paper lists as planned work.  Off by default so Table 3 matches the
  /// evaluated FKO.
  bool searchExtensions = false;
};

/// One completed line-search dimension, for the Figure 7 ledger.
struct DimensionResult {
  std::string name;      ///< "WNT", "PF DST", "PF INS", "UR", "AE", "UR*AE"
  uint64_t cyclesAfter;  ///< best cycles once this dimension was tuned
};

struct TuneResult {
  bool ok = false;
  std::string error;
  opt::TuningParams defaults;  ///< FKO's statically chosen parameters
  opt::TuningParams best;
  uint64_t defaultCycles = 0;  ///< "FKO": no empirical search
  uint64_t bestCycles = 0;     ///< "ifko": after the search
  std::vector<DimensionResult> ledger;
  int evaluations = 0;
  fko::AnalysisReport analysis;

  [[nodiscard]] double speedupOverDefaults() const {
    return bestCycles == 0 ? 0.0
                           : static_cast<double>(defaultCycles) /
                                 static_cast<double>(bestCycles);
  }
};

/// FKO's default parameters for this kernel/machine (no search).
[[nodiscard]] opt::TuningParams fkoDefaults(const fko::AnalysisReport& report,
                                            const arch::MachineConfig& machine);

/// Runs the full iterative search on a surveyed BLAS kernel (candidates
/// are checked against the hand-written reference implementations).
[[nodiscard]] TuneResult tuneKernel(const kernels::KernelSpec& spec,
                                    const arch::MachineConfig& machine,
                                    const SearchConfig& config);

/// Runs the full iterative search on an arbitrary HIL kernel.  Candidates
/// are checked differentially against the unoptimized lowering of the same
/// source (fko::testAgainstUnoptimized), so no reference implementation is
/// required — the "generalize it enough to tune almost any floating point
/// kernel" goal of the paper.
[[nodiscard]] TuneResult tuneSource(const std::string& hilSource,
                                    const arch::MachineConfig& machine,
                                    const SearchConfig& config);

/// Times one parameter set (compile + simulate).  Exposed for the
/// benchmarks' fixed-parameter runs; returns 0 cycles on compile failure.
[[nodiscard]] uint64_t timeParams(const kernels::KernelSpec& spec,
                                  const arch::MachineConfig& machine,
                                  const opt::TuningParams& params,
                                  const SearchConfig& config);

/// Table 3 style row: "Y:N  nta:1024  none:0  4:2".
[[nodiscard]] std::vector<std::string> paramsRow(
    const opt::TuningParams& params, const fko::AnalysisReport& analysis);

}  // namespace ifko::search
