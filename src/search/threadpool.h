// Fixed-size worker pool executing index-space batches.
//
// The orchestrator thread blocks until a batch drains; workers persist
// across batches.  parallelFor is exception-safe: an exception thrown by
// fn(i) is captured (first one wins), the rest of the batch still drains —
// so no worker is left holding a task and the done-count always completes —
// and the captured exception is rethrown on the calling thread.  Without
// that, a throwing task would unwind a worker's thread main and
// std::terminate the whole process.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ifko::search::detail {

class ThreadPool {
 public:
  explicit ThreadPool(int threads) {
    for (int i = 0; i < std::max(0, threads); ++i)
      workers_.emplace_back([this] { workerLoop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  /// Runs fn(0) .. fn(count-1) across the workers; returns when all have.
  /// If any call throws, the first exception (in completion order) is
  /// rethrown here after the whole batch has drained.
  void parallelFor(size_t count, const std::function<void(size_t)>& fn) {
    if (count == 0) return;
    if (workers_.empty() || count == 1) {
      for (size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    std::mutex doneMu;
    std::condition_variable doneCv;
    size_t done = 0;
    std::exception_ptr firstError;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < count; ++i)
        queue_.push_back([&, i] {
          std::exception_ptr error;
          try {
            fn(i);
          } catch (...) {
            error = std::current_exception();
          }
          {
            std::lock_guard<std::mutex> dl(doneMu);
            ++done;
            if (error != nullptr && firstError == nullptr) firstError = error;
          }
          doneCv.notify_one();
        });
    }
    cv_.notify_all();
    std::unique_lock<std::mutex> dl(doneMu);
    doneCv.wait(dl, [&] { return done == count; });
    if (firstError != nullptr) std::rethrow_exception(firstError);
  }

 private:
  void workerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace ifko::search::detail
