// Per-candidate observability counters (trace/cache schema v3).
//
// One EvalCounters bundles everything the observability layer measures for
// a successfully timed candidate: the simulator's per-cause cycle
// attribution (sim::Attribution — sums exactly to the candidate's cycles),
// the memory system's per-level counters, and the compile pipeline's
// summary (IR size, repeatable iterations and convergence, spills).  The
// same fixed field order is used for the JSON rendering everywhere it is
// surfaced — trace v3 candidate events, EvalCache v3 records — so records
// are bit-identical across --jobs and across runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "fko/compiler.h"
#include "sim/timer.h"
#include "support/json.h"

namespace ifko::search {

struct EvalCounters {
  sim::Attribution attr;
  sim::MemSystem::Stats mem;
  uint64_t irInsts = 0;           ///< instructions in the compiled kernel
  uint64_t repeatableIters = 0;   ///< repeatable-block iterations that fired
  bool repeatableConverged = true;
  uint64_t spillSlots = 0;

  friend bool operator==(const EvalCounters&, const EvalCounters&) = default;
};

/// Gathers the counters from one compile + timing run.
[[nodiscard]] EvalCounters collectCounters(const fko::CompileResult& compiled,
                                           const sim::TimeResult& timed);

/// Renders the counters as a nested JSON object with a fixed field order
/// (attribution causes first, then memory counters, then compile info).
[[nodiscard]] JsonWriter countersJson(const EvalCounters& c);

/// Reads counters back from a parsed `counters` object.  Tolerant of
/// missing fields (they stay zero/default), so older v3 writers and newer
/// readers interoperate.
[[nodiscard]] EvalCounters parseCounters(
    const std::map<std::string, JsonValue>& obj);

}  // namespace ifko::search
