// Persistent, content-addressed memo of candidate evaluations.
//
// Empirical search pays for portability with turnaround time: the line
// search re-times hundreds of candidates per kernel, and the restricted
// (UR, AE) refinement and repeated `tune` runs revisit many of them.  The
// simulator is deterministic, so an evaluation is a pure function of its
// EvalKey — which makes every result safe to memoize forever, and makes
// caches written by different processes (or machines) freely mergeable:
// two records with the same key are the same result.
//
// Persistence is a JSONL file: one flat object per line, loaded wholesale
// at open() and appended as the search runs.  Every append is one whole
// line issued as a single write(2) on an O_APPEND descriptor — the kernel
// serializes O_APPEND writes, so any number of processes appending to the
// same file interleave at line granularity, never mid-line.  A killed run
// loses at most the line being written, and malformed lines are skipped on
// load (counted, never fatal).
//
// Shard mode (openDir) is the fleet posture: a directory holds one
// `cache.<shard>.jsonl` per writer.  Opening the directory loads *every*
// shard (so a worker never redoes an evaluation any other worker already
// persisted — cross-worker dedup at load granularity) and appends new
// results to the caller's own shard file only.  mergeFiles() folds any set
// of cache files into one deduplicated, key-sorted file; because records
// are pure functions of their keys, "merge" is just set union.
//
// Schema v2: each line also records the evaluation's `status`
// (timed|compile_fail|tester_fail|timeout|crash), so warm runs replay
// failures faithfully instead of guessing what a cycles==0 entry meant.
// v1 lines (no status field) still load: cycles > 0 reads as Timed,
// cycles == 0 as FailUnknown — "some failure whose flavour the cache did
// not record".
//
// Schema v3: timed lines additionally carry a nested `counters` object
// (search/counters.h) — the per-cause cycle attribution, memory-system
// counters, and compile observability of the evaluation — so warm replays
// surface the same `ifko explain` attribution without re-simulating.
// v2/v1 lines still load; they simply replay without counters.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "search/linesearch.h"

namespace ifko::search {

/// Identity of one evaluation: everything the deterministic result depends
/// on.  `sourceHash` is ifko::hashHex of the HIL source text; `params` is
/// the canonical opt::formatTuningSpec string; `testerN` is included
/// because a tester-rejected candidate records 0 cycles, and rejection
/// depends on the tester length.
struct EvalKey {
  std::string sourceHash;
  std::string machine;
  std::string context;  ///< sim::contextName: "out-of-cache" | "in-L2"
  int64_t n = 0;
  uint64_t seed = 0;
  int64_t testerN = 0;
  std::string params;

  /// Canonical joined form, the in-memory map key.
  [[nodiscard]] std::string str() const;
};

/// One memoized evaluation: the cycles, how the evaluation ended, and (for
/// v3 timed entries) the observability counters.
struct EvalRecord {
  uint64_t cycles = 0;
  EvalOutcome::Status status = EvalOutcome::Status::Timed;
  std::optional<EvalCounters> counters;
};

/// What mergeFiles() did: how many inputs it read and what became of every
/// line.  `duplicates` counts lines whose key an earlier line already
/// supplied — the cross-worker work the merge deduplicated.
struct CacheMergeStats {
  size_t files = 0;
  size_t lines = 0;       ///< well-formed records read, duplicates included
  size_t unique = 0;      ///< records written to the output
  size_t duplicates = 0;  ///< lines - unique
  size_t damaged = 0;     ///< unparseable lines skipped across all inputs
};

/// Thread-safe evaluation memo with optional JSONL persistence.
class EvalCache {
 public:
  EvalCache() = default;
  ~EvalCache();
  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Attaches a persistence file: loads every well-formed line, then opens
  /// it for appending.  Returns false (with *error) when the file exists
  /// but cannot be read, or cannot be opened for appending; the cache then
  /// stays memory-only.
  bool open(const std::string& path, std::string* error = nullptr);

  /// Shard mode: creates `dir` if needed, loads every `cache.*.jsonl` file
  /// in it (sorted by name, so the load order is deterministic), then
  /// appends new results to `dir`/cache.`shard`.jsonl only.  Records the
  /// other shards already hold are in memory after the load, so insert()
  /// of an already-known key writes nothing — no two cooperating workers
  /// persist the same evaluation twice.  Note the load is a snapshot:
  /// records another worker appends *after* this open are deduplicated at
  /// merge time (mergeFiles), not live.
  bool openDir(const std::string& dir, const std::string& shard,
               std::string* error = nullptr);

  /// The shard file openDir() appends to: `dir`/cache.`shard`.jsonl.
  [[nodiscard]] static std::string shardFileName(const std::string& dir,
                                                 const std::string& shard);

  /// Every cache.*.jsonl file in `dir`, sorted — the shard set openDir()
  /// would load.  Empty (with *error) when the directory is unreadable.
  [[nodiscard]] static std::vector<std::string> shardFiles(
      const std::string& dir, std::string* error = nullptr);

  /// Folds any set of cache files into one deduplicated file at `outPath`,
  /// records sorted by key and written atomically (unique temp + rename),
  /// so merging the same inputs in any order produces byte-identical
  /// output.  Returns false with *error when an input cannot be read or
  /// the output cannot be written.
  static bool mergeFiles(const std::vector<std::string>& inputs,
                         const std::string& outPath,
                         std::string* error = nullptr,
                         CacheMergeStats* stats = nullptr);

  /// Returns the memoized record, counting a hit or miss.
  [[nodiscard]] std::optional<EvalRecord> lookup(const EvalKey& key);

  /// Records the evaluation (cycles, failure status, and — when available —
  /// the observability counters) and appends it to the persistence file
  /// when one is attached.  Re-inserting an existing key is a no-op (no
  /// duplicate line is written).
  void insert(const EvalKey& key, uint64_t cycles,
              EvalOutcome::Status status = EvalOutcome::Status::Timed,
              const std::optional<EvalCounters>& counters = std::nullopt);

  [[nodiscard]] size_t size() const;
  [[nodiscard]] uint64_t hits() const;
  [[nodiscard]] uint64_t misses() const;
  /// hits / (hits + misses); 0 when nothing was looked up.
  [[nodiscard]] double hitRate() const;
  void resetStats();

  /// Lines the last open()/openDir() skipped as damaged (unparseable JSON
  /// or missing fields) — a crash can truncate at most the final line of
  /// each file, so more than one per file suggests real corruption worth
  /// telling the user about.
  [[nodiscard]] size_t damagedLines() const;

  /// One cache line in the persisted format (no trailing newline) — the
  /// exact bytes insert() appends, exposed for mergeFiles and tests.
  [[nodiscard]] static std::string formatLine(const EvalKey& key,
                                              const EvalRecord& rec);
  /// Parses one persisted line back into (key, record); false for damaged
  /// lines (unparseable, missing fields, or an unknown status).
  [[nodiscard]] static bool parseLine(const std::string& line, EvalKey* key,
                                      EvalRecord* rec);

 private:
  /// Merges every well-formed line of `path` into map_ (damaged lines
  /// counted).  A missing file is fine (fresh cache); false with *error
  /// only on a read error.  Caller holds mu_.
  bool loadFileLocked(const std::string& path, std::string* error);

  mutable std::mutex mu_;
  std::unordered_map<std::string, EvalRecord> map_;
  int outFd_ = -1;  ///< O_APPEND descriptor; -1 = memory-only
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  size_t damagedLines_ = 0;
};

}  // namespace ifko::search
