// Persistent, content-addressed memo of candidate evaluations.
//
// Empirical search pays for portability with turnaround time: the line
// search re-times hundreds of candidates per kernel, and the restricted
// (UR, AE) refinement and repeated `tune` runs revisit many of them.  The
// simulator is deterministic, so an evaluation is a pure function of its
// EvalKey — which makes every result safe to memoize forever.
//
// Persistence is a JSONL file: one flat object per line, loaded wholesale
// at open() and appended (one whole line per insert, under a lock, flushed)
// as the search runs, so a killed run loses at most the line being written
// and concurrent readers always see complete records.  Malformed lines are
// skipped on load, never fatal: a truncated tail from a crash only costs
// those entries.
//
// Schema v2: each line also records the evaluation's `status`
// (timed|compile_fail|tester_fail|timeout|crash), so warm runs replay
// failures faithfully instead of guessing what a cycles==0 entry meant.
// v1 lines (no status field) still load: cycles > 0 reads as Timed,
// cycles == 0 as FailUnknown — "some failure whose flavour the cache did
// not record".
//
// Schema v3: timed lines additionally carry a nested `counters` object
// (search/counters.h) — the per-cause cycle attribution, memory-system
// counters, and compile observability of the evaluation — so warm replays
// surface the same `ifko explain` attribution without re-simulating.
// v2/v1 lines still load; they simply replay without counters.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "search/linesearch.h"

namespace ifko::search {

/// Identity of one evaluation: everything the deterministic result depends
/// on.  `sourceHash` is ifko::hashHex of the HIL source text; `params` is
/// the canonical opt::formatTuningSpec string; `testerN` is included
/// because a tester-rejected candidate records 0 cycles, and rejection
/// depends on the tester length.
struct EvalKey {
  std::string sourceHash;
  std::string machine;
  std::string context;  ///< sim::contextName: "out-of-cache" | "in-L2"
  int64_t n = 0;
  uint64_t seed = 0;
  int64_t testerN = 0;
  std::string params;

  /// Canonical joined form, the in-memory map key.
  [[nodiscard]] std::string str() const;
};

/// One memoized evaluation: the cycles, how the evaluation ended, and (for
/// v3 timed entries) the observability counters.
struct EvalRecord {
  uint64_t cycles = 0;
  EvalOutcome::Status status = EvalOutcome::Status::Timed;
  std::optional<EvalCounters> counters;
};

/// Thread-safe evaluation memo with optional JSONL persistence.
class EvalCache {
 public:
  EvalCache() = default;
  ~EvalCache();
  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Attaches a persistence file: loads every well-formed line, then opens
  /// it for appending.  Returns false (with *error) when the file exists
  /// but cannot be read, or cannot be opened for appending; the cache then
  /// stays memory-only.
  bool open(const std::string& path, std::string* error = nullptr);

  /// Returns the memoized record, counting a hit or miss.
  [[nodiscard]] std::optional<EvalRecord> lookup(const EvalKey& key);

  /// Records the evaluation (cycles, failure status, and — when available —
  /// the observability counters) and appends it to the persistence file
  /// when one is attached.  Re-inserting an existing key is a no-op (no
  /// duplicate line is written).
  void insert(const EvalKey& key, uint64_t cycles,
              EvalOutcome::Status status = EvalOutcome::Status::Timed,
              const std::optional<EvalCounters>& counters = std::nullopt);

  [[nodiscard]] size_t size() const;
  [[nodiscard]] uint64_t hits() const;
  [[nodiscard]] uint64_t misses() const;
  /// hits / (hits + misses); 0 when nothing was looked up.
  [[nodiscard]] double hitRate() const;
  void resetStats();

  /// Lines the last open() skipped as damaged (unparseable JSON or missing
  /// fields) — a crash can truncate at most the final line, so more than
  /// one suggests real corruption worth telling the user about.
  [[nodiscard]] size_t damagedLines() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, EvalRecord> map_;
  std::FILE* out_ = nullptr;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  size_t damagedLines_ = 0;
};

}  // namespace ifko::search
