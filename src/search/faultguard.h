// Fault-isolated candidate evaluation: the robustness layer around
// evaluateCandidate.
//
// iFKO's search only works because every candidate is vetted by a
// timer+tester loop that survives bad candidates (paper §3): the tester
// rejects transformations that break correctness, and the timer must keep
// going no matter what one candidate does.  The plain evaluateCandidate is
// pure but not contained — a simulator machine fault escapes as an
// exception and an infinite candidate never returns.  guardedEvaluate
// closes both holes:
//
//   * a cooperative deadline (sim::ScopedEvalBudget, from
//     SearchConfig::evalTimeoutMs) turns hangs into EvalOutcome::Timeout;
//   * every exception is caught and classified — sim::TimeoutError becomes
//     Timeout, anything else becomes Crash — so a throwing candidate can
//     never unwind into a worker thread (std::terminate) or the search;
//   * hard failures (Timeout/Crash) are retried with bounded exponential
//     backoff, because they may be transient; deterministic rejections
//     (CompileFail/TesterFail) are not.
//
// FaultPlan/FaultInjector make that machinery testable: a deterministic,
// seedable schedule of injected crash/hang/tester faults applied at the
// same point a real fault would occur, used by faultguard_test and
// bench_fault_recovery to prove a batch survives faults on any schedule at
// any --jobs.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "search/evalpipeline.h"
#include "search/linesearch.h"

namespace ifko::search {

/// Per-kernel evaluation-failure tally, post-retry: what the orchestrator
/// reports per kernel and the quarantine policy counts.
struct FailureCounts {
  int timeouts = 0;
  int crashes = 0;
  int testerFails = 0;
  int compileFails = 0;
  int retries = 0;  ///< extra attempts spent on hard failures

  /// Hard failures: the quarantine-relevant count.
  [[nodiscard]] int hard() const { return timeouts + crashes; }
  [[nodiscard]] int total() const {
    return timeouts + crashes + testerFails + compileFails;
  }
  void add(const EvalOutcome& o) {
    switch (o.status) {
      case EvalOutcome::Status::Timeout: ++timeouts; break;
      case EvalOutcome::Status::Crash: ++crashes; break;
      case EvalOutcome::Status::TesterFail: ++testerFails; break;
      case EvalOutcome::Status::CompileFail: ++compileFails; break;
      default: break;
    }
    retries += o.attempts - 1;
  }
  FailureCounts& operator+=(const FailureCounts& o) {
    timeouts += o.timeouts;
    crashes += o.crashes;
    testerFails += o.testerFails;
    compileFails += o.compileFails;
    retries += o.retries;
    return *this;
  }
};

/// A deterministic schedule of injected evaluation faults.  Evaluations
/// are numbered 1, 2, ... in the order the guarded path starts them (per
/// FaultInjector); a rule decides from that index and the attempt number
/// whether to fault.  Spec grammar (comma-separated rules):
///
///   kind@N        fault evaluation N
///   kind@N+K      fault evaluations N, N+K, N+2K, ...
///   kind%P:seed=S fault pseudo-randomly ~1/P of evaluations (SplitMix64
///                 of S and the index, so the schedule is seed-stable)
///   ...:once      any rule: transient — fires on attempt 1 only, so a
///                 retry succeeds
///   kind          crash | hang | tester
///
/// e.g. "crash@3,hang@10+7:once,tester%5:seed=42".
struct FaultPlan {
  enum class Kind : uint8_t { Crash, Hang, TesterFail };
  struct Rule {
    Kind kind = Kind::Crash;
    uint64_t at = 0;     ///< first evaluation index hit (1-based); 0 = random rule
    uint64_t every = 0;  ///< repeat period; 0 = fire once (at-rules only)
    uint64_t oneIn = 0;  ///< random rule: fire when hash(seed,i) % oneIn == 0
    uint64_t seed = 1;
    bool transient = false;
  };
  std::vector<Rule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }
  /// The fault (if any) rule-scheduled for this evaluation and attempt.
  [[nodiscard]] std::optional<Kind> fires(uint64_t evalIndex,
                                          int attempt) const;
  /// Parses the spec grammar above; "" parses to an empty plan.
  [[nodiscard]] static std::optional<FaultPlan> parse(const std::string& spec,
                                                      std::string* error);
};

[[nodiscard]] std::string_view faultKindName(FaultPlan::Kind kind);

/// Applies a FaultPlan across one run: hands out evaluation indices
/// (thread-safe, so pool workers share one numbering) and raises the
/// scheduled faults the way the real ones happen — Crash throws, Hang
/// burns the thread's sim::ScopedEvalBudget until it expires (or throws
/// TimeoutError outright when no deadline is armed), TesterFail returns a
/// forced rejection.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] bool empty() const { return plan_.empty(); }
  /// Claims the next evaluation index (first call returns 1).
  [[nodiscard]] uint64_t nextIndex() { return ++count_; }
  /// Raises the fault scheduled for (evalIndex, attempt), if any: throws
  /// for crash/hang, returns a forced outcome for tester faults, returns
  /// nullopt when no fault is due.
  std::optional<EvalOutcome> fire(uint64_t evalIndex, int attempt) const;
  /// Evaluation indices handed out so far.
  [[nodiscard]] uint64_t evaluationsStarted() const { return count_.load(); }

 private:
  FaultPlan plan_;
  std::atomic<uint64_t> count_{0};
};

/// evaluateCandidate with containment: deadline, classification, retry.
/// Never throws — every failure comes back as a structured EvalOutcome.
/// req.injector (may be null) injects the FaultPlan's scheduled faults.
[[nodiscard]] EvalOutcome guardedEvaluateCandidate(const EvalRequest& req);

/// Deprecated loose-parameter shim for the EvalRequest form; one release of
/// grace for out-of-tree callers.  `injector` maps to EvalRequest::injector.
[[deprecated("pack the arguments into a search::EvalRequest")]]
[[nodiscard]] EvalOutcome guardedEvaluateCandidate(
    const std::string& hilSource, const fko::LoweredKernel& lowered,
    const kernels::KernelSpec* spec, const fko::AnalysisReport& analysis,
    const arch::MachineConfig& machine, const SearchConfig& config,
    const opt::TuningParams& params, FaultInjector* injector = nullptr);

/// The deterministic ms -> simulated-work conversion behind evalTimeoutMs:
/// steps = ms * 100'000 interpreter steps, cycles = ms * 1'000'000 model
/// cycles.  Exposed so tests and docs agree with the implementation.
inline constexpr uint64_t kStepsPerTimeoutMs = 100'000;
inline constexpr uint64_t kCyclesPerTimeoutMs = 1'000'000;

}  // namespace ifko::search
